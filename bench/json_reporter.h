#ifndef RFVIEW_BENCH_JSON_REPORTER_H_
#define RFVIEW_BENCH_JSON_REPORTER_H_

// --json_out=<path> support for the benchmark binaries whose numbers CI
// archives (BENCH_joins.json / BENCH_derive.json). Google Benchmark's
// own --benchmark_out emits its full context-heavy format; the CI
// artifact wants a small stable schema — one record per measured run
// with name, iters, ns/op and rows/s — that the EXPERIMENTS.md tables
// and the bench-smoke job consume directly.
//
// Use BENCH_MAIN_WITH_JSON() instead of linking benchmark_main; the
// binary then accepts --json_out=FILE alongside the standard
// --benchmark_* flags. rows/s is taken from the items-per-second rate
// (benchmarks that call state.SetItemsProcessed) and reported as 0 for
// benchmarks without a row notion.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace rfv {
namespace benchjson {

struct BenchRecord {
  std::string name;
  int64_t iters = 0;
  double ns_per_op = 0;
  double rows_per_sec = 0;
};

/// Prints the normal console table and collects one BenchRecord per
/// measured (non-aggregate, non-errored) run.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      BenchRecord rec;
      rec.name = run.benchmark_name();
      rec.iters = static_cast<int64_t>(run.iterations);
      if (run.iterations > 0) {
        rec.ns_per_op = run.real_accumulated_time * 1e9 /
                        static_cast<double>(run.iterations);
      }
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) rec.rows_per_sec = items->second.value;
      records.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<BenchRecord> records;
};

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // names are ASCII
    out.push_back(c);
  }
  return out;
}

inline bool WriteJson(const std::string& path,
                      const std::vector<BenchRecord>& records) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "\"iters\": %lld, \"ns_per_op\": %.1f, "
                  "\"rows_per_sec\": %.1f",
                  static_cast<long long>(r.iters), r.ns_per_op,
                  r.rows_per_sec);
    out << "    {\"name\": \"" << JsonEscape(r.name) << "\", " << buf << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good();
}

inline int BenchmarkMainWithJson(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    constexpr const char kFlag[] = "--json_out=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      json_path = argv[i] + sizeof(kFlag) - 1;
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() && !WriteJson(json_path, reporter.records)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace benchjson
}  // namespace rfv

#define BENCH_MAIN_WITH_JSON()                               \
  int main(int argc, char** argv) {                          \
    return rfv::benchjson::BenchmarkMainWithJson(argc, argv); \
  }

#endif  // RFVIEW_BENCH_JSON_REPORTER_H_
