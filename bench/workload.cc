#include "workload.h"

#include <cstdio>
#include <cstdlib>
#include <set>

namespace rfv {
namespace bench {

ResultSet MustExecute(Database* db, const std::string& sql) {
  Result<ResultSet> r = db->Execute(sql);
  if (!r.ok()) {
    std::fprintf(stderr, "benchmark SQL failed: %s\n  %s\n",
                 r.status().ToString().c_str(), sql.c_str());
    std::abort();
  }
  return std::move(r).value();
}

void BuildSeqTable(Database* db, int64_t n, bool with_index,
                   const std::string& name) {
  Result<Table*> table = db->catalog()->CreateTable(
      name, Schema({ColumnDef("pos", DataType::kInt64),
                    ColumnDef("val", DataType::kDouble)}));
  if (!table.ok()) {
    std::fprintf(stderr, "CreateTable failed: %s\n",
                 table.status().ToString().c_str());
    std::abort();
  }
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  uint64_t state = 0x243f6a8885a308d3ull;  // deterministic xorshift
  for (int64_t i = 1; i <= n; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    const double value = static_cast<double>(state % 1000) / 10.0;
    rows.push_back(Row({Value::Int(i), Value::Double(value)}));
  }
  Status status = (*table)->InsertBatch(std::move(rows));
  if (!status.ok()) {
    std::fprintf(stderr, "InsertBatch failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  if (with_index) {
    status = (*table)->CreateIndex(name + "_pk", "pos");
    if (!status.ok()) {
      std::fprintf(stderr, "CreateIndex failed: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
  }
}

void BuildPartitionedSeqTable(Database* db, int64_t partitions,
                              int64_t rows_per_partition,
                              const std::string& name) {
  Result<Table*> table = db->catalog()->CreateTable(
      name, Schema({ColumnDef("grp", DataType::kInt64),
                    ColumnDef("pos", DataType::kInt64),
                    ColumnDef("val", DataType::kDouble)}));
  if (!table.ok()) {
    std::fprintf(stderr, "CreateTable failed: %s\n",
                 table.status().ToString().c_str());
    std::abort();
  }
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(partitions * rows_per_partition));
  uint64_t state = 0x452821e638d01377ull;  // deterministic xorshift
  for (int64_t g = 0; g < partitions; ++g) {
    for (int64_t i = 1; i <= rows_per_partition; ++i) {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      const double value = static_cast<double>(state % 1000) / 10.0;
      rows.push_back(
          Row({Value::Int(g), Value::Int(i), Value::Double(value)}));
    }
  }
  Status status = (*table)->InsertBatch(std::move(rows));
  if (!status.ok()) {
    std::fprintf(stderr, "InsertBatch failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
}

void PrintOperatorMetrics(const ResultSet& rs, const std::string& tag) {
  static std::set<std::string>* printed = new std::set<std::string>();
  if (!printed->insert(tag).second) return;
  std::fprintf(stderr, "--- operator metrics [%s] ---\n%s", tag.c_str(),
               rs.MetricsToString().c_str());
}

void BuildSequenceView(Database* db, const std::string& view_name, int64_t l,
                       int64_t h, const std::string& base) {
  SequenceViewDef def;
  def.view_name = view_name;
  def.base_table = base;
  def.value_column = "val";
  def.order_column = "pos";
  def.fn = SeqAggFn::kSum;
  def.window = WindowSpec::SlidingUnchecked(l, h);
  def.indexed = true;
  Result<const SequenceViewDef*> r =
      db->view_manager()->CreateSequenceView(def);
  if (!r.ok()) {
    std::fprintf(stderr, "CreateSequenceView failed: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
}

}  // namespace bench
}  // namespace rfv
