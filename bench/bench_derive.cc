// Ablation A3 — in-memory derivation algorithms compared: MaxOA
// (recursive and explicit forms) vs. MinOA vs. recomputing the query
// window from reconstructed raw data vs. computing directly from raw
// data. The paper's §7 conclusion: MinOA is theoretically leaner, MaxOA
// broader (MIN/MAX); neither dominates.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "json_reporter.h"
#include "sequence/compute.h"
#include "sequence/maxoa.h"
#include "sequence/minoa.h"

namespace rfv {
namespace {

std::vector<SeqValue> MakeData(int64_t n) {
  std::vector<SeqValue> x(static_cast<size_t>(n));
  uint64_t state = 0x2545f4914f6cdd1dull;
  for (auto& v : x) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    v = static_cast<double>(state % 1000);
  }
  return x;
}

const WindowSpec kView = WindowSpec::SlidingUnchecked(2, 1);
const WindowSpec kQuery = WindowSpec::SlidingUnchecked(3, 1);

void BM_Derive_MaxoaRecursive(benchmark::State& state) {
  const std::vector<SeqValue> x = MakeData(state.range(0));
  const Sequence view = BuildCompleteSequence(x, kView, SeqAggFn::kSum);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeriveMaxoaRecursive(view, kQuery));
  }
}

void BM_Derive_MaxoaExplicit(benchmark::State& state) {
  const std::vector<SeqValue> x = MakeData(state.range(0));
  const Sequence view = BuildCompleteSequence(x, kView, SeqAggFn::kSum);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeriveMaxoaExplicit(view, kQuery));
  }
}

void BM_Derive_Minoa(benchmark::State& state) {
  const std::vector<SeqValue> x = MakeData(state.range(0));
  const Sequence view = BuildCompleteSequence(x, kView, SeqAggFn::kSum);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeriveMinoa(view, kQuery));
  }
}

void BM_Derive_ReconstructThenRecompute(benchmark::State& state) {
  const std::vector<SeqValue> x = MakeData(state.range(0));
  const Sequence view = BuildCompleteSequence(x, kView, SeqAggFn::kSum);
  for (auto _ : state) {
    Result<std::vector<SeqValue>> raw = RawFromSlidingLinear(view);
    benchmark::DoNotOptimize(
        ComputeSlidingPipelined(raw.value(), kQuery));
  }
}

void BM_Derive_DirectFromRaw(benchmark::State& state) {
  const std::vector<SeqValue> x = MakeData(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSlidingPipelined(x, kQuery));
  }
}

// The recursive form and raw reconstruction are O(n); the explicit
// forms evaluate per-position telescoping chains of length Θ(k/w_x) and
// are therefore Θ(n²/w_x) in memory — exactly the work profile their
// relational mappings (Fig. 10/13) exhibit in Table 2. Cap the explicit
// forms at 30k to keep the suite's runtime bounded.
#define DERIVE_SIZES_LINEAR Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000)
#define DERIVE_SIZES_QUADRATIC Arg(1000)->Arg(10000)->Arg(30000)
BENCHMARK(BM_Derive_MaxoaRecursive)->DERIVE_SIZES_LINEAR;
BENCHMARK(BM_Derive_MaxoaExplicit)->DERIVE_SIZES_QUADRATIC;
BENCHMARK(BM_Derive_Minoa)->DERIVE_SIZES_QUADRATIC;
BENCHMARK(BM_Derive_ReconstructThenRecompute)->DERIVE_SIZES_LINEAR;
BENCHMARK(BM_Derive_DirectFromRaw)->DERIVE_SIZES_LINEAR;

// Chain length is Θ(k/w_x) — it shrinks as the *view* window widens.
// Sweep the view half-width at n = 30k with a query one row wider.
void BM_Derive_MinoaViewWidth(benchmark::State& state) {
  const std::vector<SeqValue> x = MakeData(30000);
  const int64_t half = state.range(0);
  const WindowSpec view_spec = WindowSpec::SlidingUnchecked(half, half);
  const WindowSpec query =
      WindowSpec::SlidingUnchecked(half + 1, half + 1);
  const Sequence view = BuildCompleteSequence(x, view_spec, SeqAggFn::kSum);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeriveMinoa(view, query));
  }
  state.counters["wx"] = static_cast<double>(view_spec.size());
}
BENCHMARK(BM_Derive_MinoaViewWidth)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

// ---------------------------------------------------------------------
// SQL-level frame-overlap sweep: the full stack (rewriter + cost model +
// pattern SQL + executor) answering a widened window query from a
// materialized view, with the derivation method chosen by the cost
// model vs. forced. The MaxOA disjunction carries 1 + 2·(active sides)
// congruence branches against MinOA's 2 (1 in the coincident class),
// and every branch is swept over all n·m join pairs — so the per-config
// winner tracks the branch count, which is what the cost model prices.
// Configs (view_l, view_h, query_l, query_h) at n = 2000:
//   * both-sided growth  (40,40)→(44,44): MaxOA 5 branches vs MinOA 2
//   * one-sided growth   (40, 0)→(44, 0): MaxOA 3 branches vs MinOA 2
//   * coincident class   (40,40)→(121,41): Δl+Δh = w_x → MinOA 1 branch
// ---------------------------------------------------------------------

struct SqlSweepConfig {
  int64_t view_l, view_h, query_l, query_h;
};

const SqlSweepConfig kSweepConfigs[] = {
    {40, 40, 44, 44},
    {40, 0, 44, 0},
    {40, 40, 121, 41},
};

std::unique_ptr<Database> MakeSweepDb(const SqlSweepConfig& config,
                                      int64_t n) {
  auto db = std::make_unique<Database>();
  std::string ddl = "CREATE TABLE seq (pos INTEGER PRIMARY KEY, val DOUBLE)";
  if (!db->Execute(ddl).ok()) return nullptr;
  std::string insert = "INSERT INTO seq VALUES ";
  for (int64_t i = 1; i <= n; ++i) {
    if (i > 1) insert += ",";
    insert += "(" + std::to_string(i) + "," +
              std::to_string((i * 37 + 11) % 101 - 23) + ")";
  }
  if (!db->Execute(insert).ok()) return nullptr;
  const std::string view =
      "CREATE MATERIALIZED VIEW v AS SELECT pos, SUM(val) OVER (ORDER BY "
      "pos ROWS BETWEEN " +
      std::to_string(config.view_l) + " PRECEDING AND " +
      std::to_string(config.view_h) + " FOLLOWING) FROM seq";
  if (!db->Execute(view).ok()) return nullptr;
  return db;
}

std::string SweepQuery(const SqlSweepConfig& config) {
  return "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN " +
         std::to_string(config.query_l) + " PRECEDING AND " +
         std::to_string(config.query_h) +
         " FOLLOWING) FROM seq ORDER BY pos";
}

constexpr int64_t kSweepRows = 2000;

/// method: 0 = automatic (cost model), 1 = forced MaxOA, 2 = forced
/// MinOA, 3 = native recompute (rewrite disabled).
void RunSqlSweep(benchmark::State& state, int method) {
  const SqlSweepConfig& config =
      kSweepConfigs[static_cast<size_t>(state.range(0))];
  std::unique_ptr<Database> db = MakeSweepDb(config, kSweepRows);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  switch (method) {
    case 0: break;
    case 1: db->options().force_method = DerivationMethod::kMaxoa; break;
    case 2: db->options().force_method = DerivationMethod::kMinoa; break;
    default: db->options().enable_view_rewrite = false; break;
  }
  const std::string sql = SweepQuery(config);
  std::string chosen = "native";
  for (auto _ : state) {
    Result<ResultSet> rs = db->Execute(sql);
    if (!rs.ok()) {
      state.SkipWithError(rs.status().ToString().c_str());
      return;
    }
    if (!rs->rewrite_method().empty()) chosen = rs->rewrite_method();
    benchmark::DoNotOptimize(rs->NumRows());
  }
  state.SetLabel(chosen);
  state.SetItemsProcessed(state.iterations() * kSweepRows);
}

void BM_SqlDerive_CostModel(benchmark::State& state) {
  RunSqlSweep(state, 0);
}
void BM_SqlDerive_ForcedMaxoa(benchmark::State& state) {
  RunSqlSweep(state, 1);
}
void BM_SqlDerive_ForcedMinoa(benchmark::State& state) {
  RunSqlSweep(state, 2);
}
void BM_SqlDerive_NativeRecompute(benchmark::State& state) {
  RunSqlSweep(state, 3);
}
BENCHMARK(BM_SqlDerive_CostModel)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SqlDerive_ForcedMaxoa)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SqlDerive_ForcedMinoa)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SqlDerive_NativeRecompute)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Ablation A8 — executor strategy on the same rewritten plan: the
// cost-chosen derivation of each sweep config executed (a) row-at-a-
// time with the merge band join disabled (the index-nested-loop path),
// (b) batched with the band join disabled, (c) batched with
// MergeBandJoinOp, (d) columnar-vectorized without the band join,
// (e) columnar-vectorized with MergeBandJoinOp (the engine default).
// Args: (config index, rows).
// ---------------------------------------------------------------------

/// exec_mode: 0 = row + no band, 1 = batch + no band, 2 = batch + band,
/// 3 = vectorized + no band, 4 = vectorized + band. Modes 0-2 disable
/// vectorized execution explicitly — they measure the PR 5 paths.
void RunSqlExecMode(benchmark::State& state, int exec_mode) {
  const SqlSweepConfig& config =
      kSweepConfigs[static_cast<size_t>(state.range(0))];
  const int64_t n = state.range(1);
  std::unique_ptr<Database> db = MakeSweepDb(config, n);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  db->options().exec.use_vectorized_execution = exec_mode >= 3;
  db->options().exec.use_batch_execution = exec_mode >= 1;
  db->options().exec.enable_merge_band_join =
      exec_mode == 2 || exec_mode == 4;
  const std::string sql = SweepQuery(config);
  std::string chosen = "native";
  for (auto _ : state) {
    Result<ResultSet> rs = db->Execute(sql);
    if (!rs.ok()) {
      state.SkipWithError(rs.status().ToString().c_str());
      return;
    }
    if (!rs->rewrite_method().empty()) chosen = rs->rewrite_method();
    benchmark::DoNotOptimize(rs->NumRows());
  }
  state.SetLabel(chosen);
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_SqlExec_RowNoBand(benchmark::State& state) {
  RunSqlExecMode(state, 0);
}
void BM_SqlExec_BatchNoBand(benchmark::State& state) {
  RunSqlExecMode(state, 1);
}
void BM_SqlExec_BatchBand(benchmark::State& state) {
  RunSqlExecMode(state, 2);
}
void BM_SqlExec_VectorNoBand(benchmark::State& state) {
  RunSqlExecMode(state, 3);
}
void BM_SqlExec_VectorBand(benchmark::State& state) {
  RunSqlExecMode(state, 4);
}
#define EXEC_MODE_ARGS \
  Args({0, 500})->Args({0, 2000})->Args({1, 2000})->Args({2, 2000})
BENCHMARK(BM_SqlExec_RowNoBand)->EXEC_MODE_ARGS
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SqlExec_BatchNoBand)->EXEC_MODE_ARGS
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SqlExec_BatchBand)->EXEC_MODE_ARGS
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SqlExec_VectorNoBand)->EXEC_MODE_ARGS
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SqlExec_VectorBand)->EXEC_MODE_ARGS
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rfv

BENCH_MAIN_WITH_JSON()
