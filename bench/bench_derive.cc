// Ablation A3 — in-memory derivation algorithms compared: MaxOA
// (recursive and explicit forms) vs. MinOA vs. recomputing the query
// window from reconstructed raw data vs. computing directly from raw
// data. The paper's §7 conclusion: MinOA is theoretically leaner, MaxOA
// broader (MIN/MAX); neither dominates.

#include <benchmark/benchmark.h>

#include <vector>

#include "sequence/compute.h"
#include "sequence/maxoa.h"
#include "sequence/minoa.h"

namespace rfv {
namespace {

std::vector<SeqValue> MakeData(int64_t n) {
  std::vector<SeqValue> x(static_cast<size_t>(n));
  uint64_t state = 0x2545f4914f6cdd1dull;
  for (auto& v : x) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    v = static_cast<double>(state % 1000);
  }
  return x;
}

const WindowSpec kView = WindowSpec::SlidingUnchecked(2, 1);
const WindowSpec kQuery = WindowSpec::SlidingUnchecked(3, 1);

void BM_Derive_MaxoaRecursive(benchmark::State& state) {
  const std::vector<SeqValue> x = MakeData(state.range(0));
  const Sequence view = BuildCompleteSequence(x, kView, SeqAggFn::kSum);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeriveMaxoaRecursive(view, kQuery));
  }
}

void BM_Derive_MaxoaExplicit(benchmark::State& state) {
  const std::vector<SeqValue> x = MakeData(state.range(0));
  const Sequence view = BuildCompleteSequence(x, kView, SeqAggFn::kSum);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeriveMaxoaExplicit(view, kQuery));
  }
}

void BM_Derive_Minoa(benchmark::State& state) {
  const std::vector<SeqValue> x = MakeData(state.range(0));
  const Sequence view = BuildCompleteSequence(x, kView, SeqAggFn::kSum);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeriveMinoa(view, kQuery));
  }
}

void BM_Derive_ReconstructThenRecompute(benchmark::State& state) {
  const std::vector<SeqValue> x = MakeData(state.range(0));
  const Sequence view = BuildCompleteSequence(x, kView, SeqAggFn::kSum);
  for (auto _ : state) {
    Result<std::vector<SeqValue>> raw = RawFromSlidingLinear(view);
    benchmark::DoNotOptimize(
        ComputeSlidingPipelined(raw.value(), kQuery));
  }
}

void BM_Derive_DirectFromRaw(benchmark::State& state) {
  const std::vector<SeqValue> x = MakeData(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSlidingPipelined(x, kQuery));
  }
}

// The recursive form and raw reconstruction are O(n); the explicit
// forms evaluate per-position telescoping chains of length Θ(k/w_x) and
// are therefore Θ(n²/w_x) in memory — exactly the work profile their
// relational mappings (Fig. 10/13) exhibit in Table 2. Cap the explicit
// forms at 30k to keep the suite's runtime bounded.
#define DERIVE_SIZES_LINEAR Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000)
#define DERIVE_SIZES_QUADRATIC Arg(1000)->Arg(10000)->Arg(30000)
BENCHMARK(BM_Derive_MaxoaRecursive)->DERIVE_SIZES_LINEAR;
BENCHMARK(BM_Derive_MaxoaExplicit)->DERIVE_SIZES_QUADRATIC;
BENCHMARK(BM_Derive_Minoa)->DERIVE_SIZES_QUADRATIC;
BENCHMARK(BM_Derive_ReconstructThenRecompute)->DERIVE_SIZES_LINEAR;
BENCHMARK(BM_Derive_DirectFromRaw)->DERIVE_SIZES_LINEAR;

// Chain length is Θ(k/w_x) — it shrinks as the *view* window widens.
// Sweep the view half-width at n = 30k with a query one row wider.
void BM_Derive_MinoaViewWidth(benchmark::State& state) {
  const std::vector<SeqValue> x = MakeData(30000);
  const int64_t half = state.range(0);
  const WindowSpec view_spec = WindowSpec::SlidingUnchecked(half, half);
  const WindowSpec query =
      WindowSpec::SlidingUnchecked(half + 1, half + 1);
  const Sequence view = BuildCompleteSequence(x, view_spec, SeqAggFn::kSum);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeriveMinoa(view, query));
  }
  state.counters["wx"] = static_cast<double>(view_spec.size());
}
BENCHMARK(BM_Derive_MinoaViewWidth)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
}  // namespace rfv
