// Ablation A4 — end-to-end rewriter: answering a reporting-function
// query through the full SQL stack (parse → rewrite → plan → execute)
// from a materialized view (direct hit and cumulative-diff derivation)
// vs. computing from base data with the native window operator. Direct
// hits should win for large n (the paper's motivation for materializing
// sequence views); pattern-based derivations pay join costs.

#include <benchmark/benchmark.h>

#include "workload.h"

namespace rfv {
namespace bench {
namespace {

constexpr const char* kQuery =
    "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND "
    "1 FOLLOWING) FROM seq";

void BM_Rewrite_NativeFromBase(benchmark::State& state) {
  Database db;
  BuildSeqTable(&db, state.range(0), /*with_index=*/true);
  db.options().enable_view_rewrite = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustExecute(&db, kQuery).NumRows());
  }
}

void BM_Rewrite_DirectViewHit(benchmark::State& state) {
  Database db;
  BuildSeqTable(&db, state.range(0), /*with_index=*/true);
  BuildSequenceView(&db, "matseq", 2, 1);
  for (auto _ : state) {
    const ResultSet rs = MustExecute(&db, kQuery);
    if (rs.rewrite_method() != "direct") {
      state.SkipWithError("expected direct rewrite");
      return;
    }
    benchmark::DoNotOptimize(rs.NumRows());
  }
}

void BM_Rewrite_CumulativeDiff(benchmark::State& state) {
  Database db;
  BuildSeqTable(&db, state.range(0), /*with_index=*/true);
  SequenceViewDef def;
  def.view_name = "cumview";
  def.base_table = "seq";
  def.value_column = "val";
  def.order_column = "pos";
  def.fn = SeqAggFn::kSum;
  def.window = WindowSpec::Cumulative();
  if (!db.view_manager()->CreateSequenceView(def).ok()) {
    state.SkipWithError("view creation failed");
    return;
  }
  for (auto _ : state) {
    const ResultSet rs = MustExecute(&db, kQuery);
    if (rs.rewrite_method() != "cumulative-diff") {
      state.SkipWithError("expected cumulative-diff rewrite");
      return;
    }
    benchmark::DoNotOptimize(rs.NumRows());
  }
}

void BM_Rewrite_ParseAndPlanOnly(benchmark::State& state) {
  // The rewrite decision itself (no execution): overhead the rewriter
  // adds to every incoming query.
  Database db;
  BuildSeqTable(&db, 100, /*with_index=*/true);
  BuildSequenceView(&db, "matseq", 2, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Explain(kQuery));
  }
}

BENCHMARK(BM_Rewrite_NativeFromBase)
    ->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Rewrite_DirectViewHit)
    ->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Rewrite_CumulativeDiff)
    ->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Rewrite_ParseAndPlanOnly)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace rfv
