// bench_serve: the serving-layer benchmark — N client threads firing a
// mixed read/write workload at one Database through per-client
// Sessions, reporting throughput and tail latency per client count.
//
// The workload per client: 80% reads rotating over a point-ish filter
// scan, a COUNT(*) aggregate, and a materialized-view scan; 20% writes
// alternating a small append INSERT and a band UPDATE. Reads run
// concurrently against pinned snapshots; writes serialize on the engine
// write mutex; everything passes the admission controller (cap raised
// to the client count so the benchmark measures the engine, not the
// queue).
//
// Output: the stable BENCH_*.json schema of bench/json_reporter.h, one
// record per (clients, statistic):
//
//   serve/clients:N/throughput  rows_per_sec = statements per second
//   serve/clients:N/p50         ns_per_op    = median latency
//   serve/clients:N/p95         ns_per_op    = 95th percentile latency
//   serve/clients:N/p99         ns_per_op    = 99th percentile latency
//
// Usage:
//   bench_serve [--clients=1,2,4,8] [--ops=200] [--rows=5000]
//               [--json_out=FILE]
//
// EXPERIMENTS.md A9 records the 1→8 client scaling from this binary.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "db/session.h"
#include "json_reporter.h"

namespace {

using rfv::Database;
using rfv::Result;
using rfv::ResultSet;
using rfv::Session;

struct Args {
  std::vector<int> clients = {1, 2, 4, 8};
  int ops_per_client = 200;
  int rows = 5000;
  std::string json_out;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--clients=")) {
      args->clients.clear();
      for (const char* p = v; *p != '\0';) {
        args->clients.push_back(std::atoi(p));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
      if (args->clients.empty()) return false;
    } else if (const char* v = value("--ops=")) {
      args->ops_per_client = std::atoi(v);
    } else if (const char* v = value("--rows=")) {
      args->rows = std::atoi(v);
    } else if (const char* v = value("--json_out=")) {
      args->json_out = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return args->ops_per_client > 0 && args->rows > 0;
}

void MustExecute(Database* db, const std::string& sql) {
  const Result<ResultSet> rs = db->Execute(sql);
  if (!rs.ok()) {
    std::fprintf(stderr, "setup failed: %s\n  %s\n", sql.c_str(),
                 rs.status().ToString().c_str());
    std::exit(1);
  }
}

void BuildWarehouse(Database* db, int rows) {
  MustExecute(db, "CREATE TABLE seq (pos INTEGER PRIMARY KEY, val DOUBLE)");
  for (int lo = 1; lo <= rows; lo += 500) {
    std::string insert = "INSERT INTO seq VALUES ";
    const int hi = std::min(lo + 499, rows);
    for (int i = lo; i <= hi; ++i) {
      if (i > lo) insert += ", ";
      insert += "(" + std::to_string(i) + ", " +
                std::to_string(((i * 37 + 11) % 101) - 23) + ")";
    }
    MustExecute(db, insert);
  }
  MustExecute(db, "ANALYZE seq");
  MustExecute(db,
              "CREATE MATERIALIZED VIEW v AS SELECT pos, SUM(val) OVER "
              "(ORDER BY pos ROWS BETWEEN 10 PRECEDING AND CURRENT ROW) "
              "FROM seq");
}

struct RunStats {
  double seconds = 0;
  std::vector<int64_t> latencies_ns;  // one per statement, all clients
};

/// One client: ops_per_client statements, 4-in-5 reads. The statement
/// mix is keyed on (client, op) so every run of the same configuration
/// issues the same statement sequence.
void ClientLoop(Database* db, int client, int ops, std::atomic<int64_t>* next_pos,
                std::vector<int64_t>* latencies) {
  Session session(db);
  latencies->reserve(static_cast<size_t>(ops));
  for (int op = 0; op < ops; ++op) {
    std::string sql;
    switch ((op + client) % 5) {
      case 0:
        sql = "SELECT pos, val FROM seq WHERE pos <= 200";
        break;
      case 1:
        sql = "SELECT COUNT(*) FROM seq";
        break;
      case 2:
        sql = "SELECT pos FROM v WHERE pos <= 200";
        break;
      case 3:
        sql = op % 2 == 0 ? "INSERT INTO seq VALUES (" +
                                std::to_string(next_pos->fetch_add(1)) + ", 1)"
                          : "UPDATE seq SET val = " + std::to_string(op) +
                                " WHERE pos <= 20";
        break;
      case 4:
        sql = "SELECT pos, val FROM seq WHERE pos > " +
              std::to_string(100 + 10 * (op % 10)) + " AND pos <= " +
              std::to_string(300 + 10 * (op % 10));
        break;
    }
    const auto start = std::chrono::steady_clock::now();
    const Result<ResultSet> rs = session.Execute(sql);
    const auto end = std::chrono::steady_clock::now();
    if (!rs.ok()) {
      std::fprintf(stderr, "client %d: %s\n  %s\n", client, sql.c_str(),
                   rs.status().ToString().c_str());
      std::exit(1);
    }
    latencies->push_back(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
  }
}

RunStats RunClients(Database* db, int clients, int ops_per_client,
                    std::atomic<int64_t>* next_pos) {
  std::vector<std::vector<int64_t>> per_client(
      static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  const auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back(ClientLoop, db, c, ops_per_client, next_pos,
                         &per_client[static_cast<size_t>(c)]);
  }
  for (std::thread& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();

  RunStats stats;
  stats.seconds = std::chrono::duration<double>(end - start).count();
  for (const std::vector<int64_t>& lats : per_client) {
    stats.latencies_ns.insert(stats.latencies_ns.end(), lats.begin(),
                              lats.end());
  }
  std::sort(stats.latencies_ns.begin(), stats.latencies_ns.end());
  return stats;
}

int64_t Percentile(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t index = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size() - 1) + 0.5));
  return sorted[index];
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: %s [--clients=1,2,4,8] [--ops=N] [--rows=N]\n"
                 "          [--json_out=FILE]\n",
                 argv[0]);
    return 2;
  }

  std::vector<rfv::benchjson::BenchRecord> records;
  for (const int clients : args.clients) {
    // Fresh warehouse per client count so earlier runs' appends don't
    // skew later scans.
    Database db;
    BuildWarehouse(&db, args.rows);
    db.admission()->set_max_concurrent(std::max(clients, 1));
    std::atomic<int64_t> next_pos{1'000'000};

    // Warmup: one client pass populates caches/stats paths.
    {
      std::vector<int64_t> warmup;
      ClientLoop(&db, 0, std::min(args.ops_per_client, 25), &next_pos,
                 &warmup);
    }

    const RunStats stats =
        RunClients(&db, clients, args.ops_per_client, &next_pos);
    const int64_t total_ops =
        static_cast<int64_t>(stats.latencies_ns.size());
    const double throughput =
        stats.seconds > 0 ? static_cast<double>(total_ops) / stats.seconds
                          : 0;
    double mean_ns = 0;
    for (const int64_t ns : stats.latencies_ns) {
      mean_ns += static_cast<double>(ns);
    }
    if (total_ops > 0) mean_ns /= static_cast<double>(total_ops);

    const std::string prefix =
        "serve/clients:" + std::to_string(clients) + "/";
    const auto record = [&records, total_ops](const std::string& name,
                                              double ns, double rate) {
      rfv::benchjson::BenchRecord rec;
      rec.name = name;
      rec.iters = total_ops;
      rec.ns_per_op = ns;
      rec.rows_per_sec = rate;
      records.push_back(rec);
    };
    record(prefix + "throughput", mean_ns, throughput);
    record(prefix + "p50",
           static_cast<double>(Percentile(stats.latencies_ns, 0.50)), 0);
    record(prefix + "p95",
           static_cast<double>(Percentile(stats.latencies_ns, 0.95)), 0);
    record(prefix + "p99",
           static_cast<double>(Percentile(stats.latencies_ns, 0.99)), 0);

    std::printf(
        "clients=%d  ops=%lld  %.0f stmt/s  p50=%.2fms p95=%.2fms "
        "p99=%.2fms\n",
        clients, static_cast<long long>(total_ops), throughput,
        static_cast<double>(Percentile(stats.latencies_ns, 0.50)) / 1e6,
        static_cast<double>(Percentile(stats.latencies_ns, 0.95)) / 1e6,
        static_cast<double>(Percentile(stats.latencies_ns, 0.99)) / 1e6);
  }

  if (!args.json_out.empty() &&
      !rfv::benchjson::WriteJson(args.json_out, records)) {
    std::fprintf(stderr, "failed to write %s\n", args.json_out.c_str());
    return 1;
  }
  return 0;
}
