// Ablation A1 — the paper's §2.2 claim: the pipelined recursion
//   x̃_k = x̃_{k-1} + x_{k+h} − x_{k-l-1}
// performs 3 operations per position independent of the window size,
// while the naive explicit form performs w+1. Sweep the window size at
// fixed n and watch the naive curve grow linearly in w while the
// pipelined curve stays flat.

#include <benchmark/benchmark.h>

#include <vector>

#include "sequence/compute.h"

namespace rfv {
namespace {

std::vector<SeqValue> MakeData(int64_t n) {
  std::vector<SeqValue> x(static_cast<size_t>(n));
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (auto& v : x) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    v = static_cast<double>(state % 1000);
  }
  return x;
}

constexpr int64_t kN = 100000;

void BM_Compute_Naive(benchmark::State& state) {
  const int64_t half = state.range(0) / 2;
  const WindowSpec spec = WindowSpec::SlidingUnchecked(half, half + 1);
  const std::vector<SeqValue> x = MakeData(kN);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSlidingNaive(x, spec));
  }
  state.counters["w"] = static_cast<double>(spec.size());
}

void BM_Compute_Pipelined(benchmark::State& state) {
  const int64_t half = state.range(0) / 2;
  const WindowSpec spec = WindowSpec::SlidingUnchecked(half, half + 1);
  const std::vector<SeqValue> x = MakeData(kN);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSlidingPipelined(x, spec));
  }
  state.counters["w"] = static_cast<double>(spec.size());
}

void BM_Compute_MinMaxDeque(benchmark::State& state) {
  const int64_t half = state.range(0) / 2;
  const WindowSpec spec = WindowSpec::SlidingUnchecked(half, half + 1);
  const std::vector<SeqValue> x = MakeData(kN);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSlidingMinMax(x, spec, true));
  }
  state.counters["w"] = static_cast<double>(spec.size());
}

void BM_Compute_BuildCompleteSequence(benchmark::State& state) {
  const WindowSpec spec = WindowSpec::SlidingUnchecked(2, 1);
  const std::vector<SeqValue> x = MakeData(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildCompleteSequence(x, spec, SeqAggFn::kSum));
  }
}

BENCHMARK(BM_Compute_Naive)
    ->Arg(2)->Arg(8)->Arg(32)->Arg(64)->Arg(128)->Arg(200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Compute_Pipelined)
    ->Arg(2)->Arg(8)->Arg(32)->Arg(64)->Arg(128)->Arg(200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Compute_MinMaxDeque)
    ->Arg(2)->Arg(32)->Arg(200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Compute_BuildCompleteSequence)
    ->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rfv
