// Ablation A1 — the paper's §2.2 claim: the pipelined recursion
//   x̃_k = x̃_{k-1} + x_{k+h} − x_{k-l-1}
// performs 3 operations per position independent of the window size,
// while the naive explicit form performs w+1. Sweep the window size at
// fixed n and watch the naive curve grow linearly in w while the
// pipelined curve stays flat.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "sequence/compute.h"
#include "workload.h"

namespace rfv {
namespace {

std::vector<SeqValue> MakeData(int64_t n) {
  std::vector<SeqValue> x(static_cast<size_t>(n));
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (auto& v : x) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    v = static_cast<double>(state % 1000);
  }
  return x;
}

constexpr int64_t kN = 100000;

void BM_Compute_Naive(benchmark::State& state) {
  const int64_t half = state.range(0) / 2;
  const WindowSpec spec = WindowSpec::SlidingUnchecked(half, half + 1);
  const std::vector<SeqValue> x = MakeData(kN);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSlidingNaive(x, spec));
  }
  state.counters["w"] = static_cast<double>(spec.size());
}

void BM_Compute_Pipelined(benchmark::State& state) {
  const int64_t half = state.range(0) / 2;
  const WindowSpec spec = WindowSpec::SlidingUnchecked(half, half + 1);
  const std::vector<SeqValue> x = MakeData(kN);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSlidingPipelined(x, spec));
  }
  state.counters["w"] = static_cast<double>(spec.size());
}

void BM_Compute_MinMaxDeque(benchmark::State& state) {
  const int64_t half = state.range(0) / 2;
  const WindowSpec spec = WindowSpec::SlidingUnchecked(half, half + 1);
  const std::vector<SeqValue> x = MakeData(kN);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSlidingMinMax(x, spec, true));
  }
  state.counters["w"] = static_cast<double>(spec.size());
}

void BM_Compute_BuildCompleteSequence(benchmark::State& state) {
  const WindowSpec spec = WindowSpec::SlidingUnchecked(2, 1);
  const std::vector<SeqValue> x = MakeData(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildCompleteSequence(x, spec, SeqAggFn::kSum));
  }
}

// Partition-parallel window execution inside the engine: the same
// sliding-SUM idea expressed as a PARTITION BY window query, swept over
// the worker count (Arg = exec.window_workers; 1 = the serial
// baseline). 64 partitions x 2048 rows; the per-operator metrics
// breakdown is dumped to stderr once per worker count.
void BM_WindowOp_PartitionParallel(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  Database db;
  bench::BuildPartitionedSeqTable(&db, /*partitions=*/64,
                                  /*rows_per_partition=*/2048);
  db.options().exec.window_workers = workers;
  const char* query =
      "SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos ROWS "
      "BETWEEN 50 PRECEDING AND 50 FOLLOWING) FROM pseq ORDER BY grp, pos";
  for (auto _ : state) {
    const ResultSet rs = bench::MustExecute(&db, query);
    benchmark::DoNotOptimize(rs.NumRows());
    if (rs.NumRows() != 64u * 2048u) {
      state.SkipWithError("wrong result cardinality");
      return;
    }
    bench::PrintOperatorMetrics(
        rs, "window_parallel workers=" + std::to_string(workers));
  }
  state.counters["workers"] = static_cast<double>(workers);
}

BENCHMARK(BM_Compute_Naive)
    ->Arg(2)->Arg(8)->Arg(32)->Arg(64)->Arg(128)->Arg(200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Compute_Pipelined)
    ->Arg(2)->Arg(8)->Arg(32)->Arg(64)->Arg(128)->Arg(200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Compute_MinMaxDeque)
    ->Arg(2)->Arg(32)->Arg(200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Compute_BuildCompleteSequence)
    ->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WindowOp_PartitionParallel)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rfv
