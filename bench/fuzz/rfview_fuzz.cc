// rfview_fuzz: differential fuzzing driver for reporting-function views.
//
// Generates seeded random scenarios (src/testing/generator.h), replays
// each one through the oracle runner (native vs. reference evaluator,
// serial vs. parallel execution, MaxOA/MinOA rewrites vs. native,
// incremental maintenance vs. full recompute), and on any mismatch
// shrinks the scenario to a minimal reproducer and writes a replayable
// .sql artifact.
//
// Usage:
//   rfview_fuzz [--seed N] [--iterations N] [--time-budget SECONDS]
//               [--parallel-workers N] [--out-dir DIR]
//               [--inject-off-by-one] [--quiet]
//
// Exit status: 0 when every scenario passed every oracle, 1 on any
// mismatch, 2 on bad usage.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/metrics_registry.h"
#include "testing/generator.h"
#include "testing/interleave.h"
#include "testing/oracle.h"
#include "testing/shrinker.h"

namespace {

struct Args {
  uint64_t seed = 1;
  int iterations = 200;
  int interleave_iterations = 0;  // concurrent-session oracle scenarios
  double time_budget_s = 0;       // 0 = unlimited
  std::string out_dir = ".";
  rfv::fuzzing::OracleOptions oracle;
  bool quiet = false;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed N] [--iterations N] [--interleave N]\n"
      "          [--time-budget SECONDS]\n"
      "          [--parallel-workers N] [--out-dir DIR]\n"
      "          [--inject-off-by-one] [--quiet]\n",
      argv0);
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--iterations") {
      const char* v = next();
      if (v == nullptr) return false;
      args->iterations = std::atoi(v);
    } else if (flag == "--interleave") {
      const char* v = next();
      if (v == nullptr) return false;
      args->interleave_iterations = std::atoi(v);
    } else if (flag == "--time-budget") {
      const char* v = next();
      if (v == nullptr) return false;
      args->time_budget_s = std::atof(v);
    } else if (flag == "--parallel-workers") {
      const char* v = next();
      if (v == nullptr) return false;
      args->oracle.parallel_workers = std::atoi(v);
    } else if (flag == "--out-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      args->out_dir = v;
    } else if (flag == "--inject-off-by-one") {
      args->oracle.corruption =
          rfv::fuzzing::OracleOptions::Corruption::kOffByOne;
    } else if (flag == "--quiet") {
      args->quiet = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return args->iterations > 0 || args->interleave_iterations > 0 ||
         args->time_budget_s > 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_s = [&]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  int executed = 0;
  int failed = 0;
  int64_t total_checks = 0;

  // Concurrent-session interleave campaign: serial replay vs. racing
  // per-session threads (testing/interleave.h). Iteration-bounded, so
  // it runs before the open-ended scenario campaign consumes the time
  // budget. No shrinker — the schedule transcript is already minimal
  // enough to replay by hand.
  for (int i = 0; i < args.interleave_iterations; ++i) {
    if (args.time_budget_s > 0 && elapsed_s() >= args.time_budget_s) break;
    const rfv::fuzzing::InterleaveScenario scenario =
        rfv::fuzzing::GenerateInterleaveScenario(args.seed, i);
    const rfv::fuzzing::InterleaveVerdict verdict =
        rfv::fuzzing::RunInterleaveScenario(scenario);
    ++executed;
    total_checks += verdict.checks;
    if (!verdict.ok()) {
      ++failed;
      std::printf("MISMATCH %s\n%s\n", scenario.Id().c_str(),
                  verdict.Summary().c_str());
      const std::string path = args.out_dir + "/fuzz_interleave_seed" +
                               std::to_string(args.seed) + "_iter" +
                               std::to_string(i) + ".sql";
      std::error_code ec;
      std::filesystem::create_directories(args.out_dir, ec);
      std::ofstream out(path);
      if (out) {
        out << scenario.ToSqlScript();
        std::printf("  schedule written to %s\n", path.c_str());
      }
    }
  }

  for (int i = 0; i < args.iterations || (args.iterations <= 0 &&
                                          args.time_budget_s > 0);
       ++i) {
    if (args.time_budget_s > 0 && elapsed_s() >= args.time_budget_s) {
      if (!args.quiet) {
        std::printf("time budget reached after %d scenarios\n", executed);
      }
      break;
    }
    const rfv::fuzzing::Scenario scenario =
        rfv::fuzzing::GenerateScenario(args.seed, i);
    rfv::fuzzing::ScenarioVerdict verdict =
        rfv::fuzzing::RunScenario(scenario, args.oracle);
    ++executed;
    total_checks += verdict.TotalChecks();

    if (!verdict.ok()) {
      ++failed;
      std::printf("MISMATCH %s (%s): %s\n", scenario.Id().c_str(),
                  rfv::fuzzing::ScenarioKindName(scenario.kind),
                  verdict.failures.front().oracle.c_str());
      const rfv::fuzzing::ShrinkResult shrunk =
          rfv::fuzzing::ShrinkScenario(scenario, args.oracle);
      std::printf(
          "  shrunk: %zu rows, %zu queries, %zu views, %zu batches "
          "(%d attempts, %d accepted)\n",
          shrunk.scenario.rows.size(), shrunk.scenario.queries.size(),
          shrunk.scenario.views.size(), shrunk.scenario.dml_batches.size(),
          shrunk.attempts, shrunk.accepted);
      const std::string path = args.out_dir + "/fuzz_repro_seed" +
                               std::to_string(args.seed) + "_iter" +
                               std::to_string(i) + ".sql";
      std::error_code ec;  // best-effort; ofstream reports the failure
      std::filesystem::create_directories(args.out_dir, ec);
      std::ofstream out(path);
      if (out) {
        out << rfv::fuzzing::ReproSql(shrunk.scenario, shrunk.verdict);
        std::printf("  repro written to %s\n", path.c_str());
      } else {
        std::printf("  could not write repro to %s\n", path.c_str());
      }
      std::printf("%s\n", shrunk.verdict.Summary().c_str());
    } else if (!args.quiet && executed % 50 == 0) {
      std::printf("...%d scenarios, %lld checks, %d mismatches (%.1fs)\n",
                  executed, static_cast<long long>(total_checks), failed,
                  elapsed_s());
    }
  }

  std::printf(
      "rfview_fuzz: seed=%llu scenarios=%d oracle_checks=%lld "
      "mismatches=%d elapsed=%.1fs\n",
      static_cast<unsigned long long>(args.seed), executed,
      static_cast<long long>(total_checks), failed, elapsed_s());
  if (!args.quiet) {
    // The harness's own counters, via the engine's metrics registry.
    const std::string metrics =
        "\n" + rfv::MetricsRegistry::Global().ToPrometheusText();
    for (const char* name :
         {"rfv_fuzz_scenarios_total", "rfv_fuzz_checks_total",
          "rfv_fuzz_mismatches_total", "rfv_fuzz_interleave_scenarios_total",
          "rfv_fuzz_interleave_checks_total",
          "rfv_fuzz_interleave_mismatches_total"}) {
      // Value lines start at column 0 ("# HELP"/"# TYPE" lines do not).
      const size_t pos = metrics.find("\n" + std::string(name) + " ");
      if (pos != std::string::npos) {
        const size_t end = metrics.find('\n', pos + 1);
        std::printf("%s\n", metrics.substr(pos + 1, end - pos - 1).c_str());
      }
    }
  }
  return failed == 0 ? 0 : 1;
}
