#ifndef RFVIEW_BENCH_WORKLOAD_H_
#define RFVIEW_BENCH_WORKLOAD_H_

#include <string>

#include "db/database.h"

namespace rfv {
namespace bench {

/// Builds the paper's synthetic sequence table `seq(pos INTEGER, val
/// DOUBLE)` with dense positions 1..n and deterministic pseudo-random
/// values, loading rows through the storage API (benchmark setup must
/// not be dominated by INSERT parsing). `with_index` creates the ordered
/// index on pos — the paper's "with primary key index" configuration.
void BuildSeqTable(Database* db, int64_t n, bool with_index,
                   const std::string& name = "seq");

/// Materializes the complete sequence view used by the Table 2
/// experiments: SUM(val) OVER (ORDER BY pos ROWS BETWEEN l PRECEDING AND
/// h FOLLOWING) with header/trailer and a pos index.
void BuildSequenceView(Database* db, const std::string& view_name, int64_t l,
                       int64_t h, const std::string& base = "seq");

/// Runs one SQL statement, aborting on error (benchmark misconfiguration
/// must be loud).
ResultSet MustExecute(Database* db, const std::string& sql);

}  // namespace bench
}  // namespace rfv

#endif  // RFVIEW_BENCH_WORKLOAD_H_
