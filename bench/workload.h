#ifndef RFVIEW_BENCH_WORKLOAD_H_
#define RFVIEW_BENCH_WORKLOAD_H_

#include <string>

#include "db/database.h"

namespace rfv {
namespace bench {

/// Builds the paper's synthetic sequence table `seq(pos INTEGER, val
/// DOUBLE)` with dense positions 1..n and deterministic pseudo-random
/// values, loading rows through the storage API (benchmark setup must
/// not be dominated by INSERT parsing). `with_index` creates the ordered
/// index on pos — the paper's "with primary key index" configuration.
void BuildSeqTable(Database* db, int64_t n, bool with_index,
                   const std::string& name = "seq");

/// Materializes the complete sequence view used by the Table 2
/// experiments: SUM(val) OVER (ORDER BY pos ROWS BETWEEN l PRECEDING AND
/// h FOLLOWING) with header/trailer and a pos index.
void BuildSequenceView(Database* db, const std::string& view_name, int64_t l,
                       int64_t h, const std::string& base = "seq");

/// Builds a multi-partition sequence table `name(grp INTEGER, pos
/// INTEGER, val DOUBLE)`: `partitions` groups of `rows_per_partition`
/// dense positions each, deterministic pseudo-random values. The
/// workload for partition-parallel window execution.
void BuildPartitionedSeqTable(Database* db, int64_t partitions,
                              int64_t rows_per_partition,
                              const std::string& name = "pseq");

/// Runs one SQL statement, aborting on error (benchmark misconfiguration
/// must be loud).
ResultSet MustExecute(Database* db, const std::string& sql);

/// Dumps a result's per-operator metrics report to stderr under `tag`
/// (once per distinct tag — benchmarks call this every iteration).
void PrintOperatorMetrics(const ResultSet& rs, const std::string& tag);

}  // namespace bench
}  // namespace rfv

#endif  // RFVIEW_BENCH_WORKLOAD_H_
