// Paper Table 2 — "Computing Sequence Data" (deriving sequence queries
// from a materialized sequence view).
//
// Scenario (paper §3.2/§7): materialized view x̃ = (2,1), incoming query
// ỹ = (3,1); n ∈ {100, 500, 1000, 1500, 2000, 3000, 5000}; primary-key
// index on the view's pos column. Four configurations:
//   MaxOA  × {disjunctive join predicate, union of simple-pred queries}
//   MinOA  × {disjunctive join predicate, union of simple-pred queries}
//
// Expected shape (paper): all four grow super-linearly on a pure
// relational engine; the disjunctive variant beats the union variant at
// small n; MaxOA vs. MinOA has no universal winner.

#include <benchmark/benchmark.h>

#include "json_reporter.h"

#include "workload.h"

namespace rfv {
namespace bench {
namespace {

constexpr const char* kQuery =
    "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND "
    "1 FOLLOWING) FROM seq";

void RunDerivation(benchmark::State& state, DerivationMethod method,
                   RewriteVariant variant) {
  const int64_t n = state.range(0);
  Database db;
  BuildSeqTable(&db, n, /*with_index=*/true);
  BuildSequenceView(&db, "matseq", /*l=*/2, /*h=*/1);
  db.options().force_method = method;
  db.options().rewrite_variant = variant;
  for (auto _ : state) {
    const ResultSet rs = MustExecute(&db, kQuery);
    benchmark::DoNotOptimize(rs.NumRows());
    if (rs.rewrite_method().empty() ||
        rs.NumRows() != static_cast<size_t>(n)) {
      state.SkipWithError("rewrite did not apply");
      return;
    }
  }
  state.counters["rows"] = static_cast<double>(n);
}

void BM_Table2_MaxOA_Disjunctive(benchmark::State& state) {
  RunDerivation(state, DerivationMethod::kMaxoa,
                RewriteVariant::kDisjunctive);
}
void BM_Table2_MaxOA_Union(benchmark::State& state) {
  RunDerivation(state, DerivationMethod::kMaxoa, RewriteVariant::kUnion);
}
void BM_Table2_MinOA_Disjunctive(benchmark::State& state) {
  RunDerivation(state, DerivationMethod::kMinoa,
                RewriteVariant::kDisjunctive);
}
void BM_Table2_MinOA_Union(benchmark::State& state) {
  RunDerivation(state, DerivationMethod::kMinoa, RewriteVariant::kUnion);
}

void Table2Sizes(benchmark::internal::Benchmark* b) {
  for (const int64_t n : {100, 500, 1000, 1500, 2000, 3000, 5000}) {
    b->Arg(n);
  }
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Table2_MaxOA_Disjunctive)->Apply(Table2Sizes);
BENCHMARK(BM_Table2_MaxOA_Union)->Apply(Table2Sizes);
BENCHMARK(BM_Table2_MinOA_Disjunctive)->Apply(Table2Sizes);
BENCHMARK(BM_Table2_MinOA_Union)->Apply(Table2Sizes);

}  // namespace
}  // namespace bench
}  // namespace rfv

BENCH_MAIN_WITH_JSON()
