// Ablation A2 — the paper's §2.3 claim: incremental maintenance of a
// materialized sequence touches only the w positions whose window
// overlaps the change, so it beats a full recomputation by n/w.

#include <benchmark/benchmark.h>

#include "json_reporter.h"

#include <vector>

#include "db/database.h"
#include "sequence/compute.h"
#include "sequence/maintain.h"
#include "view/maintenance.h"

namespace rfv {
namespace {

std::vector<SeqValue> MakeData(int64_t n) {
  std::vector<SeqValue> x(static_cast<size_t>(n));
  uint64_t state = 0xdeadbeef12345678ull;
  for (auto& v : x) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    v = static_cast<double>(state % 1000);
  }
  return x;
}

const WindowSpec kSpec = WindowSpec::SlidingUnchecked(3, 2);

void BM_Maintenance_IncrementalUpdate(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<SeqValue> x = MakeData(n);
  Sequence seq = BuildCompleteSequence(x, kSpec, SeqAggFn::kSum);
  int64_t k = 1;
  for (auto _ : state) {
    k = k % n + 1;
    benchmark::DoNotOptimize(
        MaintainUpdate(&x, &seq, k, static_cast<double>(k % 97)));
  }
  state.counters["n"] = static_cast<double>(n);
}

void BM_Maintenance_FullRecomputeUpdate(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<SeqValue> x = MakeData(n);
  int64_t k = 1;
  for (auto _ : state) {
    k = k % n + 1;
    x[static_cast<size_t>(k - 1)] = static_cast<double>(k % 97);
    benchmark::DoNotOptimize(BuildCompleteSequence(x, kSpec, SeqAggFn::kSum));
  }
  state.counters["n"] = static_cast<double>(n);
}

void BM_Maintenance_IncrementalInsert(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<SeqValue> x = MakeData(n);
  Sequence seq = BuildCompleteSequence(x, kSpec, SeqAggFn::kSum);
  for (auto _ : state) {
    // Alternate insert/delete to keep n stable across iterations.
    benchmark::DoNotOptimize(MaintainInsert(&x, &seq, n / 2, 42.0));
    benchmark::DoNotOptimize(MaintainDelete(&x, &seq, n / 2));
  }
  state.counters["n"] = static_cast<double>(n);
}

void BM_Maintenance_MinMaxIncrementalUpdate(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<SeqValue> x = MakeData(n);
  Sequence seq = BuildCompleteSequence(x, kSpec, SeqAggFn::kMin);
  int64_t k = 1;
  for (auto _ : state) {
    k = k % n + 1;
    benchmark::DoNotOptimize(
        MaintainUpdate(&x, &seq, k, static_cast<double>(k % 97)));
  }
  state.counters["n"] = static_cast<double>(n);
}

/// Table-backed variants: the same update propagated through the storage
/// layer into a materialized view's content table (w indexed row
/// updates) vs. a full view refresh.
void SetupViewDb(Database* db, int64_t n) {
  Result<Table*> table = db->catalog()->CreateTable(
      "seq", Schema({ColumnDef("pos", DataType::kInt64),
                     ColumnDef("val", DataType::kDouble)}));
  std::vector<Row> rows;
  for (int64_t i = 1; i <= n; ++i) {
    rows.push_back(Row({Value::Int(i), Value::Double(i % 97)}));
  }
  (void)(*table)->InsertBatch(std::move(rows));
  (void)(*table)->CreateIndex("seq_pk", "pos");
  SequenceViewDef def;
  def.view_name = "v";
  def.base_table = "seq";
  def.value_column = "val";
  def.order_column = "pos";
  def.fn = SeqAggFn::kSum;
  def.window = WindowSpec::SlidingUnchecked(3, 2);
  (void)db->view_manager()->CreateSequenceView(def);
}

void BM_Maintenance_ViewIncrementalUpdate(benchmark::State& state) {
  const int64_t n = state.range(0);
  Database db;
  SetupViewDb(&db, n);
  int64_t k = 1;
  for (auto _ : state) {
    k = k % n + 1;
    benchmark::DoNotOptimize(PropagateBaseUpdate(
        db.view_manager(), "seq", k, static_cast<double>(k % 89)));
  }
  state.counters["n"] = static_cast<double>(n);
}

void BM_Maintenance_ViewFullRefresh(benchmark::State& state) {
  const int64_t n = state.range(0);
  Database db;
  SetupViewDb(&db, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.view_manager()->RefreshView("v"));
  }
  state.counters["n"] = static_cast<double>(n);
}

BENCHMARK(BM_Maintenance_IncrementalUpdate)
    ->Arg(10000)->Arg(100000)->Arg(1000000);
BENCHMARK(BM_Maintenance_FullRecomputeUpdate)
    ->Arg(10000)->Arg(100000)->Arg(1000000);
BENCHMARK(BM_Maintenance_IncrementalInsert)->Arg(10000)->Arg(100000);
BENCHMARK(BM_Maintenance_MinMaxIncrementalUpdate)->Arg(10000)->Arg(100000);
BENCHMARK(BM_Maintenance_ViewIncrementalUpdate)->Arg(1000)->Arg(10000);
BENCHMARK(BM_Maintenance_ViewFullRefresh)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace rfv

BENCH_MAIN_WITH_JSON()
