// Paper Table 1 — "Computing Sequence Data".
//
// Query: SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1
// PRECEDING AND 1 FOLLOWING) FROM seq
//
// Four configurations per cardinality n ∈ {5000, 10000, 15000}:
//   * reporting functionality inside the engine (native window operator),
//     with and without a primary-key index (the operator ignores indexes,
//     so the two columns should coincide — exactly as in the paper),
//   * the Fig. 2 self-join simulation, with and without the index
//     (without: quadratic nested loops; with: index nested-loop join).
//
// Expected shape (paper): native ≈ linear and fastest; self join without
// index grows ~quadratically; self join with index ≈ linear with a small
// constant multiple of native.

// Set RFVIEW_TRACE=1 to run every query with lifecycle tracing enabled
// (measures the tracing overhead against the default untraced run).

#include <benchmark/benchmark.h>

#include "json_reporter.h"

#include <cstdlib>
#include <string>

#include "workload.h"

namespace rfv {
namespace bench {
namespace {

constexpr const char* kNativeQuery =
    "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND "
    "1 FOLLOWING) FROM seq";

constexpr const char* kSelfJoinQuery =
    "SELECT s1.pos AS pos, SUM(s2.val) AS val FROM seq s1, seq s2 WHERE "
    "s1.pos IN (s2.pos - 1, s2.pos, s2.pos + 1) GROUP BY s1.pos";

void RunQuery(benchmark::State& state, const char* tag, const char* query,
              bool with_index, bool allow_index_join) {
  const int64_t n = state.range(0);
  Database db;
  BuildSeqTable(&db, n, with_index);
  db.options().exec.enable_index_nested_loop_join = allow_index_join;
  const char* trace_env = std::getenv("RFVIEW_TRACE");
  db.options().enable_tracing =
      trace_env != nullptr && std::string(trace_env) == "1";
  for (auto _ : state) {
    const ResultSet rs = MustExecute(&db, query);
    benchmark::DoNotOptimize(rs.NumRows());
    if (rs.NumRows() != static_cast<size_t>(n)) {
      state.SkipWithError("wrong result cardinality");
      return;
    }
    // Per-operator breakdown (scan/join/sort/aggregate/window rows and
    // wall times), printed once per benchmark cell.
    PrintOperatorMetrics(rs, std::string(tag) + "/" + std::to_string(n));
  }
  state.counters["rows"] = static_cast<double>(n);
}

void BM_Table1_ReportingFunction_NoIndex(benchmark::State& state) {
  RunQuery(state, "native_noindex", kNativeQuery, /*with_index=*/false,
           /*allow_index_join=*/false);
}

void BM_Table1_ReportingFunction_WithIndex(benchmark::State& state) {
  RunQuery(state, "native_index", kNativeQuery, /*with_index=*/true,
           /*allow_index_join=*/true);
}

void BM_Table1_SelfJoin_NoIndex(benchmark::State& state) {
  RunQuery(state, "selfjoin_noindex", kSelfJoinQuery, /*with_index=*/false,
           /*allow_index_join=*/false);
}

void BM_Table1_SelfJoin_WithIndex(benchmark::State& state) {
  RunQuery(state, "selfjoin_index", kSelfJoinQuery, /*with_index=*/true,
           /*allow_index_join=*/true);
}

// The paper's cardinalities. The no-index self join is quadratic; run a
// single iteration per cell.
BENCHMARK(BM_Table1_ReportingFunction_NoIndex)
    ->Arg(5000)->Arg(10000)->Arg(15000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Table1_ReportingFunction_WithIndex)
    ->Arg(5000)->Arg(10000)->Arg(15000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Table1_SelfJoin_NoIndex)
    ->Arg(5000)->Arg(10000)->Arg(15000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Table1_SelfJoin_WithIndex)
    ->Arg(5000)->Arg(10000)->Arg(15000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace rfv

BENCH_MAIN_WITH_JSON()
