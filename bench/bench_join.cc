// Ablation A5 — join strategy comparison on the engine substrate: the
// same equi self join executed as nested loops, hash join, sort-merge
// join and index nested-loop join. Explains where Table 1/2's
// "with index" numbers come from and what DB2's buffer-backed plans
// correspond to in this engine.

#include <benchmark/benchmark.h>

#include "json_reporter.h"
#include "workload.h"

namespace rfv {
namespace bench {
namespace {

constexpr const char* kEquiJoin =
    "SELECT s1.pos AS pos, SUM(s2.val) AS val FROM seq s1, seq s2 WHERE "
    "s1.pos = s2.pos GROUP BY s1.pos";

void RunJoin(benchmark::State& state, bool hash, bool smj, bool inlj) {
  Database db;
  BuildSeqTable(&db, state.range(0), /*with_index=*/inlj);
  db.options().exec.enable_hash_join = hash;
  db.options().exec.enable_sort_merge_join = smj;
  db.options().exec.enable_index_nested_loop_join = inlj;
  for (auto _ : state) {
    const ResultSet rs = MustExecute(&db, kEquiJoin);
    benchmark::DoNotOptimize(rs.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Join_NestedLoop(benchmark::State& state) {
  RunJoin(state, false, false, false);
}
void BM_Join_Hash(benchmark::State& state) {
  RunJoin(state, true, false, false);
}
void BM_Join_SortMerge(benchmark::State& state) {
  RunJoin(state, false, true, false);
}
void BM_Join_IndexNestedLoop(benchmark::State& state) {
  RunJoin(state, false, false, true);
}

BENCHMARK(BM_Join_NestedLoop)
    ->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Join_Hash)
    ->Arg(1000)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_SortMerge)
    ->Arg(1000)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_IndexNestedLoop)
    ->Arg(1000)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);

// Band self join — the shape every Fig. 2/10/13 rewrite emits. The
// merge band join sorts once and walks a monotone cursor (O(n +
// matches)); the index nested loop re-probes the hull per left row;
// the nested loop sweeps all pairs.
constexpr const char* kBandJoin =
    "SELECT s1.pos AS pos, SUM(s2.val) AS val FROM seq s1, seq s2 WHERE "
    "s2.pos >= s1.pos - 8 AND s2.pos <= s1.pos + 8 GROUP BY s1.pos";

void RunBandJoin(benchmark::State& state, bool band, bool inlj) {
  Database db;
  BuildSeqTable(&db, state.range(0), /*with_index=*/inlj);
  db.options().exec.enable_merge_band_join = band;
  db.options().exec.enable_index_nested_loop_join = inlj;
  for (auto _ : state) {
    const ResultSet rs = MustExecute(&db, kBandJoin);
    benchmark::DoNotOptimize(rs.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_BandJoin_NestedLoop(benchmark::State& state) {
  RunBandJoin(state, false, false);
}
void BM_BandJoin_IndexNestedLoop(benchmark::State& state) {
  RunBandJoin(state, false, true);
}
void BM_BandJoin_Merge(benchmark::State& state) {
  RunBandJoin(state, true, false);
}

BENCHMARK(BM_BandJoin_NestedLoop)
    ->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_BandJoin_IndexNestedLoop)
    ->Arg(1000)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BandJoin_Merge)
    ->Arg(1000)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);

// Hash join probe path, row vs. vector execution (tentpole ablation):
// the same forced hash join — bulk-hashed build + chain-chasing
// vectorized probe against the row-at-a-time build/probe. Same query
// as A5's BM_Join_Hash, but with the execution mode pinned per series
// instead of inheriting the engine default.
void RunHashProbe(benchmark::State& state, bool vectorized) {
  Database db;
  BuildSeqTable(&db, state.range(0), /*with_index=*/false);
  db.options().exec.enable_hash_join = true;
  db.options().exec.enable_sort_merge_join = false;
  db.options().exec.enable_index_nested_loop_join = false;
  db.options().exec.use_vectorized_execution = vectorized;
  db.options().exec.use_batch_execution = vectorized;
  for (auto _ : state) {
    const ResultSet rs = MustExecute(&db, kEquiJoin);
    benchmark::DoNotOptimize(rs.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_HashJoin_RowProbe(benchmark::State& state) {
  RunHashProbe(state, false);
}
void BM_HashJoin_VectorProbe(benchmark::State& state) {
  RunHashProbe(state, true);
}

BENCHMARK(BM_HashJoin_RowProbe)
    ->Arg(1000)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HashJoin_VectorProbe)
    ->Arg(1000)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace rfv

BENCH_MAIN_WITH_JSON()
