#include "stats/table_stats.h"

#include <gtest/gtest.h>

#include "db/database.h"
#include "test_util.h"

namespace rfv {
namespace {

using testutil::CreateSeqTable;
using testutil::MustExecute;

const TableStats& StatsOf(Database& db, const std::string& table) {
  Result<Table*> t = db.catalog()->GetTable(table);
  EXPECT_TRUE(t.ok()) << table;
  return (*t)->stats();
}

TEST(TableStatsTest, RowCountExactUnderDml) {
  Database db;
  CreateSeqTable(db, 10);
  EXPECT_EQ(StatsOf(db, "seq").row_count, 10);

  MustExecute(db, "INSERT INTO seq VALUES (11, 1), (12, 2)");
  EXPECT_EQ(StatsOf(db, "seq").row_count, 12);

  MustExecute(db, "DELETE FROM seq WHERE pos > 10");
  EXPECT_EQ(StatsOf(db, "seq").row_count, 10);

  // UPDATE replaces rows in place: the count must not move.
  MustExecute(db, "UPDATE seq SET val = val + 1 WHERE pos <= 5");
  EXPECT_EQ(StatsOf(db, "seq").row_count, 10);

  MustExecute(db, "DELETE FROM seq");
  EXPECT_EQ(StatsOf(db, "seq").row_count, 0);
}

TEST(TableStatsTest, InsertWidensRangeImmediately) {
  Database db;
  MustExecute(db, "CREATE TABLE t (pos INTEGER PRIMARY KEY, val DOUBLE)");
  MustExecute(db, "INSERT INTO t VALUES (5, 1.5), (7, -2.0)");
  const ColumnStats& pos = StatsOf(db, "t").columns[0];
  ASSERT_TRUE(pos.has_range);
  EXPECT_EQ(pos.min_value, 5);
  EXPECT_EQ(pos.max_value, 7);
  EXPECT_FALSE(pos.stale);

  MustExecute(db, "INSERT INTO t VALUES (1, 9.0)");
  EXPECT_EQ(StatsOf(db, "t").columns[0].min_value, 1);
  EXPECT_EQ(StatsOf(db, "t").columns[0].max_value, 7);
  EXPECT_EQ(StatsOf(db, "t").columns[0].RangeWidth(), 7);
}

TEST(TableStatsTest, DeleteOfBoundaryMarksStaleInteriorDoesNot) {
  Database db;
  CreateSeqTable(db, 10);
  // Interior delete: the [1, 10] pos range survives exactly.
  MustExecute(db, "DELETE FROM seq WHERE pos = 5");
  EXPECT_FALSE(StatsOf(db, "seq").columns[0].stale);
  EXPECT_EQ(StatsOf(db, "seq").columns[0].max_value, 10);

  // Boundary delete: the stored max (10) now over-approximates.
  MustExecute(db, "DELETE FROM seq WHERE pos = 10");
  EXPECT_TRUE(StatsOf(db, "seq").columns[0].stale);
  EXPECT_TRUE(StatsOf(db, "seq").AnyStale());
  // Widen-only: the stored bounds remain a valid over-approximation.
  EXPECT_EQ(StatsOf(db, "seq").columns[0].max_value, 10);
}

TEST(TableStatsTest, AnalyzeRestoresExactness) {
  Database db;
  CreateSeqTable(db, 10);
  MustExecute(db, "DELETE FROM seq WHERE pos >= 9");
  ASSERT_TRUE(StatsOf(db, "seq").AnyStale());
  EXPECT_EQ(StatsOf(db, "seq").columns[0].distinct_count, -1);

  const ResultSet rs = MustExecute(db, "ANALYZE seq");
  EXPECT_EQ(rs.affected(), 1);

  const TableStats& stats = StatsOf(db, "seq");
  EXPECT_FALSE(stats.AnyStale());
  EXPECT_EQ(stats.columns[0].distinct_count, 8);
  EXPECT_EQ(stats.columns[0].max_value, 8);
  EXPECT_EQ(stats.analyze_count, 1);
  EXPECT_EQ(stats.dml_since_analyze, 0);
}

TEST(TableStatsTest, AnalyzeAllCoversEveryCatalogTable) {
  Database db;
  CreateSeqTable(db, 5, "a");
  CreateSeqTable(db, 5, "b");
  const ResultSet rs = MustExecute(db, "ANALYZE");
  EXPECT_EQ(rs.affected(), 2);
  EXPECT_EQ(StatsOf(db, "a").columns[1].distinct_count, 5);
  EXPECT_EQ(StatsOf(db, "b").analyze_count, 1);
}

TEST(TableStatsTest, AnalyzeUnknownTableErrors) {
  Database db;
  EXPECT_FALSE(db.Execute("ANALYZE nope").ok());
}

TEST(TableStatsTest, ExplainAnalyzeStillParsesAsExplain) {
  // The ANALYZE keyword must not swallow EXPLAIN ANALYZE SELECT.
  Database db;
  CreateSeqTable(db, 5);
  const ResultSet rs = MustExecute(db, "EXPLAIN ANALYZE SELECT * FROM seq");
  ASSERT_GT(rs.NumRows(), 0u);
  EXPECT_NE(rs.at(0, 0).AsString().find("EXPLAIN ANALYZE"),
            std::string::npos);
}

TEST(TableStatsTest, NullsCountedSeparately) {
  Database db;
  MustExecute(db, "CREATE TABLE t (pos INTEGER PRIMARY KEY, val DOUBLE)");
  MustExecute(db, "INSERT INTO t VALUES (1, 1.0), (2, NULL), (3, NULL)");
  const ColumnStats& val = StatsOf(db, "t").columns[1];
  EXPECT_EQ(val.non_null_count, 1);
  EXPECT_EQ(val.null_count, 2);
}

TEST(TableStatsTest, TruncateClears) {
  Database db;
  CreateSeqTable(db, 5);
  Result<Table*> t = db.catalog()->GetTable("seq");
  ASSERT_TRUE(t.ok());
  (*t)->Truncate();
  EXPECT_EQ((*t)->stats().row_count, 0);
  EXPECT_FALSE((*t)->stats().columns.empty()
                   ? false
                   : (*t)->stats().columns[0].has_range);
}

TEST(TableStatsTest, ViewContentAnalyzedOnMaterializeAndRefresh) {
  Database db;
  CreateSeqTable(db, 20);
  MustExecute(db,
              "CREATE MATERIALIZED VIEW v AS SELECT pos, SUM(val) OVER "
              "(ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) "
              "FROM seq");
  {
    const TableStats& stats = StatsOf(db, "v");
    // Content = 20 body + 2 header + 1 trailer rows, analyzed on
    // materialization so the cost model reads exact distinct counts.
    EXPECT_EQ(stats.row_count, 23);
    EXPECT_EQ(stats.columns[0].distinct_count, 23);
    EXPECT_FALSE(stats.AnyStale());
    EXPECT_GE(stats.analyze_count, 1);
  }

  MustExecute(db, "INSERT INTO seq VALUES (21, 3), (22, 4)");
  ASSERT_TRUE(db.view_manager()->RefreshView("v").ok());
  {
    const TableStats& stats = StatsOf(db, "v");
    EXPECT_EQ(stats.row_count, 25);
    EXPECT_EQ(stats.columns[0].distinct_count, 25);
    EXPECT_FALSE(stats.AnyStale());
  }
}

TEST(TableStatsTest, ToStringMentionsColumns) {
  Database db;
  CreateSeqTable(db, 3);
  MustExecute(db, "ANALYZE seq");
  Result<Table*> t = db.catalog()->GetTable("seq");
  ASSERT_TRUE(t.ok());
  const std::string text =
      (*t)->stats().ToString((*t)->schema());
  EXPECT_NE(text.find("pos"), std::string::npos);
  EXPECT_NE(text.find("val"), std::string::npos);
}

}  // namespace
}  // namespace rfv
