#include "stats/cost_model.h"

#include <gtest/gtest.h>

#include "rewrite/derivability.h"
#include "rewrite/rewriter.h"
#include "test_util.h"

namespace rfv {
namespace {

using testutil::CreateSeqTable;
using testutil::MustExecute;
using testutil::RowsEqual;

/// Stats of a complete sequence view over an n-row base with window
/// (l, h): content = n + l + h rows.
PatternStats MakeStats(int64_t n, int64_t l, int64_t h) {
  PatternStats stats;
  stats.body_rows = n;
  stats.content_rows = n + l + h;
  stats.base_rows = n;
  return stats;
}

SequenceViewDef MakeView(const std::string& name, int64_t l, int64_t h,
                         int64_t n) {
  SequenceViewDef def;
  def.view_name = name;
  def.base_table = "seq";
  def.value_column = "val";
  def.order_column = "pos";
  def.fn = SeqAggFn::kSum;
  def.window = WindowSpec::SlidingUnchecked(l, h);
  def.n = n;
  return def;
}

SeqQuery MakeQuery(int64_t l, int64_t h) {
  SeqQuery query;
  query.base_table = "seq";
  query.order_column = "pos";
  query.value_column = "val";
  query.fn = SeqAggFn::kSum;
  query.window = WindowSpec::SlidingUnchecked(l, h);
  return query;
}

TEST(CostModelTest, DirectIsCheapestPattern) {
  const PatternStats stats = MakeStats(50, 2, 1);
  const double direct = EstimateDirectCost(stats).total;
  EXPECT_LT(direct, EstimateCumulativeDiffCost(stats).total);
  EXPECT_LT(direct, EstimateMinMaxCoverCost(stats).total);
}

TEST(CostModelTest, MinoaUndercutsMaxoaOnWidenedWindow) {
  // View (2,1), query (3,1): MaxOA's disjunction carries 3 congruence
  // branches (base + low-side pair), MinOA's only 2 — and both touch
  // comparable chain tuples. The paper's §7 trade-off, decided by the
  // nested-loop branch width.
  const PatternStats stats = MakeStats(50, 2, 1);
  const WindowSpec view_window = WindowSpec::SlidingUnchecked(2, 1);
  const Result<MaxoaParams> maxoa =
      PlanMaxoa(view_window, WindowSpec::SlidingUnchecked(3, 1));
  const Result<MinoaParams> minoa =
      PlanMinoa(view_window, WindowSpec::SlidingUnchecked(3, 1));
  ASSERT_TRUE(maxoa.ok());
  ASSERT_TRUE(minoa.ok());
  const CostEstimate maxoa_cost =
      EstimateMaxoaCost(view_window, *maxoa, stats);
  const CostEstimate minoa_cost =
      EstimateMinoaCost(view_window, *minoa, stats);
  EXPECT_LT(minoa_cost.total, maxoa_cost.total);
  // The gap is exactly the extra branch sweep over the n·m pairs.
  EXPECT_GT(maxoa_cost.pred_evals, minoa_cost.pred_evals);
}

TEST(CostModelTest, CoincidentMinoaCollapsesToOneBranch) {
  // View (1,0) has w_x = 2; a (3,0) query gives Δl+Δh = 2, divisible by
  // w_x — Fig. 13's best case: a single bounded BETWEEN branch.
  const PatternStats stats = MakeStats(50, 1, 0);
  const WindowSpec view_window = WindowSpec::SlidingUnchecked(1, 0);
  const Result<MinoaParams> coincident =
      PlanMinoa(view_window, WindowSpec::SlidingUnchecked(3, 0));
  const Result<MinoaParams> offset =
      PlanMinoa(view_window, WindowSpec::SlidingUnchecked(2, 0));
  ASSERT_TRUE(coincident.ok());
  ASSERT_TRUE(offset.ok());
  const double one_branch =
      EstimateMinoaCost(view_window, *coincident, stats).total;
  const double two_chains =
      EstimateMinoaCost(view_window, *offset, stats).total;
  EXPECT_LT(one_branch, two_chains / 2);
}

TEST(CostModelTest, BaselineGrowsWithQueryWindow) {
  const PatternStats stats = MakeStats(100, 2, 1);
  const double narrow =
      EstimateSelfJoinRecomputeCost(WindowSpec::SlidingUnchecked(1, 1), stats)
          .total;
  const double wide =
      EstimateSelfJoinRecomputeCost(WindowSpec::SlidingUnchecked(20, 20),
                                    stats)
          .total;
  const double cumulative =
      EstimateSelfJoinRecomputeCost(WindowSpec::Cumulative(), stats).total;
  EXPECT_LT(narrow, wide);
  EXPECT_LT(wide, cumulative);  // cumulative aggregates ~b/2 per row
}

TEST(CostModelTest, SummaryRendersAllTerms) {
  const CostEstimate est = EstimateDirectCost(MakeStats(10, 1, 1));
  const std::string s = est.Summary();
  EXPECT_NE(s.find("total="), std::string::npos);
  EXPECT_NE(s.find("read="), std::string::npos);
  EXPECT_NE(s.find("pred="), std::string::npos);
}

TEST(CostModelTest, JoinFreePatternsCarryNoJoinToken) {
  const CostEstimate est = EstimateDirectCost(MakeStats(10, 1, 1));
  EXPECT_EQ(est.join, JoinStrategy::kNone);
  EXPECT_EQ(est.Summary().find("join="), std::string::npos);
}

TEST(CostModelTest, MaxoaDisjunctionPricedAsBandMerge) {
  // Both-sided growth: the 5-branch MOD disjunction would sweep all n·m
  // pairs under a nested loop, but the merge band join touches only the
  // stride candidates — the model must record the cheaper alternative.
  const PatternStats stats = MakeStats(2000, 40, 40);
  const WindowSpec view_window = WindowSpec::SlidingUnchecked(40, 40);
  const Result<MaxoaParams> maxoa =
      PlanMaxoa(view_window, WindowSpec::SlidingUnchecked(44, 44));
  ASSERT_TRUE(maxoa.ok());
  const CostEstimate est = EstimateMaxoaCost(view_window, *maxoa, stats);
  EXPECT_EQ(est.join, JoinStrategy::kBandMerge);
  const double nested_loop =
      2000.0 * static_cast<double>(stats.content_rows) * 5;
  EXPECT_LT(est.pred_evals, nested_loop / 10);
  EXPECT_NE(est.Summary().find("join=band"), std::string::npos);
}

TEST(CostModelTest, CumulativeDiffPointProbesUseIndexHull) {
  // Two point probes per output row: the ordered index and the band
  // merge price identically, and the index wins the tie. Without the
  // index the band merge carries the same point bands.
  PatternStats stats = MakeStats(50, 0, 1);
  EXPECT_EQ(EstimateCumulativeDiffCost(stats).join,
            JoinStrategy::kIndexHull);
  stats.indexed = false;
  const CostEstimate unindexed = EstimateCumulativeDiffCost(stats);
  EXPECT_EQ(unindexed.join, JoinStrategy::kBandMerge);
  EXPECT_LT(unindexed.pred_evals,
            50.0 * static_cast<double>(stats.content_rows));
}

TEST(CostModelTest, BaselinePricedByQueryWindowNotAllPairs) {
  // Fig. 2's BETWEEN band covers min(w, b) positions per probe — far
  // fewer than the b² all-pairs sweep the old model charged.
  const PatternStats stats = MakeStats(1000, 2, 1);
  const CostEstimate est = EstimateSelfJoinRecomputeCost(
      WindowSpec::SlidingUnchecked(5, 5), stats);
  EXPECT_NE(est.join, JoinStrategy::kNestedLoop);
  EXPECT_LT(est.pred_evals, 1000.0 * 1000.0 / 10);
}

TEST(CostModelTest, PosDensityDiscountsSparseSequences) {
  // 100 distinct positions spread over a 10000-wide range: each hull
  // scan finds ~1% of the positions populated, so the priced candidate
  // count drops accordingly. Unknown stats keep the dense prior of 1.
  PatternStats dense = MakeStats(1000, 2, 1);
  PatternStats sparse = dense;
  sparse.pos_min = 1;
  sparse.pos_max = 10000;
  sparse.pos_distinct = 100;
  EXPECT_DOUBLE_EQ(dense.PosDensity(), 1.0);
  EXPECT_NEAR(sparse.PosDensity(), 0.01, 1e-6);
  const WindowSpec window = WindowSpec::SlidingUnchecked(20, 20);
  EXPECT_LT(EstimateSelfJoinRecomputeCost(window, sparse).pred_evals,
            EstimateSelfJoinRecomputeCost(window, dense).pred_evals);
}

TEST(CostModelTest, JoinStrategyNamesAreStable) {
  EXPECT_STREQ(JoinStrategyName(JoinStrategy::kNone), "");
  EXPECT_STREQ(JoinStrategyName(JoinStrategy::kNestedLoop), "nl");
  EXPECT_STREQ(JoinStrategyName(JoinStrategy::kIndexHull), "index");
  EXPECT_STREQ(JoinStrategyName(JoinStrategy::kBandMerge), "band");
}

TEST(ChooseDerivationByCostTest, MarksChosenVerdictAndMinimizesTotal) {
  const SequenceViewDef wide = MakeView("wide", 3, 1, 50);
  const SequenceViewDef exact = MakeView("exact", 3, 1, 50);
  const SeqQuery query = MakeQuery(3, 1);
  const ViewStatsFn stats_fn = [](const SequenceViewDef& v) {
    return MakeStats(v.n, v.window.l(), v.window.h());
  };

  CostEstimate chosen_cost;
  std::vector<CandidateVerdict> verdicts;
  const Result<DerivationChoice> choice = ChooseDerivationByCost(
      {&wide, &exact}, query, stats_fn, &chosen_cost, &verdicts);
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->method, DerivationMethod::kDirect);

  int chosen = 0;
  for (const CandidateVerdict& v : verdicts) {
    if (v.chosen) {
      ++chosen;
      ASSERT_TRUE(v.cost.has_value());
      EXPECT_EQ(v.cost->total, chosen_cost.total);
    }
    if (v.derivable) {
      ASSERT_TRUE(v.cost.has_value());
      EXPECT_GE(v.cost->total, chosen_cost.total);
    }
  }
  EXPECT_EQ(chosen, 1);
}

TEST(ChooseDerivationByCostTest, FallsBackToStaticOrderWithoutStats) {
  const SequenceViewDef view = MakeView("v", 2, 1, 50);
  const SeqQuery query = MakeQuery(3, 1);
  const Result<DerivationChoice> choice =
      ChooseDerivationByCost({&view}, query, /*stats_fn=*/nullptr);
  ASSERT_TRUE(choice.ok());
  // The static preference order resolves widened windows to MaxOA.
  EXPECT_EQ(choice->method, DerivationMethod::kMaxoa);
}

TEST(ChooseDerivationByCostTest, RecordsNotDerivableReasons) {
  const SequenceViewDef mismatched = MakeView("other", 2, 1, 50);
  SequenceViewDef wrong_fn = MakeView("minview", 2, 1, 50);
  wrong_fn.fn = SeqAggFn::kMin;
  const SeqQuery query = MakeQuery(1, 1);  // narrowing: MinOA only
  const ViewStatsFn stats_fn = [](const SequenceViewDef& v) {
    return MakeStats(v.n, v.window.l(), v.window.h());
  };
  std::vector<CandidateVerdict> verdicts;
  const Result<DerivationChoice> choice = ChooseDerivationByCost(
      {&mismatched, &wrong_fn}, query, stats_fn, nullptr, &verdicts);
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->method, DerivationMethod::kMinoa);
  bool saw_not_derivable = false;
  for (const CandidateVerdict& v : verdicts) {
    if (!v.derivable) {
      saw_not_derivable = true;
      EXPECT_FALSE(v.detail.empty());
    }
  }
  EXPECT_TRUE(saw_not_derivable);
}

class CostGateEndToEnd : public ::testing::Test {
 protected:
  /// Narrow stride-2 view: chains touch ~n/2 view tuples per output
  /// row, the cost model's no-rewrite territory.
  void SetUp() override {
    CreateSeqTable(db_, 50);
    MustExecute(db_,
                "CREATE MATERIALIZED VIEW narrow AS SELECT pos, SUM(val) "
                "OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND CURRENT "
                "ROW) FROM seq");
  }

  Database db_;
};

TEST_F(CostGateEndToEnd, DeclinesDegenerateDerivation) {
  const std::string sql =
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING "
      "AND CURRENT ROW) FROM seq ORDER BY pos";
  const ResultSet rs = MustExecute(db_, sql);
  EXPECT_TRUE(rs.rewrite_method().empty());

  // The native path must agree with the (declined) derivation's answer.
  db_.options().force_method = DerivationMethod::kMinoa;
  const ResultSet forced = MustExecute(db_, sql);
  db_.options().force_method.reset();
  EXPECT_EQ(forced.rewrite_method(), "MinOA");
  EXPECT_TRUE(RowsEqual(rs, forced));
}

TEST_F(CostGateEndToEnd, StaticOrderStillRewrites) {
  db_.options().use_cost_model = false;
  const ResultSet rs = MustExecute(
      db_,
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING "
      "AND CURRENT ROW) FROM seq ORDER BY pos");
  EXPECT_FALSE(rs.rewrite_method().empty());
}

TEST_F(CostGateEndToEnd, ExplainPrintsDeclinedVerdicts) {
  // The bugfix satellite: plain EXPLAIN (tracing off) must print the
  // decision record even when the rewrite was declined.
  const ResultSet rs = MustExecute(
      db_,
      "EXPLAIN SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 "
      "PRECEDING AND CURRENT ROW) FROM seq");
  ASSERT_GT(rs.NumRows(), 0u);
  std::string all;
  for (size_t i = 0; i < rs.NumRows(); ++i) {
    all += rs.at(i, 0).AsString() + "\n";
  }
  EXPECT_NE(all.find("recompute estimated cheaper"), std::string::npos);
  EXPECT_NE(all.find("candidate narrow"), std::string::npos);
  EXPECT_NE(all.find("baseline recompute"), std::string::npos);
}

TEST_F(CostGateEndToEnd, ExplainPrintsChosenCandidate) {
  CreateSeqTable(db_, 50, "seq2");
  MustExecute(db_,
              "CREATE MATERIALIZED VIEW v2 AS SELECT pos, SUM(val) OVER "
              "(ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) "
              "FROM seq2");
  const ResultSet rs = MustExecute(
      db_,
      "EXPLAIN SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 "
      "PRECEDING AND 1 FOLLOWING) FROM seq2");
  std::string all;
  for (size_t i = 0; i < rs.NumRows(); ++i) {
    all += rs.at(i, 0).AsString() + "\n";
  }
  EXPECT_NE(all.find("(chosen)"), std::string::npos);
  EXPECT_NE(all.find("candidate v2 via MaxOA"), std::string::npos);
  EXPECT_NE(all.find("candidate v2 via MinOA"), std::string::npos);
}

TEST(CostModelMetricsTest, DecisionCountersExported) {
  Database db;
  CreateSeqTable(db, 30);
  MustExecute(db,
              "CREATE MATERIALIZED VIEW mv AS SELECT pos, SUM(val) OVER "
              "(ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) "
              "FROM seq");
  MustExecute(db,
              "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 "
              "PRECEDING AND 1 FOLLOWING) FROM seq ORDER BY pos");
  const std::string metrics = Database::MetricsText();
  EXPECT_NE(metrics.find("rfv_rewrite_cost_chosen_total"),
            std::string::npos);
  EXPECT_NE(metrics.find("rfv_rewrite_cost_candidates_total"),
            std::string::npos);
}

}  // namespace
}  // namespace rfv
