#include "common/str_util.h"

#include <gtest/gtest.h>

namespace rfv {
namespace {

TEST(StrUtilTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("MixedCase123_x"), "mixedcase123_x");
  EXPECT_EQ(ToUpper("MixedCase123_x"), "MIXEDCASE123_X");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StrUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
  EXPECT_TRUE(EqualsIgnoreCase("c_DATE", "C_date"));
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, " AND "), "a AND b AND c");
}

}  // namespace
}  // namespace rfv
