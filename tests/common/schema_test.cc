#include "common/schema.h"

#include <gtest/gtest.h>

#include "common/row.h"

namespace rfv {
namespace {

Schema MakeTwoTableSchema() {
  return Schema({ColumnDef("pos", DataType::kInt64, "s1"),
                 ColumnDef("val", DataType::kDouble, "s1"),
                 ColumnDef("pos", DataType::kInt64, "s2"),
                 ColumnDef("val", DataType::kDouble, "s2")});
}

TEST(SchemaTest, QualifiedLookup) {
  const Schema schema = MakeTwoTableSchema();
  EXPECT_EQ(schema.FindColumn("s1", "pos").value(), 0u);
  EXPECT_EQ(schema.FindColumn("s2", "pos").value(), 2u);
  EXPECT_EQ(schema.FindColumn("s2", "val").value(), 3u);
}

TEST(SchemaTest, UnqualifiedAmbiguityIsBindError) {
  const Schema schema = MakeTwoTableSchema();
  const Result<size_t> r = schema.FindColumn("", "pos");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST(SchemaTest, UnqualifiedUniqueSucceeds) {
  Schema schema({ColumnDef("a", DataType::kInt64, "t"),
                 ColumnDef("b", DataType::kInt64, "t")});
  EXPECT_EQ(schema.FindColumn("", "b").value(), 1u);
}

TEST(SchemaTest, MissingColumnIsNotFound) {
  const Schema schema = MakeTwoTableSchema();
  EXPECT_EQ(schema.FindColumn("s1", "nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(schema.FindColumn("", "nope").status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaTest, LookupIsCaseInsensitive) {
  const Schema schema = MakeTwoTableSchema();
  EXPECT_EQ(schema.FindColumn("S1", "POS").value(), 0u);
}

TEST(SchemaTest, TryFindReportsAmbiguity) {
  const Schema schema = MakeTwoTableSchema();
  bool ambiguous = false;
  EXPECT_FALSE(schema.TryFindColumn("", "val", &ambiguous).has_value());
  EXPECT_TRUE(ambiguous);
}

TEST(SchemaTest, WithQualifierRewritesAll) {
  const Schema schema = MakeTwoTableSchema().WithQualifier("x");
  EXPECT_EQ(schema.column(0).qualifier, "x");
  EXPECT_EQ(schema.column(3).qualifier, "x");
  // Now every name is ambiguous between the duplicated pos/val pairs.
  bool ambiguous = false;
  schema.TryFindColumn("x", "pos", &ambiguous);
  EXPECT_TRUE(ambiguous);
}

TEST(SchemaTest, ConcatPreservesOrder) {
  Schema left({ColumnDef("a", DataType::kInt64, "l")});
  Schema right({ColumnDef("b", DataType::kString, "r")});
  const Schema joined = Schema::Concat(left, right);
  ASSERT_EQ(joined.NumColumns(), 2u);
  EXPECT_EQ(joined.column(0).name, "a");
  EXPECT_EQ(joined.column(1).name, "b");
}

TEST(SchemaTest, QualifiedName) {
  EXPECT_EQ(ColumnDef("pos", DataType::kInt64, "s1").QualifiedName(),
            "s1.pos");
  EXPECT_EQ(ColumnDef("pos", DataType::kInt64).QualifiedName(), "pos");
}

TEST(RowTest, ConcatAndEquality) {
  const Row left({Value::Int(1), Value::String("a")});
  const Row right({Value::Double(2.5)});
  const Row joined = Row::Concat(left, right);
  ASSERT_EQ(joined.size(), 3u);
  EXPECT_EQ(joined[0], Value::Int(1));
  EXPECT_EQ(joined[2], Value::Double(2.5));
  EXPECT_EQ(joined, Row({Value::Int(1), Value::String("a"),
                         Value::Double(2.5)}));
}

TEST(RowTest, ToString) {
  EXPECT_EQ(Row({Value::Int(1), Value::Null()}).ToString(), "(1, NULL)");
}

TEST(RowTest, ColumnsHashTreatsEqualKeysEqually) {
  RowColumnsHash hash;
  EXPECT_EQ(hash({Value::Int(3), Value::String("x")}),
            hash({Value::Double(3.0), Value::String("x")}));
}

}  // namespace
}  // namespace rfv
