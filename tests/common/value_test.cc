#include "common/value.h"

#include <gtest/gtest.h>

namespace rfv {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_EQ(Value::Int(42).type(), DataType::kInt64);
  EXPECT_EQ(Value::Double(2.5).type(), DataType::kDouble);
  EXPECT_EQ(Value::String("x").type(), DataType::kString);
  EXPECT_EQ(Value::Bool(true).type(), DataType::kBool);
  EXPECT_EQ(Value::Null().type(), DataType::kNull);
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value::Int(-7).AsInt(), -7);
  EXPECT_DOUBLE_EQ(Value::Double(1.25).AsDouble(), 1.25);
  EXPECT_EQ(Value::String("abc").AsString(), "abc");
  EXPECT_TRUE(Value::Bool(true).AsBool());
}

TEST(ValueTest, ToDoubleWidensInt) {
  EXPECT_DOUBLE_EQ(Value::Int(3).ToDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Double(3.5).ToDouble(), 3.5);
}

TEST(ValueTest, IsNumeric) {
  EXPECT_TRUE(Value::Int(1).is_numeric());
  EXPECT_TRUE(Value::Double(1).is_numeric());
  EXPECT_FALSE(Value::String("1").is_numeric());
  EXPECT_FALSE(Value::Bool(true).is_numeric());
  EXPECT_FALSE(Value::Null().is_numeric());
}

TEST(ValueTest, CompareIntInt) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(5).Compare(Value::Int(5)), 0);
  EXPECT_GT(Value::Int(9).Compare(Value::Int(-9)), 0);
}

TEST(ValueTest, CompareMixedNumeric) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(3.1).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("").Compare(Value::String("")), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(-1000)), 0);
  EXPECT_LT(Value::Null().Compare(Value::String("")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, CrossTypeRankOrdering) {
  // bool < numeric < string (total order for sorting only).
  EXPECT_LT(Value::Bool(true).Compare(Value::Int(0)), 0);
  EXPECT_LT(Value::Int(999).Compare(Value::String("a")), 0);
}

TEST(ValueTest, EqualityOperators) {
  EXPECT_TRUE(Value::Int(2) == Value::Double(2.0));
  EXPECT_TRUE(Value::Int(2) != Value::Int(3));
  EXPECT_TRUE(Value::Null() == Value::Null());
  EXPECT_TRUE(Value::Int(1) < Value::Int(2));
}

TEST(ValueTest, HashConsistentWithCompare) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_EQ(Value::String("xy").Hash(), Value::String("xy").Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

TEST(ValueTest, NegativeZeroHashesLikeZero) {
  EXPECT_EQ(Value::Double(-0.0).Hash(), Value::Double(0.0).Hash());
  EXPECT_EQ(Value::Double(-0.0).Compare(Value::Int(0)), 0);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::String("ab").ToString(), "'ab'");
  EXPECT_EQ(Value::Bool(false).ToString(), "FALSE");
}

TEST(ValueTest, DataTypeNames) {
  EXPECT_STREQ(DataTypeName(DataType::kInt64), "INTEGER");
  EXPECT_STREQ(DataTypeName(DataType::kDouble), "DOUBLE");
  EXPECT_STREQ(DataTypeName(DataType::kString), "VARCHAR");
  EXPECT_STREQ(DataTypeName(DataType::kBool), "BOOLEAN");
  EXPECT_STREQ(DataTypeName(DataType::kNull), "NULL");
}

}  // namespace
}  // namespace rfv
