#include "common/metrics_registry.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace rfv {
namespace {

TEST(CounterTest, IncrementAndDelta) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(FormatMetricLabelsTest, RendersPrometheusLabelSyntax) {
  EXPECT_EQ(FormatMetricLabels({}), "");
  EXPECT_EQ(FormatMetricLabels({{"method", "maxoa"}}), "{method=\"maxoa\"}");
  EXPECT_EQ(FormatMetricLabels({{"a", "1"}, {"b", "2"}}),
            "{a=\"1\",b=\"2\"}");
  // Quotes and backslashes in values are escaped.
  EXPECT_EQ(FormatMetricLabels({{"q", "say \"hi\""}}),
            "{q=\"say \\\"hi\\\"\"}");
}

TEST(MetricsRegistryTest, SameNameAndLabelsReturnsSameCounter) {
  Counter* a = MetricsRegistry::Global().GetCounter(
      "rfv_test_same_total", {{"k", "v"}}, "help");
  Counter* b = MetricsRegistry::Global().GetCounter(
      "rfv_test_same_total", {{"k", "v"}});
  Counter* other = MetricsRegistry::Global().GetCounter(
      "rfv_test_same_total", {{"k", "w"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
}

TEST(MetricsRegistryTest, PrometheusTextHasHelpTypeAndValue) {
  Counter* c = MetricsRegistry::Global().GetCounter(
      "rfv_test_expo_total", {{"method", "direct"}}, "A test counter");
  c->Increment(7);
  const std::string text = MetricsRegistry::Global().ToPrometheusText();
  EXPECT_NE(text.find("# HELP rfv_test_expo_total A test counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE rfv_test_expo_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("rfv_test_expo_total{method=\"direct\"} 7"),
            std::string::npos)
      << text;
}

TEST(HistogramTest, ObserveUpdatesCountSumAndBuckets) {
  Histogram h;
  h.Observe(0.00002);  // lands in the 4e-5 bucket
  h.Observe(0.5);      // lands in the 0.65536 bucket
  h.Observe(1000.0);   // beyond the largest bound: +Inf only
  EXPECT_EQ(h.count(), 3);
  EXPECT_NEAR(h.sum(), 1000.50002, 1e-3);
  const std::vector<double>& bounds = Histogram::BucketBounds();
  ASSERT_FALSE(bounds.empty());
  // Cumulative: every bound >= 0.65536 has seen two observations, the
  // out-of-range one only shows in count().
  EXPECT_EQ(h.BucketCount(0), 0);  // 1e-5 < 2e-5
  int64_t last = 0;
  for (size_t i = 0; i < bounds.size(); ++i) {
    const int64_t cumulative = h.BucketCount(i);
    EXPECT_GE(cumulative, last) << "bucket counts must be cumulative";
    last = cumulative;
  }
  EXPECT_EQ(last, 2);
}

TEST(HistogramTest, PrometheusExpositionShape) {
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "rfv_test_latency_seconds", {}, "A test histogram");
  h->Observe(0.001);
  const std::string text = MetricsRegistry::Global().ToPrometheusText();
  EXPECT_NE(text.find("# TYPE rfv_test_latency_seconds histogram"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("rfv_test_latency_seconds_bucket{le=\"+Inf\"} "),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("rfv_test_latency_seconds_sum "), std::string::npos);
  EXPECT_NE(text.find("rfv_test_latency_seconds_count 1"),
            std::string::npos);
}

TEST(HistogramTest, LabeledBucketSeriesMergeLe) {
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "rfv_test_labeled_seconds", {{"phase", "bind"}}, "labeled histogram");
  h->Observe(0.1);
  const std::string text = MetricsRegistry::Global().ToPrometheusText();
  // "le" joins the existing label set inside one brace pair.
  EXPECT_NE(
      text.find("rfv_test_labeled_seconds_bucket{phase=\"bind\",le=\""),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("rfv_test_labeled_seconds_count{phase=\"bind\"} 1"),
            std::string::npos)
      << text;
}

TEST(MetricsRegistryTest, ResetForgetsFamiliesButKeepsPointersUsable) {
  Counter* c = MetricsRegistry::Global().GetCounter("rfv_test_reset_total");
  c->Increment();
  MetricsRegistry::Global().ResetForTest();
  EXPECT_EQ(MetricsRegistry::Global()
                .ToPrometheusText()
                .find("rfv_test_reset_total"),
            std::string::npos);
  c->Increment();  // old pointer must stay valid (leaked instance)
  EXPECT_EQ(c->value(), 2);
  // Re-registration starts a fresh instance.
  Counter* again = MetricsRegistry::Global().GetCounter(
      "rfv_test_reset_total");
  EXPECT_NE(again, c);
  EXPECT_EQ(again->value(), 0);
}

}  // namespace
}  // namespace rfv
