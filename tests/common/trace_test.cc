#include "common/trace.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "test_util.h"

namespace rfv {
namespace {

using testutil::IsValidJson;

TEST(TraceSpanTest, NoopWhenNoTraceAttached) {
  ASSERT_EQ(CurrentTrace(), nullptr);
  TraceSpan span("orphan");
  EXPECT_FALSE(span.active());
  span.AddArg("ignored", "value");  // must not crash
}

TEST(TraceSpanTest, RecordsNestedSpansWithDepth) {
  std::shared_ptr<QueryTrace> trace = Tracer::Global().StartQuery();
  {
    ScopedTraceAttach attach(trace.get());
    TraceSpan outer("query");
    EXPECT_TRUE(outer.active());
    {
      TraceSpan inner("parse");
      inner.AddArg("sql", "SELECT 1");
    }
    TraceSpan sibling("bind");
  }
  const std::vector<TraceEvent> events = trace->events();
  ASSERT_EQ(events.size(), 3u);
  // Spans record on End, so children land before their parent.
  EXPECT_EQ(events[0].name, "parse");
  EXPECT_EQ(events[0].depth, 1);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "sql");
  EXPECT_EQ(events[0].args[0].second, "SELECT 1");
  EXPECT_EQ(events[1].name, "bind");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "query");
  EXPECT_EQ(events[2].depth, 0);
  for (const TraceEvent& e : events) {
    EXPECT_GE(e.start_us, 0);
    EXPECT_GE(e.dur_us, 0);
  }
  // The parent covers its children.
  EXPECT_LE(events[2].start_us, events[0].start_us);
  EXPECT_GE(events[2].start_us + events[2].dur_us,
            events[0].start_us + events[0].dur_us);
}

TEST(TraceSpanTest, EndIsIdempotent) {
  std::shared_ptr<QueryTrace> trace = Tracer::Global().StartQuery();
  ScopedTraceAttach attach(trace.get());
  {
    TraceSpan span("once");
    span.End();
    span.End();  // destructor will call a third time
  }
  EXPECT_EQ(trace->events().size(), 1u);
}

TEST(TraceSpanTest, DetachedThreadDoesNotRecord) {
  std::shared_ptr<QueryTrace> trace = Tracer::Global().StartQuery();
  ScopedTraceAttach attach(trace.get());
  // The attachment is thread-local: a fresh thread has no trace.
  std::thread worker([] {
    EXPECT_EQ(CurrentTrace(), nullptr);
    TraceSpan span("worker");
    EXPECT_FALSE(span.active());
  });
  worker.join();
  EXPECT_TRUE(trace->events().empty());
}

TEST(ScopedTraceAttachTest, RestoresPreviousAttachment) {
  std::shared_ptr<QueryTrace> outer = Tracer::Global().StartQuery();
  std::shared_ptr<QueryTrace> inner = Tracer::Global().StartQuery();
  ScopedTraceAttach attach_outer(outer.get());
  EXPECT_EQ(CurrentTrace(), outer.get());
  {
    ScopedTraceAttach attach_inner(inner.get());
    EXPECT_EQ(CurrentTrace(), inner.get());
  }
  EXPECT_EQ(CurrentTrace(), outer.get());
}

TEST(TracerTest, RetireFindAndLatest) {
  std::shared_ptr<QueryTrace> trace = Tracer::Global().StartQuery();
  const int64_t id = trace->id();
  Tracer::Global().Retire(trace);
  EXPECT_EQ(Tracer::Global().Find(id).get(), trace.get());
  EXPECT_EQ(Tracer::Global().Latest().get(), trace.get());
}

TEST(TracerTest, RingEvictsOldTraces) {
  std::shared_ptr<QueryTrace> oldest = Tracer::Global().StartQuery();
  const int64_t oldest_id = oldest->id();
  Tracer::Global().Retire(oldest);
  for (size_t i = 0; i < Tracer::Global().ring_capacity(); ++i) {
    Tracer::Global().Retire(Tracer::Global().StartQuery());
  }
  EXPECT_EQ(Tracer::Global().Find(oldest_id), nullptr);
  EXPECT_NE(Tracer::Global().Latest(), nullptr);
}

TEST(TraceJsonTest, ChromeExportIsValidJson) {
  std::shared_ptr<QueryTrace> trace = Tracer::Global().StartQuery();
  {
    ScopedTraceAttach attach(trace.get());
    TraceSpan outer("query");
    outer.AddArg("sql", "SELECT \"quoted\"\nand a newline\\backslash");
    TraceSpan inner("exec.drain");
    inner.AddArg("rows", "42");
  }
  const std::string json = trace->ToChromeJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"exec.drain\""), std::string::npos);
}

TEST(TraceJsonTest, EmptyTraceExportsEmptyArray) {
  std::shared_ptr<QueryTrace> trace = Tracer::Global().StartQuery();
  const std::string json = trace->ToChromeJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
}

TEST(TraceTextTest, RendersOneLinePerSpan) {
  std::shared_ptr<QueryTrace> trace = Tracer::Global().StartQuery();
  {
    ScopedTraceAttach attach(trace.get());
    TraceSpan outer("query");
    TraceSpan inner("parse");
  }
  const std::string text = trace->ToText();
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("parse"), std::string::npos);
}

TEST(JsonEscapeTest, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_TRUE(IsValidJson("\"" + JsonEscape("mix\t\"of\\every\nthing") +
                          "\""));
}

}  // namespace
}  // namespace rfv
