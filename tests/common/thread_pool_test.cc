#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace rfv {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Submit([&count] { ++count; });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, AtLeastOneWorkerEvenWhenAskedForZero) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  TaskGroup group(&pool);
  group.Submit([&ran] { ran = true; });
  group.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    // The single worker serializes these; some are still queued when the
    // destructor runs, and all of them must execute anyway.
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { ++count; });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, GroupsAreIndependentOnOnePool) {
  ThreadPool pool(2);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  TaskGroup ga(&pool);
  TaskGroup gb(&pool);
  for (int i = 0; i < 20; ++i) {
    ga.Submit([&a] { ++a; });
    gb.Submit([&b] { ++b; });
  }
  ga.Wait();
  EXPECT_EQ(a.load(), 20);  // ga.Wait() does not depend on gb's tasks
  gb.Wait();
  EXPECT_EQ(b.load(), 20);
}

TEST(ThreadPoolTest, WaitIsReusableAfterMoreSubmits) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  group.Submit([&count] { ++count; });
  group.Wait();
  EXPECT_EQ(count.load(), 1);
  group.Submit([&count] { ++count; });
  group.Submit([&count] { ++count; });
  group.Wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, ConcurrentSubmitters) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&group, &count] {
      for (int i = 0; i < 250; ++i) {
        group.Submit([&count] { ++count; });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  group.Wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, SharedPoolHasAtLeastFourWorkers) {
  // Sized for cross-thread coverage even on single-core CI machines.
  ASSERT_NE(ThreadPool::Shared(), nullptr);
  EXPECT_GE(ThreadPool::Shared()->num_threads(), 4u);
  EXPECT_EQ(ThreadPool::Shared(), ThreadPool::Shared());
}

}  // namespace
}  // namespace rfv
