#include "common/status.h"

#include <gtest/gtest.h>

namespace rfv {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EveryFactoryProducesItsCode) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ParseError("").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::BindError("").code(), StatusCode::kBindError);
  EXPECT_EQ(Status::TypeError("").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::NotDerivable("").code(), StatusCode::kNotDerivable);
  EXPECT_EQ(Status::NotSupported("").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::ExecutionError("").code(), StatusCode::kExecutionError);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

namespace helpers {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Result<int> DoubleIfPositive(int x) {
  RFV_RETURN_IF_ERROR(FailIfNegative(x));
  return x * 2;
}

Result<int> ChainTwice(int x) {
  int once = 0;
  RFV_ASSIGN_OR_RETURN(once, DoubleIfPositive(x));
  int twice = 0;
  RFV_ASSIGN_OR_RETURN(twice, DoubleIfPositive(once));
  return twice;
}

}  // namespace helpers

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_FALSE(helpers::DoubleIfPositive(-1).ok());
  EXPECT_EQ(helpers::DoubleIfPositive(3).value(), 6);
}

TEST(StatusMacrosTest, AssignOrReturnChains) {
  EXPECT_EQ(helpers::ChainTwice(2).value(), 8);
  EXPECT_FALSE(helpers::ChainTwice(-2).ok());
}

}  // namespace
}  // namespace rfv
