// EpochManager semantics: pins hold back reclamation, unpinned retirees
// are freed, and the whole protocol survives concurrent pin/retire
// traffic (the TSan leg runs this test to certify the data-race story).

#include "common/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace rfv {
namespace {

// The tests drive a private manager instance, not EpochManager::Global(),
// so table snapshots retired by other tests can't perturb the counts.

struct DtorProbe {
  explicit DtorProbe(std::atomic<int>* counter) : counter(counter) {}
  ~DtorProbe() { counter->fetch_add(1); }
  std::atomic<int>* counter;
};

std::shared_ptr<const void> MakeProbe(std::atomic<int>* counter) {
  return std::static_pointer_cast<const void>(
      std::make_shared<DtorProbe>(counter));
}

TEST(EpochManagerTest, RetireWithoutPinsReclaimsImmediately) {
  EpochManager manager;
  std::atomic<int> freed{0};
  manager.Retire(MakeProbe(&freed));
  EXPECT_EQ(manager.retired_count(), 1u);
  manager.Reclaim();
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(manager.retired_count(), 0u);
}

TEST(EpochManagerTest, PinHoldsBackReclamation) {
  EpochManager manager;
  std::atomic<int> freed{0};
  const size_t slot = manager.Pin();
  ASSERT_NE(slot, EpochManager::kNoSlot);
  // Retired at an epoch >= the pin's: must survive while pinned.
  manager.Retire(MakeProbe(&freed));
  manager.Reclaim();
  EXPECT_EQ(freed.load(), 0);
  EXPECT_EQ(manager.retired_count(), 1u);

  manager.Unpin(slot);
  manager.Reclaim();
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(manager.retired_count(), 0u);
}

TEST(EpochManagerTest, PinAfterRetireDoesNotProtectOlderGarbage) {
  EpochManager manager;
  std::atomic<int> freed{0};
  manager.Retire(MakeProbe(&freed));  // stamped with pre-advance epoch
  const size_t slot = manager.Pin();  // pins the *new* epoch
  manager.Reclaim();
  EXPECT_EQ(freed.load(), 1);
  manager.Unpin(slot);
}

TEST(EpochManagerTest, GuardReleasesOnScopeExit) {
  EpochManager manager;
  std::atomic<int> freed{0};
  {
    EpochGuard guard(&manager);
    manager.Retire(MakeProbe(&freed));
    manager.Reclaim();
    EXPECT_EQ(freed.load(), 0);
  }
  manager.Reclaim();
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochManagerTest, NullGuardIsEmpty) {
  EpochGuard guard(nullptr);  // must not crash, must not pin anything
  EpochGuard moved = std::move(guard);
  moved.Release();
}

TEST(EpochManagerTest, MoveTransfersOwnership) {
  EpochManager manager;
  std::atomic<int> freed{0};
  EpochGuard outer(&manager);
  {
    EpochGuard inner = std::move(outer);
    manager.Retire(MakeProbe(&freed));
    manager.Reclaim();
    EXPECT_EQ(freed.load(), 0);  // inner still pins
  }
  // The moved-from outer must not double-unpin; the retiree is free now.
  manager.Reclaim();
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochManagerTest, ConcurrentPinRetireReclaim) {
  EpochManager manager;
  std::atomic<int> freed{0};
  std::atomic<bool> stop{false};
  constexpr int kReaders = 4;
  constexpr int kRetiresPerWriter = 500;

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&manager, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochGuard guard(&manager);
        // Hold briefly so retirees pile up behind the pin.
        std::this_thread::yield();
      }
    });
  }

  std::thread writer([&manager, &freed] {
    for (int i = 0; i < kRetiresPerWriter; ++i) {
      manager.Retire(MakeProbe(&freed));
      manager.Reclaim();
    }
  });

  writer.join();
  stop.store(true);
  for (std::thread& t : readers) t.join();
  manager.Reclaim();
  EXPECT_EQ(freed.load(), kRetiresPerWriter);
  EXPECT_EQ(manager.retired_count(), 0u);
}

}  // namespace
}  // namespace rfv
