#include "sequence/reporting.h"

#include <gtest/gtest.h>

#include <random>

#include "sequence/compute.h"

namespace rfv {
namespace {

// --- position function (§6) --------------------------------------------------

TEST(PositionSpaceTest, SingleColumnIsIdentity) {
  const PositionSpace space({5});
  for (int64_t k = 1; k <= 5; ++k) {
    EXPECT_EQ(space.pos({k}).value(), k);
  }
}

TEST(PositionSpaceTest, TwoColumnLexicographic) {
  const PositionSpace space({3, 4});
  EXPECT_EQ(space.total(), 12);
  EXPECT_EQ(space.pos({1, 1}).value(), 1);
  EXPECT_EQ(space.pos({1, 4}).value(), 4);
  EXPECT_EQ(space.pos({2, 1}).value(), 5);
  EXPECT_EQ(space.pos({3, 4}).value(), 12);
}

TEST(PositionSpaceTest, PaperSectionSixExample) {
  // §6.1 example: three-column address (2,4,2); with c = (3,4,2)-ish
  // domains the lemma's bound arithmetic uses pos((2,4)+1, 1) etc. Use
  // domains (3, 4, 2).
  const PositionSpace space({3, 4, 2});
  // pos(2,3,1): the address one block before (2,4,*).
  EXPECT_EQ(space.pos({2, 3, 1}).value(),
            (2 - 1) * 8 + (3 - 1) * 2 + 1);
  // pos(3,1,1): the first address after prefix (2,4).
  EXPECT_EQ(space.pos({3, 1, 1}).value(), 2 * 8 + 1);
}

TEST(PositionSpaceTest, CoordsRoundTrip) {
  const PositionSpace space({2, 3, 2});
  for (int64_t k = 1; k <= space.total(); ++k) {
    const Result<std::vector<int64_t>> coords = space.coords(k);
    ASSERT_TRUE(coords.ok());
    EXPECT_EQ(space.pos(*coords).value(), k);
  }
}

TEST(PositionSpaceTest, DomainValidation) {
  const PositionSpace space({3, 4});
  EXPECT_EQ(space.pos({0, 1}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(space.pos({1, 5}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(space.pos({1}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(space.coords(0).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(space.coords(13).status().code(), StatusCode::kInvalidArgument);
}

// --- ordering reduction (§6.1) ------------------------------------------------

TEST(OrderingReductionTest, CumulativeCollapse) {
  // Fine ordering (month, day) with 3 months × 4 days; reduce to months.
  const PositionSpace space({3, 4});
  std::vector<SeqValue> raw(12);
  for (int i = 0; i < 12; ++i) raw[i] = i + 1;
  const std::vector<SeqValue> fine_cum = ComputeCumulative(raw);
  const Result<std::vector<SeqValue>> coarse =
      OrderingReductionCumulative(space, fine_cum, 1);
  ASSERT_TRUE(coarse.ok());
  // Monthly cumulative = fine cumulative at each month's last day.
  EXPECT_EQ(*coarse, std::vector<SeqValue>({10, 36, 78}));
}

TEST(OrderingReductionTest, BlockTotals) {
  const PositionSpace space({3, 4});
  std::vector<SeqValue> raw(12, 1);
  const Result<std::vector<SeqValue>> totals =
      OrderingReductionBlockTotals(space, ComputeCumulative(raw), 1);
  ASSERT_TRUE(totals.ok());
  EXPECT_EQ(*totals, std::vector<SeqValue>({4, 4, 4}));
}

TEST(OrderingReductionTest, MultiColumnDrop) {
  // (year, month, day) → drop 2 columns → yearly values.
  const PositionSpace space({2, 3, 2});
  std::vector<SeqValue> raw(12);
  for (int i = 0; i < 12; ++i) raw[i] = 1;
  const Result<std::vector<SeqValue>> coarse =
      OrderingReductionCumulative(space, ComputeCumulative(raw), 2);
  ASSERT_TRUE(coarse.ok());
  EXPECT_EQ(*coarse, std::vector<SeqValue>({6, 12}));
}

TEST(OrderingReductionTest, InvalidArguments) {
  const PositionSpace space({3, 4});
  const std::vector<SeqValue> fine(12, 0);
  EXPECT_EQ(OrderingReductionCumulative(space, fine, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(OrderingReductionCumulative(space, fine, 2).status().code(),
            StatusCode::kInvalidArgument);
  const std::vector<SeqValue> wrong_size(7, 0);
  EXPECT_EQ(OrderingReductionCumulative(space, wrong_size, 1).status().code(),
            StatusCode::kInvalidArgument);
}

// --- partitioning reduction (§6.2) ---------------------------------------------

PartitionedSequence MakeMonthly(const WindowSpec& spec, SeqAggFn fn) {
  // Partition key = (region, month); two regions × two months.
  PartitionedSequence seq(spec, fn);
  EXPECT_TRUE(seq.AddPartition({1, 1}, {1, 2, 3}).ok());
  EXPECT_TRUE(seq.AddPartition({1, 2}, {4, 5}).ok());
  EXPECT_TRUE(seq.AddPartition({2, 1}, {10, 20}).ok());
  EXPECT_TRUE(seq.AddPartition({2, 2}, {30}).ok());
  return seq;
}

TEST(PartitioningReductionTest, MergesPartitionsByPrefix) {
  const PartitionedSequence monthly =
      MakeMonthly(WindowSpec::SlidingUnchecked(1, 1), SeqAggFn::kSum);
  ASSERT_TRUE(monthly.IsComplete());
  const Result<PartitionedSequence> regional = monthly.ReducePartitioning(1);
  ASSERT_TRUE(regional.ok());
  ASSERT_EQ(regional->num_partitions(), 2u);
  // Region 1 raw data = concat({1,2,3}, {4,5}).
  EXPECT_EQ(regional->partition(0).raw,
            std::vector<SeqValue>({1, 2, 3, 4, 5}));
  EXPECT_EQ(regional->partition(1).raw, std::vector<SeqValue>({10, 20, 30}));
  // And the merged sequence equals a fresh computation on the merged raw.
  const Sequence fresh = BuildCompleteSequence(
      {1, 2, 3, 4, 5}, WindowSpec::SlidingUnchecked(1, 1), SeqAggFn::kSum);
  EXPECT_EQ(regional->partition(0).sequence.BodyValues(), fresh.BodyValues());
}

TEST(PartitioningReductionTest, DropAllPartitionColumns) {
  const PartitionedSequence monthly =
      MakeMonthly(WindowSpec::SlidingUnchecked(1, 1), SeqAggFn::kSum);
  const Result<PartitionedSequence> total = monthly.ReducePartitioning(2);
  ASSERT_TRUE(total.ok());
  ASSERT_EQ(total->num_partitions(), 1u);
  EXPECT_EQ(total->partition(0).raw.size(), 8u);
}

TEST(PartitioningReductionTest, CumulativePartitions) {
  PartitionedSequence monthly(WindowSpec::Cumulative(), SeqAggFn::kSum);
  ASSERT_TRUE(monthly.AddPartition({1}, {1, 2, 3}).ok());
  ASSERT_TRUE(monthly.AddPartition({2}, {4, 5}).ok());
  const Result<PartitionedSequence> total = monthly.ReducePartitioning(1);
  ASSERT_TRUE(total.ok());
  ASSERT_EQ(total->num_partitions(), 1u);
  // Total cumulative over the concatenation (the paper's intro:
  // cum_sum_total derivable from cum_sum_month).
  EXPECT_EQ(total->partition(0).sequence.BodyValues(),
            std::vector<SeqValue>({1, 3, 6, 10, 15}));
}

TEST(PartitioningReductionTest, MinMaxRejected) {
  const PartitionedSequence monthly =
      MakeMonthly(WindowSpec::SlidingUnchecked(1, 1), SeqAggFn::kMin);
  EXPECT_EQ(monthly.ReducePartitioning(1).status().code(),
            StatusCode::kNotDerivable);
}

TEST(PartitioningReductionTest, KeysMustBeSorted) {
  PartitionedSequence seq(WindowSpec::SlidingUnchecked(1, 1), SeqAggFn::kSum);
  ASSERT_TRUE(seq.AddPartition({2}, {1}).ok());
  EXPECT_EQ(seq.AddPartition({1}, {1}).code(), StatusCode::kInvalidArgument);
}

TEST(PartitioningReductionTest, InvalidDropCount) {
  const PartitionedSequence monthly =
      MakeMonthly(WindowSpec::SlidingUnchecked(1, 1), SeqAggFn::kSum);
  EXPECT_EQ(monthly.ReducePartitioning(0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(monthly.ReducePartitioning(3).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rfv
