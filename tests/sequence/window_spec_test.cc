#include "sequence/window_spec.h"

#include <gtest/gtest.h>

#include "sequence/sequence.h"

namespace rfv {
namespace {

TEST(WindowSpecTest, CumulativeConstruction) {
  const WindowSpec w = WindowSpec::Cumulative();
  EXPECT_TRUE(w.is_cumulative());
  EXPECT_FALSE(w.is_sliding());
  EXPECT_EQ(w.ToString(), "CUMULATIVE");
}

TEST(WindowSpecTest, SlidingValidated) {
  const Result<WindowSpec> ok = WindowSpec::Sliding(2, 1);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->l(), 2);
  EXPECT_EQ(ok->h(), 1);
  EXPECT_EQ(ok->size(), 4);  // w = 1 + l + h
  EXPECT_EQ(ok->ToString(), "(2,1)");
}

TEST(WindowSpecTest, NegativeBoundsRejected) {
  EXPECT_EQ(WindowSpec::Sliding(-1, 2).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(WindowSpec::Sliding(2, -1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WindowSpecTest, DegenerateWindowRejected) {
  // The paper's footnote: l + h > 0.
  EXPECT_EQ(WindowSpec::Sliding(0, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WindowSpecTest, OneSidedWindowsAllowed) {
  EXPECT_TRUE(WindowSpec::Sliding(0, 3).ok());  // left-bounded (l = 0)
  EXPECT_TRUE(WindowSpec::Sliding(3, 0).ok());  // right-bounded (h = 0)
}

TEST(WindowSpecTest, Equality) {
  EXPECT_EQ(WindowSpec::Cumulative(), WindowSpec::Cumulative());
  EXPECT_EQ(WindowSpec::SlidingUnchecked(1, 2),
            WindowSpec::SlidingUnchecked(1, 2));
  EXPECT_NE(WindowSpec::SlidingUnchecked(1, 2),
            WindowSpec::SlidingUnchecked(2, 1));
  EXPECT_NE(WindowSpec::Cumulative(), WindowSpec::SlidingUnchecked(1, 2));
}

TEST(SequenceTest, StoredRangeAndAccess) {
  // (l=2, h=1), n=5: complete range is [-h+1, n+l] = [0, 7].
  const WindowSpec spec = WindowSpec::SlidingUnchecked(2, 1);
  std::vector<SeqValue> values(8, 1.0);
  const Sequence seq(spec, SeqAggFn::kSum, 5, 0, std::move(values));
  EXPECT_EQ(seq.first_pos(), 0);
  EXPECT_EQ(seq.last_pos(), 7);
  EXPECT_TRUE(seq.IsComplete());
  EXPECT_EQ(seq.at(0), 1.0);
  EXPECT_EQ(seq.at(-1), 0.0);  // outside stored range
  EXPECT_EQ(seq.at(8), 0.0);
}

TEST(SequenceTest, IncompleteWhenHeaderMissing) {
  const WindowSpec spec = WindowSpec::SlidingUnchecked(2, 1);
  const Sequence seq(spec, SeqAggFn::kSum, 5, 1, std::vector<SeqValue>(7, 0));
  EXPECT_FALSE(seq.IsComplete());  // missing position 0 (header)
}

TEST(SequenceTest, CumulativeCompletenessNeedsBodyOnly) {
  const Sequence seq(WindowSpec::Cumulative(), SeqAggFn::kSum, 3, 1,
                     {1, 2, 3});
  EXPECT_TRUE(seq.IsComplete());
}

TEST(SequenceTest, BodyValues) {
  const WindowSpec spec = WindowSpec::SlidingUnchecked(1, 1);
  // range [0, 4] for n=3.
  const Sequence seq(spec, SeqAggFn::kSum, 3, 0, {9, 1, 2, 3, 9});
  const std::vector<SeqValue> body = seq.BodyValues();
  ASSERT_EQ(body.size(), 3u);
  EXPECT_EQ(body[0], 1);
  EXPECT_EQ(body[2], 3);
}

TEST(SequenceTest, SeqAggFnNames) {
  EXPECT_STREQ(SeqAggFnName(SeqAggFn::kSum), "SUM");
  EXPECT_STREQ(SeqAggFnName(SeqAggFn::kMin), "MIN");
  EXPECT_STREQ(SeqAggFnName(SeqAggFn::kMax), "MAX");
}

}  // namespace
}  // namespace rfv
