#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "sequence/compute.h"
#include "sequence/derive_cumulative.h"
#include "sequence/maxoa.h"
#include "sequence/minoa.h"

namespace rfv {
namespace {

std::vector<SeqValue> RandomData(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(-9, 9);
  std::vector<SeqValue> x(n);
  for (auto& v : x) v = dist(rng);
  return x;
}

// --- cumulative derivations (§3.1) ------------------------------------------

TEST(DeriveCumulativeTest, RawReconstruction) {
  const std::vector<SeqValue> x = {4, -2, 7, 0, 3};
  const Sequence cum =
      BuildCompleteSequence(x, WindowSpec::Cumulative(), SeqAggFn::kSum);
  const Result<std::vector<SeqValue>> raw = RawFromCumulative(cum);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(*raw, x);
}

TEST(DeriveCumulativeTest, SlidingFromCumulativeKnownValues) {
  const std::vector<SeqValue> x = {1, 2, 3, 4, 5};
  const Sequence cum =
      BuildCompleteSequence(x, WindowSpec::Cumulative(), SeqAggFn::kSum);
  const Result<std::vector<SeqValue>> y =
      SlidingFromCumulative(cum, WindowSpec::SlidingUnchecked(1, 1));
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(*y, std::vector<SeqValue>({3, 6, 9, 12, 9}));
}

TEST(DeriveCumulativeTest, RejectsNonCumulative) {
  const Sequence sliding = BuildCompleteSequence(
      {1, 2, 3}, WindowSpec::SlidingUnchecked(1, 1), SeqAggFn::kSum);
  EXPECT_EQ(RawFromCumulative(sliding).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DeriveCumulativeTest, RejectsRunningMinMax) {
  const Sequence running_min = BuildCompleteSequence(
      {3, 1, 2}, WindowSpec::Cumulative(), SeqAggFn::kMin);
  EXPECT_EQ(RawFromCumulative(running_min).status().code(),
            StatusCode::kInvalidArgument);
}

// --- raw reconstruction from sliding views (§3.2) ---------------------------

TEST(RawFromSlidingTest, PaperSectionThreeTwo) {
  const std::vector<SeqValue> x = {5, -1, 2, 8, -3, 0, 4};
  const Sequence view = BuildCompleteSequence(
      x, WindowSpec::SlidingUnchecked(2, 1), SeqAggFn::kSum);
  const Result<std::vector<SeqValue>> explicit_form = RawFromSliding(view);
  ASSERT_TRUE(explicit_form.ok());
  EXPECT_EQ(*explicit_form, x);
  const Result<std::vector<SeqValue>> linear = RawFromSlidingLinear(view);
  ASSERT_TRUE(linear.ok());
  EXPECT_EQ(*linear, x);
}

TEST(RawFromSlidingTest, RequiresCompleteness) {
  // Strip the header: reconstruction must be refused.
  const WindowSpec spec = WindowSpec::SlidingUnchecked(1, 1);
  Sequence incomplete(spec, SeqAggFn::kSum, 3, 1, {3, 6, 5});
  EXPECT_EQ(RawFromSliding(incomplete).status().code(),
            StatusCode::kNotDerivable);
}

TEST(RawFromSlidingTest, RequiresSum) {
  const Sequence min_view = BuildCompleteSequence(
      {1, 2, 3}, WindowSpec::SlidingUnchecked(1, 1), SeqAggFn::kMin);
  EXPECT_EQ(RawFromSliding(min_view).status().code(),
            StatusCode::kNotDerivable);
}

TEST(CumulativeFromSlidingTest, MatchesDirectCumulative) {
  const std::vector<SeqValue> x = RandomData(33, 5);
  const Sequence view = BuildCompleteSequence(
      x, WindowSpec::SlidingUnchecked(3, 2), SeqAggFn::kSum);
  const Result<std::vector<SeqValue>> cum = CumulativeFromSliding(view);
  ASSERT_TRUE(cum.ok());
  EXPECT_EQ(*cum, ComputeCumulative(x));
}

// --- MaxOA (§4) --------------------------------------------------------------

TEST(MaxoaTest, PlanComputesPaperFactors) {
  // Paper §4.1 running example: x̃ = (2,1), ỹ = (3,1).
  const Result<MaxoaParams> params = PlanMaxoa(
      WindowSpec::SlidingUnchecked(2, 1), WindowSpec::SlidingUnchecked(3, 1));
  ASSERT_TRUE(params.ok());
  EXPECT_EQ(params->delta_l, 1);
  EXPECT_EQ(params->delta_h, 0);
  EXPECT_EQ(params->delta_p, 3);  // Δp = 1 + l_x + h_x − Δl = 1+2+1-1
}

TEST(MaxoaTest, PreconditionShrinkRejected) {
  EXPECT_EQ(PlanMaxoa(WindowSpec::SlidingUnchecked(2, 1),
                      WindowSpec::SlidingUnchecked(1, 1))
                .status()
                .code(),
            StatusCode::kNotDerivable);
}

TEST(MaxoaTest, PreconditionTooWideRejected) {
  // Δl must be <= l_x + h_x − 1 = 2; l_y = 6 gives Δl = 4.
  EXPECT_EQ(PlanMaxoa(WindowSpec::SlidingUnchecked(2, 1),
                      WindowSpec::SlidingUnchecked(6, 1))
                .status()
                .code(),
            StatusCode::kNotDerivable);
}

TEST(MaxoaTest, CumulativeWindowsRejected) {
  EXPECT_EQ(PlanMaxoa(WindowSpec::Cumulative(),
                      WindowSpec::SlidingUnchecked(1, 1))
                .status()
                .code(),
            StatusCode::kNotDerivable);
}

TEST(MaxoaTest, IncompleteViewRejected) {
  const WindowSpec vspec = WindowSpec::SlidingUnchecked(2, 1);
  Sequence incomplete(vspec, SeqAggFn::kSum, 4, 1, {1, 2, 3, 4});
  EXPECT_EQ(DeriveMaxoaExplicit(incomplete,
                                WindowSpec::SlidingUnchecked(3, 1))
                .status()
                .code(),
            StatusCode::kNotDerivable);
}

TEST(MaxoaTest, MinViewRoutedToMinMaxDerivation) {
  const Sequence min_view = BuildCompleteSequence(
      {1, 2, 3}, WindowSpec::SlidingUnchecked(2, 1), SeqAggFn::kMin);
  EXPECT_EQ(DeriveMaxoaExplicit(min_view, WindowSpec::SlidingUnchecked(3, 1))
                .status()
                .code(),
            StatusCode::kNotDerivable);
  EXPECT_TRUE(
      DeriveMaxoaMinMax(min_view, WindowSpec::SlidingUnchecked(3, 1)).ok());
}

TEST(MaxoaMinMaxTest, GapRejected) {
  const Sequence min_view = BuildCompleteSequence(
      RandomData(20, 3), WindowSpec::SlidingUnchecked(1, 1), SeqAggFn::kMin);
  // Δl = 2 > h_x = 1: the covering windows would leave a gap / read
  // past the header.
  EXPECT_EQ(DeriveMaxoaMinMax(min_view, WindowSpec::SlidingUnchecked(3, 1))
                .status()
                .code(),
            StatusCode::kNotDerivable);
}

// --- MinOA (§5) --------------------------------------------------------------

TEST(MinoaTest, PaperExperimentPair) {
  // Table 2 scenario: x̃ = (2,1), ỹ = (3,1).
  const std::vector<SeqValue> x = RandomData(50, 11);
  const WindowSpec vspec = WindowSpec::SlidingUnchecked(2, 1);
  const WindowSpec qspec = WindowSpec::SlidingUnchecked(3, 1);
  const Sequence view = BuildCompleteSequence(x, vspec, SeqAggFn::kSum);
  const Result<std::vector<SeqValue>> y = DeriveMinoa(view, qspec);
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(*y, ComputeSlidingNaive(x, qspec));
}

TEST(MinoaTest, NarrowingQueryAllowed) {
  // MinOA has no window-size precondition: derive (1,0) from (2,2).
  const std::vector<SeqValue> x = RandomData(30, 13);
  const Sequence view = BuildCompleteSequence(
      x, WindowSpec::SlidingUnchecked(2, 2), SeqAggFn::kSum);
  const WindowSpec qspec = WindowSpec::SlidingUnchecked(1, 0);
  const Result<std::vector<SeqValue>> y = DeriveMinoa(view, qspec);
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(*y, ComputeSlidingNaive(x, qspec));
}

TEST(MinoaTest, MinMaxViewsRejected) {
  const Sequence min_view = BuildCompleteSequence(
      {1, 2, 3}, WindowSpec::SlidingUnchecked(1, 1), SeqAggFn::kMin);
  EXPECT_EQ(DeriveMinoa(min_view, WindowSpec::SlidingUnchecked(2, 1))
                .status()
                .code(),
            StatusCode::kNotDerivable);
}

// --- exhaustive sweep: every derivable (view, query) pair -------------------

class DeriveSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DeriveSweep, AllAlgorithmsMatchBruteForce) {
  const auto& [lx, hx, n] = GetParam();
  if (lx + hx == 0) GTEST_SKIP();
  const WindowSpec vspec = WindowSpec::SlidingUnchecked(lx, hx);
  const std::vector<SeqValue> x = RandomData(n, 211 + n + lx * 5 + hx);
  const Sequence view = BuildCompleteSequence(x, vspec, SeqAggFn::kSum);
  const Sequence min_view = BuildCompleteSequence(x, vspec, SeqAggFn::kMin);
  const Sequence max_view = BuildCompleteSequence(x, vspec, SeqAggFn::kMax);

  // Raw reconstruction and cumulative chain are always derivable.
  ASSERT_TRUE(RawFromSliding(view).ok());
  EXPECT_EQ(*RawFromSliding(view), x);
  EXPECT_EQ(*RawFromSlidingLinear(view), x);
  EXPECT_EQ(*CumulativeFromSliding(view), ComputeCumulative(x));

  for (int ly = 0; ly <= 7; ++ly) {
    for (int hy = 0; hy <= 7; ++hy) {
      if (ly + hy == 0) continue;
      const WindowSpec qspec = WindowSpec::SlidingUnchecked(ly, hy);
      const std::vector<SeqValue> expected = ComputeSlidingNaive(x, qspec);

      const Result<std::vector<SeqValue>> minoa = DeriveMinoa(view, qspec);
      ASSERT_TRUE(minoa.ok()) << qspec.ToString();
      EXPECT_EQ(*minoa, expected) << "MinOA " << qspec.ToString();

      if (PlanMaxoa(vspec, qspec).ok()) {
        EXPECT_EQ(*DeriveMaxoaRecursive(view, qspec), expected)
            << "MaxOA-rec " << qspec.ToString();
        EXPECT_EQ(*DeriveMaxoaExplicit(view, qspec), expected)
            << "MaxOA-exp " << qspec.ToString();
      }

      const Result<std::vector<SeqValue>> min_cover =
          DeriveMaxoaMinMax(min_view, qspec);
      if (min_cover.ok()) {
        EXPECT_EQ(*min_cover, ComputeSlidingMinMax(x, qspec, true))
            << "MIN cover " << qspec.ToString();
      }
      const Result<std::vector<SeqValue>> max_cover =
          DeriveMaxoaMinMax(max_view, qspec);
      if (max_cover.ok()) {
        EXPECT_EQ(*max_cover, ComputeSlidingMinMax(x, qspec, false))
            << "MAX cover " << qspec.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ViewShapes, DeriveSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1, 5, 23)));

TEST(DeriveSweepExtra, CoincidentClassMinoaCase) {
  // (Δl + Δh) ≡ 0 (mod w_x): the chains cancel to a bounded sum.
  const WindowSpec vspec = WindowSpec::SlidingUnchecked(1, 1);  // w = 3
  const WindowSpec qspec = WindowSpec::SlidingUnchecked(3, 2);  // Δl+Δh=3
  const std::vector<SeqValue> x = RandomData(40, 77);
  const Sequence view = BuildCompleteSequence(x, vspec, SeqAggFn::kSum);
  const Result<std::vector<SeqValue>> y = DeriveMinoa(view, qspec);
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(*y, ComputeSlidingNaive(x, qspec));
}

}  // namespace
}  // namespace rfv
