#include "sequence/maintain.h"

#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "sequence/compute.h"

namespace rfv {
namespace {

std::vector<SeqValue> RandomData(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(-9, 9);
  std::vector<SeqValue> x(n);
  for (auto& v : x) v = dist(rng);
  return x;
}

bool SeqEquals(const Sequence& a, const Sequence& b) {
  if (a.n() != b.n() || a.first_pos() != b.first_pos() ||
      a.last_pos() != b.last_pos()) {
    return false;
  }
  for (int64_t k = a.first_pos(); k <= a.last_pos(); ++k) {
    if (a.at(k) != b.at(k)) return false;
  }
  return true;
}

TEST(MaintainTest, UpdateTouchesExactlyWPositions) {
  const WindowSpec spec = WindowSpec::SlidingUnchecked(2, 1);  // w = 4
  std::vector<SeqValue> x = RandomData(30, 7);
  Sequence seq = BuildCompleteSequence(x, spec, SeqAggFn::kSum);
  const Result<size_t> touched = MaintainUpdate(&x, &seq, 15, 99);
  ASSERT_TRUE(touched.ok());
  EXPECT_EQ(*touched, 4u);  // the paper's locality claim: w positions
  EXPECT_TRUE(SeqEquals(seq, BuildCompleteSequence(x, spec, SeqAggFn::kSum)));
}

TEST(MaintainTest, UpdateAtBoundaryTouchesHeader) {
  const WindowSpec spec = WindowSpec::SlidingUnchecked(1, 2);
  std::vector<SeqValue> x = RandomData(10, 8);
  Sequence seq = BuildCompleteSequence(x, spec, SeqAggFn::kSum);
  // Updating position 1 affects sequence positions [1-2, 1+1] = [-1, 2],
  // which includes header positions.
  ASSERT_TRUE(MaintainUpdate(&x, &seq, 1, 42).ok());
  EXPECT_TRUE(SeqEquals(seq, BuildCompleteSequence(x, spec, SeqAggFn::kSum)));
}

TEST(MaintainTest, UpdateOutOfRangeRejected) {
  const WindowSpec spec = WindowSpec::SlidingUnchecked(1, 1);
  std::vector<SeqValue> x = {1, 2, 3};
  Sequence seq = BuildCompleteSequence(x, spec, SeqAggFn::kSum);
  EXPECT_EQ(MaintainUpdate(&x, &seq, 0, 5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MaintainUpdate(&x, &seq, 4, 5).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MaintainTest, MaintenanceRequiresCompleteSequence) {
  const WindowSpec spec = WindowSpec::SlidingUnchecked(1, 1);
  std::vector<SeqValue> x = {1, 2, 3};
  Sequence incomplete(spec, SeqAggFn::kSum, 3, 1, {3, 6, 5});
  EXPECT_EQ(MaintainUpdate(&x, &incomplete, 2, 9).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MaintainTest, InsertShiftsAndGrows) {
  const WindowSpec spec = WindowSpec::SlidingUnchecked(1, 1);
  std::vector<SeqValue> x = {1, 2, 3, 4};
  Sequence seq = BuildCompleteSequence(x, spec, SeqAggFn::kSum);
  ASSERT_TRUE(MaintainInsert(&x, &seq, 2, 100).ok());
  EXPECT_EQ(x, std::vector<SeqValue>({1, 100, 2, 3, 4}));
  EXPECT_EQ(seq.n(), 5);
  EXPECT_TRUE(SeqEquals(seq, BuildCompleteSequence(x, spec, SeqAggFn::kSum)));
}

TEST(MaintainTest, InsertAppendAtEnd) {
  const WindowSpec spec = WindowSpec::SlidingUnchecked(2, 2);
  std::vector<SeqValue> x = {1, 2, 3};
  Sequence seq = BuildCompleteSequence(x, spec, SeqAggFn::kSum);
  ASSERT_TRUE(MaintainInsert(&x, &seq, 4, 7).ok());
  EXPECT_EQ(x.back(), 7);
  EXPECT_TRUE(SeqEquals(seq, BuildCompleteSequence(x, spec, SeqAggFn::kSum)));
}

TEST(MaintainTest, DeleteShiftsAndShrinks) {
  const WindowSpec spec = WindowSpec::SlidingUnchecked(1, 1);
  std::vector<SeqValue> x = {1, 2, 3, 4};
  Sequence seq = BuildCompleteSequence(x, spec, SeqAggFn::kSum);
  ASSERT_TRUE(MaintainDelete(&x, &seq, 2).ok());
  EXPECT_EQ(x, std::vector<SeqValue>({1, 3, 4}));
  EXPECT_EQ(seq.n(), 3);
  EXPECT_TRUE(SeqEquals(seq, BuildCompleteSequence(x, spec, SeqAggFn::kSum)));
}

TEST(MaintainTest, DeleteLastElement) {
  const WindowSpec spec = WindowSpec::SlidingUnchecked(1, 1);
  std::vector<SeqValue> x = {5};
  Sequence seq = BuildCompleteSequence(x, spec, SeqAggFn::kSum);
  ASSERT_TRUE(MaintainDelete(&x, &seq, 1).ok());
  EXPECT_TRUE(x.empty());
  EXPECT_EQ(seq.n(), 0);
}

TEST(MaintainTest, CumulativeUpdatePropagatesDelta) {
  std::vector<SeqValue> x = {1, 2, 3, 4};
  Sequence seq =
      BuildCompleteSequence(x, WindowSpec::Cumulative(), SeqAggFn::kSum);
  const Result<size_t> touched = MaintainCumulativeUpdate(&x, &seq, 2, 10);
  ASSERT_TRUE(touched.ok());
  EXPECT_EQ(*touched, 3u);  // positions 2..4
  EXPECT_TRUE(SeqEquals(
      seq, BuildCompleteSequence(x, WindowSpec::Cumulative(), SeqAggFn::kSum)));
}

TEST(MaintainTest, CumulativeUpdateOnSlidingRejected) {
  const WindowSpec spec = WindowSpec::SlidingUnchecked(1, 1);
  std::vector<SeqValue> x = {1, 2};
  Sequence seq = BuildCompleteSequence(x, spec, SeqAggFn::kSum);
  EXPECT_EQ(MaintainCumulativeUpdate(&x, &seq, 1, 2).status().code(),
            StatusCode::kInvalidArgument);
}

// Randomized property sweep: mixed update/insert/delete streams must
// leave the incrementally maintained sequence identical to a fresh
// recomputation, for SUM, MIN and MAX and across window shapes.
class MaintainSweep
    : public ::testing::TestWithParam<std::tuple<int, int, SeqAggFn>> {};

TEST_P(MaintainSweep, RandomOperationStreamMatchesRecompute) {
  const auto& [l, h, fn] = GetParam();
  if (l + h == 0) GTEST_SKIP();
  const WindowSpec spec = WindowSpec::SlidingUnchecked(l, h);
  std::mt19937 rng(91 + l * 13 + h * 7 + static_cast<int>(fn));
  std::uniform_int_distribution<int> value(-9, 9);

  std::vector<SeqValue> x = RandomData(25, 17);
  Sequence seq = BuildCompleteSequence(x, spec, fn);
  for (int step = 0; step < 60; ++step) {
    const int n = static_cast<int>(x.size());
    const int op = n == 0 ? 1 : static_cast<int>(rng() % 3);
    Status status;
    if (op == 0) {
      status = MaintainUpdate(&x, &seq, 1 + static_cast<int>(rng() % n),
                              value(rng))
                   .status();
    } else if (op == 1) {
      status = MaintainInsert(&x, &seq, 1 + static_cast<int>(rng() % (n + 1)),
                              value(rng))
                   .status();
    } else {
      status =
          MaintainDelete(&x, &seq, 1 + static_cast<int>(rng() % n)).status();
    }
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_TRUE(SeqEquals(seq, BuildCompleteSequence(x, spec, fn)))
        << "step " << step << " op " << op << " n=" << x.size();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MaintainSweep,
    ::testing::Combine(::testing::Values(0, 1, 3), ::testing::Values(0, 1, 2),
                       ::testing::Values(SeqAggFn::kSum, SeqAggFn::kMin,
                                         SeqAggFn::kMax)));

}  // namespace
}  // namespace rfv
