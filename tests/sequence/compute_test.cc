#include "sequence/compute.h"

#include <gtest/gtest.h>

#include <random>
#include <tuple>

namespace rfv {
namespace {

std::vector<SeqValue> RandomData(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(-9, 9);
  std::vector<SeqValue> x(n);
  for (auto& v : x) v = dist(rng);
  return x;
}

TEST(ComputeTest, CumulativeBasics) {
  const std::vector<SeqValue> cum = ComputeCumulative({1, 2, 3, -4});
  EXPECT_EQ(cum, std::vector<SeqValue>({1, 3, 6, 2}));
  EXPECT_TRUE(ComputeCumulative({}).empty());
}

TEST(ComputeTest, NaiveKnownValues) {
  // Paper Fig. 2 query: centered window of size 3 over 1..5.
  const std::vector<SeqValue> out =
      ComputeSlidingNaive({1, 2, 3, 4, 5}, WindowSpec::SlidingUnchecked(1, 1));
  EXPECT_EQ(out, std::vector<SeqValue>({3, 6, 9, 12, 9}));
}

TEST(ComputeTest, PipelinedKnownValues) {
  const std::vector<SeqValue> out = ComputeSlidingPipelined(
      {1, 2, 3, 4, 5}, WindowSpec::SlidingUnchecked(1, 1));
  EXPECT_EQ(out, std::vector<SeqValue>({3, 6, 9, 12, 9}));
}

TEST(ComputeTest, EmptyInput) {
  const WindowSpec spec = WindowSpec::SlidingUnchecked(1, 1);
  EXPECT_TRUE(ComputeSlidingNaive({}, spec).empty());
  EXPECT_TRUE(ComputeSlidingPipelined({}, spec).empty());
}

TEST(ComputeTest, MinMaxKnownValues) {
  const WindowSpec spec = WindowSpec::SlidingUnchecked(1, 1);
  EXPECT_EQ(ComputeSlidingMinMax({3, 1, 4, 1, 5}, spec, /*is_min=*/true),
            std::vector<SeqValue>({1, 1, 1, 1, 1}));
  EXPECT_EQ(ComputeSlidingMinMax({3, 1, 4, 1, 5}, spec, /*is_min=*/false),
            std::vector<SeqValue>({3, 4, 4, 5, 5}));
}

TEST(ComputeTest, MinMaxClipsAtBoundaries) {
  // Boundary windows must NOT see zero padding (all-positive data would
  // otherwise yield a spurious 0 minimum at the edges).
  const WindowSpec spec = WindowSpec::SlidingUnchecked(2, 2);
  const std::vector<SeqValue> mins =
      ComputeSlidingMinMax({5, 6, 7, 8}, spec, /*is_min=*/true);
  EXPECT_EQ(mins, std::vector<SeqValue>({5, 5, 5, 6}));
}

TEST(ComputeTest, CompleteSequenceHeaderTrailerExtent) {
  const WindowSpec spec = WindowSpec::SlidingUnchecked(2, 1);
  const Sequence seq =
      BuildCompleteSequence({1, 2, 3, 4, 5}, spec, SeqAggFn::kSum);
  EXPECT_EQ(seq.first_pos(), 0);   // -h+1
  EXPECT_EQ(seq.last_pos(), 7);    // n+l
  EXPECT_TRUE(seq.IsComplete());
  // Header value x̃_0 sums positions [-2, 1] ∩ [1,5] = {1}.
  EXPECT_EQ(seq.at(0), 1);
  // Trailer value x̃_7 sums positions [5, 8] ∩ [1,5] = {5}.
  EXPECT_EQ(seq.at(7), 5);
  // Body value x̃_3 = x1+x2+x3+x4.
  EXPECT_EQ(seq.at(3), 10);
}

TEST(ComputeTest, CompleteCumulativeStoresBody) {
  const Sequence seq = BuildCompleteSequence({1, 2, 3}, WindowSpec::Cumulative(),
                                             SeqAggFn::kSum);
  EXPECT_EQ(seq.first_pos(), 1);
  EXPECT_EQ(seq.last_pos(), 3);
  EXPECT_EQ(seq.at(3), 6);
  EXPECT_TRUE(seq.IsComplete());
}

TEST(ComputeTest, CompleteCumulativeRunningMinMax) {
  const Sequence running_min = BuildCompleteSequence(
      {3, 1, 2}, WindowSpec::Cumulative(), SeqAggFn::kMin);
  EXPECT_EQ(running_min.at(1), 3);
  EXPECT_EQ(running_min.at(2), 1);
  EXPECT_EQ(running_min.at(3), 1);
}

TEST(ComputeTest, CompleteSequenceEmptyData) {
  const Sequence seq = BuildCompleteSequence(
      {}, WindowSpec::SlidingUnchecked(1, 1), SeqAggFn::kSum);
  EXPECT_EQ(seq.n(), 0);
  EXPECT_EQ(seq.at(1), 0);
}

// Property sweep: naive == pipelined == complete-sequence body, and the
// MIN/MAX deque matches a brute-force scan, across window shapes.
class ComputeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ComputeSweep, AllStrategiesAgree) {
  const auto& [l, h, n] = GetParam();
  if (l + h == 0) GTEST_SKIP();
  const WindowSpec spec = WindowSpec::SlidingUnchecked(l, h);
  const std::vector<SeqValue> x = RandomData(n, 1000 + n * 31 + l * 7 + h);

  const std::vector<SeqValue> naive = ComputeSlidingNaive(x, spec);
  EXPECT_EQ(ComputeSlidingPipelined(x, spec), naive);
  EXPECT_EQ(BuildCompleteSequence(x, spec, SeqAggFn::kSum).BodyValues(),
            naive);

  for (const bool is_min : {true, false}) {
    const std::vector<SeqValue> fast = ComputeSlidingMinMax(x, spec, is_min);
    ASSERT_EQ(fast.size(), x.size());
    for (int k = 1; k <= n; ++k) {
      SeqValue extreme = is_min ? 1e300 : -1e300;
      for (int i = std::max(1, k - l); i <= std::min(n, k + h); ++i) {
        extreme = is_min ? std::min(extreme, x[i - 1])
                         : std::max(extreme, x[i - 1]);
      }
      EXPECT_EQ(fast[k - 1], extreme) << "k=" << k << " min=" << is_min;
    }
    EXPECT_EQ(
        BuildCompleteSequence(x, spec, is_min ? SeqAggFn::kMin : SeqAggFn::kMax)
            .BodyValues(),
        fast);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WindowShapes, ComputeSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 5), ::testing::Values(0, 1, 3),
                       ::testing::Values(1, 2, 7, 40)));

TEST(ComputeTest, WindowLargerThanData) {
  const WindowSpec spec = WindowSpec::SlidingUnchecked(10, 10);
  const std::vector<SeqValue> x = {1, 2, 3};
  const std::vector<SeqValue> out = ComputeSlidingNaive(x, spec);
  EXPECT_EQ(out, std::vector<SeqValue>({6, 6, 6}));
  EXPECT_EQ(ComputeSlidingPipelined(x, spec), out);
}

}  // namespace
}  // namespace rfv
