// Worked examples from the paper, verified number by number.

#include <gtest/gtest.h>

#include "sequence/compute.h"
#include "sequence/maxoa.h"
#include "sequence/minoa.h"
#include "test_util.h"

namespace rfv {
namespace {

using testutil::MustExecute;

// --- paper Fig. 6: derivation of ỹ=(3,1) from x̃=(2,1) ----------------------

TEST(PaperFig6Test, DerivationTableHolds) {
  // The figure's identities, e.g. ỹ4 = x̃4 + x̃0 and
  // ỹ9 = x̃9 + x̃5 − x̃4 + x̃1 − x̃0, must hold for arbitrary raw data.
  const int n = 12;
  std::vector<SeqValue> x(n);
  for (int i = 0; i < n; ++i) x[i] = (i * 17 + 3) % 23 - 11;
  const Sequence xs = BuildCompleteSequence(
      x, WindowSpec::SlidingUnchecked(2, 1), SeqAggFn::kSum);
  const std::vector<SeqValue> y =
      ComputeSlidingNaive(x, WindowSpec::SlidingUnchecked(3, 1));

  const auto xt = [&](int64_t k) { return xs.at(k); };
  // ỹ1..ỹ3 coincide with x̃1..x̃3 plus the header contribution; per the
  // figure: y1 = x̃1, y2 = x̃2, y3 = x̃3 only when x0-era header values
  // fold in — the figure states ỹk in terms of x̃ with header access:
  EXPECT_EQ(y[3], xt(4) + xt(0));                      // ỹ4 = x̃4 + x̃0
  EXPECT_EQ(y[4], xt(5) + xt(1) - xt(0));              // ỹ5
  EXPECT_EQ(y[5], xt(6) + xt(2) - xt(1));              // ỹ6
  EXPECT_EQ(y[6], xt(7) + xt(3) - xt(2));              // ỹ7
  // ỹ8's chain reaches the header: x̃_{8-2·4} = x̃0 (the scanned paper's
  // figure truncates this term; the explicit-form theorem requires it).
  EXPECT_EQ(y[7], xt(8) + xt(4) - xt(3) + xt(0));      // ỹ8
  EXPECT_EQ(y[8], xt(9) + xt(5) - xt(4) + xt(1) - xt(0));   // ỹ9
  EXPECT_EQ(y[9], xt(10) + xt(6) - xt(5) + xt(2) - xt(1));  // ỹ10
}

TEST(PaperFig6Test, FirstThreePositions) {
  // With all-positive data, ỹ1..ỹ3 differ from x̃1..x̃3 exactly by the
  // larger window's extra raw terms, which the header values absorb:
  // the MaxOA formula ỹk = x̃k + x̃_{k-1} − z̃k must reproduce them.
  std::vector<SeqValue> x = {1, 2, 3, 4, 5, 6, 7, 8};
  const Sequence xs = BuildCompleteSequence(
      x, WindowSpec::SlidingUnchecked(2, 1), SeqAggFn::kSum);
  const Result<std::vector<SeqValue>> y =
      DeriveMaxoaExplicit(xs, WindowSpec::SlidingUnchecked(3, 1));
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(*y, ComputeSlidingNaive(x, WindowSpec::SlidingUnchecked(3, 1)));
}

// --- paper Fig. 7: complete sequence extent ---------------------------------

TEST(PaperFig7Test, HeaderAndTrailerExtent) {
  // x̃ = (2,1): header positions −h+1..0 = {0}, trailer n+1..n+2.
  const std::vector<SeqValue> x = {1, 1, 1, 1, 1};
  const Sequence xs = BuildCompleteSequence(
      x, WindowSpec::SlidingUnchecked(2, 1), SeqAggFn::kSum);
  EXPECT_EQ(xs.first_pos(), 0);
  EXPECT_EQ(xs.last_pos(), 7);
  // x̃0 covers {1} (window [-2,1] clipped by zero padding): value 1.
  EXPECT_EQ(xs.at(0), 1);
  // Trailer x̃6 covers {4,5}: value 2; x̃7 covers {5}: value 1.
  EXPECT_EQ(xs.at(6), 2);
  EXPECT_EQ(xs.at(7), 1);
}

// --- paper §2.2 relationship x̃k + x_{k−l−1} = x̃_{k−1} + x_{k+h} -----------

TEST(PaperSection22Test, NeighborRelationship) {
  const WindowSpec spec = WindowSpec::SlidingUnchecked(3, 2);
  std::vector<SeqValue> x(20);
  for (int i = 0; i < 20; ++i) x[i] = (i * 7) % 13;
  const auto raw = [&](int64_t i) {
    return (i >= 1 && i <= 20) ? x[static_cast<size_t>(i - 1)] : 0.0;
  };
  const std::vector<SeqValue> seq = ComputeSlidingPipelined(x, spec);
  for (int64_t k = 2; k <= 20; ++k) {
    EXPECT_EQ(seq[k - 1] + raw(k - spec.l() - 1),
              seq[k - 2] + raw(k + spec.h()))
        << "k=" << k;
  }
}

// --- paper §3.1 formulas -----------------------------------------------------

TEST(PaperSection31Test, RawAndSlidingFromCumulative) {
  Database db;
  testutil::CreateSeqTable(db, 25);
  MustExecute(db,
              "CREATE MATERIALIZED VIEW c AS SELECT pos, SUM(val) OVER "
              "(ORDER BY pos ROWS UNBOUNDED PRECEDING) FROM seq");
  // x_k = c_k − c_{k−1} via SQL over the view.
  const ResultSet diff = MustExecute(
      db,
      "SELECT s1.pos AS pos, SUM(CASE WHEN s1.pos = s2.pos THEN s2.val "
      "ELSE (-1) * s2.val END) AS val FROM c s1, c s2 WHERE s2.pos IN "
      "(s1.pos - 1, s1.pos) GROUP BY s1.pos ORDER BY 1");
  db.options().enable_view_rewrite = false;
  const ResultSet raw =
      MustExecute(db, "SELECT pos, val FROM seq ORDER BY pos");
  ASSERT_EQ(diff.NumRows(), raw.NumRows());
  for (size_t i = 0; i < raw.NumRows(); ++i) {
    EXPECT_DOUBLE_EQ(diff.at(i, 1).ToDouble(), raw.at(i, 1).ToDouble());
  }
}

// --- paper Table 1 query shape ----------------------------------------------

TEST(PaperTable1Test, QueryShapeBothMethods) {
  Database db;
  testutil::CreateSeqTable(db, 100);
  // "reporting functionality": the paper's exact query.
  const ResultSet native = MustExecute(
      db,
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING "
      "AND 1 FOLLOWING) FROM seq ORDER BY pos");
  // "self join method": the paper's Fig. 2 simulation.
  const ResultSet self_join = MustExecute(
      db,
      "SELECT s1.pos AS pos, SUM(s2.val) AS val FROM seq s1, seq s2 WHERE "
      "s1.pos IN (s2.pos - 1, s2.pos, s2.pos + 1) GROUP BY s1.pos ORDER BY "
      "s1.pos");
  EXPECT_TRUE(testutil::RowsEqual(native, self_join));
}

// --- paper §7 conclusion: MaxOA covers MIN/MAX, MinOA does not ---------------

TEST(PaperSection7Test, AggregateCoverage) {
  const std::vector<SeqValue> x = {3, 1, 4, 1, 5, 9, 2, 6};
  const WindowSpec vspec = WindowSpec::SlidingUnchecked(2, 1);
  const WindowSpec qspec = WindowSpec::SlidingUnchecked(3, 1);
  const Sequence min_view = BuildCompleteSequence(x, vspec, SeqAggFn::kMin);
  EXPECT_TRUE(DeriveMaxoaMinMax(min_view, qspec).ok());
  EXPECT_FALSE(DeriveMinoa(min_view, qspec).ok());
}

}  // namespace
}  // namespace rfv
