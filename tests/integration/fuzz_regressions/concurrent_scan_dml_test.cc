// Concurrency regression: before the snapshot serving layer, ANY scan
// caught by a DML mutation_epoch bump died with
//
//   ExecutionError: table 't' mutated during scan
//
// in all three pull styles. The canonical two-session interleaving —
// open a scan, let another session commit DML, keep pulling — must now
// complete against the reader's pinned snapshot. This is the minimal
// deterministic reproducer distilled from the serve_stress battery;
// it runs under the regression_corpus ctest label in tier-1 and in the
// nightly fuzz-campaign job.

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/session.h"
#include "exec/operators.h"
#include "test_util.h"

namespace rfv {
namespace {

using testutil::MustExecute;

class ConcurrentScanDmlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // > 1024 rows so batch/vector scans take more than one pull.
    testutil::CreateSeqTable(db_, 1100);
    Result<Table*> t = db_.catalog()->GetTable("seq");
    ASSERT_TRUE(t.ok());
    table_ = *t;
  }

  Database db_;
  Table* table_ = nullptr;
};

TEST_F(ConcurrentScanDmlTest, RowPullSurvivesInterleavedInsert) {
  TableScanOp scan(table_->schema(), table_);
  ASSERT_TRUE(scan.Open().ok());
  Row row;
  bool eof = false;
  ASSERT_TRUE(scan.Next(&row, &eof).ok());

  Session other(&db_);
  ASSERT_TRUE(other.Execute("INSERT INTO seq VALUES (2000, 1)").ok());

  size_t rows = 1;
  while (true) {
    const Status s = scan.Next(&row, &eof);
    ASSERT_TRUE(s.ok()) << "regressed to the epoch abort: " << s.ToString();
    if (eof) break;
    ++rows;
  }
  EXPECT_EQ(rows, 1100u);
}

TEST_F(ConcurrentScanDmlTest, BatchPullSurvivesInterleavedUpdate) {
  TableScanOp scan(table_->schema(), table_);
  ASSERT_TRUE(scan.Open().ok());
  RowBatch batch;
  bool eof = false;
  ASSERT_TRUE(scan.NextBatch(&batch, &eof).ok());
  ASSERT_FALSE(eof);

  Session other(&db_);
  ASSERT_TRUE(other.Execute("UPDATE seq SET val = 0 WHERE pos <= 10").ok());

  size_t total = batch.size();
  while (!eof) {
    batch.Clear();
    const Status s = scan.NextBatch(&batch, &eof);
    ASSERT_TRUE(s.ok()) << "regressed to the epoch abort: " << s.ToString();
    total += batch.size();
  }
  EXPECT_EQ(total, 1100u);
}

TEST_F(ConcurrentScanDmlTest, VectorPullSurvivesInterleavedDelete) {
  TableScanOp scan(table_->schema(), table_);
  ASSERT_TRUE(scan.Open().ok());
  VectorProjection* vp = nullptr;
  bool eof = false;
  ASSERT_TRUE(scan.NextVector(&vp, &eof).ok());
  ASSERT_FALSE(eof);

  Session other(&db_);
  ASSERT_TRUE(other.Execute("DELETE FROM seq WHERE pos = 1").ok());

  size_t total = vp->NumSelected();
  while (!eof) {
    const Status s = scan.NextVector(&vp, &eof);
    ASSERT_TRUE(s.ok()) << "regressed to the epoch abort: " << s.ToString();
    total += vp->NumSelected();
  }
  EXPECT_EQ(total, 1100u);
}

}  // namespace
}  // namespace rfv
