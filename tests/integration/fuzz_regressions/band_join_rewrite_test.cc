// Pinned scenario for the merge band join's hardest rewrite shape,
// minimized from the batch/band oracle campaign that introduced the
// `batch` and `band` differential oracles (docs/FUZZING.md).
//
// A (1,1) view answering a (2,2) query via MaxOA emits the full
// disjunction MergeBandJoinOp claims: a BETWEEN hull plus positive and
// compensation MOD-stride branches on both sides (paper Fig. 10). The
// band join must agree row-for-row with the band-disabled execution of
// the same rewritten plan (index-/nested-loop joins) and with the
// native window operator — under both the row-at-a-time and the batch
// pull styles. A wrong strict-bound adjustment, congruence-class
// anchor, or stride-candidate dedup shows up here as a row diff.

#include <gtest/gtest.h>

#include "common/metrics_registry.h"
#include "db/database.h"
#include "rewrite/derivability.h"
#include "test_util.h"
#include "testing/oracle.h"
#include "testing/scenario.h"

namespace rfv {
namespace {

using testutil::MustExecute;
using testutil::RowsEqualCanonical;

class BandJoinRewriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(db_, "CREATE TABLE t (pos INTEGER, val INTEGER)");
    MustExecute(db_,
                "INSERT INTO t VALUES (1, 5), (2, -3), (3, 0), (4, 12), "
                "(5, 7), (6, -9), (7, 4), (8, 1), (9, 6), (10, -2)");
    MustExecute(db_,
                "CREATE MATERIALIZED VIEW v AS SELECT pos, SUM(val) "
                "OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 "
                "FOLLOWING) FROM t");
  }

  ResultSet Query() {
    return MustExecute(
        db_,
        "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 "
        "PRECEDING AND 2 FOLLOWING) FROM t ORDER BY pos");
  }

  Database db_;
};

TEST_F(BandJoinRewriteTest, ForcedMaxoaBandOnOffAndNativeAgree) {
  db_.options().enable_view_rewrite = false;
  const ResultSet native = Query();

  Counter* band_rows = MetricsRegistry::Global().GetCounter(
      "rfv_band_join_rows_total", {},
      "Join output rows produced by the merge band join operator");
  const int64_t before = band_rows->value();

  db_.options().enable_view_rewrite = true;
  db_.options().force_method = DerivationMethod::kMaxoa;
  const ResultSet banded = Query();
  ASSERT_EQ(banded.rewrite_method(), "MaxOA") << banded.rewritten_sql();
  // The rewritten self join must actually have executed through
  // MergeBandJoinOp, not fallen back to another join strategy.
  EXPECT_GT(band_rows->value(), before);
  EXPECT_TRUE(RowsEqualCanonical(native, banded));

  db_.options().exec.enable_merge_band_join = false;
  const ResultSet fallback = Query();
  db_.options().exec.enable_merge_band_join = true;
  ASSERT_EQ(fallback.rewrite_method(), "MaxOA");
  EXPECT_TRUE(RowsEqualCanonical(banded, fallback));
}

TEST_F(BandJoinRewriteTest, ForcedMinoaBandOnOffAgreeInRowMode) {
  db_.options().enable_view_rewrite = true;
  db_.options().force_method = DerivationMethod::kMinoa;
  db_.options().exec.use_batch_execution = false;
  const ResultSet banded = Query();
  ASSERT_EQ(banded.rewrite_method(), "MinOA") << banded.rewritten_sql();

  db_.options().exec.enable_merge_band_join = false;
  const ResultSet fallback = Query();
  ASSERT_EQ(fallback.rewrite_method(), "MinOA");
  EXPECT_TRUE(RowsEqualCanonical(banded, fallback));
}

// The minimized harness scenario, replayed through the oracle runner:
// the batch and band oracles must both run and pass on it.
TEST(BandJoinScenarioTest, MinimizedScenarioPassesAllOracles) {
  using namespace fuzzing;
  Scenario s;
  s.kind = ScenarioKind::kRewrite;
  s.dense_positions = true;
  s.val_type = DataType::kInt64;
  for (int64_t i = 1; i <= 10; ++i) {
    FuzzRow row;
    row.pos = Value::Int(i);
    row.val = Value::Int((i * 7) % 13 - 6);
    s.rows.push_back(row);
  }
  FuzzView view;
  view.name = "v0";
  view.fn = FuzzFn::kSum;
  view.frame = {false, 1, 1};
  s.views.push_back(view);
  FuzzQuery wide;
  wide.fn = FuzzFn::kSum;
  wide.frame = {false, 2, 2};
  s.queries.push_back(wide);
  FuzzQuery cumulative;
  cumulative.fn = FuzzFn::kSum;
  cumulative.frame = {true, 0, 0};
  s.queries.push_back(cumulative);

  const ScenarioVerdict verdict = RunScenario(s);
  EXPECT_TRUE(verdict.ok()) << verdict.Summary();
  EXPECT_GT(verdict.checks.count("batch"), 0u) << verdict.Summary();
  EXPECT_GT(verdict.checks.count("vector"), 0u) << verdict.Summary();
  EXPECT_GT(verdict.checks.count("band"), 0u) << verdict.Summary();
}

}  // namespace
}  // namespace rfv
