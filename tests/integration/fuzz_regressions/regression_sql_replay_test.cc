// Regression-corpus replay: every `.sql` transcript under
// tests/integration/fuzz_regressions/ (shrunk fuzz repros, interleave
// schedules) must execute cleanly, statement by statement, against a
// fresh Database. The `.cc` twins in this directory pin the precise
// semantics of each repro; this tier guarantees the corpus itself never
// rots — a transcript that stops parsing or starts erroring is a
// regression even before any oracle runs. New repros join the corpus by
// dropping the .sql file here; no code change needed.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "db/database.h"
#include "test_util.h"

namespace rfv {
namespace {

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(RFV_REGRESSION_SQL_DIR)) {
    if (entry.path().extension() == ".sql") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Splits a transcript into statements: `--` comment lines dropped,
/// text split on `;` (the corpus contains no string literals with
/// semicolons — keep it that way).
std::vector<std::string> SplitStatements(const std::string& script) {
  std::string no_comments;
  std::istringstream lines(script);
  std::string line;
  while (std::getline(lines, line)) {
    const size_t comment = line.find("--");
    no_comments += line.substr(0, comment);
    no_comments += '\n';
  }
  std::vector<std::string> statements;
  std::string current;
  for (const char c : no_comments) {
    if (c == ';') {
      if (current.find_first_not_of(" \t\n\r") != std::string::npos) {
        statements.push_back(current);
      }
      current.clear();
    } else {
      current += c;
    }
  }
  if (current.find_first_not_of(" \t\n\r") != std::string::npos) {
    statements.push_back(current);
  }
  return statements;
}

TEST(RegressionSqlReplayTest, CorpusIsNonEmpty) {
  EXPECT_GE(CorpusFiles().size(), 3u);
}

TEST(RegressionSqlReplayTest, EveryTranscriptReplaysCleanly) {
  for (const std::filesystem::path& path : CorpusFiles()) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();

    const std::vector<std::string> statements =
        SplitStatements(buffer.str());
    ASSERT_FALSE(statements.empty());

    Database db;
    for (const std::string& sql : statements) {
      const Result<ResultSet> rs = db.Execute(sql);
      EXPECT_TRUE(rs.ok()) << "statement failed: " << sql << "\n  "
                           << rs.status().ToString();
    }
  }
}

}  // namespace
}  // namespace rfv
