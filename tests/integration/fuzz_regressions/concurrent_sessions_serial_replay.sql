-- interleave seed1/iter0-style schedule, serial replay form — the
-- artifact rfview_fuzz --interleave writes on a mismatch. Sessions are
-- annotated `-- sN`; the replay tier executes the statements in
-- schedule order on one connection (the serial reference of the
-- interleave oracle). The racing twin lives in
-- concurrent_scan_dml_test.cc and tests/db/serve_stress_test.cc.
CREATE TABLE t (session INTEGER, pos INTEGER, val INTEGER);
-- s0
INSERT INTO t VALUES (0, 1, 17), (0, 2, -4);
-- s1
INSERT INTO t VALUES (1, 1, 30);
-- s0
SELECT pos, val FROM t WHERE session = 0;
-- s1
UPDATE t SET val = 8 WHERE session = 1 AND pos = 1;
-- s0
SELECT COUNT(*) FROM t;
-- s1
INSERT INTO t VALUES (1, 2, -11), (1, 3, 2);
-- s0
DELETE FROM t WHERE session = 0 AND pos = 1;
-- s1
SELECT pos, val FROM t WHERE session = 1;
-- s0
SELECT COUNT(*) FROM t;
