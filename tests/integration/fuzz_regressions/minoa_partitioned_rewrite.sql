-- fuzz repro: seed 1, iteration 37 (minimized by the shrinker).
-- Forced MinOA/MaxOA on a partitioned (view, query) pair used to plan
-- the single-sequence self-join and collapse all partitions into one
-- sequence. The .cc twin (minoa_partitioned_rewrite_test.cc) pins the
-- exact rewrite verdicts; this transcript pins "replays cleanly".
CREATE TABLE t (grp INTEGER, pos INTEGER, val INTEGER);
INSERT INTO t VALUES (0, 1, 10), (0, 2, 20), (0, 3, 30), (1, 1, -5), (1, 2, 5);
CREATE MATERIALIZED VIEW v0 AS SELECT grp, pos, SUM(val)
  OVER (PARTITION BY grp ORDER BY pos
        ROWS BETWEEN 0 PRECEDING AND 1 FOLLOWING) FROM t;
SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos
  ROWS BETWEEN 0 PRECEDING AND 1 FOLLOWING) FROM t ORDER BY grp, pos;
