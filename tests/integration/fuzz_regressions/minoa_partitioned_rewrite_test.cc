// Regression for a bug found by the first rfview_fuzz campaign
// (seed 1, iteration 37; minimized repro below).
//
// Forcing MinOA (or MaxOA) through Database::Options::force_method on a
// PARTITIONED query over a PARTITIONED sequence view used to bypass
// CheckDerivability's partitioning guard: the force-method fallback in
// Rewriter planned the single-sequence MinOA self-join, whose SQL
// template has no partition column in the select list or the join
// predicate. The result dropped the grp column entirely (3 columns
// shrank to 2) and collapsed all partitions into one sequence.
//
// Minimized repro (fuzz_repro_seed1_iter37.sql):
//   CREATE TABLE t (grp INTEGER, pos INTEGER, val INTEGER);
//   CREATE MATERIALIZED VIEW v0 AS SELECT grp, pos, SUM(val)
//     OVER (PARTITION BY grp ORDER BY pos
//           ROWS BETWEEN 0 PRECEDING AND 1 FOLLOWING) FROM t;
//   SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos
//     ROWS BETWEEN 0 PRECEDING AND 1 FOLLOWING) FROM t ORDER BY grp, pos;
//   -- with options.force_method = kMinoa
//
// Expected behavior after the fix: forced MaxOA/MinOA on partitioned
// pairs is "not derivable" — the rewriter leaves the query to the
// native operator (no rewrite) rather than producing wrong shape/rows.

#include <gtest/gtest.h>

#include "db/database.h"
#include "rewrite/derivability.h"
#include "test_util.h"

namespace rfv {
namespace {

using testutil::MustExecute;
using testutil::RowsEqualCanonical;

class MinoaPartitionedRewriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(db_, "CREATE TABLE t (grp INTEGER, pos INTEGER, val INTEGER)");
    MustExecute(db_,
                "INSERT INTO t VALUES (0, 1, 10), (0, 2, 20), (0, 3, 30), "
                "(1, 1, -5), (1, 2, 5)");
    MustExecute(db_,
                "CREATE MATERIALIZED VIEW v0 AS SELECT grp, pos, SUM(val) "
                "OVER (PARTITION BY grp ORDER BY pos ROWS BETWEEN 0 "
                "PRECEDING AND 1 FOLLOWING) FROM t");
  }

  ResultSet Query() {
    return MustExecute(
        db_,
        "SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos "
        "ROWS BETWEEN 0 PRECEDING AND 1 FOLLOWING) FROM t "
        "ORDER BY grp, pos");
  }

  Database db_;
};

TEST_F(MinoaPartitionedRewriteTest, ForcedMinoaDoesNotCollapsePartitions) {
  db_.options().enable_view_rewrite = false;
  const ResultSet native = Query();
  ASSERT_EQ(native.schema().NumColumns(), 3u);

  db_.options().enable_view_rewrite = true;
  db_.options().force_method = DerivationMethod::kMinoa;
  const ResultSet forced = Query();

  // The forced method is not derivable for partitioned pairs; the query
  // must fall through to the native operator unrewritten.
  EXPECT_TRUE(forced.rewrite_method().empty())
      << "rewrote as " << forced.rewrite_method() << ": "
      << forced.rewritten_sql();
  EXPECT_EQ(forced.schema().NumColumns(), 3u);
  EXPECT_TRUE(RowsEqualCanonical(native, forced));
}

TEST_F(MinoaPartitionedRewriteTest, ForcedMaxoaDoesNotCollapsePartitions) {
  db_.options().enable_view_rewrite = false;
  const ResultSet native = Query();

  db_.options().enable_view_rewrite = true;
  db_.options().force_method = DerivationMethod::kMaxoa;
  const ResultSet forced = Query();

  EXPECT_TRUE(forced.rewrite_method().empty())
      << "rewrote as " << forced.rewrite_method() << ": "
      << forced.rewritten_sql();
  EXPECT_EQ(forced.schema().NumColumns(), 3u);
  EXPECT_TRUE(RowsEqualCanonical(native, forced));
}

// The automatic path was always correct (identical windows → direct
// hit); pin that down so the guard never over-corrects.
TEST_F(MinoaPartitionedRewriteTest, AutomaticDirectHitStillFires) {
  db_.options().enable_view_rewrite = false;
  const ResultSet native = Query();

  db_.options().enable_view_rewrite = true;
  db_.options().force_method = std::nullopt;
  const ResultSet rewritten = Query();

  EXPECT_EQ(rewritten.rewrite_method(), "direct");
  EXPECT_TRUE(RowsEqualCanonical(native, rewritten));
}

}  // namespace
}  // namespace rfv
