-- fuzz repro from the batch/band oracle campaign: a (1,1) view
-- answering a (2,2) query via MaxOA drives the merge band join's full
-- disjunction (BETWEEN hull + MOD-stride branches on both sides).
-- The .cc twin (band_join_rewrite_test.cc) cross-checks band vs.
-- band-disabled vs. native; this transcript pins "replays cleanly".
CREATE TABLE t (pos INTEGER, val INTEGER);
INSERT INTO t VALUES (1, 5), (2, -3), (3, 0), (4, 12), (5, 7),
  (6, -9), (7, 4), (8, 1), (9, 6), (10, -2);
CREATE MATERIALIZED VIEW v AS SELECT pos, SUM(val)
  OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM t;
SELECT pos, SUM(val) OVER (ORDER BY pos
  ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) FROM t ORDER BY pos;
