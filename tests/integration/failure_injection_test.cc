// Failure injection: runtime errors raised deep inside operators must
// propagate as clean Status values through every operator combination —
// never crash, never return partial results as success.

#include <gtest/gtest.h>

#include "test_util.h"

namespace rfv {
namespace {

using testutil::CreateSeqTable;
using testutil::MustExecute;

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CreateSeqTable(db_, 10);
    MustExecute(db_, "CREATE TABLE z (a INTEGER, b INTEGER)");
    MustExecute(db_, "INSERT INTO z VALUES (1, 1), (2, 0), (3, 2)");
  }

  void ExpectExecutionError(const std::string& sql) {
    const Result<ResultSet> r = db_.Execute(sql);
    ASSERT_FALSE(r.ok()) << sql;
    EXPECT_EQ(r.status().code(), StatusCode::kExecutionError) << sql;
  }

  Database db_;
};

TEST_F(FailureInjectionTest, DivisionByZeroInProjection) {
  ExpectExecutionError("SELECT a / b FROM z");
}

TEST_F(FailureInjectionTest, DivisionByZeroInFilter) {
  ExpectExecutionError("SELECT a FROM z WHERE 10 / b > 1");
}

TEST_F(FailureInjectionTest, ModByZeroInJoinCondition) {
  ExpectExecutionError(
      "SELECT z1.a FROM z z1, z z2 WHERE MOD(z1.a, z2.b) = 0");
}

TEST_F(FailureInjectionTest, ErrorInsideAggregateArgument) {
  ExpectExecutionError("SELECT SUM(a / b) FROM z");
}

TEST_F(FailureInjectionTest, ErrorInsideGroupKey) {
  ExpectExecutionError("SELECT 10 / b, COUNT(*) FROM z GROUP BY 10 / b");
}

TEST_F(FailureInjectionTest, ErrorInsideWindowArgument) {
  ExpectExecutionError(
      "SELECT a, SUM(10 / b) OVER (ORDER BY a ROWS BETWEEN 1 PRECEDING "
      "AND 1 FOLLOWING) FROM z");
}

TEST_F(FailureInjectionTest, ErrorInsideWindowPartitionKey) {
  ExpectExecutionError(
      "SELECT a, SUM(a) OVER (PARTITION BY 10 / b ORDER BY a ROWS "
      "UNBOUNDED PRECEDING) FROM z");
}

TEST_F(FailureInjectionTest, ErrorInsideSortKey) {
  ExpectExecutionError("SELECT a FROM z ORDER BY 10 / b");
}

TEST_F(FailureInjectionTest, ErrorInsideHavingAfterCleanAggregation) {
  ExpectExecutionError(
      "SELECT b, COUNT(*) FROM z GROUP BY b HAVING SUM(10 / b) > 0");
}

TEST_F(FailureInjectionTest, ErrorInSecondUnionBranch) {
  ExpectExecutionError(
      "SELECT a FROM z UNION ALL SELECT a / b FROM z");
}

TEST_F(FailureInjectionTest, ErrorInUpdateExpression) {
  const Result<ResultSet> r = db_.Execute("UPDATE z SET a = a / b");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
  // Two-phase UPDATE: nothing was applied.
  EXPECT_EQ(MustExecute(db_, "SELECT SUM(a) FROM z").at(0, 0),
            Value::Int(6));
}

TEST_F(FailureInjectionTest, ErrorInDeletePredicate) {
  const Result<ResultSet> r = db_.Execute("DELETE FROM z WHERE 1 / b > 0");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(MustExecute(db_, "SELECT COUNT(*) FROM z").at(0, 0),
            Value::Int(3));
}

TEST_F(FailureInjectionTest, ErrorInInsertValues) {
  EXPECT_FALSE(db_.Execute("INSERT INTO z VALUES (1 / 0, 1)").ok());
  EXPECT_EQ(MustExecute(db_, "SELECT COUNT(*) FROM z").at(0, 0),
            Value::Int(3));
}

TEST_F(FailureInjectionTest, DatabaseRemainsUsableAfterErrors) {
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(db_.Execute("SELECT a / b FROM z").ok());
  }
  EXPECT_EQ(MustExecute(db_, "SELECT COUNT(*) FROM z").at(0, 0),
            Value::Int(3));
  // Views still materialize and rewrite after failed statements.
  MustExecute(db_,
              "CREATE MATERIALIZED VIEW v AS SELECT pos, SUM(val) OVER "
              "(ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) "
              "FROM seq");
  const ResultSet rs = MustExecute(
      db_,
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING "
      "AND 1 FOLLOWING) FROM seq ORDER BY pos");
  EXPECT_EQ(rs.rewrite_method(), "direct");
}

TEST_F(FailureInjectionTest, ErrorInsideIndexProbeExpression) {
  // The probe expression itself divides by zero while probing.
  ExpectExecutionError(
      "SELECT s1.pos FROM seq s1, seq s2 WHERE s2.pos = s1.pos / (s1.pos "
      "- s1.pos)");
}

TEST_F(FailureInjectionTest, CreateViewOverMissingColumnFails) {
  EXPECT_FALSE(db_.Execute("CREATE MATERIALIZED VIEW v AS SELECT nope, "
                           "SUM(val) OVER (ORDER BY nope ROWS BETWEEN 1 "
                           "PRECEDING AND 1 FOLLOWING) FROM seq")
                   .ok());
  EXPECT_FALSE(db_.catalog()->HasTable("v"));  // no half-created content
}

}  // namespace
}  // namespace rfv
