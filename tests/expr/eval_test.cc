#include "expr/eval.h"

#include <gtest/gtest.h>

#include "expr/builder.h"

namespace rfv {
namespace {

Value Eval(const ExprPtr& e, const Row& row = Row()) {
  Result<Value> r = Evaluator::Eval(*e, row);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : Value::Null();
}

TEST(EvalTest, Literals) {
  EXPECT_EQ(Eval(eb::Int(5)), Value::Int(5));
  EXPECT_EQ(Eval(eb::Dbl(2.5)), Value::Double(2.5));
  EXPECT_EQ(Eval(eb::Str("x")), Value::String("x"));
  EXPECT_TRUE(Eval(eb::Null()).is_null());
}

TEST(EvalTest, ColumnRef) {
  const Row row({Value::Int(7), Value::String("s")});
  EXPECT_EQ(Eval(eb::Col(0, DataType::kInt64), row), Value::Int(7));
  EXPECT_EQ(Eval(eb::Col(1, DataType::kString), row), Value::String("s"));
}

TEST(EvalTest, IntegerArithmetic) {
  EXPECT_EQ(Eval(eb::Add(eb::Int(2), eb::Int(3))), Value::Int(5));
  EXPECT_EQ(Eval(eb::Sub(eb::Int(2), eb::Int(3))), Value::Int(-1));
  EXPECT_EQ(Eval(eb::Mul(eb::Int(4), eb::Int(3))), Value::Int(12));
  EXPECT_EQ(Eval(eb::Binary(BinaryOp::kDiv, eb::Int(7), eb::Int(2))),
            Value::Int(3));  // truncating integer division
}

TEST(EvalTest, MixedArithmeticPromotesToDouble) {
  EXPECT_EQ(Eval(eb::Add(eb::Int(2), eb::Dbl(0.5))), Value::Double(2.5));
  EXPECT_EQ(Eval(eb::Binary(BinaryOp::kDiv, eb::Dbl(7), eb::Int(2))),
            Value::Double(3.5));
}

TEST(EvalTest, DivisionByZeroIsExecutionError) {
  const Result<Value> r =
      Evaluator::Eval(*eb::Binary(BinaryOp::kDiv, eb::Int(1), eb::Int(0)),
                      Row());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
}

TEST(EvalTest, NullPropagatesThroughArithmetic) {
  EXPECT_TRUE(Eval(eb::Add(eb::Int(1), eb::Null())).is_null());
  EXPECT_TRUE(Eval(eb::Unary(UnaryOp::kNeg, eb::Null())).is_null());
}

TEST(EvalTest, Comparisons) {
  EXPECT_EQ(Eval(eb::Lt(eb::Int(1), eb::Int(2))), Value::Bool(true));
  EXPECT_EQ(Eval(eb::Ge(eb::Int(1), eb::Int(2))), Value::Bool(false));
  EXPECT_EQ(Eval(eb::Eq(eb::Str("a"), eb::Str("a"))), Value::Bool(true));
  EXPECT_EQ(Eval(eb::Binary(BinaryOp::kNe, eb::Int(1), eb::Dbl(1.0))),
            Value::Bool(false));
}

TEST(EvalTest, ComparisonWithNullIsNull) {
  EXPECT_TRUE(Eval(eb::Eq(eb::Null(), eb::Int(1))).is_null());
  EXPECT_TRUE(Eval(eb::Lt(eb::Int(1), eb::Null())).is_null());
}

TEST(EvalTest, KleeneAnd) {
  const ExprPtr t = eb::Lit(Value::Bool(true));
  EXPECT_EQ(Eval(eb::And(t->Clone(), eb::Lit(Value::Bool(false)))),
            Value::Bool(false));
  EXPECT_EQ(Eval(eb::And(eb::Null(), eb::Lit(Value::Bool(false)))),
            Value::Bool(false));  // NULL AND FALSE = FALSE
  EXPECT_TRUE(Eval(eb::And(eb::Null(), t->Clone())).is_null());
}

TEST(EvalTest, KleeneOr) {
  EXPECT_EQ(Eval(eb::Or(eb::Null(), eb::Lit(Value::Bool(true)))),
            Value::Bool(true));  // NULL OR TRUE = TRUE
  EXPECT_TRUE(Eval(eb::Or(eb::Null(), eb::Lit(Value::Bool(false)))).is_null());
}

TEST(EvalTest, NotOperator) {
  EXPECT_EQ(Eval(eb::Unary(UnaryOp::kNot, eb::Lit(Value::Bool(false)))),
            Value::Bool(true));
  EXPECT_TRUE(Eval(eb::Unary(UnaryOp::kNot, eb::Null())).is_null());
}

TEST(EvalTest, CaseWhen) {
  // CASE WHEN 1 < 2 THEN 'yes' ELSE 'no' END
  EXPECT_EQ(Eval(eb::CaseWhen(eb::Lt(eb::Int(1), eb::Int(2)), eb::Str("yes"),
                              eb::Str("no"))),
            Value::String("yes"));
  EXPECT_EQ(Eval(eb::CaseWhen(eb::Lt(eb::Int(3), eb::Int(2)), eb::Str("yes"),
                              eb::Str("no"))),
            Value::String("no"));
}

TEST(EvalTest, CaseWithoutElseYieldsNull) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCase;
  e->children.push_back(eb::Lit(Value::Bool(false)));
  e->children.push_back(eb::Int(1));
  EXPECT_TRUE(Eval(e).is_null());
}

TEST(EvalTest, CaseNullConditionIsNotSatisfied) {
  EXPECT_EQ(Eval(eb::CaseWhen(eb::Null(), eb::Int(1), eb::Int(2))),
            Value::Int(2));
}

TEST(EvalTest, ModIsFlooredModulo) {
  EXPECT_EQ(Eval(eb::Mod(eb::Int(7), eb::Int(4))), Value::Int(3));
  // Key property for the paper's congruence-class patterns: negative
  // header positions stay in their class.
  EXPECT_EQ(Eval(eb::Mod(eb::Int(-1), eb::Int(4))), Value::Int(3));
  EXPECT_EQ(Eval(eb::Mod(eb::Int(-5), eb::Int(4))), Value::Int(3));
  EXPECT_EQ(Eval(eb::Mod(eb::Int(-4), eb::Int(4))), Value::Int(0));
}

TEST(EvalTest, ModByZeroIsExecutionError) {
  const Result<Value> r =
      Evaluator::Eval(*eb::Mod(eb::Int(1), eb::Int(0)), Row());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
}

TEST(EvalTest, Coalesce) {
  EXPECT_EQ(Eval(eb::Coalesce(eb::Null(), eb::Int(5))), Value::Int(5));
  EXPECT_EQ(Eval(eb::Coalesce(eb::Int(1), eb::Int(5))), Value::Int(1));
  EXPECT_TRUE(Eval(eb::Coalesce(eb::Null(), eb::Null())).is_null());
}

TEST(EvalTest, DateParts) {
  std::vector<ExprPtr> args;
  args.push_back(eb::Int(20010315));
  EXPECT_EQ(Eval(eb::Fn(ScalarFn::kYear, std::move(args), DataType::kInt64)),
            Value::Int(2001));
  args.clear();
  args.push_back(eb::Int(20010315));
  EXPECT_EQ(Eval(eb::Fn(ScalarFn::kMonth, std::move(args), DataType::kInt64)),
            Value::Int(3));
  args.clear();
  args.push_back(eb::Int(20010315));
  EXPECT_EQ(Eval(eb::Fn(ScalarFn::kDay, std::move(args), DataType::kInt64)),
            Value::Int(15));
}

TEST(EvalTest, LeastGreatest) {
  std::vector<ExprPtr> args;
  args.push_back(eb::Int(4));
  args.push_back(eb::Int(9));
  EXPECT_EQ(Eval(eb::Fn(ScalarFn::kMin2, std::move(args), DataType::kInt64)),
            Value::Int(4));
  args.clear();
  args.push_back(eb::Int(4));
  args.push_back(eb::Int(9));
  EXPECT_EQ(Eval(eb::Fn(ScalarFn::kMax2, std::move(args), DataType::kInt64)),
            Value::Int(9));
}

TEST(EvalTest, AbsFunction) {
  std::vector<ExprPtr> args;
  args.push_back(eb::Int(-5));
  EXPECT_EQ(Eval(eb::Fn(ScalarFn::kAbs, std::move(args), DataType::kInt64)),
            Value::Int(5));
  args.clear();
  args.push_back(eb::Dbl(-2.5));
  EXPECT_EQ(Eval(eb::Fn(ScalarFn::kAbs, std::move(args), DataType::kDouble)),
            Value::Double(2.5));
}

TEST(EvalTest, InPredicate) {
  std::vector<ExprPtr> candidates;
  candidates.push_back(eb::Int(1));
  candidates.push_back(eb::Int(3));
  EXPECT_EQ(Eval(eb::In(eb::Int(3), std::move(candidates))),
            Value::Bool(true));
  candidates.clear();
  candidates.push_back(eb::Int(1));
  EXPECT_EQ(Eval(eb::In(eb::Int(3), std::move(candidates))),
            Value::Bool(false));
}

TEST(EvalTest, InWithNullCandidatesFollowsSql) {
  // 3 IN (1, NULL) is NULL; 1 IN (1, NULL) is TRUE.
  std::vector<ExprPtr> candidates;
  candidates.push_back(eb::Int(1));
  candidates.push_back(eb::Null());
  EXPECT_TRUE(Eval(eb::In(eb::Int(3), std::move(candidates))).is_null());
  candidates.clear();
  candidates.push_back(eb::Int(1));
  candidates.push_back(eb::Null());
  EXPECT_EQ(Eval(eb::In(eb::Int(1), std::move(candidates))),
            Value::Bool(true));
}

TEST(EvalTest, Between) {
  EXPECT_EQ(Eval(eb::Between(eb::Int(5), eb::Int(1), eb::Int(9))),
            Value::Bool(true));
  EXPECT_EQ(Eval(eb::Between(eb::Int(0), eb::Int(1), eb::Int(9))),
            Value::Bool(false));
  EXPECT_TRUE(
      Eval(eb::Between(eb::Int(5), eb::Null(), eb::Int(9))).is_null());
}

TEST(EvalTest, IsNull) {
  EXPECT_EQ(Eval(eb::IsNull(eb::Null())), Value::Bool(true));
  EXPECT_EQ(Eval(eb::IsNull(eb::Int(1))), Value::Bool(false));
  EXPECT_EQ(Eval(eb::IsNull(eb::Null(), /*negated=*/true)),
            Value::Bool(false));
}

TEST(EvalTest, EvalPredicateMapsNullToFalse) {
  const Result<bool> r =
      Evaluator::EvalPredicate(*eb::Eq(eb::Null(), eb::Int(1)), Row());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(EvalTest, EvalPredicateRejectsNonBool) {
  const Result<bool> r = Evaluator::EvalPredicate(*eb::Int(1), Row());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST(EvalTest, ShortCircuitSkipsErrors) {
  // FALSE AND (1/0 = 1) must not evaluate the division.
  ExprPtr division_error =
      eb::Eq(eb::Binary(BinaryOp::kDiv, eb::Int(1), eb::Int(0)), eb::Int(1));
  const Result<Value> r = Evaluator::Eval(
      *eb::And(eb::Lit(Value::Bool(false)), std::move(division_error)),
      Row());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Value::Bool(false));
}

TEST(EvalTest, ExprCloneEvaluatesIdentically) {
  ExprPtr original = eb::CaseWhen(
      eb::Lt(eb::Col(0, DataType::kInt64), eb::Int(10)),
      eb::Mod(eb::Col(0, DataType::kInt64), eb::Int(3)), eb::Int(-1));
  ExprPtr clone = original->Clone();
  const Row row({Value::Int(7)});
  EXPECT_EQ(Eval(original, row), Eval(clone, row));
}

TEST(EvalTest, ExprToString) {
  EXPECT_EQ(eb::Add(eb::Int(1), eb::Int(2))->ToString(), "(1 + 2)");
  EXPECT_EQ(eb::Mod(eb::Int(7), eb::Int(3))->ToString(), "MOD(7, 3)");
  EXPECT_EQ(eb::IsNull(eb::Int(1))->ToString(), "1 IS NULL");
}

}  // namespace
}  // namespace rfv
