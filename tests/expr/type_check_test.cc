#include "expr/type_check.h"

#include <gtest/gtest.h>

#include "expr/builder.h"

namespace rfv {
namespace {

Schema TestSchema() {
  return Schema({ColumnDef("i", DataType::kInt64),
                 ColumnDef("d", DataType::kDouble),
                 ColumnDef("s", DataType::kString),
                 ColumnDef("b", DataType::kBool)});
}

DataType CheckedType(ExprPtr e) {
  const Schema schema = TestSchema();
  const Status s = CheckTypes(e.get(), schema);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return e->type;
}

Status CheckError(ExprPtr e) {
  const Schema schema = TestSchema();
  return CheckTypes(e.get(), schema);
}

TEST(TypeCheckTest, ColumnTypesFromSchema) {
  EXPECT_EQ(CheckedType(eb::Col(0, DataType::kNull)), DataType::kInt64);
  EXPECT_EQ(CheckedType(eb::Col(1, DataType::kNull)), DataType::kDouble);
  EXPECT_EQ(CheckedType(eb::Col(2, DataType::kNull)), DataType::kString);
}

TEST(TypeCheckTest, ColumnOutOfRangeIsInternal) {
  EXPECT_EQ(CheckError(eb::Col(99, DataType::kNull)).code(),
            StatusCode::kInternal);
}

TEST(TypeCheckTest, ArithmeticTypes) {
  EXPECT_EQ(CheckedType(eb::Add(eb::Col(0, DataType::kNull),
                                eb::Col(0, DataType::kNull))),
            DataType::kInt64);
  EXPECT_EQ(CheckedType(eb::Add(eb::Col(0, DataType::kNull),
                                eb::Col(1, DataType::kNull))),
            DataType::kDouble);
}

TEST(TypeCheckTest, ArithmeticOnStringFails) {
  EXPECT_EQ(CheckError(eb::Add(eb::Col(2, DataType::kNull), eb::Int(1)))
                .code(),
            StatusCode::kTypeError);
}

TEST(TypeCheckTest, ComparisonYieldsBool) {
  EXPECT_EQ(CheckedType(eb::Lt(eb::Col(0, DataType::kNull), eb::Dbl(1.5))),
            DataType::kBool);
  EXPECT_EQ(CheckedType(eb::Eq(eb::Col(2, DataType::kNull), eb::Str("x"))),
            DataType::kBool);
}

TEST(TypeCheckTest, IncomparableTypesFail) {
  EXPECT_EQ(
      CheckError(eb::Eq(eb::Col(2, DataType::kNull), eb::Int(1))).code(),
      StatusCode::kTypeError);
  EXPECT_EQ(
      CheckError(eb::Lt(eb::Col(3, DataType::kNull), eb::Int(1))).code(),
      StatusCode::kTypeError);
}

TEST(TypeCheckTest, NullComparableWithEverything) {
  EXPECT_EQ(CheckedType(eb::Eq(eb::Null(), eb::Col(2, DataType::kNull))),
            DataType::kBool);
}

TEST(TypeCheckTest, LogicRequiresBool) {
  EXPECT_EQ(CheckedType(eb::And(eb::Col(3, DataType::kNull),
                                eb::Lit(Value::Bool(true)))),
            DataType::kBool);
  EXPECT_EQ(CheckError(eb::And(eb::Col(0, DataType::kNull),
                               eb::Lit(Value::Bool(true))))
                .code(),
            StatusCode::kTypeError);
  EXPECT_EQ(CheckError(eb::Unary(UnaryOp::kNot, eb::Col(0, DataType::kNull)))
                .code(),
            StatusCode::kTypeError);
}

TEST(TypeCheckTest, CaseUnifiesNumericBranches) {
  EXPECT_EQ(CheckedType(eb::CaseWhen(eb::Lit(Value::Bool(true)),
                                     eb::Col(0, DataType::kNull),
                                     eb::Col(1, DataType::kNull))),
            DataType::kDouble);
}

TEST(TypeCheckTest, CaseIncompatibleBranchesFail) {
  EXPECT_EQ(CheckError(eb::CaseWhen(eb::Lit(Value::Bool(true)),
                                    eb::Col(0, DataType::kNull),
                                    eb::Col(2, DataType::kNull)))
                .code(),
            StatusCode::kTypeError);
}

TEST(TypeCheckTest, CaseConditionMustBeBool) {
  EXPECT_EQ(
      CheckError(eb::CaseWhen(eb::Int(1), eb::Int(2), eb::Int(3))).code(),
      StatusCode::kTypeError);
}

TEST(TypeCheckTest, ModRequiresIntegers) {
  EXPECT_EQ(CheckedType(eb::Mod(eb::Col(0, DataType::kNull), eb::Int(4))),
            DataType::kInt64);
  EXPECT_EQ(
      CheckError(eb::Mod(eb::Col(1, DataType::kNull), eb::Int(4))).code(),
      StatusCode::kTypeError);
}

TEST(TypeCheckTest, CoalesceUnifies) {
  EXPECT_EQ(CheckedType(eb::Coalesce(eb::Null(), eb::Col(1, DataType::kNull))),
            DataType::kDouble);
  EXPECT_EQ(
      CheckError(eb::Coalesce(eb::Col(0, DataType::kNull),
                              eb::Col(2, DataType::kNull)))
          .code(),
      StatusCode::kTypeError);
}

TEST(TypeCheckTest, BetweenAndInChecks) {
  EXPECT_EQ(CheckedType(eb::Between(eb::Col(0, DataType::kNull), eb::Int(1),
                                    eb::Dbl(9))),
            DataType::kBool);
  EXPECT_EQ(CheckError(eb::Between(eb::Col(0, DataType::kNull), eb::Str("a"),
                                   eb::Int(9)))
                .code(),
            StatusCode::kTypeError);
  std::vector<ExprPtr> candidates;
  candidates.push_back(eb::Int(1));
  candidates.push_back(eb::Str("bad"));
  EXPECT_EQ(CheckError(eb::In(eb::Col(0, DataType::kNull),
                              std::move(candidates)))
                .code(),
            StatusCode::kTypeError);
}

TEST(TypeCheckTest, DatePartsRequireInt) {
  std::vector<ExprPtr> args;
  args.push_back(eb::Col(1, DataType::kNull));
  EXPECT_EQ(CheckError(eb::Fn(ScalarFn::kMonth, std::move(args),
                              DataType::kInt64))
                .code(),
            StatusCode::kTypeError);
}

TEST(TypeCheckTest, ArityErrors) {
  std::vector<ExprPtr> args;
  args.push_back(eb::Int(1));
  EXPECT_EQ(
      CheckError(eb::Fn(ScalarFn::kMod, std::move(args), DataType::kInt64))
          .code(),
      StatusCode::kTypeError);
}

TEST(TypeCheckTest, IsNullAlwaysBool) {
  EXPECT_EQ(CheckedType(eb::IsNull(eb::Col(2, DataType::kNull))),
            DataType::kBool);
}

}  // namespace
}  // namespace rfv
