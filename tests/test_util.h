#ifndef RFVIEW_TESTS_TEST_UTIL_H_
#define RFVIEW_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "db/database.h"
#include "testing/result_compare.h"

namespace rfv {
namespace testutil {

/// Executes SQL, failing the test on error.
inline ResultSet MustExecute(Database& db, const std::string& sql) {
  Result<ResultSet> r = db.Execute(sql);
  EXPECT_TRUE(r.ok()) << sql << "\n  " << r.status().ToString();
  return r.ok() ? std::move(r).value() : ResultSet();
}

/// True when both result sets have identical values row by row.
/// Thin alias over the fuzz harness's comparison module — the single
/// implementation of row value-equality (src/testing/result_compare.h).
inline bool SameRows(const ResultSet& a, const ResultSet& b) {
  return fuzzing::SameRows(a, b);
}

/// gtest-friendly diff of two result sets (same shared implementation).
inline ::testing::AssertionResult RowsEqual(const ResultSet& a,
                                            const ResultSet& b) {
  const std::optional<std::string> diff = fuzzing::DiffRows(a, b);
  if (!diff.has_value()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << "result sets differ:\n" << *diff;
}

/// RowsEqual under canonical row ordering (order-insensitive compare —
/// for plans that legitimately emit rows in different orders).
inline ::testing::AssertionResult RowsEqualCanonical(const ResultSet& a,
                                                     const ResultSet& b) {
  const std::optional<std::string> diff = fuzzing::DiffRowsCanonical(a, b);
  if (!diff.has_value()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "result sets differ (canonical order):\n" << *diff;
}

/// Creates seq(pos INTEGER PRIMARY KEY, val DOUBLE) with n rows; values
/// are a deterministic pseudo-random-ish pattern including negatives.
inline void CreateSeqTable(Database& db, int n,
                           const std::string& name = "seq") {
  MustExecute(db, "CREATE TABLE " + name +
                      " (pos INTEGER PRIMARY KEY, val DOUBLE)");
  if (n == 0) return;
  std::string insert = "INSERT INTO " + name + " VALUES ";
  for (int i = 1; i <= n; ++i) {
    if (i > 1) insert += ", ";
    const int v = ((i * 37 + 11) % 101) - 23;
    insert += "(" + std::to_string(i) + ", " + std::to_string(v) + ")";
  }
  MustExecute(db, insert);
}

namespace json_detail {

inline void SkipWs(const std::string& s, size_t* i) {
  while (*i < s.size() && (s[*i] == ' ' || s[*i] == '\t' || s[*i] == '\n' ||
                           s[*i] == '\r')) {
    ++*i;
  }
}

inline bool ParseValue(const std::string& s, size_t* i);

inline bool ParseString(const std::string& s, size_t* i) {
  if (*i >= s.size() || s[*i] != '"') return false;
  ++*i;
  while (*i < s.size() && s[*i] != '"') {
    if (s[*i] == '\\') {
      ++*i;
      if (*i >= s.size()) return false;
      const char e = s[*i];
      if (e == 'u') {
        for (int k = 0; k < 4; ++k) {
          ++*i;
          if (*i >= s.size() || !std::isxdigit(static_cast<unsigned char>(
                                    s[*i]))) {
            return false;
          }
        }
      } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                 e != 'n' && e != 'r' && e != 't') {
        return false;
      }
    } else if (static_cast<unsigned char>(s[*i]) < 0x20) {
      return false;  // raw control characters must be escaped
    }
    ++*i;
  }
  if (*i >= s.size()) return false;
  ++*i;  // closing quote
  return true;
}

inline bool ParseNumber(const std::string& s, size_t* i) {
  const size_t start = *i;
  if (*i < s.size() && s[*i] == '-') ++*i;
  while (*i < s.size() && std::isdigit(static_cast<unsigned char>(s[*i]))) {
    ++*i;
  }
  if (*i == start || (s[start] == '-' && *i == start + 1)) return false;
  if (*i < s.size() && s[*i] == '.') {
    ++*i;
    while (*i < s.size() && std::isdigit(static_cast<unsigned char>(s[*i]))) {
      ++*i;
    }
  }
  if (*i < s.size() && (s[*i] == 'e' || s[*i] == 'E')) {
    ++*i;
    if (*i < s.size() && (s[*i] == '+' || s[*i] == '-')) ++*i;
    while (*i < s.size() && std::isdigit(static_cast<unsigned char>(s[*i]))) {
      ++*i;
    }
  }
  return true;
}

inline bool ParseValue(const std::string& s, size_t* i) {
  SkipWs(s, i);
  if (*i >= s.size()) return false;
  const char c = s[*i];
  if (c == '"') return ParseString(s, i);
  if (c == '{') {
    ++*i;
    SkipWs(s, i);
    if (*i < s.size() && s[*i] == '}') { ++*i; return true; }
    while (true) {
      SkipWs(s, i);
      if (!ParseString(s, i)) return false;
      SkipWs(s, i);
      if (*i >= s.size() || s[*i] != ':') return false;
      ++*i;
      if (!ParseValue(s, i)) return false;
      SkipWs(s, i);
      if (*i < s.size() && s[*i] == ',') { ++*i; continue; }
      if (*i < s.size() && s[*i] == '}') { ++*i; return true; }
      return false;
    }
  }
  if (c == '[') {
    ++*i;
    SkipWs(s, i);
    if (*i < s.size() && s[*i] == ']') { ++*i; return true; }
    while (true) {
      if (!ParseValue(s, i)) return false;
      SkipWs(s, i);
      if (*i < s.size() && s[*i] == ',') { ++*i; continue; }
      if (*i < s.size() && s[*i] == ']') { ++*i; return true; }
      return false;
    }
  }
  if (s.compare(*i, 4, "true") == 0) { *i += 4; return true; }
  if (s.compare(*i, 5, "false") == 0) { *i += 5; return true; }
  if (s.compare(*i, 4, "null") == 0) { *i += 4; return true; }
  return ParseNumber(s, i);
}

}  // namespace json_detail

/// Strict whole-string JSON validity check (small recursive-descent
/// parser; used to verify the Chrome trace export round-trips).
inline bool IsValidJson(const std::string& s) {
  size_t i = 0;
  if (!json_detail::ParseValue(s, &i)) return false;
  json_detail::SkipWs(s, &i);
  return i == s.size();
}

}  // namespace testutil
}  // namespace rfv

#endif  // RFVIEW_TESTS_TEST_UTIL_H_
