#ifndef RFVIEW_TESTS_TEST_UTIL_H_
#define RFVIEW_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "db/database.h"

namespace rfv {
namespace testutil {

/// Executes SQL, failing the test on error.
inline ResultSet MustExecute(Database& db, const std::string& sql) {
  Result<ResultSet> r = db.Execute(sql);
  EXPECT_TRUE(r.ok()) << sql << "\n  " << r.status().ToString();
  return r.ok() ? std::move(r).value() : ResultSet();
}

/// True when both result sets have identical values row by row.
inline bool SameRows(const ResultSet& a, const ResultSet& b) {
  if (a.NumRows() != b.NumRows()) return false;
  if (a.schema().NumColumns() != b.schema().NumColumns()) return false;
  for (size_t i = 0; i < a.NumRows(); ++i) {
    for (size_t c = 0; c < a.schema().NumColumns(); ++c) {
      if (a.at(i, c) != b.at(i, c)) return false;
    }
  }
  return true;
}

/// gtest-friendly diff of two result sets.
inline ::testing::AssertionResult RowsEqual(const ResultSet& a,
                                            const ResultSet& b) {
  if (SameRows(a, b)) return ::testing::AssertionSuccess();
  auto result = ::testing::AssertionFailure();
  result << "result sets differ: " << a.NumRows() << " vs " << b.NumRows()
         << " rows";
  const size_t n = std::min<size_t>(std::min(a.NumRows(), b.NumRows()), 10);
  for (size_t i = 0; i < n; ++i) {
    std::string left;
    std::string right;
    for (size_t c = 0; c < a.schema().NumColumns(); ++c) {
      left += (c != 0 ? ", " : "") + a.at(i, c).ToString();
    }
    for (size_t c = 0; c < b.schema().NumColumns(); ++c) {
      right += (c != 0 ? ", " : "") + b.at(i, c).ToString();
    }
    if (left != right) {
      result << "\n  row " << i << ": (" << left << ") vs (" << right << ")";
    }
  }
  return result;
}

/// Creates seq(pos INTEGER PRIMARY KEY, val DOUBLE) with n rows; values
/// are a deterministic pseudo-random-ish pattern including negatives.
inline void CreateSeqTable(Database& db, int n,
                           const std::string& name = "seq") {
  MustExecute(db, "CREATE TABLE " + name +
                      " (pos INTEGER PRIMARY KEY, val DOUBLE)");
  if (n == 0) return;
  std::string insert = "INSERT INTO " + name + " VALUES ";
  for (int i = 1; i <= n; ++i) {
    if (i > 1) insert += ", ";
    const int v = ((i * 37 + 11) % 101) - 23;
    insert += "(" + std::to_string(i) + ", " + std::to_string(v) + ")";
  }
  MustExecute(db, insert);
}

}  // namespace testutil
}  // namespace rfv

#endif  // RFVIEW_TESTS_TEST_UTIL_H_
