// Every generated relational pattern is executed through the full SQL
// stack and compared against the native window operator — the strongest
// possible check that the Fig. 2/4/10/13 SQL is correct.

#include "rewrite/pattern_sql.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace rfv {
namespace {

using testutil::CreateSeqTable;
using testutil::MustExecute;
using testutil::RowsEqual;

constexpr int kN = 40;

class PatternSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CreateSeqTable(db_, kN);
    db_.options().enable_view_rewrite = false;  // compare raw patterns
  }

  /// Native window computation, ordered by pos.
  ResultSet Native(const std::string& fn, const WindowSpec& w) {
    std::string frame;
    if (w.is_cumulative()) {
      frame = "ROWS UNBOUNDED PRECEDING";
    } else {
      frame = "ROWS BETWEEN " + std::to_string(w.l()) + " PRECEDING AND " +
              std::to_string(w.h()) + " FOLLOWING";
    }
    return MustExecute(db_, "SELECT pos, " + fn +
                                "(val) OVER (ORDER BY pos " + frame +
                                ") FROM seq ORDER BY pos");
  }

  /// Materializes a complete SUM/MIN/MAX sequence view named `name`.
  void Materialize(const std::string& name, const std::string& fn,
                   const WindowSpec& w) {
    db_.options().enable_view_rewrite = true;
    std::string frame;
    if (w.is_cumulative()) {
      frame = "ROWS UNBOUNDED PRECEDING";
    } else {
      frame = "ROWS BETWEEN " + std::to_string(w.l()) + " PRECEDING AND " +
              std::to_string(w.h()) + " FOLLOWING";
    }
    MustExecute(db_, "CREATE MATERIALIZED VIEW " + name + " AS SELECT pos, " +
                         fn + "(val) OVER (ORDER BY pos " + frame +
                         ") FROM seq");
    db_.options().enable_view_rewrite = false;
  }

  ResultSet RunPattern(const std::string& sql) {
    return MustExecute(db_, sql + " ORDER BY 1");
  }

  Database db_;
};

TEST_F(PatternSqlTest, Fig2SelfJoinInPredicate) {
  const WindowSpec w = WindowSpec::SlidingUnchecked(1, 1);
  const ResultSet pattern = RunPattern(
      SelfJoinWindowSql("seq", "pos", "val", w, /*use_in_predicate=*/true));
  EXPECT_TRUE(RowsEqual(pattern, Native("SUM", w)));
}

TEST_F(PatternSqlTest, Fig2SelfJoinBetweenPredicate) {
  const WindowSpec w = WindowSpec::SlidingUnchecked(3, 2);
  const ResultSet pattern = RunPattern(
      SelfJoinWindowSql("seq", "pos", "val", w, /*use_in_predicate=*/false));
  EXPECT_TRUE(RowsEqual(pattern, Native("SUM", w)));
}

TEST_F(PatternSqlTest, Fig2SelfJoinCumulative) {
  const WindowSpec w = WindowSpec::Cumulative();
  const ResultSet pattern = RunPattern(
      SelfJoinWindowSql("seq", "pos", "val", w, /*use_in_predicate=*/false));
  EXPECT_TRUE(RowsEqual(pattern, Native("SUM", w)));
}

TEST_F(PatternSqlTest, DirectViewRead) {
  const WindowSpec w = WindowSpec::SlidingUnchecked(2, 1);
  Materialize("v", "SUM", w);
  const ResultSet pattern = RunPattern(DirectViewSql("v", kN));
  EXPECT_TRUE(RowsEqual(pattern, Native("SUM", w)));
}

TEST_F(PatternSqlTest, Fig4RawFromCumulative) {
  Materialize("vcum", "SUM", WindowSpec::Cumulative());
  const ResultSet pattern = RunPattern(RawFromCumulativeViewSql("vcum", kN));
  const ResultSet raw = MustExecute(db_, "SELECT pos, val FROM seq ORDER BY pos");
  ASSERT_EQ(pattern.NumRows(), raw.NumRows());
  for (size_t i = 0; i < raw.NumRows(); ++i) {
    EXPECT_DOUBLE_EQ(pattern.at(i, 1).ToDouble(), raw.at(i, 1).ToDouble())
        << "pos " << i + 1;
  }
}

TEST_F(PatternSqlTest, Fig5SlidingFromCumulative) {
  Materialize("vcum", "SUM", WindowSpec::Cumulative());
  for (const auto& [l, h] : std::vector<std::pair<int, int>>{
           {1, 1}, {4, 2}, {0, 3}, {5, 0}}) {
    const WindowSpec w = WindowSpec::SlidingUnchecked(l, h);
    const ResultSet pattern =
        RunPattern(SlidingFromCumulativeViewSql("vcum", w, kN));
    EXPECT_TRUE(RowsEqual(pattern, Native("SUM", w)))
        << "(" << l << "," << h << ")";
  }
}

TEST_F(PatternSqlTest, Fig10MaxoaSingleSideBothVariants) {
  // Paper scenario: view (2,1), query (3,1).
  Materialize("matseq", "SUM", WindowSpec::SlidingUnchecked(2, 1));
  const Result<MaxoaParams> params =
      PlanMaxoa(WindowSpec::SlidingUnchecked(2, 1),
                WindowSpec::SlidingUnchecked(3, 1));
  ASSERT_TRUE(params.ok());
  const ResultSet native = Native("SUM", WindowSpec::SlidingUnchecked(3, 1));
  EXPECT_TRUE(RowsEqual(
      RunPattern(MaxoaSql("matseq", *params, kN, /*union_variant=*/false)),
      native));
  EXPECT_TRUE(RowsEqual(
      RunPattern(MaxoaSql("matseq", *params, kN, /*union_variant=*/true)),
      native));
}

TEST_F(PatternSqlTest, Fig10MaxoaDoubleSide) {
  Materialize("matseq", "SUM", WindowSpec::SlidingUnchecked(2, 2));
  const Result<MaxoaParams> params =
      PlanMaxoa(WindowSpec::SlidingUnchecked(2, 2),
                WindowSpec::SlidingUnchecked(4, 3));
  ASSERT_TRUE(params.ok());
  const ResultSet native = Native("SUM", WindowSpec::SlidingUnchecked(4, 3));
  EXPECT_TRUE(RowsEqual(
      RunPattern(MaxoaSql("matseq", *params, kN, false)), native));
  EXPECT_TRUE(RowsEqual(
      RunPattern(MaxoaSql("matseq", *params, kN, true)), native));
}

TEST_F(PatternSqlTest, Fig10MaxoaUpperSideOnly) {
  Materialize("matseq", "SUM", WindowSpec::SlidingUnchecked(2, 1));
  const Result<MaxoaParams> params =
      PlanMaxoa(WindowSpec::SlidingUnchecked(2, 1),
                WindowSpec::SlidingUnchecked(2, 3));
  ASSERT_TRUE(params.ok());
  EXPECT_EQ(params->delta_l, 0);
  const ResultSet native = Native("SUM", WindowSpec::SlidingUnchecked(2, 3));
  EXPECT_TRUE(RowsEqual(
      RunPattern(MaxoaSql("matseq", *params, kN, false)), native));
}

TEST_F(PatternSqlTest, Fig13MinoaBothVariants) {
  Materialize("matseq", "SUM", WindowSpec::SlidingUnchecked(2, 1));
  const Result<MinoaParams> params =
      PlanMinoa(WindowSpec::SlidingUnchecked(2, 1),
                WindowSpec::SlidingUnchecked(3, 1));
  ASSERT_TRUE(params.ok());
  const ResultSet native = Native("SUM", WindowSpec::SlidingUnchecked(3, 1));
  EXPECT_TRUE(RowsEqual(
      RunPattern(MinoaSql("matseq", *params, kN, /*union_variant=*/false)),
      native));
  EXPECT_TRUE(RowsEqual(
      RunPattern(MinoaSql("matseq", *params, kN, /*union_variant=*/true)),
      native));
}

TEST_F(PatternSqlTest, Fig13MinoaNarrowingQuery) {
  Materialize("matseq", "SUM", WindowSpec::SlidingUnchecked(3, 2));
  const Result<MinoaParams> params =
      PlanMinoa(WindowSpec::SlidingUnchecked(3, 2),
                WindowSpec::SlidingUnchecked(1, 1));
  ASSERT_TRUE(params.ok());
  const ResultSet native = Native("SUM", WindowSpec::SlidingUnchecked(1, 1));
  EXPECT_TRUE(RowsEqual(
      RunPattern(MinoaSql("matseq", *params, kN, false)), native));
  EXPECT_TRUE(RowsEqual(
      RunPattern(MinoaSql("matseq", *params, kN, true)), native));
}

TEST_F(PatternSqlTest, Fig13MinoaCoincidentClasses) {
  // (Δl + Δh) ≡ 0 (mod w_x): single bounded chain specialization.
  Materialize("matseq", "SUM", WindowSpec::SlidingUnchecked(1, 1));  // w=3
  const Result<MinoaParams> params =
      PlanMinoa(WindowSpec::SlidingUnchecked(1, 1),
                WindowSpec::SlidingUnchecked(3, 2));
  ASSERT_TRUE(params.ok());
  const ResultSet native = Native("SUM", WindowSpec::SlidingUnchecked(3, 2));
  EXPECT_TRUE(RowsEqual(
      RunPattern(MinoaSql("matseq", *params, kN, false)), native));
  EXPECT_TRUE(RowsEqual(
      RunPattern(MinoaSql("matseq", *params, kN, true)), native));
}

TEST_F(PatternSqlTest, RawFromSlidingView) {
  // Paper §3.2: reconstruct x_1..x_n from the (2,1) view via SQL.
  Materialize("matseq", "SUM", WindowSpec::SlidingUnchecked(2, 1));
  const ResultSet pattern = RunPattern(
      RawFromSlidingViewSql("matseq", WindowSpec::SlidingUnchecked(2, 1),
                            kN));
  const ResultSet raw =
      MustExecute(db_, "SELECT pos, val FROM seq ORDER BY pos");
  ASSERT_EQ(pattern.NumRows(), raw.NumRows());
  for (size_t i = 0; i < raw.NumRows(); ++i) {
    EXPECT_DOUBLE_EQ(pattern.at(i, 1).ToDouble(), raw.at(i, 1).ToDouble())
        << "pos " << i + 1;
  }
}

TEST_F(PatternSqlTest, MinoaCumulativeChain) {
  Materialize("matseq", "SUM", WindowSpec::SlidingUnchecked(2, 1));
  const ResultSet pattern = RunPattern(
      MinoaCumulativeSql("matseq", WindowSpec::SlidingUnchecked(2, 1), kN));
  EXPECT_TRUE(RowsEqual(pattern, Native("SUM", WindowSpec::Cumulative())));
}

TEST_F(PatternSqlTest, MinMaxCover) {
  Materialize("vmin", "MIN", WindowSpec::SlidingUnchecked(2, 2));
  const ResultSet pattern = RunPattern(
      MinMaxCoverSql("vmin", /*is_min=*/true, /*delta_l=*/2, /*delta_h=*/1,
                     kN));
  EXPECT_TRUE(
      RowsEqual(pattern, Native("MIN", WindowSpec::SlidingUnchecked(4, 3))));
}

TEST_F(PatternSqlTest, AvgWrapper) {
  Materialize("matseq", "SUM", WindowSpec::SlidingUnchecked(2, 1));
  const WindowSpec w = WindowSpec::SlidingUnchecked(2, 1);
  const ResultSet pattern =
      RunPattern(WrapAvgSql(DirectViewSql("matseq", kN), w, kN));
  EXPECT_TRUE(RowsEqual(pattern, Native("AVG", w)));
}

TEST_F(PatternSqlTest, PatternsAgreeWithoutIndexes) {
  // The same MaxOA pattern must produce identical results when the
  // executor cannot use any index (paper Table 1's "no index" column).
  Materialize("matseq", "SUM", WindowSpec::SlidingUnchecked(2, 1));
  const Result<MaxoaParams> params =
      PlanMaxoa(WindowSpec::SlidingUnchecked(2, 1),
                WindowSpec::SlidingUnchecked(3, 1));
  ASSERT_TRUE(params.ok());
  const std::string sql = MaxoaSql("matseq", *params, kN, false);
  const ResultSet with_index = RunPattern(sql);
  db_.options().exec.enable_index_nested_loop_join = false;
  db_.options().exec.enable_hash_join = false;
  const ResultSet without_index = RunPattern(sql);
  EXPECT_TRUE(RowsEqual(with_index, without_index));
}

}  // namespace
}  // namespace rfv
