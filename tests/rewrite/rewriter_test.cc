#include "rewrite/rewriter.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "test_util.h"

namespace rfv {
namespace {

using testutil::CreateSeqTable;
using testutil::MustExecute;
using testutil::RowsEqual;

std::optional<SeqQuery> Recognize(const std::string& sql,
                                  bool* wants_order = nullptr) {
  Result<Statement> stmt = Parser::ParseStatement(sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  bool ignored = false;
  return Rewriter::RecognizeSimpleWindowQuery(
      *stmt->select, wants_order != nullptr ? wants_order : &ignored);
}

TEST(RecognizeTest, CanonicalSlidingQuery) {
  const auto q = Recognize(
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING "
      "AND 1 FOLLOWING) FROM seq");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->base_table, "seq");
  EXPECT_EQ(q->order_column, "pos");
  EXPECT_EQ(q->value_column, "val");
  EXPECT_EQ(q->fn, SeqAggFn::kSum);
  EXPECT_EQ(q->window, WindowSpec::SlidingUnchecked(2, 1));
}

TEST(RecognizeTest, CumulativeShapes) {
  for (const char* frame :
       {"ROWS UNBOUNDED PRECEDING",
        "ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW", ""}) {
    const std::string over =
        std::string("(ORDER BY pos ") + frame + ")";
    const auto q = Recognize("SELECT pos, SUM(val) OVER " + over + " FROM seq");
    ASSERT_TRUE(q.has_value()) << frame;
    EXPECT_TRUE(q->window.is_cumulative()) << frame;
  }
}

TEST(RecognizeTest, AvgSetsFlag) {
  const auto q = Recognize(
      "SELECT pos, AVG(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING "
      "AND 1 FOLLOWING) FROM seq");
  ASSERT_TRUE(q.has_value());
  EXPECT_TRUE(q->is_avg);
  EXPECT_EQ(q->fn, SeqAggFn::kSum);
}

TEST(RecognizeTest, MinMaxFunctions) {
  EXPECT_EQ(Recognize("SELECT pos, MIN(val) OVER (ORDER BY pos ROWS "
                      "BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM seq")
                ->fn,
            SeqAggFn::kMin);
  EXPECT_EQ(Recognize("SELECT pos, MAX(val) OVER (ORDER BY pos ROWS "
                      "BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM seq")
                ->fn,
            SeqAggFn::kMax);
}

TEST(RecognizeTest, OrderByVariantsAccepted) {
  bool wants_order = false;
  ASSERT_TRUE(Recognize("SELECT pos, SUM(val) OVER (ORDER BY pos ROWS "
                        "BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM seq "
                        "ORDER BY pos",
                        &wants_order)
                  .has_value());
  EXPECT_TRUE(wants_order);
  ASSERT_TRUE(Recognize("SELECT pos AS p, SUM(val) OVER (ORDER BY pos ROWS "
                        "BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM seq "
                        "ORDER BY p",
                        &wants_order)
                  .has_value());
  ASSERT_TRUE(Recognize("SELECT pos, SUM(val) OVER (ORDER BY pos ROWS "
                        "BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM seq "
                        "ORDER BY 1",
                        &wants_order)
                  .has_value());
}

TEST(RecognizeTest, PartitionedQuery) {
  const auto q = Recognize(
      "SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos ROWS "
      "BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM pseq");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->partition_columns, std::vector<std::string>({"grp"}));
  EXPECT_EQ(q->order_column, "pos");
}

TEST(RecognizeTest, PartitionedQueryOrderByFullKey) {
  bool wants_order = false;
  ASSERT_TRUE(Recognize("SELECT grp, pos, SUM(val) OVER (PARTITION BY grp "
                        "ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 "
                        "FOLLOWING) FROM pseq ORDER BY grp, pos",
                        &wants_order)
                  .has_value());
  EXPECT_TRUE(wants_order);
  // Wrong key order is rejected.
  EXPECT_FALSE(Recognize("SELECT grp, pos, SUM(val) OVER (PARTITION BY grp "
                         "ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 "
                         "FOLLOWING) FROM pseq ORDER BY pos, grp")
                   .has_value());
}

TEST(RecognizeTest, PartitionColumnsMustMatchSelectPrefix) {
  // Select prefix (grp) must equal the PARTITION BY list.
  EXPECT_FALSE(Recognize("SELECT val, pos, SUM(val) OVER (PARTITION BY grp "
                         "ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 "
                         "FOLLOWING) FROM pseq")
                   .has_value());
}

TEST(RecognizeTest, RejectedShapes) {
  // WHERE clause.
  EXPECT_FALSE(Recognize("SELECT pos, SUM(val) OVER (ORDER BY pos ROWS "
                         "BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM seq "
                         "WHERE pos > 1")
                   .has_value());
  // Partition clause without the partition columns in the select list.
  EXPECT_FALSE(Recognize("SELECT pos, SUM(val) OVER (PARTITION BY grp "
                         "ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 "
                         "FOLLOWING) FROM seq")
                   .has_value());
  // Mismatched order column.
  EXPECT_FALSE(Recognize("SELECT pos, SUM(val) OVER (ORDER BY val ROWS "
                         "BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM seq")
                   .has_value());
  // Descending window order.
  EXPECT_FALSE(Recognize("SELECT pos, SUM(val) OVER (ORDER BY pos DESC "
                         "ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM "
                         "seq")
                   .has_value());
  // Backward frame (not a paper sequence window).
  EXPECT_FALSE(Recognize("SELECT pos, SUM(val) OVER (ORDER BY pos ROWS "
                         "BETWEEN 3 PRECEDING AND 1 PRECEDING) FROM seq")
                   .has_value());
  // COUNT is not a sequence aggregate here.
  EXPECT_FALSE(Recognize("SELECT pos, COUNT(val) OVER (ORDER BY pos ROWS "
                         "BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM seq")
                   .has_value());
  // Window argument must be a plain column.
  EXPECT_FALSE(Recognize("SELECT pos, SUM(val * 2) OVER (ORDER BY pos ROWS "
                         "BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM seq")
                   .has_value());
}

class RewriterEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    CreateSeqTable(db_, 50);
    MustExecute(db_,
                "CREATE MATERIALIZED VIEW matseq AS SELECT pos, SUM(val) "
                "OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 "
                "FOLLOWING) FROM seq");
  }

  ResultSet Reference(const std::string& sql) {
    db_.options().enable_view_rewrite = false;
    ResultSet rs = MustExecute(db_, sql);
    db_.options().enable_view_rewrite = true;
    return rs;
  }

  Database db_;
};

TEST_F(RewriterEndToEnd, DirectHit) {
  const std::string sql =
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING "
      "AND 1 FOLLOWING) FROM seq ORDER BY pos";
  const ResultSet rs = MustExecute(db_, sql);
  EXPECT_EQ(rs.rewrite_method(), "direct");
  EXPECT_TRUE(RowsEqual(rs, Reference(sql)));
}

TEST_F(RewriterEndToEnd, CostModelPrefersMinoaOverMaxoa) {
  // The static order picks MaxOA for a widened window, but the cost
  // model arbitrates the paper's §7 trade-off: MaxOA's disjunction has
  // 3 congruence branches here against MinOA's 2, so the nested-loop
  // pattern join is priced lower for MinOA.
  const std::string sql =
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING "
      "AND 1 FOLLOWING) FROM seq ORDER BY pos";
  const ResultSet rs = MustExecute(db_, sql);
  EXPECT_EQ(rs.rewrite_method(), "MinOA");
  EXPECT_TRUE(RowsEqual(rs, Reference(sql)));
}

TEST_F(RewriterEndToEnd, StaticOrderPicksMaxoa) {
  // With the cost model off, the paper's static preference order
  // applies: direct > cumulative-diff > MaxOA > MinOA.
  db_.options().use_cost_model = false;
  const std::string sql =
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING "
      "AND 1 FOLLOWING) FROM seq ORDER BY pos";
  const ResultSet rs = MustExecute(db_, sql);
  EXPECT_EQ(rs.rewrite_method(), "MaxOA");
  EXPECT_TRUE(RowsEqual(rs, Reference(sql)));
}

TEST_F(RewriterEndToEnd, ForcedMinoa) {
  db_.options().force_method = DerivationMethod::kMinoa;
  const std::string sql =
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING "
      "AND 1 FOLLOWING) FROM seq ORDER BY pos";
  const ResultSet rs = MustExecute(db_, sql);
  EXPECT_EQ(rs.rewrite_method(), "MinOA");
  EXPECT_TRUE(RowsEqual(rs, Reference(sql)));
}

TEST_F(RewriterEndToEnd, NarrowingQueryViaMinoa) {
  const std::string sql =
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING "
      "AND 1 FOLLOWING) FROM seq ORDER BY pos";
  const ResultSet rs = MustExecute(db_, sql);
  EXPECT_EQ(rs.rewrite_method(), "MinOA");
  EXPECT_TRUE(RowsEqual(rs, Reference(sql)));
}

TEST_F(RewriterEndToEnd, CumulativeQueryFromSlidingView) {
  const std::string sql =
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) "
      "FROM seq ORDER BY pos";
  const ResultSet rs = MustExecute(db_, sql);
  EXPECT_EQ(rs.rewrite_method(), "MinOA");
  EXPECT_TRUE(RowsEqual(rs, Reference(sql)));
}

TEST_F(RewriterEndToEnd, UnionVariantProducesSameValues) {
  db_.options().rewrite_variant = RewriteVariant::kUnion;
  const std::string sql =
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING "
      "AND 2 FOLLOWING) FROM seq ORDER BY pos";
  const ResultSet rs = MustExecute(db_, sql);
  EXPECT_FALSE(rs.rewrite_method().empty());
  EXPECT_NE(rs.rewritten_sql().find("UNION ALL"), std::string::npos);
  EXPECT_TRUE(RowsEqual(rs, Reference(sql)));
}

TEST_F(RewriterEndToEnd, NoViewNoRewrite) {
  const std::string sql =
      "SELECT pos, MIN(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING "
      "AND 1 FOLLOWING) FROM seq ORDER BY pos";
  const ResultSet rs = MustExecute(db_, sql);
  EXPECT_TRUE(rs.rewrite_method().empty());
}

TEST_F(RewriterEndToEnd, RewriteDisabled) {
  db_.options().enable_view_rewrite = false;
  const ResultSet rs = MustExecute(
      db_,
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING "
      "AND 1 FOLLOWING) FROM seq ORDER BY pos");
  EXPECT_TRUE(rs.rewrite_method().empty());
}

TEST_F(RewriterEndToEnd, AvgFromSumView) {
  const std::string sql =
      "SELECT pos, AVG(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING "
      "AND 1 FOLLOWING) FROM seq ORDER BY pos";
  const ResultSet rs = MustExecute(db_, sql);
  EXPECT_FALSE(rs.rewrite_method().empty());
  const ResultSet reference = Reference(sql);
  ASSERT_EQ(rs.NumRows(), reference.NumRows());
  for (size_t i = 0; i < rs.NumRows(); ++i) {
    EXPECT_NEAR(rs.at(i, 1).ToDouble(), reference.at(i, 1).ToDouble(), 1e-9);
  }
}

TEST_F(RewriterEndToEnd, QueriesOnOtherTablesUntouched) {
  MustExecute(db_, "CREATE TABLE other (pos INTEGER, val DOUBLE)");
  MustExecute(db_, "INSERT INTO other VALUES (1, 1), (2, 2), (3, 3)");
  const ResultSet rs = MustExecute(
      db_,
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING "
      "AND 1 FOLLOWING) FROM other ORDER BY pos");
  EXPECT_TRUE(rs.rewrite_method().empty());
}

TEST_F(RewriterEndToEnd, CountTrivialRewrite) {
  // Paper §2.1: COUNT is trivial — positions alone answer it. The
  // materialized view from SetUp is the density witness.
  for (const char* frame :
       {"ROWS BETWEEN 2 PRECEDING AND 3 FOLLOWING",
        "ROWS UNBOUNDED PRECEDING"}) {
    const std::string sql =
        std::string("SELECT pos, COUNT(*) OVER (ORDER BY pos ") + frame +
        ") FROM seq ORDER BY pos";
    const ResultSet rs = MustExecute(db_, sql);
    EXPECT_EQ(rs.rewrite_method(), "count-trivial") << frame;
    const ResultSet reference = Reference(sql);
    ASSERT_EQ(rs.NumRows(), reference.NumRows());
    for (size_t i = 0; i < rs.NumRows(); ++i) {
      EXPECT_EQ(rs.at(i, 1).AsInt(), reference.at(i, 1).AsInt())
          << frame << " row " << i;
    }
  }
  // COUNT(pos) (the dense order column) also qualifies.
  const ResultSet rs = MustExecute(
      db_, "SELECT pos, COUNT(pos) OVER (ORDER BY pos ROWS BETWEEN 1 "
           "PRECEDING AND 1 FOLLOWING) FROM seq ORDER BY pos");
  EXPECT_EQ(rs.rewrite_method(), "count-trivial");
}

TEST_F(RewriterEndToEnd, CountOverMeasureNotRewritten) {
  // COUNT(val) could see NULLs; it is not position-trivial.
  const ResultSet rs = MustExecute(
      db_, "SELECT pos, COUNT(val) OVER (ORDER BY pos ROWS BETWEEN 1 "
           "PRECEDING AND 1 FOLLOWING) FROM seq ORDER BY pos");
  EXPECT_TRUE(rs.rewrite_method().empty());
}

TEST(CountTrivialGuard, NoWitnessNoRewrite) {
  // Without any registered view over (seq, pos), density is unknown and
  // the COUNT rewrite must not fire.
  Database db;
  CreateSeqTable(db, 10);
  const ResultSet rs = MustExecute(
      db, "SELECT pos, COUNT(*) OVER (ORDER BY pos ROWS BETWEEN 1 "
          "PRECEDING AND 1 FOLLOWING) FROM seq ORDER BY pos");
  EXPECT_TRUE(rs.rewrite_method().empty());
}

TEST_F(RewriterEndToEnd, PartitionedDirectHit) {
  MustExecute(db_,
              "CREATE TABLE pseq (grp INTEGER, pos INTEGER, val DOUBLE)");
  MustExecute(db_,
              "INSERT INTO pseq VALUES (1, 1, 10), (1, 2, 20), (1, 3, 30), "
              "(2, 1, 100), (2, 2, 200)");
  MustExecute(db_,
              "CREATE MATERIALIZED VIEW pview AS SELECT grp, pos, SUM(val) "
              "OVER (PARTITION BY grp ORDER BY pos ROWS BETWEEN 1 "
              "PRECEDING AND 1 FOLLOWING) FROM pseq");
  const std::string sql =
      "SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos ROWS "
      "BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM pseq ORDER BY grp, pos";
  const ResultSet rs = MustExecute(db_, sql);
  EXPECT_EQ(rs.rewrite_method(), "direct");
  EXPECT_TRUE(RowsEqual(rs, Reference(sql)));
}

TEST_F(RewriterEndToEnd, PartitionedWindowMismatchNotRewritten) {
  MustExecute(db_,
              "CREATE TABLE pseq (grp INTEGER, pos INTEGER, val DOUBLE)");
  MustExecute(db_, "INSERT INTO pseq VALUES (1, 1, 10), (1, 2, 20)");
  MustExecute(db_,
              "CREATE MATERIALIZED VIEW pview AS SELECT grp, pos, SUM(val) "
              "OVER (PARTITION BY grp ORDER BY pos ROWS BETWEEN 1 "
              "PRECEDING AND 1 FOLLOWING) FROM pseq");
  // Different window: per-partition derivation is not offered via SQL.
  const ResultSet rs = MustExecute(
      db_,
      "SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos ROWS "
      "BETWEEN 2 PRECEDING AND 1 FOLLOWING) FROM pseq ORDER BY grp, pos");
  EXPECT_TRUE(rs.rewrite_method().empty());
}

TEST_F(RewriterEndToEnd, MinMaxCoverThroughSql) {
  MustExecute(db_,
              "CREATE MATERIALIZED VIEW vmax AS SELECT pos, MAX(val) OVER "
              "(ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) "
              "FROM seq");
  const std::string sql =
      "SELECT pos, MAX(val) OVER (ORDER BY pos ROWS BETWEEN 4 PRECEDING "
      "AND 3 FOLLOWING) FROM seq ORDER BY pos";
  const ResultSet rs = MustExecute(db_, sql);
  EXPECT_EQ(rs.rewrite_method(), "min-max-cover");
  EXPECT_TRUE(RowsEqual(rs, Reference(sql)));
}

}  // namespace
}  // namespace rfv
