#include "rewrite/derivability.h"

#include <gtest/gtest.h>

namespace rfv {
namespace {

SequenceViewDef MakeView(const std::string& name, WindowSpec window,
                         SeqAggFn fn = SeqAggFn::kSum) {
  SequenceViewDef def;
  def.view_name = name;
  def.base_table = "seq";
  def.value_column = "val";
  def.order_column = "pos";
  def.fn = fn;
  def.window = window;
  def.n = 100;
  return def;
}

SeqQuery MakeQuery(WindowSpec window, SeqAggFn fn = SeqAggFn::kSum) {
  SeqQuery q;
  q.base_table = "seq";
  q.order_column = "pos";
  q.value_column = "val";
  q.fn = fn;
  q.window = window;
  return q;
}

TEST(DerivabilityTest, IdenticalWindowIsDirect) {
  const SequenceViewDef view =
      MakeView("v", WindowSpec::SlidingUnchecked(2, 1));
  const Result<DerivationChoice> choice =
      CheckDerivability(view, MakeQuery(WindowSpec::SlidingUnchecked(2, 1)));
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->method, DerivationMethod::kDirect);
}

TEST(DerivabilityTest, CumulativeViewDominatesSlidingQueries) {
  const SequenceViewDef view = MakeView("v", WindowSpec::Cumulative());
  const Result<DerivationChoice> choice =
      CheckDerivability(view, MakeQuery(WindowSpec::SlidingUnchecked(5, 3)));
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->method, DerivationMethod::kCumulativeDiff);
}

TEST(DerivabilityTest, SlidingViewPrefersMaxoa) {
  const SequenceViewDef view =
      MakeView("v", WindowSpec::SlidingUnchecked(2, 1));
  const Result<DerivationChoice> choice =
      CheckDerivability(view, MakeQuery(WindowSpec::SlidingUnchecked(3, 1)));
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->method, DerivationMethod::kMaxoa);
  EXPECT_EQ(choice->maxoa.delta_l, 1);
  EXPECT_EQ(choice->maxoa.delta_p, 3);
}

TEST(DerivabilityTest, FallsBackToMinoaWhenMaxoaIneligible) {
  // Narrowing query: MaxOA requires containment, MinOA does not.
  const SequenceViewDef view =
      MakeView("v", WindowSpec::SlidingUnchecked(3, 2));
  const Result<DerivationChoice> choice =
      CheckDerivability(view, MakeQuery(WindowSpec::SlidingUnchecked(1, 1)));
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->method, DerivationMethod::kMinoa);
}

TEST(DerivabilityTest, CumulativeQueryFromSlidingViewUsesMinoa) {
  const SequenceViewDef view =
      MakeView("v", WindowSpec::SlidingUnchecked(2, 1));
  const Result<DerivationChoice> choice =
      CheckDerivability(view, MakeQuery(WindowSpec::Cumulative()));
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->method, DerivationMethod::kMinoa);
}

TEST(DerivabilityTest, AggregateFunctionMustMatch) {
  const SequenceViewDef view =
      MakeView("v", WindowSpec::SlidingUnchecked(2, 1), SeqAggFn::kMin);
  EXPECT_EQ(CheckDerivability(
                view, MakeQuery(WindowSpec::SlidingUnchecked(3, 1)))
                .status()
                .code(),
            StatusCode::kNotDerivable);
}

TEST(DerivabilityTest, AvgQueryNeedsSumView) {
  const SequenceViewDef view =
      MakeView("v", WindowSpec::SlidingUnchecked(2, 1), SeqAggFn::kSum);
  SeqQuery q = MakeQuery(WindowSpec::SlidingUnchecked(2, 1));
  q.is_avg = true;
  const Result<DerivationChoice> choice = CheckDerivability(view, q);
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->method, DerivationMethod::kDirect);
}

TEST(DerivabilityTest, MinMaxCoverWithinLimits) {
  const SequenceViewDef view =
      MakeView("v", WindowSpec::SlidingUnchecked(2, 2), SeqAggFn::kMax);
  const Result<DerivationChoice> ok = CheckDerivability(
      view, MakeQuery(WindowSpec::SlidingUnchecked(4, 3), SeqAggFn::kMax));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->method, DerivationMethod::kMinMaxCover);
  // Δl = 3 > h_x = 2 → gap.
  EXPECT_EQ(CheckDerivability(view, MakeQuery(WindowSpec::SlidingUnchecked(
                                                  5, 2),
                                              SeqAggFn::kMax))
                .status()
                .code(),
            StatusCode::kNotDerivable);
}

TEST(DerivabilityTest, RunningMinMaxViewsNotInvertible) {
  const SequenceViewDef view =
      MakeView("v", WindowSpec::Cumulative(), SeqAggFn::kMin);
  EXPECT_EQ(CheckDerivability(view, MakeQuery(WindowSpec::SlidingUnchecked(
                                                  1, 1),
                                              SeqAggFn::kMin))
                .status()
                .code(),
            StatusCode::kNotDerivable);
}

TEST(DerivabilityTest, PartitionedViewsRejectedForSqlPath) {
  SequenceViewDef view = MakeView("v", WindowSpec::SlidingUnchecked(2, 1));
  view.partition_columns = {"grp"};
  EXPECT_EQ(CheckDerivability(
                view, MakeQuery(WindowSpec::SlidingUnchecked(3, 1)))
                .status()
                .code(),
            StatusCode::kNotDerivable);
}

TEST(DerivabilityTest, ChooseDerivationPicksBestRank) {
  const SequenceViewDef sliding =
      MakeView("vs", WindowSpec::SlidingUnchecked(2, 1));
  const SequenceViewDef cumulative = MakeView("vc", WindowSpec::Cumulative());
  const SequenceViewDef exact =
      MakeView("ve", WindowSpec::SlidingUnchecked(3, 1));
  const SeqQuery q = MakeQuery(WindowSpec::SlidingUnchecked(3, 1));

  // Exact view wins over everything.
  {
    const Result<DerivationChoice> choice =
        ChooseDerivation({&sliding, &cumulative, &exact}, q);
    ASSERT_TRUE(choice.ok());
    EXPECT_EQ(choice->method, DerivationMethod::kDirect);
    EXPECT_EQ(choice->view, &exact);
  }
  // Without it, the cumulative view beats MaxOA.
  {
    const Result<DerivationChoice> choice =
        ChooseDerivation({&sliding, &cumulative}, q);
    ASSERT_TRUE(choice.ok());
    EXPECT_EQ(choice->method, DerivationMethod::kCumulativeDiff);
  }
  // Sliding-only: MaxOA.
  {
    const Result<DerivationChoice> choice = ChooseDerivation({&sliding}, q);
    ASSERT_TRUE(choice.ok());
    EXPECT_EQ(choice->method, DerivationMethod::kMaxoa);
  }
  // Nothing applicable.
  EXPECT_EQ(ChooseDerivation({}, q).status().code(),
            StatusCode::kNotDerivable);
}

TEST(DerivabilityTest, MethodNames) {
  EXPECT_STREQ(DerivationMethodName(DerivationMethod::kDirect), "direct");
  EXPECT_STREQ(DerivationMethodName(DerivationMethod::kMaxoa), "MaxOA");
  EXPECT_STREQ(DerivationMethodName(DerivationMethod::kMinoa), "MinOA");
}

}  // namespace
}  // namespace rfv
