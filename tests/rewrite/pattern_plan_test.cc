#include "rewrite/pattern_plan.h"

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "test_util.h"

namespace rfv {
namespace {

using testutil::CreateSeqTable;
using testutil::MustExecute;

class PatternPlanTest : public ::testing::Test {
 protected:
  void SetUp() override { CreateSeqTable(db_, 25); }
  Table* SeqTable() {
    Result<Table*> t = db_.catalog()->GetTable("seq");
    EXPECT_TRUE(t.ok());
    return t.ok() ? *t : nullptr;
  }
  Database db_;
};

TEST_F(PatternPlanTest, NativeWindowPlanMatchesSql) {
  const Result<LogicalPlanPtr> plan = BuildNativeWindowPlan(
      SeqTable(), "pos", "val", WindowSpec::SlidingUnchecked(2, 1),
      AggFn::kSum);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const Result<std::vector<Row>> rows = ExecutePlan(**plan);
  ASSERT_TRUE(rows.ok());
  const ResultSet sql = MustExecute(
      db_, "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 "
           "PRECEDING AND 1 FOLLOWING) FROM seq");
  ASSERT_EQ(rows->size(), sql.NumRows());
  for (size_t i = 0; i < rows->size(); ++i) {
    EXPECT_EQ((*rows)[i][0], sql.at(i, 0));
    EXPECT_EQ((*rows)[i][1], sql.at(i, 1));
  }
}

TEST_F(PatternPlanTest, NativeWindowPlanCumulative) {
  const Result<LogicalPlanPtr> plan = BuildNativeWindowPlan(
      SeqTable(), "pos", "val", WindowSpec::Cumulative(), AggFn::kSum);
  ASSERT_TRUE(plan.ok());
  const Result<std::vector<Row>> rows = ExecutePlan(**plan);
  ASSERT_TRUE(rows.ok());
  // Last row = total sum.
  const ResultSet total = MustExecute(db_, "SELECT SUM(val) FROM seq");
  EXPECT_EQ(rows->back()[1], total.at(0, 0));
}

TEST_F(PatternPlanTest, NativeWindowPlanAvgAndMin) {
  for (const AggFn fn : {AggFn::kAvg, AggFn::kMin}) {
    const Result<LogicalPlanPtr> plan = BuildNativeWindowPlan(
        SeqTable(), "pos", "val", WindowSpec::SlidingUnchecked(1, 1), fn);
    ASSERT_TRUE(plan.ok());
    EXPECT_TRUE(ExecutePlan(**plan).ok());
  }
}

TEST_F(PatternPlanTest, UnknownColumnRejected) {
  EXPECT_FALSE(BuildNativeWindowPlan(SeqTable(), "nope", "val",
                                     WindowSpec::SlidingUnchecked(1, 1),
                                     AggFn::kSum)
                   .ok());
}

TEST_F(PatternPlanTest, ViewReadPlanFiltersBody) {
  MustExecute(db_,
              "CREATE MATERIALIZED VIEW v AS SELECT pos, SUM(val) OVER "
              "(ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) "
              "FROM seq");
  Result<Table*> view = db_.catalog()->GetTable("v");
  ASSERT_TRUE(view.ok());
  const Result<LogicalPlanPtr> plan = BuildViewReadPlan(*view, 25);
  ASSERT_TRUE(plan.ok());
  const Result<std::vector<Row>> rows = ExecutePlan(**plan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 25u);  // header/trailer filtered out
  EXPECT_EQ((*rows)[0][0], Value::Int(1));
  EXPECT_EQ(rows->back()[0], Value::Int(25));
}

TEST_F(PatternPlanTest, ExplainStatementShowsRewrite) {
  MustExecute(db_,
              "CREATE MATERIALIZED VIEW v AS SELECT pos, SUM(val) OVER "
              "(ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) "
              "FROM seq");
  const ResultSet rs = MustExecute(
      db_,
      "EXPLAIN SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 "
      "PRECEDING AND 1 FOLLOWING) FROM seq");
  ASSERT_GT(rs.NumRows(), 0u);
  // The cost model arbitrates MaxOA vs. MinOA; the widened window here
  // prices MinOA lower (2 congruence branches vs. 3).
  EXPECT_NE(rs.at(0, 0).AsString().find("MinOA"), std::string::npos);
}

TEST_F(PatternPlanTest, ExplainWithoutViewsShowsWindowOperator) {
  const ResultSet rs = MustExecute(
      db_,
      "EXPLAIN SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 "
      "PRECEDING AND 1 FOLLOWING) FROM seq");
  bool saw_window = false;
  for (size_t i = 0; i < rs.NumRows(); ++i) {
    saw_window =
        saw_window ||
        rs.at(i, 0).AsString().find("Window(") != std::string::npos;
  }
  EXPECT_TRUE(saw_window);
}

}  // namespace
}  // namespace rfv
