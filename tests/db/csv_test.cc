#include "db/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "test_util.h"

namespace rfv {
namespace {

using testutil::MustExecute;

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/rfview_csv_test_" +
            std::to_string(counter_++) + ".csv";
    MustExecute(db_,
                "CREATE TABLE t (id INTEGER, amount DOUBLE, name VARCHAR, "
                "flag BOOLEAN)");
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_, std::ios::binary);
    out << content;
  }
  std::string ReadFile() {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  static int counter_;
  Database db_;
  std::string path_;
};

int CsvTest::counter_ = 0;

TEST_F(CsvTest, BasicImport) {
  WriteFile("id,amount,name,flag\n1,2.5,alpha,true\n2,3,beta,false\n");
  const Result<size_t> n = ImportCsv(db_.catalog(), "t", path_);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 2u);
  const ResultSet rs = MustExecute(db_, "SELECT * FROM t ORDER BY id");
  EXPECT_EQ(rs.at(0, 2), Value::String("alpha"));
  EXPECT_EQ(rs.at(1, 1), Value::Double(3));
  EXPECT_EQ(rs.at(0, 3), Value::Bool(true));
}

TEST_F(CsvTest, NoHeaderOption) {
  WriteFile("1,1.0,x,1\n");
  CsvOptions options;
  options.header = false;
  const Result<size_t> n = ImportCsv(db_.catalog(), "t", path_, options);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
}

TEST_F(CsvTest, QuotedFieldsWithEmbeddedDelimitersAndQuotes) {
  WriteFile(
      "id,amount,name,flag\n1,1.0,\"a,b\",true\n2,2.0,\"say "
      "\"\"hi\"\"\",false\n3,3.0,\"multi\nline\",true\n");
  const Result<size_t> n = ImportCsv(db_.catalog(), "t", path_);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 3u);
  const ResultSet rs = MustExecute(db_, "SELECT name FROM t ORDER BY id");
  EXPECT_EQ(rs.at(0, 0), Value::String("a,b"));
  EXPECT_EQ(rs.at(1, 0), Value::String("say \"hi\""));
  EXPECT_EQ(rs.at(2, 0), Value::String("multi\nline"));
}

TEST_F(CsvTest, EmptyFieldIsNull) {
  WriteFile("id,amount,name,flag\n1,,x,\n");
  ASSERT_TRUE(ImportCsv(db_.catalog(), "t", path_).ok());
  const ResultSet rs = MustExecute(db_, "SELECT amount, flag FROM t");
  EXPECT_TRUE(rs.at(0, 0).is_null());
  EXPECT_TRUE(rs.at(0, 1).is_null());
}

TEST_F(CsvTest, CustomNullText) {
  WriteFile("id,amount,name,flag\n1,NULL,NULL,true\n");
  CsvOptions options;
  options.null_text = "NULL";
  ASSERT_TRUE(ImportCsv(db_.catalog(), "t", path_, options).ok());
  const ResultSet rs = MustExecute(db_, "SELECT amount, name FROM t");
  EXPECT_TRUE(rs.at(0, 0).is_null());
  EXPECT_TRUE(rs.at(0, 1).is_null());
}

TEST_F(CsvTest, CustomDelimiter) {
  WriteFile("1;2.0;x;true\n");
  CsvOptions options;
  options.header = false;
  options.delimiter = ';';
  ASSERT_TRUE(ImportCsv(db_.catalog(), "t", path_, options).ok());
  EXPECT_EQ(MustExecute(db_, "SELECT COUNT(*) FROM t").at(0, 0),
            Value::Int(1));
}

TEST_F(CsvTest, ImportErrors) {
  // Arity mismatch.
  WriteFile("id,amount,name,flag\n1,2.0,x\n");
  EXPECT_EQ(ImportCsv(db_.catalog(), "t", path_).status().code(),
            StatusCode::kInvalidArgument);
  // Bad integer (and nothing half-imported from the earlier failure).
  WriteFile("id,amount,name,flag\nnope,2.0,x,true\n");
  const Result<size_t> r = ImportCsv(db_.catalog(), "t", path_);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
  EXPECT_EQ(MustExecute(db_, "SELECT COUNT(*) FROM t").at(0, 0),
            Value::Int(0));
  // Unterminated quote.
  WriteFile("id,amount,name,flag\n1,2.0,\"oops,true\n");
  EXPECT_EQ(ImportCsv(db_.catalog(), "t", path_).status().code(),
            StatusCode::kInvalidArgument);
  // Missing file / table.
  EXPECT_EQ(ImportCsv(db_.catalog(), "t", "/nonexistent/file.csv")
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ImportCsv(db_.catalog(), "missing", path_).status().code(),
            StatusCode::kNotFound);
}

TEST_F(CsvTest, ExportRoundTrip) {
  MustExecute(db_,
              "INSERT INTO t VALUES (1, 2.5, 'plain', true), "
              "(2, NULL, 'a,b', false), (3, 0.25, 'q\"q', NULL)");
  const Result<size_t> written = ExportCsv(db_.catalog(), "t", path_);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_EQ(*written, 3u);

  Database db2;
  testutil::MustExecute(db2,
                        "CREATE TABLE t (id INTEGER, amount DOUBLE, name "
                        "VARCHAR, flag BOOLEAN)");
  const Result<size_t> read = ImportCsv(db2.catalog(), "t", path_);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, 3u);
  const ResultSet a = MustExecute(db_, "SELECT * FROM t ORDER BY id");
  const ResultSet b = MustExecute(db2, "SELECT * FROM t ORDER BY id");
  EXPECT_TRUE(testutil::RowsEqual(a, b));
}

TEST_F(CsvTest, ExportHeaderLine) {
  ASSERT_TRUE(ExportCsv(db_.catalog(), "t", path_).ok());
  const std::string content = ReadFile();
  EXPECT_EQ(content, "id,amount,name,flag\n");
}

TEST_F(CsvTest, ImportedSequenceDataFeedsViews) {
  MustExecute(db_, "CREATE TABLE seq (pos INTEGER PRIMARY KEY, val DOUBLE)");
  WriteFile("pos,val\n1,10\n2,20\n3,30\n4,40\n5,50\n");
  Result<size_t> n = Status::Internal("unset");
  n = ImportCsv(db_.catalog(), "seq", path_);
  ASSERT_TRUE(n.ok());
  MustExecute(db_,
              "CREATE MATERIALIZED VIEW v AS SELECT pos, SUM(val) OVER "
              "(ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) "
              "FROM seq");
  const ResultSet rs = MustExecute(
      db_,
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING "
      "AND 1 FOLLOWING) FROM seq ORDER BY pos");
  EXPECT_EQ(rs.rewrite_method(), "direct");
  EXPECT_DOUBLE_EQ(rs.at(2, 1).AsDouble(), 90.0);
}

}  // namespace
}  // namespace rfv
