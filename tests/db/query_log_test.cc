#include "db/query_log.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "test_util.h"

namespace rfv {
namespace {

using testutil::IsValidJson;

TEST(NormalizeFingerprintTest, StripsNumericLiterals) {
  EXPECT_EQ(NormalizeFingerprint("SELECT * FROM t WHERE x = 42"),
            "select * from t where x = ?");
  EXPECT_EQ(NormalizeFingerprint("SELECT * FROM t WHERE x = 42"),
            NormalizeFingerprint("SELECT * FROM t WHERE x = 99"));
  EXPECT_EQ(NormalizeFingerprint("SELECT a + 1.5 FROM t"),
            "select a + ? from t");
}

TEST(NormalizeFingerprintTest, StripsStringLiterals) {
  EXPECT_EQ(NormalizeFingerprint("SELECT * FROM t WHERE name = 'bob'"),
            NormalizeFingerprint("SELECT * FROM t WHERE name = 'alice'"));
  EXPECT_EQ(NormalizeFingerprint("SELECT * FROM t WHERE name = 'bob'"),
            "select * from t where name = ?");
}

TEST(NormalizeFingerprintTest, FoldsCaseAndWhitespace) {
  EXPECT_EQ(NormalizeFingerprint("SeLeCt   *\n\tFROM   T"),
            NormalizeFingerprint("select * from t"));
  EXPECT_EQ(NormalizeFingerprint("  select 1  ;  "),
            NormalizeFingerprint("SELECT 2"));
}

TEST(NormalizeFingerprintTest, CollapsesAllLiteralInLists) {
  EXPECT_EQ(NormalizeFingerprint("SELECT * FROM t WHERE x IN (1, 2, 3)"),
            NormalizeFingerprint("SELECT * FROM t WHERE x IN (4)"));
  EXPECT_EQ(NormalizeFingerprint("SELECT * FROM t WHERE x IN (1, 2)"),
            "select * from t where x in (?)");
  EXPECT_EQ(NormalizeFingerprint("WHERE s IN ('a', 'b', 'c')"),
            "where s in (?)");
}

TEST(NormalizeFingerprintTest, KeepsNonLiteralInListsIntact) {
  // A column reference inside the list blocks the collapse; individual
  // literals still strip to placeholders.
  EXPECT_EQ(NormalizeFingerprint("SELECT * FROM t WHERE x IN (a, 2)"),
            "select * from t where x in (a, ?)");
}

TEST(NormalizeFingerprintTest, PreservesOperatorsAndPunctuation) {
  EXPECT_EQ(NormalizeFingerprint("SELECT t.a, t.b FROM t WHERE a <= b"),
            "select t.a, t.b from t where a <= b");
  EXPECT_EQ(NormalizeFingerprint("SELECT SUM(val) OVER (ORDER BY pos)"),
            "select sum (val) over (order by pos)");
}

TEST(NormalizeFingerprintTest, UnlexableTextFallsBack) {
  // '!' alone is a lex error; the fallback still case/space-folds so
  // retries of the same broken text share a fingerprint.
  EXPECT_EQ(NormalizeFingerprint("SELECT ! FROM t"),
            NormalizeFingerprint("select  !  from   t"));
  EXPECT_EQ(NormalizeFingerprint("SELECT ! FROM t"), "select ! from t");
}

QueryEvent MakeEvent(int64_t id) {
  QueryEvent e;
  e.query_id = id;
  e.sql = "SELECT " + std::to_string(id);
  e.fingerprint = "select ?";
  e.kind = "select";
  e.status = "ok";
  return e;
}

TEST(QueryEventTest, ToJsonIsValidAndComplete) {
  QueryEvent e = MakeEvent(7);
  e.sql = "SELECT \"quoted\"\nnewline";
  e.duration_ns = 1500000;  // 1.5 ms
  e.phase_ns = {{"parse", 1000000}, {"execute", 500000}};
  e.rows_in = 10;
  e.rows_out = 3;
  e.rewrite = "MaxOA";
  e.rewrite_view = "v";
  e.cost_estimate = 123.5;
  QueryEventCandidate c;
  c.view = "v";
  c.derivable = true;
  c.method = "MaxOA";
  c.chosen = true;
  c.cost = 123.5;
  e.candidates.push_back(c);
  QueryEventOperator op;
  op.op = "scan";
  op.rows_out = 10;
  e.operators.push_back(op);

  const std::string json = e.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"query_id\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"fingerprint\": \"select ?\""), std::string::npos);
  EXPECT_NE(json.find("\"parse\": 1.000"), std::string::npos);
  EXPECT_NE(json.find("\"duration_ms\": 1.500"), std::string::npos);
  EXPECT_NE(json.find("\"decision\": \"MaxOA\""), std::string::npos);
  EXPECT_NE(json.find("\"candidates\": [{"), std::string::npos);
  EXPECT_NE(json.find("\"op\": \"scan\""), std::string::npos);
}

TEST(QueryEventTest, UncostedFieldsRenderAsJsonNull) {
  const std::string json = MakeEvent(1).ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"cost_estimate\": null"), std::string::npos);
}

TEST(QueryLogTest, EvictsOldestBeyondCapacity) {
  QueryLog log(3);
  for (int64_t i = 1; i <= 5; ++i) log.Append(MakeEvent(i));
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total_appended(), 5);
  const std::vector<QueryEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Oldest first, and the two oldest (1, 2) are gone.
  EXPECT_EQ(events[0].query_id, 3);
  EXPECT_EQ(events[1].query_id, 4);
  EXPECT_EQ(events[2].query_id, 5);
}

TEST(QueryLogTest, ShrinkingCapacityEvictsImmediately) {
  QueryLog log(8);
  for (int64_t i = 1; i <= 6; ++i) log.Append(MakeEvent(i));
  Counter* dropped = MetricsRegistry::Global().GetCounter(
      "rfv_workload_events_dropped_total");
  const int64_t dropped_before = dropped->value();
  log.SetCapacity(2);
  EXPECT_EQ(log.capacity(), 2u);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(dropped->value() - dropped_before, 4);
  EXPECT_EQ(log.Snapshot()[0].query_id, 5);
  EXPECT_EQ(log.Snapshot()[1].query_id, 6);
}

TEST(QueryLogTest, ZeroCapacityClampsToOne) {
  QueryLog log(0);
  EXPECT_EQ(log.capacity(), 1u);
  log.Append(MakeEvent(1));
  log.Append(MakeEvent(2));
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.Snapshot()[0].query_id, 2);
}

TEST(QueryLogTest, ToJsonlEmitsOneValidLinePerEvent) {
  QueryLog log(4);
  log.Append(MakeEvent(1));
  log.Append(MakeEvent(2));
  const std::string jsonl = log.ToJsonl();
  size_t lines = 0;
  size_t start = 0;
  while (start < jsonl.size()) {
    const size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    EXPECT_TRUE(IsValidJson(jsonl.substr(start, end - start)));
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 2u);
}

}  // namespace
}  // namespace rfv
