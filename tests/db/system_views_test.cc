#include "db/system_views.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "common/trace.h"
#include "db/database.h"
#include "test_util.h"

namespace rfv {
namespace {

using testutil::IsValidJson;
using testutil::MustExecute;

TEST(SystemViewsTest, QueriesViewReflectsSessionHistory) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER)");
  MustExecute(db, "INSERT INTO t VALUES (1), (2), (3)");
  MustExecute(db, "SELECT a FROM t WHERE a > 1");

  const ResultSet rs = MustExecute(
      db,
      "SELECT query_id, sql, fingerprint, kind, status, rows_out "
      "FROM rfv_system.queries ORDER BY query_id");
  ASSERT_EQ(rs.NumRows(), 3u);  // the introspection query itself not yet
  EXPECT_EQ(rs.at(0, 3), Value::String("create_table"));
  EXPECT_EQ(rs.at(1, 3), Value::String("insert"));
  EXPECT_EQ(rs.at(1, 5), Value::Int(3));  // 3 rows inserted
  EXPECT_EQ(rs.at(2, 1),
            Value::String("SELECT a FROM t WHERE a > 1"));
  EXPECT_EQ(rs.at(2, 2),
            Value::String("select a from t where a > ?"));
  EXPECT_EQ(rs.at(2, 4), Value::String("ok"));
  EXPECT_EQ(rs.at(2, 5), Value::Int(2));
}

TEST(SystemViewsTest, FailedStatementsAreRecordedWithStatus) {
  Database db;
  EXPECT_FALSE(db.Execute("SELECT * FROM missing").ok());
  const ResultSet rs = MustExecute(
      db, "SELECT kind, status, error FROM rfv_system.queries");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.at(0, 0), Value::String("select"));
  EXPECT_EQ(rs.at(0, 1), Value::String("NotFound"));
  EXPECT_NE(rs.at(0, 2).AsString().find("missing"), std::string::npos);
}

TEST(SystemViewsTest, RankWindowQueryOverQueriesView) {
  // The ISSUE acceptance query: ranking the session's own statements by
  // duration through the ordinary window pipeline.
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER)");
  MustExecute(db, "INSERT INTO t VALUES (1)");
  MustExecute(db, "SELECT a FROM t");
  const ResultSet rs = MustExecute(
      db,
      "SELECT query_id, duration_ms, "
      "RANK() OVER (ORDER BY duration_ms DESC) FROM rfv_system.queries");
  ASSERT_EQ(rs.NumRows(), 3u);
  for (size_t r = 0; r < rs.NumRows(); ++r) {
    EXPECT_GT(rs.at(r, 1).ToDouble(), 0.0);
    const int64_t rank = rs.at(r, 2).AsInt();
    EXPECT_GE(rank, 1);
    EXPECT_LE(rank, 3);
  }
}

TEST(SystemViewsTest, PullStylesAgreeOnSystemViews) {
  // Row / batch / vector drivers must return identical rows. The log
  // grows between executions, so compare on the stable DML subset and
  // deterministic columns only.
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER)");
  MustExecute(db, "INSERT INTO t VALUES (1), (2)");
  MustExecute(db, "INSERT INTO t VALUES (3)");
  const std::string sql =
      "SELECT query_id, kind, status, rows_out, "
      "RANK() OVER (ORDER BY query_id) "
      "FROM rfv_system.queries WHERE kind = 'insert' ORDER BY query_id";

  db.options().exec.use_batch_execution = false;
  db.options().exec.use_vectorized_execution = false;
  const ResultSet row_mode = MustExecute(db, sql);
  db.options().exec.use_batch_execution = true;
  const ResultSet batch_mode = MustExecute(db, sql);
  db.options().exec.use_vectorized_execution = true;
  const ResultSet vector_mode = MustExecute(db, sql);

  ASSERT_EQ(row_mode.NumRows(), 2u);
  EXPECT_TRUE(testutil::RowsEqual(row_mode, batch_mode));
  EXPECT_TRUE(testutil::RowsEqual(row_mode, vector_mode));
}

TEST(SystemViewsTest, OperatorsViewExposesPlanMetrics) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER)");
  MustExecute(db, "INSERT INTO t VALUES (1), (2), (3)");
  MustExecute(db, "SELECT a FROM t WHERE a > 1 ORDER BY a");
  const ResultSet rs = MustExecute(
      db,
      "SELECT op, rows_out FROM rfv_system.operators "
      "WHERE op = 'scan' ORDER BY query_id");
  ASSERT_GE(rs.NumRows(), 1u);
  EXPECT_EQ(rs.at(0, 1), Value::Int(3));  // the scan read all 3 rows
}

TEST(SystemViewsTest, MetricsViewServesTypedCounters) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER)");
  const ResultSet rs = MustExecute(
      db,
      "SELECT name, kind, count FROM rfv_system.metrics "
      "WHERE name = 'rfv_queries_executed_total'");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.at(0, 1), Value::String("counter"));
  EXPECT_GE(rs.at(0, 2).AsInt(), 1);
}

TEST(SystemViewsTest, ViewsViewExposesCatalogAndMaintenance) {
  Database db;
  testutil::CreateSeqTable(db, 12);
  MustExecute(db,
              "CREATE MATERIALIZED VIEW v AS SELECT pos, SUM(val) OVER "
              "(ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) "
              "FROM seq");
  const ResultSet rs = MustExecute(
      db,
      "SELECT view_name, base_table, fn, window_spec, n, content_rows, "
      "full_refreshes FROM rfv_system.views");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.at(0, 0), Value::String("v"));
  EXPECT_EQ(rs.at(0, 1), Value::String("seq"));
  EXPECT_EQ(rs.at(0, 2), Value::String("SUM"));
  EXPECT_EQ(rs.at(0, 4), Value::Int(12));
  EXPECT_GT(rs.at(0, 5).AsInt(), 12);  // complete sequence incl. header
  EXPECT_EQ(rs.at(0, 6), Value::Int(1));  // initial materialization
}

TEST(SystemViewsTest, TableStatsViewExposesColumnStatistics) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER, b VARCHAR)");
  MustExecute(db, "INSERT INTO t VALUES (1, 'x'), (5, NULL)");
  MustExecute(db, "ANALYZE t");
  const ResultSet rs = MustExecute(
      db,
      "SELECT column_name, row_count, null_count, distinct_count, "
      "min_value, max_value FROM rfv_system.table_stats "
      "WHERE table_name = 't' ORDER BY column_name");
  ASSERT_EQ(rs.NumRows(), 2u);
  EXPECT_EQ(rs.at(0, 0), Value::String("a"));
  EXPECT_EQ(rs.at(0, 1), Value::Int(2));
  EXPECT_EQ(rs.at(0, 3), Value::Int(2));
  EXPECT_EQ(rs.at(0, 4), Value::Double(1));
  EXPECT_EQ(rs.at(0, 5), Value::Double(5));
  EXPECT_EQ(rs.at(1, 0), Value::String("b"));
  EXPECT_EQ(rs.at(1, 2), Value::Int(1));
  EXPECT_TRUE(rs.at(1, 4).is_null());  // strings carry no numeric range
}

TEST(SystemViewsTest, TraceSpansViewServesRetiredRing) {
  Database db;
  db.options().enable_tracing = true;
  MustExecute(db, "CREATE TABLE t (a INTEGER)");
  MustExecute(db, "INSERT INTO t VALUES (1)");
  db.options().enable_tracing = false;
  const ResultSet rs = MustExecute(
      db,
      "SELECT name, COUNT(*) FROM rfv_system.trace_spans "
      "WHERE name = 'parse' GROUP BY name");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_GE(rs.at(0, 1).AsInt(), 2);  // both traced statements parsed
}

TEST(SystemViewsTest, SystemTablesAreReadOnly) {
  Database db;
  EXPECT_EQ(db.Execute("INSERT INTO rfv_system.queries VALUES (1)")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.Execute("UPDATE rfv_system.queries SET sql = 'x'")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.Execute("DELETE FROM rfv_system.queries").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.Execute("DROP TABLE rfv_system.queries").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      db.Execute("CREATE TABLE rfv_system.mine (a INTEGER)").status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(db.Execute("CREATE INDEX i ON rfv_system.queries (query_id)")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(SystemViewsTest, UnknownSystemTableIsNotFound) {
  Database db;
  EXPECT_EQ(db.Execute("SELECT * FROM rfv_system.nope").status().code(),
            StatusCode::kNotFound);
}

TEST(SystemViewsTest, QualifiedNameBindsLastComponentAsAlias) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER)");
  const ResultSet rs = MustExecute(
      db, "SELECT queries.query_id FROM rfv_system.queries");
  ASSERT_EQ(rs.NumRows(), 1u);
  // An explicit alias overrides the default.
  MustExecute(db, "SELECT q.query_id FROM rfv_system.queries q");
}

TEST(SystemViewsTest, RewriteDecisionLandsInQueriesView) {
  Database db;
  testutil::CreateSeqTable(db, 16);
  MustExecute(db,
              "CREATE MATERIALIZED VIEW v AS SELECT pos, SUM(val) OVER "
              "(ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) "
              "FROM seq");
  const ResultSet window = MustExecute(
      db,
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING "
      "AND 1 FOLLOWING) FROM seq ORDER BY pos");
  ASSERT_FALSE(window.rewrite_method().empty());

  const ResultSet rs = MustExecute(
      db,
      "SELECT rewrite, rewrite_view, candidates FROM rfv_system.queries "
      "WHERE rewrite <> 'none'");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.at(0, 0), Value::String(window.rewrite_method()));
  EXPECT_EQ(rs.at(0, 1), Value::String("v"));
  EXPECT_GE(rs.at(0, 2).AsInt(), 1);
}

TEST(SystemViewsTest, WorkloadJsonlCarriesDecisionRecord) {
  Database db;
  testutil::CreateSeqTable(db, 16);
  MustExecute(db,
              "CREATE MATERIALIZED VIEW v AS SELECT pos, SUM(val) OVER "
              "(ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) "
              "FROM seq");
  MustExecute(
      db,
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING "
      "AND 1 FOLLOWING) FROM seq ORDER BY pos");
  const std::string jsonl = db.WorkloadJsonl();
  size_t lines = 0;
  size_t start = 0;
  while (start < jsonl.size()) {
    const size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    EXPECT_TRUE(IsValidJson(jsonl.substr(start, end - start)));
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 4u);
  EXPECT_NE(jsonl.find("\"fingerprint\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"candidates\": [{"), std::string::npos);
  EXPECT_NE(jsonl.find("\"chosen\": true"), std::string::npos);
}

TEST(SystemViewsTest, QueryLogRingIsBoundedInSql) {
  Database db;
  db.query_log()->SetCapacity(4);
  MustExecute(db, "CREATE TABLE t (a INTEGER)");
  for (int i = 0; i < 10; ++i) {
    MustExecute(db, "INSERT INTO t VALUES (" + std::to_string(i) + ")");
  }
  const ResultSet rs = MustExecute(
      db, "SELECT COUNT(*), MIN(query_id), MAX(query_id) "
          "FROM rfv_system.queries");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.at(0, 0), Value::Int(4));
  // The last 4 of the 11 statements executed so far: ids 8..11.
  EXPECT_EQ(rs.at(0, 1).ToDouble(), 8);
  EXPECT_EQ(rs.at(0, 2).ToDouble(), 11);
}

TEST(SystemViewsTest, TraceRingCapacityKnob) {
  Tracer& tracer = Tracer::Global();
  const size_t original = tracer.ring_capacity();
  Counter* dropped = MetricsRegistry::Global().GetCounter(
      "rfv_trace_spans_dropped_total");

  tracer.SetRingCapacity(2);
  EXPECT_EQ(tracer.ring_capacity(), 2u);
  std::vector<int64_t> ids;
  for (int i = 0; i < 4; ++i) {
    std::shared_ptr<QueryTrace> trace = tracer.StartQuery();
    {
      ScopedTraceAttach attach(trace.get());
      TraceSpan span("work");
    }
    ids.push_back(trace->id());
    tracer.Retire(std::move(trace));
  }
  const int64_t dropped_before = dropped->value();
  EXPECT_EQ(tracer.Find(ids[0]), nullptr);
  EXPECT_EQ(tracer.Find(ids[1]), nullptr);
  EXPECT_NE(tracer.Find(ids[2]), nullptr);
  EXPECT_NE(tracer.Find(ids[3]), nullptr);

  // Shrinking evicts immediately and counts the evicted trace's spans.
  tracer.SetRingCapacity(1);
  EXPECT_EQ(tracer.Find(ids[2]), nullptr);
  EXPECT_GE(dropped->value(), dropped_before + 1);

  tracer.SetRingCapacity(original);
}

}  // namespace
}  // namespace rfv
