// Session: per-session options isolation, the prepared statement of
// record, last_error bookkeeping, and concurrent sessions executing
// against one Database.

#include "db/session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "db/database.h"
#include "test_util.h"

namespace rfv {
namespace {

using testutil::MustExecute;

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(db_, "CREATE TABLE seq (pos INTEGER, val INTEGER)");
    MustExecute(db_, "INSERT INTO seq VALUES (1, 10), (2, 20), (3, 30)");
  }

  Database db_;
};

TEST_F(SessionTest, IdsAreUniqueAndMonotone) {
  Session a(&db_);
  Session b(&db_);
  EXPECT_GT(a.id(), 0);
  EXPECT_GT(b.id(), a.id());
  EXPECT_EQ(a.database(), &db_);
}

TEST_F(SessionTest, ExecuteDelegatesToDatabase) {
  Session s(&db_);
  const Result<ResultSet> rs = s.Execute("SELECT pos, val FROM seq");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows().size(), 3u);
  EXPECT_EQ(s.statements_executed(), 1);
  EXPECT_TRUE(s.last_error().ok());
}

TEST_F(SessionTest, OptionsAreIsolatedPerSession) {
  Session a(&db_);
  Session b(&db_);
  ASSERT_TRUE(a.options().enable_view_rewrite);
  a.options().enable_view_rewrite = false;
  a.options().exec.use_batch_execution = true;
  // Neither the sibling session nor the engine defaults moved.
  EXPECT_TRUE(b.options().enable_view_rewrite);
  EXPECT_TRUE(db_.options().enable_view_rewrite);
}

TEST_F(SessionTest, SessionOptionsAffectOnlyThatSessionsQueries) {
  Session plain(&db_);
  Session batch(&db_);
  batch.options().exec.use_batch_execution = true;
  const Result<ResultSet> a = plain.Execute("SELECT val FROM seq");
  const Result<ResultSet> b = batch.Execute("SELECT val FROM seq");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->rows().size(), b->rows().size());
}

TEST_F(SessionTest, LastErrorRecordsFailure) {
  Session s(&db_);
  const Result<ResultSet> rs = s.Execute("SELECT nope FROM seq");
  ASSERT_FALSE(rs.ok());
  EXPECT_FALSE(s.last_error().ok());
  EXPECT_EQ(s.last_error().code(), rs.status().code());
  EXPECT_EQ(s.statements_executed(), 1);

  // A subsequent success clears it.
  ASSERT_TRUE(s.Execute("SELECT val FROM seq").ok());
  EXPECT_TRUE(s.last_error().ok());
  EXPECT_EQ(s.statements_executed(), 2);
}

TEST_F(SessionTest, PrepareValidatesAndStores) {
  Session s(&db_);
  ASSERT_FALSE(s.has_prepared());
  ASSERT_TRUE(s.Prepare("SELECT pos FROM seq").ok());
  EXPECT_TRUE(s.has_prepared());
  EXPECT_EQ(s.prepared_sql(), "SELECT pos FROM seq");

  const Result<ResultSet> rs = s.ExecutePrepared();
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows().size(), 3u);
}

TEST_F(SessionTest, PrepareRejectsGarbageAndKeepsOldStatement) {
  Session s(&db_);
  ASSERT_TRUE(s.Prepare("SELECT pos FROM seq").ok());
  const Status bad = s.Prepare("SELEKT pos FROM");
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(s.last_error().ok());
  // The statement of record survives a failed re-prepare.
  EXPECT_TRUE(s.has_prepared());
  EXPECT_EQ(s.prepared_sql(), "SELECT pos FROM seq");
}

TEST_F(SessionTest, ExecutePreparedWithoutPrepareIsInvalidArgument) {
  Session s(&db_);
  const Result<ResultSet> rs = s.ExecutePrepared();
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SessionTest, ConcurrentSessionsShareOneDatabase) {
  constexpr int kSessions = 8;
  constexpr int kQueriesEach = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([this, &failures] {
      Session s(&db_);
      for (int q = 0; q < kQueriesEach; ++q) {
        const Result<ResultSet> rs = s.Execute("SELECT pos, val FROM seq");
        if (!rs.ok() || rs->rows().size() != 3u) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace rfv
