// Thread-safety of the introspection paths under concurrent Execute:
// the QueryLog ring, the Tracer retired ring, and the ViewManager
// maintenance counters are each hammered by writer threads (executing
// statements) while reader threads consume the introspection surface.
// The assertions are deliberately coarse — counts, no crashes, no torn
// reads — because the real checker here is TSan: the CI tsan leg runs
// this binary and fails on any data race these interleavings expose.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/trace.h"
#include "db/database.h"
#include "db/session.h"
#include "test_util.h"

namespace rfv {
namespace {

using testutil::MustExecute;

TEST(IntrospectionConcurrencyTest, QueryLogRingUnderConcurrentExecute) {
  Database db;
  testutil::CreateSeqTable(db, 16);
  constexpr int kWriters = 4;
  constexpr int kQueriesEach = 40;

  std::atomic<bool> stop{false};
  // Readers: snapshot + JSONL export + capacity churn, all racing the
  // appends from Execute's event finalization.
  std::thread snapshotter([&db, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::vector<QueryEvent> events = db.query_log()->Snapshot();
      for (const QueryEvent& e : events) ASSERT_FALSE(e.kind.empty());
      (void)db.WorkloadJsonl();
    }
  });
  std::thread resizer([&db, &stop] {
    size_t cap = 8;
    while (!stop.load(std::memory_order_relaxed)) {
      db.query_log()->SetCapacity(cap);
      cap = cap == 8 ? 64 : 8;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&db] {
      Session s(&db);
      for (int q = 0; q < kQueriesEach; ++q) {
        ASSERT_TRUE(s.Execute("SELECT pos, val FROM seq").ok());
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true);
  snapshotter.join();
  resizer.join();

  // Every Execute appended exactly one event (plus the 2 setup DDL/DML).
  EXPECT_EQ(db.query_log()->total_appended(),
            static_cast<int64_t>(kWriters) * kQueriesEach + 2);
}

TEST(IntrospectionConcurrencyTest, TracerRetiredRingUnderConcurrentExecute) {
  Database db;
  testutil::CreateSeqTable(db, 16);
  constexpr int kWriters = 4;
  constexpr int kQueriesEach = 25;

  std::atomic<bool> stop{false};
  std::thread reader([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const auto& trace : Tracer::Global().Retired()) {
        for (const TraceEvent& e : trace->events()) {
          ASSERT_FALSE(e.name.empty());
        }
      }
      const auto latest = Tracer::Global().Latest();
      if (latest != nullptr) (void)latest->ToChromeJson();
    }
  });
  std::thread resizer([&stop] {
    size_t cap = 4;
    while (!stop.load(std::memory_order_relaxed)) {
      Tracer::Global().SetRingCapacity(cap);
      cap = cap == 4 ? 32 : 4;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&db] {
      Session s(&db);
      s.options().enable_tracing = true;  // every query retires a trace
      for (int q = 0; q < kQueriesEach; ++q) {
        ASSERT_TRUE(s.Execute("SELECT pos, val FROM seq").ok());
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true);
  reader.join();
  resizer.join();
  Tracer::Global().SetRingCapacity(Tracer::kDefaultRingCapacity);
}

TEST(IntrospectionConcurrencyTest, MaintenanceCountersUnderConcurrentReads) {
  Database db;
  testutil::CreateSeqTable(db, 64);
  MustExecute(db,
              "CREATE MATERIALIZED VIEW v AS SELECT pos, SUM(val) OVER "
              "(ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) "
              "FROM seq");
  constexpr int kRefreshes = 30;

  std::atomic<bool> stop{false};
  // Readers: the raw counter accessor and the SQL introspection view,
  // racing RefreshView's counter bumps and content rewrites.
  std::thread counter_reader([&db, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const ViewMaintenanceCounters counters =
          db.view_manager()->MaintenanceCounters("v");
      ASSERT_GE(counters.full_refreshes, 0);
      ASSERT_GE(counters.rows_written, 0);
    }
  });
  std::thread sql_reader([&db, &stop] {
    Session s(&db);
    while (!stop.load(std::memory_order_relaxed)) {
      const Result<ResultSet> rs = s.Execute(
          "SELECT view_name, content_rows, full_refreshes, "
          "maintenance_rows FROM rfv_system.views");
      ASSERT_TRUE(rs.ok()) << rs.status().ToString();
      ASSERT_EQ(rs->rows().size(), 1u);
    }
  });

  std::thread refresher([&db] {
    for (int i = 0; i < kRefreshes; ++i) {
      ASSERT_TRUE(db.view_manager()->RefreshView("v").ok());
    }
  });
  refresher.join();
  stop.store(true);
  counter_reader.join();
  sql_reader.join();

  const ViewMaintenanceCounters counters =
      db.view_manager()->MaintenanceCounters("v");
  EXPECT_GE(counters.full_refreshes, kRefreshes);
}

}  // namespace
}  // namespace rfv
