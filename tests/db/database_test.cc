#include "db/database.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace rfv {
namespace {

using testutil::MustExecute;

TEST(DatabaseTest, CreateTableAndInsert) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER, b DOUBLE, c VARCHAR)");
  const ResultSet rs =
      MustExecute(db, "INSERT INTO t VALUES (1, 2.5, 'x'), (2, NULL, 'y')");
  EXPECT_EQ(rs.affected(), 2);
  EXPECT_EQ(MustExecute(db, "SELECT COUNT(*) FROM t").at(0, 0),
            Value::Int(2));
}

TEST(DatabaseTest, InsertWithColumnList) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER, b DOUBLE)");
  MustExecute(db, "INSERT INTO t (b, a) VALUES (1.5, 7)");
  const ResultSet rs = MustExecute(db, "SELECT a, b FROM t");
  EXPECT_EQ(rs.at(0, 0), Value::Int(7));
  EXPECT_EQ(rs.at(0, 1), Value::Double(1.5));
}

TEST(DatabaseTest, InsertArityMismatchRejected) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER, b DOUBLE)");
  EXPECT_EQ(db.Execute("INSERT INTO t (a) VALUES (1, 2)").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, InsertComputedConstants) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER)");
  MustExecute(db, "INSERT INTO t VALUES (2 + 3 * 4)");
  EXPECT_EQ(MustExecute(db, "SELECT a FROM t").at(0, 0), Value::Int(14));
}

TEST(DatabaseTest, PrimaryKeyCreatesIndex) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER PRIMARY KEY, b DOUBLE)");
  Result<Table*> table = db.catalog()->GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE((*table)->HasIndexOnColumn(0));
}

TEST(DatabaseTest, CreateIndexStatement) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER, b DOUBLE)");
  MustExecute(db, "CREATE INDEX bidx ON t (b)");
  Result<Table*> table = db.catalog()->GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE((*table)->HasIndexOnColumn(1));
}

TEST(DatabaseTest, UpdateWithWhere) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER, b INTEGER)");
  MustExecute(db, "INSERT INTO t VALUES (1, 0), (2, 0), (3, 0)");
  const ResultSet rs =
      MustExecute(db, "UPDATE t SET b = a * 10 WHERE a >= 2");
  EXPECT_EQ(rs.affected(), 2);
  EXPECT_EQ(MustExecute(db, "SELECT SUM(b) FROM t").at(0, 0), Value::Int(50));
}

TEST(DatabaseTest, SelfReferencingUpdate) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER)");
  MustExecute(db, "INSERT INTO t VALUES (1), (2)");
  MustExecute(db, "UPDATE t SET a = a + 1");
  const ResultSet rs = MustExecute(db, "SELECT a FROM t ORDER BY a");
  EXPECT_EQ(rs.at(0, 0), Value::Int(2));
  EXPECT_EQ(rs.at(1, 0), Value::Int(3));
}

TEST(DatabaseTest, DeleteWithWhere) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER)");
  MustExecute(db, "INSERT INTO t VALUES (1), (2), (3), (4)");
  const ResultSet rs = MustExecute(db, "DELETE FROM t WHERE MOD(a, 2) = 0");
  EXPECT_EQ(rs.affected(), 2);
  EXPECT_EQ(MustExecute(db, "SELECT COUNT(*) FROM t").at(0, 0),
            Value::Int(2));
}

TEST(DatabaseTest, DeleteAll) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER)");
  MustExecute(db, "INSERT INTO t VALUES (1), (2)");
  MustExecute(db, "DELETE FROM t");
  EXPECT_EQ(MustExecute(db, "SELECT COUNT(*) FROM t").at(0, 0),
            Value::Int(0));
}

TEST(DatabaseTest, DropTable) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER)");
  MustExecute(db, "DROP TABLE t");
  EXPECT_EQ(db.Execute("SELECT a FROM t").status().code(),
            StatusCode::kNotFound);
}

TEST(DatabaseTest, DropViewUnregistersRewrite) {
  Database db;
  testutil::CreateSeqTable(db, 20);
  MustExecute(db,
              "CREATE MATERIALIZED VIEW v AS SELECT pos, SUM(val) OVER "
              "(ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) "
              "FROM seq");
  MustExecute(db, "DROP TABLE v");
  const ResultSet rs = MustExecute(
      db,
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING "
      "AND 1 FOLLOWING) FROM seq ORDER BY pos");
  EXPECT_TRUE(rs.rewrite_method().empty());
}

TEST(DatabaseTest, NonMaterializedViewRejected) {
  Database db;
  testutil::CreateSeqTable(db, 5);
  EXPECT_EQ(db.Execute("CREATE VIEW v AS SELECT pos FROM seq")
                .status()
                .code(),
            StatusCode::kNotSupported);
}

TEST(DatabaseTest, GenericMaterializedViewSnapshots) {
  Database db;
  testutil::CreateSeqTable(db, 5);
  MustExecute(db,
              "CREATE MATERIALIZED VIEW top AS SELECT pos, val FROM seq "
              "WHERE val > 0");
  const ResultSet rs = MustExecute(db, "SELECT COUNT(*) FROM top");
  EXPECT_GT(rs.at(0, 0).AsInt(), 0);
}

TEST(DatabaseTest, ExecuteScriptRunsAll) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (a INTEGER);"
                               "INSERT INTO t VALUES (1), (2);"
                               "UPDATE t SET a = a * 10;")
                  .ok());
  EXPECT_EQ(MustExecute(db, "SELECT SUM(a) FROM t").at(0, 0), Value::Int(30));
}

TEST(DatabaseTest, ExecuteScriptStopsOnError) {
  Database db;
  const Status s = db.ExecuteScript(
      "CREATE TABLE t (a INTEGER); INSERT INTO missing VALUES (1);");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_TRUE(db.catalog()->HasTable("t"));  // first statement ran
}

TEST(DatabaseTest, ExplainRendersPlan) {
  Database db;
  testutil::CreateSeqTable(db, 3);
  const Result<std::string> plan = db.Explain(
      "SELECT s1.pos FROM seq s1, seq s2 WHERE s1.pos = s2.pos");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("InnerJoin"), std::string::npos);
  EXPECT_NE(plan->find("Scan(seq"), std::string::npos);
}

TEST(DatabaseTest, ParseErrorsSurface) {
  Database db;
  EXPECT_EQ(db.Execute("SELEC 1").status().code(), StatusCode::kParseError);
  EXPECT_EQ(db.Execute("").status().code(), StatusCode::kParseError);
}

TEST(DatabaseTest, ResultSetHelpers) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER, b VARCHAR)");
  MustExecute(db, "INSERT INTO t VALUES (1, 'x')");
  const ResultSet rs = MustExecute(db, "SELECT a AS num, b AS name FROM t");
  EXPECT_EQ(rs.ColumnIndex("num"), 0);
  EXPECT_EQ(rs.ColumnIndex("NAME"), 1);
  EXPECT_EQ(rs.ColumnIndex("missing"), -1);
  EXPECT_NE(rs.ToString().find("num"), std::string::npos);
}

TEST(DatabaseTest, SelectDistinct) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER, b VARCHAR)");
  MustExecute(db,
              "INSERT INTO t VALUES (1, 'x'), (1, 'x'), (1, 'y'), (2, 'x'), "
              "(NULL, 'x'), (NULL, 'x')");
  EXPECT_EQ(MustExecute(db, "SELECT DISTINCT a, b FROM t").NumRows(), 4u);
  EXPECT_EQ(MustExecute(db, "SELECT DISTINCT a FROM t").NumRows(), 3u);
  // DISTINCT composes with ORDER BY and expressions.
  const ResultSet rs =
      MustExecute(db, "SELECT DISTINCT a * 10 AS x FROM t ORDER BY x");
  ASSERT_EQ(rs.NumRows(), 3u);
  EXPECT_TRUE(rs.at(0, 0).is_null());
  EXPECT_EQ(rs.at(1, 0), Value::Int(10));
}

TEST(DatabaseTest, PaperIntroductionQueryEndToEnd) {
  Database db;
  MustExecute(db,
              "CREATE TABLE l_locations (l_locid INTEGER PRIMARY KEY, "
              "l_city VARCHAR, l_region VARCHAR)");
  MustExecute(db,
              "INSERT INTO l_locations VALUES (1, 'Erlangen', 'Franconia'), "
              "(2, 'Munich', 'Bavaria')");
  MustExecute(db,
              "CREATE TABLE c_transactions (c_custid INTEGER, c_date "
              "INTEGER, c_locid INTEGER, c_transaction DOUBLE)");
  MustExecute(db,
              "INSERT INTO c_transactions VALUES "
              "(4711, 20010105, 1, 10), (4711, 20010110, 2, 20), "
              "(4711, 20010120, 1, 30), (4711, 20010203, 2, 40), "
              "(4711, 20010215, 1, 50), (9999, 20010101, 1, 999)");
  const ResultSet rs = MustExecute(
      db,
      "SELECT c_date, c_transaction, "
      "SUM(c_transaction) OVER (ORDER BY c_date ROWS UNBOUNDED PRECEDING) "
      "AS cum_sum_total, "
      "SUM(c_transaction) OVER (PARTITION BY MONTH(c_date) ORDER BY c_date "
      "ROWS UNBOUNDED PRECEDING) AS cum_sum_month, "
      "AVG(c_transaction) OVER (PARTITION BY MONTH(c_date), l_region ORDER "
      "BY c_date ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS c_3mvg_avg, "
      "AVG(c_transaction) OVER (ORDER BY c_date ROWS BETWEEN CURRENT ROW "
      "AND 6 FOLLOWING) AS c_7mvg_avg "
      "FROM c_transactions, l_locations "
      "WHERE c_locid = l_locid AND c_custid = 4711 ORDER BY c_date");
  ASSERT_EQ(rs.NumRows(), 5u);
  // Overall cumulative: 10, 30, 60, 100, 150.
  EXPECT_DOUBLE_EQ(rs.at(4, 2).ToDouble(), 150.0);
  // Monthly cumulative restarts in February: 40, 90.
  EXPECT_DOUBLE_EQ(rs.at(3, 3).ToDouble(), 40.0);
  EXPECT_DOUBLE_EQ(rs.at(4, 3).ToDouble(), 90.0);
  // Reporting functions do not shrink the data volume: one output per
  // input (paper §1).
  EXPECT_EQ(rs.NumRows(), 5u);
}

}  // namespace
}  // namespace rfv
