// The serving-layer stress battery: N reader sessions scanning the base
// table and a materialized view in all three pull styles (row-at-a-time,
// RowBatch, vectorized) while a writer session appends and updates the
// base table and refreshes the view. The acceptance contract of the
// snapshot scheme:
//
//   * no reader ever errors (the old mutation_epoch abort is gone);
//   * every reader-observed row count corresponds to SOME committed
//     statement — appends land in multiples of kRowsPerInsert, so a
//     torn (mid-statement) snapshot would show a stray remainder;
//   * per-statement atomicity of updates — a multi-row UPDATE is either
//     fully visible or not at all, never half-applied.
//
// Runs in tier-1, and the CI tsan/asan legs run it with the race and
// lifetime checkers on — that is where the real verification happens.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "db/session.h"
#include "test_util.h"

namespace rfv {
namespace {

using testutil::MustExecute;

constexpr int kInitialRows = 1100;  // spans two snapshot chunks
constexpr int kRowsPerInsert = 7;
constexpr int kWriterStatements = 60;
constexpr int kReaderThreads = 3;  // one per pull style

enum class PullStyle { kRow, kBatch, kVector };

void ConfigurePullStyle(Session* session, PullStyle style) {
  switch (style) {
    case PullStyle::kRow:
      session->options().exec.use_vectorized_execution = false;
      session->options().exec.use_batch_execution = false;
      break;
    case PullStyle::kBatch:
      session->options().exec.use_vectorized_execution = false;
      session->options().exec.use_batch_execution = true;
      break;
    case PullStyle::kVector:
      session->options().exec.use_vectorized_execution = true;
      break;
  }
}

class ServeStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testutil::CreateSeqTable(db_, kInitialRows);
    // Uniform band the writer's multi-row UPDATE will repaint; readers
    // assert they never see a half-painted band.
    MustExecute(db_, "UPDATE seq SET val = 0 WHERE pos <= 50");
    MustExecute(db_,
                "CREATE MATERIALIZED VIEW v AS SELECT pos, SUM(val) OVER "
                "(ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) "
                "FROM seq");
    Session setup(&db_);
    const Result<ResultSet> base = setup.Execute("SELECT pos FROM seq");
    const Result<ResultSet> view = setup.Execute("SELECT pos FROM v");
    ASSERT_TRUE(base.ok());
    ASSERT_TRUE(view.ok());
    base_initial_ = base->rows().size();
    // The view's content tracks the base it was refreshed against with a
    // constant row offset (header/trailer padding); remember it so view
    // counts can be mapped back to a base epoch.
    view_offset_ = static_cast<long>(view->rows().size()) -
                   static_cast<long>(base_initial_);
  }

  /// next_pos for the writer's INSERT batches.
  int64_t next_pos_ = kInitialRows + 1;
  size_t base_initial_ = 0;
  long view_offset_ = 0;
  Database db_;
};

TEST_F(ServeStressTest, ReadersSeeConsistentSnapshotsUnderWrites) {
  std::atomic<bool> writer_done{false};
  std::atomic<int> reader_failures{0};

  const auto reader = [this, &writer_done, &reader_failures](PullStyle style) {
    Session session(&db_);
    ConfigurePullStyle(&session, style);
    // Rewrites would answer from the view when derivable; this reader
    // checks the base-scan path deterministically.
    session.options().enable_view_rewrite = false;
    while (!writer_done.load(std::memory_order_relaxed)) {
      // 1. Base count: must be initial + k·kRowsPerInsert for whole k.
      const Result<ResultSet> base = session.Execute("SELECT pos FROM seq");
      if (!base.ok()) {
        ADD_FAILURE() << "base scan failed: " << base.status().ToString();
        reader_failures.fetch_add(1);
        break;
      }
      const size_t count = base->rows().size();
      if (count < base_initial_ ||
          (count - base_initial_) % kRowsPerInsert != 0) {
        ADD_FAILURE() << "torn base snapshot: " << count << " rows";
        reader_failures.fetch_add(1);
        break;
      }
      // 2. Update band: fully painted with one generation or untouched.
      const Result<ResultSet> band =
          session.Execute("SELECT val FROM seq WHERE pos <= 50");
      if (!band.ok() || band->rows().size() != 50u) {
        ADD_FAILURE() << "band scan failed";
        reader_failures.fetch_add(1);
        break;
      }
      const Value& first = band->rows().front()[0];
      for (const Row& row : band->rows()) {
        if (!(row[0] == first)) {
          ADD_FAILURE() << "torn UPDATE: mixed band generations";
          reader_failures.fetch_add(1);
          return;
        }
      }
      // 3. View content: count maps to a refreshed base epoch.
      const Result<ResultSet> view = session.Execute("SELECT pos FROM v");
      if (!view.ok()) {
        ADD_FAILURE() << "view scan failed: " << view.status().ToString();
        reader_failures.fetch_add(1);
        break;
      }
      const long view_base =
          static_cast<long>(view->rows().size()) - view_offset_;
      if (view_base < static_cast<long>(base_initial_) ||
          (view_base - static_cast<long>(base_initial_)) % kRowsPerInsert !=
              0) {
        ADD_FAILURE() << "torn view snapshot: " << view->rows().size()
                      << " rows";
        reader_failures.fetch_add(1);
        break;
      }
    }
  };

  std::vector<std::thread> readers;
  readers.reserve(kReaderThreads);
  const PullStyle styles[] = {PullStyle::kRow, PullStyle::kBatch,
                              PullStyle::kVector};
  for (int r = 0; r < kReaderThreads; ++r) {
    readers.emplace_back(reader, styles[r % 3]);
  }

  // The writer: append a batch, repaint the band, refresh the view —
  // all through the SQL front door so the full admission + write-mutex
  // + WriteGuard path is exercised.
  Session writer(&db_);
  for (int i = 0; i < kWriterStatements; ++i) {
    switch (i % 3) {
      case 0: {
        std::string insert = "INSERT INTO seq VALUES ";
        for (int r = 0; r < kRowsPerInsert; ++r) {
          if (r > 0) insert += ", ";
          insert += "(" + std::to_string(next_pos_++) + ", 1)";
        }
        const Result<ResultSet> rs = writer.Execute(insert);
        ASSERT_TRUE(rs.ok()) << rs.status().ToString();
        break;
      }
      case 1: {
        const Result<ResultSet> rs = writer.Execute(
            "UPDATE seq SET val = " + std::to_string(i) + " WHERE pos <= 50");
        ASSERT_TRUE(rs.ok()) << rs.status().ToString();
        break;
      }
      case 2: {
        const Status s = db_.view_manager()->RefreshView("v");
        ASSERT_TRUE(s.ok()) << s.ToString();
        break;
      }
    }
  }
  writer_done.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(reader_failures.load(), 0);

  // Final state sanity: all appends arrived.
  Session check(&db_);
  const Result<ResultSet> final_rows = check.Execute("SELECT pos FROM seq");
  ASSERT_TRUE(final_rows.ok());
  EXPECT_EQ(final_rows->rows().size(),
            base_initial_ + (kWriterStatements + 2) / 3 * kRowsPerInsert);
}

// Same battery against EXPLAIN ANALYZE (it executes the plan) plus
// concurrent DML on a second session — a cheap way to drive the
// operator-metrics collection path concurrently.
TEST_F(ServeStressTest, ExplainAnalyzeRacesDml) {
  std::atomic<bool> done{false};
  std::thread analyzer([this, &done] {
    Session s(&db_);
    while (!done.load(std::memory_order_relaxed)) {
      const Result<ResultSet> rs =
          s.Execute("EXPLAIN ANALYZE SELECT pos, val FROM seq");
      EXPECT_TRUE(rs.ok()) << rs.status().ToString();
    }
  });
  Session writer(&db_);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(writer
                    .Execute("INSERT INTO seq VALUES (" +
                             std::to_string(next_pos_++) + ", 1)")
                    .ok());
  }
  done.store(true);
  analyzer.join();
}

}  // namespace
}  // namespace rfv
