// ResultSet::metrics() invariants over join / sort / union plans, and
// the rollup-vs-tree rendering of repeated operators.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "db/database.h"
#include "test_util.h"

namespace rfv {
namespace {

using testutil::CreateSeqTable;
using testutil::MustExecute;

/// Sum of rows_out over the direct children of entries[i] (pre-order:
/// children are the following depth+1 entries before any depth <= d).
int64_t ChildrenRowsOut(const std::vector<OperatorMetricsEntry>& entries,
                        size_t i) {
  int64_t sum = 0;
  const int depth = entries[i].depth;
  for (size_t j = i + 1; j < entries.size(); ++j) {
    if (entries[j].depth <= depth) break;
    if (entries[j].depth == depth + 1) sum += entries[j].metrics.rows_out;
  }
  return sum;
}

int FindOperator(const std::vector<OperatorMetricsEntry>& entries,
                 const std::string& name_substr, size_t from = 0) {
  for (size_t i = from; i < entries.size(); ++i) {
    if (entries[i].name.find(name_substr) != std::string::npos) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

TEST(ResultMetricsTest, JoinRowsInEqualsSumOfChildrenRowsOut) {
  Database db;
  MustExecute(db, "CREATE TABLE a (x INTEGER)");
  MustExecute(db, "CREATE TABLE b (y INTEGER)");
  MustExecute(db, "INSERT INTO a VALUES (1), (2), (3)");
  MustExecute(db, "INSERT INTO b VALUES (2), (3), (4), (5)");
  const ResultSet rs =
      MustExecute(db, "SELECT x, y FROM a, b WHERE x = y");
  EXPECT_EQ(rs.NumRows(), 2u);
  const std::vector<OperatorMetricsEntry>& entries = rs.metrics();
  const int join = FindOperator(entries, "join");
  ASSERT_GE(join, 0) << rs.MetricsToString();
  // The join consumed exactly what its two inputs produced: 3 + 4 rows.
  EXPECT_EQ(entries[join].rows_in, 7);
  EXPECT_EQ(entries[join].rows_in,
            ChildrenRowsOut(entries, static_cast<size_t>(join)));
}

TEST(ResultMetricsTest, EveryOperatorRowsInMatchesItsChildren) {
  Database db;
  CreateSeqTable(db, 64);
  const ResultSet rs = MustExecute(
      db,
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING "
      "AND 2 FOLLOWING) FROM seq WHERE pos > 4 ORDER BY pos");
  const std::vector<OperatorMetricsEntry>& entries = rs.metrics();
  ASSERT_FALSE(entries.empty());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].rows_in, ChildrenRowsOut(entries, i))
        << "operator " << entries[i].name << "\n"
        << rs.MetricsToString();
  }
  // The plan root produced the result cardinality.
  EXPECT_EQ(entries[0].metrics.rows_out,
            static_cast<int64_t>(rs.NumRows()));
}

TEST(ResultMetricsTest, SortPeakBufferedEqualsInputCardinality) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER)");
  std::string insert = "INSERT INTO t VALUES ";
  constexpr int kRows = 100;
  for (int i = 0; i < kRows; ++i) {
    insert += (i ? ", (" : "(") + std::to_string((i * 31) % kRows) + ")";
  }
  MustExecute(db, insert);
  const ResultSet rs = MustExecute(db, "SELECT a FROM t ORDER BY a");
  const int sort = FindOperator(rs.metrics(), "sort");
  ASSERT_GE(sort, 0) << rs.MetricsToString();
  // The sort buffers its whole input before emitting the first row.
  EXPECT_EQ(rs.metrics()[static_cast<size_t>(sort)].metrics
                .peak_buffered_rows,
            kRows);
  EXPECT_EQ(rs.metrics()[static_cast<size_t>(sort)].rows_in, kRows);
}

TEST(ResultMetricsTest, UnionAllRowsInSumsBothBranches) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER)");
  MustExecute(db, "INSERT INTO t VALUES (1), (2), (3)");
  const ResultSet rs = MustExecute(
      db, "SELECT a FROM t UNION ALL SELECT a FROM t WHERE a > 1");
  EXPECT_EQ(rs.NumRows(), 5u);
  const std::vector<OperatorMetricsEntry>& entries = rs.metrics();
  const int u = FindOperator(entries, "union");
  ASSERT_GE(u, 0) << rs.MetricsToString();
  EXPECT_EQ(entries[static_cast<size_t>(u)].rows_in, 5);
  EXPECT_EQ(entries[static_cast<size_t>(u)].rows_in,
            ChildrenRowsOut(entries, static_cast<size_t>(u)));
}

TEST(ResultMetricsTest, RollupMergesSelfJoinScansTreeKeepsThem) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER)");  // no index: plain scans
  MustExecute(db, "INSERT INTO t VALUES (1), (2), (3), (3)");
  const ResultSet rs = MustExecute(
      db, "SELECT t1.a FROM t t1, t t2 WHERE t1.a = t2.a");
  const std::vector<OperatorMetricsEntry>& entries = rs.metrics();
  // Both sides of the self join are separate per-instance entries.
  const int first_scan = FindOperator(entries, "scan");
  ASSERT_GE(first_scan, 0) << rs.MetricsToString();
  const int second_scan =
      FindOperator(entries, "scan", static_cast<size_t>(first_scan) + 1);
  ASSERT_GE(second_scan, 0) << rs.MetricsToString();

  const std::string rollup = FormatMetricsRollup(entries);
  const std::string tree = FormatMetricsTree(entries);
  // The rollup merges them into one "scan x2" line...
  EXPECT_NE(rollup.find("scan x2"), std::string::npos) << rollup;
  // ...while the tree keeps one annotated line per instance.
  size_t tree_scan_lines = 0;
  size_t at = 0;
  while ((at = tree.find("scan", at)) != std::string::npos) {
    ++tree_scan_lines;
    at += 4;
  }
  EXPECT_EQ(tree_scan_lines, 2u) << tree;
  // Tree connectors mark child nodes.
  EXPECT_NE(tree.find("└─"), std::string::npos) << tree;
}

TEST(ResultMetricsTest, DmlResultsCarryNoMetrics) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER)");
  const ResultSet rs = MustExecute(db, "INSERT INTO t VALUES (1)");
  EXPECT_TRUE(rs.metrics().empty());
  EXPECT_EQ(rs.MetricsToString(), "");
  EXPECT_EQ(rs.MetricsTreeToString(), "");
}

}  // namespace
}  // namespace rfv
