// EXPLAIN ANALYZE (SELECT + DML), EXPLAIN on DML statements, and the
// trace / phase-timing attachments on ResultSet.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/trace.h"
#include "db/database.h"
#include "test_util.h"

namespace rfv {
namespace {

using testutil::CreateSeqTable;
using testutil::IsValidJson;
using testutil::MustExecute;

/// Joins the one-column explain result back into multi-line text.
std::string ExplainText(const ResultSet& rs) {
  std::string out;
  for (size_t i = 0; i < rs.NumRows(); ++i) {
    out += rs.at(i, 0).AsString() + "\n";
  }
  return out;
}

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CreateSeqTable(db_, 50);
    MustExecute(db_,
                "CREATE MATERIALIZED VIEW matseq AS SELECT pos, SUM(val) "
                "OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 "
                "FOLLOWING) FROM seq");
  }

  Database db_;
};

TEST_F(ExplainAnalyzeTest, DerivableQueryShowsRewriteDecisionAndTree) {
  const std::string sql =
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING "
      "AND 1 FOLLOWING) FROM seq ORDER BY pos";
  const ResultSet rs = MustExecute(db_, "EXPLAIN ANALYZE " + sql);
  const std::string text = ExplainText(rs);
  EXPECT_NE(text.find("EXPLAIN ANALYZE (50 rows)"), std::string::npos)
      << text;
  EXPECT_NE(text.find("phases:"), std::string::npos) << text;
  EXPECT_NE(text.find("rewrite: direct using view matseq"),
            std::string::npos)
      << text;
  // Per-node metrics annotations are present.
  EXPECT_NE(text.find("rows_out="), std::string::npos) << text;
  // The measured plan rides along: its root produced the result rows.
  ASSERT_FALSE(rs.metrics().empty());
  EXPECT_EQ(rs.metrics()[0].metrics.rows_out, 50);
  EXPECT_EQ(rs.rewrite_method(), "direct");
  EXPECT_EQ(rs.rewrite_view(), "matseq");
}

TEST_F(ExplainAnalyzeTest, UnderivableQuerySaysRewriteNone) {
  const ResultSet rs = MustExecute(
      db_, "EXPLAIN ANALYZE SELECT pos FROM seq WHERE pos <= 10");
  const std::string text = ExplainText(rs);
  EXPECT_NE(text.find("EXPLAIN ANALYZE (10 rows)"), std::string::npos)
      << text;
  EXPECT_NE(text.find("rewrite: none"), std::string::npos) << text;
  ASSERT_FALSE(rs.metrics().empty());
  EXPECT_EQ(rs.metrics()[0].metrics.rows_out, 10);
}

TEST_F(ExplainAnalyzeTest, PlainExplainStillRendersLogicalPlan) {
  const ResultSet rs =
      MustExecute(db_, "EXPLAIN SELECT pos FROM seq WHERE pos <= 10");
  const std::string text = ExplainText(rs);
  // Logical plan rendering, not measured operators.
  EXPECT_EQ(text.find("rows_out="), std::string::npos) << text;
  EXPECT_EQ(text.find("EXPLAIN ANALYZE"), std::string::npos) << text;
  EXPECT_FALSE(text.empty());
}

TEST_F(ExplainAnalyzeTest, ExplainInsertRendersTargetAndArity) {
  const ResultSet rs = MustExecute(
      db_, "EXPLAIN INSERT INTO seq VALUES (51, 1.0), (52, 2.0)");
  const std::string text = ExplainText(rs);
  EXPECT_NE(text.find("insert into seq"), std::string::npos) << text;
  EXPECT_NE(text.find("rows: 2"), std::string::npos) << text;
  // EXPLAIN alone must not execute.
  EXPECT_EQ(MustExecute(db_, "SELECT COUNT(*) FROM seq").at(0, 0),
            Value::Int(50));
}

TEST_F(ExplainAnalyzeTest, ExplainUpdateShowsPredicateAndChosenIndex) {
  const ResultSet rs = MustExecute(
      db_, "EXPLAIN UPDATE seq SET val = 0 WHERE pos = 7");
  const std::string text = ExplainText(rs);
  EXPECT_NE(text.find("update seq"), std::string::npos) << text;
  EXPECT_NE(text.find("predicate:"), std::string::npos) << text;
  // pos has the primary-key index; the probe is reported by name.
  EXPECT_NE(text.find("index probe seq_pk_pos"), std::string::npos) << text;
  EXPECT_NE(text.find("assignments:"), std::string::npos) << text;
}

TEST_F(ExplainAnalyzeTest, ExplainDeleteWithoutSargableConjunctSaysSeqScan) {
  const ResultSet rs =
      MustExecute(db_, "EXPLAIN DELETE FROM seq WHERE val < 0");
  const std::string text = ExplainText(rs);
  EXPECT_NE(text.find("delete from seq"), std::string::npos) << text;
  EXPECT_NE(text.find("scan: seq scan"), std::string::npos) << text;
  // Nothing was deleted by EXPLAIN.
  EXPECT_EQ(MustExecute(db_, "SELECT COUNT(*) FROM seq").at(0, 0),
            Value::Int(50));
}

TEST_F(ExplainAnalyzeTest, ExplainAnalyzeDeleteExecutesAndReportsActual) {
  const ResultSet rs = MustExecute(
      db_, "EXPLAIN ANALYZE DELETE FROM seq WHERE pos BETWEEN 1 AND 5");
  const std::string text = ExplainText(rs);
  EXPECT_NE(text.find("index probe seq_pk_pos"), std::string::npos) << text;
  EXPECT_NE(text.find("actual: 5 rows affected"), std::string::npos)
      << text;
  EXPECT_EQ(MustExecute(db_, "SELECT COUNT(*) FROM seq").at(0, 0),
            Value::Int(45));
}

TEST_F(ExplainAnalyzeTest, IndexAssistedUpdateMatchesFullScanSemantics) {
  // The indexed path and the fallback path must touch the same rows.
  MustExecute(db_, "UPDATE seq SET val = 123 WHERE pos = 10 AND val < 999");
  EXPECT_EQ(MustExecute(db_, "SELECT val FROM seq WHERE pos = 10").at(0, 0),
            Value::Double(123));
  const ResultSet count =
      MustExecute(db_, "SELECT COUNT(*) FROM seq WHERE val = 123");
  EXPECT_EQ(count.at(0, 0), Value::Int(1));
}

TEST(ExplainUnsupportedTest, ExplainCreateTableIsRejected) {
  Database db;
  EXPECT_FALSE(db.Execute("EXPLAIN CREATE TABLE t (a INTEGER)").ok());
}

TEST(QueryTracingTest, DisabledByDefaultNoTraceAttached) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER)");
  const ResultSet rs = MustExecute(db, "SELECT a FROM t");
  EXPECT_EQ(rs.trace(), nullptr);
  EXPECT_EQ(rs.TraceJson(), "");
}

TEST(QueryTracingTest, EnabledTraceCoversLifecycleAndExportsJson) {
  Database db;
  db.options().enable_tracing = true;
  MustExecute(db, "CREATE TABLE t (a INTEGER)");
  MustExecute(db, "INSERT INTO t VALUES (1), (2), (3)");
  const ResultSet rs = MustExecute(db, "SELECT a FROM t WHERE a > 1");
  ASSERT_NE(rs.trace(), nullptr);
  const std::vector<TraceEvent> events = rs.trace()->events();
  ASSERT_FALSE(events.empty());
  auto has = [&events](const std::string& name) {
    for (const TraceEvent& e : events) {
      if (e.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("query"));
  EXPECT_TRUE(has("parse"));
  EXPECT_TRUE(has("bind"));
  EXPECT_TRUE(has("plan"));
  EXPECT_TRUE(has("exec.open"));
  EXPECT_TRUE(has("exec.drain"));
  EXPECT_TRUE(has("rewrite"));
  const std::string json = rs.TraceJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  // The retired trace is reachable through the global tracer too.
  EXPECT_NE(Tracer::Global().Find(rs.trace()->id()), nullptr);
}

TEST(QueryTracingTest, RewriteCandidateSpansCarryVerdicts) {
  Database db;
  db.options().enable_tracing = true;
  CreateSeqTable(db, 30);
  MustExecute(db,
              "CREATE MATERIALIZED VIEW v AS SELECT pos, SUM(val) OVER "
              "(ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) "
              "FROM seq");
  const ResultSet rs = MustExecute(
      db,
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING "
      "AND 1 FOLLOWING) FROM seq ORDER BY pos");
  EXPECT_EQ(rs.rewrite_method(), "direct");
  ASSERT_NE(rs.trace(), nullptr);
  bool found_candidate = false;
  for (const TraceEvent& e : rs.trace()->events()) {
    if (e.name != "rewrite.candidate") continue;
    found_candidate = true;
    bool has_view = false;
    bool has_verdict = false;
    for (const auto& [key, value] : e.args) {
      if (key == "view") has_view = value == "v";
      if (key == "verdict") {
        has_verdict = value.find("derivable") != std::string::npos;
      }
    }
    EXPECT_TRUE(has_view);
    EXPECT_TRUE(has_verdict);
  }
  EXPECT_TRUE(found_candidate);
}

TEST(QueryPhasesTest, SelectRecordsParseBindPlanExecute) {
  Database db;
  MustExecute(db, "CREATE TABLE t (a INTEGER)");
  MustExecute(db, "INSERT INTO t VALUES (1)");
  const ResultSet rs = MustExecute(db, "SELECT a FROM t");
  std::vector<std::string> names;
  for (const auto& [phase, ns] : rs.phase_ns()) {
    names.push_back(phase);
    EXPECT_GE(ns, 0);
  }
  // "rewrite" appears too (view rewriting is on by default) between
  // parse and bind.
  const std::vector<std::string> expected = {"parse", "rewrite", "bind",
                                             "plan", "execute"};
  EXPECT_EQ(names, expected);
  EXPECT_NE(rs.PhasesToString().find("phases: parse="), std::string::npos);
}

TEST(QueryPhasesTest, RewriteHitPutsRewriteFirstAfterParse) {
  Database db;
  CreateSeqTable(db, 20);
  MustExecute(db,
              "CREATE MATERIALIZED VIEW v AS SELECT pos, SUM(val) OVER "
              "(ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) "
              "FROM seq");
  const ResultSet rs = MustExecute(
      db,
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING "
      "AND 1 FOLLOWING) FROM seq ORDER BY pos");
  EXPECT_EQ(rs.rewrite_method(), "direct");
  ASSERT_GE(rs.phase_ns().size(), 2u);
  EXPECT_EQ(rs.phase_ns()[0].first, "parse");
  EXPECT_EQ(rs.phase_ns()[1].first, "rewrite");
}

}  // namespace
}  // namespace rfv
