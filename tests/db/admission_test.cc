// AdmissionController: cap enforcement, FIFO-ish queueing, ticket RAII,
// cap raises waking parked callers, and the gauge/counter wiring.

#include "db/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace rfv {
namespace {

TEST(AdmissionTest, AdmitsUpToCapWithoutBlocking) {
  AdmissionController admission(2);
  AdmissionController::Ticket a = admission.Admit();
  AdmissionController::Ticket b = admission.Admit();
  EXPECT_EQ(admission.running(), 2);
  EXPECT_EQ(admission.queue_depth(), 0);
}

TEST(AdmissionTest, ReleaseFreesSlot) {
  AdmissionController admission(1);
  {
    AdmissionController::Ticket t = admission.Admit();
    EXPECT_EQ(admission.running(), 1);
  }
  EXPECT_EQ(admission.running(), 0);
}

TEST(AdmissionTest, ExplicitReleaseIsIdempotent) {
  AdmissionController admission(1);
  AdmissionController::Ticket t = admission.Admit();
  t.Release();
  EXPECT_EQ(admission.running(), 0);
  t.Release();  // no-op, not a double decrement
  EXPECT_EQ(admission.running(), 0);
}

TEST(AdmissionTest, MoveTransfersSlot) {
  AdmissionController admission(1);
  AdmissionController::Ticket a = admission.Admit();
  AdmissionController::Ticket b = std::move(a);
  EXPECT_EQ(admission.running(), 1);
  b.Release();
  EXPECT_EQ(admission.running(), 0);
}

TEST(AdmissionTest, CallerBeyondCapQueuesUntilSlotFrees) {
  AdmissionController admission(1);
  AdmissionController::Ticket first = admission.Admit();

  std::atomic<bool> admitted{false};
  std::thread waiter([&admission, &admitted] {
    AdmissionController::Ticket t = admission.Admit();
    admitted.store(true);
  });

  // The waiter must park, not sneak through.
  while (admission.queue_depth() == 0) std::this_thread::yield();
  EXPECT_FALSE(admitted.load());
  EXPECT_EQ(admission.running(), 1);

  first.Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(admission.running(), 0);
  EXPECT_EQ(admission.queue_depth(), 0);
}

TEST(AdmissionTest, RaisingCapWakesQueuedCallers) {
  AdmissionController admission(1);
  AdmissionController::Ticket first = admission.Admit();

  std::atomic<int> admitted{0};
  std::atomic<bool> release{false};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 2; ++i) {
    waiters.emplace_back([&admission, &admitted, &release] {
      AdmissionController::Ticket t = admission.Admit();
      admitted.fetch_add(1);
      // Hold the slot until the main thread saw all three running at
      // once; a waiter must not decide the rendezvous happened itself —
      // its ticket release would race the other waiter's observation.
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (admission.queue_depth() < 2) std::this_thread::yield();

  admission.set_max_concurrent(3);
  // `first` is still held here, so running()==3 means both queued
  // waiters were woken and admitted by the cap raise alone.
  while (admission.running() < 3) std::this_thread::yield();
  release.store(true);
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(admitted.load(), 2);
  EXPECT_EQ(admission.max_concurrent(), 3);
}

TEST(AdmissionTest, CapClampsToOne) {
  AdmissionController admission(4);
  admission.set_max_concurrent(0);
  EXPECT_EQ(admission.max_concurrent(), 1);
}

TEST(AdmissionTest, NeverExceedsCapUnderContention) {
  constexpr int kCap = 3;
  constexpr int kThreads = 12;
  constexpr int kRoundsEach = 50;
  AdmissionController admission(kCap);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&admission, &inside, &peak] {
      for (int r = 0; r < kRoundsEach; ++r) {
        AdmissionController::Ticket t = admission.Admit();
        const int now = inside.fetch_add(1) + 1;
        int prev = peak.load();
        while (now > prev && !peak.compare_exchange_weak(prev, now)) {
        }
        std::this_thread::yield();
        inside.fetch_sub(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(peak.load(), kCap);
  EXPECT_GE(peak.load(), 1);
  EXPECT_EQ(admission.running(), 0);
  EXPECT_EQ(admission.queue_depth(), 0);
}

}  // namespace
}  // namespace rfv
