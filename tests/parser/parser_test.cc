#include "parser/parser.h"

#include <gtest/gtest.h>

namespace rfv {
namespace {

Statement MustParse(const std::string& sql) {
  Result<Statement> r = Parser::ParseStatement(sql);
  EXPECT_TRUE(r.ok()) << sql << "\n  " << r.status().ToString();
  return r.ok() ? std::move(r).value() : Statement{};
}

AstExprPtr MustParseExpr(const std::string& sql) {
  Result<AstExprPtr> r = Parser::ParseExpression(sql);
  EXPECT_TRUE(r.ok()) << sql << "\n  " << r.status().ToString();
  return r.ok() ? std::move(r).value() : nullptr;
}

TEST(ParserTest, MinimalSelect) {
  const Statement stmt = MustParse("SELECT a FROM t");
  ASSERT_EQ(stmt.kind, Statement::Kind::kSelect);
  ASSERT_EQ(stmt.select->select_list.size(), 1u);
  EXPECT_EQ(stmt.select->from->table_name, "t");
}

TEST(ParserTest, SelectListAliases) {
  const Statement stmt = MustParse("SELECT a AS x, b y, a + b FROM t");
  const auto& items = stmt.select->select_list;
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].alias, "x");
  EXPECT_EQ(items[1].alias, "y");
  EXPECT_TRUE(items[2].alias.empty());
}

TEST(ParserTest, StarAndQualifiedStar) {
  const Statement stmt = MustParse("SELECT *, s1.* FROM t s1");
  const auto& items = stmt.select->select_list;
  ASSERT_EQ(items.size(), 2u);
  EXPECT_TRUE(items[0].is_star);
  EXPECT_TRUE(items[0].star_qualifier.empty());
  EXPECT_TRUE(items[1].is_star);
  EXPECT_EQ(items[1].star_qualifier, "s1");
}

TEST(ParserTest, ExpressionPrecedence) {
  EXPECT_EQ(MustParseExpr("1 + 2 * 3")->ToString(), "(1 + (2 * 3))");
  EXPECT_EQ(MustParseExpr("(1 + 2) * 3")->ToString(), "((1 + 2) * 3)");
  EXPECT_EQ(MustParseExpr("a OR b AND c")->ToString(), "(a OR (b AND c))");
  EXPECT_EQ(MustParseExpr("NOT a = b")->ToString(), "NOT (a = b)");
}

TEST(ParserTest, ComparisonOperators) {
  EXPECT_EQ(MustParseExpr("a <> b")->ToString(), "(a <> b)");
  EXPECT_EQ(MustParseExpr("a <= b")->ToString(), "(a <= b)");
  EXPECT_EQ(MustParseExpr("a >= b")->ToString(), "(a >= b)");
}

TEST(ParserTest, BetweenInIsNull) {
  EXPECT_EQ(MustParseExpr("a BETWEEN 1 AND 5")->ToString(),
            "a BETWEEN 1 AND 5");
  EXPECT_EQ(MustParseExpr("a NOT BETWEEN 1 AND 5")->ToString(),
            "a NOT BETWEEN 1 AND 5");
  EXPECT_EQ(MustParseExpr("a IN (1, 2, 3)")->ToString(), "a IN (1, 2, 3)");
  EXPECT_EQ(MustParseExpr("a NOT IN (1)")->ToString(), "a NOT IN (1)");
  EXPECT_EQ(MustParseExpr("a IS NULL")->ToString(), "a IS NULL");
  EXPECT_EQ(MustParseExpr("a IS NOT NULL")->ToString(), "a IS NOT NULL");
}

TEST(ParserTest, CaseExpression) {
  const AstExprPtr e = MustParseExpr(
      "CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'many' END");
  ASSERT_EQ(e->kind, AstExprKind::kCase);
  EXPECT_TRUE(e->has_else);
  EXPECT_EQ(e->children.size(), 5u);
}

TEST(ParserTest, SimpleCaseRejected) {
  EXPECT_FALSE(Parser::ParseExpression("CASE a WHEN 1 THEN 2 END").ok());
}

TEST(ParserTest, FunctionCalls) {
  EXPECT_EQ(MustParseExpr("MOD(a, 4)")->ToString(), "MOD(a, 4)");
  EXPECT_EQ(MustParseExpr("COALESCE(val, 0)")->ToString(),
            "COALESCE(val, 0)");
  const AstExprPtr count_star = MustParseExpr("COUNT(*)");
  ASSERT_EQ(count_star->children.size(), 1u);
  EXPECT_EQ(count_star->children[0]->kind, AstExprKind::kStar);
}

TEST(ParserTest, PercentIsModulo) {
  const AstExprPtr e = MustParseExpr("a % 4");
  ASSERT_EQ(e->kind, AstExprKind::kBinary);
  EXPECT_EQ(e->binary_op, AstBinaryOp::kMod);
}

TEST(ParserTest, WindowFunctionFullSpec) {
  const Statement stmt = MustParse(
      "SELECT SUM(x) OVER (PARTITION BY a, b ORDER BY c DESC ROWS BETWEEN "
      "2 PRECEDING AND 3 FOLLOWING) FROM t");
  const AstExpr& call = *stmt.select->select_list[0].expr;
  ASSERT_NE(call.over, nullptr);
  EXPECT_EQ(call.over->partition_by.size(), 2u);
  ASSERT_EQ(call.over->order_by.size(), 1u);
  EXPECT_FALSE(call.over->order_by[0].ascending);
  ASSERT_TRUE(call.over->has_frame);
  EXPECT_EQ(call.over->frame_lo.kind, FrameBound::Kind::kPreceding);
  EXPECT_EQ(call.over->frame_lo.offset, 2);
  EXPECT_EQ(call.over->frame_hi.kind, FrameBound::Kind::kFollowing);
  EXPECT_EQ(call.over->frame_hi.offset, 3);
}

TEST(ParserTest, WindowFrameShorthand) {
  const Statement stmt = MustParse(
      "SELECT SUM(x) OVER (ORDER BY c ROWS UNBOUNDED PRECEDING) FROM t");
  const WindowSpecAst& over = *stmt.select->select_list[0].expr->over;
  ASSERT_TRUE(over.has_frame);
  EXPECT_EQ(over.frame_lo.kind, FrameBound::Kind::kUnboundedPreceding);
  EXPECT_EQ(over.frame_hi.kind, FrameBound::Kind::kCurrentRow);
}

TEST(ParserTest, WindowFrameCurrentRowToFollowing) {
  const Statement stmt = MustParse(
      "SELECT AVG(x) OVER (ORDER BY c ROWS BETWEEN CURRENT ROW AND 6 "
      "FOLLOWING) FROM t");
  const WindowSpecAst& over = *stmt.select->select_list[0].expr->over;
  EXPECT_EQ(over.frame_lo.kind, FrameBound::Kind::kCurrentRow);
  EXPECT_EQ(over.frame_hi.offset, 6);
}

TEST(ParserTest, JoinForms) {
  const Statement stmt = MustParse(
      "SELECT 1 FROM a JOIN b ON a.x = b.x LEFT OUTER JOIN c ON b.y = c.y");
  const TableRef& top = *stmt.select->from;
  ASSERT_EQ(top.kind, TableRef::Kind::kJoin);
  EXPECT_EQ(top.join_kind, TableRef::JoinKind::kLeftOuter);
  ASSERT_EQ(top.left->kind, TableRef::Kind::kJoin);
  EXPECT_EQ(top.left->join_kind, TableRef::JoinKind::kInner);
}

TEST(ParserTest, CommaJoinIsCross) {
  const Statement stmt = MustParse("SELECT 1 FROM a, b WHERE a.x = b.x");
  EXPECT_EQ(stmt.select->from->join_kind, TableRef::JoinKind::kCross);
  ASSERT_NE(stmt.select->where, nullptr);
}

TEST(ParserTest, DerivedTableRequiresAlias) {
  EXPECT_TRUE(Parser::ParseStatement(
                  "SELECT 1 FROM (SELECT a FROM t) sub").ok());
  EXPECT_FALSE(
      Parser::ParseStatement("SELECT 1 FROM (SELECT a FROM t)").ok());
}

TEST(ParserTest, GroupByHavingOrderLimit) {
  const Statement stmt = MustParse(
      "SELECT a, SUM(b) FROM t WHERE c > 0 GROUP BY a HAVING SUM(b) > 10 "
      "ORDER BY a DESC LIMIT 5");
  EXPECT_EQ(stmt.select->group_by.size(), 1u);
  ASSERT_NE(stmt.select->having, nullptr);
  ASSERT_EQ(stmt.select->order_by.size(), 1u);
  EXPECT_FALSE(stmt.select->order_by[0].ascending);
  EXPECT_EQ(stmt.select->limit, 5);
}

TEST(ParserTest, UnionAllChain) {
  const Statement stmt = MustParse(
      "SELECT a FROM t UNION ALL SELECT b FROM u UNION ALL SELECT c FROM v "
      "ORDER BY 1");
  ASSERT_NE(stmt.select->union_all_next, nullptr);
  ASSERT_NE(stmt.select->union_all_next->union_all_next, nullptr);
  EXPECT_EQ(stmt.select->order_by.size(), 1u);  // attaches to the head
}

TEST(ParserTest, PlainUnionRejected) {
  EXPECT_FALSE(
      Parser::ParseStatement("SELECT a FROM t UNION SELECT b FROM u").ok());
}

TEST(ParserTest, CreateTable) {
  const Statement stmt = MustParse(
      "CREATE TABLE seq (pos INTEGER PRIMARY KEY, val DOUBLE, name "
      "VARCHAR(30), flag BOOLEAN)");
  ASSERT_EQ(stmt.kind, Statement::Kind::kCreateTable);
  const CreateTableStmt& ct = *stmt.create_table;
  ASSERT_EQ(ct.columns.size(), 4u);
  EXPECT_TRUE(ct.columns[0].primary_key);
  EXPECT_EQ(ct.columns[0].type, DataType::kInt64);
  EXPECT_EQ(ct.columns[1].type, DataType::kDouble);
  EXPECT_EQ(ct.columns[2].type, DataType::kString);
  EXPECT_EQ(ct.columns[3].type, DataType::kBool);
}

TEST(ParserTest, CreateIndex) {
  const Statement stmt = MustParse("CREATE INDEX i ON t (pos)");
  ASSERT_EQ(stmt.kind, Statement::Kind::kCreateIndex);
  EXPECT_EQ(stmt.create_index->index_name, "i");
  EXPECT_EQ(stmt.create_index->column_name, "pos");
}

TEST(ParserTest, CreateMaterializedView) {
  const Statement stmt = MustParse(
      "CREATE MATERIALIZED VIEW v AS SELECT pos, SUM(val) OVER (ORDER BY "
      "pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) FROM seq");
  ASSERT_EQ(stmt.kind, Statement::Kind::kCreateView);
  EXPECT_TRUE(stmt.create_view->materialized);
  EXPECT_EQ(stmt.create_view->view_name, "v");
}

TEST(ParserTest, InsertRows) {
  const Statement stmt = MustParse(
      "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)");
  ASSERT_EQ(stmt.kind, Statement::Kind::kInsert);
  EXPECT_EQ(stmt.insert->columns.size(), 2u);
  EXPECT_EQ(stmt.insert->rows.size(), 2u);
}

TEST(ParserTest, UpdateAndDelete) {
  const Statement update =
      MustParse("UPDATE t SET a = a + 1, b = 0 WHERE c = 5");
  ASSERT_EQ(update.kind, Statement::Kind::kUpdate);
  EXPECT_EQ(update.update->assignments.size(), 2u);
  ASSERT_NE(update.update->where, nullptr);

  const Statement del = MustParse("DELETE FROM t WHERE a IS NULL");
  ASSERT_EQ(del.kind, Statement::Kind::kDelete);
}

TEST(ParserTest, DropTable) {
  EXPECT_EQ(MustParse("DROP TABLE t").kind, Statement::Kind::kDropTable);
}

TEST(ParserTest, ScriptParsing) {
  Result<std::vector<Statement>> r = Parser::ParseScript(
      "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);; SELECT a FROM t;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 3u);
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(Parser::ParseStatement("SELECT a FROM t garbage garbage").ok());
}

TEST(ParserTest, ErrorsCarryLocation) {
  const Result<Statement> r = Parser::ParseStatement("SELECT FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
}

TEST(ParserTest, NegativeNumbersAndUnaryMinus) {
  EXPECT_EQ(MustParseExpr("-a + 2")->ToString(), "(-a + 2)");
  EXPECT_EQ(MustParseExpr("3 - -2")->ToString(), "(3 - -2)");
}

TEST(ParserTest, RangeFrameParses) {
  const Statement stmt = MustParse(
      "SELECT SUM(x) OVER (ORDER BY c RANGE BETWEEN 3 PRECEDING AND 2 "
      "FOLLOWING) FROM t");
  const WindowSpecAst& over = *stmt.select->select_list[0].expr->over;
  ASSERT_TRUE(over.has_frame);
  EXPECT_TRUE(over.range_mode);
  EXPECT_EQ(over.frame_lo.offset, 3);
  EXPECT_EQ(over.frame_hi.offset, 2);
}

TEST(ParserTest, RangeShorthandParses) {
  const Statement stmt =
      MustParse("SELECT SUM(x) OVER (ORDER BY c RANGE 2 PRECEDING) FROM t");
  const WindowSpecAst& over = *stmt.select->select_list[0].expr->over;
  EXPECT_TRUE(over.range_mode);
  EXPECT_EQ(over.frame_hi.kind, FrameBound::Kind::kCurrentRow);
}

TEST(ParserTest, SelectDistinct) {
  EXPECT_TRUE(MustParse("SELECT DISTINCT a FROM t").select->distinct);
  EXPECT_FALSE(MustParse("SELECT a FROM t").select->distinct);
  EXPECT_FALSE(MustParse("SELECT ALL a FROM t").select->distinct);
}

TEST(ParserTest, ExplainStatement) {
  const Statement stmt = MustParse("EXPLAIN SELECT a FROM t");
  EXPECT_EQ(stmt.kind, Statement::Kind::kExplain);
  ASSERT_NE(stmt.select, nullptr);
  EXPECT_FALSE(Parser::ParseStatement("EXPLAIN DROP TABLE t").ok());
}

TEST(ParserTest, RankingFunctionCallsParse) {
  const Statement stmt = MustParse(
      "SELECT ROW_NUMBER() OVER (ORDER BY v DESC), RANK() OVER (ORDER BY "
      "v) FROM t");
  const AstExpr& rn = *stmt.select->select_list[0].expr;
  EXPECT_EQ(rn.function_name, "ROW_NUMBER");
  EXPECT_TRUE(rn.children.empty());
  ASSERT_NE(rn.over, nullptr);
}

TEST(ParserTest, PaperIntroductionQueryParses) {
  // The full query from the paper's §1 (syntax check).
  EXPECT_TRUE(Parser::ParseStatement(
                  "SELECT c_date, c_transaction, "
                  "SUM(c_transaction) OVER (ORDER BY c_date ROWS UNBOUNDED "
                  "PRECEDING) AS cum_sum_total, "
                  "SUM(c_transaction) OVER (PARTITION BY MONTH(c_date) "
                  "ORDER BY c_date ROWS UNBOUNDED PRECEDING) AS "
                  "cum_sum_month, "
                  "AVG(c_transaction) OVER (PARTITION BY MONTH(c_date), "
                  "l_region ORDER BY c_date ROWS BETWEEN 1 PRECEDING AND 1 "
                  "FOLLOWING) AS c_3mvg_avg, "
                  "AVG(c_transaction) OVER (ORDER BY c_date ROWS BETWEEN "
                  "CURRENT ROW AND 6 FOLLOWING) AS c_7mvg_avg "
                  "FROM c_transactions, l_locations "
                  "WHERE c_locid = l_locid AND c_custid = 4711")
                  .ok());
}

}  // namespace
}  // namespace rfv
