#include "parser/lexer.h"

#include <gtest/gtest.h>

namespace rfv {
namespace {

std::vector<Token> MustTokenize(const std::string& sql) {
  Result<std::vector<Token>> r = Tokenize(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : std::vector<Token>{};
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  const auto tokens = MustTokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, IdentifiersAndKeywords) {
  const auto tokens = MustTokenize("SELECT c_date FROM t_1");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "c_date");
  EXPECT_EQ(tokens[3].text, "t_1");
}

TEST(LexerTest, IntegerLiteral) {
  const auto tokens = MustTokenize("12345");
  EXPECT_EQ(tokens[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[0].int_value, 12345);
}

TEST(LexerTest, DoubleLiterals) {
  const auto tokens = MustTokenize("1.5 .25 2e3 1.5e-2");
  EXPECT_EQ(tokens[0].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[0].double_value, 1.5);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 0.25);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 2000.0);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, 0.015);
}

TEST(LexerTest, StringLiteralWithEscapedQuote) {
  const auto tokens = MustTokenize("'it''s'");
  ASSERT_EQ(tokens[0].type, TokenType::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringIsParseError) {
  const Result<std::vector<Token>> r = Tokenize("'oops");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, Operators) {
  const auto tokens = MustTokenize("= <> != < <= > >= + - * / % ( ) , . ;");
  const TokenType expected[] = {
      TokenType::kEq, TokenType::kNe, TokenType::kNe, TokenType::kLt,
      TokenType::kLe, TokenType::kGt, TokenType::kGe, TokenType::kPlus,
      TokenType::kMinus, TokenType::kStar, TokenType::kSlash,
      TokenType::kPercent, TokenType::kLParen, TokenType::kRParen,
      TokenType::kComma, TokenType::kDot, TokenType::kSemicolon};
  ASSERT_EQ(tokens.size(), std::size(expected) + 1);
  for (size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(tokens[i].type, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, LineCommentsSkipped) {
  const auto tokens = MustTokenize("SELECT -- the whole row\n1");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].type, TokenType::kIntLiteral);
}

TEST(LexerTest, CommentVersusMinus) {
  const auto tokens = MustTokenize("1 - 2");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].type, TokenType::kMinus);
}

TEST(LexerTest, LineAndColumnTracking) {
  const auto tokens = MustTokenize("a\n  b");
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[1].line, 2u);
  EXPECT_EQ(tokens[1].column, 3u);
}

TEST(LexerTest, UnexpectedCharacterError) {
  const Result<std::vector<Token>> r = Tokenize("SELECT @");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
}

TEST(LexerTest, DotBetweenIdentifiers) {
  const auto tokens = MustTokenize("s1.pos");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "s1");
  EXPECT_EQ(tokens[1].type, TokenType::kDot);
  EXPECT_EQ(tokens[2].text, "pos");
}

}  // namespace
}  // namespace rfv
