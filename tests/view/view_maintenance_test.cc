#include "view/maintenance.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace rfv {
namespace {

using testutil::MustExecute;
using testutil::RowsEqual;

class ViewMaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(db_, "CREATE TABLE seq (pos INTEGER PRIMARY KEY, val DOUBLE)");
    std::string insert = "INSERT INTO seq VALUES ";
    for (int i = 1; i <= 30; ++i) {
      if (i > 1) insert += ", ";
      insert += "(" + std::to_string(i) + ", " + std::to_string(i % 7) + ")";
    }
    MustExecute(db_, insert);
  }

  void CreateView(const std::string& name, const std::string& fn, int l,
                  int h) {
    MustExecute(db_, "CREATE MATERIALIZED VIEW " + name + " AS SELECT pos, " +
                         fn + "(val) OVER (ORDER BY pos ROWS BETWEEN " +
                         std::to_string(l) + " PRECEDING AND " +
                         std::to_string(h) + " FOLLOWING) FROM seq");
  }

  /// The view content must equal a freshly refreshed copy.
  void ExpectViewFresh(const std::string& name) {
    const ResultSet before = MustExecute(
        db_, "SELECT pos, val FROM " + name + " ORDER BY pos");
    ASSERT_TRUE(db_.view_manager()->RefreshView(name).ok());
    const ResultSet after = MustExecute(
        db_, "SELECT pos, val FROM " + name + " ORDER BY pos");
    EXPECT_TRUE(RowsEqual(before, after)) << name;
  }

  Database db_;
};

TEST_F(ViewMaintenanceTest, UpdateTouchesWindowRowsOnly) {
  CreateView("v", "SUM", 2, 1);  // w = 4
  const Result<size_t> touched =
      PropagateBaseUpdate(db_.view_manager(), "seq", 15, 100.0);
  ASSERT_TRUE(touched.ok()) << touched.status().ToString();
  EXPECT_EQ(*touched, 4u);
  // Base table took the update.
  const ResultSet base = MustExecute(db_, "SELECT val FROM seq WHERE pos = 15");
  EXPECT_DOUBLE_EQ(base.at(0, 0).ToDouble(), 100.0);
  ExpectViewFresh("v");
}

TEST_F(ViewMaintenanceTest, UpdateNearBoundaryTouchesHeader) {
  CreateView("v", "SUM", 1, 2);
  const Result<size_t> touched =
      PropagateBaseUpdate(db_.view_manager(), "seq", 1, 50.0);
  ASSERT_TRUE(touched.ok());
  // Affected positions [1-2, 1+1] = [-1, 2], all stored.
  EXPECT_EQ(*touched, 4u);
  ExpectViewFresh("v");
}

TEST_F(ViewMaintenanceTest, UpdateMaintainsCumulativeView) {
  MustExecute(db_,
              "CREATE MATERIALIZED VIEW vcum AS SELECT pos, SUM(val) OVER "
              "(ORDER BY pos ROWS UNBOUNDED PRECEDING) FROM seq");
  const Result<size_t> touched =
      PropagateBaseUpdate(db_.view_manager(), "seq", 10, 99.0);
  ASSERT_TRUE(touched.ok());
  ExpectViewFresh("vcum");
}

TEST_F(ViewMaintenanceTest, UpdateMaintainsMinMaxViews) {
  CreateView("vmin", "MIN", 2, 2);
  CreateView("vmax", "MAX", 1, 1);
  ASSERT_TRUE(
      PropagateBaseUpdate(db_.view_manager(), "seq", 12, -50.0).ok());
  ExpectViewFresh("vmin");
  ExpectViewFresh("vmax");
  ASSERT_TRUE(
      PropagateBaseUpdate(db_.view_manager(), "seq", 12, 50.0).ok());
  ExpectViewFresh("vmin");
  ExpectViewFresh("vmax");
}

TEST_F(ViewMaintenanceTest, MultipleViewsMaintainedTogether) {
  CreateView("v1", "SUM", 1, 1);
  CreateView("v2", "SUM", 3, 0);
  const Result<size_t> touched =
      PropagateBaseUpdate(db_.view_manager(), "seq", 20, 42.0);
  ASSERT_TRUE(touched.ok());
  EXPECT_EQ(*touched, 3u + 4u);
  ExpectViewFresh("v1");
  ExpectViewFresh("v2");
}

TEST_F(ViewMaintenanceTest, InsertShiftsPositions) {
  CreateView("v", "SUM", 1, 1);
  const Result<size_t> touched =
      PropagateBaseInsert(db_.view_manager(), "seq", 10, 500.0);
  ASSERT_TRUE(touched.ok()) << touched.status().ToString();
  // Base has 31 rows, value 500 now at position 10.
  const ResultSet base = MustExecute(db_, "SELECT val FROM seq WHERE pos = 10");
  EXPECT_DOUBLE_EQ(base.at(0, 0).ToDouble(), 500.0);
  EXPECT_EQ(MustExecute(db_, "SELECT COUNT(*) FROM seq").at(0, 0),
            Value::Int(31));
  ExpectViewFresh("v");
}

TEST_F(ViewMaintenanceTest, DeleteShiftsPositions) {
  CreateView("v", "SUM", 1, 1);
  ASSERT_TRUE(PropagateBaseDelete(db_.view_manager(), "seq", 10).ok());
  EXPECT_EQ(MustExecute(db_, "SELECT COUNT(*) FROM seq").at(0, 0),
            Value::Int(29));
  // Positions stay dense 1..29.
  EXPECT_EQ(MustExecute(db_, "SELECT MAX(pos) FROM seq").at(0, 0),
            Value::Int(29));
  ExpectViewFresh("v");
}

TEST_F(ViewMaintenanceTest, UpdateMissingPositionFails) {
  CreateView("v", "SUM", 1, 1);
  EXPECT_EQ(
      PropagateBaseUpdate(db_.view_manager(), "seq", 99, 1.0).status().code(),
      StatusCode::kNotFound);
}

TEST_F(ViewMaintenanceTest, NoDependentViewsFails) {
  EXPECT_EQ(
      PropagateBaseUpdate(db_.view_manager(), "seq", 1, 1.0).status().code(),
      StatusCode::kNotFound);
}

TEST_F(ViewMaintenanceTest, QueriesAfterMaintenanceAreCorrect) {
  CreateView("v", "SUM", 2, 1);
  ASSERT_TRUE(PropagateBaseUpdate(db_.view_manager(), "seq", 7, 123.0).ok());
  const std::string query =
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING "
      "AND 1 FOLLOWING) FROM seq ORDER BY pos";
  const ResultSet via_view = MustExecute(db_, query);
  EXPECT_EQ(via_view.rewrite_method(), "direct");
  db_.options().enable_view_rewrite = false;
  const ResultSet direct = MustExecute(db_, query);
  EXPECT_TRUE(RowsEqual(via_view, direct));
}

}  // namespace
}  // namespace rfv
