#include "view/view_manager.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace rfv {
namespace {

using testutil::CreateSeqTable;
using testutil::MustExecute;

class ViewManagerTest : public ::testing::Test {
 protected:
  void SetUp() override { CreateSeqTable(db_, 10); }

  SequenceViewDef SlidingDef(const std::string& name, int64_t l, int64_t h) {
    SequenceViewDef def;
    def.view_name = name;
    def.base_table = "seq";
    def.value_column = "val";
    def.order_column = "pos";
    def.fn = SeqAggFn::kSum;
    def.window = WindowSpec::SlidingUnchecked(l, h);
    return def;
  }

  Database db_;
};

TEST_F(ViewManagerTest, CreateMaterializesCompleteSequence) {
  const Result<const SequenceViewDef*> view =
      db_.view_manager()->CreateSequenceView(SlidingDef("v21", 2, 1));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ((*view)->n, 10);
  // Content table exists with header (-h+1 = 0) and trailer (n+l = 12).
  const ResultSet rows = MustExecute(
      db_, "SELECT pos, val FROM v21 ORDER BY pos");
  ASSERT_EQ(rows.NumRows(), 13u);  // positions 0..12
  EXPECT_EQ(rows.at(0, 0), Value::Int(0));
  EXPECT_EQ(rows.at(12, 0), Value::Int(12));
}

TEST_F(ViewManagerTest, ContentMatchesWindowQuery) {
  ASSERT_TRUE(
      db_.view_manager()->CreateSequenceView(SlidingDef("v11", 1, 1)).ok());
  const ResultSet view_rows = MustExecute(
      db_, "SELECT pos, val FROM v11 WHERE pos BETWEEN 1 AND 10 ORDER BY "
           "pos");
  db_.options().enable_view_rewrite = false;
  const ResultSet direct = MustExecute(
      db_, "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 "
           "PRECEDING AND 1 FOLLOWING) FROM seq ORDER BY pos");
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(view_rows.at(i, 1).ToDouble(),
                     direct.at(i, 1).ToDouble());
  }
}

TEST_F(ViewManagerTest, IndexCreatedOnPos) {
  ASSERT_TRUE(
      db_.view_manager()->CreateSequenceView(SlidingDef("v", 1, 1)).ok());
  Result<Table*> content = db_.catalog()->GetTable("v");
  ASSERT_TRUE(content.ok());
  const Result<size_t> pos_col = (*content)->schema().FindColumn("", "pos");
  ASSERT_TRUE(pos_col.ok());
  EXPECT_TRUE((*content)->HasIndexOnColumn(*pos_col));
}

TEST_F(ViewManagerTest, UnindexedViewOption) {
  SequenceViewDef def = SlidingDef("vnoidx", 1, 1);
  def.indexed = false;
  ASSERT_TRUE(db_.view_manager()->CreateSequenceView(def).ok());
  Result<Table*> content = db_.catalog()->GetTable("vnoidx");
  ASSERT_TRUE(content.ok());
  EXPECT_TRUE((*content)->indexes().empty());
}

TEST_F(ViewManagerTest, DuplicateNameRejected) {
  ASSERT_TRUE(
      db_.view_manager()->CreateSequenceView(SlidingDef("v", 1, 1)).ok());
  EXPECT_EQ(db_.view_manager()
                ->CreateSequenceView(SlidingDef("v", 2, 1))
                .status()
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ViewManagerTest, MissingBaseTableRejected) {
  SequenceViewDef def = SlidingDef("v", 1, 1);
  def.base_table = "nope";
  EXPECT_EQ(db_.view_manager()->CreateSequenceView(def).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ViewManagerTest, MissingColumnRejected) {
  SequenceViewDef def = SlidingDef("v", 1, 1);
  def.value_column = "nope";
  EXPECT_EQ(db_.view_manager()->CreateSequenceView(def).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ViewManagerTest, GappyPositionsRejected) {
  MustExecute(db_, "CREATE TABLE gappy (pos INTEGER, val DOUBLE)");
  MustExecute(db_, "INSERT INTO gappy VALUES (1, 1), (3, 3)");
  SequenceViewDef def = SlidingDef("v", 1, 1);
  def.base_table = "gappy";
  EXPECT_EQ(db_.view_manager()->CreateSequenceView(def).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ViewManagerTest, DuplicatePositionsRejected) {
  MustExecute(db_, "CREATE TABLE dup (pos INTEGER, val DOUBLE)");
  MustExecute(db_, "INSERT INTO dup VALUES (1, 1), (1, 2)");
  SequenceViewDef def = SlidingDef("v", 1, 1);
  def.base_table = "dup";
  EXPECT_EQ(db_.view_manager()->CreateSequenceView(def).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ViewManagerTest, RefreshPicksUpBaseChanges) {
  ASSERT_TRUE(
      db_.view_manager()->CreateSequenceView(SlidingDef("v", 1, 1)).ok());
  MustExecute(db_, "UPDATE seq SET val = 1000 WHERE pos = 5");
  ASSERT_TRUE(db_.view_manager()->RefreshView("v").ok());
  const ResultSet rows =
      MustExecute(db_, "SELECT val FROM v WHERE pos = 5");
  EXPECT_GT(rows.at(0, 0).ToDouble(), 900.0);
}

TEST_F(ViewManagerTest, DropRemovesViewAndContent) {
  ASSERT_TRUE(
      db_.view_manager()->CreateSequenceView(SlidingDef("v", 1, 1)).ok());
  ASSERT_TRUE(db_.view_manager()->DropView("v").ok());
  EXPECT_EQ(db_.view_manager()->FindView("v"), nullptr);
  EXPECT_FALSE(db_.catalog()->HasTable("v"));
}

TEST_F(ViewManagerTest, FindCandidatesFiltersCorrectly) {
  ASSERT_TRUE(
      db_.view_manager()->CreateSequenceView(SlidingDef("v1", 1, 1)).ok());
  ASSERT_TRUE(
      db_.view_manager()->CreateSequenceView(SlidingDef("v2", 2, 1)).ok());
  SequenceViewDef min_def = SlidingDef("vmin", 1, 1);
  min_def.fn = SeqAggFn::kMin;
  ASSERT_TRUE(db_.view_manager()->CreateSequenceView(min_def).ok());

  EXPECT_EQ(db_.view_manager()
                ->FindCandidates("seq", "val", "pos", SeqAggFn::kSum)
                .size(),
            2u);
  EXPECT_EQ(db_.view_manager()
                ->FindCandidates("seq", "val", "pos", SeqAggFn::kMin)
                .size(),
            1u);
  EXPECT_TRUE(db_.view_manager()
                  ->FindCandidates("other", "val", "pos", SeqAggFn::kSum)
                  .empty());
}

TEST_F(ViewManagerTest, PartitionedViewMaterializesPerPartition) {
  MustExecute(db_, "CREATE TABLE pseq (grp INTEGER, pos INTEGER, val DOUBLE)");
  MustExecute(db_,
              "INSERT INTO pseq VALUES (1, 1, 10), (1, 2, 20), (1, 3, 30), "
              "(2, 1, 5), (2, 2, 15)");
  SequenceViewDef def;
  def.view_name = "pview";
  def.base_table = "pseq";
  def.value_column = "val";
  def.order_column = "pos";
  def.partition_columns = {"grp"};
  def.fn = SeqAggFn::kSum;
  def.window = WindowSpec::SlidingUnchecked(1, 1);
  const Result<const SequenceViewDef*> view =
      db_.view_manager()->CreateSequenceView(def);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  // Partition 1: positions 0..4 (n=3, l=h=1); partition 2: 0..3 (n=2).
  const ResultSet rows = MustExecute(
      db_, "SELECT grp, pos, val FROM pview ORDER BY grp, pos");
  EXPECT_EQ(rows.NumRows(), 9u);
  // Partition boundaries hold: grp=1 pos=3 window is {20,30} = 50, not
  // contaminated by grp=2.
  const ResultSet boundary = MustExecute(
      db_, "SELECT val FROM pview WHERE grp = 1 AND pos = 3");
  EXPECT_DOUBLE_EQ(boundary.at(0, 0).ToDouble(), 50.0);
}

TEST_F(ViewManagerTest, CumulativeView) {
  SequenceViewDef def = SlidingDef("vcum", 0, 0);
  def.window = WindowSpec::Cumulative();
  ASSERT_TRUE(db_.view_manager()->CreateSequenceView(def).ok());
  const ResultSet rows =
      MustExecute(db_, "SELECT pos, val FROM vcum ORDER BY pos");
  EXPECT_EQ(rows.NumRows(), 10u);  // body only: cumulative header is 0
}

}  // namespace
}  // namespace rfv
