#include "view/reduction.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace rfv {
namespace {

using testutil::MustExecute;

class ReductionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Base: (grp, month) partitioned positions, dense 1..n per group.
    MustExecute(db_,
                "CREATE TABLE pseq (grp INTEGER, mon INTEGER, pos INTEGER, "
                "val DOUBLE)");
    std::string insert = "INSERT INTO pseq VALUES ";
    bool first = true;
    for (int grp = 1; grp <= 2; ++grp) {
      for (int mon = 1; mon <= 3; ++mon) {
        for (int pos = 1; pos <= 4; ++pos) {
          if (!first) insert += ", ";
          first = false;
          const int val = grp * 100 + mon * 10 + pos;
          insert += "(" + std::to_string(grp) + ", " + std::to_string(mon) +
                    ", " + std::to_string(pos) + ", " + std::to_string(val) +
                    ")";
        }
      }
    }
    MustExecute(db_, insert);
  }

  /// Creates a partitioned sliding view over (grp, mon).
  const SequenceViewDef* CreatePartitionedView() {
    SequenceViewDef def;
    def.view_name = "monthly";
    def.base_table = "pseq";
    def.value_column = "val";
    def.order_column = "pos";
    def.partition_columns = {"grp", "mon"};
    def.fn = SeqAggFn::kSum;
    def.window = WindowSpec::SlidingUnchecked(1, 1);
    Result<const SequenceViewDef*> r =
        db_.view_manager()->CreateSequenceView(def);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : nullptr;
  }

  Database db_;
};

TEST_F(ReductionTest, PartitioningReductionMergesMonths) {
  ASSERT_NE(CreatePartitionedView(), nullptr);
  const Result<const SequenceViewDef*> reduced = ReduceViewPartitioning(
      db_.view_manager(), "monthly", "per_group", /*drop=*/1);
  ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
  EXPECT_EQ((*reduced)->partition_columns,
            std::vector<std::string>({"grp"}));
  EXPECT_TRUE((*reduced)->derived);
  EXPECT_EQ((*reduced)->n, 12);  // 3 months × 4 positions concatenated

  // The merged sequence must equal a window over each group's raw data
  // concatenated in (mon, pos) order. Check a month-boundary value:
  // group 1, merged position 4 (mon=1,pos=4) windows {mon1pos3, mon1pos4,
  // mon2pos1} = 113 + 114 + 121.
  const ResultSet v = MustExecute(
      db_, "SELECT val FROM per_group WHERE grp = 1 AND pos = 4");
  ASSERT_EQ(v.NumRows(), 1u);
  EXPECT_DOUBLE_EQ(v.at(0, 0).ToDouble(), 113 + 114 + 121);
}

TEST_F(ReductionTest, PartitioningReductionDropAll) {
  ASSERT_NE(CreatePartitionedView(), nullptr);
  const Result<const SequenceViewDef*> reduced = ReduceViewPartitioning(
      db_.view_manager(), "monthly", "total", /*drop=*/2);
  ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
  EXPECT_TRUE((*reduced)->partition_columns.empty());
  EXPECT_EQ((*reduced)->n, 24);
  // Complete: header position 0 and trailer position 25 present.
  const ResultSet rows = MustExecute(db_, "SELECT COUNT(*) FROM total");
  EXPECT_EQ(rows.at(0, 0), Value::Int(26));
}

TEST_F(ReductionTest, DerivedViewExcludedFromRewriting) {
  ASSERT_NE(CreatePartitionedView(), nullptr);
  ASSERT_TRUE(ReduceViewPartitioning(db_.view_manager(), "monthly", "total",
                                     2)
                  .ok());
  // A window query over pseq must NOT be answered from "total": its
  // positions live in the concatenated ordering, not in pseq's pos.
  EXPECT_TRUE(db_.view_manager()
                  ->FindCandidates("pseq", "val", "pos", SeqAggFn::kSum)
                  .empty());
}

TEST_F(ReductionTest, DerivedViewCannotRefresh) {
  ASSERT_NE(CreatePartitionedView(), nullptr);
  ASSERT_TRUE(ReduceViewPartitioning(db_.view_manager(), "monthly",
                                     "per_group", 1)
                  .ok());
  EXPECT_EQ(db_.view_manager()->RefreshView("per_group").code(),
            StatusCode::kNotSupported);
}

TEST_F(ReductionTest, ErrorsReported) {
  ASSERT_NE(CreatePartitionedView(), nullptr);
  EXPECT_EQ(ReduceViewPartitioning(db_.view_manager(), "nope", "t", 1)
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ReduceViewPartitioning(db_.view_manager(), "monthly", "t", 0)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ReduceViewPartitioning(db_.view_manager(), "monthly", "t", 3)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ReduceViewPartitioning(db_.view_manager(), "monthly", "monthly",
                                   1)
                .status()
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ReductionTest, UnpartitionedViewRejected) {
  testutil::CreateSeqTable(db_, 10);
  MustExecute(db_,
              "CREATE MATERIALIZED VIEW simple AS SELECT pos, SUM(val) "
              "OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 "
              "FOLLOWING) FROM seq");
  EXPECT_EQ(ReduceViewPartitioning(db_.view_manager(), "simple", "t", 1)
                .status()
                .code(),
            StatusCode::kNotDerivable);
}

class OrderingReductionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 12 fine positions = 3 blocks of 4 (e.g. months of 4-day weeks).
    testutil::CreateSeqTable(db_, 12);
    MustExecute(db_,
                "CREATE MATERIALIZED VIEW fine AS SELECT pos, SUM(val) "
                "OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) FROM seq");
  }
  Database db_;
};

TEST_F(OrderingReductionTest, CoarseCumulativeMatchesLemma) {
  const Result<const SequenceViewDef*> coarse =
      ReduceViewOrdering(db_.view_manager(), "fine", "coarse", /*block=*/4);
  ASSERT_TRUE(coarse.ok()) << coarse.status().ToString();
  EXPECT_EQ((*coarse)->n, 3);
  EXPECT_TRUE((*coarse)->derived);
  // Coarse cumulative at block b = fine cumulative at position 4b.
  const ResultSet fine = MustExecute(
      db_, "SELECT val FROM fine WHERE pos IN (4, 8, 12) ORDER BY pos");
  const ResultSet reduced =
      MustExecute(db_, "SELECT val FROM coarse ORDER BY pos");
  ASSERT_EQ(reduced.NumRows(), 3u);
  for (size_t b = 0; b < 3; ++b) {
    EXPECT_DOUBLE_EQ(reduced.at(b, 0).ToDouble(), fine.at(b, 0).ToDouble());
  }
}

TEST_F(OrderingReductionTest, IndivisibleBlockRejected) {
  EXPECT_EQ(
      ReduceViewOrdering(db_.view_manager(), "fine", "c", 5).status().code(),
      StatusCode::kNotDerivable);
}

TEST_F(OrderingReductionTest, NonCumulativeRejected) {
  MustExecute(db_,
              "CREATE MATERIALIZED VIEW sliding AS SELECT pos, SUM(val) "
              "OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 "
              "FOLLOWING) FROM seq");
  EXPECT_EQ(ReduceViewOrdering(db_.view_manager(), "sliding", "c", 4)
                .status()
                .code(),
            StatusCode::kNotDerivable);
}

TEST_F(OrderingReductionTest, BlockTooSmallRejected) {
  EXPECT_EQ(
      ReduceViewOrdering(db_.view_manager(), "fine", "c", 1).status().code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rfv
