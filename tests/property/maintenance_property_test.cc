// Randomized end-to-end maintenance property: a stream of base-table
// updates/inserts/deletes propagated through view maintenance must keep
// every materialized sequence view equivalent to a fresh computation —
// verified by answering queries once via the (maintained) views and once
// with rewriting disabled.

#include <gtest/gtest.h>

#include <random>

#include "test_util.h"
#include "view/maintenance.h"

namespace rfv {
namespace {

using testutil::MustExecute;
using testutil::RowsEqual;

class MaintenancePropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MaintenancePropertyTest, ViewsStayFreshUnderRandomDml) {
  Database db;
  MustExecute(db, "CREATE TABLE seq (pos INTEGER PRIMARY KEY, val DOUBLE)");
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> value(-50, 50);
  int n = 40;
  {
    std::string insert = "INSERT INTO seq VALUES ";
    for (int i = 1; i <= n; ++i) {
      if (i > 1) insert += ", ";
      insert += "(" + std::to_string(i) + ", " + std::to_string(value(rng)) +
                ")";
    }
    MustExecute(db, insert);
  }
  MustExecute(db,
              "CREATE MATERIALIZED VIEW v_sum AS SELECT pos, SUM(val) OVER "
              "(ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) "
              "FROM seq");
  MustExecute(db,
              "CREATE MATERIALIZED VIEW v_cum AS SELECT pos, SUM(val) OVER "
              "(ORDER BY pos ROWS UNBOUNDED PRECEDING) FROM seq");
  MustExecute(db,
              "CREATE MATERIALIZED VIEW v_min AS SELECT pos, MIN(val) OVER "
              "(ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) "
              "FROM seq");

  const auto verify = [&](const std::string& frame_fn,
                          const std::string& frame) {
    const std::string sql = "SELECT pos, " + frame_fn +
                            "(val) OVER (ORDER BY pos " + frame +
                            ") FROM seq ORDER BY pos";
    const ResultSet via_views = MustExecute(db, sql);
    db.options().enable_view_rewrite = false;
    const ResultSet direct = MustExecute(db, sql);
    db.options().enable_view_rewrite = true;
    EXPECT_TRUE(RowsEqual(via_views, direct))
        << sql << "\n  rewrite=" << via_views.rewrite_method();
    return via_views.rewrite_method();
  };

  for (int step = 0; step < 30; ++step) {
    const int op = static_cast<int>(rng() % 3);
    if (op == 0 || n <= 5) {
      const int64_t k = 1 + static_cast<int64_t>(rng() % n);
      ASSERT_TRUE(
          PropagateBaseUpdate(db.view_manager(), "seq", k, value(rng)).ok())
          << "step " << step;
    } else if (op == 1) {
      const int64_t k = 1 + static_cast<int64_t>(rng() % (n + 1));
      ASSERT_TRUE(
          PropagateBaseInsert(db.view_manager(), "seq", k, value(rng)).ok())
          << "step " << step;
      ++n;
    } else {
      const int64_t k = 1 + static_cast<int64_t>(rng() % n);
      ASSERT_TRUE(PropagateBaseDelete(db.view_manager(), "seq", k).ok())
          << "step " << step;
      --n;
    }
    // Direct hits on all three views plus a MaxOA/MinOA-derived window.
    EXPECT_EQ(verify("SUM", "ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING"),
              "direct");
    EXPECT_EQ(verify("SUM", "ROWS UNBOUNDED PRECEDING"), "direct");
    EXPECT_EQ(verify("MIN", "ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING"),
              "direct");
    verify("SUM", "ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaintenancePropertyTest,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace rfv
