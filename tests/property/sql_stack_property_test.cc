// Randomized end-to-end property: for random data and random (view,
// query) window pairs, every path through the full SQL stack — native
// window operator, Fig. 2 self join, and all view-derivation rewrites in
// both variants, with and without index support — produces identical
// results.

#include <gtest/gtest.h>

#include <random>

#include "test_util.h"

namespace rfv {
namespace {

using testutil::MustExecute;
using testutil::RowsEqual;

struct StackCase {
  int lx, hx;  // view window
  int ly, hy;  // query window
};

class SqlStackProperty : public ::testing::TestWithParam<StackCase> {};

TEST_P(SqlStackProperty, AllPathsAgree) {
  const StackCase& c = GetParam();
  constexpr int kN = 35;
  Database db;
  MustExecute(db, "CREATE TABLE seq (pos INTEGER PRIMARY KEY, val DOUBLE)");
  std::mt19937 rng(static_cast<unsigned>(c.lx * 1000 + c.hx * 100 +
                                         c.ly * 10 + c.hy));
  std::uniform_int_distribution<int> value(-20, 20);
  std::string insert = "INSERT INTO seq VALUES ";
  for (int i = 1; i <= kN; ++i) {
    if (i > 1) insert += ", ";
    insert += "(" + std::to_string(i) + ", " + std::to_string(value(rng)) +
              ")";
  }
  MustExecute(db, insert);

  const std::string query =
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN " +
      std::to_string(c.ly) + " PRECEDING AND " + std::to_string(c.hy) +
      " FOLLOWING) FROM seq ORDER BY pos";

  db.options().enable_view_rewrite = false;
  const ResultSet reference = MustExecute(db, query);

  // Fig. 2 self join simulation.
  {
    const ResultSet self_join = MustExecute(
        db, "SELECT s1.pos AS pos, SUM(s2.val) AS val FROM seq s1, seq s2 "
            "WHERE s2.pos BETWEEN s1.pos - " +
                std::to_string(c.ly) + " AND s1.pos + " +
                std::to_string(c.hy) +
                " GROUP BY s1.pos ORDER BY s1.pos");
    EXPECT_TRUE(RowsEqual(reference, self_join)) << "self join";
  }

  // Materialize the view and try every rewrite configuration.
  db.options().enable_view_rewrite = true;
  MustExecute(db, "CREATE MATERIALIZED VIEW matseq AS SELECT pos, SUM(val) "
                  "OVER (ORDER BY pos ROWS BETWEEN " +
                      std::to_string(c.lx) + " PRECEDING AND " +
                      std::to_string(c.hx) + " FOLLOWING) FROM seq");

  for (const auto method :
       {DerivationMethod::kMaxoa, DerivationMethod::kMinoa}) {
    for (const auto variant :
         {RewriteVariant::kDisjunctive, RewriteVariant::kUnion}) {
      for (const bool use_index : {true, false}) {
        db.options().force_method = method;
        db.options().rewrite_variant = variant;
        db.options().exec.enable_index_nested_loop_join = use_index;
        const ResultSet derived = MustExecute(db, query);
        if (derived.rewrite_method().empty()) {
          continue;  // method not applicable to this window pair
        }
        EXPECT_TRUE(RowsEqual(reference, derived))
            << DerivationMethodName(method) << " variant="
            << (variant == RewriteVariant::kUnion ? "union" : "disjunctive")
            << " index=" << use_index << "\n  SQL: "
            << derived.rewritten_sql();
      }
    }
  }
}

std::vector<StackCase> MakeCases() {
  std::vector<StackCase> cases;
  for (const auto& [lx, hx] : std::vector<std::pair<int, int>>{
           {1, 1}, {2, 1}, {0, 2}, {3, 0}, {2, 2}}) {
    for (const auto& [ly, hy] : std::vector<std::pair<int, int>>{
             {1, 1}, {3, 1}, {2, 3}, {1, 0}, {4, 2}, {5, 5}}) {
      cases.push_back(StackCase{lx, hx, ly, hy});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    WindowPairs, SqlStackProperty, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<StackCase>& info) {
      const StackCase& c = info.param;
      return "v" + std::to_string(c.lx) + "_" + std::to_string(c.hx) + "_q" +
             std::to_string(c.ly) + "_" + std::to_string(c.hy);
    });

TEST(SqlStackPropertyExtra, PartitionedWindowMatchesPerPartitionSelfJoin) {
  // The partitioned native window operator against a per-partition
  // self-join simulation (Fig. 2 with the partition key added to the
  // join predicate).
  Database db;
  MustExecute(db, "CREATE TABLE p (grp INTEGER, pos INTEGER, val DOUBLE)");
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> value(-30, 30);
  std::string insert = "INSERT INTO p VALUES ";
  bool first = true;
  for (int grp = 1; grp <= 4; ++grp) {
    const int rows = 5 + static_cast<int>(rng() % 10);
    for (int pos = 1; pos <= rows; ++pos) {
      if (!first) insert += ", ";
      first = false;
      insert += "(" + std::to_string(grp) + ", " + std::to_string(pos) +
                ", " + std::to_string(value(rng)) + ")";
    }
  }
  MustExecute(db, insert);
  const ResultSet native = MustExecute(
      db, "SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos "
          "ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) FROM p ORDER BY grp, "
          "pos");
  const ResultSet simulated = MustExecute(
      db, "SELECT p1.grp AS grp, p1.pos AS pos, SUM(p2.val) AS val FROM p "
          "p1, p p2 WHERE p1.grp = p2.grp AND p2.pos BETWEEN p1.pos - 2 "
          "AND p1.pos + 1 GROUP BY p1.grp, p1.pos ORDER BY p1.grp, p1.pos");
  EXPECT_TRUE(RowsEqual(native, simulated));
}

TEST(SqlStackPropertyExtra, CumulativeViewAnswersEverything) {
  constexpr int kN = 30;
  Database db;
  testutil::CreateSeqTable(db, kN);
  MustExecute(db, "CREATE MATERIALIZED VIEW c AS SELECT pos, SUM(val) OVER "
                  "(ORDER BY pos ROWS UNBOUNDED PRECEDING) FROM seq");
  for (const auto& [l, h] : std::vector<std::pair<int, int>>{
           {1, 1}, {4, 0}, {0, 3}, {7, 5}}) {
    const std::string query =
        "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN " +
        std::to_string(l) + " PRECEDING AND " + std::to_string(h) +
        " FOLLOWING) FROM seq ORDER BY pos";
    const ResultSet derived = MustExecute(db, query);
    EXPECT_EQ(derived.rewrite_method(), "cumulative-diff");
    db.options().enable_view_rewrite = false;
    const ResultSet reference = MustExecute(db, query);
    db.options().enable_view_rewrite = true;
    EXPECT_TRUE(RowsEqual(reference, derived)) << l << "," << h;
  }
}

}  // namespace
}  // namespace rfv
