#include "storage/table.h"

#include <gtest/gtest.h>

namespace rfv {
namespace {

Schema SeqSchema() {
  return Schema({ColumnDef("pos", DataType::kInt64),
                 ColumnDef("val", DataType::kDouble)});
}

TEST(TableTest, InsertAndRead) {
  Table t("seq", SeqSchema());
  ASSERT_TRUE(t.Insert(Row({Value::Int(1), Value::Double(10)})).ok());
  ASSERT_TRUE(t.Insert(Row({Value::Int(2), Value::Double(20)})).ok());
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.row(1)[1], Value::Double(20));
}

TEST(TableTest, ArityMismatchRejected) {
  Table t("seq", SeqSchema());
  const Status s = t.Insert(Row({Value::Int(1)}));
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
}

TEST(TableTest, IntCoercesToDoubleColumn) {
  Table t("seq", SeqSchema());
  ASSERT_TRUE(t.Insert(Row({Value::Int(1), Value::Int(10)})).ok());
  EXPECT_EQ(t.row(0)[1].type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(t.row(0)[1].AsDouble(), 10.0);
}

TEST(TableTest, ExactDoubleCoercesToIntColumn) {
  Table t("seq", SeqSchema());
  ASSERT_TRUE(t.Insert(Row({Value::Double(3.0), Value::Double(1)})).ok());
  EXPECT_EQ(t.row(0)[0], Value::Int(3));
  EXPECT_EQ(t.Insert(Row({Value::Double(3.5), Value::Double(1)})).code(),
            StatusCode::kTypeError);
}

TEST(TableTest, NullAllowedAnywhere) {
  Table t("seq", SeqSchema());
  EXPECT_TRUE(t.Insert(Row({Value::Null(), Value::Null()})).ok());
}

TEST(TableTest, StringIntoNumericRejected) {
  Table t("seq", SeqSchema());
  EXPECT_EQ(t.Insert(Row({Value::String("x"), Value::Double(1)})).code(),
            StatusCode::kTypeError);
}

TEST(TableTest, UpdateRowAndCell) {
  Table t("seq", SeqSchema());
  ASSERT_TRUE(t.Insert(Row({Value::Int(1), Value::Double(10)})).ok());
  ASSERT_TRUE(t.UpdateCell(0, 1, Value::Double(99)).ok());
  EXPECT_EQ(t.row(0)[1], Value::Double(99));
  ASSERT_TRUE(t.UpdateRow(0, Row({Value::Int(5), Value::Double(50)})).ok());
  EXPECT_EQ(t.row(0)[0], Value::Int(5));
  EXPECT_EQ(t.UpdateRow(7, Row({Value::Int(1), Value::Double(1)})).code(),
            StatusCode::kInvalidArgument);
}

TEST(TableTest, DeleteCompacts) {
  Table t("seq", SeqSchema());
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(t.Insert(Row({Value::Int(i), Value::Double(i)})).ok());
  }
  ASSERT_TRUE(t.DeleteRow(1).ok());
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.row(1)[0], Value::Int(3));
  EXPECT_EQ(t.DeleteRow(9).code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, Truncate) {
  Table t("seq", SeqSchema());
  ASSERT_TRUE(t.Insert(Row({Value::Int(1), Value::Double(1)})).ok());
  t.Truncate();
  EXPECT_EQ(t.NumRows(), 0u);
}

TEST(TableTest, InsertBatchValidatesAll) {
  Table t("seq", SeqSchema());
  std::vector<Row> rows;
  rows.push_back(Row({Value::Int(1), Value::Double(1)}));
  rows.push_back(Row({Value::String("bad"), Value::Double(2)}));
  EXPECT_EQ(t.InsertBatch(std::move(rows)).code(), StatusCode::kTypeError);
  EXPECT_EQ(t.NumRows(), 0u);  // all-or-nothing
}

TEST(TableTest, CreateIndexOnMissingColumnFails) {
  Table t("seq", SeqSchema());
  EXPECT_EQ(t.CreateIndex("i", "nope").code(), StatusCode::kNotFound);
}

TEST(TableTest, DuplicateIndexNameFails) {
  Table t("seq", SeqSchema());
  ASSERT_TRUE(t.CreateIndex("i", "pos").ok());
  EXPECT_EQ(t.CreateIndex("i", "val").code(), StatusCode::kAlreadyExists);
}

TEST(TableTest, IndexMaintainedOnInsert) {
  Table t("seq", SeqSchema());
  ASSERT_TRUE(t.CreateIndex("i", "pos").ok());
  for (int i = 5; i >= 1; --i) {
    ASSERT_TRUE(t.Insert(Row({Value::Int(i), Value::Double(i)})).ok());
  }
  OrderedIndex* index = t.GetIndexOnColumn(0);
  ASSERT_NE(index, nullptr);
  const std::vector<size_t> hits = index->Lookup(Value::Int(3));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(t.row(hits[0])[0], Value::Int(3));
}

TEST(TableTest, IndexRebuiltAfterDelete) {
  Table t("seq", SeqSchema());
  ASSERT_TRUE(t.CreateIndex("i", "pos").ok());
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(t.Insert(Row({Value::Int(i), Value::Double(i)})).ok());
  }
  ASSERT_TRUE(t.DeleteRow(0).ok());
  OrderedIndex* index = t.GetIndexOnColumn(0);
  ASSERT_NE(index, nullptr);
  EXPECT_TRUE(index->Lookup(Value::Int(1)).empty());
  EXPECT_EQ(index->Lookup(Value::Int(4)).size(), 1u);
}

TEST(TableTest, UpdateCellKeepsUnrelatedIndexesWarm) {
  Table t("seq", SeqSchema());
  ASSERT_TRUE(t.CreateIndex("i", "pos").ok());
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(t.Insert(Row({Value::Int(i), Value::Double(i)})).ok());
  }
  OrderedIndex* index = t.GetIndexOnColumn(0);
  ASSERT_NE(index, nullptr);
  // Updating the non-key column must not invalidate the pos index.
  ASSERT_TRUE(t.UpdateCell(2, 1, Value::Double(99)).ok());
  EXPECT_FALSE(index->dirty());
  EXPECT_EQ(index->Lookup(Value::Int(3)).size(), 1u);
  // Updating the key column must.
  ASSERT_TRUE(t.UpdateCell(2, 0, Value::Int(33)).ok());
  EXPECT_TRUE(index->dirty());
  index = t.GetIndexOnColumn(0);  // rebuilds
  EXPECT_EQ(index->Lookup(Value::Int(33)).size(), 1u);
  EXPECT_TRUE(index->Lookup(Value::Int(3)).empty());
}

TEST(TableTest, UpdateCellValidatesType) {
  Table t("seq", SeqSchema());
  ASSERT_TRUE(t.Insert(Row({Value::Int(1), Value::Double(1)})).ok());
  EXPECT_EQ(t.UpdateCell(0, 0, Value::String("x")).code(),
            StatusCode::kTypeError);
  // Coercion still applies.
  ASSERT_TRUE(t.UpdateCell(0, 1, Value::Int(7)).ok());
  EXPECT_EQ(t.row(0)[1].type(), DataType::kDouble);
}

TEST(TableTest, HasIndexOnColumn) {
  Table t("seq", SeqSchema());
  EXPECT_FALSE(t.HasIndexOnColumn(0));
  ASSERT_TRUE(t.CreateIndex("i", "pos").ok());
  EXPECT_TRUE(t.HasIndexOnColumn(0));
  EXPECT_FALSE(t.HasIndexOnColumn(1));
  EXPECT_EQ(t.GetIndexOnColumn(1), nullptr);
}

}  // namespace
}  // namespace rfv
