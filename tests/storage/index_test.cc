#include "storage/index.h"

#include <gtest/gtest.h>

#include "storage/table.h"

namespace rfv {
namespace {

std::unique_ptr<Table> MakeTable(const std::vector<int64_t>& keys) {
  static int counter = 0;
  auto t = std::make_unique<Table>("t" + std::to_string(counter++),
                                   Schema({ColumnDef("k", DataType::kInt64)}));
  for (int64_t k : keys) {
    EXPECT_TRUE(t->Insert(Row({Value::Int(k)})).ok());
  }
  return t;
}

TEST(IndexTest, PointLookup) {
  OrderedIndex index("i", 0);
  for (int64_t k : {5, 1, 3, 2, 4}) index.Insert(Value::Int(k), static_cast<size_t>(k));
  index.EnsureSorted();
  const std::vector<size_t> hits = index.Lookup(Value::Int(3));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 3u);
  EXPECT_TRUE(index.Lookup(Value::Int(42)).empty());
}

TEST(IndexTest, DuplicateKeys) {
  OrderedIndex index("i", 0);
  index.Insert(Value::Int(7), 0);
  index.Insert(Value::Int(7), 1);
  index.Insert(Value::Int(8), 2);
  index.EnsureSorted();
  EXPECT_EQ(index.Lookup(Value::Int(7)).size(), 2u);
}

TEST(IndexTest, RangeLookupInclusive) {
  OrderedIndex index("i", 0);
  for (int64_t k = 1; k <= 10; ++k) {
    index.Insert(Value::Int(k), static_cast<size_t>(k));
  }
  index.EnsureSorted();
  EXPECT_EQ(index.LookupRange(Value::Int(3), true, Value::Int(6), true).size(),
            4u);
  EXPECT_EQ(index.LookupRange(Value::Int(8), true, Value::Null(), false).size(),
            3u);
  EXPECT_EQ(index.LookupRange(Value::Null(), false, Value::Int(2), true).size(),
            2u);
  EXPECT_EQ(
      index.LookupRange(Value::Null(), false, Value::Null(), false).size(),
      10u);
}

TEST(IndexTest, EmptyRange) {
  OrderedIndex index("i", 0);
  index.Insert(Value::Int(1), 0);
  index.EnsureSorted();
  EXPECT_TRUE(
      index.LookupRange(Value::Int(5), true, Value::Int(2), true).empty());
}

TEST(IndexTest, RebuildFromTable) {
  auto t = MakeTable({30, 10, 20});
  OrderedIndex index("i", 0);
  index.MarkDirty();
  index.RebuildFrom(*t);
  EXPECT_FALSE(index.dirty());
  EXPECT_EQ(index.NumEntries(), 3u);
  const std::vector<size_t> hits = index.Lookup(Value::Int(10));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);  // row id in table order
}

TEST(IndexTest, NegativeKeysSortBeforePositive) {
  // Complete sequences store header positions <= 0.
  OrderedIndex index("i", 0);
  for (int64_t k : {-2, 3, 0, -1, 1, 2}) {
    index.Insert(Value::Int(k), static_cast<size_t>(k + 2));
  }
  index.EnsureSorted();
  const std::vector<size_t> hits =
      index.LookupRange(Value::Int(-2), true, Value::Int(0), true);
  EXPECT_EQ(hits.size(), 3u);
}

TEST(IndexTest, MixedNumericKeysCompareNumerically) {
  OrderedIndex index("i", 0);
  index.Insert(Value::Double(1.5), 0);
  index.Insert(Value::Int(1), 1);
  index.Insert(Value::Int(2), 2);
  index.EnsureSorted();
  EXPECT_EQ(
      index.LookupRange(Value::Int(1), true, Value::Double(1.75), true).size(),
      2u);
}

}  // namespace
}  // namespace rfv
