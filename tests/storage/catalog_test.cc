#include "storage/catalog.h"

#include <gtest/gtest.h>

namespace rfv {
namespace {

Schema OneCol() { return Schema({ColumnDef("a", DataType::kInt64)}); }

TEST(CatalogTest, CreateAndGet) {
  Catalog catalog;
  Result<Table*> created = catalog.CreateTable("t", OneCol());
  ASSERT_TRUE(created.ok());
  Result<Table*> fetched = catalog.GetTable("t");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*created, *fetched);
}

TEST(CatalogTest, NamesAreCaseInsensitive) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("MySeq", OneCol()).ok());
  EXPECT_TRUE(catalog.GetTable("myseq").ok());
  EXPECT_TRUE(catalog.GetTable("MYSEQ").ok());
  EXPECT_TRUE(catalog.HasTable("mySeq"));
}

TEST(CatalogTest, DuplicateNameRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", OneCol()).ok());
  EXPECT_EQ(catalog.CreateTable("T", OneCol()).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, MissingTableIsNotFound) {
  Catalog catalog;
  EXPECT_EQ(catalog.GetTable("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.DropTable("nope").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, DropRemoves) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", OneCol()).ok());
  ASSERT_TRUE(catalog.DropTable("t").ok());
  EXPECT_FALSE(catalog.HasTable("t"));
  // Name is reusable afterwards.
  EXPECT_TRUE(catalog.CreateTable("t", OneCol()).ok());
}

TEST(CatalogTest, TableNamesSorted) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("zeta", OneCol()).ok());
  ASSERT_TRUE(catalog.CreateTable("alpha", OneCol()).ok());
  const std::vector<std::string> names = catalog.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

}  // namespace
}  // namespace rfv
