#include "plan/planner.h"

#include <gtest/gtest.h>

#include "expr/builder.h"
#include "parser/parser.h"
#include "plan/binder.h"

namespace rfv {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .CreateTable("a", Schema({ColumnDef("x", DataType::kInt64),
                                              ColumnDef("y", DataType::kInt64)}))
                    .ok());
    ASSERT_TRUE(catalog_
                    .CreateTable("b", Schema({ColumnDef("x", DataType::kInt64),
                                              ColumnDef("z", DataType::kInt64)}))
                    .ok());
  }

  LogicalPlanPtr BindAndOptimize(const std::string& sql) {
    Result<Statement> stmt = Parser::ParseStatement(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    Binder binder(&catalog_);
    Result<LogicalPlanPtr> plan = binder.BindSelect(*stmt->select);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return OptimizePlan(std::move(plan).value());
  }

  Catalog catalog_;
};

TEST(ConjunctTest, SplitAndCombineRoundTrip) {
  ExprPtr e = eb::And(eb::Eq(eb::Int(1), eb::Int(1)),
                      eb::And(eb::Lt(eb::Int(1), eb::Int(2)),
                              eb::Gt(eb::Int(3), eb::Int(2))));
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(std::move(e), &conjuncts);
  EXPECT_EQ(conjuncts.size(), 3u);
  ExprPtr combined = CombineConjuncts(std::move(conjuncts));
  ASSERT_NE(combined, nullptr);
  std::vector<ExprPtr> again;
  SplitConjuncts(std::move(combined), &again);
  EXPECT_EQ(again.size(), 3u);
}

TEST(ConjunctTest, OrIsNotSplit) {
  ExprPtr e = eb::Or(eb::Eq(eb::Int(1), eb::Int(1)),
                     eb::Eq(eb::Int(2), eb::Int(2)));
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(std::move(e), &conjuncts);
  EXPECT_EQ(conjuncts.size(), 1u);
}

TEST(ConjunctTest, CombineEmptyIsNull) {
  EXPECT_EQ(CombineConjuncts({}), nullptr);
}

TEST(ExprAnalysisTest, RefsOnlyRange) {
  const ExprPtr e = eb::Add(eb::Col(1, DataType::kInt64),
                            eb::Col(3, DataType::kInt64));
  EXPECT_TRUE(RefsOnlyRange(*e, 0, 4));
  EXPECT_TRUE(RefsOnlyRange(*e, 1, 4));
  EXPECT_FALSE(RefsOnlyRange(*e, 0, 3));
  EXPECT_FALSE(RefsOnlyRange(*e, 2, 4));
  EXPECT_TRUE(RefsOnlyRange(*eb::Int(5), 0, 0));  // no refs at all
}

TEST(ExprAnalysisTest, ShiftColumnRefs) {
  ExprPtr e = eb::Add(eb::Col(3, DataType::kInt64),
                      eb::Col(5, DataType::kInt64));
  ShiftColumnRefs(e.get(), -2);
  EXPECT_EQ(e->children[0]->column_index, 1u);
  EXPECT_EQ(e->children[1]->column_index, 3u);
}

TEST_F(PlannerTest, CrossJoinPlusWhereBecomesInnerJoin) {
  const LogicalPlanPtr plan =
      BindAndOptimize("SELECT a.x FROM a, b WHERE a.x = b.x");
  // Project → Join (no Filter left in between).
  ASSERT_EQ(plan->kind, PlanKind::kProject);
  const LogicalPlan& join = *plan->children[0];
  ASSERT_EQ(join.kind, PlanKind::kJoin);
  EXPECT_EQ(join.join_type, JoinType::kInner);
  ASSERT_NE(join.join_condition, nullptr);
}

TEST_F(PlannerTest, SingleSideConjunctsPushToChildren) {
  const LogicalPlanPtr plan = BindAndOptimize(
      "SELECT a.x FROM a, b WHERE a.x = b.x AND a.y > 1 AND b.z < 5");
  const LogicalPlan& join = *plan->children[0];
  ASSERT_EQ(join.kind, PlanKind::kJoin);
  // Left child: Filter(a.y > 1) over Scan; right child likewise.
  EXPECT_EQ(join.children[0]->kind, PlanKind::kFilter);
  EXPECT_EQ(join.children[0]->children[0]->kind, PlanKind::kScan);
  EXPECT_EQ(join.children[1]->kind, PlanKind::kFilter);
  // Right-side predicate was re-based onto the right child's schema.
  EXPECT_TRUE(RefsOnlyRange(*join.children[1]->predicate, 0,
                            join.children[1]->schema.NumColumns()));
}

TEST_F(PlannerTest, StackedFiltersMerge) {
  const LogicalPlanPtr plan = BindAndOptimize(
      "SELECT x FROM (SELECT x, y FROM a WHERE y > 0) sub WHERE sub.x > 1");
  // Both predicates end up directly above (or fused into) the scan
  // without a Filter-over-Filter chain of the same schema.
  const LogicalPlan* node = plan.get();
  int filters_in_a_row = 0;
  int max_filters = 0;
  while (node != nullptr) {
    if (node->kind == PlanKind::kFilter) {
      ++filters_in_a_row;
      max_filters = std::max(max_filters, filters_in_a_row);
    } else {
      filters_in_a_row = 0;
    }
    node = node->children.empty() ? nullptr : node->children[0].get();
  }
  EXPECT_LE(max_filters, 2);  // project boundary may keep them apart
}

TEST_F(PlannerTest, LeftOuterJoinOnlyPushesLeftConjuncts) {
  Result<Statement> stmt = Parser::ParseStatement(
      "SELECT a.x FROM a LEFT OUTER JOIN b ON a.x = b.x WHERE a.y > 1 AND "
      "b.z IS NULL");
  ASSERT_TRUE(stmt.ok());
  Binder binder(&catalog_);
  Result<LogicalPlanPtr> bound = binder.BindSelect(*stmt->select);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  const LogicalPlanPtr plan = OptimizePlan(std::move(bound).value());
  // The b.z IS NULL conjunct must stay above the join (it would change
  // semantics below a left outer join); a.y > 1 may move down.
  const LogicalPlan* node = plan.get();
  ASSERT_EQ(node->kind, PlanKind::kProject);
  node = node->children[0].get();
  ASSERT_EQ(node->kind, PlanKind::kFilter);
  node = node->children[0].get();
  ASSERT_EQ(node->kind, PlanKind::kJoin);
  EXPECT_EQ(node->join_type, JoinType::kLeftOuter);
  EXPECT_EQ(node->children[0]->kind, PlanKind::kFilter);
}

TEST_F(PlannerTest, MixedDisjunctionStaysOnJoin) {
  const LogicalPlanPtr plan = BindAndOptimize(
      "SELECT a.x FROM a, b WHERE a.x = b.x OR a.y = b.z");
  const LogicalPlan& join = *plan->children[0];
  ASSERT_EQ(join.kind, PlanKind::kJoin);
  EXPECT_EQ(join.join_type, JoinType::kInner);
  ASSERT_NE(join.join_condition, nullptr);
  EXPECT_EQ(join.join_condition->binary_op, BinaryOp::kOr);
}

TEST(FoldConstantsTest, FoldsPureLiteralSubtrees) {
  ExprPtr e = eb::Add(eb::Int(1), eb::Mul(eb::Int(2), eb::Int(3)));
  FoldConstants(e.get());
  ASSERT_EQ(e->kind, ExprKind::kLiteral);
  EXPECT_EQ(e->literal, Value::Int(7));
}

TEST(FoldConstantsTest, FoldsAroundColumnRefs) {
  // col + (2 + 3): only the literal subtree folds.
  ExprPtr e = eb::Add(eb::Col(0, DataType::kInt64),
                      eb::Add(eb::Int(2), eb::Int(3)));
  FoldConstants(e.get());
  ASSERT_EQ(e->kind, ExprKind::kBinary);
  ASSERT_EQ(e->children[1]->kind, ExprKind::kLiteral);
  EXPECT_EQ(e->children[1]->literal, Value::Int(5));
}

TEST(FoldConstantsTest, FoldsModAndComparison) {
  ExprPtr e = eb::Eq(eb::Mod(eb::Int(-1), eb::Int(4)), eb::Int(3));
  FoldConstants(e.get());
  ASSERT_EQ(e->kind, ExprKind::kLiteral);
  EXPECT_EQ(e->literal, Value::Bool(true));
}

TEST(FoldConstantsTest, LeavesRuntimeErrorsInPlace) {
  // 1 / 0 must stay unfolded so execution reports the error.
  ExprPtr e = eb::Binary(BinaryOp::kDiv, eb::Int(1), eb::Int(0));
  FoldConstants(e.get());
  EXPECT_EQ(e->kind, ExprKind::kBinary);
}

TEST(FoldConstantsTest, NullFoldKeepsCheckedType) {
  ExprPtr e = eb::Add(eb::Int(1), eb::Null());
  e->type = DataType::kInt64;
  FoldConstants(e.get());
  ASSERT_EQ(e->kind, ExprKind::kLiteral);
  EXPECT_TRUE(e->literal.is_null());
  EXPECT_EQ(e->type, DataType::kInt64);
}

TEST_F(PlannerTest, PlanExpressionsAreFolded) {
  const LogicalPlanPtr plan =
      BindAndOptimize("SELECT x + (1 + 2) FROM a WHERE y > 2 * 3");
  // The projection's literal subtree and the filter's RHS folded.
  const LogicalPlan* project = plan.get();
  ASSERT_EQ(project->kind, PlanKind::kProject);
  EXPECT_EQ(project->projections[0]->children[1]->kind, ExprKind::kLiteral);
  const LogicalPlan* filter = project->children[0].get();
  ASSERT_EQ(filter->kind, PlanKind::kFilter);
  EXPECT_EQ(filter->predicate->children[1]->kind, ExprKind::kLiteral);
  EXPECT_EQ(filter->predicate->children[1]->literal, Value::Int(6));
}

TEST_F(PlannerTest, OptimizeIsIdempotentOnPlainScan) {
  LogicalPlanPtr plan = BindAndOptimize("SELECT x FROM a");
  const std::string once = plan->ToString();
  plan = OptimizePlan(std::move(plan));
  EXPECT_EQ(plan->ToString(), once);
}

}  // namespace
}  // namespace rfv
