#include "plan/binder.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace rfv {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Table*> t = catalog_.CreateTable(
        "seq", Schema({ColumnDef("pos", DataType::kInt64),
                       ColumnDef("val", DataType::kDouble)}));
    ASSERT_TRUE(t.ok());
    Result<Table*> u = catalog_.CreateTable(
        "dim", Schema({ColumnDef("id", DataType::kInt64),
                       ColumnDef("region", DataType::kString)}));
    ASSERT_TRUE(u.ok());
  }

  Result<LogicalPlanPtr> Bind(const std::string& sql) {
    Result<Statement> stmt = Parser::ParseStatement(sql);
    if (!stmt.ok()) return stmt.status();
    Binder binder(&catalog_);
    return binder.BindSelect(*stmt->select);
  }

  LogicalPlanPtr MustBind(const std::string& sql) {
    Result<LogicalPlanPtr> r = Bind(sql);
    EXPECT_TRUE(r.ok()) << sql << "\n  " << r.status().ToString();
    return r.ok() ? std::move(r).value() : nullptr;
  }

  Catalog catalog_;
};

TEST_F(BinderTest, SimpleProjectOverScan) {
  const LogicalPlanPtr plan = MustBind("SELECT pos, val FROM seq");
  ASSERT_EQ(plan->kind, PlanKind::kProject);
  EXPECT_EQ(plan->children[0]->kind, PlanKind::kScan);
  ASSERT_EQ(plan->schema.NumColumns(), 2u);
  EXPECT_EQ(plan->schema.column(0).name, "pos");
  EXPECT_EQ(plan->schema.column(0).type, DataType::kInt64);
}

TEST_F(BinderTest, StarExpansion) {
  const LogicalPlanPtr plan = MustBind("SELECT * FROM seq");
  EXPECT_EQ(plan->schema.NumColumns(), 2u);
}

TEST_F(BinderTest, QualifiedStarExpansion) {
  const LogicalPlanPtr plan =
      MustBind("SELECT s2.* FROM seq s1, seq s2");
  EXPECT_EQ(plan->schema.NumColumns(), 2u);
}

TEST_F(BinderTest, UnknownColumnIsBindError) {
  EXPECT_EQ(Bind("SELECT nope FROM seq").status().code(),
            StatusCode::kBindError);
}

TEST_F(BinderTest, UnknownTableIsNotFound) {
  EXPECT_EQ(Bind("SELECT a FROM nope").status().code(),
            StatusCode::kNotFound);
}

TEST_F(BinderTest, AmbiguousColumnAcrossAliases) {
  EXPECT_EQ(Bind("SELECT pos FROM seq s1, seq s2").status().code(),
            StatusCode::kBindError);
}

TEST_F(BinderTest, WhereBecomesFilter) {
  const LogicalPlanPtr plan = MustBind("SELECT pos FROM seq WHERE val > 1");
  ASSERT_EQ(plan->kind, PlanKind::kProject);
  EXPECT_EQ(plan->children[0]->kind, PlanKind::kFilter);
}

TEST_F(BinderTest, AggregateInWhereRejected) {
  EXPECT_EQ(Bind("SELECT pos FROM seq WHERE SUM(val) > 1").status().code(),
            StatusCode::kBindError);
}

TEST_F(BinderTest, GroupByProducesAggregate) {
  const LogicalPlanPtr plan =
      MustBind("SELECT pos, SUM(val), COUNT(*) FROM seq GROUP BY pos");
  const LogicalPlan* node = plan.get();
  ASSERT_EQ(node->kind, PlanKind::kProject);
  node = node->children[0].get();
  ASSERT_EQ(node->kind, PlanKind::kAggregate);
  EXPECT_EQ(node->group_by.size(), 1u);
  EXPECT_EQ(node->aggregates.size(), 2u);
  EXPECT_TRUE(node->aggregates[1].is_count_star);
}

TEST_F(BinderTest, AggregateOutputTypes) {
  const LogicalPlanPtr plan = MustBind(
      "SELECT SUM(pos), SUM(val), AVG(pos), COUNT(val), MIN(val) FROM seq "
      "GROUP BY pos");
  const LogicalPlan& agg = *plan->children[0];
  EXPECT_EQ(agg.aggregates[0].output_type, DataType::kInt64);
  EXPECT_EQ(agg.aggregates[1].output_type, DataType::kDouble);
  EXPECT_EQ(agg.aggregates[2].output_type, DataType::kDouble);
  EXPECT_EQ(agg.aggregates[3].output_type, DataType::kInt64);
  EXPECT_EQ(agg.aggregates[4].output_type, DataType::kDouble);
}

TEST_F(BinderTest, NonGroupedColumnInSelectRejected) {
  EXPECT_EQ(Bind("SELECT val, SUM(val) FROM seq GROUP BY pos")
                .status()
                .code(),
            StatusCode::kBindError);
}

TEST_F(BinderTest, HavingWithoutGroupingRejected) {
  EXPECT_EQ(Bind("SELECT pos FROM seq HAVING pos > 1").status().code(),
            StatusCode::kBindError);
}

TEST_F(BinderTest, HavingBindsAggregates) {
  const LogicalPlanPtr plan = MustBind(
      "SELECT pos FROM seq GROUP BY pos HAVING SUM(val) > 10");
  // Project over Filter over Aggregate.
  ASSERT_EQ(plan->children[0]->kind, PlanKind::kFilter);
  EXPECT_EQ(plan->children[0]->children[0]->kind, PlanKind::kAggregate);
}

TEST_F(BinderTest, WindowCallProducesWindowNode) {
  const LogicalPlanPtr plan = MustBind(
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING "
      "AND 1 FOLLOWING) FROM seq");
  ASSERT_EQ(plan->kind, PlanKind::kProject);
  const LogicalPlan& window = *plan->children[0];
  ASSERT_EQ(window.kind, PlanKind::kWindow);
  ASSERT_EQ(window.window_calls.size(), 1u);
  EXPECT_EQ(window.window_calls[0].frame, WindowFrame::Sliding(1, 1));
}

TEST_F(BinderTest, WindowDefaultFrameIsCumulative) {
  const LogicalPlanPtr plan = MustBind(
      "SELECT SUM(val) OVER (ORDER BY pos) FROM seq");
  EXPECT_EQ(plan->children[0]->window_calls[0].frame,
            WindowFrame::Cumulative());
}

TEST_F(BinderTest, WindowWithoutOrderIsWholePartition) {
  const LogicalPlanPtr plan =
      MustBind("SELECT SUM(val) OVER () FROM seq");
  EXPECT_EQ(plan->children[0]->window_calls[0].frame,
            WindowFrame::WholePartition());
}

TEST_F(BinderTest, MultipleWindowCalls) {
  const LogicalPlanPtr plan = MustBind(
      "SELECT SUM(val) OVER (ORDER BY pos), AVG(val) OVER (PARTITION BY "
      "pos ORDER BY val DESC) FROM seq");
  EXPECT_EQ(plan->children[0]->window_calls.size(), 2u);
  EXPECT_EQ(plan->children[0]->window_calls[1].partition_by.size(), 1u);
  EXPECT_FALSE(plan->children[0]->window_calls[1].order_by[0].ascending);
}

TEST_F(BinderTest, WindowInWhereRejected) {
  EXPECT_EQ(Bind("SELECT pos FROM seq WHERE SUM(val) OVER (ORDER BY pos) "
                 "> 1")
                .status()
                .code(),
            StatusCode::kBindError);
}

TEST_F(BinderTest, MalformedFrameRejected) {
  EXPECT_EQ(Bind("SELECT SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 "
                 "FOLLOWING AND 2 PRECEDING) FROM seq")
                .status()
                .code(),
            StatusCode::kBindError);
}

TEST_F(BinderTest, JoinSchemaConcatenation) {
  const LogicalPlanPtr plan = MustBind(
      "SELECT s.pos, d.region FROM seq s JOIN dim d ON s.pos = d.id");
  ASSERT_EQ(plan->schema.NumColumns(), 2u);
  const LogicalPlan& join = *plan->children[0];
  ASSERT_EQ(join.kind, PlanKind::kJoin);
  EXPECT_EQ(join.join_type, JoinType::kInner);
  EXPECT_EQ(join.schema.NumColumns(), 4u);
}

TEST_F(BinderTest, SubqueryWithAliasScope) {
  const LogicalPlanPtr plan = MustBind(
      "SELECT sub.p FROM (SELECT pos AS p FROM seq) sub WHERE sub.p > 1");
  EXPECT_EQ(plan->schema.NumColumns(), 1u);
}

TEST_F(BinderTest, UnionAllSchemaArity) {
  EXPECT_TRUE(Bind("SELECT pos FROM seq UNION ALL SELECT id FROM dim").ok());
  EXPECT_EQ(Bind("SELECT pos FROM seq UNION ALL SELECT id, region FROM dim")
                .status()
                .code(),
            StatusCode::kBindError);
}

TEST_F(BinderTest, OrderByAliasOrdinalAndQualified) {
  EXPECT_TRUE(Bind("SELECT pos AS p FROM seq ORDER BY p").ok());
  EXPECT_TRUE(Bind("SELECT pos FROM seq ORDER BY 1").ok());
  EXPECT_FALSE(Bind("SELECT pos FROM seq ORDER BY 5").ok());
  // Structural fallback: ORDER BY an expression that matches a select
  // item even though projection renamed it.
  EXPECT_TRUE(
      Bind("SELECT s1.pos AS pos FROM seq s1 ORDER BY s1.pos").ok());
}

TEST_F(BinderTest, LimitNode) {
  const LogicalPlanPtr plan = MustBind("SELECT pos FROM seq LIMIT 3");
  EXPECT_EQ(plan->kind, PlanKind::kLimit);
  EXPECT_EQ(plan->limit, 3);
}

TEST_F(BinderTest, GroupByExpressionMatching) {
  // The grouped expression reappears in the select list structurally.
  EXPECT_TRUE(
      Bind("SELECT MOD(pos, 4), COUNT(*) FROM seq GROUP BY MOD(pos, 4)")
          .ok());
}

TEST_F(BinderTest, TypeErrorSurfaces) {
  EXPECT_EQ(Bind("SELECT pos + val FROM dim, seq WHERE region > 1")
                .status()
                .code(),
            StatusCode::kTypeError);
}

}  // namespace
}  // namespace rfv
