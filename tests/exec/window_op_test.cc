#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <tuple>
#include <vector>

#include "test_util.h"

namespace rfv {
namespace {

using testutil::CreateSeqTable;
using testutil::MustExecute;

// Brute-force frame aggregate over the seq table values (pos 1..n).
std::vector<std::optional<double>> Brute(
    const std::vector<double>& vals, int64_t lo, int64_t hi, bool lo_unb,
    bool hi_unb, const std::string& fn) {
  const int64_t n = static_cast<int64_t>(vals.size());
  std::vector<std::optional<double>> out(vals.size());
  for (int64_t i = 0; i < n; ++i) {
    const int64_t from = lo_unb ? 0 : std::max<int64_t>(0, i + lo);
    const int64_t to = hi_unb ? n - 1 : std::min(n - 1, i + hi);
    if (to < from) {
      out[i] = fn == "COUNT" ? std::optional<double>(0) : std::nullopt;
      continue;
    }
    double acc = fn == "MIN" ? 1e300 : (fn == "MAX" ? -1e300 : 0);
    int64_t count = 0;
    for (int64_t j = from; j <= to; ++j) {
      ++count;
      if (fn == "MIN") acc = std::min(acc, vals[j]);
      else if (fn == "MAX") acc = std::max(acc, vals[j]);
      else acc += vals[j];
    }
    if (fn == "SUM") out[i] = acc;
    else if (fn == "AVG") out[i] = acc / static_cast<double>(count);
    else if (fn == "COUNT") out[i] = static_cast<double>(count);
    else out[i] = acc;
  }
  return out;
}

class WindowFrameSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int, int>> {};

TEST_P(WindowFrameSweep, MatchesBruteForce) {
  const auto& [fn, l, h] = GetParam();
  constexpr int kN = 40;
  Database db;
  CreateSeqTable(db, kN);
  std::vector<double> vals;
  {
    const ResultSet base = MustExecute(db, "SELECT val FROM seq ORDER BY pos");
    for (size_t i = 0; i < base.NumRows(); ++i) {
      vals.push_back(base.at(i, 0).AsDouble());
    }
  }
  const std::string frame = "ROWS BETWEEN " + std::to_string(l) +
                            " PRECEDING AND " + std::to_string(h) +
                            " FOLLOWING";
  const ResultSet rs = MustExecute(
      db, "SELECT pos, " + fn + "(val) OVER (ORDER BY pos " + frame +
              ") FROM seq ORDER BY pos");
  const auto expected = Brute(vals, -l, h, false, false, fn);
  ASSERT_EQ(rs.NumRows(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    if (!expected[i].has_value()) {
      EXPECT_TRUE(rs.at(i, 1).is_null()) << fn << " row " << i;
    } else {
      ASSERT_FALSE(rs.at(i, 1).is_null()) << fn << " row " << i;
      EXPECT_DOUBLE_EQ(rs.at(i, 1).ToDouble(), *expected[i])
          << fn << "(" << l << "," << h << ") row " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FnAndFrame, WindowFrameSweep,
    ::testing::Combine(::testing::Values("SUM", "AVG", "MIN", "MAX",
                                         "COUNT"),
                       ::testing::Values(0, 1, 3, 7),
                       ::testing::Values(0, 1, 2, 5)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int, int>>&
           info) {
      return std::get<0>(info.param) + "_l" +
             std::to_string(std::get<1>(info.param)) + "_h" +
             std::to_string(std::get<2>(info.param));
    });

TEST(WindowOpTest, CumulativeFrame) {
  Database db;
  CreateSeqTable(db, 20);
  const ResultSet rs = MustExecute(
      db, "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED "
          "PRECEDING) FROM seq ORDER BY pos");
  double running = 0;
  for (size_t i = 0; i < rs.NumRows(); ++i) {
    const ResultSet v = MustExecute(
        db, "SELECT val FROM seq WHERE pos = " + std::to_string(i + 1));
    running += v.at(0, 0).AsDouble();
    EXPECT_DOUBLE_EQ(rs.at(i, 1).AsDouble(), running);
  }
}

TEST(WindowOpTest, WholePartitionFrame) {
  Database db;
  CreateSeqTable(db, 10);
  const ResultSet rs = MustExecute(
      db, "SELECT pos, SUM(val) OVER () FROM seq ORDER BY pos");
  const ResultSet total = MustExecute(db, "SELECT SUM(val) FROM seq");
  for (size_t i = 0; i < rs.NumRows(); ++i) {
    EXPECT_EQ(rs.at(i, 1), total.at(0, 0));
  }
}

TEST(WindowOpTest, BackwardFrameIsEmptyAtStart) {
  Database db;
  CreateSeqTable(db, 5);
  // Frame 3 PRECEDING .. 1 PRECEDING: empty for the first row.
  const ResultSet rs = MustExecute(
      db, "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 "
          "PRECEDING AND 1 PRECEDING), COUNT(val) OVER (ORDER BY pos ROWS "
          "BETWEEN 3 PRECEDING AND 1 PRECEDING) FROM seq ORDER BY pos");
  EXPECT_TRUE(rs.at(0, 1).is_null());
  EXPECT_EQ(rs.at(0, 2), Value::Int(0));
  EXPECT_FALSE(rs.at(1, 1).is_null());
}

TEST(WindowOpTest, PartitionByRestartsFrames) {
  Database db;
  MustExecute(db, "CREATE TABLE p (grp INTEGER, pos INTEGER, val DOUBLE)");
  MustExecute(db,
              "INSERT INTO p VALUES (1, 1, 10), (1, 2, 20), (1, 3, 30), "
              "(2, 1, 100), (2, 2, 200)");
  const ResultSet rs = MustExecute(
      db, "SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos "
          "ROWS UNBOUNDED PRECEDING) FROM p ORDER BY grp, pos");
  EXPECT_DOUBLE_EQ(rs.at(2, 2).AsDouble(), 60.0);
  EXPECT_DOUBLE_EQ(rs.at(3, 2).AsDouble(), 100.0);  // restart
  EXPECT_DOUBLE_EQ(rs.at(4, 2).AsDouble(), 300.0);
}

TEST(WindowOpTest, PartitionByExpression) {
  Database db;
  CreateSeqTable(db, 12);
  const ResultSet rs = MustExecute(
      db, "SELECT pos, SUM(val) OVER (PARTITION BY MOD(pos, 3) ORDER BY "
          "pos ROWS UNBOUNDED PRECEDING) FROM seq ORDER BY pos");
  EXPECT_EQ(rs.NumRows(), 12u);
  // Row pos=4 accumulates pos 1 and 4 (congruence class 1 mod 3).
  const ResultSet vals = MustExecute(db, "SELECT val FROM seq ORDER BY pos");
  EXPECT_DOUBLE_EQ(rs.at(3, 1).AsDouble(),
                   vals.at(0, 0).AsDouble() + vals.at(3, 0).AsDouble());
}

TEST(WindowOpTest, CountStarInWindow) {
  Database db;
  CreateSeqTable(db, 6);
  const ResultSet rs = MustExecute(
      db, "SELECT pos, COUNT(*) OVER (ORDER BY pos ROWS BETWEEN 1 "
          "PRECEDING AND 1 FOLLOWING) FROM seq ORDER BY pos");
  EXPECT_EQ(rs.at(0, 1), Value::Int(2));  // clipped at the start
  EXPECT_EQ(rs.at(2, 1), Value::Int(3));
  EXPECT_EQ(rs.at(5, 1), Value::Int(2));  // clipped at the end
}

TEST(WindowOpTest, NullArgumentsIgnoredBySumAvg) {
  Database db;
  MustExecute(db, "CREATE TABLE t (pos INTEGER, val DOUBLE)");
  MustExecute(db, "INSERT INTO t VALUES (1, 10), (2, NULL), (3, 30)");
  const ResultSet rs = MustExecute(
      db, "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 "
          "PRECEDING AND 1 FOLLOWING), AVG(val) OVER (ORDER BY pos ROWS "
          "BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM t ORDER BY pos");
  EXPECT_DOUBLE_EQ(rs.at(1, 1).AsDouble(), 40.0);
  EXPECT_DOUBLE_EQ(rs.at(1, 2).AsDouble(), 20.0);  // AVG over 2 non-null
}

TEST(WindowOpTest, MultipleCallsDifferentSortOrders) {
  Database db;
  CreateSeqTable(db, 15);
  const ResultSet rs = MustExecute(
      db, "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 "
          "PRECEDING AND 1 FOLLOWING), SUM(val) OVER (ORDER BY pos DESC "
          "ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM seq ORDER BY "
          "pos");
  // Centered symmetric windows agree in both sort directions.
  for (size_t i = 0; i < rs.NumRows(); ++i) {
    EXPECT_EQ(rs.at(i, 1), rs.at(i, 2));
  }
}

TEST(WindowOpTest, RangeFrameValueDistances) {
  Database db;
  // Sparse timestamps: RANGE must window by value, not by row count.
  MustExecute(db, "CREATE TABLE t (ts INTEGER, v DOUBLE)");
  MustExecute(db,
              "INSERT INTO t VALUES (1, 10), (2, 20), (5, 50), (6, 60), "
              "(20, 200)");
  const ResultSet rs = MustExecute(
      db, "SELECT ts, SUM(v) OVER (ORDER BY ts RANGE BETWEEN 1 PRECEDING "
          "AND 1 FOLLOWING) FROM t ORDER BY ts");
  // ts=1: {1,2}=30; ts=2: {1,2}=30; ts=5: {5,6}=110; ts=6: {5,6}=110;
  // ts=20: {20}=200.
  EXPECT_DOUBLE_EQ(rs.at(0, 1).AsDouble(), 30);
  EXPECT_DOUBLE_EQ(rs.at(1, 1).AsDouble(), 30);
  EXPECT_DOUBLE_EQ(rs.at(2, 1).AsDouble(), 110);
  EXPECT_DOUBLE_EQ(rs.at(3, 1).AsDouble(), 110);
  EXPECT_DOUBLE_EQ(rs.at(4, 1).AsDouble(), 200);
}

TEST(WindowOpTest, RangeCurrentRowIncludesPeers) {
  Database db;
  MustExecute(db, "CREATE TABLE t (k INTEGER, v DOUBLE)");
  MustExecute(db, "INSERT INTO t VALUES (1, 10), (2, 20), (2, 30), (3, 40)");
  // RANGE UNBOUNDED PRECEDING .. CURRENT ROW: peers (equal keys) are in
  // the frame — unlike ROWS.
  const ResultSet rs = MustExecute(
      db, "SELECT k, v, SUM(v) OVER (ORDER BY k RANGE BETWEEN UNBOUNDED "
          "PRECEDING AND CURRENT ROW) FROM t ORDER BY k, v");
  EXPECT_DOUBLE_EQ(rs.at(1, 2).AsDouble(), 60);  // both k=2 rows included
  EXPECT_DOUBLE_EQ(rs.at(2, 2).AsDouble(), 60);
  EXPECT_DOUBLE_EQ(rs.at(3, 2).AsDouble(), 100);
}

TEST(WindowOpTest, RangeMatchesRowsOnDensePositions) {
  Database db;
  CreateSeqTable(db, 25);
  const ResultSet range = MustExecute(
      db, "SELECT pos, SUM(val) OVER (ORDER BY pos RANGE BETWEEN 2 "
          "PRECEDING AND 1 FOLLOWING) FROM seq ORDER BY pos");
  const ResultSet rows = MustExecute(
      db, "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 "
          "PRECEDING AND 1 FOLLOWING) FROM seq ORDER BY pos");
  for (size_t i = 0; i < range.NumRows(); ++i) {
    EXPECT_EQ(range.at(i, 1), rows.at(i, 1)) << i;
  }
}

TEST(WindowOpTest, RangeWithMinMax) {
  Database db;
  MustExecute(db, "CREATE TABLE t (ts INTEGER, v DOUBLE)");
  MustExecute(db, "INSERT INTO t VALUES (1, 5), (3, 1), (4, 9), (10, 2)");
  const ResultSet rs = MustExecute(
      db, "SELECT ts, MIN(v) OVER (ORDER BY ts RANGE BETWEEN 2 PRECEDING "
          "AND 2 FOLLOWING) FROM t ORDER BY ts");
  EXPECT_DOUBLE_EQ(rs.at(0, 1).AsDouble(), 1);  // ts=1 sees {1,3}
  EXPECT_DOUBLE_EQ(rs.at(3, 1).AsDouble(), 2);  // ts=10 sees only itself
}

TEST(WindowOpTest, RangeFrameErrors) {
  Database db;
  MustExecute(db, "CREATE TABLE t (k VARCHAR, v DOUBLE)");
  MustExecute(db, "INSERT INTO t VALUES ('a', 1)");
  // Non-numeric key.
  EXPECT_EQ(db.Execute("SELECT SUM(v) OVER (ORDER BY k RANGE BETWEEN 1 "
                       "PRECEDING AND 1 FOLLOWING) FROM t")
                .status()
                .code(),
            StatusCode::kBindError);
  // Descending key.
  MustExecute(db, "CREATE TABLE t2 (k INTEGER, v DOUBLE)");
  MustExecute(db, "INSERT INTO t2 VALUES (1, 1)");
  EXPECT_EQ(db.Execute("SELECT SUM(v) OVER (ORDER BY k DESC RANGE BETWEEN "
                       "1 PRECEDING AND 1 FOLLOWING) FROM t2")
                .status()
                .code(),
            StatusCode::kBindError);
  // NULL keys at runtime.
  MustExecute(db, "CREATE TABLE t3 (k INTEGER, v DOUBLE)");
  MustExecute(db, "INSERT INTO t3 VALUES (NULL, 1), (1, 2)");
  EXPECT_EQ(db.Execute("SELECT SUM(v) OVER (ORDER BY k RANGE BETWEEN 1 "
                       "PRECEDING AND 1 FOLLOWING) FROM t3")
                .status()
                .code(),
            StatusCode::kExecutionError);
}

// Brute-force sweep for RANGE frames over sparse, duplicated keys.
class RangeFrameSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int, int>> {};

TEST_P(RangeFrameSweep, MatchesBruteForce) {
  const auto& [fn, l, h] = GetParam();
  Database db;
  MustExecute(db, "CREATE TABLE t (ts INTEGER, v DOUBLE)");
  // Sparse keys with duplicates (peers).
  std::vector<std::pair<int, double>> data;
  int ts = 0;
  unsigned state = 12345 + l * 7 + h;
  for (int i = 0; i < 30; ++i) {
    state = state * 1103515245 + 12345;
    ts += (state >> 16) % 4;  // gaps of 0..3 (duplicates possible)
    data.emplace_back(ts, static_cast<double>((state >> 8) % 100) - 50);
  }
  std::string insert = "INSERT INTO t VALUES ";
  for (size_t i = 0; i < data.size(); ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(data[i].first) + ", " +
              std::to_string(data[i].second) + ")";
  }
  MustExecute(db, insert);

  const ResultSet rs = MustExecute(
      db, "SELECT ts, v, " + fn + "(v) OVER (ORDER BY ts RANGE BETWEEN " +
              std::to_string(l) + " PRECEDING AND " + std::to_string(h) +
              " FOLLOWING) FROM t ORDER BY ts, v");
  ASSERT_EQ(rs.NumRows(), data.size());
  for (size_t i = 0; i < rs.NumRows(); ++i) {
    const double key = rs.at(i, 0).ToDouble();
    double sum = 0;
    double mn = 1e300;
    double mx = -1e300;
    int64_t count = 0;
    for (const auto& [k, v] : data) {
      if (k >= key - l && k <= key + h) {
        sum += v;
        mn = std::min(mn, v);
        mx = std::max(mx, v);
        ++count;
      }
    }
    double expected = 0;
    if (fn == "SUM") expected = sum;
    else if (fn == "AVG") expected = sum / static_cast<double>(count);
    else if (fn == "MIN") expected = mn;
    else if (fn == "MAX") expected = mx;
    else expected = static_cast<double>(count);
    ASSERT_FALSE(rs.at(i, 2).is_null()) << fn << " row " << i;
    EXPECT_DOUBLE_EQ(rs.at(i, 2).ToDouble(), expected)
        << fn << "(" << l << "," << h << ") row " << i << " key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FnAndDistance, RangeFrameSweep,
    ::testing::Combine(::testing::Values("SUM", "AVG", "MIN", "MAX",
                                         "COUNT"),
                       ::testing::Values(0, 1, 4), ::testing::Values(0, 2)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int, int>>&
           info) {
      return std::get<0>(info.param) + "_l" +
             std::to_string(std::get<1>(info.param)) + "_h" +
             std::to_string(std::get<2>(info.param));
    });

TEST(WindowOpTest, RangeQueryNotRewrittenFromViews) {
  Database db;
  CreateSeqTable(db, 10);
  MustExecute(db,
              "CREATE MATERIALIZED VIEW v AS SELECT pos, SUM(val) OVER "
              "(ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) "
              "FROM seq");
  const ResultSet rs = MustExecute(
      db, "SELECT pos, SUM(val) OVER (ORDER BY pos RANGE BETWEEN 1 "
          "PRECEDING AND 1 FOLLOWING) FROM seq ORDER BY pos");
  EXPECT_TRUE(rs.rewrite_method().empty());
}

TEST(WindowOpTest, RowNumber) {
  Database db;
  MustExecute(db, "CREATE TABLE t (grp INTEGER, v DOUBLE)");
  MustExecute(db,
              "INSERT INTO t VALUES (1, 30), (1, 10), (1, 20), (2, 5), "
              "(2, 15)");
  const ResultSet rs = MustExecute(
      db, "SELECT grp, v, ROW_NUMBER() OVER (PARTITION BY grp ORDER BY v "
          "DESC) AS rn FROM t ORDER BY grp, rn");
  ASSERT_EQ(rs.NumRows(), 5u);
  EXPECT_EQ(rs.at(0, 1), Value::Double(30));
  EXPECT_EQ(rs.at(0, 2), Value::Int(1));
  EXPECT_EQ(rs.at(2, 1), Value::Double(10));
  EXPECT_EQ(rs.at(2, 2), Value::Int(3));
  EXPECT_EQ(rs.at(3, 2), Value::Int(1));  // restart per partition
}

TEST(WindowOpTest, RankWithTies) {
  Database db;
  MustExecute(db, "CREATE TABLE t (v DOUBLE)");
  MustExecute(db, "INSERT INTO t VALUES (10), (20), (20), (30)");
  const ResultSet rs = MustExecute(
      db, "SELECT v, RANK() OVER (ORDER BY v) AS r, ROW_NUMBER() OVER "
          "(ORDER BY v) AS rn FROM t ORDER BY rn");
  EXPECT_EQ(rs.at(0, 1), Value::Int(1));
  EXPECT_EQ(rs.at(1, 1), Value::Int(2));
  EXPECT_EQ(rs.at(2, 1), Value::Int(2));  // tie shares the rank
  EXPECT_EQ(rs.at(3, 1), Value::Int(4));  // gap after the tie
}

TEST(WindowOpTest, TopNAnalysisPaperIntro) {
  // "TOP(n)-analyses" (paper §1): top-2 values via ROW_NUMBER + a
  // derived-table filter.
  Database db;
  CreateSeqTable(db, 30);
  const ResultSet rs = MustExecute(
      db, "SELECT r.pos, r.val FROM (SELECT pos, val, ROW_NUMBER() OVER "
          "(ORDER BY val DESC) AS rn FROM seq) r WHERE r.rn <= 2 ORDER BY "
          "r.val DESC");
  ASSERT_EQ(rs.NumRows(), 2u);
  const ResultSet max = MustExecute(db, "SELECT MAX(val) FROM seq");
  EXPECT_EQ(rs.at(0, 1), max.at(0, 0));
}

TEST(WindowOpTest, RankingFunctionErrors) {
  Database db;
  CreateSeqTable(db, 3);
  EXPECT_EQ(db.Execute("SELECT ROW_NUMBER() OVER () FROM seq")
                .status()
                .code(),
            StatusCode::kBindError);
  EXPECT_EQ(db.Execute("SELECT RANK() OVER (ORDER BY pos ROWS BETWEEN 1 "
                       "PRECEDING AND 1 FOLLOWING) FROM seq")
                .status()
                .code(),
            StatusCode::kBindError);
  EXPECT_EQ(db.Execute("SELECT ROW_NUMBER(pos) OVER (ORDER BY pos) FROM "
                       "seq")
                .status()
                .code(),
            StatusCode::kBindError);
}

TEST(WindowOpTest, MultiColumnWindowOrdering) {
  // Paper §6: reporting sequences ordered by multiple columns — the
  // native operator sorts by the full (month, day) key list.
  Database db;
  MustExecute(db, "CREATE TABLE t (mon INTEGER, day INTEGER, v DOUBLE)");
  MustExecute(db,
              "INSERT INTO t VALUES (2, 1, 30), (1, 2, 20), (1, 1, 10), "
              "(2, 2, 40)");
  const ResultSet rs = MustExecute(
      db, "SELECT mon, day, SUM(v) OVER (ORDER BY mon, day ROWS UNBOUNDED "
          "PRECEDING) FROM t ORDER BY mon, day");
  // Linearized order (1,1),(1,2),(2,1),(2,2) → cumulative 10,30,60,100.
  EXPECT_DOUBLE_EQ(rs.at(0, 2).AsDouble(), 10);
  EXPECT_DOUBLE_EQ(rs.at(1, 2).AsDouble(), 30);
  EXPECT_DOUBLE_EQ(rs.at(2, 2).AsDouble(), 60);
  EXPECT_DOUBLE_EQ(rs.at(3, 2).AsDouble(), 100);
}

TEST(WindowOpTest, ForwardFrameEmptyAtPartitionEnd) {
  // ROWS BETWEEN 2 FOLLOWING AND 4 FOLLOWING: the last two rows have an
  // empty frame — SUM/AVG/MIN/MAX must be NULL, COUNT must be 0.
  Database db;
  CreateSeqTable(db, 6);
  const ResultSet rs = MustExecute(
      db, "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 "
          "FOLLOWING AND 4 FOLLOWING), COUNT(val) OVER (ORDER BY pos ROWS "
          "BETWEEN 2 FOLLOWING AND 4 FOLLOWING), MIN(val) OVER (ORDER BY "
          "pos ROWS BETWEEN 2 FOLLOWING AND 4 FOLLOWING) FROM seq ORDER "
          "BY pos");
  ASSERT_EQ(rs.NumRows(), 6u);
  for (size_t i = 4; i < 6; ++i) {
    EXPECT_TRUE(rs.at(i, 1).is_null()) << "SUM row " << i;
    EXPECT_EQ(rs.at(i, 2), Value::Int(0)) << "COUNT row " << i;
    EXPECT_TRUE(rs.at(i, 3).is_null()) << "MIN row " << i;
  }
  EXPECT_FALSE(rs.at(3, 1).is_null());  // pos=4 still sees pos=6
}

TEST(WindowOpTest, RangeFrameEmptyOnKeyGaps) {
  // Sparse keys: RANGE BETWEEN 1 FOLLOWING AND 2 FOLLOWING is empty for
  // rows with no successor key within (key+1, key+2].
  Database db;
  MustExecute(db, "CREATE TABLE t (ts INTEGER, v DOUBLE)");
  MustExecute(db, "INSERT INTO t VALUES (1, 10), (2, 20), (10, 100)");
  const ResultSet rs = MustExecute(
      db, "SELECT ts, SUM(v) OVER (ORDER BY ts RANGE BETWEEN 1 FOLLOWING "
          "AND 2 FOLLOWING), COUNT(v) OVER (ORDER BY ts RANGE BETWEEN 1 "
          "FOLLOWING AND 2 FOLLOWING) FROM t ORDER BY ts");
  // ts=1 sees {2}=20; ts=2 and ts=10 see nothing.
  EXPECT_DOUBLE_EQ(rs.at(0, 1).AsDouble(), 20);
  EXPECT_EQ(rs.at(0, 2), Value::Int(1));
  EXPECT_TRUE(rs.at(1, 1).is_null());
  EXPECT_EQ(rs.at(1, 2), Value::Int(0));
  EXPECT_TRUE(rs.at(2, 1).is_null());
  EXPECT_EQ(rs.at(2, 2), Value::Int(0));
}

TEST(WindowOpTest, RankOverNullOrderKeys) {
  // NULL order keys sort together (first) and are peers: they share one
  // rank, and the next non-NULL key gets a gapped rank.
  Database db;
  MustExecute(db, "CREATE TABLE t (v DOUBLE)");
  MustExecute(db, "INSERT INTO t VALUES (NULL), (NULL), (10), (10), (20)");
  const ResultSet rs = MustExecute(
      db, "SELECT v, RANK() OVER (ORDER BY v) AS r FROM t ORDER BY r, v");
  ASSERT_EQ(rs.NumRows(), 5u);
  EXPECT_TRUE(rs.at(0, 0).is_null());
  EXPECT_EQ(rs.at(0, 1), Value::Int(1));
  EXPECT_EQ(rs.at(1, 1), Value::Int(1));  // NULLs are rank peers
  EXPECT_EQ(rs.at(2, 1), Value::Int(3));  // gap after the NULL tie
  EXPECT_EQ(rs.at(3, 1), Value::Int(3));
  EXPECT_EQ(rs.at(4, 1), Value::Int(5));
}

TEST(WindowOpTest, WindowOverEmptyTable) {
  Database db;
  CreateSeqTable(db, 0);
  EXPECT_EQ(MustExecute(db,
                        "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS "
                        "BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM seq")
                .NumRows(),
            0u);
}

}  // namespace
}  // namespace rfv
