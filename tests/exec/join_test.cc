#include <gtest/gtest.h>

#include "exec/operators.h"
#include "expr/builder.h"
#include "test_util.h"

namespace rfv {
namespace {

using testutil::CreateSeqTable;
using testutil::MustExecute;
using testutil::RowsEqual;

// --- probe extraction unit tests -------------------------------------------

class ProbeExtractionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>(
        "matseq", Schema({ColumnDef("pos", DataType::kInt64),
                          ColumnDef("val", DataType::kDouble)}));
    for (int i = 1; i <= 10; ++i) {
      ASSERT_TRUE(
          table_->Insert(Row({Value::Int(i), Value::Double(i)})).ok());
    }
    ASSERT_TRUE(table_->CreateIndex("pk", "pos").ok());
  }

  // Joined schema: left = (pos, val) columns 0-1, right = columns 2-3.
  static constexpr size_t kLeftWidth = 2;
  static constexpr size_t kRightPos = 2;

  std::unique_ptr<Table> table_;
};

TEST_F(ProbeExtractionTest, EqualityPoint) {
  // right.pos = left.pos + 1
  const ExprPtr cond =
      eb::Eq(eb::Col(kRightPos, DataType::kInt64),
             eb::Add(eb::Col(0, DataType::kInt64), eb::Int(1)));
  const auto probe = TryExtractIndexProbe(*cond, kLeftWidth, table_.get());
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ(probe->point_exprs.size(), 1u);
  EXPECT_FALSE(probe->approximate);
  EXPECT_EQ(probe->residual, nullptr);
}

TEST_F(ProbeExtractionTest, ReversedEquality) {
  const ExprPtr cond = eb::Eq(eb::Col(0, DataType::kInt64),
                              eb::Col(kRightPos, DataType::kInt64));
  const auto probe = TryExtractIndexProbe(*cond, kLeftWidth, table_.get());
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ(probe->point_exprs.size(), 1u);
}

TEST_F(ProbeExtractionTest, InWithRightColumnNeedle) {
  // right.pos IN (left.pos - 1, left.pos)
  std::vector<ExprPtr> candidates;
  candidates.push_back(eb::Sub(eb::Col(0, DataType::kInt64), eb::Int(1)));
  candidates.push_back(eb::Col(0, DataType::kInt64));
  const ExprPtr cond =
      eb::In(eb::Col(kRightPos, DataType::kInt64), std::move(candidates));
  const auto probe = TryExtractIndexProbe(*cond, kLeftWidth, table_.get());
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ(probe->point_exprs.size(), 2u);
  EXPECT_FALSE(probe->approximate);
}

TEST_F(ProbeExtractionTest, InvertedInPaperFig2Shape) {
  // left.pos IN (right.pos - 1, right.pos, right.pos + 1)
  std::vector<ExprPtr> candidates;
  candidates.push_back(
      eb::Sub(eb::Col(kRightPos, DataType::kInt64), eb::Int(1)));
  candidates.push_back(eb::Col(kRightPos, DataType::kInt64));
  candidates.push_back(
      eb::Add(eb::Col(kRightPos, DataType::kInt64), eb::Int(1)));
  const ExprPtr cond =
      eb::In(eb::Col(0, DataType::kInt64), std::move(candidates));
  const auto probe = TryExtractIndexProbe(*cond, kLeftWidth, table_.get());
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ(probe->point_exprs.size(), 3u);
  EXPECT_FALSE(probe->approximate);
}

TEST_F(ProbeExtractionTest, BetweenRange) {
  const ExprPtr cond = eb::Between(
      eb::Col(kRightPos, DataType::kInt64),
      eb::Sub(eb::Col(0, DataType::kInt64), eb::Int(2)),
      eb::Add(eb::Col(0, DataType::kInt64), eb::Int(1)));
  const auto probe = TryExtractIndexProbe(*cond, kLeftWidth, table_.get());
  ASSERT_TRUE(probe.has_value());
  EXPECT_TRUE(probe->point_exprs.empty());
  ASSERT_NE(probe->range_lo, nullptr);
  ASSERT_NE(probe->range_hi, nullptr);
  EXPECT_FALSE(probe->approximate);
}

TEST_F(ProbeExtractionTest, StrictBoundIsApproximate) {
  // right.pos < left.pos → approximate upper bound, residual re-check.
  const ExprPtr cond = eb::Lt(eb::Col(kRightPos, DataType::kInt64),
                              eb::Col(0, DataType::kInt64));
  const auto probe = TryExtractIndexProbe(*cond, kLeftWidth, table_.get());
  ASSERT_TRUE(probe.has_value());
  EXPECT_TRUE(probe->approximate);
  ASSERT_NE(probe->range_hi, nullptr);
  EXPECT_EQ(probe->range_lo, nullptr);
}

TEST_F(ProbeExtractionTest, RangeConjunctsIntersect) {
  // right.pos >= left.pos - 3 AND right.pos <= left.pos
  const ExprPtr cond = eb::And(
      eb::Ge(eb::Col(kRightPos, DataType::kInt64),
             eb::Sub(eb::Col(0, DataType::kInt64), eb::Int(3))),
      eb::Le(eb::Col(kRightPos, DataType::kInt64),
             eb::Col(0, DataType::kInt64)));
  const auto probe = TryExtractIndexProbe(*cond, kLeftWidth, table_.get());
  ASSERT_TRUE(probe.has_value());
  EXPECT_NE(probe->range_lo, nullptr);
  EXPECT_NE(probe->range_hi, nullptr);
  EXPECT_FALSE(probe->approximate);
}

TEST_F(ProbeExtractionTest, DisjunctionUnionsProbes) {
  // The MaxOA Fig. 10 shape: (r < l AND MOD..) OR (r < l - 4 AND MOD..).
  const auto mod_eq = [&](int64_t shift) {
    return eb::Eq(
        eb::Mod(eb::Sub(eb::Col(0, DataType::kInt64), eb::Int(shift)),
                eb::Int(4)),
        eb::Mod(eb::Col(kRightPos, DataType::kInt64), eb::Int(4)));
  };
  ExprPtr branch1 = eb::And(eb::Gt(eb::Col(0, DataType::kInt64),
                                   eb::Col(kRightPos, DataType::kInt64)),
                            mod_eq(0));
  ExprPtr branch2 = eb::And(
      eb::Gt(eb::Sub(eb::Col(0, DataType::kInt64), eb::Int(4)),
             eb::Col(kRightPos, DataType::kInt64)),
      mod_eq(1));
  const ExprPtr cond = eb::Or(std::move(branch1), std::move(branch2));
  const auto probe = TryExtractIndexProbe(*cond, kLeftWidth, table_.get());
  ASSERT_TRUE(probe.has_value());
  EXPECT_TRUE(probe->approximate);
  EXPECT_NE(probe->range_hi, nullptr);  // hull of the two upper bounds
}

TEST_F(ProbeExtractionTest, NoIndexNoProbe) {
  Table no_index("t", Schema({ColumnDef("pos", DataType::kInt64)}));
  const ExprPtr cond =
      eb::Eq(eb::Col(1, DataType::kInt64), eb::Col(0, DataType::kInt64));
  EXPECT_FALSE(TryExtractIndexProbe(*cond, 1, &no_index).has_value());
}

TEST_F(ProbeExtractionTest, UnusableConditionNoProbe) {
  // MOD(right.pos, 4) = 2 — no usable pattern on the raw column.
  const ExprPtr cond = eb::Eq(
      eb::Mod(eb::Col(kRightPos, DataType::kInt64), eb::Int(4)), eb::Int(2));
  EXPECT_FALSE(
      TryExtractIndexProbe(*cond, kLeftWidth, table_.get()).has_value());
}

// --- end-to-end equivalence: INLJ == NLJ over many predicates --------------

struct JoinCase {
  const char* name;
  const char* sql;
};

class JoinEquivalenceTest : public ::testing::TestWithParam<JoinCase> {};

TEST_P(JoinEquivalenceTest, IndexAndNestedLoopAgree) {
  Database db;
  CreateSeqTable(db, 60);
  const std::string sql = GetParam().sql;
  const ResultSet with_index = MustExecute(db, sql);
  db.options().exec.enable_index_nested_loop_join = false;
  db.options().exec.enable_hash_join = false;
  const ResultSet without_index = MustExecute(db, sql);
  EXPECT_TRUE(RowsEqual(with_index, without_index)) << GetParam().name;
}

// Sort-merge join must agree with hash join and nested loops on every
// equi-join shape, including duplicates, NULL keys and left outer joins.
class SortMergeEquivalenceTest : public ::testing::TestWithParam<JoinCase> {};

TEST_P(SortMergeEquivalenceTest, AllEquiStrategiesAgree) {
  Database db;
  MustExecute(db, "CREATE TABLE l (k INTEGER, v DOUBLE)");
  MustExecute(db, "CREATE TABLE r (k INTEGER, w DOUBLE)");
  MustExecute(db,
              "INSERT INTO l VALUES (1, 10), (2, 20), (2, 21), (3, 30), "
              "(NULL, 40), (7, 70)");
  MustExecute(db,
              "INSERT INTO r VALUES (2, 200), (2, 201), (3, 300), "
              "(NULL, 400), (9, 900)");
  const std::string sql = GetParam().sql;

  db.options().exec.enable_hash_join = true;
  db.options().exec.enable_sort_merge_join = false;
  const ResultSet hash = MustExecute(db, sql);

  db.options().exec.enable_hash_join = false;
  db.options().exec.enable_sort_merge_join = true;
  const ResultSet smj = MustExecute(db, sql);

  db.options().exec.enable_sort_merge_join = false;
  db.options().exec.enable_index_nested_loop_join = false;
  const ResultSet nlj = MustExecute(db, sql);

  EXPECT_TRUE(RowsEqual(hash, smj)) << GetParam().name << " (hash vs smj)";
  EXPECT_TRUE(RowsEqual(hash, nlj)) << GetParam().name << " (hash vs nlj)";
}

INSTANTIATE_TEST_SUITE_P(
    EquiShapes, SortMergeEquivalenceTest,
    ::testing::Values(
        JoinCase{"inner_with_duplicates",
                 "SELECT l.k, l.v, r.w FROM l JOIN r ON l.k = r.k ORDER BY "
                 "1, 2, 3"},
        JoinCase{"left_outer_null_padding",
                 "SELECT l.k, l.v, r.w FROM l LEFT OUTER JOIN r ON l.k = "
                 "r.k ORDER BY 2, 3"},
        JoinCase{"residual_condition",
                 "SELECT l.k, r.w FROM l JOIN r ON l.k = r.k AND l.v + r.w "
                 "> 220 ORDER BY 1, 2"},
        JoinCase{"computed_keys",
                 "SELECT l.k, r.k FROM l JOIN r ON l.k + 1 = r.k - 1 ORDER "
                 "BY 1, 2"},
        JoinCase{"aggregate_above",
                 "SELECT l.k, COUNT(*) FROM l JOIN r ON l.k = r.k GROUP BY "
                 "l.k ORDER BY 1"}),
    [](const ::testing::TestParamInfo<JoinCase>& info) {
      return info.param.name;
    });

INSTANTIATE_TEST_SUITE_P(
    Predicates, JoinEquivalenceTest,
    ::testing::Values(
        JoinCase{"equality",
                 "SELECT s1.pos, s2.val FROM seq s1, seq s2 WHERE s1.pos = "
                 "s2.pos ORDER BY 1, 2"},
        JoinCase{"shifted_equality",
                 "SELECT s1.pos, s2.val FROM seq s1, seq s2 WHERE s2.pos = "
                 "s1.pos + 3 ORDER BY 1, 2"},
        JoinCase{"in_right_needle",
                 "SELECT s1.pos, s2.val FROM seq s1, seq s2 WHERE s2.pos IN "
                 "(s1.pos - 1, s1.pos) ORDER BY 1, 2"},
        JoinCase{"in_inverted_fig2",
                 "SELECT s1.pos, s2.val FROM seq s1, seq s2 WHERE s1.pos IN "
                 "(s2.pos - 1, s2.pos, s2.pos + 1) ORDER BY 1, 2"},
        JoinCase{"between",
                 "SELECT s1.pos, s2.val FROM seq s1, seq s2 WHERE s2.pos "
                 "BETWEEN s1.pos - 2 AND s1.pos + 2 ORDER BY 1, 2"},
        JoinCase{"strict_range",
                 "SELECT s1.pos, COUNT(*) FROM seq s1, seq s2 WHERE s2.pos < "
                 "s1.pos GROUP BY s1.pos ORDER BY 1"},
        JoinCase{"two_sided_range",
                 "SELECT s1.pos, SUM(s2.val) FROM seq s1, seq s2 WHERE "
                 "s2.pos >= s1.pos - 3 AND s2.pos <= s1.pos GROUP BY s1.pos "
                 "ORDER BY 1"},
        JoinCase{"disjunctive_mod",
                 "SELECT s1.pos, SUM(s2.val) FROM seq s1, seq s2 WHERE "
                 "((s1.pos > s2.pos) AND (MOD(s1.pos, 4) = MOD(s2.pos, 4))) "
                 "OR ((s1.pos - 4 > s2.pos) AND (MOD(s1.pos - 1, 4) = "
                 "MOD(s2.pos, 4))) GROUP BY s1.pos ORDER BY 1"},
        JoinCase{"left_outer",
                 "SELECT s1.pos, s2.pos FROM seq s1 LEFT OUTER JOIN seq s2 "
                 "ON s2.pos = s1.pos - 50 ORDER BY 1, 2"},
        JoinCase{"residual_filter",
                 "SELECT s1.pos, s2.pos FROM seq s1, seq s2 WHERE s2.pos = "
                 "s1.pos + 1 AND s2.val > 0 ORDER BY 1, 2"}),
    [](const ::testing::TestParamInfo<JoinCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace rfv
