// Execution-contract tests for the batch and vector pull styles, pinned
// after the PR that fixed two batch-path bugs:
//
//  1. EOF contract: the final batch/vector of a stream may be non-empty
//     AND carry *eof = true (LimitOp truncating mid-batch, UnionAllOp's
//     last child, TableScanOp's final partial batch). Consumers must
//     drain first and test eof second — these tests verify producers
//     really emit that shape and that drains never drop the final rows.
//  2. RowBatch::Push past capacity_ used to grow the batch silently;
//     it now aborts (death test below).
//
// Also covered: limit hit mid-batch, UNION ALL over interleaved empty
// children, capacity-1 batches, and row/batch/vector mode equivalence
// over a small query suite.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "db/database.h"
#include "exec/executor.h"
#include "exec/operators.h"
#include "expr/builder.h"
#include "test_util.h"

namespace rfv {
namespace {

using testutil::MustExecute;

class ExecContractTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(db_, "CREATE TABLE t5 (a INTEGER)");
    MustExecute(db_, "INSERT INTO t5 VALUES (1), (2), (3), (4), (5)");
    MustExecute(db_, "CREATE TABLE empty1 (a INTEGER)");
    MustExecute(db_, "CREATE TABLE empty2 (a INTEGER)");
    MustExecute(db_, "CREATE TABLE empty3 (a INTEGER)");
    MustExecute(db_, "CREATE TABLE t2 (a INTEGER)");
    MustExecute(db_, "INSERT INTO t2 VALUES (10), (11)");
  }

  Table* GetTable(const std::string& name) {
    Result<Table*> t = db_.catalog()->GetTable(name);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    return t.ok() ? *t : nullptr;
  }

  PhysicalOperatorPtr Scan(const std::string& name) {
    Table* table = GetTable(name);
    return std::make_unique<TableScanOp>(table->schema(), table);
  }

  Database db_;
};

// ---------------------------------------------------------------------
// EOF contract: non-empty final batch/vector with *eof = true.
// ---------------------------------------------------------------------

TEST_F(ExecContractTest, ScanFinalBatchIsNonEmptyWithEof) {
  PhysicalOperatorPtr scan = Scan("t5");
  ASSERT_TRUE(scan->Open().ok());
  RowBatch batch;
  bool eof = false;
  ASSERT_TRUE(scan->NextBatch(&batch, &eof).ok());
  // 5 rows fit one batch: the producer reports them AND eof together.
  EXPECT_EQ(batch.size(), 5u);
  EXPECT_TRUE(eof);
}

TEST_F(ExecContractTest, LimitTruncatesMidBatchAndCarriesEof) {
  auto limit = std::make_unique<LimitOp>(GetTable("t5")->schema(),
                                         Scan("t5"), /*limit=*/3);
  ASSERT_TRUE(limit->Open().ok());
  RowBatch batch;
  bool eof = false;
  ASSERT_TRUE(limit->NextBatch(&batch, &eof).ok());
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_TRUE(eof);
  EXPECT_EQ(batch.row(2)[0], Value::Int(3));

  // Post-eof pulls are safe: the shell's latch answers empty + eof
  // without re-entering the operator.
  ASSERT_TRUE(limit->NextBatch(&batch, &eof).ok());
  EXPECT_TRUE(batch.empty());
  EXPECT_TRUE(eof);
}

TEST_F(ExecContractTest, LimitVectorTruncatesSelectionAndCarriesEof) {
  auto limit = std::make_unique<LimitOp>(GetTable("t5")->schema(),
                                         Scan("t5"), /*limit=*/3);
  ASSERT_TRUE(limit->Open().ok());
  VectorProjection* vp = nullptr;
  bool eof = false;
  ASSERT_TRUE(limit->NextVector(&vp, &eof).ok());
  ASSERT_NE(vp, nullptr);
  EXPECT_EQ(vp->NumSelected(), 3u);
  EXPECT_TRUE(eof);
  // The physical vector still holds all 5 scanned rows; only the
  // selection was narrowed.
  EXPECT_EQ(vp->num_rows(), 5u);

  ASSERT_TRUE(limit->NextVector(&vp, &eof).ok());
  EXPECT_EQ(vp, nullptr);
  EXPECT_TRUE(eof);
}

TEST_F(ExecContractTest, DrainChildKeepsFinalBatchRows) {
  // The regression this PR's audit was for: a consumer that tested eof
  // before draining would lose the truncated final batch entirely.
  auto limit = std::make_unique<LimitOp>(GetTable("t5")->schema(),
                                         Scan("t5"), /*limit=*/4);
  ASSERT_TRUE(limit->Open().ok());
  std::vector<Row> rows;
  ASSERT_TRUE(DrainChild(limit.get(), &rows).ok());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[3][0], Value::Int(4));
}

// ---------------------------------------------------------------------
// UNION ALL with empty children interleaved among non-empty ones.
// ---------------------------------------------------------------------

class UnionModesTest : public ExecContractTest {
 protected:
  PhysicalOperatorPtr MakeUnion() {
    std::vector<PhysicalOperatorPtr> children;
    children.push_back(Scan("empty1"));
    children.push_back(Scan("t5"));
    children.push_back(Scan("empty2"));
    children.push_back(Scan("t2"));
    children.push_back(Scan("empty3"));
    return std::make_unique<UnionAllOp>(GetTable("t5")->schema(),
                                        std::move(children));
  }

  void ExpectAllRows(const std::vector<Row>& rows) {
    ASSERT_EQ(rows.size(), 7u);
    EXPECT_EQ(rows[0][0], Value::Int(1));
    EXPECT_EQ(rows[4][0], Value::Int(5));
    EXPECT_EQ(rows[5][0], Value::Int(10));
    EXPECT_EQ(rows[6][0], Value::Int(11));
  }
};

TEST_F(UnionModesTest, RowPath) {
  PhysicalOperatorPtr u = MakeUnion();
  Result<std::vector<Row>> rows = ExecuteToVector(u.get(), false);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ExpectAllRows(*rows);
}

TEST_F(UnionModesTest, BatchPath) {
  PhysicalOperatorPtr u = MakeUnion();
  Result<std::vector<Row>> rows = ExecuteToVector(u.get(), true);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ExpectAllRows(*rows);
}

TEST_F(UnionModesTest, VectorPath) {
  PhysicalOperatorPtr u = MakeUnion();
  u->SetVectorized(true);
  Result<std::vector<Row>> rows = ExecuteToVector(u.get());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ExpectAllRows(*rows);
}

TEST_F(UnionModesTest, VectorPathSkipsEmptyChildrenWithinOneCall) {
  PhysicalOperatorPtr u = MakeUnion();
  ASSERT_TRUE(u->Open().ok());
  VectorProjection* vp = nullptr;
  bool eof = false;
  // First call: skips empty1, yields t5's rows.
  ASSERT_TRUE(u->NextVector(&vp, &eof).ok());
  ASSERT_NE(vp, nullptr);
  EXPECT_EQ(vp->NumSelected(), 5u);
  EXPECT_FALSE(eof);
  // Second call: skips empty2, yields t2's rows; empty3 still pending,
  // so eof may only be reported once it is drained too.
  ASSERT_TRUE(u->NextVector(&vp, &eof).ok());
  ASSERT_NE(vp, nullptr);
  EXPECT_EQ(vp->NumSelected(), 2u);
  if (!eof) {
    ASSERT_TRUE(u->NextVector(&vp, &eof).ok());
    EXPECT_TRUE(vp == nullptr || vp->NumSelected() == 0);
    EXPECT_TRUE(eof);
  }
}

// ---------------------------------------------------------------------
// Capacity-1 batches: the smallest legal batch still makes progress and
// honors the EOF contract.
// ---------------------------------------------------------------------

TEST_F(ExecContractTest, CapacityOneBatchesDrainEverything) {
  auto filter = std::make_unique<FilterOp>(
      GetTable("t5")->schema(), Scan("t5"),
      eb::Gt(eb::Col(0, DataType::kInt64), eb::Int(1)));
  ASSERT_TRUE(filter->Open().ok());
  RowBatch batch(1);
  std::vector<Row> rows;
  bool eof = false;
  while (true) {
    ASSERT_TRUE(filter->NextBatch(&batch, &eof).ok());
    for (size_t i = 0; i < batch.size(); ++i) rows.push_back(batch.row(i));
    if (eof) break;
  }
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][0], Value::Int(2));
  EXPECT_EQ(rows[3][0], Value::Int(5));
}

// ---------------------------------------------------------------------
// RowBatch capacity is a hard bound (used to grow silently).
// ---------------------------------------------------------------------

#if GTEST_HAS_DEATH_TEST
TEST(RowBatchDeathTest, PushPastCapacityAborts) {
  RowBatch batch(2);
  batch.Push(Row({Value::Int(1)}));
  batch.Push(Row({Value::Int(2)}));
  EXPECT_DEATH(batch.Push(Row({Value::Int(3)})), "past capacity");
}
#endif

TEST(RowBatchTest, ZeroCapacityClampsToOne) {
  RowBatch batch(0);
  EXPECT_EQ(batch.capacity(), 1u);
  batch.Push(Row({Value::Int(1)}));
  EXPECT_TRUE(batch.full());
}

// ---------------------------------------------------------------------
// The three execution modes agree on a small SQL suite (end to end,
// including plans that mix vector-native and row-only operators).
// ---------------------------------------------------------------------

class ExecModesSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(db_, "CREATE TABLE t (a INTEGER, b DOUBLE, s VARCHAR)");
    MustExecute(db_,
                "INSERT INTO t VALUES (1, 10.0, 'x'), (2, 20.0, 'y'), "
                "(3, NULL, 'x'), (4, 40.0, NULL), (2, 25.0, 'z'), "
                "(6, 5.5, 'x'), (7, NULL, 'y')");
  }

  // Runs `sql` under (vectorized, batch, row) modes and checks they
  // produce identical rows in identical order.
  void ExpectModesAgree(const std::string& sql) {
    db_.options().exec.use_vectorized_execution = true;
    db_.options().exec.use_batch_execution = true;
    const ResultSet vec = MustExecute(db_, sql);
    db_.options().exec.use_vectorized_execution = false;
    const ResultSet batch = MustExecute(db_, sql);
    db_.options().exec.use_batch_execution = false;
    const ResultSet row = MustExecute(db_, sql);
    db_.options().exec.use_vectorized_execution = true;
    db_.options().exec.use_batch_execution = true;
    EXPECT_TRUE(testutil::RowsEqual(vec, batch)) << sql;
    EXPECT_TRUE(testutil::RowsEqual(vec, row)) << sql;
  }

  Database db_;
};

TEST_F(ExecModesSqlTest, FilterProjectExpressions) {
  ExpectModesAgree(
      "SELECT a, CASE WHEN a > 2 THEN 100 / a ELSE 0 - a END FROM t "
      "WHERE a BETWEEN 1 AND 6");
  ExpectModesAgree(
      "SELECT a, COALESCE(b, 0.0), MOD(a, 3) FROM t WHERE b > 0 OR s = 'y'");
  ExpectModesAgree("SELECT a FROM t WHERE a IN (2, 4, 9)");
}

TEST_F(ExecModesSqlTest, AllRowsFilteredOut) {
  ExpectModesAgree("SELECT a FROM t WHERE a > 1000");
  ExpectModesAgree("SELECT a FROM t WHERE b IS NULL AND b IS NOT NULL");
}

TEST_F(ExecModesSqlTest, GroupByAndAggregates) {
  ExpectModesAgree(
      "SELECT s, COUNT(*), SUM(a), AVG(b), MIN(b), MAX(a) FROM t GROUP BY s "
      "ORDER BY s");
  // Single-int-key grouping exercises the aggregate's int64 fast path;
  // grouping by a double expression forces the migration to Value keys.
  ExpectModesAgree("SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a");
  ExpectModesAgree("SELECT b, COUNT(*) FROM t GROUP BY b ORDER BY b");
}

TEST_F(ExecModesSqlTest, LimitAndUnion) {
  ExpectModesAgree("SELECT a FROM t ORDER BY a LIMIT 3");
  ExpectModesAgree("SELECT a FROM t LIMIT 0");
  ExpectModesAgree(
      "SELECT a FROM t WHERE a < 3 UNION ALL SELECT a FROM t WHERE a > 100 "
      "UNION ALL SELECT a FROM t WHERE a > 5");
}

// ---------------------------------------------------------------------
// Vector-native joins: HashJoinOp's bulk-hashed build/probe and
// MergeBandJoinOp's gathered candidate runs, driven directly through
// NextVector. Covers the edge shapes the fuzz oracles reach only by
// chance: empty build side, all-probe-miss, duplicate-key chains
// spilling across output vectors, capacity-1 outputs, and the
// nonempty-final-vector EOF contract.
// ---------------------------------------------------------------------

class VectorJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(db_, "CREATE TABLE build (k INTEGER, w DOUBLE)");
    MustExecute(db_, "CREATE TABLE probe (k INTEGER, v DOUBLE)");
  }

  void Insert(const std::string& table, const std::string& values) {
    MustExecute(db_, "INSERT INTO " + table + " VALUES " + values);
  }

  PhysicalOperatorPtr Scan(const std::string& name) {
    Result<Table*> t = db_.catalog()->GetTable(name);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    auto scan = std::make_unique<TableScanOp>((*t)->schema(), *t);
    scan->SetVectorized(true);
    return scan;
  }

  // probe JOIN build ON probe.k = build.k; output (p.k, p.v, b.k, b.w).
  std::unique_ptr<HashJoinOp> MakeHashJoin(JoinType join_type,
                                           ExprPtr residual = nullptr) {
    Schema joined({ColumnDef("pk", DataType::kInt64),
                   ColumnDef("pv", DataType::kDouble),
                   ColumnDef("bk", DataType::kInt64),
                   ColumnDef("bw", DataType::kDouble)});
    std::vector<ExprPtr> left_keys;
    left_keys.push_back(eb::Col(0, DataType::kInt64));
    std::vector<ExprPtr> right_keys;
    right_keys.push_back(eb::Col(0, DataType::kInt64));
    auto join = std::make_unique<HashJoinOp>(
        std::move(joined), Scan("probe"), Scan("build"),
        std::move(left_keys), std::move(right_keys), std::move(residual),
        join_type);
    join->SetVectorized(true);
    join->SetVectorExecEnabled(true);
    return join;
  }

  // Drains `op` through NextVector, materializing every selected lane;
  // asserts the EOF contract (post-eof pulls stay empty).
  std::vector<Row> DrainVectors(PhysicalOperator* op) {
    EXPECT_TRUE(op->Open().ok());
    std::vector<Row> rows;
    bool eof = false;
    while (!eof) {
      VectorProjection* vp = nullptr;
      EXPECT_TRUE(op->NextVector(&vp, &eof).ok());
      if (vp == nullptr) continue;
      for (size_t k = 0; k < vp->NumSelected(); ++k) {
        Row row;
        vp->MaterializeRow(vp->sel()[k], &row);
        rows.push_back(std::move(row));
      }
    }
    VectorProjection* vp = nullptr;
    EXPECT_TRUE(op->NextVector(&vp, &eof).ok());
    EXPECT_TRUE(vp == nullptr || vp->NumSelected() == 0);
    EXPECT_TRUE(eof);
    return rows;
  }

  Database db_;
};

TEST_F(VectorJoinTest, EmptyBuildSideInnerYieldsNothing) {
  Insert("probe", "(1, 10), (2, 20), (3, 30)");
  auto join = MakeHashJoin(JoinType::kInner);
  EXPECT_TRUE(DrainVectors(join.get()).empty());
}

TEST_F(VectorJoinTest, EmptyBuildSideLeftOuterNullPads) {
  Insert("probe", "(1, 10), (2, 20)");
  auto join = MakeHashJoin(JoinType::kLeftOuter);
  const std::vector<Row> rows = DrainVectors(join.get());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int(1));
  EXPECT_TRUE(rows[0][2].is_null());
  EXPECT_TRUE(rows[0][3].is_null());
  EXPECT_EQ(rows[1][0], Value::Int(2));
  EXPECT_TRUE(rows[1][3].is_null());
}

TEST_F(VectorJoinTest, AllProbeMissInnerYieldsNothing) {
  Insert("build", "(100, 1), (200, 2)");
  Insert("probe", "(1, 10), (2, 20), (3, 30)");
  auto join = MakeHashJoin(JoinType::kInner);
  EXPECT_TRUE(DrainVectors(join.get()).empty());
}

TEST_F(VectorJoinTest, NullKeysNeverMatchButLeftOuterPads) {
  Insert("build", "(NULL, 1), (2, 2)");
  Insert("probe", "(NULL, 10), (2, 20)");
  {
    auto join = MakeHashJoin(JoinType::kInner);
    const std::vector<Row> rows = DrainVectors(join.get());
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0][0], Value::Int(2));
    EXPECT_EQ(rows[0][2], Value::Int(2));
  }
  {
    auto join = MakeHashJoin(JoinType::kLeftOuter);
    const std::vector<Row> rows = DrainVectors(join.get());
    ASSERT_EQ(rows.size(), 2u);  // NULL probe row survives null-padded
  }
}

TEST_F(VectorJoinTest, DuplicateKeyChainsSpillAcrossOutputVectors) {
  // 3 probe rows × 5 duplicate build keys = 15 matches; capacity 4
  // forces one probe row's candidate run to split mid-vector and the
  // final vector to arrive non-empty with eof.
  Insert("build", "(7, 1), (7, 2), (7, 3), (7, 4), (7, 5)");
  Insert("probe", "(7, 10), (7, 20), (7, 30)");
  auto join = MakeHashJoin(JoinType::kInner);
  join->SetVectorOutputCapacityForTest(4);
  ASSERT_TRUE(join->Open().ok());
  std::vector<Row> rows;
  size_t vectors = 0;
  bool saw_nonempty_final = false;
  bool eof = false;
  while (!eof) {
    VectorProjection* vp = nullptr;
    ASSERT_TRUE(join->NextVector(&vp, &eof).ok());
    if (vp == nullptr) continue;
    if (vp->NumSelected() > 0) {
      ++vectors;
      if (eof) saw_nonempty_final = true;
    }
    EXPECT_LE(vp->NumSelected(), 4u);
    for (size_t k = 0; k < vp->NumSelected(); ++k) {
      Row row;
      vp->MaterializeRow(vp->sel()[k], &row);
      rows.push_back(std::move(row));
    }
  }
  ASSERT_EQ(rows.size(), 15u);
  EXPECT_GE(vectors, 4u);  // 15 matches through capacity-4 vectors
  EXPECT_TRUE(saw_nonempty_final);
  // Chains preserve build arrival order per probe row (w ascending),
  // and probe rows surface in probe order.
  EXPECT_EQ(rows[0][3], Value::Double(1));
  EXPECT_EQ(rows[4][3], Value::Double(5));
  EXPECT_EQ(rows[5][1], Value::Double(20));
}

TEST_F(VectorJoinTest, CapacityOneVectorsDrainEverything) {
  Insert("build", "(1, 1), (2, 2), (2, 3)");
  Insert("probe", "(2, 20), (1, 10), (9, 90)");
  auto join = MakeHashJoin(JoinType::kLeftOuter);
  join->SetVectorOutputCapacityForTest(1);
  const std::vector<Row> rows = DrainVectors(join.get());
  ASSERT_EQ(rows.size(), 4u);  // 2 matches for k=2, 1 for k=1, 1 padded
  EXPECT_EQ(rows[0][3], Value::Double(2));
  EXPECT_EQ(rows[1][3], Value::Double(3));
  EXPECT_EQ(rows[2][0], Value::Int(1));
  EXPECT_TRUE(rows[3][3].is_null());  // k=9 null-padded
}

TEST_F(VectorJoinTest, ResidualFiltersCandidates) {
  Insert("build", "(5, 1), (5, 2), (5, 3)");
  Insert("probe", "(5, 50)");
  // Residual over the joined row: build.w >= 2 (column 3 of output).
  auto join = MakeHashJoin(
      JoinType::kInner,
      eb::Ge(eb::Col(3, DataType::kDouble), eb::Dbl(2.0)));
  const std::vector<Row> rows = DrainVectors(join.get());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][3], Value::Double(2));
  EXPECT_EQ(rows[1][3], Value::Double(3));
}

TEST_F(VectorJoinTest, RowAndVectorPathsAgreeOnForcedHashJoinSql) {
  Insert("build", "(1, 1), (2, 2), (2, 3), (NULL, 4), (5, 5)");
  Insert("probe",
         "(2, 20), (2, 21), (1, 10), (NULL, 0), (7, 70), (5, 50)");
  // Forcing the planner away from index nested loops routes these
  // through HashJoinOp in every mode.
  db_.options().exec.enable_index_nested_loop_join = false;
  const char* queries[] = {
      "SELECT p.k, p.v, b.w FROM probe p JOIN build b ON p.k = b.k "
      "ORDER BY 1, 2, 3",
      "SELECT p.k, p.v, b.w FROM probe p LEFT OUTER JOIN build b ON "
      "p.k = b.k ORDER BY 2, 3",
      "SELECT p.k, COUNT(*) FROM probe p JOIN build b ON p.k = b.k "
      "GROUP BY p.k ORDER BY 1",
  };
  for (const char* sql : queries) {
    db_.options().exec.use_vectorized_execution = true;
    db_.options().exec.use_batch_execution = true;
    const ResultSet vec = MustExecute(db_, sql);
    db_.options().exec.use_vectorized_execution = false;
    db_.options().exec.use_batch_execution = false;
    const ResultSet row = MustExecute(db_, sql);
    db_.options().exec.use_vectorized_execution = true;
    db_.options().exec.use_batch_execution = true;
    EXPECT_TRUE(testutil::RowsEqual(vec, row)) << sql;
  }
}

// Band join vector path: the same capacity/EOF edges through SQL-level
// band-shaped self joins (direct construction is covered by the band
// join's own suite; here the vector output path is the subject).
class VectorBandJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(db_, "CREATE TABLE seq (pos INTEGER, val DOUBLE)");
    std::string values;
    for (int i = 1; i <= 40; ++i) {
      if (i > 1) values += ", ";
      values += "(" + std::to_string(i) + ", " + std::to_string(i * 10) +
                ")";
    }
    MustExecute(db_, "INSERT INTO seq VALUES " + values);
  }

  void ExpectVectorMatchesRow(const std::string& sql) {
    db_.options().exec.use_vectorized_execution = true;
    db_.options().exec.use_batch_execution = true;
    const ResultSet vec = MustExecute(db_, sql);
    db_.options().exec.use_vectorized_execution = false;
    db_.options().exec.use_batch_execution = false;
    const ResultSet row = MustExecute(db_, sql);
    db_.options().exec.use_vectorized_execution = true;
    db_.options().exec.use_batch_execution = true;
    EXPECT_TRUE(testutil::RowsEqual(vec, row)) << sql;
  }

  Database db_;
};

TEST_F(VectorBandJoinTest, BandShapesAgreeAcrossModes) {
  ExpectVectorMatchesRow(
      "SELECT s1.pos, SUM(s2.val) FROM seq s1, seq s2 WHERE s2.pos "
      "BETWEEN s1.pos - 3 AND s1.pos + 3 GROUP BY s1.pos ORDER BY 1");
  ExpectVectorMatchesRow(
      "SELECT s1.pos, s2.val FROM seq s1, seq s2 WHERE s2.pos IN "
      "(s1.pos - 1, s1.pos, s1.pos + 1) ORDER BY 1, 2");
  ExpectVectorMatchesRow(
      "SELECT s1.pos, COUNT(*) FROM seq s1, seq s2 WHERE s2.pos < s1.pos "
      "AND MOD(s2.pos, 4) = MOD(s1.pos, 4) GROUP BY s1.pos ORDER BY 1");
}

TEST_F(ExecModesSqlTest, ErrorsAgreeAcrossModes) {
  const std::string sql = "SELECT 1 / (a - a) FROM t";
  db_.options().exec.use_vectorized_execution = true;
  Result<ResultSet> vec = db_.Execute(sql);
  db_.options().exec.use_vectorized_execution = false;
  Result<ResultSet> batch = db_.Execute(sql);
  db_.options().exec.use_batch_execution = false;
  Result<ResultSet> row = db_.Execute(sql);
  ASSERT_FALSE(vec.ok());
  ASSERT_FALSE(batch.ok());
  ASSERT_FALSE(row.ok());
  EXPECT_EQ(vec.status().ToString(), row.status().ToString());
  EXPECT_EQ(batch.status().ToString(), row.status().ToString());
}

}  // namespace
}  // namespace rfv
