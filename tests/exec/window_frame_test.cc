// Direct unit tests for the SlidingAggregate frame engine — the
// realization of the paper's §2.2 pipelined computation scheme.

#include "exec/window_frame.h"

#include <gtest/gtest.h>

namespace rfv {
namespace {

TEST(SlidingAggregateTest, SumPushPop) {
  SlidingAggregate agg(AggFn::kSum, false, DataType::kInt64);
  agg.Push(Value::Int(10), 0);
  agg.Push(Value::Int(20), 1);
  agg.Push(Value::Int(30), 2);
  EXPECT_EQ(agg.Current(), Value::Int(60));
  agg.PopBefore(1);
  EXPECT_EQ(agg.Current(), Value::Int(50));
  agg.PopBefore(3);
  EXPECT_TRUE(agg.Current().is_null());  // empty SUM
}

TEST(SlidingAggregateTest, SumDoubleMode) {
  SlidingAggregate agg(AggFn::kSum, false, DataType::kDouble);
  agg.Push(Value::Double(1.5), 0);
  agg.Push(Value::Double(2.25), 1);
  EXPECT_EQ(agg.Current(), Value::Double(3.75));
}

TEST(SlidingAggregateTest, SumIgnoresNulls) {
  SlidingAggregate agg(AggFn::kSum, false, DataType::kInt64);
  agg.Push(Value::Int(5), 0);
  agg.Push(Value::Null(), 1);
  EXPECT_EQ(agg.Current(), Value::Int(5));
  agg.PopBefore(1);
  EXPECT_TRUE(agg.Current().is_null());  // only the NULL remains
}

TEST(SlidingAggregateTest, CountStarVsCountValue) {
  SlidingAggregate star(AggFn::kCount, true, DataType::kInt64);
  SlidingAggregate value(AggFn::kCount, false, DataType::kInt64);
  for (const auto& [v, pos] :
       {std::pair<Value, size_t>{Value::Int(1), 0},
        std::pair<Value, size_t>{Value::Null(), 1},
        std::pair<Value, size_t>{Value::Int(3), 2}}) {
    star.Push(v, pos);
    value.Push(v, pos);
  }
  EXPECT_EQ(star.Current(), Value::Int(3));
  EXPECT_EQ(value.Current(), Value::Int(2));
  star.PopBefore(1);
  EXPECT_EQ(star.Current(), Value::Int(2));
}

TEST(SlidingAggregateTest, AvgOverNonNull) {
  SlidingAggregate agg(AggFn::kAvg, false, DataType::kDouble);
  agg.Push(Value::Int(10), 0);
  agg.Push(Value::Null(), 1);
  agg.Push(Value::Int(20), 2);
  EXPECT_EQ(agg.Current(), Value::Double(15));
}

TEST(SlidingAggregateTest, MinMonotonicDeque) {
  SlidingAggregate agg(AggFn::kMin, false, DataType::kDouble);
  agg.Push(Value::Double(5), 0);
  agg.Push(Value::Double(3), 1);
  agg.Push(Value::Double(4), 2);
  EXPECT_EQ(agg.Current(), Value::Double(3));
  agg.PopBefore(2);  // drop 5 and 3
  EXPECT_EQ(agg.Current(), Value::Double(4));
}

TEST(SlidingAggregateTest, MaxTracksAfterExtremeLeaves) {
  SlidingAggregate agg(AggFn::kMax, false, DataType::kInt64);
  agg.Push(Value::Int(9), 0);
  agg.Push(Value::Int(2), 1);
  agg.Push(Value::Int(7), 2);
  EXPECT_EQ(agg.Current(), Value::Int(9));
  agg.PopBefore(1);
  EXPECT_EQ(agg.Current(), Value::Int(7));  // 2 was dominated by 7
}

TEST(SlidingAggregateTest, ResetClearsState) {
  SlidingAggregate agg(AggFn::kSum, false, DataType::kInt64);
  agg.Push(Value::Int(5), 0);
  agg.Reset();
  EXPECT_TRUE(agg.Current().is_null());
  agg.Push(Value::Int(7), 10);
  EXPECT_EQ(agg.Current(), Value::Int(7));
}

TEST(SlidingAggregateTest, MinIgnoresNullPushes) {
  SlidingAggregate agg(AggFn::kMin, false, DataType::kDouble);
  agg.Push(Value::Null(), 0);
  EXPECT_TRUE(agg.Current().is_null());
  agg.Push(Value::Double(2), 1);
  EXPECT_EQ(agg.Current(), Value::Double(2));
}

}  // namespace
}  // namespace rfv
