// Direct unit tests for the SlidingAggregate frame engine — the
// realization of the paper's §2.2 pipelined computation scheme.

#include "exec/window_frame.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

namespace rfv {
namespace {

TEST(SlidingAggregateTest, SumPushPop) {
  SlidingAggregate agg(AggFn::kSum, false, DataType::kInt64);
  agg.Push(Value::Int(10), 0);
  agg.Push(Value::Int(20), 1);
  agg.Push(Value::Int(30), 2);
  EXPECT_EQ(agg.Current(), Value::Int(60));
  agg.PopBefore(1);
  EXPECT_EQ(agg.Current(), Value::Int(50));
  agg.PopBefore(3);
  EXPECT_TRUE(agg.Current().is_null());  // empty SUM
}

TEST(SlidingAggregateTest, SumDoubleMode) {
  SlidingAggregate agg(AggFn::kSum, false, DataType::kDouble);
  agg.Push(Value::Double(1.5), 0);
  agg.Push(Value::Double(2.25), 1);
  EXPECT_EQ(agg.Current(), Value::Double(3.75));
}

TEST(SlidingAggregateTest, SumIgnoresNulls) {
  SlidingAggregate agg(AggFn::kSum, false, DataType::kInt64);
  agg.Push(Value::Int(5), 0);
  agg.Push(Value::Null(), 1);
  EXPECT_EQ(agg.Current(), Value::Int(5));
  agg.PopBefore(1);
  EXPECT_TRUE(agg.Current().is_null());  // only the NULL remains
}

TEST(SlidingAggregateTest, CountStarVsCountValue) {
  SlidingAggregate star(AggFn::kCount, true, DataType::kInt64);
  SlidingAggregate value(AggFn::kCount, false, DataType::kInt64);
  for (const auto& [v, pos] :
       {std::pair<Value, size_t>{Value::Int(1), 0},
        std::pair<Value, size_t>{Value::Null(), 1},
        std::pair<Value, size_t>{Value::Int(3), 2}}) {
    star.Push(v, pos);
    value.Push(v, pos);
  }
  EXPECT_EQ(star.Current(), Value::Int(3));
  EXPECT_EQ(value.Current(), Value::Int(2));
  star.PopBefore(1);
  EXPECT_EQ(star.Current(), Value::Int(2));
}

TEST(SlidingAggregateTest, AvgOverNonNull) {
  SlidingAggregate agg(AggFn::kAvg, false, DataType::kDouble);
  agg.Push(Value::Int(10), 0);
  agg.Push(Value::Null(), 1);
  agg.Push(Value::Int(20), 2);
  EXPECT_EQ(agg.Current(), Value::Double(15));
}

TEST(SlidingAggregateTest, MinMonotonicDeque) {
  SlidingAggregate agg(AggFn::kMin, false, DataType::kDouble);
  agg.Push(Value::Double(5), 0);
  agg.Push(Value::Double(3), 1);
  agg.Push(Value::Double(4), 2);
  EXPECT_EQ(agg.Current(), Value::Double(3));
  agg.PopBefore(2);  // drop 5 and 3
  EXPECT_EQ(agg.Current(), Value::Double(4));
}

TEST(SlidingAggregateTest, MaxTracksAfterExtremeLeaves) {
  SlidingAggregate agg(AggFn::kMax, false, DataType::kInt64);
  agg.Push(Value::Int(9), 0);
  agg.Push(Value::Int(2), 1);
  agg.Push(Value::Int(7), 2);
  EXPECT_EQ(agg.Current(), Value::Int(9));
  agg.PopBefore(1);
  EXPECT_EQ(agg.Current(), Value::Int(7));  // 2 was dominated by 7
}

TEST(SlidingAggregateTest, ResetClearsState) {
  SlidingAggregate agg(AggFn::kSum, false, DataType::kInt64);
  agg.Push(Value::Int(5), 0);
  agg.Reset();
  EXPECT_TRUE(agg.Current().is_null());
  agg.Push(Value::Int(7), 10);
  EXPECT_EQ(agg.Current(), Value::Int(7));
}

TEST(SlidingAggregateTest, MinIgnoresNullPushes) {
  SlidingAggregate agg(AggFn::kMin, false, DataType::kDouble);
  agg.Push(Value::Null(), 0);
  EXPECT_TRUE(agg.Current().is_null());
  agg.Push(Value::Double(2), 1);
  EXPECT_EQ(agg.Current(), Value::Double(2));
}

TEST(SlidingAggregateTest, MinMaxDequeAcrossRepeatedPops) {
  // Slide a width-3 window over values whose extreme repeatedly leaves
  // the window: the deque must always resurface the next-best entry.
  const double vals[] = {9, 1, 8, 0, 7, 2, 6, 3};
  SlidingAggregate mn(AggFn::kMin, false, DataType::kDouble);
  SlidingAggregate mx(AggFn::kMax, false, DataType::kDouble);
  for (size_t i = 0; i < 8; ++i) {
    mn.Push(Value::Double(vals[i]), i);
    mx.Push(Value::Double(vals[i]), i);
    if (i >= 2) {
      mn.PopBefore(i - 2);
      mx.PopBefore(i - 2);
      double lo = vals[i];
      double hi = vals[i];
      for (size_t j = i - 2; j <= i; ++j) {
        lo = std::min(lo, vals[j]);
        hi = std::max(hi, vals[j]);
      }
      EXPECT_EQ(mn.Current(), Value::Double(lo)) << "window ending " << i;
      EXPECT_EQ(mx.Current(), Value::Double(hi)) << "window ending " << i;
    }
  }
}

TEST(SlidingAggregateTest, CompensatedDoubleSumSurvivesLargeCancellation) {
  // Push 1e16, then small values, then slide the big value out. A bare
  // running sum loses the small addends inside the 1e16-magnitude
  // accumulator; Neumaier compensation recovers them.
  SlidingAggregate agg(AggFn::kSum, false, DataType::kDouble);
  agg.Push(Value::Double(1e16), 0);
  agg.Push(Value::Double(0.1), 1);
  agg.Push(Value::Double(0.2), 2);
  agg.PopBefore(1);  // window = {0.1, 0.2}
  EXPECT_DOUBLE_EQ(agg.Current().AsDouble(), 0.1 + 0.2);
}

TEST(SlidingAggregateTest, CompensatedSumStableOverLongSlide) {
  // Long window sliding across alternating huge/tiny values: the
  // compensated total of the tiny values must not drift even after the
  // huge ones have been added and removed thousands of times.
  SlidingAggregate agg(AggFn::kSum, false, DataType::kDouble);
  const int kSteps = 5000;
  const int kWidth = 64;
  for (int i = 0; i < kSteps; ++i) {
    const double v = (i % 2 == 0) ? 1e12 : 0.001;
    agg.Push(Value::Double(v), static_cast<size_t>(i));
    if (i >= kWidth) {
      agg.PopBefore(static_cast<size_t>(i - kWidth + 1));
    }
  }
  // Final window: positions [kSteps-kWidth, kSteps): 32 huge + 32 tiny.
  const double expected = 32 * 1e12 + 32 * 0.001;
  EXPECT_DOUBLE_EQ(agg.Current().AsDouble(), expected);
}

TEST(SlidingAggregateTest, Int64OverflowFlagTracksCurrentWindow) {
  SlidingAggregate agg(AggFn::kSum, false, DataType::kInt64);
  const int64_t huge = std::numeric_limits<int64_t>::max() - 1;
  agg.Push(Value::Int(huge), 0);
  EXPECT_FALSE(agg.overflowed());
  agg.Push(Value::Int(huge), 1);
  EXPECT_TRUE(agg.overflowed());  // 2*(max-1) exceeds int64
  agg.PopBefore(1);
  EXPECT_FALSE(agg.overflowed());  // back in range after the pop
  EXPECT_EQ(agg.Current(), Value::Int(huge));
}

TEST(SlidingAggregateTest, OverflowFlagOffForDoubleAndOtherFns) {
  SlidingAggregate dsum(AggFn::kSum, false, DataType::kDouble);
  dsum.Push(Value::Double(1e308), 0);
  dsum.Push(Value::Double(1e308), 1);
  EXPECT_FALSE(dsum.overflowed());
  SlidingAggregate cnt(AggFn::kCount, true, DataType::kInt64);
  cnt.Push(Value::Int(1), 0);
  EXPECT_FALSE(cnt.overflowed());
}

}  // namespace
}  // namespace rfv
