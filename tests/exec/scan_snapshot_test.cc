// A table scan pins a committed copy-on-write snapshot at Open and
// reads it to EOF regardless of DML landing on the live table — the
// serving model's reader half. These tests pin the stable-snapshot
// semantics for all three pull styles (row, batch, vector), including
// mutations landing *between* pulls of a multi-batch scan, the
// statement-granular BeginWrite/EndWrite commit bracket, and the
// chunk-sharing structure of consecutive snapshots.

#include <gtest/gtest.h>

#include "common/epoch.h"
#include "db/database.h"
#include "exec/operators.h"
#include "expr/builder.h"
#include "storage/table_snapshot.h"
#include "test_util.h"

namespace rfv {
namespace {

using testutil::MustExecute;

class ScanSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(db_, "CREATE TABLE t (pos INTEGER, val INTEGER)");
    MustExecute(db_, "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
    Result<Table*> t = db_.catalog()->GetTable("t");
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    table_ = *t;
  }

  Database db_;
  Table* table_ = nullptr;
};

TEST_F(ScanSnapshotTest, InsertUnderOpenScanInvisible) {
  TableScanOp scan(table_->schema(), table_);
  ASSERT_TRUE(scan.Open().ok());
  Row row;
  bool eof = false;
  ASSERT_TRUE(scan.Next(&row, &eof).ok());
  ASSERT_FALSE(eof);

  ASSERT_TRUE(table_->Insert(Row({Value::Int(4), Value::Int(40)})).ok());

  // The scan keeps reading its pinned snapshot: exactly the 3 rows that
  // were committed at Open, no error, no phantom row 4.
  size_t rows = 1;
  while (true) {
    const Status s = scan.Next(&row, &eof);
    ASSERT_TRUE(s.ok()) << s.ToString();
    if (eof) break;
    ++rows;
  }
  EXPECT_EQ(rows, 3u);
}

TEST_F(ScanSnapshotTest, DeleteUnderOpenScanBatchStable) {
  TableScanOp scan(table_->schema(), table_);
  ASSERT_TRUE(scan.Open().ok());
  // Mutate before the first batch is pulled: the batch path reads the
  // snapshot too, not the live store.
  ASSERT_TRUE(table_->DeleteRow(0).ok());
  RowBatch batch;
  bool eof = false;
  ASSERT_TRUE(scan.NextBatch(&batch, &eof).ok());
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_TRUE(eof);
  EXPECT_EQ(table_->NumRows(), 2u);
}

TEST_F(ScanSnapshotTest, UpdateUnderOpenScanSeesOldValue) {
  TableScanOp scan(table_->schema(), table_);
  ASSERT_TRUE(scan.Open().ok());
  ASSERT_TRUE(
      table_->UpdateRow(0, Row({Value::Int(1), Value::Int(99)})).ok());
  Row row;
  bool eof = false;
  ASSERT_TRUE(scan.Next(&row, &eof).ok());
  ASSERT_FALSE(eof);
  EXPECT_EQ(row[1].AsInt(), 10);  // pre-update value
}

TEST_F(ScanSnapshotTest, ReopenAfterMutationSeesNewData) {
  TableScanOp scan(table_->schema(), table_);
  ASSERT_TRUE(scan.Open().ok());
  ASSERT_TRUE(table_->Insert(Row({Value::Int(4), Value::Int(40)})).ok());
  Row row;
  bool eof = false;
  size_t rows = 0;
  while (true) {
    ASSERT_TRUE(scan.Next(&row, &eof).ok());
    if (eof) break;
    ++rows;
  }
  EXPECT_EQ(rows, 3u);  // old snapshot

  // A fresh Open re-pins and sees the committed insert.
  ASSERT_TRUE(scan.Open().ok());
  rows = 0;
  while (true) {
    ASSERT_TRUE(scan.Next(&row, &eof).ok());
    if (eof) break;
    ++rows;
  }
  EXPECT_EQ(rows, 4u);
}

// Mid-stream stability: a table larger than one batch/vector (1024
// rows) forces a second pull, and DML landing between pulls must not
// perturb it — the snapshot was fixed at Open.

class ScanSnapshotMidStreamTest : public ScanSnapshotTest {
 protected:
  void SetUp() override {
    ScanSnapshotTest::SetUp();
    std::vector<Row> rows;
    for (int64_t i = 4; i <= 1500; ++i) {
      rows.push_back(Row({Value::Int(i), Value::Int(i * 10)}));
    }
    ASSERT_TRUE(table_->InsertBatch(std::move(rows)).ok());
  }
};

TEST_F(ScanSnapshotMidStreamTest, InsertBetweenBatchesInvisible) {
  TableScanOp scan(table_->schema(), table_);
  ASSERT_TRUE(scan.Open().ok());
  RowBatch batch;
  bool eof = false;
  ASSERT_TRUE(scan.NextBatch(&batch, &eof).ok());
  ASSERT_EQ(batch.size(), RowBatch::kDefaultCapacity);
  ASSERT_FALSE(eof);

  ASSERT_TRUE(table_->Insert(Row({Value::Int(9999), Value::Int(0)})).ok());

  size_t total = batch.size();
  while (!eof) {
    batch.Clear();
    const Status s = scan.NextBatch(&batch, &eof);
    ASSERT_TRUE(s.ok()) << s.ToString();
    total += batch.size();
  }
  EXPECT_EQ(total, 1500u);  // not 1501: row 9999 is post-snapshot
}

TEST_F(ScanSnapshotMidStreamTest, DeleteBetweenVectorsInvisible) {
  TableScanOp scan(table_->schema(), table_);
  ASSERT_TRUE(scan.Open().ok());
  VectorProjection* vp = nullptr;
  bool eof = false;
  ASSERT_TRUE(scan.NextVector(&vp, &eof).ok());
  ASSERT_NE(vp, nullptr);
  ASSERT_EQ(vp->NumSelected(), RowBatch::kDefaultCapacity);
  ASSERT_FALSE(eof);

  ASSERT_TRUE(table_->DeleteRow(0).ok());

  size_t total = vp->NumSelected();
  while (!eof) {
    const Status s = scan.NextVector(&vp, &eof);
    ASSERT_TRUE(s.ok()) << s.ToString();
    total += vp->NumSelected();
  }
  EXPECT_EQ(total, 1500u);
}

TEST_F(ScanSnapshotMidStreamTest, ConsecutiveSnapshotsShareCleanChunks) {
  const TableSnapshotPtr before = table_->PinSnapshot();
  ASSERT_GE(before->num_chunks(), 2u);
  // Appending dirties only the tail; every full chunk below it is
  // shared pointer-for-pointer with the previous snapshot.
  ASSERT_TRUE(table_->Insert(Row({Value::Int(1501), Value::Int(0)})).ok());
  const TableSnapshotPtr after = table_->PinSnapshot();
  EXPECT_EQ(after->num_rows(), before->num_rows() + 1);
  EXPECT_EQ(before->chunk(0).get(), after->chunk(0).get());
  // The tail chunk (1500 rows → chunk 1 holds rows 1024..1499) was
  // copied, not shared.
  EXPECT_NE(before->chunk(1).get(), after->chunk(1).get());
}

// MergeBandJoinOp materializes its right side at Open from the right
// scan's pinned snapshot and, when the keys arrive already ascending,
// skips the sort entirely. That ordered-skip decision and the rows it
// indexes must be the same frozen version: out-of-order (or deleted)
// rows landing on the live table mid-query must not perturb the
// already-open join's output.
TEST_F(ScanSnapshotMidStreamTest, BandJoinOrderedSkipReadsPinnedSnapshot) {
  // s2.pos BETWEEN s1.pos - 1 AND s1.pos + 1 over the 1500-row table,
  // left = right = t; joined schema is (pos, val, pos, val).
  const ExprPtr cond = eb::Between(
      eb::Col(2, DataType::kInt64),
      eb::Sub(eb::Col(0, DataType::kInt64), eb::Int(1)),
      eb::Add(eb::Col(0, DataType::kInt64), eb::Int(1)));
  std::optional<BandJoinSpec> spec =
      TryExtractBandJoin(*cond, /*left_width=*/2, table_);
  ASSERT_TRUE(spec.has_value());

  Schema joined({ColumnDef("p1", DataType::kInt64),
                 ColumnDef("v1", DataType::kInt64),
                 ColumnDef("p2", DataType::kInt64),
                 ColumnDef("v2", DataType::kInt64)});
  auto join = std::make_unique<MergeBandJoinOp>(
      joined, std::make_unique<TableScanOp>(table_->schema(), table_),
      std::make_unique<TableScanOp>(table_->schema(), table_),
      std::move(*spec), JoinType::kInner);
  join->SetVectorized(true);
  join->SetVectorExecEnabled(true);
  ASSERT_TRUE(join->Open().ok());  // right side drained + ordered-skip

  // Live mutations after Open: an out-of-order key (would break the
  // ordered-skip invariant if re-read) and a deleted boundary row.
  ASSERT_TRUE(table_->Insert(Row({Value::Int(0), Value::Int(-1)})).ok());
  ASSERT_TRUE(table_->DeleteRow(0).ok());  // live pos=1 gone

  std::vector<Row> rows;
  bool eof = false;
  while (!eof) {
    VectorProjection* vp = nullptr;
    ASSERT_TRUE(join->NextVector(&vp, &eof).ok());
    if (vp == nullptr) continue;
    for (size_t k = 0; k < vp->NumSelected(); ++k) {
      Row row;
      vp->MaterializeRow(vp->sel()[k], &row);
      rows.push_back(std::move(row));
    }
  }
  // Snapshot-consistent count: 1500 left rows × 3 band candidates,
  // minus the two clipped edges (pos=1 lacks pos-1=0, pos=1500 lacks
  // 1501) — neither the pos=0 insert nor the pos=1 delete shows.
  EXPECT_EQ(rows.size(), 1500u * 3 - 2);
  EXPECT_EQ(rows[0][0], Value::Int(1));
  EXPECT_EQ(rows[0][2], Value::Int(1));  // no pos=0 candidate appeared
  EXPECT_EQ(rows[1][2], Value::Int(2));
}

TEST_F(ScanSnapshotTest, WriteBracketCommitsAtStatementGranularity) {
  const TableSnapshotPtr committed = table_->PinSnapshot();
  EXPECT_EQ(committed->num_rows(), 3u);
  {
    Table::WriteGuard guard(table_);
    ASSERT_TRUE(table_->Insert(Row({Value::Int(4), Value::Int(40)})).ok());
    ASSERT_TRUE(table_->Insert(Row({Value::Int(5), Value::Int(50)})).ok());
    // Mid-statement pin: still the pre-statement image.
    EXPECT_EQ(table_->PinSnapshot()->num_rows(), 3u);
  }
  // EndWrite published both inserts as one commit.
  EXPECT_EQ(table_->PinSnapshot()->num_rows(), 5u);
}

TEST_F(ScanSnapshotTest, RetiredSnapshotsReclaimedWhenUnpinned) {
  EpochManager& manager = EpochManager::Global();
  // Hold the current snapshot, mutate twice: at least the directly
  // superseded snapshot stays retired while we hold our pin epoch.
  {
    EpochGuard pin;
    const TableSnapshotPtr held = table_->PinSnapshot();
    ASSERT_TRUE(table_->Insert(Row({Value::Int(4), Value::Int(40)})).ok());
    (void)table_->PinSnapshot();  // forces refresh + retire of `held`'s image
    EXPECT_GT(manager.retired_count(), 0u);
  }
  // All pins dropped: the next retire/reclaim cycle can free everything.
  ASSERT_TRUE(table_->Insert(Row({Value::Int(5), Value::Int(50)})).ok());
  (void)table_->PinSnapshot();
  EXPECT_LE(manager.retired_count(), 1u);  // only the just-retired one
}

TEST_F(ScanSnapshotTest, AnalyzeDoesNotBumpEpoch) {
  const uint64_t before = table_->mutation_epoch();
  MustExecute(db_, "ANALYZE t");
  EXPECT_EQ(table_->mutation_epoch(), before);

  TableScanOp scan(table_->schema(), table_);
  ASSERT_TRUE(scan.Open().ok());
  MustExecute(db_, "ANALYZE t");
  Row row;
  bool eof = false;
  EXPECT_TRUE(scan.Next(&row, &eof).ok());
}

// End-to-end shape: SQL-level DML between two executed statements is
// visible to the next statement (each statement opens fresh scans
// against the latest committed snapshot).
TEST_F(ScanSnapshotTest, SequentialSqlStatementsSeeCommittedData) {
  MustExecute(db_, "INSERT INTO t VALUES (4, 40)");
  const ResultSet rs = MustExecute(db_, "SELECT pos, val FROM t");
  EXPECT_EQ(rs.rows().size(), 4u);
}

}  // namespace
}  // namespace rfv
