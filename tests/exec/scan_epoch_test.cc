// A table scan snapshots the table's mutation epoch at Open and refuses
// to continue after any DML hits the table — reallocating the row
// vector under a live cursor is a use-after-free in waiting, and
// half-old/half-new result sets are silent corruption. These tests pin
// the refusal for all three pull styles (row, batch, vector) — including
// mutations landing *between* pulls of a multi-batch scan — and make
// sure epoch bumps come only from DML, not from ANALYZE-style
// maintenance.

#include <gtest/gtest.h>

#include "db/database.h"
#include "exec/operators.h"
#include "test_util.h"

namespace rfv {
namespace {

using testutil::MustExecute;

class ScanEpochTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(db_, "CREATE TABLE t (pos INTEGER, val INTEGER)");
    MustExecute(db_, "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
    Result<Table*> t = db_.catalog()->GetTable("t");
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    table_ = *t;
  }

  Database db_;
  Table* table_ = nullptr;
};

TEST_F(ScanEpochTest, InsertUnderOpenScanFailsNext) {
  TableScanOp scan(table_->schema(), table_);
  ASSERT_TRUE(scan.Open().ok());
  Row row;
  bool eof = false;
  ASSERT_TRUE(scan.Next(&row, &eof).ok());
  ASSERT_FALSE(eof);

  ASSERT_TRUE(table_->Insert(Row({Value::Int(4), Value::Int(40)})).ok());

  const Status s = scan.Next(&row, &eof);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kExecutionError);
  EXPECT_NE(s.ToString().find("mutated"), std::string::npos)
      << s.ToString();
}

TEST_F(ScanEpochTest, DeleteUnderOpenScanFailsNextBatch) {
  TableScanOp scan(table_->schema(), table_);
  ASSERT_TRUE(scan.Open().ok());
  RowBatch batch;
  bool eof = false;
  // Mutate before the first batch is pulled: the batch path must check
  // the epoch too, not just the row path.
  ASSERT_TRUE(table_->DeleteRow(0).ok());
  const Status s = scan.NextBatch(&batch, &eof);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kExecutionError);
}

TEST_F(ScanEpochTest, UpdateUnderOpenScanFails) {
  TableScanOp scan(table_->schema(), table_);
  ASSERT_TRUE(scan.Open().ok());
  Row row;
  bool eof = false;
  ASSERT_TRUE(scan.Next(&row, &eof).ok());

  ASSERT_TRUE(
      table_->UpdateRow(0, Row({Value::Int(1), Value::Int(99)})).ok());

  EXPECT_FALSE(scan.Next(&row, &eof).ok());
}

TEST_F(ScanEpochTest, ReopenAfterMutationSucceeds) {
  TableScanOp scan(table_->schema(), table_);
  ASSERT_TRUE(scan.Open().ok());
  ASSERT_TRUE(table_->Insert(Row({Value::Int(4), Value::Int(40)})).ok());
  Row row;
  bool eof = false;
  ASSERT_FALSE(scan.Next(&row, &eof).ok());

  // A fresh Open re-snapshots the epoch and sees the new data.
  ASSERT_TRUE(scan.Open().ok());
  size_t rows = 0;
  while (true) {
    const Status s = scan.Next(&row, &eof);
    ASSERT_TRUE(s.ok()) << s.ToString();
    if (eof) break;
    ++rows;
  }
  EXPECT_EQ(rows, 4u);
}

// Mid-stream aborts: a table larger than one batch/vector (1024 rows)
// forces a second pull, and DML landing between pulls must fail that
// pull — not just the first one (the guard re-checks on every call, not
// only at Open).

class ScanEpochMidStreamTest : public ScanEpochTest {
 protected:
  void SetUp() override {
    ScanEpochTest::SetUp();
    for (int64_t i = 4; i <= 1500; ++i) {
      ASSERT_TRUE(
          table_->Insert(Row({Value::Int(i), Value::Int(i * 10)})).ok());
    }
  }
};

TEST_F(ScanEpochMidStreamTest, InsertBetweenBatchesFailsSecondBatch) {
  TableScanOp scan(table_->schema(), table_);
  ASSERT_TRUE(scan.Open().ok());
  RowBatch batch;
  bool eof = false;
  ASSERT_TRUE(scan.NextBatch(&batch, &eof).ok());
  ASSERT_EQ(batch.size(), RowBatch::kDefaultCapacity);
  ASSERT_FALSE(eof);

  ASSERT_TRUE(
      table_->Insert(Row({Value::Int(9999), Value::Int(0)})).ok());

  const Status s = scan.NextBatch(&batch, &eof);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kExecutionError);
  EXPECT_NE(s.ToString().find("mutated"), std::string::npos)
      << s.ToString();
}

TEST_F(ScanEpochMidStreamTest, InsertBetweenVectorsFailsSecondVector) {
  TableScanOp scan(table_->schema(), table_);
  ASSERT_TRUE(scan.Open().ok());
  VectorProjection* vp = nullptr;
  bool eof = false;
  ASSERT_TRUE(scan.NextVector(&vp, &eof).ok());
  ASSERT_NE(vp, nullptr);
  ASSERT_EQ(vp->NumSelected(), RowBatch::kDefaultCapacity);
  ASSERT_FALSE(eof);

  ASSERT_TRUE(table_->DeleteRow(0).ok());

  const Status s = scan.NextVector(&vp, &eof);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kExecutionError);
  EXPECT_NE(s.ToString().find("mutated"), std::string::npos)
      << s.ToString();
}

TEST_F(ScanEpochTest, DeleteUnderOpenScanFailsFirstVector) {
  // Vector counterpart of the batch test above: mutation lands before
  // the *first* vector is pulled.
  TableScanOp scan(table_->schema(), table_);
  ASSERT_TRUE(scan.Open().ok());
  ASSERT_TRUE(table_->DeleteRow(0).ok());
  VectorProjection* vp = nullptr;
  bool eof = false;
  const Status s = scan.NextVector(&vp, &eof);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kExecutionError);
}

TEST_F(ScanEpochTest, AnalyzeDoesNotBumpEpoch) {
  const uint64_t before = table_->mutation_epoch();
  MustExecute(db_, "ANALYZE t");
  EXPECT_EQ(table_->mutation_epoch(), before);

  TableScanOp scan(table_->schema(), table_);
  ASSERT_TRUE(scan.Open().ok());
  MustExecute(db_, "ANALYZE t");
  Row row;
  bool eof = false;
  EXPECT_TRUE(scan.Next(&row, &eof).ok());
}

// End-to-end shape: SQL-level DML between two executed statements never
// trips the guard (each statement opens its own scans), so the epoch
// check is invisible to well-formed SQL workloads.
TEST_F(ScanEpochTest, SequentialSqlStatementsUnaffected) {
  MustExecute(db_, "INSERT INTO t VALUES (4, 40)");
  const ResultSet rs = MustExecute(db_, "SELECT pos, val FROM t");
  EXPECT_EQ(rs.rows().size(), 4u);
}

}  // namespace
}  // namespace rfv
