// A table scan snapshots the table's mutation epoch at Open and refuses
// to continue after any DML hits the table — reallocating the row
// vector under a live cursor is a use-after-free in waiting, and
// half-old/half-new result sets are silent corruption. These tests pin
// the refusal for both pull styles (row and batch) and make sure
// epoch bumps come only from DML, not from ANALYZE-style maintenance.

#include <gtest/gtest.h>

#include "db/database.h"
#include "exec/operators.h"
#include "test_util.h"

namespace rfv {
namespace {

using testutil::MustExecute;

class ScanEpochTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(db_, "CREATE TABLE t (pos INTEGER, val INTEGER)");
    MustExecute(db_, "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
    Result<Table*> t = db_.catalog()->GetTable("t");
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    table_ = *t;
  }

  Database db_;
  Table* table_ = nullptr;
};

TEST_F(ScanEpochTest, InsertUnderOpenScanFailsNext) {
  TableScanOp scan(table_->schema(), table_);
  ASSERT_TRUE(scan.Open().ok());
  Row row;
  bool eof = false;
  ASSERT_TRUE(scan.Next(&row, &eof).ok());
  ASSERT_FALSE(eof);

  ASSERT_TRUE(table_->Insert(Row({Value::Int(4), Value::Int(40)})).ok());

  const Status s = scan.Next(&row, &eof);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kExecutionError);
  EXPECT_NE(s.ToString().find("mutated"), std::string::npos)
      << s.ToString();
}

TEST_F(ScanEpochTest, DeleteUnderOpenScanFailsNextBatch) {
  TableScanOp scan(table_->schema(), table_);
  ASSERT_TRUE(scan.Open().ok());
  RowBatch batch;
  bool eof = false;
  // Mutate before the first batch is pulled: the batch path must check
  // the epoch too, not just the row path.
  ASSERT_TRUE(table_->DeleteRow(0).ok());
  const Status s = scan.NextBatch(&batch, &eof);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kExecutionError);
}

TEST_F(ScanEpochTest, UpdateUnderOpenScanFails) {
  TableScanOp scan(table_->schema(), table_);
  ASSERT_TRUE(scan.Open().ok());
  Row row;
  bool eof = false;
  ASSERT_TRUE(scan.Next(&row, &eof).ok());

  ASSERT_TRUE(
      table_->UpdateRow(0, Row({Value::Int(1), Value::Int(99)})).ok());

  EXPECT_FALSE(scan.Next(&row, &eof).ok());
}

TEST_F(ScanEpochTest, ReopenAfterMutationSucceeds) {
  TableScanOp scan(table_->schema(), table_);
  ASSERT_TRUE(scan.Open().ok());
  ASSERT_TRUE(table_->Insert(Row({Value::Int(4), Value::Int(40)})).ok());
  Row row;
  bool eof = false;
  ASSERT_FALSE(scan.Next(&row, &eof).ok());

  // A fresh Open re-snapshots the epoch and sees the new data.
  ASSERT_TRUE(scan.Open().ok());
  size_t rows = 0;
  while (true) {
    const Status s = scan.Next(&row, &eof);
    ASSERT_TRUE(s.ok()) << s.ToString();
    if (eof) break;
    ++rows;
  }
  EXPECT_EQ(rows, 4u);
}

TEST_F(ScanEpochTest, AnalyzeDoesNotBumpEpoch) {
  const uint64_t before = table_->mutation_epoch();
  MustExecute(db_, "ANALYZE t");
  EXPECT_EQ(table_->mutation_epoch(), before);

  TableScanOp scan(table_->schema(), table_);
  ASSERT_TRUE(scan.Open().ok());
  MustExecute(db_, "ANALYZE t");
  Row row;
  bool eof = false;
  EXPECT_TRUE(scan.Next(&row, &eof).ok());
}

// End-to-end shape: SQL-level DML between two executed statements never
// trips the guard (each statement opens its own scans), so the epoch
// check is invisible to well-formed SQL workloads.
TEST_F(ScanEpochTest, SequentialSqlStatementsUnaffected) {
  MustExecute(db_, "INSERT INTO t VALUES (4, 40)");
  const ResultSet rs = MustExecute(db_, "SELECT pos, val FROM t");
  EXPECT_EQ(rs.rows().size(), 4u);
}

}  // namespace
}  // namespace rfv
