// Unit tests for the columnar execution primitives: Vector (per-element
// tagged lanes), SelectionVector (ascending alive-row indices),
// VectorProjection (column set + selection), and VectorEvaluator. The
// evaluator tests pin the semantics contract that the differential
// oracles rely on: every selected row computes exactly the value — and
// evaluates exactly the set of sub-expressions — that the row-at-a-time
// Evaluator would, including lazy CASE/AND/OR/COALESCE sub-selections
// and identical runtime-error behavior.

#include "exec/vector.h"

#include <gtest/gtest.h>

#include "exec/vector_eval.h"
#include "expr/builder.h"
#include "expr/eval.h"

namespace rfv {
namespace {

using namespace eb;  // Lit/Int/Col/Add/... expression factories

TEST(VectorTest, ResetMakesAllNull) {
  Vector v;
  v.Reset(4);
  ASSERT_EQ(v.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(v.is_null(i));
    EXPECT_EQ(v.tag(i), DataType::kNull);
  }
}

TEST(VectorTest, SetGetRoundTripsTags) {
  Vector v;
  v.Reset(5);
  v.SetInt(0, 42);
  v.SetDouble(1, 2.5);
  v.SetBool(2, true);
  v.SetString(3, "abc");
  // element 4 stays NULL
  EXPECT_EQ(v.GetValue(0), Value::Int(42));
  EXPECT_EQ(v.GetValue(1), Value::Double(2.5));
  EXPECT_EQ(v.GetValue(2), Value::Bool(true));
  EXPECT_EQ(v.GetValue(3), Value::String("abc"));
  EXPECT_TRUE(v.GetValue(4).is_null());
  // Lane accessors agree with the boxed values.
  EXPECT_EQ(v.i64(0), 42);
  EXPECT_EQ(v.f64(1), 2.5);
  EXPECT_TRUE(v.b(2));
  EXPECT_EQ(v.str(3), "abc");
}

TEST(VectorTest, SetValuePreservesExactTag) {
  // INSERT does not coerce: an int Value in a DOUBLE column must stay
  // int-tagged through the vector, or materialized rows would differ
  // between execution modes.
  Vector v;
  v.Reset(2);
  v.SetValue(0, Value::Int(7));
  v.SetValue(1, Value::Double(7.0));
  EXPECT_EQ(v.tag(0), DataType::kInt64);
  EXPECT_EQ(v.tag(1), DataType::kDouble);
  EXPECT_EQ(v.GetValue(0), Value::Int(7));
  EXPECT_EQ(v.GetValue(1), Value::Double(7.0));
}

TEST(VectorTest, ResetReusesStorageAndClearsTags) {
  Vector v;
  v.Reset(3);
  v.SetString(0, "x");
  v.SetInt(1, 1);
  v.Reset(2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_TRUE(v.is_null(0));
  EXPECT_TRUE(v.is_null(1));
}

TEST(VectorTest, CopyFromCopiesTagAndPayload) {
  Vector a, b;
  a.Reset(2);
  a.SetString(0, "hello");
  a.SetDouble(1, -1.5);
  b.Reset(2);
  b.CopyFrom(0, a, 1);
  b.CopyFrom(1, a, 0);
  EXPECT_EQ(b.GetValue(0), Value::Double(-1.5));
  EXPECT_EQ(b.GetValue(1), Value::String("hello"));
}

TEST(SelectionVectorTest, InitFullIsIdentity) {
  SelectionVector sel;
  sel.InitFull(3);
  ASSERT_EQ(sel.size(), 3u);
  EXPECT_EQ(sel[0], 0u);
  EXPECT_EQ(sel[1], 1u);
  EXPECT_EQ(sel[2], 2u);
  EXPECT_FALSE(sel.empty());
}

TEST(SelectionVectorTest, TruncateKeepsPrefix) {
  SelectionVector sel;
  sel.InitFull(5);
  sel.Truncate(2);
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel[1], 1u);
  sel.Truncate(99);  // no-op past the end
  EXPECT_EQ(sel.size(), 2u);
  sel.Clear();
  EXPECT_TRUE(sel.empty());
}

TEST(VectorProjectionTest, FromBatchTransposesAndRoundTrips) {
  RowBatch batch;
  batch.Push(Row({Value::Int(1), Value::String("a")}));
  batch.Push(Row({Value::Null(), Value::Double(2.5)}));
  VectorProjection vp;
  vp.FromBatch(2, batch);
  ASSERT_EQ(vp.num_columns(), 2u);
  ASSERT_EQ(vp.num_rows(), 2u);
  EXPECT_EQ(vp.NumSelected(), 2u);
  EXPECT_EQ(vp.column(0).GetValue(0), Value::Int(1));
  EXPECT_TRUE(vp.column(0).is_null(1));
  EXPECT_EQ(vp.column(1).GetValue(1), Value::Double(2.5));

  Row row;
  vp.MaterializeRow(1, &row);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_TRUE(row[0].is_null());
  EXPECT_EQ(row[1], Value::Double(2.5));
}

TEST(VectorProjectionTest, AppendSelectedHonorsNarrowedSelection) {
  RowBatch batch;
  for (int64_t i = 0; i < 4; ++i) batch.Push(Row({Value::Int(i)}));
  VectorProjection vp;
  vp.FromBatch(1, batch);
  vp.sel().indices() = {1, 3};
  std::vector<Row> out;
  vp.AppendSelectedTo(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0][0], Value::Int(1));
  EXPECT_EQ(out[1][0], Value::Int(3));
}

TEST(VectorProjectionTest, ZeroRowProjection) {
  VectorProjection vp;
  vp.Reset(3, 0);
  EXPECT_EQ(vp.num_rows(), 0u);
  EXPECT_EQ(vp.NumSelected(), 0u);
  std::vector<Row> out;
  vp.AppendSelectedTo(&out);
  EXPECT_TRUE(out.empty());
}

// --------------------------------------------------------------------
// VectorEvaluator vs. the row-at-a-time Evaluator.
// --------------------------------------------------------------------

class VectorEvalTest : public ::testing::Test {
 protected:
  // One int column (index 0) and one double column (index 1).
  void Fill(const std::vector<Value>& c0, const std::vector<Value>& c1) {
    RowBatch batch;
    for (size_t i = 0; i < c0.size(); ++i) batch.Push(Row({c0[i], c1[i]}));
    vp_.FromBatch(2, batch);
  }

  // Asserts that Eval over the full selection produces exactly the
  // row-path value for every row (or that both sides fail).
  void ExpectRowParity(const Expr& expr) {
    Vector out;
    const Status s = VectorEvaluator::Eval(expr, vp_, vp_.sel(), &out);
    bool any_row_error = false;
    std::string row_error;
    for (size_t i = 0; i < vp_.num_rows(); ++i) {
      Row row;
      vp_.MaterializeRow(i, &row);
      Result<Value> rv = Evaluator::Eval(expr, row);
      if (!rv.ok()) {
        any_row_error = true;
        row_error = rv.status().ToString();
        continue;
      }
      if (s.ok()) {
        EXPECT_EQ(out.GetValue(i), *rv) << "row " << i;
      }
    }
    EXPECT_EQ(s.ok(), !any_row_error)
        << "vector: " << s.ToString() << " row: " << row_error;
  }

  VectorProjection vp_;
};

TEST_F(VectorEvalTest, ArithmeticMixedTagsMatchesRowPath) {
  Fill({Value::Int(1), Value::Int(-3), Value::Null(), Value::Int(7)},
       {Value::Double(0.5), Value::Int(2), Value::Double(4.0),
        Value::Null()});
  ExpectRowParity(*Add(Col(0, DataType::kInt64), Col(1, DataType::kDouble)));
  ExpectRowParity(*Mul(Col(1, DataType::kDouble), Dbl(2.0)));
  ExpectRowParity(*Sub(Col(0, DataType::kInt64), Int(1)));
}

TEST_F(VectorEvalTest, ComparisonsAndBetweenMatchRowPath) {
  Fill({Value::Int(1), Value::Int(5), Value::Null(), Value::Int(3)},
       {Value::Double(2.0), Value::Double(5.0), Value::Double(1.0),
        Value::Null()});
  ExpectRowParity(*Lt(Col(0, DataType::kInt64), Col(1, DataType::kDouble)));
  ExpectRowParity(*Eq(Col(0, DataType::kInt64), Col(1, DataType::kDouble)));
  ExpectRowParity(
      *Between(Col(0, DataType::kInt64), Int(2), Col(1, DataType::kDouble)));
  ExpectRowParity(*IsNull(Col(1, DataType::kDouble)));
  ExpectRowParity(*IsNull(Col(0, DataType::kInt64), /*negated=*/true));
}

TEST_F(VectorEvalTest, CaseEvaluatesThenOnlyOnHitRows) {
  // Division by zero sits in the THEN branch; the row path only
  // evaluates it where the WHEN condition is TRUE, so the vector path
  // must too — an eager implementation would fail the whole vector.
  Fill({Value::Int(2), Value::Int(0), Value::Int(4), Value::Int(0)},
       {Value::Double(1.0), Value::Double(1.0), Value::Double(1.0),
        Value::Double(1.0)});
  ExpectRowParity(*CaseWhen(Gt(Col(0, DataType::kInt64), Int(0)),
                            Binary(BinaryOp::kDiv, Int(100),
                                   Col(0, DataType::kInt64)),
                            Int(-1)));
}

TEST_F(VectorEvalTest, AndShortCircuitSkipsRhsWhereLhsFalse) {
  Fill({Value::Int(0), Value::Int(5), Value::Int(0), Value::Int(2)},
       {Value::Double(1.0), Value::Double(1.0), Value::Double(1.0),
        Value::Double(1.0)});
  // 10 / col0 errors on col0 == 0 rows; the AND's lhs filters exactly
  // those rows out, so neither path may raise.
  ExpectRowParity(*And(
      Gt(Col(0, DataType::kInt64), Int(0)),
      Gt(Binary(BinaryOp::kDiv, Int(10), Col(0, DataType::kInt64)), Int(1))));
  ExpectRowParity(*Or(
      Le(Col(0, DataType::kInt64), Int(0)),
      Gt(Binary(BinaryOp::kDiv, Int(10), Col(0, DataType::kInt64)), Int(4))));
}

TEST_F(VectorEvalTest, DivisionByZeroOnSelectedRowFailsLikeRowPath) {
  Fill({Value::Int(0)}, {Value::Double(1.0)});
  Vector out;
  const Status s = VectorEvaluator::Eval(
      *Binary(BinaryOp::kDiv, Int(1), Col(0, DataType::kInt64)), vp_,
      vp_.sel(), &out);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("division by zero"), std::string::npos)
      << s.ToString();
}

TEST_F(VectorEvalTest, ErrorOnUnselectedRowDoesNotFire) {
  // Row 0 divides by zero, but the selection excludes it: the evaluator
  // must only touch selected rows.
  Fill({Value::Int(0), Value::Int(2)},
       {Value::Double(1.0), Value::Double(1.0)});
  SelectionVector sel;
  sel.indices() = {1};
  Vector out;
  const Status s = VectorEvaluator::Eval(
      *Binary(BinaryOp::kDiv, Int(10), Col(0, DataType::kInt64)), vp_, sel,
      &out);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(out.GetValue(1), Value::Int(5));
}

TEST_F(VectorEvalTest, FunctionsMatchRowPath) {
  Fill({Value::Int(17), Value::Int(-4), Value::Null(), Value::Int(81)},
       {Value::Double(2.5), Value::Null(), Value::Double(-3.5),
        Value::Double(0.0)});
  ExpectRowParity(*Mod(Col(0, DataType::kInt64), Int(5)));
  ExpectRowParity(*Fn(ScalarFn::kAbs, [] {
    std::vector<ExprPtr> a;
    a.push_back(Col(1, DataType::kDouble));
    return a;
  }(), DataType::kDouble));
  ExpectRowParity(*Coalesce(Col(1, DataType::kDouble), Int(9)));
  ExpectRowParity(*Fn(ScalarFn::kMin2, [] {
    std::vector<ExprPtr> a;
    a.push_back(Col(0, DataType::kInt64));
    a.push_back(Col(1, DataType::kDouble));
    return a;
  }(), DataType::kDouble));
}

TEST_F(VectorEvalTest, InMatchesRowPathWithNulls) {
  Fill({Value::Int(1), Value::Int(2), Value::Null(), Value::Int(4)},
       {Value::Double(1.0), Value::Null(), Value::Double(3.0),
        Value::Double(4.0)});
  std::vector<ExprPtr> candidates;
  candidates.push_back(Int(2));
  candidates.push_back(Col(1, DataType::kDouble));
  ExpectRowParity(*In(Col(0, DataType::kInt64), std::move(candidates)));
}

TEST_F(VectorEvalTest, PredicateNarrowsSelectionInAscendingOrder) {
  Fill({Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)},
       {Value::Double(0.0), Value::Double(0.0), Value::Double(0.0),
        Value::Double(0.0)});
  SelectionVector sel;
  sel.InitFull(4);
  const Status s = VectorEvaluator::EvalPredicate(
      *Eq(Mod(Col(0, DataType::kInt64), Int(2)), Int(0)), vp_, &sel);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel[0], 1u);
  EXPECT_EQ(sel[1], 3u);
}

TEST_F(VectorEvalTest, PredicateCanFilterEverything) {
  Fill({Value::Int(1), Value::Int(2)},
       {Value::Double(0.0), Value::Null()});
  SelectionVector sel;
  sel.InitFull(2);
  // NULL predicate results count as false, like the row path.
  const Status s = VectorEvaluator::EvalPredicate(
      *Gt(Col(1, DataType::kDouble), Dbl(5.0)), vp_, &sel);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(sel.empty());
}

TEST_F(VectorEvalTest, ZeroRowVectorEvaluates) {
  vp_.Reset(2, 0);
  Vector out;
  const Status s = VectorEvaluator::Eval(
      *Add(Col(0, DataType::kInt64), Int(1)), vp_, vp_.sel(), &out);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(out.size(), 0u);
}

TEST_F(VectorEvalTest, NonBooleanPredicateFailsLikeRowPath) {
  Fill({Value::Int(1)}, {Value::Double(1.0)});
  SelectionVector sel;
  sel.InitFull(1);
  const Status s = VectorEvaluator::EvalPredicate(
      *Add(Col(0, DataType::kInt64), Int(1)), vp_, &sel);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("predicate did not evaluate to a boolean"),
            std::string::npos)
      << s.ToString();
}

}  // namespace
}  // namespace rfv
