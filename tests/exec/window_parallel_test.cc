// Partition-parallel window execution: the parallel path must be
// value-identical to the single-threaded path, and the executor-side
// RANGE/overflow guards must fail cleanly (Status, not wrong answers).

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "exec/operators.h"
#include "expr/builder.h"
#include "test_util.h"

namespace rfv {
namespace {

using testutil::MustExecute;
using testutil::RowsEqual;

// grp INTEGER, pos INTEGER, val DOUBLE: `groups` partitions of
// `per_group` rows, deterministic values including negatives and a NULL
// per group.
void CreatePartitionedTable(Database& db, int groups, int per_group) {
  MustExecute(db,
              "CREATE TABLE pt (grp INTEGER, pos INTEGER, val DOUBLE)");
  std::string insert = "INSERT INTO pt VALUES ";
  bool first = true;
  for (int g = 0; g < groups; ++g) {
    for (int i = 1; i <= per_group; ++i) {
      if (!first) insert += ", ";
      first = false;
      const int v = ((g * 131 + i * 37 + 11) % 101) - 23;
      insert += "(" + std::to_string(g) + ", " + std::to_string(i) + ", " +
                (i == 7 ? "NULL" : std::to_string(v)) + ")";
    }
  }
  MustExecute(db, insert);
}

class WindowParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CreatePartitionedTable(serial_, kGroups, kPerGroup);
    CreatePartitionedTable(parallel_, kGroups, kPerGroup);
    serial_.options().exec.window_workers = 1;
    parallel_.options().exec.window_workers = 4;
    // Force the parallel path even though the table is small.
    parallel_.options().exec.window_parallel_min_rows = 1;
  }

  static constexpr int kGroups = 12;
  static constexpr int kPerGroup = 40;
  Database serial_;
  Database parallel_;
};

TEST_F(WindowParallelTest, ParallelMatchesSerial) {
  const std::vector<std::string> queries = {
      "SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos ROWS "
      "BETWEEN 3 PRECEDING AND 2 FOLLOWING) FROM pt ORDER BY grp, pos",
      "SELECT grp, pos, AVG(val) OVER (PARTITION BY grp ORDER BY pos ROWS "
      "BETWEEN 5 PRECEDING AND CURRENT ROW) FROM pt ORDER BY grp, pos",
      "SELECT grp, pos, MIN(val) OVER (PARTITION BY grp ORDER BY pos ROWS "
      "BETWEEN 4 PRECEDING AND 4 FOLLOWING) FROM pt ORDER BY grp, pos",
      "SELECT grp, pos, MAX(val) OVER (PARTITION BY grp ORDER BY pos ROWS "
      "UNBOUNDED PRECEDING) FROM pt ORDER BY grp, pos",
      "SELECT grp, pos, COUNT(val) OVER (PARTITION BY grp ORDER BY pos "
      "ROWS BETWEEN 2 FOLLOWING AND 5 FOLLOWING) FROM pt ORDER BY grp, pos",
      "SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos "
      "RANGE BETWEEN 2 PRECEDING AND 2 FOLLOWING) FROM pt "
      "ORDER BY grp, pos",
      "SELECT grp, pos, RANK() OVER (PARTITION BY grp ORDER BY val) FROM "
      "pt ORDER BY grp, pos",
      "SELECT grp, pos, ROW_NUMBER() OVER (PARTITION BY grp ORDER BY val "
      "DESC) FROM pt ORDER BY grp, pos",
  };
  for (const std::string& q : queries) {
    EXPECT_TRUE(RowsEqual(MustExecute(serial_, q), MustExecute(parallel_, q)))
        << q;
  }
}

TEST_F(WindowParallelTest, AutoWorkerCountMatchesSerial) {
  parallel_.options().exec.window_workers = 0;  // hardware concurrency
  const std::string q =
      "SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos ROWS "
      "BETWEEN 3 PRECEDING AND 3 FOLLOWING) FROM pt ORDER BY grp, pos";
  EXPECT_TRUE(RowsEqual(MustExecute(serial_, q), MustExecute(parallel_, q)));
}

TEST_F(WindowParallelTest, MoreWorkersThanPartitions) {
  parallel_.options().exec.window_workers = 64;  // > kGroups
  const std::string q =
      "SELECT grp, pos, AVG(val) OVER (PARTITION BY grp ORDER BY pos ROWS "
      "BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM pt ORDER BY grp, pos";
  EXPECT_TRUE(RowsEqual(MustExecute(serial_, q), MustExecute(parallel_, q)));
}

TEST_F(WindowParallelTest, MetricsReportWindowOperator) {
  const ResultSet rs = MustExecute(
      parallel_,
      "SELECT grp, SUM(val) OVER (PARTITION BY grp ORDER BY pos ROWS "
      "BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM pt ORDER BY grp");
  ASSERT_FALSE(rs.metrics().empty());
  bool saw_window = false;
  bool saw_scan = false;
  for (const OperatorMetricsEntry& e : rs.metrics()) {
    if (e.name == "window") {
      saw_window = true;
      EXPECT_EQ(e.metrics.rows_out, kGroups * kPerGroup);
      EXPECT_EQ(e.metrics.peak_buffered_rows, kGroups * kPerGroup);
      EXPECT_EQ(e.rows_in, kGroups * kPerGroup);
    }
    if (e.name == "scan") {
      saw_scan = true;
      EXPECT_EQ(e.metrics.rows_out, kGroups * kPerGroup);
    }
  }
  EXPECT_TRUE(saw_window);
  EXPECT_TRUE(saw_scan);
  EXPECT_FALSE(rs.MetricsToString().empty());
}

// --- Executor-side guards, exercised on directly built operator trees
// (the binder already rejects these shapes for SQL input). ---

struct WhiteBoxFixture {
  Database db;
  Table* table = nullptr;
  Schema scan_schema;

  explicit WhiteBoxFixture(DataType key_type) {
    Result<Table*> t = db.catalog()->CreateTable(
        "wb", Schema({ColumnDef("k", key_type),
                      ColumnDef("v", DataType::kInt64)}));
    EXPECT_TRUE(t.ok());
    table = *t;
    scan_schema = table->schema();
  }

  // SUM(v) OVER (ORDER BY k <frame>) as a raw WindowOp.
  PhysicalOperatorPtr MakeWindow(WindowFrame frame, bool ascending,
                                 AggFn fn = AggFn::kSum) {
    WindowCall call;
    call.kind = WindowFnKind::kAggregate;
    call.fn = fn;
    call.arg = eb::Col(1, DataType::kInt64, "v");
    SortKey key;
    key.expr = eb::Col(0, scan_schema.column(0).type, "k");
    key.ascending = ascending;
    call.order_by.push_back(std::move(key));
    call.frame = frame;
    call.output_name = "w";
    call.output_type = DataType::kInt64;
    Schema out = scan_schema;
    out.AddColumn(ColumnDef("w", call.output_type));
    std::vector<WindowCall> calls;
    calls.push_back(std::move(call));
    return PhysicalOperatorPtr(new WindowOp(
        std::move(out),
        PhysicalOperatorPtr(new TableScanOp(scan_schema, table)),
        std::move(calls)));
  }
};

WindowFrame RangeFrame(int64_t lo, int64_t hi) {
  WindowFrame f;
  f.lo_unbounded = false;
  f.hi_unbounded = false;
  f.lo = lo;
  f.hi = hi;
  f.range_mode = true;
  return f;
}

TEST(WindowRangeGuardTest, DescendingRangeKeyRejected) {
  WhiteBoxFixture fx(DataType::kInt64);
  ASSERT_TRUE(
      fx.table->InsertBatch({Row({Value::Int(1), Value::Int(10)})}).ok());
  PhysicalOperatorPtr op =
      fx.MakeWindow(RangeFrame(-1, 1), /*ascending=*/false);
  const Status s = op->Open();
  EXPECT_EQ(s.code(), StatusCode::kExecutionError);
  EXPECT_NE(s.message().find("ascending"), std::string::npos);
}

TEST(WindowRangeGuardTest, NonNumericRangeKeyRejected) {
  WhiteBoxFixture fx(DataType::kString);
  ASSERT_TRUE(
      fx.table->InsertBatch({Row({Value::String("a"), Value::Int(10)})})
          .ok());
  PhysicalOperatorPtr op =
      fx.MakeWindow(RangeFrame(-1, 1), /*ascending=*/true);
  const Status s = op->Open();
  EXPECT_EQ(s.code(), StatusCode::kExecutionError);
  EXPECT_NE(s.message().find("numeric"), std::string::npos);
}

TEST(WindowRangeGuardTest, InvertedRangeBoundsGiveEmptyFrames) {
  WhiteBoxFixture fx(DataType::kInt64);
  ASSERT_TRUE(fx.table
                  ->InsertBatch({Row({Value::Int(1), Value::Int(10)}),
                                 Row({Value::Int(2), Value::Int(20)}),
                                 Row({Value::Int(3), Value::Int(30)})})
                  .ok());
  // lo > hi: every frame is empty — SUM must be NULL, COUNT must be 0.
  PhysicalOperatorPtr sum =
      fx.MakeWindow(RangeFrame(2, 1), /*ascending=*/true);
  Result<std::vector<Row>> rows = ExecuteToVector(sum.get());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 3u);
  for (const Row& r : *rows) EXPECT_TRUE(r[2].is_null());

  PhysicalOperatorPtr count =
      fx.MakeWindow(RangeFrame(2, 1), /*ascending=*/true, AggFn::kCount);
  rows = ExecuteToVector(count.get());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  for (const Row& r : *rows) EXPECT_EQ(r[2], Value::Int(0));
}

TEST(WindowOverflowTest, Int64SumOverflowIsAnError) {
  Database db;
  Result<Table*> t = db.catalog()->CreateTable(
      "big", Schema({ColumnDef("pos", DataType::kInt64),
                     ColumnDef("v", DataType::kInt64)}));
  ASSERT_TRUE(t.ok());
  const int64_t huge = std::numeric_limits<int64_t>::max() - 1;
  ASSERT_TRUE((*t)->InsertBatch({Row({Value::Int(1), Value::Int(huge)}),
                                 Row({Value::Int(2), Value::Int(huge)})})
                  .ok());
  const Result<ResultSet> r = db.Execute(
      "SELECT pos, SUM(v) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND "
      "CURRENT ROW) FROM big");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
  EXPECT_NE(r.status().message().find("overflow"), std::string::npos);
}

TEST(WindowOverflowTest, TransientOverflowOutsideAnyFrameIsFine) {
  // The sweep pushes row i+1 before popping row i-1, so the accumulator
  // transiently holds a superset of any single frame. That superset may
  // exceed int64 even when every real frame fits — this must NOT error.
  Database db;
  Result<Table*> t = db.catalog()->CreateTable(
      "big", Schema({ColumnDef("pos", DataType::kInt64),
                     ColumnDef("v", DataType::kInt64)}));
  ASSERT_TRUE(t.ok());
  const int64_t big = std::numeric_limits<int64_t>::max() / 2 + 10;
  ASSERT_TRUE((*t)->InsertBatch({Row({Value::Int(1), Value::Int(big)}),
                                 Row({Value::Int(2), Value::Int(big)}),
                                 Row({Value::Int(3), Value::Int(big)})})
                  .ok());
  // Frame = current row only: every real frame sums to `big` (fits),
  // but while the sweep advances, row i+1 is pushed before row i is
  // popped, so the accumulator transiently holds 2*big (overflow).
  const Result<ResultSet> r = db.Execute(
      "SELECT pos, SUM(v) OVER (ORDER BY pos ROWS BETWEEN CURRENT ROW AND "
      "CURRENT ROW) FROM big ORDER BY pos");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->at(0, 1), Value::Int(big));
  EXPECT_EQ(r->at(1, 1), Value::Int(big));
  EXPECT_EQ(r->at(2, 1), Value::Int(big));
}

}  // namespace
}  // namespace rfv
