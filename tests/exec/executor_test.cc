#include "exec/executor.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace rfv {
namespace {

using testutil::MustExecute;
using testutil::RowsEqual;

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(db_, "CREATE TABLE t (a INTEGER, b DOUBLE, s VARCHAR)");
    MustExecute(db_,
                "INSERT INTO t VALUES (1, 10.0, 'x'), (2, 20.0, 'y'), "
                "(3, NULL, 'x'), (4, 40.0, NULL), (2, 25.0, 'z')");
  }
  Database db_;
};

TEST_F(ExecutorTest, ScanProducesAllRows) {
  EXPECT_EQ(MustExecute(db_, "SELECT * FROM t").NumRows(), 5u);
}

TEST_F(ExecutorTest, FilterKeepsMatching) {
  const ResultSet rs = MustExecute(db_, "SELECT a FROM t WHERE a = 2");
  EXPECT_EQ(rs.NumRows(), 2u);
}

TEST_F(ExecutorTest, FilterNullComparisonDropsRow) {
  // b = NULL row: comparison yields NULL → row filtered out.
  EXPECT_EQ(MustExecute(db_, "SELECT a FROM t WHERE b > 0").NumRows(), 4u);
}

TEST_F(ExecutorTest, ProjectComputesExpressions) {
  const ResultSet rs =
      MustExecute(db_, "SELECT a * 2 + 1 AS c FROM t WHERE a = 3");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.at(0, 0), Value::Int(7));
}

TEST_F(ExecutorTest, OrderByAscDescWithNulls) {
  const ResultSet rs = MustExecute(db_, "SELECT b FROM t ORDER BY b");
  ASSERT_EQ(rs.NumRows(), 5u);
  EXPECT_TRUE(rs.at(0, 0).is_null());  // NULLs sort first
  EXPECT_EQ(rs.at(1, 0), Value::Double(10));
  const ResultSet desc = MustExecute(db_, "SELECT b FROM t ORDER BY b DESC");
  EXPECT_EQ(desc.at(0, 0), Value::Double(40));
  EXPECT_TRUE(desc.at(4, 0).is_null());
}

TEST_F(ExecutorTest, SortIsStable) {
  const ResultSet rs =
      MustExecute(db_, "SELECT a, b FROM t ORDER BY a");
  // Two a=2 rows keep insertion order (20 before 25).
  EXPECT_EQ(rs.at(1, 1), Value::Double(20));
  EXPECT_EQ(rs.at(2, 1), Value::Double(25));
}

TEST_F(ExecutorTest, Limit) {
  EXPECT_EQ(MustExecute(db_, "SELECT a FROM t LIMIT 2").NumRows(), 2u);
  EXPECT_EQ(MustExecute(db_, "SELECT a FROM t LIMIT 0").NumRows(), 0u);
  EXPECT_EQ(MustExecute(db_, "SELECT a FROM t LIMIT 99").NumRows(), 5u);
}

TEST_F(ExecutorTest, GlobalAggregates) {
  const ResultSet rs = MustExecute(
      db_, "SELECT COUNT(*), COUNT(b), SUM(a), AVG(b), MIN(b), MAX(s) "
           "FROM t");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.at(0, 0), Value::Int(5));
  EXPECT_EQ(rs.at(0, 1), Value::Int(4));  // COUNT ignores NULL
  EXPECT_EQ(rs.at(0, 2), Value::Int(12));
  EXPECT_DOUBLE_EQ(rs.at(0, 3).AsDouble(), 95.0 / 4);
  EXPECT_EQ(rs.at(0, 4), Value::Double(10));
  EXPECT_EQ(rs.at(0, 5), Value::String("z"));  // MAX over strings
}

TEST_F(ExecutorTest, GlobalAggregateOnEmptyInput) {
  MustExecute(db_, "CREATE TABLE empty (a INTEGER)");
  const ResultSet rs =
      MustExecute(db_, "SELECT COUNT(*), SUM(a), MIN(a) FROM empty");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.at(0, 0), Value::Int(0));
  EXPECT_TRUE(rs.at(0, 1).is_null());
  EXPECT_TRUE(rs.at(0, 2).is_null());
}

TEST_F(ExecutorTest, GroupByWithNullGroup) {
  const ResultSet rs = MustExecute(
      db_, "SELECT s, COUNT(*) FROM t GROUP BY s ORDER BY s");
  // Groups: NULL, 'x', 'y', 'z' — NULL forms its own group.
  ASSERT_EQ(rs.NumRows(), 4u);
  EXPECT_TRUE(rs.at(0, 0).is_null());
  EXPECT_EQ(rs.at(0, 1), Value::Int(1));
}

TEST_F(ExecutorTest, GroupByEmptyInputYieldsNoRows) {
  MustExecute(db_, "CREATE TABLE empty2 (a INTEGER)");
  EXPECT_EQ(
      MustExecute(db_, "SELECT a, COUNT(*) FROM empty2 GROUP BY a").NumRows(),
      0u);
}

TEST_F(ExecutorTest, Having) {
  const ResultSet rs = MustExecute(
      db_,
      "SELECT a, COUNT(*) AS c FROM t GROUP BY a HAVING COUNT(*) > 1");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.at(0, 0), Value::Int(2));
}

TEST_F(ExecutorTest, UnionAllConcatenates) {
  const ResultSet rs = MustExecute(
      db_, "SELECT a FROM t UNION ALL SELECT a FROM t WHERE a = 1");
  EXPECT_EQ(rs.NumRows(), 6u);
}

TEST_F(ExecutorTest, CrossJoinCardinality) {
  EXPECT_EQ(MustExecute(db_, "SELECT 1 FROM t t1, t t2").NumRows(), 25u);
}

TEST_F(ExecutorTest, InnerJoinWithCondition) {
  const ResultSet rs = MustExecute(
      db_, "SELECT t1.a, t2.a FROM t t1 JOIN t t2 ON t1.a = t2.a + 1 "
           "ORDER BY t1.a, t2.a");
  // matches: (2,1)x2, (3,2)x2, (4,3)
  EXPECT_EQ(rs.NumRows(), 5u);
}

TEST_F(ExecutorTest, LeftOuterJoinPadsNulls) {
  MustExecute(db_, "CREATE TABLE d (k INTEGER, name VARCHAR)");
  MustExecute(db_, "INSERT INTO d VALUES (1, 'one'), (2, 'two')");
  const ResultSet rs = MustExecute(
      db_,
      "SELECT t.a, d.name FROM t LEFT OUTER JOIN d ON t.a = d.k "
      "ORDER BY t.a");
  ASSERT_EQ(rs.NumRows(), 5u);
  EXPECT_EQ(rs.at(0, 1), Value::String("one"));
  EXPECT_TRUE(rs.at(3, 1).is_null());  // a=3 has no match
  EXPECT_TRUE(rs.at(4, 1).is_null());  // a=4 has no match
}

TEST_F(ExecutorTest, LeftOuterJoinNullKeyNeverMatches) {
  MustExecute(db_, "CREATE TABLE n (k INTEGER)");
  MustExecute(db_, "INSERT INTO n VALUES (NULL)");
  const ResultSet rs = MustExecute(
      db_, "SELECT n.k, t.a FROM n LEFT OUTER JOIN t ON n.k = t.a");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_TRUE(rs.at(0, 1).is_null());
}

TEST_F(ExecutorTest, JoinStrategiesAgree) {
  // The same join executed with all strategies enabled/disabled.
  const std::string sql =
      "SELECT t1.a, t2.b FROM t t1, t t2 WHERE t1.a = t2.a ORDER BY 1, 2";
  const ResultSet reference = MustExecute(db_, sql);
  db_.options().exec.enable_hash_join = false;
  const ResultSet nlj = MustExecute(db_, sql);
  db_.options().exec.enable_hash_join = true;
  EXPECT_TRUE(RowsEqual(reference, nlj));
}

TEST_F(ExecutorTest, DivisionByZeroSurfacesAsError) {
  const Result<ResultSet> r = db_.Execute("SELECT a / 0 FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
}

TEST_F(ExecutorTest, SubqueryInFrom) {
  const ResultSet rs = MustExecute(
      db_,
      "SELECT sub.g, sub.c FROM (SELECT a AS g, COUNT(*) AS c FROM t GROUP "
      "BY a) sub WHERE sub.c > 1");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.at(0, 0), Value::Int(2));
}

TEST_F(ExecutorTest, CaseEndToEnd) {
  const ResultSet rs = MustExecute(
      db_,
      "SELECT a, CASE WHEN a < 2 THEN 'small' WHEN a < 4 THEN 'mid' ELSE "
      "'big' END FROM t ORDER BY a, 2");
  EXPECT_EQ(rs.at(0, 1), Value::String("small"));
  EXPECT_EQ(rs.at(4, 1), Value::String("big"));
}

}  // namespace
}  // namespace rfv
