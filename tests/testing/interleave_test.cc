// The concurrent-session interleave oracle: generator determinism,
// schedule well-formedness, the oracle passing on the real engine, and
// the transcript rendering.

#include "testing/interleave.h"

#include <gtest/gtest.h>

#include <set>

namespace rfv {
namespace fuzzing {
namespace {

TEST(InterleaveGeneratorTest, DeterministicForSeedAndIndex) {
  const InterleaveScenario a = GenerateInterleaveScenario(42, 7);
  const InterleaveScenario b = GenerateInterleaveScenario(42, 7);
  EXPECT_EQ(a.ToSqlScript(), b.ToSqlScript());
  EXPECT_EQ(a.num_sessions, b.num_sessions);
  ASSERT_EQ(a.steps.size(), b.steps.size());

  const InterleaveScenario c = GenerateInterleaveScenario(42, 8);
  EXPECT_NE(a.ToSqlScript(), c.ToSqlScript());
}

TEST(InterleaveGeneratorTest, SchedulesAreWellFormed) {
  for (int index = 0; index < 20; ++index) {
    const InterleaveScenario scenario = GenerateInterleaveScenario(3, index);
    EXPECT_GE(scenario.num_sessions, 2);
    EXPECT_LE(scenario.num_sessions, 4);
    EXPECT_FALSE(scenario.setup.empty());
    EXPECT_FALSE(scenario.steps.empty());
    std::set<int> sessions_seen;
    for (const InterleaveStep& step : scenario.steps) {
      EXPECT_GE(step.session, 0);
      EXPECT_LT(step.session, scenario.num_sessions);
      EXPECT_FALSE(step.sql.empty());
      sessions_seen.insert(step.session);
    }
    // Every session contributes at least the generator's 4-step floor.
    EXPECT_EQ(static_cast<int>(sessions_seen.size()), scenario.num_sessions);
  }
}

TEST(InterleaveOracleTest, CleanEnginePassesManySeeds) {
  for (int index = 0; index < 10; ++index) {
    const InterleaveScenario scenario = GenerateInterleaveScenario(11, index);
    const InterleaveVerdict verdict = RunInterleaveScenario(scenario);
    EXPECT_TRUE(verdict.ok())
        << scenario.Id() << "\n" << verdict.Summary() << "\n"
        << scenario.ToSqlScript();
    EXPECT_GT(verdict.checks, 0) << scenario.Id();
  }
}

TEST(InterleaveOracleTest, TranscriptNamesEverySessionStatement) {
  const InterleaveScenario scenario = GenerateInterleaveScenario(5, 0);
  const std::string script = scenario.ToSqlScript();
  EXPECT_NE(script.find("CREATE TABLE t"), std::string::npos);
  EXPECT_NE(script.find("-- s0"), std::string::npos);
  EXPECT_NE(script.find("-- s1"), std::string::npos);
  // One annotated statement per scheduled step.
  size_t annotations = 0;
  for (size_t pos = script.find("-- s"); pos != std::string::npos;
       pos = script.find("-- s", pos + 1)) {
    ++annotations;
  }
  EXPECT_EQ(annotations, scenario.steps.size());
}

}  // namespace
}  // namespace fuzzing
}  // namespace rfv
