// Harness-level tests for the differential fuzzer: generator
// determinism (same seed → byte-identical scenarios AND byte-identical
// verdicts, with the parallel oracle active), clean verdicts on fixed
// seeds, the injected-off-by-one catch + shrink-to-tiny-repro
// guarantee, and the metrics counters.

#include <gtest/gtest.h>

#include <string>

#include "common/metrics_registry.h"
#include "testing/generator.h"
#include "testing/oracle.h"
#include "testing/shrinker.h"

namespace rfv {
namespace fuzzing {
namespace {

TEST(FuzzGeneratorTest, SameSeedSameScenarioBytes) {
  for (int i = 0; i < 40; ++i) {
    const Scenario a = GenerateScenario(7, i);
    const Scenario b = GenerateScenario(7, i);
    EXPECT_EQ(a.ToSqlScript(), b.ToSqlScript()) << "iter " << i;
  }
}

TEST(FuzzGeneratorTest, DifferentSeedsDiffer) {
  int different = 0;
  for (int i = 0; i < 10; ++i) {
    if (GenerateScenario(1, i).ToSqlScript() !=
        GenerateScenario(2, i).ToSqlScript()) {
      ++different;
    }
  }
  EXPECT_GT(different, 5);
}

TEST(FuzzGeneratorTest, CoversAllScenarioKinds) {
  bool saw[3] = {false, false, false};
  for (int i = 0; i < 50; ++i) {
    saw[static_cast<int>(GenerateScenario(3, i).kind)] = true;
  }
  EXPECT_TRUE(saw[0] && saw[1] && saw[2]);
}

// Same seed → byte-identical verdict summaries across two runs, with
// the parallel oracle running at 4 workers (the acceptance criterion's
// exec.window_workers = 4 configuration).
TEST(FuzzOracleTest, SameSeedSameVerdictBytes) {
  OracleOptions opts;
  opts.parallel_workers = 4;
  for (int i = 0; i < 15; ++i) {
    const Scenario s = GenerateScenario(11, i);
    const ScenarioVerdict a = RunScenario(s, opts);
    const ScenarioVerdict b = RunScenario(s, opts);
    EXPECT_EQ(a.Summary(), b.Summary()) << s.Id();
  }
}

// The forced-hash-join oracle (partitioned rewrites replayed with the
// band and index nested-loop joins disabled) must actually fire within
// a modest seed sweep — otherwise the vectorized hash join would go
// fuzz-unexercised without anything failing.
TEST(FuzzOracleTest, HashJoinOracleFires) {
  int fired = 0;
  for (int i = 0; i < 120 && fired == 0; ++i) {
    const Scenario s = GenerateScenario(13, i);
    const ScenarioVerdict v = RunScenario(s);
    EXPECT_TRUE(v.ok()) << s.Id() << "\n" << v.Summary();
    const auto it = v.checks.find("hashjoin");
    if (it != v.checks.end()) fired += it->second;
  }
  EXPECT_GT(fired, 0);
}

TEST(FuzzOracleTest, FixedSeedsRunGreen) {
  for (int i = 0; i < 30; ++i) {
    const Scenario s = GenerateScenario(5, i);
    const ScenarioVerdict v = RunScenario(s);
    EXPECT_TRUE(v.ok()) << s.Id() << "\n" << v.Summary() << "\n"
                        << s.ToSqlScript();
    EXPECT_GT(v.TotalChecks(), 0) << s.Id();
  }
}

TEST(FuzzOracleTest, MetricsCountersAdvance) {
  Counter* scenarios = MetricsRegistry::Global().GetCounter(
      "rfv_fuzz_scenarios_total");
  Counter* checks = MetricsRegistry::Global().GetCounter(
      "rfv_fuzz_checks_total");
  const int64_t scenarios_before = scenarios->value();
  const int64_t checks_before = checks->value();
  RunScenario(GenerateScenario(5, 0));
  EXPECT_EQ(scenarios->value(), scenarios_before + 1);
  EXPECT_GT(checks->value(), checks_before);
}

// The acceptance drill: an injected off-by-one (the corruption hook
// simulates the classic frame bug in a scratch build) must be caught by
// the reference oracle and shrunk to a tiny repro — ≤ 20 rows.
TEST(FuzzShrinkerTest, InjectedOffByOneCaughtAndShrunk) {
  OracleOptions opts;
  opts.corruption = OracleOptions::Corruption::kOffByOne;
  int caught = 0;
  for (int i = 0; i < 10 && caught < 3; ++i) {
    const Scenario s = GenerateScenario(42, i);
    const ScenarioVerdict v = RunScenario(s, opts);
    if (v.ok()) continue;  // e.g. scenarios whose last window value is
                           // unchanged by the perturbation
    ++caught;
    const ShrinkResult shrunk = ShrinkScenario(s, opts);
    EXPECT_FALSE(shrunk.verdict.ok()) << s.Id();
    EXPECT_LE(shrunk.scenario.rows.size(), 20u) << s.Id();
    EXPECT_EQ(shrunk.verdict.failures.front().oracle,
              v.failures.front().oracle)
        << s.Id();

    const std::string repro = ReproSql(shrunk.scenario, shrunk.verdict);
    EXPECT_NE(repro.find("CREATE TABLE"), std::string::npos);
    EXPECT_NE(repro.find("-- verdict: FAIL"), std::string::npos);
  }
  EXPECT_GE(caught, 3) << "corruption hook failed to trigger";
}

// Shrinking a healthy scenario is a no-op.
TEST(FuzzShrinkerTest, CleanScenarioIsNotShrunk) {
  const Scenario s = GenerateScenario(5, 1);
  const ShrinkResult r = ShrinkScenario(s);
  EXPECT_TRUE(r.verdict.ok());
  EXPECT_EQ(r.accepted, 0);
  EXPECT_EQ(r.scenario.ToSqlScript(), s.ToSqlScript());
}

}  // namespace
}  // namespace fuzzing
}  // namespace rfv
