// Golden checks for the fuzz harness's trusted reference evaluator
// (src/testing/reference_window.h): paper Table-1-style sliding sums
// verified number by number, SQL NULL/tie semantics, and agreement with
// the engine's window operator on the canonical seq-table data used by
// the tests under tests/exec.

#include <gtest/gtest.h>

#include <vector>

#include "testing/reference_window.h"
#include "test_util.h"

namespace rfv {
namespace fuzzing {
namespace {

using testutil::CreateSeqTable;
using testutil::MustExecute;

Row MakeRow(int64_t pos, Value val) {
  Row row;
  row.Append(Value::Int(pos));
  row.Append(std::move(val));
  return row;
}

std::vector<Row> IntRows(const std::vector<int64_t>& vals) {
  std::vector<Row> rows;
  for (size_t i = 0; i < vals.size(); ++i) {
    rows.push_back(MakeRow(static_cast<int64_t>(i) + 1, Value::Int(vals[i])));
  }
  return rows;
}

RefWindowCall Call(FuzzFn fn, FuzzFrame frame) {
  RefWindowCall call;
  call.fn = fn;
  call.frame = frame;
  call.order_col = 0;
  call.arg_col = fn == FuzzFn::kCountStar ? -1 : 1;
  return call;
}

FuzzFrame Sliding(int64_t l, int64_t h) {
  FuzzFrame f;
  f.cumulative = false;
  f.l = l;
  f.h = h;
  return f;
}

// Paper Table 1 query shape: SUM OVER (ORDER BY pos ROWS BETWEEN
// 1 PRECEDING AND 1 FOLLOWING), hand-computed on 1..5.
TEST(ReferenceWindowTest, Table1SlidingSumGolden) {
  const std::vector<Row> rows = IntRows({1, 2, 3, 4, 5});
  const std::vector<Value> out =
      ReferenceWindow(rows, Call(FuzzFn::kSum, Sliding(1, 1)));
  const std::vector<int64_t> expected = {3, 6, 9, 12, 9};
  ASSERT_EQ(out.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(out[i].Compare(Value::Int(expected[i])), 0) << "row " << i;
  }
}

TEST(ReferenceWindowTest, CumulativeSumGolden) {
  const std::vector<Row> rows = IntRows({5, -2, 7, 0, 1});
  const std::vector<Value> out =
      ReferenceWindow(rows, Call(FuzzFn::kSum, FuzzFrame{}));
  const std::vector<int64_t> expected = {5, 3, 10, 10, 11};
  ASSERT_EQ(out.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(out[i].Compare(Value::Int(expected[i])), 0) << "row " << i;
  }
}

// Output order must follow input order, not sorted order.
TEST(ReferenceWindowTest, OutputAlignedWithInputOrder) {
  std::vector<Row> rows;
  rows.push_back(MakeRow(3, Value::Int(30)));
  rows.push_back(MakeRow(1, Value::Int(10)));
  rows.push_back(MakeRow(2, Value::Int(20)));
  const std::vector<Value> out =
      ReferenceWindow(rows, Call(FuzzFn::kSum, FuzzFrame{}));
  // Cumulative by pos: pos1=10, pos2=30, pos3=60 — aligned to input.
  EXPECT_EQ(out[0].Compare(Value::Int(60)), 0);
  EXPECT_EQ(out[1].Compare(Value::Int(10)), 0);
  EXPECT_EQ(out[2].Compare(Value::Int(30)), 0);
}

TEST(ReferenceWindowTest, NullSemantics) {
  std::vector<Row> rows;
  rows.push_back(MakeRow(1, Value::Null()));
  rows.push_back(MakeRow(2, Value::Int(4)));
  rows.push_back(MakeRow(3, Value::Null()));

  // SUM skips NULLs; an all-NULL frame is NULL.
  const std::vector<Value> sum =
      ReferenceWindow(rows, Call(FuzzFn::kSum, Sliding(0, 1)));
  EXPECT_EQ(sum[0].Compare(Value::Int(4)), 0);  // frame {1,2}
  EXPECT_EQ(sum[1].Compare(Value::Int(4)), 0);  // frame {2,3}
  EXPECT_TRUE(sum[2].is_null());                // frame {3}

  // COUNT(val) counts non-NULL; COUNT(*) counts rows.
  const std::vector<Value> count =
      ReferenceWindow(rows, Call(FuzzFn::kCount, FuzzFrame{}));
  EXPECT_EQ(count[2].Compare(Value::Int(1)), 0);
  const std::vector<Value> count_star =
      ReferenceWindow(rows, Call(FuzzFn::kCountStar, FuzzFrame{}));
  EXPECT_EQ(count_star[2].Compare(Value::Int(3)), 0);
}

TEST(ReferenceWindowTest, MinMaxGolden) {
  const std::vector<Row> rows = IntRows({4, -1, 9, 2});
  const std::vector<Value> mins =
      ReferenceWindow(rows, Call(FuzzFn::kMin, Sliding(1, 1)));
  const std::vector<Value> maxs =
      ReferenceWindow(rows, Call(FuzzFn::kMax, Sliding(1, 1)));
  const std::vector<int64_t> expected_min = {-1, -1, -1, 2};
  const std::vector<int64_t> expected_max = {4, 9, 9, 9};
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(mins[i].Compare(Value::Int(expected_min[i])), 0) << i;
    EXPECT_EQ(maxs[i].Compare(Value::Int(expected_max[i])), 0) << i;
  }
}

TEST(ReferenceWindowTest, AvgGolden) {
  const std::vector<Row> rows = IntRows({1, 2, 3, 4});
  const std::vector<Value> out =
      ReferenceWindow(rows, Call(FuzzFn::kAvg, Sliding(1, 0)));
  EXPECT_EQ(out[0].Compare(Value::Double(1.0)), 0);
  EXPECT_EQ(out[1].Compare(Value::Double(1.5)), 0);
  EXPECT_EQ(out[2].Compare(Value::Double(2.5)), 0);
  EXPECT_EQ(out[3].Compare(Value::Double(3.5)), 0);
}

// RANK is gapped on ties; ROW_NUMBER never is.
TEST(ReferenceWindowTest, RankingWithTies) {
  std::vector<Row> rows;
  rows.push_back(MakeRow(1, Value::Int(10)));
  rows.push_back(MakeRow(2, Value::Int(10)));
  rows.push_back(MakeRow(3, Value::Int(5)));

  RefWindowCall rank = Call(FuzzFn::kRank, FuzzFrame{});
  rank.order_col = 1;  // ORDER BY val
  const std::vector<Value> ranks = ReferenceWindow(rows, rank);
  EXPECT_EQ(ranks[0].Compare(Value::Int(2)), 0);
  EXPECT_EQ(ranks[1].Compare(Value::Int(2)), 0);
  EXPECT_EQ(ranks[2].Compare(Value::Int(1)), 0);

  RefWindowCall rn = Call(FuzzFn::kRowNumber, FuzzFrame{});
  rn.order_col = 1;
  const std::vector<Value> numbers = ReferenceWindow(rows, rn);
  EXPECT_EQ(numbers[0].Compare(Value::Int(2)), 0);  // stable: input order
  EXPECT_EQ(numbers[1].Compare(Value::Int(3)), 0);
  EXPECT_EQ(numbers[2].Compare(Value::Int(1)), 0);

  rn.order_desc = true;
  const std::vector<Value> desc = ReferenceWindow(rows, rn);
  EXPECT_EQ(desc[0].Compare(Value::Int(1)), 0);
  EXPECT_EQ(desc[1].Compare(Value::Int(2)), 0);
  EXPECT_EQ(desc[2].Compare(Value::Int(3)), 0);
}

TEST(ReferenceWindowTest, PartitionsAreIndependent) {
  std::vector<Row> rows;
  for (int64_t g : {0, 1}) {
    for (int64_t p = 1; p <= 3; ++p) {
      Row row;
      row.Append(Value::Int(g));
      row.Append(Value::Int(p));
      row.Append(Value::Int(p * (g + 1)));
      rows.push_back(std::move(row));
    }
  }
  RefWindowCall call;
  call.fn = FuzzFn::kSum;
  call.partition_col = 0;
  call.order_col = 1;
  call.arg_col = 2;
  const std::vector<Value> out = ReferenceWindow(rows, call);
  // grp 0: 1,3,6; grp 1: 2,6,12.
  const std::vector<int64_t> expected = {1, 3, 6, 2, 6, 12};
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(out[i].Compare(Value::Int(expected[i])), 0) << i;
  }
}

// Agreement with the engine's window operator on the canonical seq
// table every tests/exec expectation is built on.
TEST(ReferenceWindowTest, MatchesEngineOnSeqTable) {
  Database db;
  CreateSeqTable(db, 25);
  const std::vector<std::pair<FuzzFn, FuzzFrame>> cases = {
      {FuzzFn::kSum, FuzzFrame{}},          {FuzzFn::kSum, Sliding(1, 1)},
      {FuzzFn::kAvg, Sliding(2, 0)},        {FuzzFn::kMin, Sliding(3, 2)},
      {FuzzFn::kMax, FuzzFrame{}},          {FuzzFn::kCount, Sliding(0, 4)},
  };
  for (const auto& [fn, frame] : cases) {
    const std::string fn_sql = FuzzFnSql(fn);
    const ResultSet rs = MustExecute(
        db, "SELECT pos, val, " + fn_sql + "(val) OVER (ORDER BY pos " +
                frame.ToSql() + ") FROM seq ORDER BY pos");

    RefWindowCall call;
    call.fn = fn;
    call.frame = frame;
    call.order_col = 0;
    call.arg_col = 1;
    std::vector<Row> base;
    for (const Row& row : rs.rows()) {
      base.push_back(Row({row[0], row[1]}));
    }
    const std::vector<Value> expected = ReferenceWindow(base, call);
    ASSERT_EQ(expected.size(), rs.NumRows());
    for (size_t i = 0; i < rs.NumRows(); ++i) {
      EXPECT_EQ(rs.at(i, 2).Compare(expected[i]), 0)
          << fn_sql << " " << frame.ToSql() << " row " << i;
    }
  }
}

}  // namespace
}  // namespace fuzzing
}  // namespace rfv
