// Reporting sequences and their reductions (paper §6), end to end:
//
//  1. a partitioned sequence view over (region, month) — a *complete
//     reporting function* (header/trailer per partition),
//  2. partitioning reduction: derive the per-region view from it —
//     computed from the view's own content, never from base data,
//  3. a partitioned window query answered from the partitioned view,
//  4. ordering reduction: collapse a (month, day)-ordered cumulative
//     view to a monthly cumulative view via the position function.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "db/database.h"
#include "view/reduction.h"

namespace {

rfv::ResultSet MustExecute(rfv::Database& db, const std::string& sql) {
  rfv::Result<rfv::ResultSet> result = db.Execute(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "SQL failed: %s\n  %s\n",
                 result.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

void Must(const rfv::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  rfv::Database db;

  // Sales measured per (region, month) with dense in-month positions.
  MustExecute(db,
              "CREATE TABLE sales (region INTEGER, mon INTEGER, pos "
              "INTEGER, amount DOUBLE)");
  std::string insert = "INSERT INTO sales VALUES ";
  bool first = true;
  for (int region = 1; region <= 2; ++region) {
    for (int mon = 1; mon <= 3; ++mon) {
      for (int pos = 1; pos <= 5; ++pos) {
        if (!first) insert += ", ";
        first = false;
        const int amount = region * 1000 + mon * 100 + pos * 7;
        insert += "(" + std::to_string(region) + ", " + std::to_string(mon) +
                  ", " + std::to_string(pos) + ", " +
                  std::to_string(amount) + ")";
      }
    }
  }
  MustExecute(db, insert);

  // 1. Partitioned sequence view: 3-row moving sum per (region, month).
  rfv::SequenceViewDef def;
  def.view_name = "per_month";
  def.base_table = "sales";
  def.value_column = "amount";
  def.order_column = "pos";
  def.partition_columns = {"region", "mon"};
  def.fn = rfv::SeqAggFn::kSum;
  def.window = rfv::WindowSpec::SlidingUnchecked(1, 1);
  Must(db.view_manager()->CreateSequenceView(def).status(),
       "CreateSequenceView");
  std::printf("per_month view: %zu rows (header/trailer per partition)\n",
              MustExecute(db, "SELECT COUNT(*) FROM per_month")
                  .at(0, 0)
                  .AsInt() > 0
                  ? static_cast<size_t>(
                        MustExecute(db, "SELECT COUNT(*) FROM per_month")
                            .at(0, 0)
                            .AsInt())
                  : 0);

  // 2. Partitioning reduction (paper §6.2): drop `mon`, merging each
  //    region's months in order — derived from per_month's content.
  Must(rfv::ReduceViewPartitioning(db.view_manager(), "per_month",
                                   "per_region", /*drop=*/1)
           .status(),
       "ReduceViewPartitioning");
  std::printf("per_region view derived from per_month: %s\n",
              db.view_manager()->FindView("per_region")->ToString().c_str());
  std::printf("%s\n",
              MustExecute(db, "SELECT region, pos, val FROM per_region "
                              "WHERE pos BETWEEN 4 AND 7 ORDER BY region, "
                              "pos")
                  .ToString()
                  .c_str());

  // 3. A partitioned reporting-function query is answered from the
  //    partitioned view (direct hit).
  rfv::ResultSet hit = MustExecute(
      db,
      "SELECT region, mon, pos, SUM(amount) OVER (PARTITION BY region, "
      "mon ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM "
      "sales ORDER BY region, mon, pos");
  std::printf("partitioned query rewritten via: %s\n\n",
              hit.rewrite_method().c_str());

  // 4. Ordering reduction (paper §6.1): a (month, day) cumulative view
  //    collapsed to months. Days per month = 5 → block size 5.
  MustExecute(db, "CREATE TABLE flat (pos INTEGER, val DOUBLE)");
  insert = "INSERT INTO flat VALUES ";
  for (int i = 1; i <= 15; ++i) {
    if (i > 1) insert += ", ";
    insert += "(" + std::to_string(i) + ", " + std::to_string(i) + ")";
  }
  MustExecute(db, insert);
  MustExecute(db,
              "CREATE MATERIALIZED VIEW fine_cum AS SELECT pos, SUM(val) "
              "OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) FROM flat");
  Must(rfv::ReduceViewOrdering(db.view_manager(), "fine_cum", "monthly_cum",
                               /*block=*/5)
           .status(),
       "ReduceViewOrdering");
  std::printf("monthly cumulative (from daily view, paper §6.1):\n%s",
              MustExecute(db, "SELECT pos, val FROM monthly_cum ORDER BY "
                              "pos")
                  .ToString()
                  .c_str());
  return 0;
}
