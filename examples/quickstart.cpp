// Quickstart: reporting functions, materialized sequence views, and
// view-based query answering in ~60 lines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <cstdlib>
#include <string>

#include "db/database.h"

namespace {

rfv::ResultSet MustExecute(rfv::Database& db, const std::string& sql) {
  rfv::Result<rfv::ResultSet> result = db.Execute(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "SQL failed: %s\n  %s\n",
                 result.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  rfv::Database db;

  // 1. A sequence table: dense positions 1..n plus a measure.
  MustExecute(db, "CREATE TABLE seq (pos INTEGER PRIMARY KEY, val DOUBLE)");
  std::string insert = "INSERT INTO seq VALUES ";
  for (int i = 1; i <= 12; ++i) {
    if (i > 1) insert += ", ";
    insert += "(" + std::to_string(i) + ", " + std::to_string((i * 7) % 10) +
              ")";
  }
  MustExecute(db, insert);

  // 2. A reporting function: centered 3-row moving sum.
  std::printf("-- 3-row moving sum (native reporting function) --\n%s\n",
              MustExecute(db,
                          "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS "
                          "BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS mv3 "
                          "FROM seq ORDER BY pos")
                  .ToString()
                  .c_str());

  // 3. Materialize that window as a *complete* sequence view (the
  //    content table carries header/trailer rows, which is what makes
  //    other windows derivable from it).
  MustExecute(db,
              "CREATE MATERIALIZED VIEW mv3_view AS SELECT pos, SUM(val) "
              "OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) "
              "FROM seq");

  // 4. Ask for a *different* window: the rewriter answers it from the
  //    view via the paper's MaxOA/MinOA derivation patterns instead of
  //    touching the base data.
  rfv::ResultSet derived = MustExecute(
      db,
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING "
      "AND 1 FOLLOWING) AS mv4 FROM seq ORDER BY pos");
  std::printf("-- 4-row moving sum, derived from the materialized view --\n");
  std::printf("rewritten with: %s\n", derived.rewrite_method().c_str());
  std::printf("rewritten SQL:  %s\n\n", derived.rewritten_sql().c_str());
  std::printf("%s\n", derived.ToString().c_str());

  return 0;
}
