// The paper's introduction workload (§1): credit-card transactions with
// a location dimension, analyzed with four reporting functions —
//   * overall cumulative sum,
//   * cumulative sum restarted per month (PARTITION BY),
//   * centered 3-day moving average per (month, region),
//   * prospective 7-day moving average.
//
// The paper's c_transactions / l_locations tables are proprietary; this
// example generates a synthetic equivalent with the same schema and runs
// the introduction's query verbatim (dates stored as YYYYMMDD integers,
// month() spelled MONTH()).

#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>

#include "db/database.h"

namespace {

rfv::ResultSet MustExecute(rfv::Database& db, const std::string& sql) {
  rfv::Result<rfv::ResultSet> result = db.Execute(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "SQL failed: %s\n  %s\n",
                 result.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  rfv::Database db;

  MustExecute(db,
              "CREATE TABLE l_locations (l_locid INTEGER PRIMARY KEY, "
              "l_city VARCHAR, l_region VARCHAR)");
  MustExecute(db,
              "INSERT INTO l_locations VALUES "
              "(1, 'Erlangen', 'Franconia'), "
              "(2, 'Nuremberg', 'Franconia'), "
              "(3, 'Munich', 'Upper Bavaria'), "
              "(4, 'San Jose', 'California')");

  MustExecute(db,
              "CREATE TABLE c_transactions (c_custid INTEGER, c_date "
              "INTEGER, c_locid INTEGER, c_transaction DOUBLE)");

  // Synthetic daily transactions for customer 4711 across Q1.
  std::mt19937 rng(4711);
  std::uniform_real_distribution<double> amount(5.0, 250.0);
  std::uniform_int_distribution<int> loc(1, 4);
  std::string insert = "INSERT INTO c_transactions VALUES ";
  bool first = true;
  for (int month = 1; month <= 3; ++month) {
    for (int day = 1; day <= 28; ++day) {
      const int date = 20010000 + month * 100 + day;
      if (!first) insert += ", ";
      first = false;
      const double amt = static_cast<int>(amount(rng) * 100) / 100.0;
      insert += "(4711, " + std::to_string(date) + ", " +
                std::to_string(loc(rng)) + ", " + std::to_string(amt) + ")";
    }
  }
  MustExecute(db, insert);
  // A second customer that the WHERE clause must filter out.
  MustExecute(db,
              "INSERT INTO c_transactions VALUES (9999, 20010115, 1, "
              "10000.0)");

  // The paper's introduction query, §1.
  const std::string query =
      "SELECT c_date, c_transaction, "
      "SUM(c_transaction) OVER "
      "  (ORDER BY c_date ROWS UNBOUNDED PRECEDING) AS cum_sum_total, "
      "SUM(c_transaction) OVER "
      "  (PARTITION BY MONTH(c_date) ORDER BY c_date "
      "   ROWS UNBOUNDED PRECEDING) AS cum_sum_month, "
      "AVG(c_transaction) OVER "
      "  (PARTITION BY MONTH(c_date), l_region ORDER BY c_date "
      "   ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS c_3mvg_avg, "
      "AVG(c_transaction) OVER "
      "  (ORDER BY c_date ROWS BETWEEN CURRENT ROW AND 6 FOLLOWING) "
      "   AS c_7mvg_avg "
      "FROM c_transactions, l_locations "
      "WHERE c_locid = l_locid AND c_custid = 4711 "
      "ORDER BY c_date";

  rfv::ResultSet rs = MustExecute(db, query);
  std::printf("-- paper introduction query (first 15 of %zu rows) --\n%s\n",
              rs.NumRows(), rs.ToString(15).c_str());

  // Month-end check: cum_sum_month restarts at month boundaries while
  // cum_sum_total keeps growing.
  std::printf(
      "-- month totals (last cum_sum_month per month == SUM GROUP BY) --\n%s",
      MustExecute(db,
                  "SELECT MONTH(c_date) AS month, SUM(c_transaction) AS "
                  "total FROM c_transactions WHERE c_custid = 4711 GROUP "
                  "BY MONTH(c_date) ORDER BY month")
          .ToString()
          .c_str());
  return 0;
}
