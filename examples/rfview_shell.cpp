// Interactive SQL shell over the rfview engine.
//
//   $ ./build/examples/rfview_shell
//   rfview> CREATE TABLE seq (pos INTEGER PRIMARY KEY, val DOUBLE);
//   rfview> INSERT INTO seq VALUES (1, 10), (2, 20), (3, 30);
//   rfview> SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1
//           PRECEDING AND 1 FOLLOWING) FROM seq ORDER BY pos;
//   rfview> EXPLAIN SELECT ...;
//   rfview> \rewrite off        -- toggle view rewriting
//   rfview> \variant union      -- Table 2 pattern variant
//   rfview> \force minoa        -- force MinOA / maxoa / auto
//   rfview> \views              -- registered sequence views
//   rfview> \quit
//
// Statements may span lines; a trailing ';' executes.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/str_util.h"
#include "common/trace.h"
#include "db/csv.h"
#include "db/database.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace {

void PrintHelp() {
  std::printf(
      "meta commands:\n"
      "  \\help            this text\n"
      "  \\views           list registered sequence views\n"
      "  \\rewrite on|off  answer window queries from materialized views\n"
      "  \\variant disjunctive|union   pattern variant (paper Table 2)\n"
      "  \\force auto|maxoa|minoa      derivation algorithm choice\n"
      "  \\import <table> <file.csv>   load CSV into an existing table\n"
      "  \\export <table> <file.csv>   write a table as CSV\n"
      "  \\stats [table]   table statistics (ANALYZE refreshes them)\n"
      "  \\cost on|off     cost-based derivation choice (off = paper's\n"
      "                   static preference order)\n"
      "  \\metrics [save <file>]       process metrics (Prometheus text)\n"
      "  \\trace on|off    record query-lifecycle traces\n"
      "  \\trace show      spans of the most recent traced query\n"
      "  \\trace export <file>         last trace as Chrome trace JSON\n"
      "  \\trace ring <n>  retired-trace ring capacity\n"
      "  \\workload [export <file>]    captured query events as JSONL\n"
      "                   (also queryable: SELECT ... FROM\n"
      "                   rfv_system.queries / operators / metrics /\n"
      "                   views / table_stats / trace_spans)\n"
      "  \\log debug|info|warn|error   stderr log threshold\n"
      "  \\quit            exit\n"
      "any other input: SQL, terminated by ';'\n"
      "  (.metrics is accepted as an alias for \\metrics)\n");
}

bool WriteFileOrComplain(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::printf("error: cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << body;
  return true;
}

bool HandleMeta(rfv::Database& db, const std::string& line) {
  const std::string lower = rfv::ToLower(line);
  if (lower == "\\help") {
    PrintHelp();
  } else if (lower == "\\views") {
    if (db.view_manager()->views().empty()) {
      std::printf("(no sequence views)\n");
    }
    for (const auto& view : db.view_manager()->views()) {
      std::printf("%s\n", view->ToString().c_str());
    }
  } else if (lower == "\\rewrite on") {
    db.options().enable_view_rewrite = true;
  } else if (lower == "\\rewrite off") {
    db.options().enable_view_rewrite = false;
  } else if (lower == "\\variant union") {
    db.options().rewrite_variant = rfv::RewriteVariant::kUnion;
  } else if (lower == "\\variant disjunctive") {
    db.options().rewrite_variant = rfv::RewriteVariant::kDisjunctive;
  } else if (lower == "\\force maxoa") {
    db.options().force_method = rfv::DerivationMethod::kMaxoa;
  } else if (lower == "\\force minoa") {
    db.options().force_method = rfv::DerivationMethod::kMinoa;
  } else if (lower == "\\force auto") {
    db.options().force_method.reset();
  } else if (lower == "\\cost on") {
    db.options().use_cost_model = true;
  } else if (lower == "\\cost off") {
    db.options().use_cost_model = false;
  } else if (lower == "\\stats" || lower.rfind("\\stats ", 0) == 0) {
    std::vector<std::string> names;
    if (lower == "\\stats") {
      names = db.catalog()->TableNames();
    } else {
      names.push_back(
          rfv::ToLower(line.substr(std::string("\\stats ").size())));
    }
    if (names.empty()) std::printf("(no tables)\n");
    for (const std::string& name : names) {
      rfv::Result<rfv::Table*> table = db.catalog()->GetTable(name);
      if (!table.ok()) {
        std::printf("error: %s\n", table.status().ToString().c_str());
        continue;
      }
      std::printf("%s:\n%s", name.c_str(),
                  (*table)->stats().ToString((*table)->schema()).c_str());
    }
  } else if (lower == "\\metrics" || lower == ".metrics") {
    std::printf("%s", rfv::Database::MetricsText().c_str());
  } else if (lower.rfind("\\metrics save ", 0) == 0) {
    const std::string path = line.substr(std::string("\\metrics save ").size());
    if (WriteFileOrComplain(path, rfv::Database::MetricsText())) {
      std::printf("metrics written to %s\n", path.c_str());
    }
  } else if (lower == "\\trace on") {
    db.options().enable_tracing = true;
  } else if (lower == "\\trace off") {
    db.options().enable_tracing = false;
  } else if (lower == "\\trace show") {
    const std::shared_ptr<rfv::QueryTrace> trace =
        rfv::Tracer::Global().Latest();
    if (trace == nullptr) {
      std::printf("(no trace recorded — \\trace on, then run a query)\n");
    } else {
      std::printf("%s", trace->ToText().c_str());
    }
  } else if (lower.rfind("\\trace export ", 0) == 0) {
    const std::string path = line.substr(std::string("\\trace export ").size());
    const std::shared_ptr<rfv::QueryTrace> trace =
        rfv::Tracer::Global().Latest();
    if (trace == nullptr) {
      std::printf("(no trace recorded — \\trace on, then run a query)\n");
    } else if (WriteFileOrComplain(path, trace->ToChromeJson())) {
      std::printf("trace %lld written to %s (load in chrome://tracing)\n",
                  static_cast<long long>(trace->id()), path.c_str());
    }
  } else if (lower.rfind("\\trace ring", 0) == 0) {
    std::string arg = line.substr(std::string("\\trace ring").size());
    const size_t first = arg.find_first_not_of(" \t");
    arg = first == std::string::npos ? "" : arg.substr(first);
    const size_t last = arg.find_last_not_of(" \t");
    if (last != std::string::npos) arg = arg.substr(0, last + 1);
    if (arg.empty()) {
      std::printf("trace ring capacity: %zu\n",
                  rfv::Tracer::Global().ring_capacity());
    } else {
      char* end = nullptr;
      const long n = std::strtol(arg.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || n < 0) {
        std::printf("usage: \\trace ring <n>\n");
      } else {
        rfv::Tracer::Global().SetRingCapacity(static_cast<size_t>(n));
        std::printf("trace ring capacity: %zu\n",
                    rfv::Tracer::Global().ring_capacity());
      }
    }
  } else if (lower == "\\workload") {
    const std::string jsonl = db.WorkloadJsonl();
    if (jsonl.empty()) {
      std::printf("(no queries captured yet)\n");
    } else {
      std::printf("%s", jsonl.c_str());
    }
  } else if (lower.rfind("\\workload export ", 0) == 0) {
    const std::string path =
        line.substr(std::string("\\workload export ").size());
    const rfv::Status s = db.ExportWorkload(path);
    if (!s.ok()) {
      std::printf("error: %s\n", s.ToString().c_str());
    } else {
      std::printf("%zu events written to %s\n", db.query_log()->size(),
                  path.c_str());
    }
  } else if (lower == "\\log debug") {
    rfv::SetLogLevel(rfv::LogLevel::kDebug);
  } else if (lower == "\\log info") {
    rfv::SetLogLevel(rfv::LogLevel::kInfo);
  } else if (lower == "\\log warn") {
    rfv::SetLogLevel(rfv::LogLevel::kWarn);
  } else if (lower == "\\log error") {
    rfv::SetLogLevel(rfv::LogLevel::kError);
  } else if (lower.rfind("\\import ", 0) == 0 ||
             lower.rfind("\\export ", 0) == 0) {
    std::istringstream parts(line.substr(1));
    std::string verb;
    std::string table;
    std::string file;
    parts >> verb >> table >> file;
    if (table.empty() || file.empty()) {
      std::printf("usage: \\%s <table> <file.csv>\n", verb.c_str());
      return true;
    }
    const rfv::Result<size_t> n =
        rfv::ToLower(verb) == "import"
            ? rfv::ImportCsv(db.catalog(), table, file)
            : rfv::ExportCsv(db.catalog(), table, file);
    if (!n.ok()) {
      std::printf("error: %s\n", n.status().ToString().c_str());
    } else {
      std::printf("(%zu rows)\n", *n);
    }
  } else if (lower == "\\quit" || lower == "\\q") {
    return false;
  } else {
    std::printf("unknown meta command (try \\help)\n");
  }
  return true;
}

}  // namespace

int main() {
  rfv::Database db;
  std::printf("rfview shell — reporting function views (ICDE 2002)\n"
              "type \\help for meta commands, SQL terminated by ';'\n");
  std::string buffer;
  std::string line;
  while (true) {
    std::printf(buffer.empty() ? "rfview> " : "   ...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (buffer.empty() && !line.empty() &&
        (line[0] == '\\' || line.rfind(".metrics", 0) == 0)) {
      if (!HandleMeta(db, line)) break;
      continue;
    }
    buffer += line + "\n";
    const size_t semi = buffer.find(';');
    if (semi == std::string::npos) continue;
    const std::string sql = buffer.substr(0, semi);
    buffer.clear();
    if (sql.find_first_not_of(" \t\n") == std::string::npos) continue;

    rfv::Result<rfv::ResultSet> result = db.Execute(sql);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    if (result->is_query()) {
      std::printf("%s", result->ToString(50).c_str());
      if (!result->rewrite_method().empty()) {
        std::printf("-- answered via %s rewrite\n",
                    result->rewrite_method().c_str());
      }
    } else {
      std::printf("%s\n", result->ToString().c_str());
    }
  }
  return 0;
}
