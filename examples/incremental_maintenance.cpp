// Incremental maintenance of materialized sequence data (paper §2.3):
// update / insert / delete against the raw data touch only the w = l+h+1
// sequence positions whose window overlaps the change, instead of
// recomputing the whole sequence. Shown twice: on the in-memory sequence
// API and on a table-backed materialized view.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "db/database.h"
#include "sequence/compute.h"
#include "sequence/maintain.h"
#include "view/maintenance.h"

namespace {

void Must(const rfv::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  // ---- in-memory sequence maintenance --------------------------------
  constexpr int kN = 200000;
  const rfv::WindowSpec spec = rfv::WindowSpec::SlidingUnchecked(3, 2);
  std::vector<rfv::SeqValue> x(kN);
  for (int i = 0; i < kN; ++i) x[i] = (i * 13 + 7) % 97;
  rfv::Sequence seq =
      rfv::BuildCompleteSequence(x, spec, rfv::SeqAggFn::kSum);

  const auto t0 = std::chrono::steady_clock::now();
  rfv::Result<size_t> touched =
      rfv::MaintainUpdate(&x, &seq, kN / 2, 1234.0);
  const auto t1 = std::chrono::steady_clock::now();
  Must(touched.status(), "MaintainUpdate");
  std::printf("update @%d: touched %zu of %d sequence positions, %.1f us\n",
              kN / 2, *touched, kN,
              std::chrono::duration<double, std::micro>(t1 - t0).count());

  const auto t2 = std::chrono::steady_clock::now();
  rfv::Sequence recomputed =
      rfv::BuildCompleteSequence(x, spec, rfv::SeqAggFn::kSum);
  const auto t3 = std::chrono::steady_clock::now();
  std::printf("full recompute for comparison:        %10.1f us\n",
              std::chrono::duration<double, std::micro>(t3 - t2).count());
  std::printf("incremental equals recompute: %s\n\n",
              *seq.mutable_values() == *recomputed.mutable_values()
                  ? "yes"
                  : "NO");

  Must(rfv::MaintainInsert(&x, &seq, 17, 55.0).status(), "MaintainInsert");
  Must(rfv::MaintainDelete(&x, &seq, 99).status(), "MaintainDelete");
  recomputed = rfv::BuildCompleteSequence(x, spec, rfv::SeqAggFn::kSum);
  std::printf("after insert@17 + delete@99, incremental equals recompute: "
              "%s\n\n",
              *seq.mutable_values() == *recomputed.mutable_values()
                  ? "yes"
                  : "NO");

  // ---- table-backed view maintenance ---------------------------------
  rfv::Database db;
  Must(db.Execute("CREATE TABLE seq (pos INTEGER PRIMARY KEY, val DOUBLE)")
           .status(),
       "CREATE TABLE");
  std::string insert = "INSERT INTO seq VALUES ";
  for (int i = 1; i <= 1000; ++i) {
    if (i > 1) insert += ", ";
    insert += "(" + std::to_string(i) + ", " + std::to_string(i % 10) + ")";
  }
  Must(db.Execute(insert).status(), "INSERT");
  Must(db.Execute("CREATE MATERIALIZED VIEW v32 AS SELECT pos, SUM(val) "
                  "OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 2 "
                  "FOLLOWING) FROM seq")
           .status(),
       "CREATE VIEW");

  rfv::Result<size_t> rows = rfv::PropagateBaseUpdate(
      db.view_manager(), "seq", 500, 777.0);
  Must(rows.status(), "PropagateBaseUpdate");
  std::printf("view rows rewritten for one base update: %zu (w = l+h+1 = 6)\n",
              *rows);

  // The view now answers queries with the new value.
  rfv::Result<rfv::ResultSet> rs = db.Execute(
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING "
      "AND 2 FOLLOWING) AS v FROM seq ORDER BY pos");
  Must(rs.status(), "query after maintenance");
  db.options().enable_view_rewrite = false;
  rfv::Result<rfv::ResultSet> direct = db.Execute(
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING "
      "AND 2 FOLLOWING) AS v FROM seq ORDER BY pos");
  Must(direct.status(), "direct query");
  bool same = rs->NumRows() == direct->NumRows();
  for (size_t i = 0; same && i < rs->NumRows(); ++i) {
    same = rs->at(i, 1) == direct->at(i, 1);
  }
  std::printf("maintained view answers (%s) match direct evaluation: %s\n",
              rs->rewrite_method().c_str(), same ? "yes" : "NO");
  return 0;
}
