// Deriving reporting-function queries from materialized sequence views
// (the paper's core, §3–§5): one base sequence, one materialized (2,1)
// SUM view, and every derivation strategy answering a (3,1) query —
// MaxOA vs. MinOA, disjunctive vs. UNION variant — with timings and a
// correctness check against direct evaluation.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "db/database.h"

namespace {

rfv::ResultSet MustExecute(rfv::Database& db, const std::string& sql) {
  rfv::Result<rfv::ResultSet> result = db.Execute(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "SQL failed: %s\n  %s\n",
                 result.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

bool SameValues(const rfv::ResultSet& a, const rfv::ResultSet& b) {
  if (a.NumRows() != b.NumRows()) return false;
  for (size_t i = 0; i < a.NumRows(); ++i) {
    if (a.at(i, 0) != b.at(i, 0) || a.at(i, 1) != b.at(i, 1)) return false;
  }
  return true;
}

}  // namespace

int main() {
  constexpr int kRows = 1000;
  rfv::Database db;
  MustExecute(db, "CREATE TABLE seq (pos INTEGER PRIMARY KEY, val DOUBLE)");
  std::string insert = "INSERT INTO seq VALUES ";
  for (int i = 1; i <= kRows; ++i) {
    if (i > 1) insert += ", ";
    insert += "(" + std::to_string(i) + ", " +
              std::to_string((i * 37 + 11) % 101) + ")";
  }
  MustExecute(db, insert);

  // The paper's §3.2 example pair: view x̃ = (2,1), query ỹ = (3,1).
  MustExecute(db,
              "CREATE MATERIALIZED VIEW matseq AS SELECT pos, SUM(val) OVER "
              "(ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) "
              "FROM seq");
  const std::string query =
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING "
      "AND 1 FOLLOWING) AS y FROM seq ORDER BY pos";

  db.options().enable_view_rewrite = false;
  const auto t0 = std::chrono::steady_clock::now();
  rfv::ResultSet reference = MustExecute(db, query);
  const auto t1 = std::chrono::steady_clock::now();
  db.options().enable_view_rewrite = true;
  std::printf("%-32s %8.2f ms   (n=%d)\n", "direct (native window op)",
              std::chrono::duration<double, std::milli>(t1 - t0).count(),
              kRows);

  struct Config {
    const char* label;
    rfv::DerivationMethod method;
    rfv::RewriteVariant variant;
  };
  const Config configs[] = {
      {"MaxOA, disjunctive predicate", rfv::DerivationMethod::kMaxoa,
       rfv::RewriteVariant::kDisjunctive},
      {"MaxOA, union of simple preds", rfv::DerivationMethod::kMaxoa,
       rfv::RewriteVariant::kUnion},
      {"MinOA, disjunctive predicate", rfv::DerivationMethod::kMinoa,
       rfv::RewriteVariant::kDisjunctive},
      {"MinOA, union of simple preds", rfv::DerivationMethod::kMinoa,
       rfv::RewriteVariant::kUnion},
  };
  for (const Config& config : configs) {
    db.options().force_method = config.method;
    db.options().rewrite_variant = config.variant;
    const auto s0 = std::chrono::steady_clock::now();
    rfv::ResultSet derived = MustExecute(db, query);
    const auto s1 = std::chrono::steady_clock::now();
    std::printf("%-32s %8.2f ms   rewrite=%s  correct=%s\n", config.label,
                std::chrono::duration<double, std::milli>(s1 - s0).count(),
                derived.rewrite_method().c_str(),
                SameValues(derived, reference) ? "yes" : "NO");
  }
  db.options().force_method.reset();

  // Show one generated pattern in full (paper Fig. 13 shape).
  db.options().rewrite_variant = rfv::RewriteVariant::kDisjunctive;
  db.options().force_method = rfv::DerivationMethod::kMinoa;
  rfv::ResultSet sample = MustExecute(db, query);
  std::printf("\n-- generated MinOA pattern (paper Fig. 13) --\n%s\n",
              sample.rewritten_sql().c_str());
  return 0;
}
