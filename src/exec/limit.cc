#include "exec/operators.h"

namespace rfv {

Status LimitOp::OpenImpl() {
  produced_ = 0;
  return child_->Open();
}

Status LimitOp::NextImpl(Row* row, bool* eof) {
  if (produced_ >= limit_) {
    *eof = true;
    return Status::OK();
  }
  bool child_eof = false;
  RFV_RETURN_IF_ERROR(child_->Next(row, &child_eof));
  if (child_eof) {
    *eof = true;
    return Status::OK();
  }
  ++produced_;
  *eof = false;
  return Status::OK();
}

Status LimitOp::NextBatchImpl(RowBatch* batch, bool* eof) {
  if (produced_ >= limit_) {
    *eof = true;
    return Status::OK();
  }
  bool child_eof = false;
  RFV_RETURN_IF_ERROR(child_->NextBatch(batch, &child_eof));
  const int64_t remaining = limit_ - produced_;
  if (static_cast<int64_t>(batch->size()) > remaining) {
    batch->Truncate(static_cast<size_t>(remaining));
  }
  produced_ += static_cast<int64_t>(batch->size());
  *eof = child_eof || produced_ >= limit_;
  return Status::OK();
}

Status LimitOp::NextVectorImpl(VectorProjection** out, bool* eof) {
  if (produced_ >= limit_) {
    *eof = true;
    return Status::OK();  // *out stays null (shell preset)
  }
  VectorProjection* vp = nullptr;
  bool child_eof = false;
  RFV_RETURN_IF_ERROR(child_->NextVector(&vp, &child_eof));
  if (vp != nullptr) {
    const int64_t remaining = limit_ - produced_;
    if (static_cast<int64_t>(vp->NumSelected()) > remaining) {
      vp->sel().Truncate(static_cast<size_t>(remaining));
    }
    produced_ += static_cast<int64_t>(vp->NumSelected());
  }
  *out = vp;
  *eof = child_eof || produced_ >= limit_;
  return Status::OK();
}

}  // namespace rfv
