#include "exec/operators.h"

namespace rfv {

Status LimitOp::OpenImpl() {
  produced_ = 0;
  return child_->Open();
}

Status LimitOp::NextImpl(Row* row, bool* eof) {
  if (produced_ >= limit_) {
    *eof = true;
    return Status::OK();
  }
  bool child_eof = false;
  RFV_RETURN_IF_ERROR(child_->Next(row, &child_eof));
  if (child_eof) {
    *eof = true;
    return Status::OK();
  }
  ++produced_;
  *eof = false;
  return Status::OK();
}

}  // namespace rfv
