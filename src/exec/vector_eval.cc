#include "exec/vector_eval.h"

#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/logging.h"

namespace rfv {

namespace {

/// Selections inside the evaluator are plain ascending index lists; the
/// SelectionVector wrapper is only unwrapped/rewrapped at the API edge.
using Sel = std::vector<uint32_t>;

/// out = a ∪ b. Inputs ascending; output ascending, deduplicated.
void SortedUnion(const Sel& a, const Sel& b, Sel* out) {
  out->clear();
  out->reserve(a.size() + b.size());
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) out->push_back(a[i++]);
    else if (b[j] < a[i]) out->push_back(b[j++]);
    else { out->push_back(a[i]); ++i; ++j; }
  }
  while (i < a.size()) out->push_back(a[i++]);
  while (j < b.size()) out->push_back(b[j++]);
}

/// out = a ∩ b. Inputs ascending.
void SortedIntersect(const Sel& a, const Sel& b, Sel* out) {
  out->clear();
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) ++i;
    else if (b[j] < a[i]) ++j;
    else { out->push_back(a[i]); ++i; ++j; }
  }
}

/// out = a \ b. Inputs ascending.
void SortedDiff(const Sel& a, const Sel& b, Sel* out) {
  out->clear();
  out->reserve(a.size());
  size_t j = 0;
  for (const uint32_t v : a) {
    while (j < b.size() && b[j] < v) ++j;
    if (j < b.size() && b[j] == v) continue;
    out->push_back(v);
  }
}

bool IsNumericTag(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble;
}

/// Element comparison mirroring Value::Compare: int64/int64 exact, other
/// numeric pairs via double, string/string lexicographic; anything else
/// (bool, mixed type ranks) boxes to Values. Callers have already
/// NULL-checked both sides.
int CompareElems(const Vector& a, const Vector& b, size_t i) {
  const DataType ta = a.tag(i);
  const DataType tb = b.tag(i);
  if (ta == DataType::kInt64 && tb == DataType::kInt64) {
    const int64_t x = a.i64(i);
    const int64_t y = b.i64(i);
    return x == y ? 0 : (x < y ? -1 : 1);
  }
  if (IsNumericTag(ta) && IsNumericTag(tb)) {
    const double x = a.ToDouble(i);
    const double y = b.ToDouble(i);
    if (x == y) return 0;
    return x < y ? -1 : 1;
  }
  if (ta == DataType::kString && tb == DataType::kString) {
    const int c = a.str(i).compare(b.str(i));
    return c == 0 ? 0 : (c < 0 ? -1 : 1);
  }
  return a.GetValue(i).Compare(b.GetValue(i));
}

Status EvalNode(const Expr& expr, const VectorProjection& proj, const Sel& sel,
                Vector* out);

/// Tri-state predicate evaluation: splits `sel` into the rows where
/// `expr` is TRUE (*t) and NULL (*n); the rest are FALSE. For AND/OR the
/// split recurses with Kleene short-circuit sub-selections so each child
/// is evaluated over exactly the rows the row-at-a-time evaluator would
/// touch: AND evaluates the rhs where the lhs is TRUE or NULL, OR
/// evaluates the rhs where the lhs is not TRUE.
Status Partition(const Expr& expr, const VectorProjection& proj,
                 const Sel& sel, Sel* t, Sel* n) {
  if (expr.kind == ExprKind::kBinary && (expr.binary_op == BinaryOp::kAnd ||
                                         expr.binary_op == BinaryOp::kOr)) {
    Sel lhs_true, lhs_null;
    RFV_RETURN_IF_ERROR(
        Partition(*expr.children[0], proj, sel, &lhs_true, &lhs_null));
    Sel rest;
    if (expr.binary_op == BinaryOp::kAnd) {
      SortedUnion(lhs_true, lhs_null, &rest);
    } else {
      SortedDiff(sel, lhs_true, &rest);
    }
    Sel rhs_true, rhs_null;
    if (!rest.empty()) {
      RFV_RETURN_IF_ERROR(
          Partition(*expr.children[1], proj, rest, &rhs_true, &rhs_null));
    }
    if (expr.binary_op == BinaryOp::kAnd) {
      // TRUE iff both TRUE; NULL iff the rhs was TRUE or NULL (i.e. the
      // lhs did not decide FALSE) but the pair is not TRUE/TRUE.
      SortedIntersect(lhs_true, rhs_true, t);
      Sel not_false;
      SortedUnion(rhs_true, rhs_null, &not_false);
      SortedDiff(not_false, *t, n);
    } else {
      // TRUE iff either TRUE; NULL iff some side is NULL and the rhs did
      // not decide TRUE.
      SortedUnion(lhs_true, rhs_true, t);
      Sel nulls;
      SortedUnion(lhs_null, rhs_null, &nulls);
      SortedDiff(nulls, rhs_true, n);
    }
    return Status::OK();
  }
  // Leaf predicate: evaluate and partition by result tag.
  Vector scratch;
  RFV_RETURN_IF_ERROR(EvalNode(expr, proj, sel, &scratch));
  t->clear();
  n->clear();
  for (const uint32_t i : sel) {
    switch (scratch.tag(i)) {
      case DataType::kNull:
        n->push_back(i);
        break;
      case DataType::kBool:
        if (scratch.b(i)) t->push_back(i);
        break;
      default:
        return Status::TypeError("predicate did not evaluate to a boolean");
    }
  }
  return Status::OK();
}

Status EvalArithmeticVec(BinaryOp op, const Sel& sel, const Vector& l,
                         const Vector& r, Vector* out) {
  for (const uint32_t i : sel) {
    if (l.is_null(i) || r.is_null(i)) {
      out->SetNull(i);
      continue;
    }
    const DataType tl = l.tag(i);
    const DataType tr = r.tag(i);
    if (tl == DataType::kInt64 && tr == DataType::kInt64) {
      const int64_t a = l.i64(i);
      const int64_t b = r.i64(i);
      switch (op) {
        case BinaryOp::kAdd: out->SetInt(i, a + b); break;
        case BinaryOp::kSub: out->SetInt(i, a - b); break;
        case BinaryOp::kMul: out->SetInt(i, a * b); break;
        case BinaryOp::kDiv:
          if (b == 0) return Status::ExecutionError("division by zero");
          out->SetInt(i, a / b);
          break;
        default:
          return Status::Internal("EvalArithmeticVec non-arithmetic op");
      }
    } else if (IsNumericTag(tl) && IsNumericTag(tr)) {
      const double a = l.ToDouble(i);
      const double b = r.ToDouble(i);
      switch (op) {
        case BinaryOp::kAdd: out->SetDouble(i, a + b); break;
        case BinaryOp::kSub: out->SetDouble(i, a - b); break;
        case BinaryOp::kMul: out->SetDouble(i, a * b); break;
        case BinaryOp::kDiv:
          if (b == 0.0) return Status::ExecutionError("division by zero");
          out->SetDouble(i, a / b);
          break;
        default:
          return Status::Internal("EvalArithmeticVec non-arithmetic op");
      }
    } else {
      return Status::TypeError("arithmetic on non-numeric value");
    }
  }
  return Status::OK();
}

void EvalComparisonVec(BinaryOp op, const Sel& sel, const Vector& l,
                       const Vector& r, Vector* out) {
  for (const uint32_t i : sel) {
    if (l.is_null(i) || r.is_null(i)) {
      out->SetNull(i);
      continue;
    }
    const int c = CompareElems(l, r, i);
    bool v = false;
    switch (op) {
      case BinaryOp::kEq: v = c == 0; break;
      case BinaryOp::kNe: v = c != 0; break;
      case BinaryOp::kLt: v = c < 0; break;
      case BinaryOp::kLe: v = c <= 0; break;
      case BinaryOp::kGt: v = c > 0; break;
      case BinaryOp::kGe: v = c >= 0; break;
      default:
        RFV_CHECK_MSG(false, "EvalComparisonVec with non-comparison op");
    }
    out->SetBool(i, v);
  }
}

Status EvalFunctionVec(const Expr& expr, const VectorProjection& proj,
                       const Sel& sel, Vector* out) {
  if (expr.function == ScalarFn::kCoalesce) {
    // Lazy left-to-right: each argument is evaluated only over the rows
    // still NULL after the previous arguments.
    Sel remaining = sel;
    Vector scratch;
    for (const auto& child : expr.children) {
      if (remaining.empty()) break;
      RFV_RETURN_IF_ERROR(EvalNode(*child, proj, remaining, &scratch));
      Sel still_null;
      still_null.reserve(remaining.size());
      for (const uint32_t i : remaining) {
        if (scratch.is_null(i)) still_null.push_back(i);
        else out->CopyFrom(i, scratch, i);
      }
      remaining.swap(still_null);
    }
    for (const uint32_t i : remaining) out->SetNull(i);
    return Status::OK();
  }
  // The remaining functions evaluate every argument, then propagate NULL
  // from any of them.
  std::vector<Vector> args(expr.children.size());
  for (size_t a = 0; a < expr.children.size(); ++a) {
    RFV_RETURN_IF_ERROR(EvalNode(*expr.children[a], proj, sel, &args[a]));
  }
  for (const uint32_t i : sel) {
    bool any_null = false;
    for (const Vector& arg : args) {
      if (arg.is_null(i)) {
        any_null = true;
        break;
      }
    }
    if (any_null) {
      out->SetNull(i);
      continue;
    }
    switch (expr.function) {
      case ScalarFn::kMod: {
        if (args[0].tag(i) != DataType::kInt64 ||
            args[1].tag(i) != DataType::kInt64) {
          return Status::TypeError("MOD expects integer arguments");
        }
        const int64_t b = args[1].i64(i);
        if (b == 0) return Status::ExecutionError("MOD by zero");
        // Floored modulo, matching the row evaluator (see eval.cc for why
        // the paper's congruence classes need the divisor's sign).
        const int64_t a = args[0].i64(i);
        int64_t m = a % b;
        if (m != 0 && ((m < 0) != (b < 0))) m += b;
        out->SetInt(i, m);
        break;
      }
      case ScalarFn::kAbs:
        if (args[0].tag(i) == DataType::kInt64) {
          out->SetInt(i, std::llabs(args[0].i64(i)));
        } else {
          out->SetDouble(i, std::fabs(args[0].GetValue(i).ToDouble()));
        }
        break;
      case ScalarFn::kYear:
      case ScalarFn::kMonth:
      case ScalarFn::kDay: {
        // Mirrors the row path's AsInt() (throws on a non-int cell).
        const int64_t v = args[0].tag(i) == DataType::kInt64
                              ? args[0].i64(i)
                              : args[0].GetValue(i).AsInt();
        if (expr.function == ScalarFn::kYear) out->SetInt(i, v / 10000);
        else if (expr.function == ScalarFn::kMonth) out->SetInt(i, (v / 100) % 100);
        else out->SetInt(i, v % 100);
        break;
      }
      case ScalarFn::kMin2:
        out->CopyFrom(i, CompareElems(args[0], args[1], i) <= 0 ? args[0]
                                                                : args[1], i);
        break;
      case ScalarFn::kMax2:
        out->CopyFrom(i, CompareElems(args[0], args[1], i) >= 0 ? args[0]
                                                                : args[1], i);
        break;
      case ScalarFn::kCoalesce:
        break;  // handled above
    }
  }
  return Status::OK();
}

Status EvalNode(const Expr& expr, const VectorProjection& proj, const Sel& sel,
                Vector* out) {
  out->Reset(proj.num_rows());
  switch (expr.kind) {
    case ExprKind::kLiteral: {
      const Value& v = expr.literal;
      switch (v.type()) {
        case DataType::kNull:
          break;  // Reset already NULL-tagged everything
        case DataType::kInt64: {
          const int64_t x = v.AsInt();
          for (const uint32_t i : sel) out->SetInt(i, x);
          break;
        }
        case DataType::kDouble: {
          const double x = v.AsDouble();
          for (const uint32_t i : sel) out->SetDouble(i, x);
          break;
        }
        case DataType::kBool: {
          const bool x = v.AsBool();
          for (const uint32_t i : sel) out->SetBool(i, x);
          break;
        }
        case DataType::kString:
          for (const uint32_t i : sel) out->SetString(i, v.AsString());
          break;
      }
      return Status::OK();
    }
    case ExprKind::kColumnRef: {
      RFV_DCHECK(expr.column_index < proj.num_columns());
      const Vector& col = proj.column(expr.column_index);
      for (const uint32_t i : sel) out->CopyFrom(i, col, i);
      return Status::OK();
    }
    case ExprKind::kUnary: {
      Vector v;
      RFV_RETURN_IF_ERROR(EvalNode(*expr.children[0], proj, sel, &v));
      if (expr.unary_op == UnaryOp::kNot) {
        for (const uint32_t i : sel) {
          if (v.is_null(i)) {
            out->SetNull(i);
          } else if (v.tag(i) == DataType::kBool) {
            out->SetBool(i, !v.b(i));
          } else {
            return Status::TypeError("NOT on non-boolean");
          }
        }
      } else {
        for (const uint32_t i : sel) {
          switch (v.tag(i)) {
            case DataType::kNull: out->SetNull(i); break;
            case DataType::kInt64: out->SetInt(i, -v.i64(i)); break;
            case DataType::kDouble: out->SetDouble(i, -v.f64(i)); break;
            default:
              return Status::TypeError("unary minus on non-numeric");
          }
        }
      }
      return Status::OK();
    }
    case ExprKind::kBinary: {
      const BinaryOp op = expr.binary_op;
      if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
        Sel t, n;
        RFV_RETURN_IF_ERROR(Partition(expr, proj, sel, &t, &n));
        // Fill by three-cursor walk: sel rows not in t or n are FALSE.
        size_t ti = 0, ni = 0;
        for (const uint32_t i : sel) {
          if (ti < t.size() && t[ti] == i) {
            out->SetBool(i, true);
            ++ti;
          } else if (ni < n.size() && n[ni] == i) {
            out->SetNull(i);
            ++ni;
          } else {
            out->SetBool(i, false);
          }
        }
        return Status::OK();
      }
      Vector l, r;
      RFV_RETURN_IF_ERROR(EvalNode(*expr.children[0], proj, sel, &l));
      RFV_RETURN_IF_ERROR(EvalNode(*expr.children[1], proj, sel, &r));
      switch (op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
          return EvalArithmeticVec(op, sel, l, r, out);
        default:
          EvalComparisonVec(op, sel, l, r, out);
          return Status::OK();
      }
    }
    case ExprKind::kCase: {
      const size_t pairs = (expr.children.size() - (expr.has_else ? 1 : 0)) / 2;
      Sel remaining = sel;
      Vector scratch;
      for (size_t p = 0; p < pairs && !remaining.empty(); ++p) {
        Sel hit, null_hit;
        RFV_RETURN_IF_ERROR(
            Partition(*expr.children[2 * p], proj, remaining, &hit, &null_hit));
        if (!hit.empty()) {
          RFV_RETURN_IF_ERROR(
              EvalNode(*expr.children[2 * p + 1], proj, hit, &scratch));
          for (const uint32_t i : hit) out->CopyFrom(i, scratch, i);
          Sel next;
          SortedDiff(remaining, hit, &next);
          remaining.swap(next);
        }
      }
      if (!remaining.empty()) {
        if (expr.has_else) {
          RFV_RETURN_IF_ERROR(
              EvalNode(*expr.children.back(), proj, remaining, &scratch));
          for (const uint32_t i : remaining) out->CopyFrom(i, scratch, i);
        } else {
          for (const uint32_t i : remaining) out->SetNull(i);
        }
      }
      return Status::OK();
    }
    case ExprKind::kFunction:
      return EvalFunctionVec(expr, proj, sel, out);
    case ExprKind::kIn: {
      Vector needle;
      RFV_RETURN_IF_ERROR(EvalNode(*expr.children[0], proj, sel, &needle));
      Sel remaining;
      remaining.reserve(sel.size());
      for (const uint32_t i : sel) {
        if (needle.is_null(i)) out->SetNull(i);  // candidates never evaluated
        else remaining.push_back(i);
      }
      std::vector<uint8_t> saw_null(proj.num_rows(), 0);
      Vector candidate;
      for (size_t c = 1; c < expr.children.size() && !remaining.empty(); ++c) {
        RFV_RETURN_IF_ERROR(
            EvalNode(*expr.children[c], proj, remaining, &candidate));
        Sel unmatched;
        unmatched.reserve(remaining.size());
        for (const uint32_t i : remaining) {
          if (candidate.is_null(i)) {
            saw_null[i] = 1;
            unmatched.push_back(i);
          } else if (CompareElems(needle, candidate, i) == 0) {
            out->SetBool(i, true);  // later candidates skip this row
          } else {
            unmatched.push_back(i);
          }
        }
        remaining.swap(unmatched);
      }
      for (const uint32_t i : remaining) {
        if (saw_null[i]) out->SetNull(i);
        else out->SetBool(i, false);
      }
      return Status::OK();
    }
    case ExprKind::kBetween: {
      Vector subject, lo, hi;
      RFV_RETURN_IF_ERROR(EvalNode(*expr.children[0], proj, sel, &subject));
      RFV_RETURN_IF_ERROR(EvalNode(*expr.children[1], proj, sel, &lo));
      RFV_RETURN_IF_ERROR(EvalNode(*expr.children[2], proj, sel, &hi));
      for (const uint32_t i : sel) {
        if (subject.is_null(i) || lo.is_null(i) || hi.is_null(i)) {
          out->SetNull(i);
          continue;
        }
        out->SetBool(i, CompareElems(subject, lo, i) >= 0 &&
                            CompareElems(subject, hi, i) <= 0);
      }
      return Status::OK();
    }
    case ExprKind::kIsNull: {
      Vector v;
      RFV_RETURN_IF_ERROR(EvalNode(*expr.children[0], proj, sel, &v));
      for (const uint32_t i : sel) {
        const bool is_null = v.is_null(i);
        out->SetBool(i, expr.is_null_negated ? !is_null : is_null);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable expression kind");
}

}  // namespace

Status VectorEvaluator::Eval(const Expr& expr, const VectorProjection& proj,
                             const SelectionVector& sel, Vector* out) {
  return EvalNode(expr, proj, sel.indices(), out);
}

Status VectorEvaluator::EvalPredicate(const Expr& expr,
                                      const VectorProjection& proj,
                                      SelectionVector* sel) {
  Sel t, n;
  RFV_RETURN_IF_ERROR(Partition(expr, proj, sel->indices(), &t, &n));
  sel->indices().swap(t);
  return Status::OK();
}

void GatherJoinRun(const VectorProjection& left, uint32_t left_pos,
                   const VectorProjection& right,
                   const std::vector<size_t>& cand, size_t cand_offset,
                   size_t k, size_t at, VectorProjection* out) {
  const size_t left_width = left.num_columns();
  for (size_t c = 0; c < left_width; ++c) {
    Vector& dst = out->column(c);
    const Vector& src = left.column(c);
    for (size_t t = 0; t < k; ++t) dst.CopyFrom(at + t, src, left_pos);
  }
  for (size_t c = 0; c < right.num_columns(); ++c) {
    Vector& dst = out->column(left_width + c);
    const Vector& src = right.column(c);
    for (size_t t = 0; t < k; ++t) {
      dst.CopyFrom(at + t, src, cand[cand_offset + t]);
    }
  }
}

void GatherNullPaddedRow(const VectorProjection& left, uint32_t left_pos,
                         size_t right_width, size_t at,
                         VectorProjection* out) {
  const size_t left_width = left.num_columns();
  for (size_t c = 0; c < left_width; ++c) {
    out->column(c).CopyFrom(at, left.column(c), left_pos);
  }
  for (size_t c = 0; c < right_width; ++c) {
    out->column(left_width + c).SetNull(at);
  }
}

Status FilterJoinCandidates(const Expr& residual,
                            const VectorProjection& left, uint32_t left_pos,
                            const VectorProjection& right,
                            VectorProjection* scratch,
                            std::vector<size_t>* candidates) {
  const size_t n = candidates->size();
  if (n == 0) return Status::OK();
  const size_t left_width = left.num_columns();
  scratch->Reset(left_width + right.num_columns(), n);
  for (size_t c = 0; c < left_width; ++c) {
    Vector& dst = scratch->column(c);
    const Vector& src = left.column(c);
    for (size_t t = 0; t < n; ++t) dst.CopyFrom(t, src, left_pos);
  }
  for (size_t c = 0; c < right.num_columns(); ++c) {
    Vector& dst = scratch->column(left_width + c);
    const Vector& src = right.column(c);
    for (size_t t = 0; t < n; ++t) dst.CopyFrom(t, src, (*candidates)[t]);
  }
  RFV_RETURN_IF_ERROR(
      VectorEvaluator::EvalPredicate(residual, *scratch, &scratch->sel()));
  const SelectionVector& surviving = scratch->sel();
  for (size_t k = 0; k < surviving.size(); ++k) {
    (*candidates)[k] = (*candidates)[surviving[k]];
  }
  candidates->resize(surviving.size());
  return Status::OK();
}

}  // namespace rfv
