#include "exec/operators.h"

namespace rfv {

Status TableScanOp::OpenImpl() {
  pos_ = 0;
  open_epoch_ = table_->mutation_epoch();
  return Status::OK();
}

Status TableScanOp::CheckEpoch() const {
  if (table_->mutation_epoch() != open_epoch_) {
    return Status::ExecutionError("table '" + table_->name() +
                                  "' was mutated while a scan was open");
  }
  return Status::OK();
}

Status TableScanOp::NextImpl(Row* row, bool* eof) {
  RFV_RETURN_IF_ERROR(CheckEpoch());
  if (pos_ >= table_->NumRows()) {
    *eof = true;
    return Status::OK();
  }
  *row = table_->row(pos_++);
  *eof = false;
  return Status::OK();
}

Status TableScanOp::NextBatchImpl(RowBatch* batch, bool* eof) {
  RFV_RETURN_IF_ERROR(CheckEpoch());
  const size_t n = table_->NumRows();
  while (pos_ < n && !batch->full()) {
    batch->Push(table_->row(pos_++));
  }
  *eof = pos_ >= n;
  return Status::OK();
}

}  // namespace rfv
