#include "exec/operators.h"

namespace rfv {

Status TableScanOp::OpenImpl() {
  pos_ = 0;
  return Status::OK();
}

Status TableScanOp::NextImpl(Row* row, bool* eof) {
  if (pos_ >= table_->NumRows()) {
    *eof = true;
    return Status::OK();
  }
  *row = table_->row(pos_++);
  *eof = false;
  return Status::OK();
}

}  // namespace rfv
