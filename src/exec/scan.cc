#include "exec/operators.h"

#include <algorithm>

namespace rfv {

Status TableScanOp::OpenImpl() {
  pos_ = 0;
  open_epoch_ = table_->mutation_epoch();
  return Status::OK();
}

Status TableScanOp::CheckEpoch() const {
  if (table_->mutation_epoch() != open_epoch_) {
    return Status::ExecutionError("table '" + table_->name() +
                                  "' was mutated while a scan was open");
  }
  return Status::OK();
}

Status TableScanOp::NextImpl(Row* row, bool* eof) {
  RFV_RETURN_IF_ERROR(CheckEpoch());
  if (pos_ >= table_->NumRows()) {
    *eof = true;
    return Status::OK();
  }
  *row = table_->row(pos_++);
  *eof = false;
  return Status::OK();
}

Status TableScanOp::NextBatchImpl(RowBatch* batch, bool* eof) {
  RFV_RETURN_IF_ERROR(CheckEpoch());
  const size_t n = table_->NumRows();
  while (pos_ < n && !batch->full()) {
    batch->Push(table_->row(pos_++));
  }
  *eof = pos_ >= n;
  return Status::OK();
}

Status TableScanOp::NextVectorImpl(VectorProjection** out, bool* eof) {
  // Epoch check at entry, exactly like the row and batch paths: a
  // mutation between vectors aborts the scan before any stale row is
  // transposed.
  RFV_RETURN_IF_ERROR(CheckEpoch());
  const size_t n = table_->NumRows();
  const size_t count = std::min<size_t>(RowBatch::kDefaultCapacity, n - pos_);
  const size_t num_cols = schema_.NumColumns();
  vp_.Reset(num_cols, count);
  for (size_t i = 0; i < count; ++i) {
    const Row& row = table_->row(pos_ + i);
    for (size_t c = 0; c < num_cols; ++c) vp_.column(c).SetValue(i, row[c]);
  }
  pos_ += count;
  *out = &vp_;
  *eof = pos_ >= n;
  return Status::OK();
}

}  // namespace rfv
