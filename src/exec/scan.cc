#include "exec/operators.h"

#include <algorithm>

namespace rfv {

Status TableScanOp::OpenImpl() {
  pos_ = 0;
  // Pin a reader epoch *before* taking the snapshot pointer: the pin
  // keeps the EpochManager from reclaiming anything retired from here
  // on, and the shared_ptr keeps this particular snapshot alive even if
  // the slot table was full. Re-Open (pipeline restarts) re-pins, so a
  // restarted scan observes DML committed since the first Open — same
  // statement-granular semantics as a fresh scan.
  epoch_guard_ = EpochGuard();
  snap_ = table_->PinSnapshot();
  return Status::OK();
}

Status TableScanOp::NextImpl(Row* row, bool* eof) {
  if (pos_ >= snap_->num_rows()) {
    *eof = true;
    return Status::OK();
  }
  *row = snap_->row(pos_++);
  *eof = false;
  return Status::OK();
}

Status TableScanOp::NextBatchImpl(RowBatch* batch, bool* eof) {
  const size_t n = snap_->num_rows();
  while (pos_ < n && !batch->full()) {
    batch->Push(snap_->row(pos_++));
  }
  *eof = pos_ >= n;
  return Status::OK();
}

Status TableScanOp::NextVectorImpl(VectorProjection** out, bool* eof) {
  const size_t n = snap_->num_rows();
  const size_t count = std::min<size_t>(RowBatch::kDefaultCapacity, n - pos_);
  const size_t num_cols = schema_.NumColumns();
  vp_.Reset(num_cols, count);
  for (size_t i = 0; i < count; ++i) {
    const Row& row = snap_->row(pos_ + i);
    for (size_t c = 0; c < num_cols; ++c) vp_.column(c).SetValue(i, row[c]);
  }
  pos_ += count;
  *out = &vp_;
  *eof = pos_ >= n;
  return Status::OK();
}

}  // namespace rfv
