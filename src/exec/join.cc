#include <algorithm>
#include <optional>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "exec/operators.h"
#include "exec/vector_eval.h"
#include "expr/builder.h"
#include "expr/eval.h"
#include "plan/planner.h"

namespace rfv {

// ---------------------------------------------------------------------------
// Nested-loop join
// ---------------------------------------------------------------------------

Status NestedLoopJoinOp::OpenImpl() {
  right_rows_.clear();
  left_valid_ = false;
  RFV_RETURN_IF_ERROR(left_->Open());
  RFV_RETURN_IF_ERROR(right_->Open());
  right_width_ = right_->schema().NumColumns();
  RFV_RETURN_IF_ERROR(DrainChild(right_.get(), &right_rows_));
  NoteBufferedRows(right_rows_.size());
  return Status::OK();
}

Status NestedLoopJoinOp::AdvanceLeft(bool* eof) {
  RFV_RETURN_IF_ERROR(left_->Next(&current_left_, eof));
  left_valid_ = !*eof;
  left_matched_ = false;
  right_pos_ = 0;
  return Status::OK();
}

Status NestedLoopJoinOp::NextImpl(Row* row, bool* eof) {
  while (true) {
    if (!left_valid_) {
      bool left_eof = false;
      RFV_RETURN_IF_ERROR(AdvanceLeft(&left_eof));
      if (left_eof) {
        *eof = true;
        return Status::OK();
      }
    }
    while (right_pos_ < right_rows_.size()) {
      const Row& right_row = right_rows_[right_pos_++];
      Row joined = Row::Concat(current_left_, right_row);
      bool match = true;
      if (condition_ != nullptr) {
        RFV_ASSIGN_OR_RETURN(match,
                             Evaluator::EvalPredicate(*condition_, joined));
      }
      if (match) {
        left_matched_ = true;
        *row = std::move(joined);
        *eof = false;
        return Status::OK();
      }
    }
    // Right side exhausted for this left row.
    if (join_type_ == JoinType::kLeftOuter && !left_matched_) {
      Row joined = current_left_;
      for (size_t i = 0; i < right_width_; ++i) joined.Append(Value::Null());
      left_valid_ = false;
      *row = std::move(joined);
      *eof = false;
      return Status::OK();
    }
    left_valid_ = false;
  }
}

// ---------------------------------------------------------------------------
// Index probe extraction
// ---------------------------------------------------------------------------

namespace {

/// If `expr` is `colref(column)` or `colref(column) ± <int literal>`
/// (the affine candidate shapes of the paper's Fig. 2/4 IN-predicates),
/// returns the literal offset d such that expr = col + d.
std::optional<int64_t> AffineOffsetOfColumn(const Expr& expr, size_t column) {
  if (expr.kind == ExprKind::kColumnRef) {
    return expr.column_index == column ? std::optional<int64_t>(0)
                                       : std::nullopt;
  }
  if (expr.kind == ExprKind::kBinary &&
      (expr.binary_op == BinaryOp::kAdd || expr.binary_op == BinaryOp::kSub)) {
    const Expr& lhs = *expr.children[0];
    const Expr& rhs = *expr.children[1];
    if (lhs.kind == ExprKind::kColumnRef && lhs.column_index == column &&
        rhs.kind == ExprKind::kLiteral &&
        rhs.literal.type() == DataType::kInt64) {
      const int64_t d = rhs.literal.AsInt();
      return expr.binary_op == BinaryOp::kAdd ? d : -d;
    }
    // <literal> + colref (addition only; subtraction would negate the column).
    if (expr.binary_op == BinaryOp::kAdd && rhs.kind == ExprKind::kColumnRef &&
        rhs.column_index == column && lhs.kind == ExprKind::kLiteral &&
        lhs.literal.type() == DataType::kInt64) {
      return lhs.literal.AsInt();
    }
  }
  return std::nullopt;
}

/// Probe fragments extracted from a single conjunct.
struct ProbeFragment {
  std::vector<ExprPtr> points;  ///< left-schema exprs, one key each
  ExprPtr lo;                   ///< inclusive bounds (left schema)
  ExprPtr hi;
  bool exact = false;  ///< conjunct fully captured by the probe
};

/// Tries to extract a probe fragment on the indexed right column
/// `abs_col` (absolute index into the joined schema) from one conjunct.
/// `left_width` delimits left columns [0, left_width).
std::optional<ProbeFragment> ExtractFragment(const Expr& conjunct,
                                             size_t left_width,
                                             size_t abs_col) {
  const auto is_left_only = [&](const Expr& e) {
    return RefsOnlyRange(e, 0, left_width);
  };
  const auto is_index_col = [&](const Expr& e) {
    return e.kind == ExprKind::kColumnRef && e.column_index == abs_col;
  };

  switch (conjunct.kind) {
    case ExprKind::kBinary: {
      const Expr& lhs = *conjunct.children[0];
      const Expr& rhs = *conjunct.children[1];
      BinaryOp op = conjunct.binary_op;
      const Expr* col_side = nullptr;
      const Expr* other = nullptr;
      if (is_index_col(lhs) && is_left_only(rhs)) {
        col_side = &lhs;
        other = &rhs;
      } else if (is_index_col(rhs) && is_left_only(lhs)) {
        col_side = &rhs;
        other = &lhs;
        // Mirror the comparison: e <op> col  ⇔  col <mirror(op)> e.
        switch (op) {
          case BinaryOp::kLt: op = BinaryOp::kGt; break;
          case BinaryOp::kLe: op = BinaryOp::kGe; break;
          case BinaryOp::kGt: op = BinaryOp::kLt; break;
          case BinaryOp::kGe: op = BinaryOp::kLe; break;
          default: break;
        }
      } else {
        return std::nullopt;
      }
      (void)col_side;
      ProbeFragment fragment;
      switch (op) {
        case BinaryOp::kEq:
          fragment.points.push_back(other->Clone());
          fragment.exact = true;
          return fragment;
        case BinaryOp::kLe:
          fragment.hi = other->Clone();
          fragment.exact = true;
          return fragment;
        case BinaryOp::kGe:
          fragment.lo = other->Clone();
          fragment.exact = true;
          return fragment;
        case BinaryOp::kLt:
          // Relaxed to <=; conjunct stays in the residual.
          fragment.hi = other->Clone();
          fragment.exact = false;
          return fragment;
        case BinaryOp::kGt:
          fragment.lo = other->Clone();
          fragment.exact = false;
          return fragment;
        default:
          return std::nullopt;
      }
    }
    case ExprKind::kBetween: {
      if (!is_index_col(*conjunct.children[0])) return std::nullopt;
      if (!is_left_only(*conjunct.children[1]) ||
          !is_left_only(*conjunct.children[2])) {
        return std::nullopt;
      }
      ProbeFragment fragment;
      fragment.lo = conjunct.children[1]->Clone();
      fragment.hi = conjunct.children[2]->Clone();
      fragment.exact = true;
      return fragment;
    }
    case ExprKind::kIn: {
      const Expr& needle = *conjunct.children[0];
      ProbeFragment fragment;
      if (is_index_col(needle)) {
        // col IN (<left exprs>).
        for (size_t i = 1; i < conjunct.children.size(); ++i) {
          if (!is_left_only(*conjunct.children[i])) return std::nullopt;
          fragment.points.push_back(conjunct.children[i]->Clone());
        }
        fragment.exact = true;
        return fragment;
      }
      if (is_left_only(needle)) {
        // <left expr> IN (col ± c, ...): invert each candidate to
        // col = needle ∓ c (paper Fig. 2/4 predicate shape).
        for (size_t i = 1; i < conjunct.children.size(); ++i) {
          const std::optional<int64_t> d =
              AffineOffsetOfColumn(*conjunct.children[i], abs_col);
          if (!d.has_value()) return std::nullopt;
          fragment.points.push_back(
              eb::Sub(needle.Clone(), eb::Int(*d)));
        }
        fragment.exact = true;
        return fragment;
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

/// Merges probe fragments across the branches of an OR disjunction into
/// a single approximate union probe on the indexed column: point sets
/// union; ranges widen to their hull (LEAST of lower bounds, GREATEST of
/// upper bounds; a branch without a bound unbounds that side). Returns
/// nullopt unless *every* branch yields a fragment of the same shape.
/// This is what lets the paper's disjunctive MaxOA/MinOA join predicates
/// (Figures 10/13) use the position index.
std::optional<ProbeFragment> MergeOrFragments(const Expr& or_expr,
                                              size_t left_width,
                                              size_t abs_col) {
  // Collect OR leaves.
  std::vector<const Expr*> leaves;
  std::vector<const Expr*> stack = {&or_expr};
  while (!stack.empty()) {
    const Expr* e = stack.back();
    stack.pop_back();
    if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kOr) {
      stack.push_back(e->children[0].get());
      stack.push_back(e->children[1].get());
    } else {
      leaves.push_back(e);
    }
  }

  ProbeFragment merged;
  merged.exact = false;  // a union probe is always a superset
  bool first = true;
  bool points_mode = false;
  bool lo_open = false;  // some branch has no lower bound
  bool hi_open = false;
  for (const Expr* leaf : leaves) {
    // Each OR branch is an AND-list; find its strongest fragment.
    std::vector<ExprPtr> branch_conjuncts;
    SplitConjuncts(leaf->Clone(), &branch_conjuncts);
    std::optional<ProbeFragment> best;
    const auto rank = [](const ProbeFragment& p) {
      if (!p.points.empty()) return 3;
      if (p.lo != nullptr && p.hi != nullptr) return 2;
      return 1;
    };
    for (const ExprPtr& bc : branch_conjuncts) {
      std::optional<ProbeFragment> f =
          ExtractFragment(*bc, left_width, abs_col);
      if (!f.has_value()) continue;
      if (!best.has_value() || rank(*f) > rank(*best)) best = std::move(f);
    }
    if (!best.has_value()) return std::nullopt;

    const bool branch_points = !best->points.empty();
    if (first) {
      points_mode = branch_points;
    } else if (points_mode != branch_points) {
      return std::nullopt;  // mixed shapes: give up
    }
    if (points_mode) {
      for (ExprPtr& p : best->points) merged.points.push_back(std::move(p));
    } else {
      if (best->lo == nullptr) {
        lo_open = true;
        merged.lo.reset();
      } else if (!lo_open) {
        if (first || merged.lo == nullptr) {
          merged.lo = std::move(best->lo);
        } else {
          std::vector<ExprPtr> args;
          args.push_back(std::move(merged.lo));
          args.push_back(std::move(best->lo));
          merged.lo =
              eb::Fn(ScalarFn::kMin2, std::move(args), DataType::kInt64);
        }
      }
      if (best->hi == nullptr) {
        hi_open = true;
        merged.hi.reset();
      } else if (!hi_open) {
        if (first || merged.hi == nullptr) {
          merged.hi = std::move(best->hi);
        } else {
          std::vector<ExprPtr> args;
          args.push_back(std::move(merged.hi));
          args.push_back(std::move(best->hi));
          merged.hi =
              eb::Fn(ScalarFn::kMax2, std::move(args), DataType::kInt64);
        }
      }
    }
    first = false;
  }
  if (merged.points.empty() && merged.lo == nullptr && merged.hi == nullptr) {
    return std::nullopt;
  }
  return merged;
}

/// Extracts a probe for one indexed column from a conjunct list.
/// Consumes exact fragments from `conjuncts` (set to null); inexact
/// fragments leave their conjunct in place.
std::optional<IndexProbeSpec> ExtractForColumn(
    std::vector<ExprPtr>* conjuncts, size_t left_width, size_t abs_col,
    size_t table_col) {
  IndexProbeSpec spec;
  spec.right_column = table_col;
  spec.approximate = false;
  bool found = false;

  for (ExprPtr& conjunct : *conjuncts) {
    if (conjunct == nullptr) continue;
    // Direct fragment?
    std::optional<ProbeFragment> fragment =
        ExtractFragment(*conjunct, left_width, abs_col);
    if (!fragment.has_value() && conjunct->kind == ExprKind::kBinary &&
        conjunct->binary_op == BinaryOp::kOr) {
      fragment = MergeOrFragments(*conjunct, left_width, abs_col);
    }
    if (!fragment.has_value()) continue;

    if (!fragment->points.empty()) {
      // Point probes win outright; combine with nothing else.
      spec.point_exprs = std::move(fragment->points);
      spec.range_lo.reset();
      spec.range_hi.reset();
      spec.approximate = !fragment->exact;
      if (fragment->exact) conjunct.reset();
      found = true;
      break;
    }
    // Range fragments combine: intersect bounds.
    if (fragment->lo != nullptr) {
      if (spec.range_lo == nullptr) {
        spec.range_lo = std::move(fragment->lo);
      } else {
        std::vector<ExprPtr> args;
        args.push_back(std::move(spec.range_lo));
        args.push_back(std::move(fragment->lo));
        spec.range_lo =
            eb::Fn(ScalarFn::kMax2, std::move(args), DataType::kInt64);
      }
    }
    if (fragment->hi != nullptr) {
      if (spec.range_hi == nullptr) {
        spec.range_hi = std::move(fragment->hi);
      } else {
        std::vector<ExprPtr> args;
        args.push_back(std::move(spec.range_hi));
        args.push_back(std::move(fragment->hi));
        spec.range_hi =
            eb::Fn(ScalarFn::kMin2, std::move(args), DataType::kInt64);
      }
    }
    if (!fragment->exact) spec.approximate = true;
    if (fragment->exact) conjunct.reset();
    found = true;
  }

  if (!found) return std::nullopt;
  if (spec.point_exprs.empty() && spec.range_lo == nullptr &&
      spec.range_hi == nullptr) {
    return std::nullopt;
  }
  return spec;
}

}  // namespace

std::optional<IndexProbeSpec> TryExtractIndexProbe(const Expr& condition,
                                                   size_t left_width,
                                                   Table* right_table) {
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(condition.Clone(), &conjuncts);

  std::optional<IndexProbeSpec> best;
  for (size_t table_col = 0; table_col < right_table->schema().NumColumns();
       ++table_col) {
    if (!right_table->HasIndexOnColumn(table_col)) continue;
    std::vector<ExprPtr> scratch;
    scratch.reserve(conjuncts.size());
    for (const ExprPtr& c : conjuncts) scratch.push_back(c->Clone());
    std::optional<IndexProbeSpec> spec = ExtractForColumn(
        &scratch, left_width, left_width + table_col, table_col);
    if (!spec.has_value()) continue;
    // Residual: everything not consumed.
    std::vector<ExprPtr> residual_conjuncts;
    for (ExprPtr& c : scratch) {
      if (c != nullptr) residual_conjuncts.push_back(std::move(c));
    }
    spec->residual = CombineConjuncts(std::move(residual_conjuncts));
    // Prefer point probes over ranges, exact over approximate.
    const auto rank = [](const IndexProbeSpec& s) {
      int r = 0;
      if (!s.point_exprs.empty()) r += 4;
      if (s.range_lo != nullptr && s.range_hi != nullptr) r += 2;
      if (!s.approximate) r += 1;
      return r;
    };
    if (!best.has_value() || rank(*spec) > rank(*best)) {
      best = std::move(spec);
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Index nested-loop join
// ---------------------------------------------------------------------------

Status IndexNestedLoopJoinOp::OpenImpl() {
  left_valid_ = false;
  candidates_.clear();
  candidate_pos_ = 0;
  RFV_RETURN_IF_ERROR(left_->Open());
  index_ = right_table_->GetIndexOnColumn(spec_.right_column);
  if (index_ == nullptr) {
    return Status::Internal("index disappeared for index nested-loop join");
  }
  return Status::OK();
}

Status IndexNestedLoopJoinOp::AdvanceLeft(bool* eof) {
  RFV_RETURN_IF_ERROR(left_->Next(&current_left_, eof));
  left_valid_ = !*eof;
  left_matched_ = false;
  candidates_.clear();
  candidate_pos_ = 0;
  if (*eof) return Status::OK();

  // Compute the probe keys from the left row and collect candidates.
  if (!spec_.point_exprs.empty()) {
    for (const ExprPtr& e : spec_.point_exprs) {
      Value key;
      RFV_ASSIGN_OR_RETURN(key, Evaluator::Eval(*e, current_left_));
      if (key.is_null()) continue;  // NULL never equi-matches
      std::vector<size_t> hits = index_->Lookup(key);
      candidates_.insert(candidates_.end(), hits.begin(), hits.end());
    }
    // IN-style probes may hit the same row via several keys; a join
    // predicate match is boolean, so deduplicate.
    std::sort(candidates_.begin(), candidates_.end());
    candidates_.erase(std::unique(candidates_.begin(), candidates_.end()),
                      candidates_.end());
  } else {
    Value lo;
    Value hi;
    bool has_lo = false;
    bool has_hi = false;
    if (spec_.range_lo != nullptr) {
      RFV_ASSIGN_OR_RETURN(lo, Evaluator::Eval(*spec_.range_lo, current_left_));
      has_lo = !lo.is_null();
      if (lo.is_null()) {
        // NULL bound: comparison can never be satisfied.
        candidates_.clear();
        return Status::OK();
      }
    }
    if (spec_.range_hi != nullptr) {
      RFV_ASSIGN_OR_RETURN(hi, Evaluator::Eval(*spec_.range_hi, current_left_));
      has_hi = !hi.is_null();
      if (hi.is_null()) {
        candidates_.clear();
        return Status::OK();
      }
    }
    candidates_ = index_->LookupRange(lo, has_lo, hi, has_hi);
  }
  return Status::OK();
}

Status IndexNestedLoopJoinOp::NextImpl(Row* row, bool* eof) {
  while (true) {
    if (!left_valid_) {
      bool left_eof = false;
      RFV_RETURN_IF_ERROR(AdvanceLeft(&left_eof));
      if (left_eof) {
        *eof = true;
        return Status::OK();
      }
    }
    while (candidate_pos_ < candidates_.size()) {
      const size_t right_id = candidates_[candidate_pos_++];
      Row joined = Row::Concat(current_left_, right_table_->row(right_id));
      bool match = true;
      if (spec_.residual != nullptr) {
        RFV_ASSIGN_OR_RETURN(
            match, Evaluator::EvalPredicate(*spec_.residual, joined));
      }
      if (match) {
        left_matched_ = true;
        *row = std::move(joined);
        *eof = false;
        return Status::OK();
      }
    }
    if (join_type_ == JoinType::kLeftOuter && !left_matched_) {
      Row joined = current_left_;
      for (size_t i = 0; i < right_schema_.NumColumns(); ++i) {
        joined.Append(Value::Null());
      }
      left_valid_ = false;
      *row = std::move(joined);
      *eof = false;
      return Status::OK();
    }
    left_valid_ = false;
  }
}

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

namespace {

Counter* HashBuildRowsCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "rfv_exec_hash_build_rows_total", {},
      "Rows inserted into hash join build tables");
  return c;
}

Counter* HashProbeVectorsCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "rfv_exec_hash_probe_vectors_total", {},
      "Probe-side vectors bulk-hashed by vectorized hash joins");
  return c;
}

}  // namespace

Status HashJoinOp::OpenImpl() {
  hash_table_.clear();
  left_valid_ = false;
  bucket_ = nullptr;
  probe_vp_ = nullptr;
  probe_lane_pos_ = 0;
  probe_input_eof_ = false;
  vec_candidates_.clear();
  vec_candidate_pos_ = 0;
  RFV_RETURN_IF_ERROR(left_->Open());
  RFV_RETURN_IF_ERROR(right_->Open());
  right_width_ = right_->schema().NumColumns();
  if (vectorized()) return OpenVectorized();
  std::vector<Row> build_rows;
  RFV_RETURN_IF_ERROR(DrainChild(right_.get(), &build_rows));
  size_t buffered = 0;
  for (Row& row : build_rows) {
    std::vector<Value> key;
    key.reserve(right_keys_.size());
    bool has_null = false;
    for (const ExprPtr& k : right_keys_) {
      Value v;
      RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(*k, row));
      has_null = has_null || v.is_null();
      key.push_back(std::move(v));
    }
    if (has_null) continue;  // NULL keys never equi-match
    hash_table_[std::move(key)].push_back(std::move(row));
    ++buffered;
  }
  HashBuildRowsCounter()->Increment(static_cast<int64_t>(buffered));
  NoteBufferedRows(buffered);
  return Status::OK();
}

Status HashJoinOp::OpenVectorized() {
  std::vector<Row> build_rows;
  RFV_RETURN_IF_ERROR(DrainChild(right_.get(), &build_rows));
  const size_t n = build_rows.size();

  // Transpose the build side once into columnar lanes: the gather
  // source for output emission and the input of the key evaluation.
  build_vp_.Reset(right_width_, n);
  for (size_t i = 0; i < n; ++i) {
    const Row& row = build_rows[i];
    for (size_t c = 0; c < right_width_; ++c) {
      build_vp_.column(c).SetValue(i, row[c]);
    }
  }

  // Evaluate all key expressions column-at-a-time, then bulk-hash the
  // whole key vector set in one kernel pass (hash-identical to the row
  // path's RowColumnsHash).
  build_key_vecs_.resize(right_keys_.size());
  std::vector<const Vector*> key_ptrs(right_keys_.size());
  for (size_t j = 0; j < right_keys_.size(); ++j) {
    RFV_RETURN_IF_ERROR(VectorEvaluator::Eval(
        *right_keys_[j], build_vp_, build_vp_.sel(), &build_key_vecs_[j]));
    key_ptrs[j] = &build_key_vecs_[j];
  }
  HashVectorColumns(key_ptrs, build_vp_.sel(), n, &build_hashes_);

  // Single allocation pass for the bucket-chain table: heads_ sized to
  // the next power of two ≥ 2n (load factor ≤ 0.5), chain_next_ one
  // slot per build row. Inserting in REVERSE row order with head
  // insertion makes every chain walk in ascending build-row order —
  // exactly the bucket arrival order the row path's map produces, so
  // output order is identical across paths.
  size_t cap = 16;
  while (cap < n * 2) cap <<= 1;
  bucket_mask_ = cap - 1;
  heads_.assign(cap, kChainEnd);
  chain_next_.assign(n, kChainEnd);
  size_t inserted = 0;
  for (size_t i = n; i-- > 0;) {
    bool has_null = false;
    for (const Vector& kv : build_key_vecs_) {
      if (kv.is_null(i)) {
        has_null = true;
        break;
      }
    }
    if (has_null) continue;  // NULL keys never equi-match
    const size_t b = static_cast<size_t>(build_hashes_[i] & bucket_mask_);
    chain_next_[i] = heads_[b];
    heads_[b] = static_cast<uint32_t>(i);
    ++inserted;
  }
  HashBuildRowsCounter()->Increment(static_cast<int64_t>(inserted));
  NoteBufferedRows(inserted);
  return Status::OK();
}

Status HashJoinOp::AdvanceLeft(bool* eof) {
  RFV_RETURN_IF_ERROR(left_->Next(&current_left_, eof));
  left_valid_ = !*eof;
  left_matched_ = false;
  bucket_ = nullptr;
  bucket_pos_ = 0;
  if (*eof) return Status::OK();
  std::vector<Value> key;
  key.reserve(left_keys_.size());
  for (const ExprPtr& k : left_keys_) {
    Value v;
    RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(*k, current_left_));
    if (v.is_null()) return Status::OK();  // no bucket
    key.push_back(std::move(v));
  }
  const auto it = hash_table_.find(key);
  if (it != hash_table_.end()) bucket_ = &it->second;
  return Status::OK();
}

Status HashJoinOp::NextImpl(Row* row, bool* eof) {
  while (true) {
    if (!left_valid_) {
      bool left_eof = false;
      RFV_RETURN_IF_ERROR(AdvanceLeft(&left_eof));
      if (left_eof) {
        *eof = true;
        return Status::OK();
      }
    }
    if (bucket_ != nullptr) {
      while (bucket_pos_ < bucket_->size()) {
        const Row& right_row = (*bucket_)[bucket_pos_++];
        Row joined = Row::Concat(current_left_, right_row);
        bool match = true;
        if (residual_ != nullptr) {
          RFV_ASSIGN_OR_RETURN(match,
                               Evaluator::EvalPredicate(*residual_, joined));
        }
        if (match) {
          left_matched_ = true;
          *row = std::move(joined);
          *eof = false;
          return Status::OK();
        }
      }
    }
    if (join_type_ == JoinType::kLeftOuter && !left_matched_) {
      Row joined = current_left_;
      for (size_t i = 0; i < right_width_; ++i) joined.Append(Value::Null());
      left_valid_ = false;
      *row = std::move(joined);
      *eof = false;
      return Status::OK();
    }
    left_valid_ = false;
  }
}

Status HashJoinOp::NextVectorImpl(VectorProjection** out, bool* eof) {
  // Native only when the planner stamped this operator vectorized (the
  // chain table exists then); otherwise keep the transpose fallback.
  if (!vectorized()) return PhysicalOperator::NextVectorImpl(out, eof);

  const size_t left_width = left_->schema().NumColumns();
  out_vp_.Reset(left_width + right_width_, vector_capacity_);
  size_t filled = 0;

  while (filled < vector_capacity_) {
    if (!left_valid_) {
      // Advance to the next probe lane, pulling and bulk-hashing fresh
      // probe vectors as needed (drain-first EOF contract).
      while (probe_vp_ == nullptr ||
             probe_lane_pos_ >= probe_vp_->NumSelected()) {
        if (probe_input_eof_) goto drained;
        bool child_eof = false;
        if (left_->vectorized()) {
          RFV_RETURN_IF_ERROR(left_->NextVector(&probe_vp_, &child_eof));
        } else {
          RFV_RETURN_IF_ERROR(left_->NextBatch(&probe_batch_, &child_eof));
          probe_src_vp_.FromBatch(left_width, probe_batch_);
          probe_vp_ = &probe_src_vp_;
        }
        probe_input_eof_ = child_eof;
        probe_lane_pos_ = 0;
        if (probe_vp_ != nullptr && probe_vp_->NumSelected() == 0) {
          probe_vp_ = nullptr;
        }
        if (probe_vp_ != nullptr) {
          probe_key_vecs_.resize(left_keys_.size());
          std::vector<const Vector*> key_ptrs(left_keys_.size());
          for (size_t j = 0; j < left_keys_.size(); ++j) {
            RFV_RETURN_IF_ERROR(
                VectorEvaluator::Eval(*left_keys_[j], *probe_vp_,
                                      probe_vp_->sel(), &probe_key_vecs_[j]));
            key_ptrs[j] = &probe_key_vecs_[j];
          }
          HashVectorColumns(key_ptrs, probe_vp_->sel(),
                            probe_vp_->num_rows(), &probe_hashes_);
          HashProbeVectorsCounter()->Increment();
        }
      }
      current_lane_ = probe_vp_->sel()[probe_lane_pos_++];
      // Chase this lane's bucket chain: full-hash pre-check, then the
      // typed cell comparison (Value::Compare semantics). The chain is
      // in ascending build-row order by construction.
      vec_candidates_.clear();
      vec_candidate_pos_ = 0;
      bool has_null = false;
      for (const Vector& kv : probe_key_vecs_) {
        if (kv.is_null(current_lane_)) {
          has_null = true;
          break;
        }
      }
      if (!has_null) {
        const uint64_t h = probe_hashes_[current_lane_];
        for (uint32_t e = heads_[static_cast<size_t>(h & bucket_mask_)];
             e != kChainEnd; e = chain_next_[e]) {
          if (build_hashes_[e] != h) continue;
          bool eq = true;
          for (size_t j = 0; j < probe_key_vecs_.size(); ++j) {
            if (!VectorCellsEqual(probe_key_vecs_[j], current_lane_,
                                  build_key_vecs_[j], e)) {
              eq = false;
              break;
            }
          }
          if (eq) vec_candidates_.push_back(e);
        }
      }
      if (residual_ != nullptr && !vec_candidates_.empty()) {
        RFV_RETURN_IF_ERROR(FilterJoinCandidates(*residual_, *probe_vp_,
                                                 current_lane_, build_vp_,
                                                 &residual_scratch_,
                                                 &vec_candidates_));
      }
      left_matched_ = !vec_candidates_.empty();
      left_valid_ = true;
    }
    if (vec_candidate_pos_ < vec_candidates_.size()) {
      const size_t run = std::min(vector_capacity_ - filled,
                                  vec_candidates_.size() - vec_candidate_pos_);
      GatherJoinRun(*probe_vp_, current_lane_, build_vp_, vec_candidates_,
                    vec_candidate_pos_, run, filled, &out_vp_);
      vec_candidate_pos_ += run;
      filled += run;
      if (vec_candidate_pos_ >= vec_candidates_.size()) left_valid_ = false;
      continue;
    }
    if (join_type_ == JoinType::kLeftOuter && !left_matched_) {
      GatherNullPaddedRow(*probe_vp_, current_lane_, right_width_, filled,
                          &out_vp_);
      ++filled;
    }
    left_valid_ = false;
  }

drained:
  out_vp_.sel().Truncate(filled);
  *out = &out_vp_;
  *eof = probe_input_eof_ && !left_valid_ &&
         (probe_vp_ == nullptr || probe_lane_pos_ >= probe_vp_->NumSelected());
  return Status::OK();
}

}  // namespace rfv
