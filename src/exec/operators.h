#ifndef RFVIEW_EXEC_OPERATORS_H_
#define RFVIEW_EXEC_OPERATORS_H_

// Internal header: physical operator classes. Users of the library go
// through exec/executor.h (BuildPhysicalPlan / ExecutePlan); these
// classes are exposed for white-box tests.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/epoch.h"
#include "exec/executor.h"
#include "expr/expr.h"
#include "storage/table.h"
#include "storage/table_snapshot.h"

namespace rfv {

/// Full scan over a base table. Open pins the table's committed
/// snapshot (chunked copy-on-write image) plus a reader epoch, so the
/// scan reads a stable statement-granular image of the table in all
/// three pull styles while concurrent DML mutates the live row store.
/// Close releases the pin, letting the EpochManager reclaim superseded
/// snapshots.
class TableScanOp : public PhysicalOperator {
 public:
  TableScanOp(Schema schema, Table* table)
      : PhysicalOperator(std::move(schema)), table_(table) {}
  const char* name() const override { return "scan"; }
  bool VectorNative() const override { return true; }

  Table* table() const { return table_; }

 protected:
  Status OpenImpl() override;
  Status NextImpl(Row* row, bool* eof) override;
  Status NextBatchImpl(RowBatch* batch, bool* eof) override;
  Status NextVectorImpl(VectorProjection** out, bool* eof) override;

 private:
  Table* table_;
  size_t pos_ = 0;
  /// The stable image this scan reads; pinned in OpenImpl.
  TableSnapshotPtr snap_;
  /// Reader epoch pin held for the scan's lifetime.
  EpochGuard epoch_guard_{nullptr};
  /// Vector path: the projection handed to NextVector callers.
  VectorProjection vp_;
};

class FilterOp : public PhysicalOperator {
 public:
  FilterOp(Schema schema, PhysicalOperatorPtr child, ExprPtr predicate)
      : PhysicalOperator(std::move(schema)),
        child_(std::move(child)),
        predicate_(std::move(predicate)) {}
  const char* name() const override { return "filter"; }
  bool VectorNative() const override { return true; }
  void AppendChildren(
      std::vector<const PhysicalOperator*>* out) const override {
    out->push_back(child_.get());
  }

 protected:
  Status OpenImpl() override;
  Status NextImpl(Row* row, bool* eof) override;
  Status NextBatchImpl(RowBatch* batch, bool* eof) override;
  /// Zero-copy: narrows the child projection's selection vector in place
  /// and passes the projection through.
  Status NextVectorImpl(VectorProjection** out, bool* eof) override;

 private:
  PhysicalOperatorPtr child_;
  ExprPtr predicate_;
  // Batch path: rows pulled from the child, consumed at input_pos_.
  RowBatch input_;
  size_t input_pos_ = 0;
  bool child_eof_ = false;
};

class ProjectOp : public PhysicalOperator {
 public:
  ProjectOp(Schema schema, PhysicalOperatorPtr child,
            std::vector<ExprPtr> projections)
      : PhysicalOperator(std::move(schema)),
        child_(std::move(child)),
        projections_(std::move(projections)) {}
  const char* name() const override { return "project"; }
  bool VectorNative() const override { return true; }
  void AppendChildren(
      std::vector<const PhysicalOperator*>* out) const override {
    out->push_back(child_.get());
  }

 protected:
  Status OpenImpl() override;
  Status NextImpl(Row* row, bool* eof) override;
  Status NextBatchImpl(RowBatch* batch, bool* eof) override;
  Status NextVectorImpl(VectorProjection** out, bool* eof) override;

 private:
  PhysicalOperatorPtr child_;
  std::vector<ExprPtr> projections_;
  // Batch path: rows pulled from the child, consumed at input_pos_.
  RowBatch input_;
  size_t input_pos_ = 0;
  bool child_eof_ = false;
  /// Vector path: output columns evaluated from the child projection;
  /// shares the child's row positions and selection.
  VectorProjection out_vp_;
};

/// Nested-loop join: materializes the right input once, then scans it
/// per left row. Supports inner, cross and left outer joins with an
/// arbitrary residual condition — the fallback the paper's "self join
/// method **without** index" rows in Table 1 exercise.
class NestedLoopJoinOp : public PhysicalOperator {
 public:
  NestedLoopJoinOp(Schema schema, PhysicalOperatorPtr left,
                   PhysicalOperatorPtr right, ExprPtr condition,
                   JoinType join_type)
      : PhysicalOperator(std::move(schema)),
        left_(std::move(left)),
        right_(std::move(right)),
        condition_(std::move(condition)),
        join_type_(join_type) {}
  const char* name() const override { return "nested_loop_join"; }
  void AppendChildren(
      std::vector<const PhysicalOperator*>* out) const override {
    out->push_back(left_.get());
    out->push_back(right_.get());
  }

 protected:
  Status OpenImpl() override;
  Status NextImpl(Row* row, bool* eof) override;

 private:
  Status AdvanceLeft(bool* eof);

  PhysicalOperatorPtr left_;
  PhysicalOperatorPtr right_;
  ExprPtr condition_;
  JoinType join_type_;

  std::vector<Row> right_rows_;
  Row current_left_;
  bool left_valid_ = false;
  bool left_matched_ = false;
  size_t right_pos_ = 0;
  size_t right_width_ = 0;
};

/// Probe specification for an index nested-loop join: how to derive,
/// from each left row, the key set to look up in the right table's
/// ordered index. Produced by TryExtractIndexProbe (exec/join.cc).
struct IndexProbeSpec {
  /// Right-table column (table-local index) the probes address.
  size_t right_column = 0;

  /// Point probes: each expression (bound over the LEFT schema) yields
  /// one key; a right row qualifies when its key equals any of them.
  std::vector<ExprPtr> point_exprs;

  /// Range probe (used when point_exprs is empty): optional bounds,
  /// inclusive. Bound expressions are bound over the LEFT schema.
  ExprPtr range_lo;
  ExprPtr range_hi;

  /// True when the probe is a superset of the join condition and the
  /// full condition must be re-checked on each candidate (e.g. strict
  /// `<` relaxed to `<=`, or a disjunctive condition widened to its
  /// column hull). When false the probe is exact and the condition
  /// conjuncts it covers were already removed from `residual`.
  bool approximate = true;

  /// Condition to evaluate on each joined candidate row; null = accept.
  ExprPtr residual;
};

/// Attempts to turn `condition` (bound over the joined schema, left
/// width `left_width`) into an index probe on an indexed column of
/// `right_table`. Returns nullopt when no usable pattern is found.
///
/// Recognized per-conjunct patterns on an indexed right column rc:
///   rc = <left expr>                      → exact point
///   rc IN (<left exprs>)                  → exact points
///   <left expr> IN (rc ± const, ...)      → exact points (inverted form,
///                                           paper Fig. 2/4 predicates)
///   rc BETWEEN <left lo> AND <left hi>    → exact range
///   rc < / <= / > / >= <left expr>        → approximate one-sided range
///   OR of branches each yielding a probe on rc
///                                         → approximate union/hull probe
std::optional<IndexProbeSpec> TryExtractIndexProbe(const Expr& condition,
                                                   size_t left_width,
                                                   Table* right_table);

/// Index nested-loop join: per left row, probes an ordered index on the
/// right base table — the paper's "with primary key index" execution
/// paths in Tables 1 and 2.
class IndexNestedLoopJoinOp : public PhysicalOperator {
 public:
  IndexNestedLoopJoinOp(Schema schema, PhysicalOperatorPtr left,
                        Table* right_table, Schema right_schema,
                        IndexProbeSpec spec, JoinType join_type)
      : PhysicalOperator(std::move(schema)),
        left_(std::move(left)),
        right_table_(right_table),
        right_schema_(std::move(right_schema)),
        spec_(std::move(spec)),
        join_type_(join_type) {}
  const char* name() const override { return "index_nested_loop_join"; }
  void AppendChildren(
      std::vector<const PhysicalOperator*>* out) const override {
    out->push_back(left_.get());
  }

 protected:
  Status OpenImpl() override;
  Status NextImpl(Row* row, bool* eof) override;

 private:
  Status AdvanceLeft(bool* eof);

  PhysicalOperatorPtr left_;
  Table* right_table_;
  Schema right_schema_;
  IndexProbeSpec spec_;
  JoinType join_type_;

  OrderedIndex* index_ = nullptr;
  Row current_left_;
  bool left_valid_ = false;
  bool left_matched_ = false;
  std::vector<size_t> candidates_;
  size_t candidate_pos_ = 0;
};

/// One band of a merge band join: the set of right-side keys a left row
/// joins with, described as an inclusive integer interval plus an
/// optional congruence (stride) constraint. All expressions are bound
/// over the LEFT schema.
struct BandSpec {
  /// Interval bounds; null = unbounded on that side. A NULL bound value
  /// at runtime makes the band empty (SQL comparison semantics).
  ExprPtr lo;
  ExprPtr hi;
  /// True when the source conjunct was strict (`<` / `>`): the evaluated
  /// integer bound is tightened by one at runtime.
  bool lo_strict = false;
  bool hi_strict = false;
  /// Congruence constraint `MOD(anchor, modulus) = MOD(key, modulus)`:
  /// only keys congruent to the anchor survive. modulus == 0 = none.
  /// MOD is the engine's floored modulo, so congruence-class enumeration
  /// is exact for negative keys too.
  ExprPtr anchor;
  int64_t modulus = 0;
  /// lo and hi are the same single point (`rc = e` / IN candidates).
  bool is_point = false;
};

/// Merge band join plan: each left row matches right rows whose key
/// column falls in ANY of the bands (the bands are the branches of the
/// paper's disjunctive MaxOA/MinOA join predicates). Produced by
/// TryExtractBandJoin (exec/band_join.cc).
struct BandJoinSpec {
  /// Right-table column (table-local index) holding the band key; gated
  /// to DataType::kInt64.
  size_t right_column = 0;
  std::vector<BandSpec> bands;
  /// True when the bands over-approximate the condition (an OR branch
  /// carried conjuncts the extractor could not fold into the band); the
  /// full original condition is then re-checked per candidate.
  bool approximate = false;
  /// Condition to evaluate on each joined candidate row; null = accept.
  /// When `approximate`, this is the full original join condition.
  ExprPtr residual;
};

/// Attempts to turn `condition` into a band join on an INTEGER column of
/// `right_table`. Returns nullopt when no band shape is found, or when
/// the shape is one the hash/index joins already handle better (a single
/// equality point and nothing else).
///
/// Recognized per-conjunct shapes on an int64 right column rc:
///   rc BETWEEN lo AND hi / rc <op> e       → interval band
///   rc = e / rc IN (...) / e IN (rc ± c)   → point bands
///   MOD(e, w) = MOD(rc, w)                 → congruence on the band
///   OR of branches, each an AND of the above → one band per branch
std::optional<BandJoinSpec> TryExtractBandJoin(const Expr& condition,
                                               size_t left_width,
                                               Table* right_table);

/// Merge band join: materializes the right input once into a sorted
/// (key, row) array — skipping the sort when the input is already in key
/// order — then resolves each left row's bands against it with monotone
/// start cursors (O(n + matches) for the paper's forward-moving frames),
/// binary-search fallback for non-monotone bounds, and congruence-class
/// stride enumeration for the MaxOA/MinOA partitioned patterns. This is
/// the linear-time execution strategy for the Fig. 2/10/13 self-join
/// patterns; selected ahead of the index nested-loop probe when the
/// condition has band shape.
class MergeBandJoinOp : public PhysicalOperator {
 public:
  MergeBandJoinOp(Schema schema, PhysicalOperatorPtr left,
                  PhysicalOperatorPtr right, BandJoinSpec spec,
                  JoinType join_type)
      : PhysicalOperator(std::move(schema)),
        left_(std::move(left)),
        right_(std::move(right)),
        spec_(std::move(spec)),
        join_type_(join_type) {}
  const char* name() const override { return "merge_band_join"; }
  void AppendChildren(
      std::vector<const PhysicalOperator*>* out) const override {
    out->push_back(left_.get());
    out->push_back(right_.get());
  }
  /// Native columnar output: candidate runs from the monotone band
  /// cursors are gathered column-wise into pooled output lanes
  /// (band_join.cc NextVectorImpl) instead of transposing per-row
  /// concatenations.
  bool VectorNative() const override { return true; }
  /// Test hook: shrinks the native vector path's output capacity so
  /// tests can force candidate runs to split across output vectors.
  void SetVectorOutputCapacityForTest(size_t cap) {
    vector_capacity_ = cap == 0 ? 1 : cap;
  }

 protected:
  Status OpenImpl() override;
  Status NextImpl(Row* row, bool* eof) override;
  Status NextVectorImpl(VectorProjection** out, bool* eof) override;

 private:
  /// Evaluated, integer-resolved bounds of one band for one left row.
  struct ResolvedBand {
    int64_t lo = 0;
    int64_t hi = 0;
    int64_t residue = 0;  ///< anchor's congruence class (modulus > 0)
    int64_t modulus = 0;
    bool empty = false;
  };

  Status AdvanceLeft(bool* eof);
  /// Resolves all bands for current_left_ into candidates_ (cross-band
  /// deduplicated); shared by the row and vector paths.
  Status ResolveCandidates();
  Status ResolveBand(const BandSpec& band, const Row& left_row,
                     ResolvedBand* out) const;
  /// Appends row ids of keys_ positions matching `band` to candidates_,
  /// using the per-band monotone start cursor `cursor`.
  void CollectBand(const ResolvedBand& band, size_t band_index);

  PhysicalOperatorPtr left_;
  PhysicalOperatorPtr right_;
  BandJoinSpec spec_;
  JoinType join_type_;

  std::vector<Row> right_rows_;
  /// (key, row id) for non-NULL keys, sorted by key then row id.
  std::vector<std::pair<int64_t, size_t>> keys_;
  /// Dense direct-address table: keys are unique and contiguous, so
  /// dense_[key - dense_base_] is the row id (point/stride lookups
  /// become O(1)).
  std::vector<size_t> dense_;
  int64_t dense_base_ = 0;
  bool dense_valid_ = false;
  /// Per-band monotone start cursors into keys_ with the previous lower
  /// bound; reused across left rows while bounds move forward.
  std::vector<size_t> cursors_;
  std::vector<int64_t> prev_lo_;

  Row current_left_;
  bool left_valid_ = false;
  bool left_matched_ = false;
  std::vector<size_t> candidates_;
  size_t candidate_pos_ = 0;
  size_t right_width_ = 0;

  // --- Vector-native path (NextVectorImpl, used when vectorized()) ---
  /// Columnar copy of right_rows_ — the gather source for output runs.
  VectorProjection right_vp_;
  /// Pooled output lanes and residual-filter scratch, reused across
  /// NextVector calls.
  VectorProjection out_vp_;
  VectorProjection residual_scratch_;
  /// Left-input staging: the current left projection is child-owned
  /// when the left child is vectorized, else the transpose of
  /// left_batch_ into left_src_vp_.
  RowBatch left_batch_;
  VectorProjection left_src_vp_;
  VectorProjection* left_vp_ = nullptr;
  size_t left_lane_pos_ = 0;    ///< next selection slot in left_vp_
  uint32_t current_lane_ = 0;   ///< current left row position in left_vp_
  bool left_input_eof_ = false;
  size_t vector_capacity_ = RowBatch::kDefaultCapacity;
};

/// Hash join on equi-key conjuncts (inner / left outer) with optional
/// residual condition.
class HashJoinOp : public PhysicalOperator {
 public:
  HashJoinOp(Schema schema, PhysicalOperatorPtr left,
             PhysicalOperatorPtr right, std::vector<ExprPtr> left_keys,
             std::vector<ExprPtr> right_keys, ExprPtr residual,
             JoinType join_type)
      : PhysicalOperator(std::move(schema)),
        left_(std::move(left)),
        right_(std::move(right)),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        residual_(std::move(residual)),
        join_type_(join_type) {}
  const char* name() const override { return "hash_join"; }
  void AppendChildren(
      std::vector<const PhysicalOperator*>* out) const override {
    out->push_back(left_.get());
    out->push_back(right_.get());
  }
  /// Native columnar execution: vectorized build (bulk-hash whole key
  /// vectors into a contiguous bucket-chain table, one allocation pass)
  /// and vectorized probe (bulk-hash the probe vector, chase chains
  /// per-lane, gather matches column-wise). See join.cc.
  bool VectorNative() const override { return true; }
  /// Test hook: shrinks the native vector path's output capacity so
  /// tests can force match runs to split across output vectors.
  void SetVectorOutputCapacityForTest(size_t cap) {
    vector_capacity_ = cap == 0 ? 1 : cap;
  }

 protected:
  Status OpenImpl() override;
  Status NextImpl(Row* row, bool* eof) override;
  Status NextVectorImpl(VectorProjection** out, bool* eof) override;

 private:
  Status AdvanceLeft(bool* eof);
  /// Vectorized build: drains the build side, transposes it once into
  /// build_vp_, bulk-hashes the key vectors, and links the bucket-chain
  /// table (heads_/chain_next_) in one pass.
  Status OpenVectorized();

  PhysicalOperatorPtr left_;
  PhysicalOperatorPtr right_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  ExprPtr residual_;
  JoinType join_type_;

  std::unordered_map<std::vector<Value>, std::vector<Row>, RowColumnsHash>
      hash_table_;
  size_t right_width_ = 0;
  Row current_left_;
  bool left_valid_ = false;
  bool left_matched_ = false;
  const std::vector<Row>* bucket_ = nullptr;
  size_t bucket_pos_ = 0;

  // --- Vector-native path (OpenVectorized + NextVectorImpl) ---
  /// Chain terminator / empty bucket sentinel.
  static constexpr uint32_t kChainEnd = 0xffffffffu;
  /// Columnar build side: all build rows (gather source), their
  /// evaluated key vectors, and per-row full hashes. Entries are linked
  /// head-first in REVERSE row order so every chain walks in ascending
  /// build-row order — exactly the row path's bucket arrival order.
  VectorProjection build_vp_;
  std::vector<Vector> build_key_vecs_;
  std::vector<uint64_t> build_hashes_;
  std::vector<uint32_t> heads_;       ///< bucket -> first entry (row id)
  std::vector<uint32_t> chain_next_;  ///< entry -> next entry in chain
  uint64_t bucket_mask_ = 0;          ///< heads_.size() - 1 (power of two)
  /// Probe-side staging, pooled output lanes, and per-lane match state.
  VectorProjection out_vp_;
  VectorProjection residual_scratch_;
  RowBatch probe_batch_;
  VectorProjection probe_src_vp_;
  VectorProjection* probe_vp_ = nullptr;
  std::vector<Vector> probe_key_vecs_;
  std::vector<uint64_t> probe_hashes_;
  size_t probe_lane_pos_ = 0;   ///< next selection slot in probe_vp_
  uint32_t current_lane_ = 0;   ///< current probe row position
  bool probe_input_eof_ = false;
  std::vector<size_t> vec_candidates_;
  size_t vec_candidate_pos_ = 0;
  size_t vector_capacity_ = RowBatch::kDefaultCapacity;
};

/// Sort-merge join on equi-key conjuncts (inner / left outer) with an
/// optional residual condition: both inputs are materialized, sorted by
/// their key vectors, and merged with duplicate-block re-scanning.
/// NULL keys never match (SQL equi-join semantics).
class SortMergeJoinOp : public PhysicalOperator {
 public:
  SortMergeJoinOp(Schema schema, PhysicalOperatorPtr left,
                  PhysicalOperatorPtr right, std::vector<ExprPtr> left_keys,
                  std::vector<ExprPtr> right_keys, ExprPtr residual,
                  JoinType join_type)
      : PhysicalOperator(std::move(schema)),
        left_(std::move(left)),
        right_(std::move(right)),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        residual_(std::move(residual)),
        join_type_(join_type) {}
  const char* name() const override { return "sort_merge_join"; }
  void AppendChildren(
      std::vector<const PhysicalOperator*>* out) const override {
    out->push_back(left_.get());
    out->push_back(right_.get());
  }

 protected:
  Status OpenImpl() override;
  Status NextImpl(Row* row, bool* eof) override;

 private:
  struct Keyed {
    std::vector<Value> key;
    Row row;
    bool has_null_key = false;
  };

  Status Materialize(PhysicalOperator* input,
                     const std::vector<ExprPtr>& keys,
                     std::vector<Keyed>* out);

  PhysicalOperatorPtr left_;
  PhysicalOperatorPtr right_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  ExprPtr residual_;
  JoinType join_type_;

  std::vector<Keyed> left_rows_;
  std::vector<Keyed> right_rows_;
  size_t li_ = 0;            ///< current left row
  size_t rblock_start_ = 0;  ///< first right row of the matching block
  size_t rblock_end_ = 0;    ///< one past the matching block
  size_t rpos_ = 0;          ///< cursor within the block
  bool block_valid_ = false;
  bool left_matched_ = false;
  size_t right_width_ = 0;
};

/// Full-materialization stable sort.
class SortOp : public PhysicalOperator {
 public:
  SortOp(Schema schema, PhysicalOperatorPtr child, std::vector<SortKey> keys)
      : PhysicalOperator(std::move(schema)),
        child_(std::move(child)),
        keys_(std::move(keys)) {}
  const char* name() const override { return "sort"; }
  void AppendChildren(
      std::vector<const PhysicalOperator*>* out) const override {
    out->push_back(child_.get());
  }

 protected:
  Status OpenImpl() override;
  Status NextImpl(Row* row, bool* eof) override;

 private:
  PhysicalOperatorPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

/// Hash aggregation (grouped or global).
class HashAggregateOp : public PhysicalOperator {
 public:
  HashAggregateOp(Schema schema, PhysicalOperatorPtr child,
                  std::vector<ExprPtr> group_by,
                  std::vector<AggregateCall> aggregates)
      : PhysicalOperator(std::move(schema)),
        child_(std::move(child)),
        group_by_(std::move(group_by)),
        aggregates_(std::move(aggregates)) {}
  const char* name() const override { return "hash_aggregate"; }
  void AppendChildren(
      std::vector<const PhysicalOperator*>* out) const override {
    out->push_back(child_.get());
  }

 protected:
  Status OpenImpl() override;
  Status NextImpl(Row* row, bool* eof) override;

 private:
  PhysicalOperatorPtr child_;
  std::vector<ExprPtr> group_by_;
  std::vector<AggregateCall> aggregates_;
  std::vector<Row> results_;
  size_t pos_ = 0;
};

/// Reporting-function (window) operator: materializes its input,
/// evaluates every WindowCall with an O(1)-amortized-per-row frame
/// engine (see exec/window_frame.h), appends one column per call, and
/// re-emits rows in their original input order.
///
/// Partition-parallel: after the sort, the per-partition sweeps are
/// independent, so partitions are chunked across the shared ThreadPool
/// when the input is large enough and `workers` allows it. Partitions
/// are never split and each task writes disjoint output slots, so the
/// result is byte-identical to the single-threaded path.
class WindowOp : public PhysicalOperator {
 public:
  /// `workers`: 1 = single-threaded, n > 1 = up to n parallel tasks,
  /// 0 = auto (hardware concurrency). `parallel_min_rows` gates the
  /// parallel path by input size.
  WindowOp(Schema schema, PhysicalOperatorPtr child,
           std::vector<WindowCall> calls, int workers = 1,
           int64_t parallel_min_rows = 4096)
      : PhysicalOperator(std::move(schema)),
        child_(std::move(child)),
        calls_(std::move(calls)),
        workers_(workers),
        parallel_min_rows_(parallel_min_rows) {}
  const char* name() const override { return "window"; }
  void AppendChildren(
      std::vector<const PhysicalOperator*>* out) const override {
    out->push_back(child_.get());
  }

 protected:
  Status OpenImpl() override;
  Status NextImpl(Row* row, bool* eof) override;

 private:
  /// Shared read-only inputs of one call's per-partition sweeps.
  struct CallContext {
    const WindowCall* call = nullptr;
    /// Per row: evaluated aggregate argument (empty unless kAggregate
    /// with an argument).
    std::vector<Value> args;
    /// Per row: partition keys followed by order keys.
    std::vector<std::vector<Value>> keys;
    /// Row indices sorted by (partition keys, order keys).
    std::vector<size_t> order;
  };

  Status ComputeCall(const WindowCall& call, std::vector<Value>* out) const;

  /// Evaluates one partition (the sorted index range [begin, end) of
  /// ctx.order) into the matching slots of *out. Safe to run
  /// concurrently for disjoint ranges.
  Status ProcessPartition(const CallContext& ctx, size_t begin, size_t end,
                          std::vector<Value>* out) const;

  /// Resolved worker count for an input of `rows` rows split into
  /// `partitions` partitions; 1 means run single-threaded.
  int EffectiveWorkers(size_t rows, size_t partitions) const;

  PhysicalOperatorPtr child_;
  std::vector<WindowCall> calls_;
  int workers_;
  int64_t parallel_min_rows_;
  std::vector<Row> rows_;
  std::vector<std::vector<Value>> extra_columns_;
  size_t pos_ = 0;
};

class UnionAllOp : public PhysicalOperator {
 public:
  UnionAllOp(Schema schema, std::vector<PhysicalOperatorPtr> children)
      : PhysicalOperator(std::move(schema)), children_(std::move(children)) {}
  const char* name() const override { return "union_all"; }
  bool VectorNative() const override { return true; }
  void AppendChildren(
      std::vector<const PhysicalOperator*>* out) const override {
    for (const PhysicalOperatorPtr& c : children_) out->push_back(c.get());
  }

 protected:
  Status OpenImpl() override;
  Status NextImpl(Row* row, bool* eof) override;
  Status NextBatchImpl(RowBatch* batch, bool* eof) override;
  Status NextVectorImpl(VectorProjection** out, bool* eof) override;

 private:
  std::vector<PhysicalOperatorPtr> children_;
  size_t current_ = 0;
};

class LimitOp : public PhysicalOperator {
 public:
  LimitOp(Schema schema, PhysicalOperatorPtr child, int64_t limit)
      : PhysicalOperator(std::move(schema)),
        child_(std::move(child)),
        limit_(limit) {}
  const char* name() const override { return "limit"; }
  bool VectorNative() const override { return true; }
  void AppendChildren(
      std::vector<const PhysicalOperator*>* out) const override {
    out->push_back(child_.get());
  }

 protected:
  Status OpenImpl() override;
  Status NextImpl(Row* row, bool* eof) override;
  Status NextBatchImpl(RowBatch* batch, bool* eof) override;
  /// Truncates the child projection's selection to the rows remaining
  /// under the limit and passes the projection through.
  Status NextVectorImpl(VectorProjection** out, bool* eof) override;

 private:
  PhysicalOperatorPtr child_;
  int64_t limit_;
  int64_t produced_ = 0;
};

}  // namespace rfv

#endif  // RFVIEW_EXEC_OPERATORS_H_
