#ifndef RFVIEW_EXEC_WINDOW_FRAME_H_
#define RFVIEW_EXEC_WINDOW_FRAME_H_

#include <cstdint>
#include <deque>

#include "common/value.h"
#include "plan/logical_plan.h"

namespace rfv {

/// Incremental aggregate over a sliding index window.
///
/// The window is advanced with Push (new highest position) and PopBefore
/// (raise the lowest position); both endpoints must be non-decreasing
/// over a partition, which holds for every ROWS frame. This realizes the
/// paper's pipelined computation scheme (§2.2): per output row the
/// engine does O(1) amortized work instead of re-scanning the w-row
/// window, with a cache of at most w+2 entries — compare the recursion
///   x̃_k = x̃_{k-1} + x_{k+h} − x_{k-l-1}.
///
/// SUM/COUNT/AVG maintain running sums; MIN/MAX maintain a monotonic
/// deque (their semi-algebraic nature — no subtraction — is exactly why
/// the paper handles them separately in the derivation algorithms).
class SlidingAggregate {
 public:
  /// `out_type` is the call's result type (drives int vs. double SUM).
  SlidingAggregate(AggFn fn, bool is_count_star, DataType out_type);

  /// Clears the window (new partition).
  void Reset();

  /// Window gains `value` at `pos`; `pos` must exceed all previous ones.
  void Push(const Value& value, size_t pos);

  /// Window drops every position < `pos`.
  void PopBefore(size_t pos);

  /// Aggregate of the current window (NULL for empty SUM/AVG/MIN/MAX,
  /// 0 for empty COUNT).
  Value Current() const;

  /// True when an INT64 SUM's current window total does not fit in
  /// int64_t. Checked against the *current* total only: the 128-bit
  /// accumulator tolerates transient out-of-range values while the
  /// sweep pushes ahead of popping, so a superset frame that briefly
  /// overshoots does not poison frames whose true sum is in range.
  bool overflowed() const;

 private:
  struct Entry {
    size_t pos;
    Value value;  ///< NULL entries participate in COUNT(*) only
  };

  /// Neumaier-compensated accumulation into sum_double_/comp_double_.
  /// Removal adds the negated value, so long sliding windows do not
  /// accumulate cancellation drift the way a bare += / -= pair does.
  void AddDouble(double v);

  AggFn fn_;
  bool is_count_star_;
  DataType out_type_;

  // SUM/COUNT/AVG state.
  int64_t rows_ = 0;       ///< rows in window (COUNT(*))
  int64_t non_null_ = 0;   ///< non-NULL arguments in window
  /// 128-bit so any window of int64 values is exactly representable;
  /// overflow is reported (overflowed()) rather than wrapped.
  __int128 sum_int_ = 0;
  double sum_double_ = 0;
  double comp_double_ = 0;  ///< Neumaier compensation term

  /// Window contents for removal accounting (SUM/COUNT/AVG) or the
  /// monotonic deque (MIN/MAX; entries kept in extreme-first order).
  std::deque<Entry> entries_;
};

}  // namespace rfv

#endif  // RFVIEW_EXEC_WINDOW_FRAME_H_
