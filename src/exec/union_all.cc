#include "exec/operators.h"

namespace rfv {

Status UnionAllOp::OpenImpl() {
  current_ = 0;
  for (auto& child : children_) {
    RFV_RETURN_IF_ERROR(child->Open());
  }
  return Status::OK();
}

Status UnionAllOp::NextImpl(Row* row, bool* eof) {
  while (current_ < children_.size()) {
    bool child_eof = false;
    RFV_RETURN_IF_ERROR(children_[current_]->Next(row, &child_eof));
    if (!child_eof) {
      *eof = false;
      return Status::OK();
    }
    ++current_;
  }
  *eof = true;
  return Status::OK();
}

Status UnionAllOp::NextBatchImpl(RowBatch* batch, bool* eof) {
  // The current child fills the output batch directly (its NextBatch
  // shell clears it first, so batches are never merged across children);
  // a drained child hands over to the next one on the following call.
  while (current_ < children_.size()) {
    bool child_eof = false;
    RFV_RETURN_IF_ERROR(children_[current_]->NextBatch(batch, &child_eof));
    if (child_eof) ++current_;
    if (!batch->empty()) break;
  }
  *eof = current_ >= children_.size();
  return Status::OK();
}

Status UnionAllOp::NextVectorImpl(VectorProjection** out, bool* eof) {
  // The current child's projection passes through untouched; a drained
  // child hands over to the next one within the same call, skipping
  // empty vectors, so interleaved empty children never surface.
  while (current_ < children_.size()) {
    VectorProjection* vp = nullptr;
    bool child_eof = false;
    RFV_RETURN_IF_ERROR(children_[current_]->NextVector(&vp, &child_eof));
    if (child_eof) ++current_;
    if (vp != nullptr && vp->NumSelected() > 0) {
      *out = vp;
      *eof = current_ >= children_.size();
      return Status::OK();
    }
  }
  *eof = true;
  return Status::OK();
}

}  // namespace rfv
