#include "exec/vector.h"

namespace rfv {

Value Vector::GetValue(size_t i) const {
  switch (tag(i)) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kInt64:
      return Value::Int(i64_[i]);
    case DataType::kDouble:
      return Value::Double(f64_[i]);
    case DataType::kBool:
      return Value::Bool(i64_[i] != 0);
    case DataType::kString:
      return Value::String(str_[i]);
  }
  return Value::Null();
}

void Vector::SetValue(size_t i, const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      SetNull(i);
      break;
    case DataType::kInt64:
      SetInt(i, v.AsInt());
      break;
    case DataType::kDouble:
      SetDouble(i, v.AsDouble());
      break;
    case DataType::kBool:
      SetBool(i, v.AsBool());
      break;
    case DataType::kString:
      SetString(i, v.AsString());
      break;
  }
}

void VectorProjection::FromBatch(size_t num_columns, const RowBatch& batch) {
  Reset(num_columns, batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const Row& row = batch.row(i);
    RFV_CHECK_MSG(row.size() == num_columns,
                  "row width " << row.size() << " != projection width "
                               << num_columns);
    for (size_t c = 0; c < num_columns; ++c) {
      columns_[c].SetValue(i, row[c]);
    }
  }
}

void VectorProjection::MaterializeRow(size_t pos, Row* out) const {
  std::vector<Value> values;
  values.reserve(columns_.size());
  for (const Vector& col : columns_) values.push_back(col.GetValue(pos));
  *out = Row(std::move(values));
}

void VectorProjection::AppendSelectedTo(std::vector<Row>* out) const {
  out->reserve(out->size() + sel_.size());
  for (size_t k = 0; k < sel_.size(); ++k) {
    std::vector<Value> values;
    values.reserve(columns_.size());
    const uint32_t pos = sel_[k];
    for (const Vector& col : columns_) values.push_back(col.GetValue(pos));
    out->emplace_back(std::move(values));
  }
}

void HashVectorColumns(const std::vector<const Vector*>& keys,
                       const SelectionVector& sel, size_t num_rows,
                       std::vector<uint64_t>* out) {
  if (out->size() < num_rows) out->resize(num_rows);
  constexpr uint64_t kSeed = 0xcbf29ce484222325ull;  // RowColumnsHash seed
  for (size_t k = 0; k < sel.size(); ++k) (*out)[sel[k]] = kSeed;
  // Column-at-a-time: the tag branch inside VectorCellHash predicts
  // perfectly on homogeneous columns, and each pass streams one lane.
  for (const Vector* col : keys) {
    for (size_t k = 0; k < sel.size(); ++k) {
      const uint32_t p = sel[k];
      uint64_t& h = (*out)[p];
      h ^= VectorCellHash(*col, p) + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
    }
  }
}

}  // namespace rfv
