#include "exec/window_frame.h"

#include "common/logging.h"

namespace rfv {

SlidingAggregate::SlidingAggregate(AggFn fn, bool is_count_star,
                                   DataType out_type)
    : fn_(fn), is_count_star_(is_count_star), out_type_(out_type) {}

void SlidingAggregate::Reset() {
  rows_ = 0;
  non_null_ = 0;
  sum_int_ = 0;
  sum_double_ = 0;
  entries_.clear();
}

void SlidingAggregate::Push(const Value& value, size_t pos) {
  ++rows_;
  if (fn_ == AggFn::kMin || fn_ == AggFn::kMax) {
    if (value.is_null()) return;
    // Monotonic deque: drop dominated entries from the back, keep the
    // front as the current extreme.
    while (!entries_.empty()) {
      const int c = entries_.back().value.Compare(value);
      const bool dominated = fn_ == AggFn::kMin ? c >= 0 : c <= 0;
      if (!dominated) break;
      entries_.pop_back();
    }
    entries_.push_back(Entry{pos, value});
    return;
  }
  if (!value.is_null()) {
    ++non_null_;
    if (out_type_ == DataType::kInt64 && fn_ == AggFn::kSum) {
      sum_int_ += value.AsInt();
    } else if (fn_ == AggFn::kSum || fn_ == AggFn::kAvg) {
      sum_double_ += value.ToDouble();
    }
  }
  // COUNT needs no stored values, but removal accounting does.
  entries_.push_back(Entry{pos, value});
}

void SlidingAggregate::PopBefore(size_t pos) {
  if (fn_ == AggFn::kMin || fn_ == AggFn::kMax) {
    while (!entries_.empty() && entries_.front().pos < pos) {
      entries_.pop_front();
    }
    // rows_ is not tracked per-position for MIN/MAX (not needed).
    return;
  }
  while (!entries_.empty() && entries_.front().pos < pos) {
    const Entry& e = entries_.front();
    --rows_;
    if (!e.value.is_null()) {
      --non_null_;
      if (out_type_ == DataType::kInt64 && fn_ == AggFn::kSum) {
        sum_int_ -= e.value.AsInt();
      } else if (fn_ == AggFn::kSum || fn_ == AggFn::kAvg) {
        sum_double_ -= e.value.ToDouble();
      }
    }
    entries_.pop_front();
  }
}

Value SlidingAggregate::Current() const {
  switch (fn_) {
    case AggFn::kCount:
      return Value::Int(is_count_star_ ? rows_ : non_null_);
    case AggFn::kSum:
      if (non_null_ == 0) return Value::Null();
      return out_type_ == DataType::kInt64 ? Value::Int(sum_int_)
                                           : Value::Double(sum_double_);
    case AggFn::kAvg:
      if (non_null_ == 0) return Value::Null();
      return Value::Double(sum_double_ / static_cast<double>(non_null_));
    case AggFn::kMin:
    case AggFn::kMax:
      if (entries_.empty()) return Value::Null();
      return entries_.front().value;
  }
  return Value::Null();
}

}  // namespace rfv
