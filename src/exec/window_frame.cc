#include "exec/window_frame.h"

#include <cmath>
#include <cstdint>

#include "common/logging.h"

namespace rfv {

SlidingAggregate::SlidingAggregate(AggFn fn, bool is_count_star,
                                   DataType out_type)
    : fn_(fn), is_count_star_(is_count_star), out_type_(out_type) {}

void SlidingAggregate::Reset() {
  rows_ = 0;
  non_null_ = 0;
  sum_int_ = 0;
  sum_double_ = 0;
  comp_double_ = 0;
  entries_.clear();
}

void SlidingAggregate::AddDouble(double v) {
  // Neumaier's variant of Kahan summation: the compensation term picks
  // up the low-order bits lost when the smaller magnitude operand is
  // absorbed into the larger one.
  const double t = sum_double_ + v;
  if (std::abs(sum_double_) >= std::abs(v)) {
    comp_double_ += (sum_double_ - t) + v;
  } else {
    comp_double_ += (v - t) + sum_double_;
  }
  sum_double_ = t;
}

void SlidingAggregate::Push(const Value& value, size_t pos) {
  ++rows_;
  if (fn_ == AggFn::kMin || fn_ == AggFn::kMax) {
    if (value.is_null()) return;
    // Monotonic deque: drop dominated entries from the back, keep the
    // front as the current extreme.
    while (!entries_.empty()) {
      const int c = entries_.back().value.Compare(value);
      const bool dominated = fn_ == AggFn::kMin ? c >= 0 : c <= 0;
      if (!dominated) break;
      entries_.pop_back();
    }
    entries_.push_back(Entry{pos, value});
    return;
  }
  if (!value.is_null()) {
    ++non_null_;
    if (out_type_ == DataType::kInt64 && fn_ == AggFn::kSum) {
      sum_int_ += value.AsInt();
    } else if (fn_ == AggFn::kSum || fn_ == AggFn::kAvg) {
      AddDouble(value.ToDouble());
    }
  }
  // COUNT needs no stored values, but removal accounting does.
  entries_.push_back(Entry{pos, value});
}

void SlidingAggregate::PopBefore(size_t pos) {
  if (fn_ == AggFn::kMin || fn_ == AggFn::kMax) {
    while (!entries_.empty() && entries_.front().pos < pos) {
      entries_.pop_front();
    }
    // rows_ is not tracked per-position for MIN/MAX (not needed).
    return;
  }
  while (!entries_.empty() && entries_.front().pos < pos) {
    const Entry& e = entries_.front();
    --rows_;
    if (!e.value.is_null()) {
      --non_null_;
      if (out_type_ == DataType::kInt64 && fn_ == AggFn::kSum) {
        sum_int_ -= e.value.AsInt();
      } else if (fn_ == AggFn::kSum || fn_ == AggFn::kAvg) {
        AddDouble(-e.value.ToDouble());
      }
    }
    entries_.pop_front();
  }
}

bool SlidingAggregate::overflowed() const {
  if (fn_ != AggFn::kSum || out_type_ != DataType::kInt64) return false;
  if (non_null_ == 0) return false;
  return sum_int_ > static_cast<__int128>(INT64_MAX) ||
         sum_int_ < static_cast<__int128>(INT64_MIN);
}

Value SlidingAggregate::Current() const {
  switch (fn_) {
    case AggFn::kCount:
      return Value::Int(is_count_star_ ? rows_ : non_null_);
    case AggFn::kSum:
      if (non_null_ == 0) return Value::Null();
      return out_type_ == DataType::kInt64
                 ? Value::Int(static_cast<int64_t>(sum_int_))
                 : Value::Double(sum_double_ + comp_double_);
    case AggFn::kAvg:
      if (non_null_ == 0) return Value::Null();
      return Value::Double((sum_double_ + comp_double_) /
                           static_cast<double>(non_null_));
    case AggFn::kMin:
    case AggFn::kMax:
      if (entries_.empty()) return Value::Null();
      return entries_.front().value;
  }
  return Value::Null();
}

}  // namespace rfv
