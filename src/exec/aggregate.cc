#include "exec/operators.h"

#include "common/logging.h"
#include "exec/vector_eval.h"
#include "expr/eval.h"

namespace rfv {

namespace {

/// Streaming accumulator for one aggregate call. NULL inputs are ignored
/// (SQL semantics); COUNT(*) counts rows regardless.
struct Accumulator {
  const AggregateCall* call = nullptr;
  int64_t count = 0;
  int64_t sum_int = 0;
  double sum_double = 0;
  Value extreme;  ///< running MIN/MAX
  bool has_value = false;

  void AddRowForCountStar() { ++count; }

  void Add(const Value& v) {
    if (v.is_null()) return;
    ++count;
    has_value = true;
    switch (call->fn) {
      case AggFn::kSum:
        if (call->output_type == DataType::kInt64) {
          sum_int += v.AsInt();
        } else {
          sum_double += v.ToDouble();
        }
        break;
      case AggFn::kAvg:
        sum_double += v.ToDouble();
        break;
      case AggFn::kCount:
        break;
      case AggFn::kMin:
        if (extreme.is_null() || v.Compare(extreme) < 0) extreme = v;
        break;
      case AggFn::kMax:
        if (extreme.is_null() || v.Compare(extreme) > 0) extreme = v;
        break;
    }
  }

  /// Vector-lane variant of Add: same semantics (including the same
  /// failure modes via Value boxing on unexpected tags), but SUM/AVG/
  /// COUNT never materialize a Value for the common numeric tags.
  void AddFromVector(const Vector& v, size_t i) {
    if (v.is_null(i)) return;
    ++count;
    has_value = true;
    const DataType t = v.tag(i);
    const bool numeric = t == DataType::kInt64 || t == DataType::kDouble;
    switch (call->fn) {
      case AggFn::kSum:
        if (call->output_type == DataType::kInt64) {
          sum_int += t == DataType::kInt64 ? v.i64(i) : v.GetValue(i).AsInt();
        } else {
          sum_double += numeric ? v.ToDouble(i) : v.GetValue(i).ToDouble();
        }
        break;
      case AggFn::kAvg:
        sum_double += numeric ? v.ToDouble(i) : v.GetValue(i).ToDouble();
        break;
      case AggFn::kCount:
        break;
      case AggFn::kMin: {
        Value val = v.GetValue(i);
        if (extreme.is_null() || val.Compare(extreme) < 0) {
          extreme = std::move(val);
        }
        break;
      }
      case AggFn::kMax: {
        Value val = v.GetValue(i);
        if (extreme.is_null() || val.Compare(extreme) > 0) {
          extreme = std::move(val);
        }
        break;
      }
    }
  }

  Value Finish() const {
    switch (call->fn) {
      case AggFn::kCount:
        return Value::Int(count);
      case AggFn::kSum:
        if (!has_value) return Value::Null();
        return call->output_type == DataType::kInt64
                   ? Value::Int(sum_int)
                   : Value::Double(sum_double);
      case AggFn::kAvg:
        if (count == 0) return Value::Null();
        return Value::Double(sum_double / static_cast<double>(count));
      case AggFn::kMin:
      case AggFn::kMax:
        return extreme;
    }
    return Value::Null();
  }
};

}  // namespace

Status HashAggregateOp::OpenImpl() {
  results_.clear();
  pos_ = 0;
  RFV_RETURN_IF_ERROR(child_->Open());

  // Group state; insertion order is preserved for deterministic output.
  std::unordered_map<std::vector<Value>, size_t, RowColumnsHash> group_index;
  std::vector<std::vector<Value>> group_keys;
  std::vector<std::vector<Accumulator>> group_accs;

  const auto new_group = [&](const std::vector<Value>& key) -> size_t {
    group_keys.push_back(key);
    std::vector<Accumulator> accs(aggregates_.size());
    for (size_t i = 0; i < aggregates_.size(); ++i) {
      accs[i].call = &aggregates_[i];
    }
    group_accs.push_back(std::move(accs));
    return group_keys.size() - 1;
  };

  // Global aggregation emits one row even for empty input.
  if (group_by_.empty()) {
    group_index[{}] = new_group({});
  }

  // Vectorized ingest: keys and aggregate arguments evaluate once per
  // vector in columnar loops, and rows are folded straight from the
  // lanes — no per-row Value boxing on the numeric paths. Rows are
  // visited in selection order (ascending), so group insertion order and
  // floating-point accumulation order match the row path exactly.
  // Gated on the plan-wide knob, not on child_->vectorized(): a row-only
  // child (merge band join) still serves NextVector through the
  // transpose fallback, and the columnar key/argument evaluation wins
  // even when the input arrives as transposed batches.
  if (vector_exec_enabled()) {
    std::vector<Vector> key_vecs(group_by_.size());
    std::vector<Vector> arg_vecs(aggregates_.size());
    // Single-int64-key fast path: group lookup on the raw int64 lane.
    // Migrates one-way to the generic hash-bucketed lookup the first
    // time a non-int64, non-NULL key appears (the shared bulk-hash
    // kernel then unifies Int and Double keys exactly as the row path's
    // RowColumnsHash does).
    bool int_fast = group_by_.size() == 1;
    std::unordered_map<int64_t, size_t> int_groups;
    constexpr size_t kNoGroup = static_cast<size_t>(-1);
    size_t null_group = kNoGroup;
    // Generic path: the key columns of each vector are bulk-hashed once
    // by the HashVectorColumns kernel the joins use (hash-identical to
    // RowColumnsHash), and groups are found by full-hash bucket plus a
    // typed cell-vs-stored-key compare — the incoming key is boxed only
    // when it starts a new group.
    std::unordered_map<uint64_t, std::vector<size_t>> generic_buckets;
    std::vector<uint64_t> key_hashes;
    std::vector<const Vector*> key_ptrs(group_by_.size());
    bool input_eof = false;
    while (!input_eof) {
      VectorProjection* vp = nullptr;
      RFV_RETURN_IF_ERROR(child_->NextVector(&vp, &input_eof));
      if (vp == nullptr || vp->NumSelected() == 0) continue;
      const SelectionVector& sel = vp->sel();
      for (size_t g = 0; g < group_by_.size(); ++g) {
        RFV_RETURN_IF_ERROR(
            VectorEvaluator::Eval(*group_by_[g], *vp, sel, &key_vecs[g]));
        key_ptrs[g] = &key_vecs[g];
      }
      for (size_t a = 0; a < aggregates_.size(); ++a) {
        if (!aggregates_[a].is_count_star) {
          RFV_RETURN_IF_ERROR(VectorEvaluator::Eval(*aggregates_[a].arg, *vp,
                                                    sel, &arg_vecs[a]));
        }
      }
      // Bulk-hash the keys lazily: only when this vector actually needs
      // generic lookups (the int fast path may cover the whole input).
      bool hashes_ready = false;
      const auto ensure_hashes = [&]() {
        if (hashes_ready) return;
        HashVectorColumns(key_ptrs, sel, vp->num_rows(), &key_hashes);
        hashes_ready = true;
      };
      if (!group_by_.empty() && !int_fast) ensure_hashes();
      for (size_t k = 0; k < sel.size(); ++k) {
        const uint32_t i = sel[k];
        size_t gi = 0;
        if (!group_by_.empty()) {
          if (int_fast) {
            const DataType t = key_vecs[0].tag(i);
            if (t == DataType::kInt64) {
              const int64_t kv = key_vecs[0].i64(i);
              const auto it = int_groups.find(kv);
              if (it != int_groups.end()) {
                gi = it->second;
              } else {
                gi = new_group({Value::Int(kv)});
                int_groups.emplace(kv, gi);
              }
            } else if (t == DataType::kNull) {
              if (null_group == kNoGroup) {
                null_group = new_group({Value::Null()});
              }
              gi = null_group;
            } else {
              int_fast = false;
              for (size_t g2 = 0; g2 < group_keys.size(); ++g2) {
                generic_buckets[RowColumnsHash{}(group_keys[g2])].push_back(
                    g2);
              }
              ensure_hashes();
            }
          }
          if (!int_fast) {
            const uint64_t h = key_hashes[i];
            size_t found = kNoGroup;
            const auto it = generic_buckets.find(h);
            if (it != generic_buckets.end()) {
              for (const size_t cand : it->second) {
                bool eq = true;
                for (size_t g = 0; g < group_by_.size(); ++g) {
                  if (!VectorCellEqualsValue(key_vecs[g], i,
                                             group_keys[cand][g])) {
                    eq = false;
                    break;
                  }
                }
                if (eq) {
                  found = cand;
                  break;
                }
              }
            }
            if (found != kNoGroup) {
              gi = found;
            } else {
              std::vector<Value> key;
              key.reserve(group_by_.size());
              for (size_t g = 0; g < group_by_.size(); ++g) {
                key.push_back(key_vecs[g].GetValue(i));
              }
              gi = new_group(key);
              generic_buckets[h].push_back(gi);
            }
          }
        }
        std::vector<Accumulator>& accs = group_accs[gi];
        for (size_t a = 0; a < aggregates_.size(); ++a) {
          if (aggregates_[a].is_count_star) {
            accs[a].AddRowForCountStar();
          } else {
            accs[a].AddFromVector(arg_vecs[a], i);
          }
        }
      }
    }
    results_.reserve(group_keys.size());
    for (size_t gi = 0; gi < group_keys.size(); ++gi) {
      std::vector<Value> out = std::move(group_keys[gi]);
      for (const Accumulator& acc : group_accs[gi]) {
        out.push_back(acc.Finish());
      }
      results_.push_back(Row(std::move(out)));
    }
    NoteBufferedRows(results_.size());
    return Status::OK();
  }

  // Batch pull keeps the aggregation streaming (only the accumulators
  // are buffered, never the input).
  RowBatch batch;
  bool input_eof = false;
  while (!input_eof) {
    RFV_RETURN_IF_ERROR(child_->NextBatch(&batch, &input_eof));
    for (size_t bi = 0; bi < batch.size(); ++bi) {
      const Row& row = batch.row(bi);
      std::vector<Value> key;
      key.reserve(group_by_.size());
      for (const ExprPtr& g : group_by_) {
        Value v;
        RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(*g, row));
        key.push_back(std::move(v));
      }
      size_t gi;
      const auto it = group_index.find(key);
      if (it != group_index.end()) {
        gi = it->second;
      } else {
        gi = new_group(key);
        group_index.emplace(std::move(key), gi);
      }
      std::vector<Accumulator>& accs = group_accs[gi];
      for (size_t i = 0; i < aggregates_.size(); ++i) {
        if (aggregates_[i].is_count_star) {
          accs[i].AddRowForCountStar();
        } else {
          Value v;
          RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(*aggregates_[i].arg, row));
          accs[i].Add(v);
        }
      }
    }
  }

  results_.reserve(group_keys.size());
  for (size_t gi = 0; gi < group_keys.size(); ++gi) {
    std::vector<Value> out = std::move(group_keys[gi]);
    for (const Accumulator& acc : group_accs[gi]) {
      out.push_back(acc.Finish());
    }
    results_.push_back(Row(std::move(out)));
  }
  NoteBufferedRows(results_.size());
  return Status::OK();
}

Status HashAggregateOp::NextImpl(Row* row, bool* eof) {
  if (pos_ >= results_.size()) {
    *eof = true;
    return Status::OK();
  }
  *row = std::move(results_[pos_++]);
  *eof = false;
  return Status::OK();
}

}  // namespace rfv
