#include "exec/operators.h"

#include "common/logging.h"
#include "expr/eval.h"

namespace rfv {

namespace {

/// Streaming accumulator for one aggregate call. NULL inputs are ignored
/// (SQL semantics); COUNT(*) counts rows regardless.
struct Accumulator {
  const AggregateCall* call = nullptr;
  int64_t count = 0;
  int64_t sum_int = 0;
  double sum_double = 0;
  Value extreme;  ///< running MIN/MAX
  bool has_value = false;

  void AddRowForCountStar() { ++count; }

  void Add(const Value& v) {
    if (v.is_null()) return;
    ++count;
    has_value = true;
    switch (call->fn) {
      case AggFn::kSum:
        if (call->output_type == DataType::kInt64) {
          sum_int += v.AsInt();
        } else {
          sum_double += v.ToDouble();
        }
        break;
      case AggFn::kAvg:
        sum_double += v.ToDouble();
        break;
      case AggFn::kCount:
        break;
      case AggFn::kMin:
        if (extreme.is_null() || v.Compare(extreme) < 0) extreme = v;
        break;
      case AggFn::kMax:
        if (extreme.is_null() || v.Compare(extreme) > 0) extreme = v;
        break;
    }
  }

  Value Finish() const {
    switch (call->fn) {
      case AggFn::kCount:
        return Value::Int(count);
      case AggFn::kSum:
        if (!has_value) return Value::Null();
        return call->output_type == DataType::kInt64
                   ? Value::Int(sum_int)
                   : Value::Double(sum_double);
      case AggFn::kAvg:
        if (count == 0) return Value::Null();
        return Value::Double(sum_double / static_cast<double>(count));
      case AggFn::kMin:
      case AggFn::kMax:
        return extreme;
    }
    return Value::Null();
  }
};

}  // namespace

Status HashAggregateOp::OpenImpl() {
  results_.clear();
  pos_ = 0;
  RFV_RETURN_IF_ERROR(child_->Open());

  // Group state; insertion order is preserved for deterministic output.
  std::unordered_map<std::vector<Value>, size_t, RowColumnsHash> group_index;
  std::vector<std::vector<Value>> group_keys;
  std::vector<std::vector<Accumulator>> group_accs;

  const auto new_group = [&](const std::vector<Value>& key) -> size_t {
    group_keys.push_back(key);
    std::vector<Accumulator> accs(aggregates_.size());
    for (size_t i = 0; i < aggregates_.size(); ++i) {
      accs[i].call = &aggregates_[i];
    }
    group_accs.push_back(std::move(accs));
    return group_keys.size() - 1;
  };

  // Global aggregation emits one row even for empty input.
  if (group_by_.empty()) {
    group_index[{}] = new_group({});
  }

  // Batch pull keeps the aggregation streaming (only the accumulators
  // are buffered, never the input).
  RowBatch batch;
  bool input_eof = false;
  while (!input_eof) {
    RFV_RETURN_IF_ERROR(child_->NextBatch(&batch, &input_eof));
    for (size_t bi = 0; bi < batch.size(); ++bi) {
      const Row& row = batch.row(bi);
      std::vector<Value> key;
      key.reserve(group_by_.size());
      for (const ExprPtr& g : group_by_) {
        Value v;
        RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(*g, row));
        key.push_back(std::move(v));
      }
      size_t gi;
      const auto it = group_index.find(key);
      if (it != group_index.end()) {
        gi = it->second;
      } else {
        gi = new_group(key);
        group_index.emplace(std::move(key), gi);
      }
      std::vector<Accumulator>& accs = group_accs[gi];
      for (size_t i = 0; i < aggregates_.size(); ++i) {
        if (aggregates_[i].is_count_star) {
          accs[i].AddRowForCountStar();
        } else {
          Value v;
          RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(*aggregates_[i].arg, row));
          accs[i].Add(v);
        }
      }
    }
  }

  results_.reserve(group_keys.size());
  for (size_t gi = 0; gi < group_keys.size(); ++gi) {
    std::vector<Value> out = std::move(group_keys[gi]);
    for (const Accumulator& acc : group_accs[gi]) {
      out.push_back(acc.Finish());
    }
    results_.push_back(Row(std::move(out)));
  }
  NoteBufferedRows(results_.size());
  return Status::OK();
}

Status HashAggregateOp::NextImpl(Row* row, bool* eof) {
  if (pos_ >= results_.size()) {
    *eof = true;
    return Status::OK();
  }
  *row = std::move(results_[pos_++]);
  *eof = false;
  return Status::OK();
}

}  // namespace rfv
