#include "exec/operators.h"

#include <algorithm>

#include "expr/eval.h"

namespace rfv {

Status SortOp::OpenImpl() {
  rows_.clear();
  pos_ = 0;
  RFV_RETURN_IF_ERROR(child_->Open());

  std::vector<Row> rows;
  RFV_RETURN_IF_ERROR(DrainChild(child_.get(), &rows));
  std::vector<std::vector<Value>> keys;
  keys.reserve(rows.size());
  for (const Row& row : rows) {
    std::vector<Value> key;
    key.reserve(keys_.size());
    for (const SortKey& k : keys_) {
      Value v;
      RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(*k.expr, row));
      key.push_back(std::move(v));
    }
    keys.push_back(std::move(key));
  }

  std::vector<size_t> order(rows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < keys_.size(); ++k) {
      const int c = keys[a][k].Compare(keys[b][k]);
      if (c != 0) return keys_[k].ascending ? c < 0 : c > 0;
    }
    return false;
  });
  rows_.reserve(rows.size());
  for (size_t i : order) rows_.push_back(std::move(rows[i]));
  NoteBufferedRows(rows_.size());
  return Status::OK();
}

Status SortOp::NextImpl(Row* row, bool* eof) {
  if (pos_ >= rows_.size()) {
    *eof = true;
    return Status::OK();
  }
  *row = std::move(rows_[pos_++]);
  *eof = false;
  return Status::OK();
}

}  // namespace rfv
