#ifndef RFVIEW_EXEC_VECTOR_EVAL_H_
#define RFVIEW_EXEC_VECTOR_EVAL_H_

#include "common/status.h"
#include "exec/vector.h"
#include "expr/expr.h"

namespace rfv {

/// Columnar expression evaluator: the vectorized counterpart of
/// expr/eval.h. Expression kind and operand types are dispatched once
/// per vector, then tight per-element loops run over the column lanes.
///
/// Semantics contract: for every selected row, the evaluator computes
/// exactly the value — and evaluates exactly the set of sub-expressions —
/// that the row-at-a-time Evaluator would. Lazy constructs (AND/OR
/// Kleene short-circuits, CASE branches, IN candidates, COALESCE
/// arguments) are realized as *sub-selections*: a sub-expression is
/// evaluated only over the rows on which the row path would evaluate it.
/// This keeps runtime errors (division by zero, MOD by zero) reproducible
/// across execution modes — the differential oracles depend on it. The
/// one permitted divergence: when several rows of one vector would each
/// raise an error, which row's message surfaces is unspecified (the row
/// path reports the first row's).
class VectorEvaluator {
 public:
  /// Evaluates `expr` over the selected rows of `proj` into *out. *out is
  /// resized to proj.num_rows(); positions outside `sel` are NULL-tagged
  /// and meaningless. `sel` must be ascending (SelectionVector invariant).
  static Status Eval(const Expr& expr, const VectorProjection& proj,
                     const SelectionVector& sel, Vector* out);

  /// Narrows *sel in place to the rows where `expr` evaluates to TRUE
  /// (NULL counts as false), mirroring Evaluator::EvalPredicate.
  static Status EvalPredicate(const Expr& expr, const VectorProjection& proj,
                              SelectionVector* sel);
};

}  // namespace rfv

#endif  // RFVIEW_EXEC_VECTOR_EVAL_H_
