#ifndef RFVIEW_EXEC_VECTOR_EVAL_H_
#define RFVIEW_EXEC_VECTOR_EVAL_H_

#include "common/status.h"
#include "exec/vector.h"
#include "expr/expr.h"

namespace rfv {

/// Columnar expression evaluator: the vectorized counterpart of
/// expr/eval.h. Expression kind and operand types are dispatched once
/// per vector, then tight per-element loops run over the column lanes.
///
/// Semantics contract: for every selected row, the evaluator computes
/// exactly the value — and evaluates exactly the set of sub-expressions —
/// that the row-at-a-time Evaluator would. Lazy constructs (AND/OR
/// Kleene short-circuits, CASE branches, IN candidates, COALESCE
/// arguments) are realized as *sub-selections*: a sub-expression is
/// evaluated only over the rows on which the row path would evaluate it.
/// This keeps runtime errors (division by zero, MOD by zero) reproducible
/// across execution modes — the differential oracles depend on it. The
/// one permitted divergence: when several rows of one vector would each
/// raise an error, which row's message surfaces is unspecified (the row
/// path reports the first row's).
class VectorEvaluator {
 public:
  /// Evaluates `expr` over the selected rows of `proj` into *out. *out is
  /// resized to proj.num_rows(); positions outside `sel` are NULL-tagged
  /// and meaningless. `sel` must be ascending (SelectionVector invariant).
  static Status Eval(const Expr& expr, const VectorProjection& proj,
                     const SelectionVector& sel, Vector* out);

  /// Narrows *sel in place to the rows where `expr` evaluates to TRUE
  /// (NULL counts as false), mirroring Evaluator::EvalPredicate.
  static Status EvalPredicate(const Expr& expr, const VectorProjection& proj,
                              SelectionVector* sel);
};

/// Shared emission/filtering machinery of the vector-native join paths
/// (MergeBandJoinOp, HashJoinOp). Joined output rows are (left row ⊕
/// right row) with the left row broadcast across a run of right-side
/// candidates — these helpers gather such runs column-at-a-time into
/// pooled output lanes instead of materializing per-row copies.

/// Writes k joined rows into *out at positions [at, at+k): the left
/// row `left_pos` of `left` broadcast into columns [0, left.columns)
/// and right rows cand[cand_offset .. cand_offset+k) of `right`
/// gathered into the remaining columns.
void GatherJoinRun(const VectorProjection& left, uint32_t left_pos,
                   const VectorProjection& right,
                   const std::vector<size_t>& cand, size_t cand_offset,
                   size_t k, size_t at, VectorProjection* out);

/// Left-outer NULL padding: writes one row at position `at` with the
/// left row broadcast and `right_width` NULL right columns.
void GatherNullPaddedRow(const VectorProjection& left, uint32_t left_pos,
                         size_t right_width, size_t at,
                         VectorProjection* out);

/// Filters right-side join candidates through a residual predicate,
/// columnar-ly: builds a combined (left ⊕ right) projection of the
/// candidate rows in *scratch, narrows it with EvalPredicate, and
/// compacts the surviving entries of *candidates in place. Like the
/// vectorized FilterOp, the residual is evaluated eagerly over the
/// whole candidate set of one left row (the row path stops at the
/// first downstream-satisfying match) — the permitted which-row-
/// surfaces divergence for runtime errors.
Status FilterJoinCandidates(const Expr& residual,
                            const VectorProjection& left, uint32_t left_pos,
                            const VectorProjection& right,
                            VectorProjection* scratch,
                            std::vector<size_t>* candidates);

}  // namespace rfv

#endif  // RFVIEW_EXEC_VECTOR_EVAL_H_
