#ifndef RFVIEW_EXEC_EXECUTOR_H_
#define RFVIEW_EXEC_EXECUTOR_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"
#include "exec/batch.h"
#include "exec/vector.h"
#include "plan/logical_plan.h"

namespace rfv {

/// Per-operator execution counters, maintained by the PhysicalOperator
/// base class (wall times, row/call counts) and by the operators
/// themselves (peak buffered rows, reported by the materializing ones).
/// Cheap enough to keep always-on: two steady_clock reads per Next.
struct OperatorMetrics {
  int64_t rows_out = 0;    ///< rows produced through Next/NextBatch/NextVector
  int64_t next_calls = 0;  ///< pull invocations, incl. the EOF call
  /// NextBatch calls that produced rows; NextVector calls that produced a
  /// projection with a non-empty selection count here too.
  int64_t batches_out = 0;
  /// NextVector calls that produced a non-empty projection — the
  /// vector-only slice of batches_out, so EXPLAIN ANALYZE shows which
  /// operators actually ran columnar (a vectorized join emitting
  /// vectors=N, batches=N; a transpose-fallback operator still counts
  /// here because it *answers* NextVector, but its children's zero stays
  /// zero under a batch drain).
  int64_t vectors_out = 0;
  int64_t open_ns = 0;     ///< wall time inside Open (incl. children)
  int64_t next_ns = 0;     ///< cumulative wall time inside Next (ditto)
  /// High-water mark of rows materialized by this operator (sort
  /// buffers, hash tables, window/join materializations); 0 for
  /// streaming operators.
  int64_t peak_buffered_rows = 0;

  void Reset() { *this = OperatorMetrics(); }
};

/// Pull-based (Volcano-style) physical operator. Lifecycle:
/// Open() once, then one of the three pull styles until *eof — Next()
/// (row-at-a-time), NextBatch() (RowBatch-at-a-time) or NextVector()
/// (columnar VectorProjection); destructor releases state. A driver
/// picks ONE pull style per operator instance and sticks with it —
/// interleaving them on the same operator is undefined.
///
/// Open/Next/NextBatch/NextVector are non-virtual shells that maintain
/// OperatorMetrics and delegate to the *Impl overrides; white-box users
/// (tests, the executor driver) keep calling the shells as before.
/// NextBatchImpl has a default row-loop fallback and NextVectorImpl a
/// default transpose-a-batch fallback, so operators without native
/// implementations work unchanged under any driver.
class PhysicalOperator {
 public:
  explicit PhysicalOperator(Schema schema) : schema_(std::move(schema)) {}
  virtual ~PhysicalOperator() = default;

  PhysicalOperator(const PhysicalOperator&) = delete;
  PhysicalOperator& operator=(const PhysicalOperator&) = delete;

  Status Open() {
    metrics_.Reset();
    exhausted_ = false;
    const auto start = std::chrono::steady_clock::now();
    Status status = OpenImpl();
    metrics_.open_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    return status;
  }

  /// Produces the next row into *row, or sets *eof = true (row left
  /// untouched) when the stream is exhausted.
  Status Next(Row* row, bool* eof) {
    const auto start = std::chrono::steady_clock::now();
    Status status = NextImpl(row, eof);
    metrics_.next_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    ++metrics_.next_calls;
    if (status.ok() && !*eof) ++metrics_.rows_out;
    return status;
  }

  /// Produces up to batch->capacity() rows into *batch (cleared first).
  ///
  /// EOF contract (this is THE batch-protocol contract; every consumer
  /// must honor it):
  ///  - *eof = true means the stream is exhausted, and the SAME call may
  ///    also have produced rows: LimitOp reports eof together with the
  ///    batch that reached the limit, UnionAllOp together with the last
  ///    child's final batch, TableScanOp together with the final chunk.
  ///    Consumers therefore drain the batch FIRST and test eof second;
  ///    treating eof as "no data" silently drops the final batch.
  ///  - *eof = false with an empty batch is legal (operators usually
  ///    loop internally, but consumers must not treat empty as done).
  ///  - Calling again after eof is safe and yields an empty eof batch
  ///    (the shell's `exhausted_` latch guarantees this even for
  ///    operators whose Impl would misbehave on re-entry).
  Status NextBatch(RowBatch* batch, bool* eof) {
    batch->Clear();
    if (exhausted_) {
      *eof = true;
      ++metrics_.next_calls;
      return Status::OK();
    }
    const auto start = std::chrono::steady_clock::now();
    *eof = false;
    Status status = NextBatchImpl(batch, eof);
    metrics_.next_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    ++metrics_.next_calls;
    if (status.ok()) {
      metrics_.rows_out += static_cast<int64_t>(batch->size());
      if (!batch->empty()) ++metrics_.batches_out;
      if (*eof) exhausted_ = true;
    }
    return status;
  }

  /// Columnar pull: points *out at the producer-owned VectorProjection
  /// holding the next vector of rows, or at nullptr when this call
  /// produced nothing. The projection stays valid until the next
  /// NextVector call on this operator. Consumers may narrow the
  /// projection's SelectionVector in place (that is the zero-copy filter
  /// protocol) but must not touch the column data.
  ///
  /// EOF contract — same shape as NextBatch: *eof = true may accompany a
  /// non-empty projection (drain first, test eof second); an empty or
  /// null projection with *eof = false is legal; calls after eof are
  /// safe and yield *out = nullptr with *eof = true.
  Status NextVector(VectorProjection** out, bool* eof) {
    *out = nullptr;
    if (exhausted_) {
      *eof = true;
      ++metrics_.next_calls;
      return Status::OK();
    }
    const auto start = std::chrono::steady_clock::now();
    *eof = false;
    Status status = NextVectorImpl(out, eof);
    metrics_.next_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    ++metrics_.next_calls;
    if (status.ok()) {
      const size_t produced = (*out != nullptr) ? (*out)->NumSelected() : 0;
      metrics_.rows_out += static_cast<int64_t>(produced);
      if (produced > 0) {
        ++metrics_.batches_out;
        ++metrics_.vectors_out;
      }
      if (*eof) exhausted_ = true;
    }
    return status;
  }

  /// True when this operator implements NextVectorImpl natively (columns
  /// + selection vector all the way down). Operators without a native
  /// implementation still answer NextVector through the transpose
  /// fallback, but the planner only marks natively-columnar subtrees as
  /// vectorized() so blocking operators keep their tuned batch drains.
  virtual bool VectorNative() const { return false; }

  /// Whether the executor driver should pull this operator through
  /// NextVector. Stamped by BuildPhysicalPlan as `options.exec.
  /// use_vectorized_execution && VectorNative()`; consumers (root drain,
  /// DrainChild, aggregation ingest) dispatch on it.
  void SetVectorized(bool v) { vectorized_ = v; }
  bool vectorized() const { return vectorized_; }

  /// The raw `exec.use_vectorized_execution` knob, stamped on every
  /// operator of the plan (independent of VectorNative). Operators that
  /// merely *ingest* columns — HashAggregateOp's build phase — dispatch
  /// on this so a row-only child (e.g. the merge band join) still feeds
  /// their typed accumulation loops through the transpose fallback.
  void SetVectorExecEnabled(bool v) { vector_exec_enabled_ = v; }
  bool vector_exec_enabled() const { return vector_exec_enabled_; }

  const Schema& schema() const { return schema_; }

  /// Short operator name for metrics/EXPLAIN-style reports.
  virtual const char* name() const = 0;

  /// Appends this operator's direct inputs (tree traversal for metrics
  /// collection). Leaf operators append nothing.
  virtual void AppendChildren(
      std::vector<const PhysicalOperator*>* out) const {
    (void)out;
  }

  const OperatorMetrics& metrics() const { return metrics_; }

  /// Planner-estimated output rows (LogicalPlan::est_rows), stamped by
  /// BuildPhysicalPlan; -1 when the plan was not estimated. Read back by
  /// CollectMetrics for the estimated-vs-actual columns of EXPLAIN
  /// ANALYZE.
  void SetEstimatedRows(double est) { estimated_rows_ = est; }
  double estimated_rows() const { return estimated_rows_; }

 protected:
  virtual Status OpenImpl() = 0;
  virtual Status NextImpl(Row* row, bool* eof) = 0;

  /// Default batch production: a tight row loop over NextImpl (NOT the
  /// Next shell — the shell's clock reads and counters must not be paid
  /// twice). Rows are produced directly into the batch's retained slots
  /// (NextSlot/CommitSlot) instead of through a fresh stack Row per
  /// iteration, so the transpose-fallback pipeline reuses its row
  /// storage across NextBatch/NextVector calls. Batch-native operators
  /// override this and typically pull their child through NextBatch.
  virtual Status NextBatchImpl(RowBatch* batch, bool* eof) {
    while (!batch->full()) {
      Row* slot = batch->NextSlot();
      bool row_eof = false;
      RFV_RETURN_IF_ERROR(NextImpl(slot, &row_eof));
      if (row_eof) {
        *eof = true;
        return Status::OK();
      }
      batch->CommitSlot();
    }
    return Status::OK();
  }

  /// Default vector production: run NextBatchImpl into an operator-owned
  /// RowBatch and transpose it — the adapter that lets row/batch-only
  /// operators (sort, window, joins) serve a vectorized consumer.
  /// Vector-native operators override this with true columnar pipelines.
  virtual Status NextVectorImpl(VectorProjection** out, bool* eof) {
    fallback_batch_.Clear();
    RFV_RETURN_IF_ERROR(NextBatchImpl(&fallback_batch_, eof));
    fallback_vp_.FromBatch(schema_.NumColumns(), fallback_batch_);
    *out = &fallback_vp_;
    return Status::OK();
  }

  /// Raises the buffered-rows high-water mark (materializing operators
  /// call this after filling their buffers).
  void NoteBufferedRows(size_t n) {
    if (static_cast<int64_t>(n) > metrics_.peak_buffered_rows) {
      metrics_.peak_buffered_rows = static_cast<int64_t>(n);
    }
  }

  Schema schema_;

 private:
  OperatorMetrics metrics_;
  double estimated_rows_ = -1;
  /// Set once NextBatch/NextVector reports eof; guards re-entry into the
  /// Impl after exhaustion (the protocol allows a non-empty final
  /// batch/vector, so drivers may legally call once more).
  bool exhausted_ = false;
  bool vectorized_ = false;
  bool vector_exec_enabled_ = false;
  /// Scratch for the default NextVectorImpl transpose fallback.
  RowBatch fallback_batch_;
  VectorProjection fallback_vp_;
};

using PhysicalOperatorPtr = std::unique_ptr<PhysicalOperator>;

/// One line of a per-operator metrics report: the operator's name and
/// depth in the plan tree, its counters, and the summed rows_out of its
/// inputs (its "rows in").
struct OperatorMetricsEntry {
  std::string name;
  int depth = 0;
  int64_t rows_in = 0;
  /// Planner estimate for this operator's output (-1 = not estimated);
  /// printed as `est=` next to the measured rows_out.
  double est_rows = -1;
  OperatorMetrics metrics;
};

/// Flattens the operator tree (pre-order) into metrics entries.
std::vector<OperatorMetricsEntry> CollectMetrics(
    const PhysicalOperator& root);

/// Renders a metrics report as an indented ASCII table, one operator per
/// line:
///   window            rows_in=100000 rows_out=100000 ... open_ms=12.3
/// Times are reported in milliseconds with the child time included
/// (wall time is measured around the recursive Open/Next calls).
std::string FormatMetricsReport(
    const std::vector<OperatorMetricsEntry>& entries);

/// By-name rollup of a metrics report: one line per operator *name* with
/// summed counters and an instance count. Merges the two scans of a
/// self-join into one row — useful as a summary, misleading as a plan
/// view; pair it with FormatMetricsTree for per-instance attribution.
std::string FormatMetricsRollup(
    const std::vector<OperatorMetricsEntry>& entries);

/// Per-instance plan *tree* rendering (box-drawing connectors), each
/// node annotated with its own metrics — the EXPLAIN ANALYZE view:
///   window             rows_in=100000 rows_out=100000 ...
///   └─ scan            rows_in=0      rows_out=100000 ...
/// Unlike the rollup, repeated operators (both scans of a self-join)
/// keep their own rows.
std::string FormatMetricsTree(
    const std::vector<OperatorMetricsEntry>& entries);

/// Knobs for physical plan selection. The defaults give the engine its
/// best plans; benchmarks flip them to reproduce the paper's comparison
/// axes (e.g. Table 1 "self join without index" by disabling index
/// joins even when an index exists).
struct ExecOptions {
  bool enable_index_nested_loop_join = true;
  bool enable_hash_join = true;
  /// Streaming merge band join for `lo(s1) <= s2.key <= hi(s1)` hull
  /// (and stride/congruence) join predicates on an INTEGER right
  /// column — the execution strategy behind the paper's Fig. 2/10/13
  /// self-join patterns. Considered before the index nested-loop probe;
  /// falls through when the condition has no band shape.
  bool enable_merge_band_join = true;
  /// Drive query execution batch-at-a-time (RowBatch, ~1024 rows) to
  /// amortize per-row virtual dispatch and metric clock reads. Off =
  /// the row-at-a-time Volcano driver; results are identical (the fuzz
  /// harness diffs the two paths).
  bool use_batch_execution = true;
  /// Drive vector-native operators (scan/filter/project/limit/union-all)
  /// through the columnar NextVector protocol: expressions evaluate in
  /// typed per-vector loops and filters narrow a SelectionVector instead
  /// of copying rows. Takes precedence over use_batch_execution for the
  /// subtrees it covers; non-native operators keep their row/batch
  /// drains. Off = the PR 5 paths, kept alive as differential-testing
  /// fallbacks (the fuzz harness "batch" and "vector" oracles replay
  /// every query with this knob off).
  bool use_vectorized_execution = true;
  /// Sort-merge join for equi joins; consulted when the hash join is
  /// disabled or skipped (hash is the default equi strategy).
  bool enable_sort_merge_join = false;
  /// Worker count for partition-parallel window evaluation: 1 = always
  /// single-threaded, n > 1 = split partitions across up to n tasks on
  /// the shared thread pool, 0 = auto (hardware concurrency). Results
  /// are byte-identical to the single-threaded path: partitions are
  /// never split across tasks and each task writes disjoint outputs.
  int window_workers = 0;
  /// Inputs smaller than this many rows always run single-threaded
  /// (task dispatch would dominate). Tests lower it to force the
  /// parallel path on small inputs.
  int64_t window_parallel_min_rows = 4096;
};

/// Lowers a logical plan to a physical operator tree. Join
/// implementation choice (index nested-loop vs. hash vs. nested-loop)
/// happens here; see exec/join.cc for the probe-condition extraction.
/// Expressions are cloned — the logical plan stays reusable.
Result<PhysicalOperatorPtr> BuildPhysicalPlan(const LogicalPlan& plan,
                                              const ExecOptions& options = {});

/// Runs an operator tree to completion. Roots stamped vectorized() are
/// drained through NextVector (counting projections in the
/// rfv_exec_vectors_total metric and materializing rows only at this
/// boundary); otherwise `use_batches` selects the pull style: true
/// drains through NextBatch (rfv_exec_batches_total), false through
/// Next.
Result<std::vector<Row>> ExecuteToVector(PhysicalOperator* op,
                                         bool use_batches = true);

/// Appends every remaining row of an already-open `child` to *out — the
/// shared input drain of the materializing operators (sort, window,
/// join build sides), so their children run batch-at-a-time (or, when
/// the child is stamped vectorized(), columnar) even under a
/// row-at-a-time root. Honors the NextBatch/NextVector EOF contract:
/// the final batch/vector is drained before eof is acted on.
Status DrainChild(PhysicalOperator* child, std::vector<Row>* out);

/// Convenience: build + run.
Result<std::vector<Row>> ExecutePlan(const LogicalPlan& plan,
                                     const ExecOptions& options = {});

}  // namespace rfv

#endif  // RFVIEW_EXEC_EXECUTOR_H_
