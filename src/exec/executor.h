#ifndef RFVIEW_EXEC_EXECUTOR_H_
#define RFVIEW_EXEC_EXECUTOR_H_

#include <memory>
#include <vector>

#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"
#include "plan/logical_plan.h"

namespace rfv {

/// Pull-based (Volcano-style) physical operator. Lifecycle:
/// Open() once, Next() until *eof, destructor releases state.
class PhysicalOperator {
 public:
  explicit PhysicalOperator(Schema schema) : schema_(std::move(schema)) {}
  virtual ~PhysicalOperator() = default;

  PhysicalOperator(const PhysicalOperator&) = delete;
  PhysicalOperator& operator=(const PhysicalOperator&) = delete;

  virtual Status Open() = 0;

  /// Produces the next row into *row, or sets *eof = true (row left
  /// untouched) when the stream is exhausted.
  virtual Status Next(Row* row, bool* eof) = 0;

  const Schema& schema() const { return schema_; }

 protected:
  Schema schema_;
};

using PhysicalOperatorPtr = std::unique_ptr<PhysicalOperator>;

/// Knobs for physical plan selection. The defaults give the engine its
/// best plans; benchmarks flip them to reproduce the paper's comparison
/// axes (e.g. Table 1 "self join without index" by disabling index
/// joins even when an index exists).
struct ExecOptions {
  bool enable_index_nested_loop_join = true;
  bool enable_hash_join = true;
  /// Sort-merge join for equi joins; consulted when the hash join is
  /// disabled or skipped (hash is the default equi strategy).
  bool enable_sort_merge_join = false;
};

/// Lowers a logical plan to a physical operator tree. Join
/// implementation choice (index nested-loop vs. hash vs. nested-loop)
/// happens here; see exec/join.cc for the probe-condition extraction.
/// Expressions are cloned — the logical plan stays reusable.
Result<PhysicalOperatorPtr> BuildPhysicalPlan(const LogicalPlan& plan,
                                              const ExecOptions& options = {});

/// Runs an operator tree to completion.
Result<std::vector<Row>> ExecuteToVector(PhysicalOperator* op);

/// Convenience: build + run.
Result<std::vector<Row>> ExecutePlan(const LogicalPlan& plan,
                                     const ExecOptions& options = {});

}  // namespace rfv

#endif  // RFVIEW_EXEC_EXECUTOR_H_
