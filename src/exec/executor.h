#ifndef RFVIEW_EXEC_EXECUTOR_H_
#define RFVIEW_EXEC_EXECUTOR_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"
#include "plan/logical_plan.h"

namespace rfv {

/// Per-operator execution counters, maintained by the PhysicalOperator
/// base class (wall times, row/call counts) and by the operators
/// themselves (peak buffered rows, reported by the materializing ones).
/// Cheap enough to keep always-on: two steady_clock reads per Next.
struct OperatorMetrics {
  int64_t rows_out = 0;    ///< rows produced through Next
  int64_t next_calls = 0;  ///< Next invocations, including the EOF call
  int64_t open_ns = 0;     ///< wall time inside Open (incl. children)
  int64_t next_ns = 0;     ///< cumulative wall time inside Next (ditto)
  /// High-water mark of rows materialized by this operator (sort
  /// buffers, hash tables, window/join materializations); 0 for
  /// streaming operators.
  int64_t peak_buffered_rows = 0;

  void Reset() { *this = OperatorMetrics(); }
};

/// Pull-based (Volcano-style) physical operator. Lifecycle:
/// Open() once, Next() until *eof, destructor releases state.
///
/// Open/Next are non-virtual shells that maintain OperatorMetrics and
/// delegate to the OpenImpl/NextImpl overrides; white-box users (tests,
/// the executor driver) keep calling Open/Next as before.
class PhysicalOperator {
 public:
  explicit PhysicalOperator(Schema schema) : schema_(std::move(schema)) {}
  virtual ~PhysicalOperator() = default;

  PhysicalOperator(const PhysicalOperator&) = delete;
  PhysicalOperator& operator=(const PhysicalOperator&) = delete;

  Status Open() {
    metrics_.Reset();
    const auto start = std::chrono::steady_clock::now();
    Status status = OpenImpl();
    metrics_.open_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    return status;
  }

  /// Produces the next row into *row, or sets *eof = true (row left
  /// untouched) when the stream is exhausted.
  Status Next(Row* row, bool* eof) {
    const auto start = std::chrono::steady_clock::now();
    Status status = NextImpl(row, eof);
    metrics_.next_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    ++metrics_.next_calls;
    if (status.ok() && !*eof) ++metrics_.rows_out;
    return status;
  }

  const Schema& schema() const { return schema_; }

  /// Short operator name for metrics/EXPLAIN-style reports.
  virtual const char* name() const = 0;

  /// Appends this operator's direct inputs (tree traversal for metrics
  /// collection). Leaf operators append nothing.
  virtual void AppendChildren(
      std::vector<const PhysicalOperator*>* out) const {
    (void)out;
  }

  const OperatorMetrics& metrics() const { return metrics_; }

  /// Planner-estimated output rows (LogicalPlan::est_rows), stamped by
  /// BuildPhysicalPlan; -1 when the plan was not estimated. Read back by
  /// CollectMetrics for the estimated-vs-actual columns of EXPLAIN
  /// ANALYZE.
  void SetEstimatedRows(double est) { estimated_rows_ = est; }
  double estimated_rows() const { return estimated_rows_; }

 protected:
  virtual Status OpenImpl() = 0;
  virtual Status NextImpl(Row* row, bool* eof) = 0;

  /// Raises the buffered-rows high-water mark (materializing operators
  /// call this after filling their buffers).
  void NoteBufferedRows(size_t n) {
    if (static_cast<int64_t>(n) > metrics_.peak_buffered_rows) {
      metrics_.peak_buffered_rows = static_cast<int64_t>(n);
    }
  }

  Schema schema_;

 private:
  OperatorMetrics metrics_;
  double estimated_rows_ = -1;
};

using PhysicalOperatorPtr = std::unique_ptr<PhysicalOperator>;

/// One line of a per-operator metrics report: the operator's name and
/// depth in the plan tree, its counters, and the summed rows_out of its
/// inputs (its "rows in").
struct OperatorMetricsEntry {
  std::string name;
  int depth = 0;
  int64_t rows_in = 0;
  /// Planner estimate for this operator's output (-1 = not estimated);
  /// printed as `est=` next to the measured rows_out.
  double est_rows = -1;
  OperatorMetrics metrics;
};

/// Flattens the operator tree (pre-order) into metrics entries.
std::vector<OperatorMetricsEntry> CollectMetrics(
    const PhysicalOperator& root);

/// Renders a metrics report as an indented ASCII table, one operator per
/// line:
///   window            rows_in=100000 rows_out=100000 ... open_ms=12.3
/// Times are reported in milliseconds with the child time included
/// (wall time is measured around the recursive Open/Next calls).
std::string FormatMetricsReport(
    const std::vector<OperatorMetricsEntry>& entries);

/// By-name rollup of a metrics report: one line per operator *name* with
/// summed counters and an instance count. Merges the two scans of a
/// self-join into one row — useful as a summary, misleading as a plan
/// view; pair it with FormatMetricsTree for per-instance attribution.
std::string FormatMetricsRollup(
    const std::vector<OperatorMetricsEntry>& entries);

/// Per-instance plan *tree* rendering (box-drawing connectors), each
/// node annotated with its own metrics — the EXPLAIN ANALYZE view:
///   window             rows_in=100000 rows_out=100000 ...
///   └─ scan            rows_in=0      rows_out=100000 ...
/// Unlike the rollup, repeated operators (both scans of a self-join)
/// keep their own rows.
std::string FormatMetricsTree(
    const std::vector<OperatorMetricsEntry>& entries);

/// Knobs for physical plan selection. The defaults give the engine its
/// best plans; benchmarks flip them to reproduce the paper's comparison
/// axes (e.g. Table 1 "self join without index" by disabling index
/// joins even when an index exists).
struct ExecOptions {
  bool enable_index_nested_loop_join = true;
  bool enable_hash_join = true;
  /// Sort-merge join for equi joins; consulted when the hash join is
  /// disabled or skipped (hash is the default equi strategy).
  bool enable_sort_merge_join = false;
  /// Worker count for partition-parallel window evaluation: 1 = always
  /// single-threaded, n > 1 = split partitions across up to n tasks on
  /// the shared thread pool, 0 = auto (hardware concurrency). Results
  /// are byte-identical to the single-threaded path: partitions are
  /// never split across tasks and each task writes disjoint outputs.
  int window_workers = 0;
  /// Inputs smaller than this many rows always run single-threaded
  /// (task dispatch would dominate). Tests lower it to force the
  /// parallel path on small inputs.
  int64_t window_parallel_min_rows = 4096;
};

/// Lowers a logical plan to a physical operator tree. Join
/// implementation choice (index nested-loop vs. hash vs. nested-loop)
/// happens here; see exec/join.cc for the probe-condition extraction.
/// Expressions are cloned — the logical plan stays reusable.
Result<PhysicalOperatorPtr> BuildPhysicalPlan(const LogicalPlan& plan,
                                              const ExecOptions& options = {});

/// Runs an operator tree to completion.
Result<std::vector<Row>> ExecuteToVector(PhysicalOperator* op);

/// Convenience: build + run.
Result<std::vector<Row>> ExecutePlan(const LogicalPlan& plan,
                                     const ExecOptions& options = {});

}  // namespace rfv

#endif  // RFVIEW_EXEC_EXECUTOR_H_
