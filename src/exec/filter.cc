#include "exec/operators.h"

#include "exec/vector_eval.h"
#include "expr/eval.h"

namespace rfv {

Status FilterOp::OpenImpl() {
  input_.Clear();
  input_pos_ = 0;
  child_eof_ = false;
  return child_->Open();
}

Status FilterOp::NextImpl(Row* row, bool* eof) {
  while (true) {
    bool child_eof = false;
    RFV_RETURN_IF_ERROR(child_->Next(row, &child_eof));
    if (child_eof) {
      *eof = true;
      return Status::OK();
    }
    bool keep = false;
    RFV_ASSIGN_OR_RETURN(keep, Evaluator::EvalPredicate(*predicate_, *row));
    if (keep) {
      *eof = false;
      return Status::OK();
    }
  }
}

Status FilterOp::NextBatchImpl(RowBatch* batch, bool* eof) {
  while (!batch->full()) {
    if (input_pos_ >= input_.size()) {
      if (child_eof_) break;
      RFV_RETURN_IF_ERROR(child_->NextBatch(&input_, &child_eof_));
      input_pos_ = 0;
      if (input_.empty()) continue;
    }
    Row& row = input_.row(input_pos_++);
    bool keep = false;
    RFV_ASSIGN_OR_RETURN(keep, Evaluator::EvalPredicate(*predicate_, row));
    if (keep) batch->Push(std::move(row));
  }
  *eof = child_eof_ && input_pos_ >= input_.size();
  return Status::OK();
}

Status FilterOp::NextVectorImpl(VectorProjection** out, bool* eof) {
  // Narrow the child projection's selection in place and pass it
  // through — no row is copied on this path. Loop past fully-filtered
  // vectors so callers rarely see an empty non-eof result.
  while (true) {
    VectorProjection* vp = nullptr;
    bool child_eof = false;
    RFV_RETURN_IF_ERROR(child_->NextVector(&vp, &child_eof));
    if (vp != nullptr && vp->NumSelected() > 0) {
      RFV_RETURN_IF_ERROR(
          VectorEvaluator::EvalPredicate(*predicate_, *vp, &vp->sel()));
    }
    *out = vp;
    *eof = child_eof;
    if (child_eof || (vp != nullptr && vp->NumSelected() > 0)) {
      return Status::OK();
    }
  }
}

}  // namespace rfv
