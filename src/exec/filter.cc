#include "exec/operators.h"

#include "expr/eval.h"

namespace rfv {

Status FilterOp::OpenImpl() { return child_->Open(); }

Status FilterOp::NextImpl(Row* row, bool* eof) {
  while (true) {
    bool child_eof = false;
    RFV_RETURN_IF_ERROR(child_->Next(row, &child_eof));
    if (child_eof) {
      *eof = true;
      return Status::OK();
    }
    bool keep = false;
    RFV_ASSIGN_OR_RETURN(keep, Evaluator::EvalPredicate(*predicate_, *row));
    if (keep) {
      *eof = false;
      return Status::OK();
    }
  }
}

}  // namespace rfv
