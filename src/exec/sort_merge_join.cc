#include <algorithm>

#include "common/logging.h"
#include "exec/operators.h"
#include "expr/eval.h"

namespace rfv {

namespace {

/// Lexicographic key comparison.
int CompareKeys(const std::vector<Value>& a, const std::vector<Value>& b) {
  RFV_DCHECK(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  return 0;
}

}  // namespace

Status SortMergeJoinOp::Materialize(PhysicalOperator* input,
                                    const std::vector<ExprPtr>& keys,
                                    std::vector<Keyed>* out) {
  out->clear();
  RFV_RETURN_IF_ERROR(input->Open());
  std::vector<Row> rows;
  RFV_RETURN_IF_ERROR(DrainChild(input, &rows));
  for (Row& row : rows) {
    Keyed keyed;
    keyed.key.reserve(keys.size());
    for (const ExprPtr& k : keys) {
      Value v;
      RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(*k, row));
      keyed.has_null_key = keyed.has_null_key || v.is_null();
      keyed.key.push_back(std::move(v));
    }
    keyed.row = std::move(row);
    out->push_back(std::move(keyed));
  }
  std::stable_sort(out->begin(), out->end(),
                   [](const Keyed& a, const Keyed& b) {
                     return CompareKeys(a.key, b.key) < 0;
                   });
  return Status::OK();
}

Status SortMergeJoinOp::OpenImpl() {
  li_ = 0;
  rblock_start_ = 0;
  rblock_end_ = 0;
  rpos_ = 0;
  block_valid_ = false;
  left_matched_ = false;
  right_width_ = right_->schema().NumColumns();
  RFV_RETURN_IF_ERROR(Materialize(left_.get(), left_keys_, &left_rows_));
  RFV_RETURN_IF_ERROR(Materialize(right_.get(), right_keys_, &right_rows_));
  NoteBufferedRows(left_rows_.size() + right_rows_.size());
  return Status::OK();
}

Status SortMergeJoinOp::NextImpl(Row* row, bool* eof) {
  while (li_ < left_rows_.size()) {
    const Keyed& left = left_rows_[li_];
    if (!block_valid_) {
      left_matched_ = false;
      if (!left.has_null_key) {
        // Advance the block to the first right row with key >= left key;
        // left rows arrive in sorted order, so the block start is
        // monotone and each right row is passed at most once per block
        // boundary movement.
        if (rblock_start_ < rblock_end_ &&
            CompareKeys(right_rows_[rblock_start_].key, left.key) == 0) {
          // Previous block still matches (duplicate left keys): reuse.
        } else {
          while (rblock_start_ < right_rows_.size() &&
                 (right_rows_[rblock_start_].has_null_key ||
                  CompareKeys(right_rows_[rblock_start_].key, left.key) <
                      0)) {
            ++rblock_start_;
          }
          rblock_end_ = rblock_start_;
          while (rblock_end_ < right_rows_.size() &&
                 CompareKeys(right_rows_[rblock_end_].key, left.key) == 0) {
            ++rblock_end_;
          }
        }
        rpos_ = rblock_start_;
      } else {
        rpos_ = rblock_end_ = rblock_start_;  // NULL keys never match
      }
      block_valid_ = true;
    }
    while (rpos_ < rblock_end_) {
      const Keyed& right = right_rows_[rpos_++];
      Row joined = Row::Concat(left.row, right.row);
      bool match = true;
      if (residual_ != nullptr) {
        RFV_ASSIGN_OR_RETURN(match,
                             Evaluator::EvalPredicate(*residual_, joined));
      }
      if (match) {
        left_matched_ = true;
        *row = std::move(joined);
        *eof = false;
        return Status::OK();
      }
    }
    // Left row exhausted its block.
    if (join_type_ == JoinType::kLeftOuter && !left_matched_) {
      Row joined = left.row;
      for (size_t i = 0; i < right_width_; ++i) joined.Append(Value::Null());
      ++li_;
      block_valid_ = false;
      *row = std::move(joined);
      *eof = false;
      return Status::OK();
    }
    ++li_;
    block_valid_ = false;
  }
  *eof = true;
  return Status::OK();
}

}  // namespace rfv
