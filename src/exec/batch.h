#ifndef RFVIEW_EXEC_BATCH_H_
#define RFVIEW_EXEC_BATCH_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/row.h"

namespace rfv {

/// A fixed-capacity buffer of rows flowing through the batch execution
/// path (PhysicalOperator::NextBatch). A batch amortizes per-row virtual
/// dispatch and the metric shell's clock reads across ~1024 rows; the
/// row slots are retained across Clear() so steady-state batch reuse
/// performs no allocations beyond what the rows themselves need.
class RowBatch {
 public:
  /// Target batch size: large enough to amortize per-call overhead,
  /// small enough to stay cache-resident for typical row widths.
  static constexpr size_t kDefaultCapacity = 1024;

  explicit RowBatch(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ >= capacity_; }

  const Row& row(size_t i) const { return rows_[i]; }
  Row& row(size_t i) { return rows_[i]; }

  /// Logical reset; previously filled slots keep their storage and are
  /// overwritten by subsequent Push calls.
  void Clear() { size_ = 0; }

  /// Drops all rows past the first `n` (used by LimitOp).
  void Truncate(size_t n) {
    if (n < size_) size_ = n;
  }

  /// Appends one row. The capacity is a hard bound: producers must check
  /// full() before pushing, and overshooting aborts. (The batch used to
  /// grow silently past capacity_, which let producer bugs go unnoticed
  /// and would break the vector path's fixed-extent assumption —
  /// SelectionVector indices are sized to the producing batch.)
  void Push(Row row) {
    RFV_CHECK_MSG(size_ < capacity_,
                  "RowBatch::Push past capacity " << capacity_);
    if (size_ < rows_.size()) {
      rows_[size_] = std::move(row);
    } else {
      rows_.push_back(std::move(row));
    }
    ++size_;
  }

  /// Slot-reuse producer protocol — the allocation-light alternative to
  /// Push for row-at-a-time fill loops (the default NextBatchImpl):
  /// NextSlot() exposes the next row slot (retained storage from earlier
  /// fills) for in-place production; CommitSlot() makes it logically
  /// present. An obtained-but-uncommitted slot is simply not part of the
  /// batch — producers that hit EOF or an error after NextSlot() just
  /// skip the commit. Same hard capacity bound as Push.
  Row* NextSlot() {
    RFV_CHECK_MSG(size_ < capacity_,
                  "RowBatch::NextSlot past capacity " << capacity_);
    if (size_ >= rows_.size()) rows_.emplace_back();
    return &rows_[size_];
  }
  void CommitSlot() { ++size_; }

 private:
  size_t capacity_;
  size_t size_ = 0;
  std::vector<Row> rows_;
};

}  // namespace rfv

#endif  // RFVIEW_EXEC_BATCH_H_
