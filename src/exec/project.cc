#include "exec/operators.h"

#include "expr/eval.h"

namespace rfv {

Status ProjectOp::OpenImpl() { return child_->Open(); }

Status ProjectOp::NextImpl(Row* row, bool* eof) {
  Row input;
  bool child_eof = false;
  RFV_RETURN_IF_ERROR(child_->Next(&input, &child_eof));
  if (child_eof) {
    *eof = true;
    return Status::OK();
  }
  std::vector<Value> values;
  values.reserve(projections_.size());
  for (const ExprPtr& projection : projections_) {
    Value v;
    RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(*projection, input));
    values.push_back(std::move(v));
  }
  *row = Row(std::move(values));
  *eof = false;
  return Status::OK();
}

}  // namespace rfv
