#include "exec/operators.h"

#include "exec/vector_eval.h"
#include "expr/eval.h"

namespace rfv {

namespace {

Result<Row> ProjectRow(const std::vector<ExprPtr>& projections,
                       const Row& input) {
  std::vector<Value> values;
  values.reserve(projections.size());
  for (const ExprPtr& projection : projections) {
    Value v;
    RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(*projection, input));
    values.push_back(std::move(v));
  }
  return Row(std::move(values));
}

}  // namespace

Status ProjectOp::OpenImpl() {
  input_.Clear();
  input_pos_ = 0;
  child_eof_ = false;
  return child_->Open();
}

Status ProjectOp::NextImpl(Row* row, bool* eof) {
  Row input;
  bool child_eof = false;
  RFV_RETURN_IF_ERROR(child_->Next(&input, &child_eof));
  if (child_eof) {
    *eof = true;
    return Status::OK();
  }
  RFV_ASSIGN_OR_RETURN(*row, ProjectRow(projections_, input));
  *eof = false;
  return Status::OK();
}

Status ProjectOp::NextBatchImpl(RowBatch* batch, bool* eof) {
  while (!batch->full()) {
    if (input_pos_ >= input_.size()) {
      if (child_eof_) break;
      RFV_RETURN_IF_ERROR(child_->NextBatch(&input_, &child_eof_));
      input_pos_ = 0;
      if (input_.empty()) continue;
    }
    Row out;
    RFV_ASSIGN_OR_RETURN(out,
                         ProjectRow(projections_, input_.row(input_pos_++)));
    batch->Push(std::move(out));
  }
  *eof = child_eof_ && input_pos_ >= input_.size();
  return Status::OK();
}

Status ProjectOp::NextVectorImpl(VectorProjection** out, bool* eof) {
  VectorProjection* vp = nullptr;
  bool child_eof = false;
  while (true) {
    RFV_RETURN_IF_ERROR(child_->NextVector(&vp, &child_eof));
    if (child_eof || (vp != nullptr && vp->NumSelected() > 0)) break;
  }
  if (vp == nullptr || vp->NumSelected() == 0) {
    *eof = child_eof;
    return Status::OK();  // *out stays null: nothing to project
  }
  // Each projection expression is evaluated once per vector into the
  // operator-owned output projection, which shares the child's row
  // positions (and a copy of its selection) so downstream selection
  // narrowing still composes.
  out_vp_.Reset(projections_.size(), vp->num_rows());
  for (size_t p = 0; p < projections_.size(); ++p) {
    RFV_RETURN_IF_ERROR(VectorEvaluator::Eval(*projections_[p], *vp, vp->sel(),
                                              &out_vp_.column(p)));
  }
  out_vp_.sel() = vp->sel();
  *out = &out_vp_;
  *eof = child_eof;
  return Status::OK();
}

}  // namespace rfv
