#include "exec/operators.h"

#include "expr/eval.h"

namespace rfv {

namespace {

Result<Row> ProjectRow(const std::vector<ExprPtr>& projections,
                       const Row& input) {
  std::vector<Value> values;
  values.reserve(projections.size());
  for (const ExprPtr& projection : projections) {
    Value v;
    RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(*projection, input));
    values.push_back(std::move(v));
  }
  return Row(std::move(values));
}

}  // namespace

Status ProjectOp::OpenImpl() {
  input_.Clear();
  input_pos_ = 0;
  child_eof_ = false;
  return child_->Open();
}

Status ProjectOp::NextImpl(Row* row, bool* eof) {
  Row input;
  bool child_eof = false;
  RFV_RETURN_IF_ERROR(child_->Next(&input, &child_eof));
  if (child_eof) {
    *eof = true;
    return Status::OK();
  }
  RFV_ASSIGN_OR_RETURN(*row, ProjectRow(projections_, input));
  *eof = false;
  return Status::OK();
}

Status ProjectOp::NextBatchImpl(RowBatch* batch, bool* eof) {
  while (!batch->full()) {
    if (input_pos_ >= input_.size()) {
      if (child_eof_) break;
      RFV_RETURN_IF_ERROR(child_->NextBatch(&input_, &child_eof_));
      input_pos_ = 0;
      if (input_.empty()) continue;
    }
    Row out;
    RFV_ASSIGN_OR_RETURN(out,
                         ProjectRow(projections_, input_.row(input_pos_++)));
    batch->Push(std::move(out));
  }
  *eof = child_eof_ && input_pos_ >= input_.size();
  return Status::OK();
}

}  // namespace rfv
