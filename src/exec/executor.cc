#include "exec/executor.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/trace.h"
#include "exec/operators.h"
#include "plan/planner.h"

namespace rfv {

namespace {

/// Clones a vector of expressions.
std::vector<ExprPtr> CloneExprs(const std::vector<ExprPtr>& exprs) {
  std::vector<ExprPtr> out;
  out.reserve(exprs.size());
  for (const ExprPtr& e : exprs) out.push_back(e->Clone());
  return out;
}

std::vector<SortKey> CloneSortKeys(const std::vector<SortKey>& keys) {
  std::vector<SortKey> out;
  out.reserve(keys.size());
  for (const SortKey& k : keys) {
    SortKey copy;
    copy.expr = k.expr->Clone();
    copy.ascending = k.ascending;
    out.push_back(std::move(copy));
  }
  return out;
}

AggregateCall CloneAggregateCall(const AggregateCall& call) {
  AggregateCall copy;
  copy.fn = call.fn;
  copy.arg = call.arg != nullptr ? call.arg->Clone() : nullptr;
  copy.is_count_star = call.is_count_star;
  copy.output_name = call.output_name;
  copy.output_type = call.output_type;
  return copy;
}

WindowCall CloneWindowCall(const WindowCall& call) {
  WindowCall copy;
  copy.kind = call.kind;
  copy.fn = call.fn;
  copy.arg = call.arg != nullptr ? call.arg->Clone() : nullptr;
  copy.is_count_star = call.is_count_star;
  copy.partition_by = CloneExprs(call.partition_by);
  copy.order_by = CloneSortKeys(call.order_by);
  copy.frame = call.frame;
  copy.output_name = call.output_name;
  copy.output_type = call.output_type;
  return copy;
}

/// Extracts hash-join equi keys from a join condition: conjuncts of the
/// form <left-only expr> = <right-only expr> become key pairs (right key
/// re-bound to the right child's schema); everything else is residual.
void ExtractEquiKeys(ExprPtr condition, size_t left_width,
                     std::vector<ExprPtr>* left_keys,
                     std::vector<ExprPtr>* right_keys, ExprPtr* residual) {
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(std::move(condition), &conjuncts);
  std::vector<ExprPtr> residual_conjuncts;
  for (ExprPtr& c : conjuncts) {
    if (c->kind == ExprKind::kBinary && c->binary_op == BinaryOp::kEq) {
      Expr& lhs = *c->children[0];
      Expr& rhs = *c->children[1];
      const size_t total = static_cast<size_t>(-1);
      if (RefsOnlyRange(lhs, 0, left_width) &&
          RefsOnlyRange(rhs, left_width, total)) {
        ShiftColumnRefs(&rhs, -static_cast<int64_t>(left_width));
        left_keys->push_back(std::move(c->children[0]));
        right_keys->push_back(std::move(c->children[1]));
        continue;
      }
      if (RefsOnlyRange(rhs, 0, left_width) &&
          RefsOnlyRange(lhs, left_width, total)) {
        ShiftColumnRefs(&lhs, -static_cast<int64_t>(left_width));
        left_keys->push_back(std::move(c->children[1]));
        right_keys->push_back(std::move(c->children[0]));
        continue;
      }
    }
    residual_conjuncts.push_back(std::move(c));
  }
  *residual = CombineConjuncts(std::move(residual_conjuncts));
}

Result<PhysicalOperatorPtr> BuildJoin(const LogicalPlan& plan,
                                      const ExecOptions& options) {
  const LogicalPlan& left_plan = *plan.children[0];
  const LogicalPlan& right_plan = *plan.children[1];
  const size_t left_width = left_plan.schema.NumColumns();

  PhysicalOperatorPtr left;
  RFV_ASSIGN_OR_RETURN(left, BuildPhysicalPlan(left_plan, options));

  // Merge band join: right side must be a bare table scan with an
  // integer key column the condition constrains to bands (interval,
  // stride, or point-set per left row). Considered ahead of the index
  // probe — the sorted merge touches only matching keys where the index
  // hull would scan and re-filter whole prefixes.
  if (options.enable_merge_band_join && plan.join_condition != nullptr &&
      right_plan.kind == PlanKind::kScan) {
    std::optional<BandJoinSpec> band = TryExtractBandJoin(
        *plan.join_condition, left_width, right_plan.table);
    if (band.has_value()) {
      if (band->approximate) {
        // Over-approximating bands re-check the full condition.
        band->residual = plan.join_condition->Clone();
      }
      PhysicalOperatorPtr right;
      RFV_ASSIGN_OR_RETURN(right, BuildPhysicalPlan(right_plan, options));
      return PhysicalOperatorPtr(new MergeBandJoinOp(
          plan.schema, std::move(left), std::move(right), std::move(*band),
          plan.join_type));
    }
  }

  // Index nested-loop join: right side must be a bare table scan with a
  // usable ordered index.
  if (options.enable_index_nested_loop_join &&
      plan.join_condition != nullptr &&
      right_plan.kind == PlanKind::kScan) {
    std::optional<IndexProbeSpec> probe = TryExtractIndexProbe(
        *plan.join_condition, left_width, right_plan.table);
    if (probe.has_value()) {
      if (probe->approximate || probe->residual != nullptr) {
        // Re-check the full condition unless the probe proved exactness
        // of everything it consumed.
        if (probe->approximate) {
          probe->residual = plan.join_condition->Clone();
        }
      }
      return PhysicalOperatorPtr(new IndexNestedLoopJoinOp(
          plan.schema, std::move(left), right_plan.table, right_plan.schema,
          std::move(*probe), plan.join_type));
    }
  }

  PhysicalOperatorPtr right;
  RFV_ASSIGN_OR_RETURN(right, BuildPhysicalPlan(right_plan, options));

  // Hash or sort-merge join on equi conjuncts (hash preferred).
  if ((options.enable_hash_join || options.enable_sort_merge_join) &&
      plan.join_condition != nullptr) {
    std::vector<ExprPtr> left_keys;
    std::vector<ExprPtr> right_keys;
    ExprPtr residual;
    ExtractEquiKeys(plan.join_condition->Clone(), left_width, &left_keys,
                    &right_keys, &residual);
    if (!left_keys.empty()) {
      if (options.enable_hash_join) {
        return PhysicalOperatorPtr(new HashJoinOp(
            plan.schema, std::move(left), std::move(right),
            std::move(left_keys), std::move(right_keys),
            std::move(residual), plan.join_type));
      }
      return PhysicalOperatorPtr(new SortMergeJoinOp(
          plan.schema, std::move(left), std::move(right),
          std::move(left_keys), std::move(right_keys), std::move(residual),
          plan.join_type));
    }
  }

  return PhysicalOperatorPtr(new NestedLoopJoinOp(
      plan.schema, std::move(left), std::move(right),
      plan.join_condition != nullptr ? plan.join_condition->Clone() : nullptr,
      plan.join_type));
}

}  // namespace

namespace {

/// The per-kind lowering; BuildPhysicalPlan wraps it to stamp each
/// node's cardinality estimate onto the operator it produced.
Result<PhysicalOperatorPtr> BuildPhysicalPlanNode(const LogicalPlan& plan,
                                                  const ExecOptions& options) {
  switch (plan.kind) {
    case PlanKind::kScan:
      return PhysicalOperatorPtr(new TableScanOp(plan.schema, plan.table));
    case PlanKind::kFilter: {
      PhysicalOperatorPtr child;
      RFV_ASSIGN_OR_RETURN(child,
                           BuildPhysicalPlan(*plan.children[0], options));
      return PhysicalOperatorPtr(new FilterOp(plan.schema, std::move(child),
                                              plan.predicate->Clone()));
    }
    case PlanKind::kProject: {
      PhysicalOperatorPtr child;
      RFV_ASSIGN_OR_RETURN(child,
                           BuildPhysicalPlan(*plan.children[0], options));
      return PhysicalOperatorPtr(new ProjectOp(plan.schema, std::move(child),
                                               CloneExprs(plan.projections)));
    }
    case PlanKind::kJoin:
      return BuildJoin(plan, options);
    case PlanKind::kAggregate: {
      PhysicalOperatorPtr child;
      RFV_ASSIGN_OR_RETURN(child,
                           BuildPhysicalPlan(*plan.children[0], options));
      std::vector<AggregateCall> calls;
      calls.reserve(plan.aggregates.size());
      for (const AggregateCall& c : plan.aggregates) {
        calls.push_back(CloneAggregateCall(c));
      }
      return PhysicalOperatorPtr(
          new HashAggregateOp(plan.schema, std::move(child),
                              CloneExprs(plan.group_by), std::move(calls)));
    }
    case PlanKind::kWindow: {
      PhysicalOperatorPtr child;
      RFV_ASSIGN_OR_RETURN(child,
                           BuildPhysicalPlan(*plan.children[0], options));
      std::vector<WindowCall> calls;
      calls.reserve(plan.window_calls.size());
      for (const WindowCall& c : plan.window_calls) {
        calls.push_back(CloneWindowCall(c));
      }
      return PhysicalOperatorPtr(new WindowOp(
          plan.schema, std::move(child), std::move(calls),
          options.window_workers, options.window_parallel_min_rows));
    }
    case PlanKind::kSort: {
      PhysicalOperatorPtr child;
      RFV_ASSIGN_OR_RETURN(child,
                           BuildPhysicalPlan(*plan.children[0], options));
      return PhysicalOperatorPtr(new SortOp(plan.schema, std::move(child),
                                            CloneSortKeys(plan.sort_keys)));
    }
    case PlanKind::kUnionAll: {
      std::vector<PhysicalOperatorPtr> children;
      children.reserve(plan.children.size());
      for (const auto& child_plan : plan.children) {
        PhysicalOperatorPtr child;
        RFV_ASSIGN_OR_RETURN(child, BuildPhysicalPlan(*child_plan, options));
        children.push_back(std::move(child));
      }
      return PhysicalOperatorPtr(
          new UnionAllOp(plan.schema, std::move(children)));
    }
    case PlanKind::kLimit: {
      PhysicalOperatorPtr child;
      RFV_ASSIGN_OR_RETURN(child,
                           BuildPhysicalPlan(*plan.children[0], options));
      return PhysicalOperatorPtr(
          new LimitOp(plan.schema, std::move(child), plan.limit));
    }
  }
  return Status::Internal("unreachable plan kind");
}

}  // namespace

Result<PhysicalOperatorPtr> BuildPhysicalPlan(const LogicalPlan& plan,
                                              const ExecOptions& options) {
  PhysicalOperatorPtr op;
  RFV_ASSIGN_OR_RETURN(op, BuildPhysicalPlanNode(plan, options));
  // Recursive builds go through this wrapper too, so every operator in
  // the tree carries its logical node's estimate (the index
  // nested-loop join consumes the right-side scan without an operator;
  // that estimate is intentionally dropped with it).
  op->SetEstimatedRows(plan.est_rows);
  // Stamp the pull style: drivers and batch consumers pull this operator
  // through NextVector iff it is columnar-native and the knob is on.
  op->SetVectorized(options.use_vectorized_execution && op->VectorNative());
  op->SetVectorExecEnabled(options.use_vectorized_execution);
  return op;
}

namespace {

void CollectMetricsInto(const PhysicalOperator& op, int depth,
                        std::vector<OperatorMetricsEntry>* out) {
  std::vector<const PhysicalOperator*> children;
  op.AppendChildren(&children);
  OperatorMetricsEntry entry;
  entry.name = op.name();
  entry.depth = depth;
  entry.est_rows = op.estimated_rows();
  entry.metrics = op.metrics();
  for (const PhysicalOperator* child : children) {
    entry.rows_in += child->metrics().rows_out;
  }
  out->push_back(std::move(entry));
  for (const PhysicalOperator* child : children) {
    CollectMetricsInto(*child, depth + 1, out);
  }
}

}  // namespace

std::vector<OperatorMetricsEntry> CollectMetrics(
    const PhysicalOperator& root) {
  std::vector<OperatorMetricsEntry> out;
  CollectMetricsInto(root, 0, &out);
  return out;
}

namespace {

/// One formatted metrics line: `label` padded, then the counters.
std::string FormatMetricsLine(const std::string& label,
                              const OperatorMetricsEntry& e) {
  // Planner estimate next to the measured rows_out; "-" when the plan
  // was never run through EstimateCardinality (or the entry is a
  // rollup, where per-instance estimates don't sum meaningfully).
  char est[32];
  if (e.est_rows >= 0) {
    std::snprintf(est, sizeof(est), "%lld",
                  static_cast<long long>(e.est_rows + 0.5));
  } else {
    std::snprintf(est, sizeof(est), "-");
  }
  char line[384];
  std::snprintf(
      line, sizeof(line),
      "%-24s rows_in=%-9lld rows_out=%-9lld est=%-9s next_calls=%-9lld "
      "batches=%-6lld vectors=%-6lld open_ms=%-8.3f next_ms=%-8.3f "
      "peak_buffered=%lld\n",
      label.c_str(), static_cast<long long>(e.rows_in),
      static_cast<long long>(e.metrics.rows_out), est,
      static_cast<long long>(e.metrics.next_calls),
      static_cast<long long>(e.metrics.batches_out),
      static_cast<long long>(e.metrics.vectors_out),
      static_cast<double>(e.metrics.open_ns) / 1e6,
      static_cast<double>(e.metrics.next_ns) / 1e6,
      static_cast<long long>(e.metrics.peak_buffered_rows));
  return line;
}

}  // namespace

std::string FormatMetricsReport(
    const std::vector<OperatorMetricsEntry>& entries) {
  std::string out;
  for (const OperatorMetricsEntry& e : entries) {
    out += FormatMetricsLine(
        std::string(static_cast<size_t>(e.depth) * 2, ' ') + e.name, e);
  }
  return out;
}

std::string FormatMetricsRollup(
    const std::vector<OperatorMetricsEntry>& entries) {
  // Aggregate by operator name, preserving first-appearance order.
  std::vector<std::string> order;
  std::vector<OperatorMetricsEntry> totals;
  std::vector<int> instances;
  for (const OperatorMetricsEntry& e : entries) {
    size_t slot = order.size();
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] == e.name) {
        slot = i;
        break;
      }
    }
    if (slot == order.size()) {
      order.push_back(e.name);
      OperatorMetricsEntry total;
      total.name = e.name;
      totals.push_back(std::move(total));
      instances.push_back(0);
    }
    OperatorMetricsEntry& total = totals[slot];
    total.rows_in += e.rows_in;
    total.metrics.rows_out += e.metrics.rows_out;
    total.metrics.next_calls += e.metrics.next_calls;
    total.metrics.batches_out += e.metrics.batches_out;
    total.metrics.vectors_out += e.metrics.vectors_out;
    total.metrics.open_ns += e.metrics.open_ns;
    total.metrics.next_ns += e.metrics.next_ns;
    total.metrics.peak_buffered_rows =
        std::max(total.metrics.peak_buffered_rows,
                 e.metrics.peak_buffered_rows);
    ++instances[slot];
  }
  std::string out;
  for (size_t i = 0; i < totals.size(); ++i) {
    std::string label = totals[i].name;
    if (instances[i] > 1) label += " x" + std::to_string(instances[i]);
    out += FormatMetricsLine(label, totals[i]);
  }
  return out;
}

std::string FormatMetricsTree(
    const std::vector<OperatorMetricsEntry>& entries) {
  std::string out;
  for (size_t i = 0; i < entries.size(); ++i) {
    const int depth = entries[i].depth;
    std::string prefix;
    // For each ancestor level, draw a continuation bar when that
    // ancestor has later siblings; for the node itself, a branch or
    // corner depending on whether a later sibling exists. "Later
    // sibling at level d" = a subsequent entry of depth d appearing
    // before any entry of depth < d (pre-order property).
    for (int level = 1; level <= depth; ++level) {
      bool has_later_sibling = false;
      for (size_t j = i + 1; j < entries.size(); ++j) {
        if (entries[j].depth < level) break;
        if (entries[j].depth == level) {
          has_later_sibling = true;
          break;
        }
      }
      if (level == depth) {
        prefix += has_later_sibling ? "├─ " : "└─ ";
      } else {
        prefix += has_later_sibling ? "│  " : "   ";
      }
    }
    // The box-drawing characters are multi-byte; pad by display width.
    const size_t display_width =
        static_cast<size_t>(depth) * 3 + entries[i].name.size();
    std::string label = prefix + entries[i].name;
    if (display_width < 24) label += std::string(24 - display_width, ' ');
    out += FormatMetricsLine(label, entries[i]);
  }
  return out;
}

namespace {

Counter* BatchesCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "rfv_exec_batches_total", {},
      "Row batches drained from query plan roots by the batch driver");
  return c;
}

Counter* VectorsCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "rfv_exec_vectors_total", {},
      "Vector projections drained from query plan roots by the "
      "vectorized driver");
  return c;
}

}  // namespace

Result<std::vector<Row>> ExecuteToVector(PhysicalOperator* op,
                                         bool use_batches) {
  {
    TraceSpan open_span("exec.open");
    if (open_span.active()) open_span.AddArg("root", op->name());
    RFV_RETURN_IF_ERROR(op->Open());
  }
  TraceSpan drain_span("exec.drain");
  std::vector<Row> rows;
  if (op->vectorized()) {
    // Columnar root drain: rows materialize only here, at the plan
    // boundary, from whatever survived the selection vectors.
    while (true) {
      VectorProjection* vp = nullptr;
      bool eof = false;
      RFV_RETURN_IF_ERROR(op->NextVector(&vp, &eof));
      if (vp != nullptr && vp->NumSelected() > 0) {
        VectorsCounter()->Increment();
        vp->AppendSelectedTo(&rows);
      }
      if (eof) break;
    }
  } else if (use_batches) {
    RowBatch batch;
    while (true) {
      bool eof = false;
      RFV_RETURN_IF_ERROR(op->NextBatch(&batch, &eof));
      if (!batch.empty()) {
        BatchesCounter()->Increment();
        for (size_t i = 0; i < batch.size(); ++i) {
          rows.push_back(std::move(batch.row(i)));
        }
      }
      if (eof) break;
    }
  } else {
    while (true) {
      Row row;
      bool eof = false;
      RFV_RETURN_IF_ERROR(op->Next(&row, &eof));
      if (eof) break;
      rows.push_back(std::move(row));
    }
  }
  if (drain_span.active()) {
    drain_span.AddArg("rows", std::to_string(rows.size()));
  }
  return rows;
}

Status DrainChild(PhysicalOperator* child, std::vector<Row>* out) {
  if (child->vectorized()) {
    while (true) {
      VectorProjection* vp = nullptr;
      bool eof = false;
      RFV_RETURN_IF_ERROR(child->NextVector(&vp, &eof));
      if (vp != nullptr) vp->AppendSelectedTo(out);
      if (eof) break;
    }
    return Status::OK();
  }
  RowBatch batch;
  while (true) {
    bool eof = false;
    RFV_RETURN_IF_ERROR(child->NextBatch(&batch, &eof));
    for (size_t i = 0; i < batch.size(); ++i) {
      out->push_back(std::move(batch.row(i)));
    }
    if (eof) break;
  }
  return Status::OK();
}

Result<std::vector<Row>> ExecutePlan(const LogicalPlan& plan,
                                     const ExecOptions& options) {
  PhysicalOperatorPtr op;
  RFV_ASSIGN_OR_RETURN(op, BuildPhysicalPlan(plan, options));
  return ExecuteToVector(op.get(), options.use_batch_execution);
}

}  // namespace rfv
