#include "exec/operators.h"

#include <algorithm>
#include <string>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/thread_pool.h"
#include "exec/window_frame.h"
#include "expr/eval.h"

namespace rfv {

Status WindowOp::OpenImpl() {
  rows_.clear();
  extra_columns_.clear();
  pos_ = 0;
  RFV_RETURN_IF_ERROR(child_->Open());
  RFV_RETURN_IF_ERROR(DrainChild(child_.get(), &rows_));
  NoteBufferedRows(rows_.size());
  extra_columns_.reserve(calls_.size());
  for (const WindowCall& call : calls_) {
    std::vector<Value> column;
    RFV_RETURN_IF_ERROR(ComputeCall(call, &column));
    extra_columns_.push_back(std::move(column));
  }
  return Status::OK();
}

int WindowOp::EffectiveWorkers(size_t rows, size_t partitions) const {
  if (partitions <= 1) return 1;
  if (static_cast<int64_t>(rows) < parallel_min_rows_) return 1;
  const size_t requested =
      workers_ > 0 ? static_cast<size_t>(workers_)
                   : std::max<size_t>(1, std::thread::hardware_concurrency());
  return static_cast<int>(std::min(requested, partitions));
}

Status WindowOp::ComputeCall(const WindowCall& call,
                             std::vector<Value>* out) const {
  const size_t n = rows_.size();
  out->assign(n, Value::Null());
  if (n == 0) return Status::OK();

  // Executor-side guard for RANGE frames: value distances are only
  // meaningful along a single ascending order key. The binder rejects
  // these for SQL queries; this covers directly built operator trees.
  if (call.kind == WindowFnKind::kAggregate && call.frame.range_mode &&
      (call.order_by.size() != 1 || !call.order_by[0].ascending)) {
    return Status::ExecutionError(
        "RANGE frames require exactly one ascending ORDER BY key");
  }

  CallContext ctx;
  ctx.call = &call;

  // Evaluate the argument and the partition/order keys once per row.
  if (call.kind == WindowFnKind::kAggregate && !call.is_count_star) {
    ctx.args.resize(n);
    for (size_t i = 0; i < n; ++i) {
      RFV_ASSIGN_OR_RETURN(ctx.args[i], Evaluator::Eval(*call.arg, rows_[i]));
    }
  }
  const size_t np = call.partition_by.size();
  const size_t no = call.order_by.size();
  ctx.keys.resize(n);
  for (size_t i = 0; i < n; ++i) {
    ctx.keys[i].reserve(np + no);
    for (const ExprPtr& p : call.partition_by) {
      Value v;
      RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(*p, rows_[i]));
      ctx.keys[i].push_back(std::move(v));
    }
    for (const SortKey& o : call.order_by) {
      Value v;
      RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(*o.expr, rows_[i]));
      ctx.keys[i].push_back(std::move(v));
    }
  }

  // Sort row indices by (partition keys, order keys).
  const std::vector<std::vector<Value>>& keys = ctx.keys;
  ctx.order.resize(n);
  for (size_t i = 0; i < n; ++i) ctx.order[i] = i;
  std::stable_sort(ctx.order.begin(), ctx.order.end(),
                   [&](size_t a, size_t b) {
                     for (size_t k = 0; k < np + no; ++k) {
                       const int c = keys[a][k].Compare(keys[b][k]);
                       if (c != 0) {
                         const bool ascending =
                             k < np || call.order_by[k - np].ascending;
                         return ascending ? c < 0 : c > 0;
                       }
                     }
                     return false;
                   });

  const auto same_partition = [&](size_t a, size_t b) {
    for (size_t k = 0; k < np; ++k) {
      if (keys[a][k].Compare(keys[b][k]) != 0) return false;
    }
    return true;
  };

  // Partition boundaries (half-open ranges over the sorted order).
  std::vector<std::pair<size_t, size_t>> partitions;
  size_t part_start = 0;
  while (part_start < n) {
    size_t part_end = part_start + 1;
    while (part_end < n &&
           same_partition(ctx.order[part_start], ctx.order[part_end])) {
      ++part_end;
    }
    partitions.emplace_back(part_start, part_end);
    part_start = part_end;
  }

  const size_t workers =
      static_cast<size_t>(EffectiveWorkers(n, partitions.size()));
  if (workers <= 1) {
    for (const auto& [begin, end] : partitions) {
      RFV_RETURN_IF_ERROR(ProcessPartition(ctx, begin, end, out));
    }
    return Status::OK();
  }

  // Parallel path: chunk whole partitions into up to `workers`
  // contiguous groups of roughly equal row counts. Partitions are never
  // split across tasks and every task writes disjoint slots of *out*,
  // so the result is byte-identical to the serial path and the only
  // synchronization needed is the final join.
  static Counter* parallel_partitions = MetricsRegistry::Global().GetCounter(
      "rfv_window_parallel_partitions_total", {},
      "Window partitions processed on worker threads (parallel path)");
  parallel_partitions->Increment(static_cast<int64_t>(partitions.size()));

  std::vector<Status> statuses(workers);
  {
    TaskGroup group(ThreadPool::Shared());
    const size_t target_rows = (n + workers - 1) / workers;
    size_t chunk_begin = 0;  // index into `partitions`
    for (size_t w = 0; w < workers && chunk_begin < partitions.size(); ++w) {
      size_t chunk_end = chunk_begin;
      size_t rows_taken = 0;
      while (chunk_end < partitions.size() &&
             (rows_taken < target_rows || chunk_end == chunk_begin)) {
        rows_taken +=
            partitions[chunk_end].second - partitions[chunk_end].first;
        ++chunk_end;
      }
      // The last group sweeps up any remainder left by rounding.
      if (w + 1 == workers) chunk_end = partitions.size();
      Status* status_slot = &statuses[w];
      group.Submit([this, &ctx, &partitions, status_slot, out, chunk_begin,
                    chunk_end] {
        for (size_t p = chunk_begin; p < chunk_end; ++p) {
          Status s = ProcessPartition(ctx, partitions[p].first,
                                      partitions[p].second, out);
          if (!s.ok()) {
            *status_slot = std::move(s);
            return;
          }
        }
      });
      chunk_begin = chunk_end;
    }
    group.Wait();
  }
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status WindowOp::ProcessPartition(const CallContext& ctx, size_t part_start,
                                  size_t part_end,
                                  std::vector<Value>* out) const {
  const WindowCall& call = *ctx.call;
  const std::vector<std::vector<Value>>& keys = ctx.keys;
  const std::vector<size_t>& order = ctx.order;
  const size_t np = call.partition_by.size();
  const size_t no = call.order_by.size();

  if (call.kind != WindowFnKind::kAggregate) {
    // Ranking functions: positional within the sorted partition.
    // RANK assigns tied order keys the same (gapped) rank.
    int64_t rank = 1;
    for (size_t i = part_start; i < part_end; ++i) {
      const int64_t row_number = static_cast<int64_t>(i - part_start) + 1;
      if (call.kind == WindowFnKind::kRank) {
        bool tied = i > part_start;
        for (size_t k = np; tied && k < np + no; ++k) {
          tied = keys[order[i]][k].Compare(keys[order[i - 1]][k]) == 0;
        }
        if (!tied) rank = row_number;
        (*out)[order[i]] = Value::Int(rank);
      } else {
        (*out)[order[i]] = Value::Int(row_number);
      }
    }
    return Status::OK();
  }

  SlidingAggregate aggregate(call.fn, call.is_count_star, call.output_type);

  if (call.frame.range_mode) {
    // RANGE frames: the window covers rows whose (single, ascending,
    // numeric) order key lies within a value distance of the current
    // key. Both value bounds are non-decreasing, so the same
    // two-pointer sweep applies with key comparisons.
    const auto key_at = [&](size_t sorted_index) -> const Value& {
      return keys[order[sorted_index]][np];
    };
    if (!call.frame.lo_unbounded && !call.frame.hi_unbounded &&
        call.frame.lo > call.frame.hi) {
      // Inverted bounds: every frame is empty. Mirror the ROWS empty-
      // frame convention (COUNT = 0, others NULL) instead of falling
      // through to the sweep, whose pop-before-push order would
      // otherwise momentarily aggregate rows that are not in any frame.
      for (size_t i = part_start; i < part_end; ++i) {
        (*out)[order[i]] =
            call.fn == AggFn::kCount ? Value::Int(0) : Value::Null();
      }
      return Status::OK();
    }
    size_t next_push = part_start;
    size_t next_pop = part_start;
    for (size_t i = part_start; i < part_end; ++i) {
      if (key_at(i).is_null()) {
        return Status::ExecutionError(
            "RANGE frame over NULL ORDER BY keys is not supported");
      }
      if (!key_at(i).is_numeric()) {
        return Status::ExecutionError(
            std::string("RANGE frames require a numeric ORDER BY key, got ") +
            DataTypeName(key_at(i).type()));
      }
      const double key = key_at(i).ToDouble();
      const double lo_bound = key + static_cast<double>(call.frame.lo);
      const double hi_bound = key + static_cast<double>(call.frame.hi);
      while (next_push < part_end &&
             (call.frame.hi_unbounded ||
              (!key_at(next_push).is_null() &&
               key_at(next_push).is_numeric() &&
               key_at(next_push).ToDouble() <= hi_bound))) {
        const size_t row_index = order[next_push];
        aggregate.Push(call.is_count_star ? Value::Int(1) : ctx.args[row_index],
                       next_push);
        ++next_push;
      }
      if (!call.frame.lo_unbounded) {
        while (next_pop < part_end && next_pop < next_push &&
               key_at(next_pop).ToDouble() < lo_bound) {
          ++next_pop;
        }
        aggregate.PopBefore(next_pop);
      }
      if (aggregate.overflowed()) {
        return Status::ExecutionError(
            "integer overflow in windowed SUM (RANGE frame at key " +
            key_at(i).ToString() + ")");
      }
      (*out)[order[i]] = aggregate.Current();
    }
    return Status::OK();
  }

  // Two-pointer sweep: both frame endpoints are monotone in the row
  // index, so each partition row is pushed and popped exactly once
  // (the paper's pipelined O(1)-per-row scheme).
  size_t next_push = part_start;
  const int64_t s = static_cast<int64_t>(part_start);
  const int64_t e = static_cast<int64_t>(part_end);
  for (size_t i = part_start; i < part_end; ++i) {
    const int64_t ii = static_cast<int64_t>(i);
    const int64_t target_lo =
        call.frame.lo_unbounded ? s : std::max(s, ii + call.frame.lo);
    const int64_t target_hi =
        call.frame.hi_unbounded ? e - 1 : std::min(e - 1, ii + call.frame.hi);
    while (static_cast<int64_t>(next_push) <= target_hi) {
      const size_t row_index = order[next_push];
      aggregate.Push(call.is_count_star ? Value::Int(1) : ctx.args[row_index],
                     next_push);
      ++next_push;
    }
    aggregate.PopBefore(static_cast<size_t>(std::max<int64_t>(target_lo, 0)));
    if (target_hi < target_lo) {
      // Empty frame: COUNT = 0, others NULL.
      (*out)[order[i]] =
          call.fn == AggFn::kCount ? Value::Int(0) : Value::Null();
    } else {
      if (aggregate.overflowed()) {
        return Status::ExecutionError(
            "integer overflow in windowed SUM (row " +
            std::to_string(i - part_start + 1) + " of partition)");
      }
      (*out)[order[i]] = aggregate.Current();
    }
  }
  return Status::OK();
}

Status WindowOp::NextImpl(Row* row, bool* eof) {
  if (pos_ >= rows_.size()) {
    *eof = true;
    return Status::OK();
  }
  Row out = std::move(rows_[pos_]);
  for (const std::vector<Value>& column : extra_columns_) {
    out.Append(column[pos_]);
  }
  *row = std::move(out);
  ++pos_;
  *eof = false;
  return Status::OK();
}

}  // namespace rfv
