#include "exec/operators.h"

#include <algorithm>

#include "common/logging.h"
#include "exec/window_frame.h"
#include "expr/eval.h"

namespace rfv {

Status WindowOp::Open() {
  rows_.clear();
  extra_columns_.clear();
  pos_ = 0;
  RFV_RETURN_IF_ERROR(child_->Open());
  while (true) {
    Row row;
    bool eof = false;
    RFV_RETURN_IF_ERROR(child_->Next(&row, &eof));
    if (eof) break;
    rows_.push_back(std::move(row));
  }
  extra_columns_.reserve(calls_.size());
  for (const WindowCall& call : calls_) {
    std::vector<Value> column;
    RFV_RETURN_IF_ERROR(ComputeCall(call, &column));
    extra_columns_.push_back(std::move(column));
  }
  return Status::OK();
}

Status WindowOp::ComputeCall(const WindowCall& call,
                             std::vector<Value>* out) const {
  const size_t n = rows_.size();
  out->assign(n, Value::Null());
  if (n == 0) return Status::OK();

  // Evaluate the argument and the partition/order keys once per row.
  std::vector<Value> args(n);
  if (call.kind == WindowFnKind::kAggregate && !call.is_count_star) {
    for (size_t i = 0; i < n; ++i) {
      RFV_ASSIGN_OR_RETURN(args[i], Evaluator::Eval(*call.arg, rows_[i]));
    }
  }
  const size_t np = call.partition_by.size();
  const size_t no = call.order_by.size();
  std::vector<std::vector<Value>> keys(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i].reserve(np + no);
    for (const ExprPtr& p : call.partition_by) {
      Value v;
      RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(*p, rows_[i]));
      keys[i].push_back(std::move(v));
    }
    for (const SortKey& o : call.order_by) {
      Value v;
      RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(*o.expr, rows_[i]));
      keys[i].push_back(std::move(v));
    }
  }

  // Sort row indices by (partition keys, order keys).
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < np + no; ++k) {
      const int c = keys[a][k].Compare(keys[b][k]);
      if (c != 0) {
        const bool ascending = k < np || call.order_by[k - np].ascending;
        return ascending ? c < 0 : c > 0;
      }
    }
    return false;
  });

  const auto same_partition = [&](size_t a, size_t b) {
    for (size_t k = 0; k < np; ++k) {
      if (keys[a][k].Compare(keys[b][k]) != 0) return false;
    }
    return true;
  };

  SlidingAggregate aggregate(call.fn, call.is_count_star, call.output_type);

  size_t part_start = 0;
  while (part_start < n) {
    size_t part_end = part_start + 1;
    while (part_end < n &&
           same_partition(order[part_start], order[part_end])) {
      ++part_end;
    }

    if (call.kind != WindowFnKind::kAggregate) {
      // Ranking functions: positional within the sorted partition.
      // RANK assigns tied order keys the same (gapped) rank.
      int64_t rank = 1;
      for (size_t i = part_start; i < part_end; ++i) {
        const int64_t row_number = static_cast<int64_t>(i - part_start) + 1;
        if (call.kind == WindowFnKind::kRank) {
          bool tied = i > part_start;
          for (size_t k = np; tied && k < np + no; ++k) {
            tied = keys[order[i]][k].Compare(keys[order[i - 1]][k]) == 0;
          }
          if (!tied) rank = row_number;
          (*out)[order[i]] = Value::Int(rank);
        } else {
          (*out)[order[i]] = Value::Int(row_number);
        }
      }
      part_start = part_end;
      continue;
    }

    if (call.frame.range_mode) {
      // RANGE frames: the window covers rows whose (single, ascending,
      // numeric) order key lies within a value distance of the current
      // key. Both value bounds are non-decreasing, so the same
      // two-pointer sweep applies with key comparisons.
      const auto key_at = [&](size_t sorted_index) -> const Value& {
        return keys[order[sorted_index]][np];
      };
      aggregate.Reset();
      size_t next_push = part_start;
      size_t next_pop = part_start;
      for (size_t i = part_start; i < part_end; ++i) {
        if (key_at(i).is_null()) {
          return Status::ExecutionError(
              "RANGE frame over NULL ORDER BY keys is not supported");
        }
        const double key = key_at(i).ToDouble();
        const double lo_bound = key + static_cast<double>(call.frame.lo);
        const double hi_bound = key + static_cast<double>(call.frame.hi);
        while (next_push < part_end &&
               (call.frame.hi_unbounded ||
                (!key_at(next_push).is_null() &&
                 key_at(next_push).ToDouble() <= hi_bound))) {
          const size_t row_index = order[next_push];
          aggregate.Push(
              call.is_count_star ? Value::Int(1) : args[row_index],
              next_push);
          ++next_push;
        }
        if (!call.frame.lo_unbounded) {
          while (next_pop < part_end && next_pop < next_push &&
                 key_at(next_pop).ToDouble() < lo_bound) {
            ++next_pop;
          }
          aggregate.PopBefore(next_pop);
        }
        (*out)[order[i]] = aggregate.Current();
      }
      part_start = part_end;
      continue;
    }

    // Two-pointer sweep: both frame endpoints are monotone in the row
    // index, so each partition row is pushed and popped exactly once
    // (the paper's pipelined O(1)-per-row scheme).
    aggregate.Reset();
    size_t next_push = part_start;
    const int64_t s = static_cast<int64_t>(part_start);
    const int64_t e = static_cast<int64_t>(part_end);
    for (size_t i = part_start; i < part_end; ++i) {
      const int64_t ii = static_cast<int64_t>(i);
      const int64_t target_lo =
          call.frame.lo_unbounded ? s : std::max(s, ii + call.frame.lo);
      const int64_t target_hi =
          call.frame.hi_unbounded ? e - 1 : std::min(e - 1, ii + call.frame.hi);
      while (static_cast<int64_t>(next_push) <= target_hi) {
        const size_t row_index = order[next_push];
        aggregate.Push(call.is_count_star ? Value::Int(1) : args[row_index],
                       next_push);
        ++next_push;
      }
      aggregate.PopBefore(static_cast<size_t>(std::max<int64_t>(target_lo, 0)));
      if (target_hi < target_lo) {
        // Empty frame: COUNT = 0, others NULL.
        (*out)[order[i]] = call.fn == AggFn::kCount ? Value::Int(0)
                                                    : Value::Null();
      } else {
        (*out)[order[i]] = aggregate.Current();
      }
    }
    part_start = part_end;
  }
  return Status::OK();
}

Status WindowOp::Next(Row* row, bool* eof) {
  if (pos_ >= rows_.size()) {
    *eof = true;
    return Status::OK();
  }
  Row out = std::move(rows_[pos_]);
  for (const std::vector<Value>& column : extra_columns_) {
    out.Append(column[pos_]);
  }
  *row = std::move(out);
  ++pos_;
  *eof = false;
  return Status::OK();
}

}  // namespace rfv
