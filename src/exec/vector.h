#ifndef RFVIEW_EXEC_VECTOR_H_
#define RFVIEW_EXEC_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/row.h"
#include "common/value.h"
#include "exec/batch.h"

namespace rfv {

/// One column of a VectorProjection: a fixed-length array of scalar
/// cells in structure-of-arrays layout. Each element carries its own
/// DataType tag (kNull marks NULL, folding the null bitmap into the tag
/// lane) because the engine's INSERT path stores values without coercing
/// them to the declared column type — an INTEGER literal inserted into a
/// DOUBLE column stays an int64 cell, and materialized rows must
/// reproduce those exact tags for the row/batch/vector execution modes
/// to be byte-identical.
///
/// Numeric and boolean payloads live in dedicated lanes (`i64_`, `f64_`;
/// booleans reuse the int64 lane as 0/1), so typed inner loops read a
/// flat array with one predictable tag branch per element instead of
/// walking a std::variant. The string lane is sized lazily — purely
/// numeric vectors never touch it.
class Vector {
 public:
  /// Resizes to `n` elements, all NULL. Lane storage is retained across
  /// Reset calls, so steady-state reuse performs no allocations.
  void Reset(size_t n) {
    size_ = n;
    tag_.assign(n, static_cast<uint8_t>(DataType::kNull));
    if (i64_.size() < n) i64_.resize(n);
    if (f64_.size() < n) f64_.resize(n);
  }

  size_t size() const { return size_; }

  DataType tag(size_t i) const { return static_cast<DataType>(tag_[i]); }
  bool is_null(size_t i) const { return tag_[i] == 0; }

  /// Lane accessors. Preconditions: the element carries the matching tag.
  int64_t i64(size_t i) const { return i64_[i]; }
  double f64(size_t i) const { return f64_[i]; }
  bool b(size_t i) const { return i64_[i] != 0; }
  const std::string& str(size_t i) const { return str_[i]; }

  /// Numeric coercion mirroring Value::ToDouble. Precondition: the
  /// element is kInt64 or kDouble.
  double ToDouble(size_t i) const {
    return tag_[i] == static_cast<uint8_t>(DataType::kInt64)
               ? static_cast<double>(i64_[i])
               : f64_[i];
  }

  void SetNull(size_t i) { tag_[i] = static_cast<uint8_t>(DataType::kNull); }
  void SetInt(size_t i, int64_t v) {
    tag_[i] = static_cast<uint8_t>(DataType::kInt64);
    i64_[i] = v;
  }
  void SetDouble(size_t i, double v) {
    tag_[i] = static_cast<uint8_t>(DataType::kDouble);
    f64_[i] = v;
  }
  void SetBool(size_t i, bool v) {
    tag_[i] = static_cast<uint8_t>(DataType::kBool);
    i64_[i] = v ? 1 : 0;
  }
  void SetString(size_t i, std::string v) {
    tag_[i] = static_cast<uint8_t>(DataType::kString);
    if (str_.size() < size_) str_.resize(size_);
    str_[i] = std::move(v);
  }

  /// Boxes element `i` as a Value (tag-exact).
  Value GetValue(size_t i) const;

  /// Unboxes a Value into element `i` (tag-exact).
  void SetValue(size_t i, const Value& v);

  /// Copies element `j` of `from` into element `i` of this vector.
  void CopyFrom(size_t i, const Vector& from, size_t j) {
    switch (from.tag(j)) {
      case DataType::kNull: SetNull(i); break;
      case DataType::kInt64: SetInt(i, from.i64_[j]); break;
      case DataType::kDouble: SetDouble(i, from.f64_[j]); break;
      case DataType::kBool: SetBool(i, from.i64_[j] != 0); break;
      case DataType::kString: SetString(i, from.str_[j]); break;
    }
  }

 private:
  size_t size_ = 0;
  std::vector<uint8_t> tag_;
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<std::string> str_;
};

/// The set of row positions of a VectorProjection that are still alive:
/// an ascending list of indices into the projection's vectors. Filters
/// narrow the selection in place instead of copying surviving rows;
/// downstream operators iterate only the selected positions. Always kept
/// sorted ascending, so vectorized consumers visit rows in the same
/// order the row-at-a-time path does (this is what keeps group
/// insertion order and floating-point accumulation order identical
/// across execution modes).
class SelectionVector {
 public:
  /// Identity selection over `n` rows (0, 1, ..., n-1).
  void InitFull(size_t n) {
    idx_.resize(n);
    for (size_t i = 0; i < n; ++i) idx_[i] = static_cast<uint32_t>(i);
  }

  size_t size() const { return idx_.size(); }
  bool empty() const { return idx_.empty(); }
  uint32_t operator[](size_t k) const { return idx_[k]; }

  /// Keeps only the first `k` selected positions (LimitOp).
  void Truncate(size_t k) {
    if (k < idx_.size()) idx_.resize(k);
  }

  void Clear() { idx_.clear(); }

  /// Direct access for in-place compaction by the vector evaluator.
  std::vector<uint32_t>& indices() { return idx_; }
  const std::vector<uint32_t>& indices() const { return idx_; }

 private:
  std::vector<uint32_t> idx_;
};

/// A batch of rows in columnar form: one Vector per output column, all
/// of the same length (`num_rows`), plus a SelectionVector naming the
/// positions that are logically present. This is the unit of exchange of
/// the vectorized pull style (PhysicalOperator::NextVector). Producers
/// own their projection and hand out a pointer; consumers may narrow the
/// selection in place (filter, limit) without touching the column data.
class VectorProjection {
 public:
  /// Resets to `num_columns` vectors of `num_rows` NULL cells with a
  /// full selection. Column storage is reused across calls.
  void Reset(size_t num_columns, size_t num_rows) {
    columns_.resize(num_columns);
    for (Vector& c : columns_) c.Reset(num_rows);
    sel_.InitFull(num_rows);
    num_rows_ = num_rows;
  }

  size_t num_columns() const { return columns_.size(); }
  /// Physical extent of the column vectors (pre-selection).
  size_t num_rows() const { return num_rows_; }
  /// Logically present rows (post-selection).
  size_t NumSelected() const { return sel_.size(); }

  Vector& column(size_t c) { return columns_[c]; }
  const Vector& column(size_t c) const { return columns_[c]; }

  SelectionVector& sel() { return sel_; }
  const SelectionVector& sel() const { return sel_; }

  /// Transposes a RowBatch into columns (full selection) — the adapter
  /// that lets any row/batch operator feed a vectorized consumer.
  void FromBatch(size_t num_columns, const RowBatch& batch);

  /// Materializes row position `pos` (not a selection slot) as a Row.
  void MaterializeRow(size_t pos, Row* out) const;

  /// Appends every selected row, in selection order, to *out — the
  /// row-materialization adapter at blocking-operator and root
  /// boundaries.
  void AppendSelectedTo(std::vector<Row>* out) const;

 private:
  std::vector<Vector> columns_;
  SelectionVector sel_;
  size_t num_rows_ = 0;
};

/// Hash of one vector cell, identical to Value::Hash() of the boxed
/// cell: NULL hashes to the golden-ratio constant, numerics hash by
/// their double representation (Int(2) and Double(2.0) collide, matching
/// Value::Compare), -0.0 normalizes to 0. Keeping this bit-exact with
/// Value::Hash is what lets the vectorized hash join and aggregate share
/// bucketization with the row path's RowColumnsHash tables.
inline uint64_t VectorCellHash(const Vector& v, size_t i) {
  switch (v.tag(i)) {
    case DataType::kNull:
      return 0x9e3779b97f4a7c15ull;
    case DataType::kBool:
      return std::hash<bool>{}(v.b(i));
    case DataType::kInt64:
    case DataType::kDouble: {
      const double d = v.ToDouble(i);
      if (d == 0.0) return 0;  // normalize -0.0
      return std::hash<double>{}(d);
    }
    case DataType::kString:
      return std::hash<std::string>{}(v.str(i));
  }
  return 0;
}

/// Cell-to-cell equality mirroring Value::Compare(...) == 0: NULLs
/// compare equal to each other only, int64/int64 compares exactly, mixed
/// numerics compare as double. Used by the vectorized hash join's chain
/// chase so probe/build matching is identical to the row path's
/// Value-keyed map lookups.
inline bool VectorCellsEqual(const Vector& a, size_t i, const Vector& b,
                             size_t j) {
  const DataType ta = a.tag(i);
  const DataType tb = b.tag(j);
  const bool na = ta == DataType::kInt64 || ta == DataType::kDouble;
  const bool nb = tb == DataType::kInt64 || tb == DataType::kDouble;
  if (na && nb) {
    if (ta == DataType::kInt64 && tb == DataType::kInt64) {
      return a.i64(i) == b.i64(j);
    }
    return a.ToDouble(i) == b.ToDouble(j);
  }
  if (ta != tb) return false;
  switch (ta) {
    case DataType::kNull: return true;
    case DataType::kBool: return a.b(i) == b.b(j);
    case DataType::kString: return a.str(i) == b.str(j);
    default: return false;  // unreachable: numerics handled above
  }
}

/// Cell-to-Value equality with the same semantics as VectorCellsEqual —
/// the vectorized aggregate's group-key compare against its stored boxed
/// keys, without boxing the incoming cell.
inline bool VectorCellEqualsValue(const Vector& v, size_t i,
                                  const Value& val) {
  const DataType tv = v.tag(i);
  const DataType tw = val.type();
  const bool nv = tv == DataType::kInt64 || tv == DataType::kDouble;
  const bool nw = tw == DataType::kInt64 || tw == DataType::kDouble;
  if (nv && nw) {
    if (tv == DataType::kInt64 && tw == DataType::kInt64) {
      return v.i64(i) == val.AsInt();
    }
    return v.ToDouble(i) == val.ToDouble();
  }
  if (tv != tw) return false;
  switch (tv) {
    case DataType::kNull: return true;
    case DataType::kBool: return v.b(i) == val.AsBool();
    case DataType::kString: return v.str(i) == val.AsString();
    default: return false;
  }
}

/// Bulk hash kernel, shared by the vectorized hash join (build and
/// probe) and the vectorized aggregate ingest: for every selected
/// position p, combines the cells of `keys` into (*out)[p] with exactly
/// the RowColumnsHash mixing over Value-consistent cell hashes, one
/// column at a time. *out is indexed by row position (resized to
/// `num_rows`); unselected slots are left unspecified.
void HashVectorColumns(const std::vector<const Vector*>& keys,
                       const SelectionVector& sel, size_t num_rows,
                       std::vector<uint64_t>* out);

}  // namespace rfv

#endif  // RFVIEW_EXEC_VECTOR_H_
