// Merge band join: extraction of BandJoinSpec from join conditions and
// the MergeBandJoinOp runtime. See the class comment in exec/operators.h
// for the execution strategy; the extraction mirrors the recognizer
// vocabulary of TryExtractIndexProbe (exec/join.cc) but targets the
// sorted-right-side merge instead of an ordered index, so it also works
// when no index exists and turns the paper's disjunctive stride
// predicates (Figures 10/13) into congruence-class enumeration instead
// of hull scans.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <utility>

#include "common/metrics_registry.h"
#include "exec/operators.h"
#include "exec/vector_eval.h"
#include "expr/builder.h"
#include "expr/eval.h"
#include "plan/planner.h"

namespace rfv {

namespace {

Counter* BandJoinRowsCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "rfv_band_join_rows_total", {},
      "Rows emitted by merge band join operators");
  return c;
}

/// Floored (mathematical) modulo, matching the evaluator's MOD: the
/// result takes the divisor's sign, so a == b (mod w) exactly when
/// FlooredMod(a, w) == FlooredMod(b, w).
int64_t FlooredMod(int64_t a, int64_t w) {
  int64_t m = a % w;
  if (m != 0 && ((m < 0) != (w < 0))) m += w;
  return m;
}

/// If `expr` is `colref(column)` or `colref(column) ± <int literal>`,
/// returns the offset d with expr = col + d (Fig. 2/4 IN-candidates).
std::optional<int64_t> AffineOffset(const Expr& expr, size_t column) {
  if (expr.kind == ExprKind::kColumnRef) {
    return expr.column_index == column ? std::optional<int64_t>(0)
                                       : std::nullopt;
  }
  if (expr.kind == ExprKind::kBinary &&
      (expr.binary_op == BinaryOp::kAdd || expr.binary_op == BinaryOp::kSub)) {
    const Expr& lhs = *expr.children[0];
    const Expr& rhs = *expr.children[1];
    if (lhs.kind == ExprKind::kColumnRef && lhs.column_index == column &&
        rhs.kind == ExprKind::kLiteral &&
        rhs.literal.type() == DataType::kInt64) {
      const int64_t d = rhs.literal.AsInt();
      return expr.binary_op == BinaryOp::kAdd ? d : -d;
    }
    if (expr.binary_op == BinaryOp::kAdd && rhs.kind == ExprKind::kColumnRef &&
        rhs.column_index == column && lhs.kind == ExprKind::kLiteral &&
        lhs.literal.type() == DataType::kInt64) {
      return lhs.literal.AsInt();
    }
  }
  return std::nullopt;
}

/// `MOD(e, w)` with a positive int literal w: returns (e, w).
std::optional<std::pair<const Expr*, int64_t>> AsModCall(const Expr& expr) {
  if (expr.kind != ExprKind::kFunction || expr.function != ScalarFn::kMod ||
      expr.children.size() != 2) {
    return std::nullopt;
  }
  const Expr& divisor = *expr.children[1];
  if (divisor.kind != ExprKind::kLiteral ||
      divisor.literal.type() != DataType::kInt64) {
    return std::nullopt;
  }
  const int64_t w = divisor.literal.AsInt();
  if (w <= 0) return std::nullopt;  // MOD-by-zero stays an interpreter error
  return std::make_pair(expr.children[0].get(), w);
}

/// Folds one conjunct into the band under construction. Returns false
/// when the conjunct is not representable (or would conflict with what
/// the band already holds); the caller leaves it for the residual.
bool FoldConjunct(const Expr& conjunct, size_t left_width, size_t abs_col,
                  BandSpec* band) {
  const auto is_left_only = [&](const Expr& e) {
    return RefsOnlyRange(e, 0, left_width);
  };
  const auto is_key_col = [&](const Expr& e) {
    return e.kind == ExprKind::kColumnRef && e.column_index == abs_col;
  };

  switch (conjunct.kind) {
    case ExprKind::kBinary: {
      const Expr& lhs = *conjunct.children[0];
      const Expr& rhs = *conjunct.children[1];
      BinaryOp op = conjunct.binary_op;

      // Congruence: MOD(left expr, w) = MOD(key, w), either orientation.
      if (op == BinaryOp::kEq) {
        const auto lmod = AsModCall(lhs);
        const auto rmod = AsModCall(rhs);
        if (lmod.has_value() && rmod.has_value() &&
            lmod->second == rmod->second) {
          const Expr* key_side = nullptr;
          const Expr* anchor_side = nullptr;
          if (is_key_col(*lmod->first) && is_left_only(*rmod->first)) {
            key_side = lmod->first;
            anchor_side = rmod->first;
          } else if (is_key_col(*rmod->first) && is_left_only(*lmod->first)) {
            key_side = rmod->first;
            anchor_side = lmod->first;
          }
          if (key_side != nullptr) {
            if (band->modulus != 0) return false;  // one congruence per band
            band->anchor = anchor_side->Clone();
            band->modulus = lmod->second;
            return true;
          }
          return false;
        }
      }

      const Expr* other = nullptr;
      if (is_key_col(lhs) && is_left_only(rhs)) {
        other = &rhs;
      } else if (is_key_col(rhs) && is_left_only(lhs)) {
        other = &lhs;
        switch (op) {  // mirror: e <op> key  ⇔  key <mirror(op)> e
          case BinaryOp::kLt: op = BinaryOp::kGt; break;
          case BinaryOp::kLe: op = BinaryOp::kGe; break;
          case BinaryOp::kGt: op = BinaryOp::kLt; break;
          case BinaryOp::kGe: op = BinaryOp::kLe; break;
          default: break;
        }
      } else {
        return false;
      }

      switch (op) {
        case BinaryOp::kEq:
          if (band->lo != nullptr || band->hi != nullptr) return false;
          band->lo = other->Clone();
          band->hi = other->Clone();
          band->is_point = true;
          return true;
        case BinaryOp::kLe:
        case BinaryOp::kLt:
          if (band->hi != nullptr) return false;
          band->hi = other->Clone();
          band->hi_strict = (op == BinaryOp::kLt);
          return true;
        case BinaryOp::kGe:
        case BinaryOp::kGt:
          if (band->lo != nullptr) return false;
          band->lo = other->Clone();
          band->lo_strict = (op == BinaryOp::kGt);
          return true;
        default:
          return false;
      }
    }
    case ExprKind::kBetween: {
      if (!is_key_col(*conjunct.children[0])) return false;
      if (!is_left_only(*conjunct.children[1]) ||
          !is_left_only(*conjunct.children[2])) {
        return false;
      }
      if (band->lo != nullptr || band->hi != nullptr) return false;
      band->lo = conjunct.children[1]->Clone();
      band->hi = conjunct.children[2]->Clone();
      return true;
    }
    default:
      return false;
  }
}

/// Expands `key IN (left exprs)` / `left expr IN (key ± c, ...)` into
/// one point band per candidate. Returns false when the conjunct is not
/// a recognizable IN on the key column.
bool ExpandInConjunct(const Expr& conjunct, size_t left_width, size_t abs_col,
                      std::vector<BandSpec>* out) {
  if (conjunct.kind != ExprKind::kIn) return false;
  const auto is_left_only = [&](const Expr& e) {
    return RefsOnlyRange(e, 0, left_width);
  };
  const Expr& needle = *conjunct.children[0];
  std::vector<BandSpec> bands;
  if (needle.kind == ExprKind::kColumnRef && needle.column_index == abs_col) {
    for (size_t i = 1; i < conjunct.children.size(); ++i) {
      if (!is_left_only(*conjunct.children[i])) return false;
      BandSpec b;
      b.lo = conjunct.children[i]->Clone();
      b.hi = conjunct.children[i]->Clone();
      b.is_point = true;
      bands.push_back(std::move(b));
    }
  } else if (is_left_only(needle)) {
    for (size_t i = 1; i < conjunct.children.size(); ++i) {
      const std::optional<int64_t> d =
          AffineOffset(*conjunct.children[i], abs_col);
      if (!d.has_value()) return false;
      BandSpec b;
      b.lo = eb::Sub(needle.Clone(), eb::Int(*d));
      b.hi = b.lo->Clone();
      b.is_point = true;
      bands.push_back(std::move(b));
    }
  } else {
    return false;
  }
  if (bands.empty()) return false;
  *out = std::move(bands);
  return true;
}

bool BandHasShape(const BandSpec& band) {
  return band.lo != nullptr || band.hi != nullptr || band.modulus != 0;
}

/// Extraction for one candidate key column. `approximate` is set when
/// an OR branch carried conjuncts that could not be folded (the bands
/// then over-approximate and the caller must re-check the condition).
std::optional<BandJoinSpec> ExtractForKeyColumn(const Expr& condition,
                                                size_t left_width,
                                                size_t abs_col,
                                                size_t table_col) {
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(condition.Clone(), &conjuncts);

  BandSpec base;
  bool base_used = false;
  std::vector<BandSpec> in_bands;
  std::vector<BandSpec> or_bands;
  bool or_approx = false;

  for (ExprPtr& conjunct : conjuncts) {
    if (FoldConjunct(*conjunct, left_width, abs_col, &base)) {
      base_used = true;
      conjunct.reset();
      continue;
    }
    if (in_bands.empty() &&
        ExpandInConjunct(*conjunct, left_width, abs_col, &in_bands)) {
      conjunct.reset();
      continue;
    }
    if (or_bands.empty() && conjunct->kind == ExprKind::kBinary &&
        conjunct->binary_op == BinaryOp::kOr) {
      // Each OR branch must yield a band of its own; a branch with
      // unfoldable extras widens (superset) and forces a recheck.
      std::vector<const Expr*> leaves;
      std::vector<const Expr*> stack = {conjunct.get()};
      while (!stack.empty()) {
        const Expr* e = stack.back();
        stack.pop_back();
        if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kOr) {
          stack.push_back(e->children[0].get());
          stack.push_back(e->children[1].get());
        } else {
          leaves.push_back(e);
        }
      }
      std::vector<BandSpec> branches;
      bool branches_ok = true;
      bool leftovers = false;
      for (const Expr* leaf : leaves) {
        std::vector<ExprPtr> branch_conjuncts;
        SplitConjuncts(leaf->Clone(), &branch_conjuncts);
        BandSpec branch;
        for (const ExprPtr& bc : branch_conjuncts) {
          if (!FoldConjunct(*bc, left_width, abs_col, &branch)) {
            leftovers = true;
          }
        }
        if (!BandHasShape(branch)) {
          branches_ok = false;  // this branch admits arbitrary keys
          break;
        }
        branches.push_back(std::move(branch));
      }
      if (branches_ok) {
        or_bands = std::move(branches);
        or_approx = leftovers;
        conjunct.reset();
        continue;
      }
    }
    // Unrecognized conjunct: stays in the residual.
  }

  // Exactly one band source keeps the semantics obvious; the paper's
  // patterns never mix them.
  int sources = (base_used ? 1 : 0) + (in_bands.empty() ? 0 : 1) +
                (or_bands.empty() ? 0 : 1);
  if (sources != 1) return std::nullopt;

  BandJoinSpec spec;
  spec.right_column = table_col;
  if (base_used) {
    spec.bands.push_back(std::move(base));
  } else if (!in_bands.empty()) {
    spec.bands = std::move(in_bands);
  } else {
    spec.bands = std::move(or_bands);
    spec.approximate = or_approx;
  }

  // Decline shapes other strategies already handle better: a single
  // unconstrained point is the hash/index equi join, and a band with no
  // shape at all is the cross product.
  if (spec.bands.size() == 1) {
    const BandSpec& only = spec.bands[0];
    if (!BandHasShape(only)) return std::nullopt;
    if (only.is_point && only.modulus == 0) return std::nullopt;
    if (only.lo == nullptr && only.hi == nullptr && only.modulus == 0) {
      return std::nullopt;
    }
  }

  std::vector<ExprPtr> residual_conjuncts;
  for (ExprPtr& c : conjuncts) {
    if (c != nullptr) residual_conjuncts.push_back(std::move(c));
  }
  spec.residual = CombineConjuncts(std::move(residual_conjuncts));
  return spec;
}

}  // namespace

std::optional<BandJoinSpec> TryExtractBandJoin(const Expr& condition,
                                               size_t left_width,
                                               Table* right_table) {
  std::optional<BandJoinSpec> best;
  int best_rank = -1;
  for (size_t table_col = 0; table_col < right_table->schema().NumColumns();
       ++table_col) {
    if (right_table->schema().column(table_col).type != DataType::kInt64) {
      continue;
    }
    std::optional<BandJoinSpec> spec = ExtractForKeyColumn(
        condition, left_width, left_width + table_col, table_col);
    if (!spec.has_value()) continue;
    // Prefer stride bands (congruence prunes hardest), then multi-band,
    // then two-sided intervals, then exactness.
    int rank = 0;
    bool any_modulus = false;
    bool two_sided = true;
    for (const BandSpec& b : spec->bands) {
      any_modulus = any_modulus || b.modulus != 0;
      two_sided = two_sided && b.lo != nullptr && b.hi != nullptr;
    }
    if (any_modulus) rank += 8;
    if (spec->bands.size() > 1) rank += 4;
    if (two_sided) rank += 2;
    if (!spec->approximate) rank += 1;
    if (rank > best_rank) {
      best_rank = rank;
      best = std::move(spec);
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// MergeBandJoinOp
// ---------------------------------------------------------------------------

Status MergeBandJoinOp::OpenImpl() {
  left_valid_ = false;
  left_matched_ = false;
  candidates_.clear();
  candidate_pos_ = 0;
  right_rows_.clear();
  keys_.clear();
  dense_.clear();
  dense_valid_ = false;
  left_vp_ = nullptr;
  left_lane_pos_ = 0;
  left_input_eof_ = false;

  RFV_RETURN_IF_ERROR(left_->Open());
  RFV_RETURN_IF_ERROR(right_->Open());
  right_width_ = right_->schema().NumColumns();

  RFV_RETURN_IF_ERROR(DrainChild(right_.get(), &right_rows_));
  NoteBufferedRows(right_rows_.size());

  keys_.reserve(right_rows_.size());
  for (size_t id = 0; id < right_rows_.size(); ++id) {
    const Value& v = right_rows_[id][spec_.right_column];
    if (v.is_null()) continue;  // NULL keys never satisfy a band
    keys_.emplace_back(v.AsInt(), id);
  }
  // Base tables in sequence order (the common case for the paper's pos
  // column) arrive already sorted — detect in O(m) and skip the sort.
  // The check runs on right_rows_, which DrainChild filled from the
  // right scan's PINNED snapshot, so the ordered-skip decision and the
  // rows it indexes are the same frozen version even when live storage
  // mutates (or compacts out of order) mid-query.
  if (!std::is_sorted(keys_.begin(), keys_.end())) {
    std::sort(keys_.begin(), keys_.end());
  }
  // Dense direct-address table when the keys are unique and contiguous
  // (a sequence's 1..n positions): point and stride probes become O(1).
  if (!keys_.empty()) {
    bool contiguous = true;
    for (size_t i = 1; i < keys_.size() && contiguous; ++i) {
      contiguous = keys_[i].first == keys_[i - 1].first + 1;
    }
    if (contiguous) {
      dense_base_ = keys_.front().first;
      dense_.resize(keys_.size());
      for (const auto& [key, id] : keys_) {
        dense_[static_cast<size_t>(key - dense_base_)] = id;
      }
      dense_valid_ = true;
    }
  }
  cursors_.assign(spec_.bands.size(), 0);
  prev_lo_.assign(spec_.bands.size(), std::numeric_limits<int64_t>::min());

  // Vector-native output: transpose the (snapshot-stable) right side
  // once into columnar gather-source lanes. The row array stays alive
  // for the row/batch pull styles.
  if (vectorized()) {
    right_vp_.Reset(right_width_, right_rows_.size());
    for (size_t id = 0; id < right_rows_.size(); ++id) {
      const Row& row = right_rows_[id];
      for (size_t c = 0; c < right_width_; ++c) {
        right_vp_.column(c).SetValue(id, row[c]);
      }
    }
  }
  return Status::OK();
}

Status MergeBandJoinOp::ResolveBand(const BandSpec& band, const Row& left_row,
                                    ResolvedBand* out) const {
  out->empty = false;
  out->lo = std::numeric_limits<int64_t>::min();
  out->hi = std::numeric_limits<int64_t>::max();
  out->modulus = 0;

  const auto resolve_bound = [&](const Expr& expr, bool strict, bool is_lo,
                                 int64_t* bound) -> Status {
    Value v;
    RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(expr, left_row));
    if (v.is_null()) {
      out->empty = true;  // comparison with NULL is never true
      return Status::OK();
    }
    if (v.type() == DataType::kInt64) {
      int64_t b = v.AsInt();
      if (strict) {
        if (is_lo) {
          if (b == std::numeric_limits<int64_t>::max()) {
            out->empty = true;
            return Status::OK();
          }
          ++b;
        } else {
          if (b == std::numeric_limits<int64_t>::min()) {
            out->empty = true;
            return Status::OK();
          }
          --b;
        }
      }
      *bound = b;
      return Status::OK();
    }
    if (v.type() == DataType::kDouble) {
      // Integer keys against a fractional bound: round inward; a strict
      // integral bound tightens by one.
      const double d = v.AsDouble();
      double rounded = is_lo ? std::ceil(d) : std::floor(d);
      if (strict && rounded == d) rounded += is_lo ? 1.0 : -1.0;
      if (is_lo && rounded < -9.2e18) rounded = -9.2e18;
      if (!is_lo && rounded > 9.2e18) rounded = 9.2e18;
      *bound = static_cast<int64_t>(rounded);
      return Status::OK();
    }
    return Status::TypeError("band join bound must be numeric");
  };

  if (band.lo != nullptr) {
    RFV_RETURN_IF_ERROR(
        resolve_bound(*band.lo, band.lo_strict, /*is_lo=*/true, &out->lo));
    if (out->empty) return Status::OK();
  }
  if (band.hi != nullptr) {
    RFV_RETURN_IF_ERROR(
        resolve_bound(*band.hi, band.hi_strict, /*is_lo=*/false, &out->hi));
    if (out->empty) return Status::OK();
  }
  if (band.modulus > 1) {
    Value a;
    RFV_ASSIGN_OR_RETURN(a, Evaluator::Eval(*band.anchor, left_row));
    if (a.is_null() || a.type() != DataType::kInt64) {
      out->empty = true;  // MOD(NULL, w) = anything is never true
      return Status::OK();
    }
    out->modulus = band.modulus;
    out->residue = FlooredMod(a.AsInt(), band.modulus);
  }
  if (out->lo > out->hi) out->empty = true;
  return Status::OK();
}

void MergeBandJoinOp::CollectBand(const ResolvedBand& band,
                                  size_t band_index) {
  if (band.empty || keys_.empty()) return;
  const int64_t lo = std::max(band.lo, keys_.front().first);
  const int64_t hi = std::min(band.hi, keys_.back().first);
  if (lo > hi) return;

  if (band.modulus > 1) {
    // Enumerate the congruence class k ≡ residue (mod w) inside
    // [lo, hi]: the paper's stride chains. Dense tables answer each
    // stride point in O(1); otherwise compare the chain length against
    // the interval population and pick the cheaper side.
    const int64_t w = band.modulus;
    const int64_t k0 = lo + FlooredMod(band.residue - lo, w);
    if (k0 > hi) return;
    if (dense_valid_) {
      for (int64_t k = k0; k <= hi; k += w) {
        candidates_.push_back(dense_[static_cast<size_t>(k - dense_base_)]);
      }
      return;
    }
    const auto range_begin = std::lower_bound(
        keys_.begin(), keys_.end(),
        std::make_pair(lo, std::numeric_limits<size_t>::min()));
    const auto range_end = std::upper_bound(
        keys_.begin(), keys_.end(),
        std::make_pair(hi, std::numeric_limits<size_t>::max()));
    const int64_t chain = (hi - k0) / w + 1;
    if (chain < range_end - range_begin) {
      auto it = range_begin;
      for (int64_t k = k0; k <= hi; k += w) {
        it = std::lower_bound(
            it, range_end,
            std::make_pair(k, std::numeric_limits<size_t>::min()));
        while (it != range_end && it->first == k) {
          candidates_.push_back(it->second);
          ++it;
        }
      }
    } else {
      for (auto it = range_begin; it != range_end; ++it) {
        if (FlooredMod(it->first, w) == band.residue) {
          candidates_.push_back(it->second);
        }
      }
    }
    return;
  }

  // Plain interval: monotone start cursor. The paper's frames move
  // forward with the left row's position, so the cursor only ever
  // advances and the whole join is one O(n + matches) merge pass; a
  // backward-moving bound falls back to binary search.
  size_t start;
  if (lo >= prev_lo_[band_index]) {
    start = cursors_[band_index];
    while (start < keys_.size() && keys_[start].first < lo) ++start;
  } else {
    start = static_cast<size_t>(
        std::lower_bound(
            keys_.begin(), keys_.end(),
            std::make_pair(lo, std::numeric_limits<size_t>::min())) -
        keys_.begin());
  }
  cursors_[band_index] = start;
  prev_lo_[band_index] = lo;
  for (size_t i = start; i < keys_.size() && keys_[i].first <= hi; ++i) {
    candidates_.push_back(keys_[i].second);
  }
}

Status MergeBandJoinOp::ResolveCandidates() {
  candidates_.clear();
  candidate_pos_ = 0;
  for (size_t i = 0; i < spec_.bands.size(); ++i) {
    ResolvedBand resolved;
    RFV_RETURN_IF_ERROR(ResolveBand(spec_.bands[i], current_left_, &resolved));
    CollectBand(resolved, i);
  }
  if (spec_.bands.size() > 1) {
    // Overlapping bands (OR semantics) must not emit a pair twice.
    std::sort(candidates_.begin(), candidates_.end());
    candidates_.erase(std::unique(candidates_.begin(), candidates_.end()),
                      candidates_.end());
  }
  return Status::OK();
}

Status MergeBandJoinOp::AdvanceLeft(bool* eof) {
  RFV_RETURN_IF_ERROR(left_->Next(&current_left_, eof));
  left_valid_ = !*eof;
  left_matched_ = false;
  candidates_.clear();
  candidate_pos_ = 0;
  if (*eof) return Status::OK();
  return ResolveCandidates();
}

Status MergeBandJoinOp::NextImpl(Row* row, bool* eof) {
  while (true) {
    if (!left_valid_) {
      bool left_eof = false;
      RFV_RETURN_IF_ERROR(AdvanceLeft(&left_eof));
      if (left_eof) {
        *eof = true;
        return Status::OK();
      }
    }
    while (candidate_pos_ < candidates_.size()) {
      const size_t right_id = candidates_[candidate_pos_++];
      Row joined = Row::Concat(current_left_, right_rows_[right_id]);
      bool match = true;
      if (spec_.residual != nullptr) {
        RFV_ASSIGN_OR_RETURN(
            match, Evaluator::EvalPredicate(*spec_.residual, joined));
      }
      if (match) {
        left_matched_ = true;
        BandJoinRowsCounter()->Increment();
        *row = std::move(joined);
        *eof = false;
        return Status::OK();
      }
    }
    if (join_type_ == JoinType::kLeftOuter && !left_matched_) {
      Row joined = current_left_;
      for (size_t i = 0; i < right_width_; ++i) joined.Append(Value::Null());
      left_valid_ = false;
      *row = std::move(joined);
      *eof = false;
      return Status::OK();
    }
    left_valid_ = false;
  }
}

Status MergeBandJoinOp::NextVectorImpl(VectorProjection** out, bool* eof) {
  // The native path is only wired up when the planner stamped this
  // operator vectorized (right_vp_ exists then); a direct NextVector on
  // an unstamped instance keeps the transpose-fallback behavior.
  if (!vectorized()) return PhysicalOperator::NextVectorImpl(out, eof);

  const size_t left_width = left_->schema().NumColumns();
  out_vp_.Reset(left_width + right_width_, vector_capacity_);
  size_t filled = 0;
  int64_t matched = 0;

  while (filled < vector_capacity_) {
    if (!left_valid_) {
      // Advance to the next left lane, pulling fresh left input as
      // needed. Drain-first: the final child vector may be non-empty
      // with eof already set.
      while (left_vp_ == nullptr ||
             left_lane_pos_ >= left_vp_->NumSelected()) {
        if (left_input_eof_) goto drained;
        bool child_eof = false;
        if (left_->vectorized()) {
          RFV_RETURN_IF_ERROR(left_->NextVector(&left_vp_, &child_eof));
        } else {
          RFV_RETURN_IF_ERROR(left_->NextBatch(&left_batch_, &child_eof));
          left_src_vp_.FromBatch(left_width, left_batch_);
          left_vp_ = &left_src_vp_;
        }
        left_input_eof_ = child_eof;
        left_lane_pos_ = 0;
        if (left_vp_ != nullptr && left_vp_->NumSelected() == 0) {
          left_vp_ = nullptr;
        }
      }
      current_lane_ = left_vp_->sel()[left_lane_pos_++];
      // The band bounds are per-left-row scalars: resolve them on the
      // materialized row (O(left rows), not O(matches) — the match
      // emission below never boxes).
      left_vp_->MaterializeRow(current_lane_, &current_left_);
      left_valid_ = true;
      left_matched_ = false;
      RFV_RETURN_IF_ERROR(ResolveCandidates());
      if (spec_.residual != nullptr && !candidates_.empty()) {
        RFV_RETURN_IF_ERROR(FilterJoinCandidates(*spec_.residual, *left_vp_,
                                                 current_lane_, right_vp_,
                                                 &residual_scratch_,
                                                 &candidates_));
      }
      left_matched_ = !candidates_.empty();
    }
    if (candidate_pos_ < candidates_.size()) {
      const size_t run = std::min(vector_capacity_ - filled,
                                  candidates_.size() - candidate_pos_);
      GatherJoinRun(*left_vp_, current_lane_, right_vp_, candidates_,
                    candidate_pos_, run, filled, &out_vp_);
      candidate_pos_ += run;
      filled += run;
      matched += static_cast<int64_t>(run);
      if (candidate_pos_ >= candidates_.size()) left_valid_ = false;
      continue;
    }
    if (join_type_ == JoinType::kLeftOuter && !left_matched_) {
      GatherNullPaddedRow(*left_vp_, current_lane_, right_width_, filled,
                          &out_vp_);
      ++filled;
    }
    left_valid_ = false;
  }

drained:
  out_vp_.sel().Truncate(filled);
  if (matched > 0) BandJoinRowsCounter()->Increment(matched);
  *out = &out_vp_;
  *eof = left_input_eof_ && !left_valid_ &&
         (left_vp_ == nullptr || left_lane_pos_ >= left_vp_->NumSelected());
  return Status::OK();
}

}  // namespace rfv
