#ifndef RFVIEW_COMMON_ROW_H_
#define RFVIEW_COMMON_ROW_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/value.h"

namespace rfv {

/// A tuple of Values. Rows are plain data: the executor moves and copies
/// them freely; schema information lives separately in `Schema`.
class Row {
 public:
  Row() = default;
  explicit Row(std::vector<Value> values) : values_(std::move(values)) {}
  Row(std::initializer_list<Value> values) : values_(values) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const Value& operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Concatenates two rows (used by join operators).
  static Row Concat(const Row& left, const Row& right);

  const std::vector<Value>& values() const { return values_; }

  bool operator==(const Row& other) const { return values_ == other.values_; }

  /// Renders as "(v1, v2, ...)".
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

/// Hash functor over a projection of row columns; used by hash join and
/// hash aggregation.
struct RowColumnsHash {
  size_t operator()(const std::vector<Value>& key) const {
    size_t h = 0xcbf29ce484222325ull;
    for (const Value& v : key) {
      h ^= v.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
  }
};

}  // namespace rfv

#endif  // RFVIEW_COMMON_ROW_H_
