#include "common/value.h"

#include <cmath>
#include <functional>
#include <sstream>

#include "common/logging.h"

namespace rfv {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull: return "NULL";
    case DataType::kInt64: return "INTEGER";
    case DataType::kDouble: return "DOUBLE";
    case DataType::kString: return "VARCHAR";
    case DataType::kBool: return "BOOLEAN";
  }
  return "UNKNOWN";
}

DataType Value::type() const {
  if (std::holds_alternative<std::monostate>(rep_)) return DataType::kNull;
  if (std::holds_alternative<int64_t>(rep_)) return DataType::kInt64;
  if (std::holds_alternative<double>(rep_)) return DataType::kDouble;
  if (std::holds_alternative<std::string>(rep_)) return DataType::kString;
  return DataType::kBool;
}

double Value::ToDouble() const {
  if (std::holds_alternative<int64_t>(rep_)) {
    return static_cast<double>(std::get<int64_t>(rep_));
  }
  RFV_CHECK_MSG(std::holds_alternative<double>(rep_),
                "ToDouble on non-numeric value " << ToString());
  return std::get<double>(rep_);
}

namespace {

/// Rank used to order values of different type tags; numerics share a rank
/// so that Int(2) and Double(2.5) compare numerically.
int TypeRank(const Value& v) {
  switch (v.type()) {
    case DataType::kNull: return 0;
    case DataType::kBool: return 1;
    case DataType::kInt64:
    case DataType::kDouble: return 2;
    case DataType::kString: return 3;
  }
  return 4;
}

}  // namespace

int Value::Compare(const Value& other) const {
  const int lr = TypeRank(*this);
  const int rr = TypeRank(other);
  if (lr != rr) return lr < rr ? -1 : 1;
  switch (lr) {
    case 0:  // both NULL
      return 0;
    case 1: {  // bool
      const bool a = AsBool();
      const bool b = other.AsBool();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case 2: {  // numeric
      // Compare int64/int64 exactly; mixed or double via double.
      if (type() == DataType::kInt64 && other.type() == DataType::kInt64) {
        const int64_t a = AsInt();
        const int64_t b = other.AsInt();
        return a == b ? 0 : (a < b ? -1 : 1);
      }
      const double a = ToDouble();
      const double b = other.ToDouble();
      if (a == b) return 0;
      return a < b ? -1 : 1;
    }
    default: {  // string
      const int c = AsString().compare(other.AsString());
      return c == 0 ? 0 : (c < 0 ? -1 : 1);
    }
  }
}

size_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull:
      return 0x9e3779b97f4a7c15ull;
    case DataType::kBool:
      return std::hash<bool>{}(AsBool());
    case DataType::kInt64:
    case DataType::kDouble: {
      // Hash by double so equal-comparing numerics hash equally. Integers
      // up to 2^53 round-trip exactly, which covers every position/id the
      // engine produces.
      const double d = ToDouble();
      if (d == 0.0) return 0;  // normalize -0.0
      return std::hash<double>{}(d);
    }
    case DataType::kString:
      return std::hash<std::string>{}(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return AsBool() ? "TRUE" : "FALSE";
    case DataType::kInt64:
      return std::to_string(AsInt());
    case DataType::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case DataType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

}  // namespace rfv
