#include "common/schema.h"

#include <sstream>

#include "common/str_util.h"

namespace rfv {

std::optional<size_t> Schema::TryFindColumn(const std::string& qualifier,
                                            const std::string& name,
                                            bool* ambiguous) const {
  if (ambiguous != nullptr) *ambiguous = false;
  std::optional<size_t> found;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const ColumnDef& c = columns_[i];
    if (!EqualsIgnoreCase(c.name, name)) continue;
    if (!qualifier.empty() && !EqualsIgnoreCase(c.qualifier, qualifier)) {
      continue;
    }
    if (found.has_value()) {
      if (ambiguous != nullptr) *ambiguous = true;
      return std::nullopt;
    }
    found = i;
  }
  return found;
}

Result<size_t> Schema::FindColumn(const std::string& qualifier,
                                  const std::string& name) const {
  bool ambiguous = false;
  std::optional<size_t> idx = TryFindColumn(qualifier, name, &ambiguous);
  const std::string display =
      qualifier.empty() ? name : qualifier + "." + name;
  if (ambiguous) {
    return Status::BindError("ambiguous column reference: " + display);
  }
  if (!idx.has_value()) {
    return Status::NotFound("column not found: " + display);
  }
  return *idx;
}

Schema Schema::WithQualifier(const std::string& alias) const {
  std::vector<ColumnDef> columns = columns_;
  for (ColumnDef& c : columns) c.qualifier = alias;
  return Schema(std::move(columns));
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<ColumnDef> columns = left.columns_;
  columns.insert(columns.end(), right.columns_.begin(), right.columns_.end());
  return Schema(std::move(columns));
}

std::string Schema::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) os << ", ";
    os << columns_[i].QualifiedName() << " " << DataTypeName(columns_[i].type);
  }
  return os.str();
}

}  // namespace rfv
