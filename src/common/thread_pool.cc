#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace rfv {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue before honoring shutdown so tasks submitted
      // prior to destruction always run.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool* ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return new ThreadPool(std::max(4u, hw));
  }();
  return pool;
}

void TaskGroup::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_->Submit([this, task = std::move(task)] {
    task();
    // Notify while holding the lock: once Wait() observes pending_ == 0
    // the caller may destroy this TaskGroup, so the worker must be done
    // touching cv_/mu_ before the waiter can acquire the mutex.
    std::lock_guard<std::mutex> lock(mu_);
    --pending_;
    cv_.notify_all();
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace rfv
