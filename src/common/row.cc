#include "common/row.h"

#include <sstream>

namespace rfv {

Row Row::Concat(const Row& left, const Row& right) {
  std::vector<Value> values;
  values.reserve(left.size() + right.size());
  values.insert(values.end(), left.values_.begin(), left.values_.end());
  values.insert(values.end(), right.values_.begin(), right.values_.end());
  return Row(std::move(values));
}

std::string Row::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) os << ", ";
    os << values_[i].ToString();
  }
  os << ")";
  return os.str();
}

}  // namespace rfv
