#include "common/epoch.h"

#include <utility>

#include "common/metrics_registry.h"

namespace rfv {

EpochManager& EpochManager::Global() {
  static EpochManager* instance = new EpochManager();
  return *instance;
}

size_t EpochManager::Pin() {
  // A slot must never publish an epoch older than what a concurrent
  // writer could retire against, so the claim re-checks the global epoch
  // after publishing and republishes until stable (the writer advances
  // the epoch only *after* stamping retirees, so a reader that observes
  // epoch E cannot miss objects retired at stamps < E).
  for (size_t probe = 0; probe < kNumSlots; ++probe) {
    uint64_t expected = 0;
    uint64_t epoch = epoch_.load(std::memory_order_acquire);
    if (slots_[probe].compare_exchange_strong(expected, epoch,
                                              std::memory_order_acq_rel)) {
      // Republish until the epoch we advertise is no older than the
      // global epoch at publication time.
      while (true) {
        const uint64_t now = epoch_.load(std::memory_order_acquire);
        if (now == epoch) break;
        epoch = now;
        slots_[probe].store(epoch, std::memory_order_release);
      }
      return probe;
    }
  }
  return kNoSlot;
}

void EpochManager::Unpin(size_t slot) {
  if (slot == kNoSlot || slot >= kNumSlots) return;
  slots_[slot].store(0, std::memory_order_release);
}

void EpochManager::Retire(std::shared_ptr<const void> retired) {
  static Counter* retired_total = MetricsRegistry::Global().GetCounter(
      "rfv_epoch_retired_total", {},
      "Objects retired into the epoch manager (superseded table snapshots)");
  {
    std::lock_guard<std::mutex> lock(retired_mu_);
    Retired entry;
    entry.epoch = epoch_.load(std::memory_order_acquire);
    entry.object = std::move(retired);
    retired_.push_back(std::move(entry));
  }
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  retired_total->Increment();
}

uint64_t EpochManager::OldestPinnedEpoch() const {
  uint64_t oldest = epoch_.load(std::memory_order_acquire);
  for (size_t i = 0; i < kNumSlots; ++i) {
    const uint64_t pinned = slots_[i].load(std::memory_order_acquire);
    if (pinned != 0 && pinned < oldest) oldest = pinned;
  }
  return oldest;
}

size_t EpochManager::Reclaim() {
  static Counter* reclaimed_total = MetricsRegistry::Global().GetCounter(
      "rfv_epoch_reclaimed_total", {},
      "Retired objects reclaimed after every reader epoch moved past them");
  const uint64_t oldest = OldestPinnedEpoch();
  size_t freed = 0;
  // Destroy outside the lock: a snapshot's destructor may free many
  // chunks, and readers pinning concurrently must not queue behind it.
  std::deque<Retired> to_free;
  {
    std::lock_guard<std::mutex> lock(retired_mu_);
    while (!retired_.empty() && retired_.front().epoch < oldest) {
      to_free.push_back(std::move(retired_.front()));
      retired_.pop_front();
      ++freed;
    }
  }
  to_free.clear();
  if (freed > 0) reclaimed_total->Increment(static_cast<int64_t>(freed));
  return freed;
}

size_t EpochManager::retired_count() const {
  std::lock_guard<std::mutex> lock(retired_mu_);
  return retired_.size();
}

}  // namespace rfv
