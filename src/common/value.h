#ifndef RFVIEW_COMMON_VALUE_H_
#define RFVIEW_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace rfv {

/// Scalar SQL types supported by the engine. The paper's workloads need
/// integers (sequence positions, ids, dates-as-ints), doubles (measures,
/// AVG results) and strings (dimension attributes such as region names).
enum class DataType {
  kNull = 0,  ///< the type of an untyped NULL literal
  kInt64,
  kDouble,
  kString,
  kBool,
};

/// Returns the SQL-ish name of a type ("INTEGER", "DOUBLE", ...).
const char* DataTypeName(DataType type);

/// A dynamically typed scalar cell. Values are small, copyable and
/// immutable; NULL is represented explicitly (any DataType column may
/// hold NULL).
class Value {
 public:
  /// Constructs a NULL value.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }
  static Value Bool(bool v) { return Value(Rep(v)); }

  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }

  /// Runtime type of the stored value; kNull when NULL.
  DataType type() const;

  /// Accessors. Preconditions: the value holds the requested type.
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  bool AsBool() const { return std::get<bool>(rep_); }

  /// Numeric coercion: int64 and double convert to double; other types
  /// (incl. NULL) are a precondition violation.
  double ToDouble() const;

  /// True when this value is kInt64 or kDouble.
  bool is_numeric() const {
    return std::holds_alternative<int64_t>(rep_) ||
           std::holds_alternative<double>(rep_);
  }

  /// Three-way comparison with SQL-style total order for sorting:
  /// NULL < everything; numeric types compare by numeric value across
  /// int64/double; bool < numbers is never needed (types are checked at
  /// bind time) but falls back to type-tag ordering for robustness.
  int Compare(const Value& other) const;

  /// Equality consistent with Compare()==0 (so NULL == NULL here; the
  /// SQL `=` operator with NULL semantics lives in the evaluator).
  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash consistent with operator== (numeric values hash by double
  /// representation so Int(2) and Double(2.0) collide, matching Compare).
  size_t Hash() const;

  /// Rendering for result printing and debugging ("NULL", "42", "3.5",
  /// "'abc'").
  std::string ToString() const;

 private:
  using Rep = std::variant<std::monostate, int64_t, double, std::string, bool>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}
  Rep rep_;
};

}  // namespace rfv

#endif  // RFVIEW_COMMON_VALUE_H_
