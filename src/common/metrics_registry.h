#ifndef RFVIEW_COMMON_METRICS_REGISTRY_H_
#define RFVIEW_COMMON_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rfv {

/// Process-wide operational metrics, exported in Prometheus text format.
///
/// Counters and histograms are registered lazily by name (+ optional
/// labels) and live for the process lifetime, so hot paths cache the
/// returned pointer in a function-local static and pay one relaxed
/// atomic add per event:
///
///   static Counter* probes = MetricsRegistry::Global().GetCounter(
///       "rfv_index_probes_total", {}, "Ordered-index point/range probes");
///   probes->Increment();
///
/// `MetricsRegistry::Global().ToPrometheusText()` (surfaced as
/// `Database::MetricsText()` and the shell's `\metrics` / `.metrics`
/// command) renders every family with # HELP / # TYPE headers.

/// Monotonic counter (relaxed atomics: totals need no ordering).
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time level that moves both ways (admission queue depth,
/// in-flight queries). Same relaxed-atomic discipline as Counter.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Decrement(int64_t delta = 1) {
    value_.fetch_sub(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Latency histogram with fixed exponential "le" buckets (seconds, from
/// 10us to ~10s doubling ×4) plus sum and count — the standard
/// Prometheus histogram exposition.
class Histogram {
 public:
  Histogram();

  /// Records one observation (thread-safe, relaxed atomics).
  void Observe(double seconds);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

  /// Upper bounds of the buckets (shared by all histograms).
  static const std::vector<double>& BucketBounds();

  /// Cumulative count of observations <= BucketBounds()[i].
  int64_t BucketCount(size_t i) const;

 private:
  std::vector<std::unique_ptr<std::atomic<int64_t>>> buckets_;
  std::atomic<int64_t> count_{0};
  /// Sum in nanoseconds (atomic<double> addition predates C++20).
  std::atomic<int64_t> sum_ns_{0};
};

/// Label set of one metric instance, e.g. {{"method", "maxoa"}}.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// One metric instance captured by MetricsRegistry::Snapshot() — the
/// structured (non-text) view of the registry that feeds the
/// `rfv_system.metrics` introspection view. Counters carry their total
/// in `count`; histograms carry observation count and sum-of-seconds.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  /// Rendered label set, `{k="v",...}`; empty for label-free instances.
  std::string labels;
  Kind kind = Kind::kCounter;
  /// Counter value, or histogram observation count.
  int64_t count = 0;
  /// Histogram sum in seconds; 0 for counters.
  double sum_seconds = 0;
  std::string help;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter for `name` + `labels`, creating it on first
  /// use. The pointer stays valid for the process lifetime. `help` is
  /// recorded on first registration of the family.
  Counter* GetCounter(const std::string& name,
                      const MetricLabels& labels = {},
                      const std::string& help = "");

  /// Gauge analogue of GetCounter.
  Gauge* GetGauge(const std::string& name, const MetricLabels& labels = {},
                  const std::string& help = "");

  /// Histogram analogue of GetCounter.
  Histogram* GetHistogram(const std::string& name,
                          const MetricLabels& labels = {},
                          const std::string& help = "");

  /// Prometheus text exposition of every registered family, sorted
  /// globally by family name (counters and histograms interleaved) and
  /// by label string within a family, so consecutive scrapes diff
  /// stably in CI and tests.
  std::string ToPrometheusText() const;

  /// Structured snapshot of every instance, sorted by (name, labels) —
  /// the typed alternative to scraping ToPrometheusText().
  std::vector<MetricSnapshot> Snapshot() const;

  /// Zeroes nothing but forgets all families — test isolation only.
  /// Pointers handed out earlier keep working (instances are leaked).
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  struct CounterFamily {
    std::string help;
    std::map<std::string, Counter*> instances;  ///< label string → counter
  };
  struct GaugeFamily {
    std::string help;
    std::map<std::string, Gauge*> instances;
  };
  struct HistogramFamily {
    std::string help;
    std::map<std::string, Histogram*> instances;
  };

  mutable std::mutex mu_;
  std::map<std::string, CounterFamily> counters_;
  std::map<std::string, GaugeFamily> gauges_;
  std::map<std::string, HistogramFamily> histograms_;
};

/// Renders labels as `{k1="v1",k2="v2"}` (empty string for no labels).
std::string FormatMetricLabels(const MetricLabels& labels);

}  // namespace rfv

#endif  // RFVIEW_COMMON_METRICS_REGISTRY_H_
