#ifndef RFVIEW_COMMON_TRACE_H_
#define RFVIEW_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rfv {

/// Query-lifecycle tracing.
///
/// A `QueryTrace` collects timed spans (parse, bind, plan, rewrite,
/// execute, ...) for one query. Spans are recorded through the RAII
/// `TraceSpan`, which finds the active trace through a thread-local
/// pointer installed by `ScopedTraceAttach` — so instrumentation points
/// never need a trace argument threaded through their signatures, and
/// when no trace is attached a span is a single thread-local null check
/// (no clock reads, no allocation).
///
///   std::shared_ptr<QueryTrace> trace = Tracer::Global().StartQuery();
///   {
///     ScopedTraceAttach attach(trace.get());
///     TraceSpan span("parse");
///     span.AddArg("sql", sql);
///     ...  // nested TraceSpans record child spans
///   }
///   std::string json = trace->ToChromeJson();  // chrome://tracing
///   Tracer::Global().Retire(trace);
///
/// The exported JSON is a Chrome trace-event array of complete ("ph":
/// "X") events, loadable in chrome://tracing or Perfetto.

/// One finished span.
struct TraceEvent {
  std::string name;
  int64_t start_us = 0;  ///< microseconds since the trace epoch
  int64_t dur_us = 0;
  int depth = 0;         ///< nesting level at record time (0 = root)
  uint64_t tid = 0;      ///< recording thread (hashed id)
  /// Span annotations (view names, derivability verdicts, row counts...).
  std::vector<std::pair<std::string, std::string>> args;
};

/// Thread-safe collector of one query's spans, keyed by a process-unique
/// query id assigned by the Tracer.
class QueryTrace {
 public:
  explicit QueryTrace(int64_t id)
      : id_(id), epoch_(std::chrono::steady_clock::now()) {}

  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  int64_t id() const { return id_; }

  /// Microseconds elapsed since this trace was created.
  int64_t NowUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Appends a finished span (thread-safe: parallel workers may record).
  void Record(TraceEvent event);

  /// Snapshot of the recorded spans, in record order.
  std::vector<TraceEvent> events() const;

  /// Chrome trace-event JSON: an array of "ph":"X" complete events with
  /// ts/dur in microseconds. Loadable in chrome://tracing.
  std::string ToChromeJson() const;

  /// Indented text rendering (one span per line, for shell output).
  std::string ToText() const;

 private:
  const int64_t id_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// Process-wide trace registry: assigns query ids and keeps a ring of
/// the most recently retired traces for later inspection/export.
class Tracer {
 public:
  static Tracer& Global();

  /// Starts a new trace with a fresh query id.
  std::shared_ptr<QueryTrace> StartQuery();

  /// Files a finished trace into the ring. Evicting the oldest beyond
  /// ring_capacity() counts the evicted spans into the
  /// `rfv_trace_spans_dropped_total` metric, so overflow is visible.
  void Retire(std::shared_ptr<QueryTrace> trace);

  /// Retired trace by query id; nullptr when evicted/unknown.
  std::shared_ptr<QueryTrace> Find(int64_t id) const;

  /// Most recently retired trace; nullptr when none.
  std::shared_ptr<QueryTrace> Latest() const;

  /// Snapshot of the retired ring, oldest first (feeds the
  /// `rfv_system.trace_spans` introspection view).
  std::vector<std::shared_ptr<QueryTrace>> Retired() const;

  /// Retired-ring capacity knob (shell `\trace ring <n>`). Shrinking
  /// evicts (and counts as dropped) the oldest surplus immediately;
  /// a capacity of 0 clamps to 1.
  void SetRingCapacity(size_t capacity);
  size_t ring_capacity() const;

  static constexpr size_t kDefaultRingCapacity = 32;

 private:
  Tracer() = default;

  /// Drops over-capacity traces, counting their spans. Caller holds mu_.
  void EvictLocked();

  mutable std::mutex mu_;
  int64_t next_id_ = 1;
  size_t capacity_ = kDefaultRingCapacity;
  std::vector<std::shared_ptr<QueryTrace>> retired_;
};

/// The trace attached to the current thread (nullptr = tracing off).
QueryTrace* CurrentTrace();

/// RAII attachment of a trace to the current thread. Nestable: restores
/// the previous attachment on destruction.
class ScopedTraceAttach {
 public:
  explicit ScopedTraceAttach(QueryTrace* trace);
  ~ScopedTraceAttach();

  ScopedTraceAttach(const ScopedTraceAttach&) = delete;
  ScopedTraceAttach& operator=(const ScopedTraceAttach&) = delete;

 private:
  QueryTrace* previous_;
  int previous_depth_;
};

/// RAII span over the current thread's trace. No-op (one null check)
/// when no trace is attached.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a key/value annotation (no-op when not tracing).
  void AddArg(const std::string& key, std::string value);

  /// True when a trace is active (annotation work can be skipped).
  bool active() const { return trace_ != nullptr; }

  /// Ends the span now (idempotent; the destructor calls it).
  void End();

 private:
  QueryTrace* trace_;  ///< nullptr = disabled
  TraceEvent event_;
};

/// Escapes a string for embedding in a JSON string literal (shared by
/// the trace exporter and tests).
std::string JsonEscape(const std::string& s);

}  // namespace rfv

#endif  // RFVIEW_COMMON_TRACE_H_
