#ifndef RFVIEW_COMMON_EPOCH_H_
#define RFVIEW_COMMON_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>

namespace rfv {

/// Epoch-based reclamation for reader/writer concurrency (the RCU
/// idiom): readers *pin* the current epoch for the duration of a read
/// critical section (an open table scan); writers *retire* superseded
/// objects (table snapshots) instead of freeing them, and retired
/// objects are reclaimed only once every epoch that could still observe
/// them has been unpinned.
///
/// The engine keeps a second safety net — retired objects are held by
/// `std::shared_ptr`, and readers hold their own reference — so epoch
/// reclamation here bounds the *retired backlog* (and surfaces it as
/// metrics) rather than being the last line of defense against
/// use-after-free. That layering keeps the primitive simple (no hazard
/// pointers, no deferred callbacks) while giving the serving layer the
/// epoch discipline the sharded-maintenance roadmap item needs.
///
/// Readers:
///   EpochGuard guard;             // pins EpochManager::Global()
///   ... read the pinned snapshot ...
///                                  // destructor unpins
/// Writers:
///   manager.Retire(old_snapshot);  // advances the epoch
///   manager.Reclaim();             // frees what no reader can see
class EpochManager {
 public:
  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Process-wide instance used by table storage.
  static EpochManager& Global();

  /// The current (writer-advanced) epoch. Starts at 1; epoch 0 means
  /// "unpinned" in reader slots.
  uint64_t current_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Pins the current epoch into a reader slot; returns the slot index,
  /// or kNoSlot when all slots are busy (the caller's shared_ptr then
  /// carries the lifetime alone — safe, just unaccounted).
  size_t Pin();

  /// Releases a slot returned by Pin (kNoSlot is a no-op).
  void Unpin(size_t slot);

  /// Transfers ownership of a superseded object into the retired list,
  /// stamps it with the epoch *before* advancing, then advances the
  /// epoch. The object is destroyed (this manager's reference dropped)
  /// by a later Reclaim once no pinned reader predates the stamp.
  void Retire(std::shared_ptr<const void> retired);

  /// Frees every retired object whose stamp epoch is older than the
  /// oldest pinned epoch; returns how many were freed.
  size_t Reclaim();

  /// Oldest epoch still pinned by a reader; current_epoch() when no
  /// reader is active.
  uint64_t OldestPinnedEpoch() const;

  /// Retired objects not yet reclaimed (observability/tests).
  size_t retired_count() const;

  static constexpr size_t kNoSlot = static_cast<size_t>(-1);
  static constexpr size_t kNumSlots = 128;

 private:
  struct Retired {
    uint64_t epoch = 0;
    std::shared_ptr<const void> object;
  };

  /// Writer-advanced global epoch.
  std::atomic<uint64_t> epoch_{1};
  /// Reader slots: 0 = free, else the pinned epoch.
  std::atomic<uint64_t> slots_[kNumSlots] = {};
  /// Retired objects awaiting reclamation, oldest first (stamp epochs
  /// are monotone, so reclamation pops a prefix).
  mutable std::mutex retired_mu_;
  std::deque<Retired> retired_;
};

/// RAII pin on an EpochManager (the reader side of the idiom).
/// Constructing with nullptr yields an empty guard (pins nothing) that
/// can later be move-assigned a live one.
class EpochGuard {
 public:
  explicit EpochGuard(EpochManager* manager = &EpochManager::Global())
      : manager_(manager),
        slot_(manager != nullptr ? manager->Pin() : EpochManager::kNoSlot) {}
  ~EpochGuard() { Release(); }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

  EpochGuard(EpochGuard&& other) noexcept
      : manager_(other.manager_), slot_(other.slot_) {
    other.manager_ = nullptr;
    other.slot_ = EpochManager::kNoSlot;
  }
  EpochGuard& operator=(EpochGuard&& other) noexcept {
    if (this != &other) {
      Release();
      manager_ = other.manager_;
      slot_ = other.slot_;
      other.manager_ = nullptr;
      other.slot_ = EpochManager::kNoSlot;
    }
    return *this;
  }

  /// Unpins now (idempotent; the destructor calls it).
  void Release() {
    if (manager_ != nullptr) {
      manager_->Unpin(slot_);
      manager_ = nullptr;
      slot_ = EpochManager::kNoSlot;
    }
  }

 private:
  EpochManager* manager_;
  size_t slot_;
};

}  // namespace rfv

#endif  // RFVIEW_COMMON_EPOCH_H_
