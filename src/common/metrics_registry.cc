#include "common/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rfv {

namespace {

/// Prometheus label values only need " \ and newline escaped.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Renders a double the way Prometheus expects (no trailing zeros mess;
/// %g keeps integers integral).
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string FormatMetricLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + EscapeLabelValue(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

// --- Histogram --------------------------------------------------------------

const std::vector<double>& Histogram::BucketBounds() {
  // 10us .. ~42s, ×4 per bucket: coarse but covers parse-to-bench times.
  static const std::vector<double>* bounds = new std::vector<double>{
      1e-5, 4e-5, 1.6e-4, 6.4e-4, 2.56e-3, 1.024e-2, 4.096e-2, 1.6384e-1,
      6.5536e-1, 2.62144, 10.48576, 41.94304};
  return *bounds;
}

Histogram::Histogram() {
  buckets_.reserve(BucketBounds().size());
  for (size_t i = 0; i < BucketBounds().size(); ++i) {
    buckets_.push_back(std::make_unique<std::atomic<int64_t>>(0));
  }
}

void Histogram::Observe(double seconds) {
  const std::vector<double>& bounds = BucketBounds();
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (seconds <= bounds[i]) {
      buckets_[i]->fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(static_cast<int64_t>(seconds * 1e9),
                    std::memory_order_relaxed);
}

double Histogram::sum() const {
  return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) / 1e9;
}

int64_t Histogram::BucketCount(size_t i) const {
  // Buckets store per-range counts; exposition wants cumulative.
  int64_t cumulative = 0;
  for (size_t b = 0; b <= i && b < buckets_.size(); ++b) {
    cumulative += buckets_[b]->load(std::memory_order_relaxed);
  }
  return cumulative;
}

// --- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const MetricLabels& labels,
                                     const std::string& help) {
  const std::string label_str = FormatMetricLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  CounterFamily& family = counters_[name];
  if (family.help.empty()) family.help = help;
  Counter*& slot = family.instances[label_str];
  if (slot == nullptr) slot = new Counter();  // leaked: process lifetime
  return slot;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const MetricLabels& labels,
                                 const std::string& help) {
  const std::string label_str = FormatMetricLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  GaugeFamily& family = gauges_[name];
  if (family.help.empty()) family.help = help;
  Gauge*& slot = family.instances[label_str];
  if (slot == nullptr) slot = new Gauge();  // leaked: process lifetime
  return slot;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const MetricLabels& labels,
                                         const std::string& help) {
  const std::string label_str = FormatMetricLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  HistogramFamily& family = histograms_[name];
  if (family.help.empty()) family.help = help;
  Histogram*& slot = family.instances[label_str];
  if (slot == nullptr) slot = new Histogram();
  return slot;
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Merge the two per-kind maps into one family stream sorted globally
  // by name (both maps are already name-sorted; instances label-sorted),
  // so the exposition is byte-stable across scrapes and diffs cleanly.
  std::string out;
  auto counter_it = counters_.begin();
  auto gauge_it = gauges_.begin();
  auto histogram_it = histograms_.begin();
  const auto emit_counter = [&out](const std::string& name,
                                   const CounterFamily& family) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + family.help + "\n";
    }
    out += "# TYPE " + name + " counter\n";
    for (const auto& [labels, counter] : family.instances) {
      out += name + labels + " " + std::to_string(counter->value()) + "\n";
    }
  };
  const auto emit_gauge = [&out](const std::string& name,
                                 const GaugeFamily& family) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + family.help + "\n";
    }
    out += "# TYPE " + name + " gauge\n";
    for (const auto& [labels, gauge] : family.instances) {
      out += name + labels + " " + std::to_string(gauge->value()) + "\n";
    }
  };
  const auto emit_histogram = [&out](const std::string& name,
                                     const HistogramFamily& family) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + family.help + "\n";
    }
    out += "# TYPE " + name + " histogram\n";
    for (const auto& [labels, histogram] : family.instances) {
      const std::vector<double>& bounds = Histogram::BucketBounds();
      // _bucket series need "le" merged into the existing label set.
      const std::string prefix =
          labels.empty() ? name + "_bucket{"
                         : name + "_bucket" +
                               labels.substr(0, labels.size() - 1) + ",";
      for (size_t i = 0; i < bounds.size(); ++i) {
        out += prefix + "le=\"" + FormatDouble(bounds[i]) + "\"} " +
               std::to_string(histogram->BucketCount(i)) + "\n";
      }
      out += prefix + "le=\"+Inf\"} " + std::to_string(histogram->count()) +
             "\n";
      out += name + "_sum" + labels + " " + FormatDouble(histogram->sum()) +
             "\n";
      out += name + "_count" + labels + " " +
             std::to_string(histogram->count()) + "\n";
    }
  };
  while (counter_it != counters_.end() || gauge_it != gauges_.end() ||
         histogram_it != histograms_.end()) {
    // Three-way merge on family name (each map is already name-sorted).
    const std::string* best = nullptr;
    if (counter_it != counters_.end()) best = &counter_it->first;
    if (gauge_it != gauges_.end() &&
        (best == nullptr || gauge_it->first < *best)) {
      best = &gauge_it->first;
    }
    if (histogram_it != histograms_.end() &&
        (best == nullptr || histogram_it->first < *best)) {
      best = &histogram_it->first;
    }
    if (counter_it != counters_.end() && &counter_it->first == best) {
      emit_counter(counter_it->first, counter_it->second);
      ++counter_it;
    } else if (gauge_it != gauges_.end() && &gauge_it->first == best) {
      emit_gauge(gauge_it->first, gauge_it->second);
      ++gauge_it;
    } else {
      emit_histogram(histogram_it->first, histogram_it->second);
      ++histogram_it;
    }
  }
  return out;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  for (const auto& [name, family] : counters_) {
    for (const auto& [labels, counter] : family.instances) {
      MetricSnapshot s;
      s.name = name;
      s.labels = labels;
      s.kind = MetricSnapshot::Kind::kCounter;
      s.count = counter->value();
      s.help = family.help;
      out.push_back(std::move(s));
    }
  }
  for (const auto& [name, family] : gauges_) {
    for (const auto& [labels, gauge] : family.instances) {
      MetricSnapshot s;
      s.name = name;
      s.labels = labels;
      s.kind = MetricSnapshot::Kind::kGauge;
      s.count = gauge->value();
      s.help = family.help;
      out.push_back(std::move(s));
    }
  }
  for (const auto& [name, family] : histograms_) {
    for (const auto& [labels, histogram] : family.instances) {
      MetricSnapshot s;
      s.name = name;
      s.labels = labels;
      s.kind = MetricSnapshot::Kind::kHistogram;
      s.count = histogram->count();
      s.sum_seconds = histogram->sum();
      s.help = family.help;
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return out;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace rfv
