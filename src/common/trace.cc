#include "common/trace.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <thread>

#include "common/metrics_registry.h"

namespace rfv {

namespace {

/// Thread-local ambient trace + span nesting depth. Worker threads that
/// never attach a trace see nullptr and record nothing.
thread_local QueryTrace* g_current_trace = nullptr;
thread_local int g_span_depth = 0;

uint64_t ThisThreadId() {
  return static_cast<uint64_t>(
      std::hash<std::thread::id>()(std::this_thread::get_id()));
}

}  // namespace

// --- QueryTrace -------------------------------------------------------------

void QueryTrace::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> QueryTrace::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string QueryTrace::ToChromeJson() const {
  std::vector<TraceEvent> snapshot = events();
  // Spans are recorded at End, so parents (which close last) appear
  // after their children; chrome://tracing nests by timestamps, but
  // sorted output is friendlier to eyeballs and diff-based tests.
  std::stable_sort(snapshot.begin(), snapshot.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.start_us != b.start_us) {
                       return a.start_us < b.start_us;
                     }
                     return a.dur_us > b.dur_us;  // parent first
                   });
  std::string out = "[";
  bool first = true;
  for (const TraceEvent& e : snapshot) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"name\": \"" + JsonEscape(e.name) +
           "\", \"cat\": \"query\", \"ph\": \"X\", \"ts\": " +
           std::to_string(e.start_us) +
           ", \"dur\": " + std::to_string(e.dur_us) +
           ", \"pid\": " + std::to_string(id_) +
           ", \"tid\": " + std::to_string(e.tid % 100000);
    if (!e.args.empty()) {
      out += ", \"args\": {";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += "\"" + JsonEscape(e.args[i].first) + "\": \"" +
               JsonEscape(e.args[i].second) + "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

std::string QueryTrace::ToText() const {
  std::vector<TraceEvent> snapshot = events();
  std::stable_sort(snapshot.begin(), snapshot.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.start_us != b.start_us) {
                       return a.start_us < b.start_us;
                     }
                     return a.dur_us > b.dur_us;
                   });
  std::string out;
  for (const TraceEvent& e : snapshot) {
    char line[160];
    std::snprintf(line, sizeof(line), "%*s%-24s %8.3f ms",
                  e.depth * 2, "", e.name.c_str(),
                  static_cast<double>(e.dur_us) / 1e3);
    out += line;
    for (const auto& [key, value] : e.args) {
      out += " " + key + "=" + value;
    }
    out += "\n";
  }
  return out;
}

// --- Tracer -----------------------------------------------------------------

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // leaked: outlives all users
  return *tracer;
}

std::shared_ptr<QueryTrace> Tracer::StartQuery() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::make_shared<QueryTrace>(next_id_++);
}

void Tracer::Retire(std::shared_ptr<QueryTrace> trace) {
  if (trace == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  retired_.push_back(std::move(trace));
  EvictLocked();
}

void Tracer::EvictLocked() {
  if (retired_.size() <= capacity_) return;
  static Counter* dropped = MetricsRegistry::Global().GetCounter(
      "rfv_trace_spans_dropped_total", {},
      "Spans of traces evicted from the retired-trace ring");
  const size_t surplus = retired_.size() - capacity_;
  int64_t dropped_spans = 0;
  for (size_t i = 0; i < surplus; ++i) {
    dropped_spans += static_cast<int64_t>(retired_[i]->events().size());
  }
  dropped->Increment(dropped_spans);
  retired_.erase(retired_.begin(),
                 retired_.begin() + static_cast<ptrdiff_t>(surplus));
}

std::shared_ptr<QueryTrace> Tracer::Find(int64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& t : retired_) {
    if (t->id() == id) return t;
  }
  return nullptr;
}

std::shared_ptr<QueryTrace> Tracer::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retired_.empty() ? nullptr : retired_.back();
}

std::vector<std::shared_ptr<QueryTrace>> Tracer::Retired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retired_;
}

void Tracer::SetRingCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  EvictLocked();
}

size_t Tracer::ring_capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

// --- ambient attachment & spans ---------------------------------------------

QueryTrace* CurrentTrace() { return g_current_trace; }

ScopedTraceAttach::ScopedTraceAttach(QueryTrace* trace)
    : previous_(g_current_trace), previous_depth_(g_span_depth) {
  g_current_trace = trace;
  g_span_depth = 0;
}

ScopedTraceAttach::~ScopedTraceAttach() {
  g_current_trace = previous_;
  g_span_depth = previous_depth_;
}

TraceSpan::TraceSpan(const char* name) : trace_(g_current_trace) {
  if (trace_ == nullptr) return;
  event_.name = name;
  event_.start_us = trace_->NowUs();
  event_.depth = g_span_depth++;
  event_.tid = ThisThreadId();
}

void TraceSpan::AddArg(const std::string& key, std::string value) {
  if (trace_ == nullptr) return;
  event_.args.emplace_back(key, std::move(value));
}

void TraceSpan::End() {
  if (trace_ == nullptr) return;
  event_.dur_us = trace_->NowUs() - event_.start_us;
  --g_span_depth;
  trace_->Record(std::move(event_));
  trace_ = nullptr;
}

}  // namespace rfv
