#ifndef RFVIEW_COMMON_LOGGING_H_
#define RFVIEW_COMMON_LOGGING_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace rfv {

/// Severity levels for RFV_LOG. Distinct from RFV_CHECK: logging never
/// aborts — it is how the tracer/rewriter narrate decisions (which view
/// was picked, why a candidate was rejected) without check semantics.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

inline const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

/// Runtime log threshold (messages below it are dropped after the
/// compile-time gate). Default: kWarn, so library internals stay quiet
/// unless a caller opts in (the shell's `\log debug|info|warn|error`).
inline std::atomic<int>& RuntimeLogLevel() {
  static std::atomic<int> level{static_cast<int>(LogLevel::kWarn)};
  return level;
}

inline void SetLogLevel(LogLevel level) {
  RuntimeLogLevel().store(static_cast<int>(level),
                          std::memory_order_relaxed);
}

namespace internal_logging {

/// Aborts the process with a formatted message. Used by RFV_CHECK; check
/// failures indicate library bugs, never user errors (user errors travel
/// as Status).
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "[rfview] CHECK failed at %s:%d: %s %s\n", file, line,
               expr, message.c_str());
  std::abort();
}

/// Stream collector for one RFV_LOG statement; flushes a single line to
/// stderr on destruction (keeps concurrent log lines unsheared).
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogLevel level)
      : file_(file), line_(line), level_(level) {}
  ~LogMessage() {
    std::fprintf(stderr, "[rfview] %s %s:%d: %s\n", LogLevelName(level_),
                 file_, line_, stream_.str().c_str());
  }
  std::ostringstream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace rfv

/// Compile-time minimum level: statements below it compile to nothing
/// (the condition is a constant). Override with
/// -DRFV_MIN_LOG_LEVEL=2 to strip DEBUG/INFO from release builds.
#ifndef RFV_MIN_LOG_LEVEL
#define RFV_MIN_LOG_LEVEL 0
#endif

/// Leveled stderr logging:
///   RFV_LOG(kInfo) << "chose " << view->view_name << " via MaxOA";
/// The message body is not evaluated when the level is filtered out.
#define RFV_LOG(level)                                                    \
  if (static_cast<int>(::rfv::LogLevel::level) < RFV_MIN_LOG_LEVEL) {     \
  } else if (static_cast<int>(::rfv::LogLevel::level) <                   \
             ::rfv::RuntimeLogLevel().load(std::memory_order_relaxed)) {  \
  } else                                                                  \
    ::rfv::internal_logging::LogMessage(__FILE__, __LINE__,               \
                                        ::rfv::LogLevel::level)           \
        .stream()

/// Internal invariant check. Active in all build types: the cost is
/// negligible outside inner loops and silent corruption is worse than a
/// crash in a database library.
#define RFV_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::rfv::internal_logging::CheckFailed(__FILE__, __LINE__, #cond, ""); \
    }                                                                     \
  } while (0)

/// Like RFV_CHECK with an extra streamed message:
///   RFV_CHECK_MSG(i < n, "i=" << i << " n=" << n);
#define RFV_CHECK_MSG(cond, stream_expr)                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream _rfv_os;                                         \
      _rfv_os << stream_expr;                                             \
      ::rfv::internal_logging::CheckFailed(__FILE__, __LINE__, #cond,     \
                                           _rfv_os.str());                \
    }                                                                     \
  } while (0)

/// Debug-only check for inner loops.
#ifdef NDEBUG
#define RFV_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define RFV_DCHECK(cond) RFV_CHECK(cond)
#endif

#endif  // RFVIEW_COMMON_LOGGING_H_
