#ifndef RFVIEW_COMMON_LOGGING_H_
#define RFVIEW_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace rfv {
namespace internal_logging {

/// Aborts the process with a formatted message. Used by RFV_CHECK; check
/// failures indicate library bugs, never user errors (user errors travel
/// as Status).
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "[rfview] CHECK failed at %s:%d: %s %s\n", file, line,
               expr, message.c_str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace rfv

/// Internal invariant check. Active in all build types: the cost is
/// negligible outside inner loops and silent corruption is worse than a
/// crash in a database library.
#define RFV_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::rfv::internal_logging::CheckFailed(__FILE__, __LINE__, #cond, ""); \
    }                                                                     \
  } while (0)

/// Like RFV_CHECK with an extra streamed message:
///   RFV_CHECK_MSG(i < n, "i=" << i << " n=" << n);
#define RFV_CHECK_MSG(cond, stream_expr)                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream _rfv_os;                                         \
      _rfv_os << stream_expr;                                             \
      ::rfv::internal_logging::CheckFailed(__FILE__, __LINE__, #cond,     \
                                           _rfv_os.str());                \
    }                                                                     \
  } while (0)

/// Debug-only check for inner loops.
#ifdef NDEBUG
#define RFV_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define RFV_DCHECK(cond) RFV_CHECK(cond)
#endif

#endif  // RFVIEW_COMMON_LOGGING_H_
