#ifndef RFVIEW_COMMON_THREAD_POOL_H_
#define RFVIEW_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rfv {

/// A fixed-size pool of worker threads draining a shared task queue.
///
/// Tasks are arbitrary void() callables; they must not throw (the
/// engine's error channel is Status, so operator code captures failures
/// into per-task slots instead). Submission is thread-safe. The
/// destructor drains outstanding tasks before joining the workers, so a
/// pool can be destroyed while idle submitters still hold a reference
/// only if they stopped submitting — the usual fork/join discipline is
/// to pair Submit with TaskGroup::Wait.
class ThreadPool {
 public:
  /// Spawns exactly `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task for execution on some worker.
  void Submit(std::function<void()> task);

  size_t num_threads() const { return workers_.size(); }

  /// Process-wide shared pool, created on first use. Sized to the
  /// hardware concurrency but never below 4, so the cross-thread paths
  /// of partition-parallel operators are exercised (and sanitizable)
  /// even on single-core CI machines; the oversubscription is harmless
  /// because the engine's tasks are CPU-bound and coarse.
  static ThreadPool* Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Fork/join helper over a ThreadPool: submit any number of tasks, then
/// Wait() blocks until every one of them has finished. Submit/Wait may
/// be repeated; a TaskGroup must outlive its tasks (the destructor
/// waits).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `task` on the pool and tracks its completion.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have run to completion.
  void Wait();

 private:
  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_ = 0;
};

}  // namespace rfv

#endif  // RFVIEW_COMMON_THREAD_POOL_H_
