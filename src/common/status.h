#ifndef RFVIEW_COMMON_STATUS_H_
#define RFVIEW_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace rfv {

/// Error categories used across the library. Modeled after the
/// status-code style of LevelDB/RocksDB: errors travel as values, no
/// exceptions cross a public API boundary.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kNotFound,          ///< table/column/view/index does not exist
  kAlreadyExists,     ///< duplicate table/view/index name
  kParseError,        ///< SQL text could not be parsed
  kBindError,         ///< semantic analysis failed (unknown column, ...)
  kTypeError,         ///< expression/type mismatch
  kNotDerivable,      ///< query cannot be derived from the given view
  kNotSupported,      ///< feature outside the implemented SQL subset
  kExecutionError,    ///< runtime failure while executing a plan
  kInternal,          ///< invariant violation (bug)
};

/// Returns a short human-readable name for a status code.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kBindError: return "BindError";
    case StatusCode::kTypeError: return "TypeError";
    case StatusCode::kNotDerivable: return "NotDerivable";
    case StatusCode::kNotSupported: return "NotSupported";
    case StatusCode::kExecutionError: return "ExecutionError";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

/// A cheap, copyable success-or-error value.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotDerivable(std::string msg) {
    return Status(StatusCode::kNotDerivable, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = StatusCodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error holder, the return type of fallible factories.
///
/// Usage:
///   Result<Plan> r = Plan::Create(...);
///   if (!r.ok()) return r.status();
///   Plan plan = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit from value: `return my_t;`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: `return Status::NotFound(...)`.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).ok() &&
           "Result must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The error status; OK when this holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK Status out of the current function.
#define RFV_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::rfv::Status _rfv_status = (expr);           \
    if (!_rfv_status.ok()) return _rfv_status;    \
  } while (0)

/// Evaluates a Result expression; on error returns its status, otherwise
/// move-assigns the value into `lhs`. `lhs` must be declared already.
#define RFV_ASSIGN_OR_RETURN(lhs, expr)           \
  do {                                            \
    auto _rfv_result = (expr);                    \
    if (!_rfv_result.ok()) return _rfv_result.status(); \
    lhs = std::move(_rfv_result).value();         \
  } while (0)

}  // namespace rfv

#endif  // RFVIEW_COMMON_STATUS_H_
