#ifndef RFVIEW_COMMON_STR_UTIL_H_
#define RFVIEW_COMMON_STR_UTIL_H_

#include <string>
#include <vector>

namespace rfv {

/// ASCII-lowercases a string (SQL identifiers and keywords are
/// case-insensitive in this engine).
std::string ToLower(const std::string& s);

/// ASCII-uppercases a string.
std::string ToUpper(const std::string& s);

/// Case-insensitive ASCII string equality.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

}  // namespace rfv

#endif  // RFVIEW_COMMON_STR_UTIL_H_
