#ifndef RFVIEW_COMMON_SCHEMA_H_
#define RFVIEW_COMMON_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace rfv {

/// A named, typed output column. `qualifier` is the table name or alias
/// the column is visible under ("s1.pos" has qualifier "s1", name "pos");
/// empty for computed columns without an alias scope.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kNull;
  std::string qualifier;

  ColumnDef() = default;
  ColumnDef(std::string name_in, DataType type_in, std::string qualifier_in = "")
      : name(std::move(name_in)),
        type(type_in),
        qualifier(std::move(qualifier_in)) {}

  /// "qualifier.name" or "name".
  std::string QualifiedName() const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }
};

/// An ordered list of column definitions describing a table or an
/// operator's output. Column name lookup follows SQL scoping: an
/// unqualified name matches any column with that name (ambiguity is an
/// error); a qualified name must match both parts.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  size_t NumColumns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  void AddColumn(ColumnDef column) { columns_.push_back(std::move(column)); }

  /// Finds the index of a column. `qualifier` empty means unqualified
  /// lookup. Errors: kBindError on ambiguity, kNotFound when absent.
  Result<size_t> FindColumn(const std::string& qualifier,
                            const std::string& name) const;

  /// Like FindColumn but never fails on absence: returns nullopt. Still
  /// returns nullopt (and sets *ambiguous) when the lookup is ambiguous.
  std::optional<size_t> TryFindColumn(const std::string& qualifier,
                                      const std::string& name,
                                      bool* ambiguous = nullptr) const;

  /// Returns a copy of this schema with every column re-qualified to
  /// `alias` (used for `FROM (subquery) alias` and table aliases).
  Schema WithQualifier(const std::string& alias) const;

  /// Concatenates two schemas (join output).
  static Schema Concat(const Schema& left, const Schema& right);

  /// "name TYPE, name TYPE, ..." for debugging.
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace rfv

#endif  // RFVIEW_COMMON_SCHEMA_H_
