#ifndef RFVIEW_EXPR_EXPR_H_
#define RFVIEW_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace rfv {

/// Node kinds of the *bound* expression tree. Bound expressions are what
/// the executor evaluates: column references are resolved to positions in
/// the operator's input row, and every node carries a result type. The
/// parser produces a separate, unbound AST (parser/ast.h); the binder
/// (plan/binder.*) lowers that AST into this one.
enum class ExprKind {
  kLiteral,    ///< constant Value
  kColumnRef,  ///< input row position
  kUnary,      ///< NOT, unary minus
  kBinary,     ///< arithmetic / comparison / AND / OR
  kCase,       ///< CASE WHEN c1 THEN v1 ... [ELSE e] END
  kFunction,   ///< scalar function call (MOD, COALESCE, ABS, ...)
  kIn,         ///< expr IN (e1, ..., en)
  kBetween,    ///< expr BETWEEN lo AND hi
  kIsNull,     ///< expr IS [NOT] NULL
};

enum class UnaryOp { kNeg, kNot };

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

/// Scalar functions implemented by the evaluator. MOD and COALESCE are the
/// two the paper's operator patterns (Figures 10 and 13) depend on; the
/// date helpers support the credit-card introduction workload where dates
/// are stored as YYYYMMDD integers.
enum class ScalarFn {
  kMod,       ///< MOD(a, b), integer remainder
  kCoalesce,  ///< first non-NULL argument
  kAbs,
  kYear,      ///< YEAR(yyyymmdd)  = v / 10000
  kMonth,     ///< MONTH(yyyymmdd) = (v / 100) % 100
  kDay,       ///< DAY(yyyymmdd)   = v % 100
  kMin2,      ///< LEAST(a, b)   — scalar two-argument min
  kMax2,      ///< GREATEST(a, b) — scalar two-argument max
};

const char* ScalarFnName(ScalarFn fn);
const char* BinaryOpSymbol(BinaryOp op);

/// A bound expression node. One struct covers all kinds (tagged union
/// style); factory functions in expr/builder.h construct well-formed
/// nodes and the type checker validates/annotates whole trees.
struct Expr {
  ExprKind kind;
  /// Result type. Filled by the binder / type checker; kNull for an
  /// untyped NULL literal.
  DataType type = DataType::kNull;

  // kLiteral
  Value literal;

  // kColumnRef
  size_t column_index = 0;
  std::string column_name;  ///< display only

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;

  // kFunction
  ScalarFn function = ScalarFn::kMod;

  // kIsNull
  bool is_null_negated = false;  ///< true for IS NOT NULL

  /// Children. Layout by kind:
  ///  kUnary:    [operand]
  ///  kBinary:   [lhs, rhs]
  ///  kCase:     [when1, then1, when2, then2, ..., else?]  (has_else set)
  ///  kFunction: arguments
  ///  kIn:       [needle, candidate1, ..., candidateN]
  ///  kBetween:  [subject, lo, hi]
  ///  kIsNull:   [operand]
  std::vector<std::unique_ptr<Expr>> children;
  bool has_else = false;  ///< kCase only

  /// Deep copy.
  std::unique_ptr<Expr> Clone() const;

  /// SQL-ish rendering for debugging and plan explain output.
  std::string ToString() const;
};

using ExprPtr = std::unique_ptr<Expr>;

}  // namespace rfv

#endif  // RFVIEW_EXPR_EXPR_H_
