#ifndef RFVIEW_EXPR_EVAL_H_
#define RFVIEW_EXPR_EVAL_H_

#include "common/row.h"
#include "common/status.h"
#include "expr/expr.h"

namespace rfv {

/// Expression interpreter with SQL three-valued logic:
///  * NULL propagates through arithmetic, comparisons and functions
///    (except COALESCE / IS NULL, which exist to consume NULLs),
///  * AND/OR follow Kleene logic,
///  * predicates in WHERE/ON/HAVING treat a NULL result as "not satisfied"
///    (see EvalPredicate).
/// Runtime failures (division by zero, MOD by zero) surface as
/// kExecutionError.
class Evaluator {
 public:
  /// Evaluates `expr` against `row` (bound column indexes refer to `row`).
  static Result<Value> Eval(const Expr& expr, const Row& row);

  /// Evaluates a boolean expression, mapping NULL → false.
  static Result<bool> EvalPredicate(const Expr& expr, const Row& row);
};

}  // namespace rfv

#endif  // RFVIEW_EXPR_EVAL_H_
