#ifndef RFVIEW_EXPR_BUILDER_H_
#define RFVIEW_EXPR_BUILDER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "expr/expr.h"

namespace rfv {
namespace eb {

/// Tiny factory namespace for constructing bound expression trees by
/// hand — used by the binder, the rewrite pattern builder
/// (rewrite/pattern_plan.*) and tests. Types are left to the caller or to
/// a later CheckTypes pass.

inline ExprPtr Lit(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->type = v.type();
  e->literal = std::move(v);
  return e;
}

inline ExprPtr Int(int64_t v) { return Lit(Value::Int(v)); }
inline ExprPtr Dbl(double v) { return Lit(Value::Double(v)); }
inline ExprPtr Str(std::string v) { return Lit(Value::String(std::move(v))); }
inline ExprPtr Null() { return Lit(Value::Null()); }

inline ExprPtr Col(size_t index, DataType type,
                   std::string name = std::string()) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->type = type;
  e->column_index = index;
  e->column_name = std::move(name);
  return e;
}

inline ExprPtr Unary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->type = op == UnaryOp::kNot ? DataType::kBool : operand->type;
  e->children.push_back(std::move(operand));
  return e;
}

inline ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
      e->type = (lhs->type == DataType::kDouble ||
                 rhs->type == DataType::kDouble)
                    ? DataType::kDouble
                    : DataType::kInt64;
      break;
    default:
      e->type = DataType::kBool;
      break;
  }
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

inline ExprPtr Add(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kAdd, std::move(a), std::move(b));
}
inline ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kSub, std::move(a), std::move(b));
}
inline ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kMul, std::move(a), std::move(b));
}
inline ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kEq, std::move(a), std::move(b));
}
inline ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kLt, std::move(a), std::move(b));
}
inline ExprPtr Le(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kLe, std::move(a), std::move(b));
}
inline ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kGt, std::move(a), std::move(b));
}
inline ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kGe, std::move(a), std::move(b));
}
inline ExprPtr And(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kAnd, std::move(a), std::move(b));
}
inline ExprPtr Or(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kOr, std::move(a), std::move(b));
}

inline ExprPtr Fn(ScalarFn fn, std::vector<ExprPtr> args, DataType type) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunction;
  e->function = fn;
  e->type = type;
  e->children = std::move(args);
  return e;
}

inline ExprPtr Mod(ExprPtr a, ExprPtr b) {
  std::vector<ExprPtr> args;
  args.push_back(std::move(a));
  args.push_back(std::move(b));
  return Fn(ScalarFn::kMod, std::move(args), DataType::kInt64);
}

inline ExprPtr Coalesce(ExprPtr a, ExprPtr b) {
  const DataType type =
      a->type != DataType::kNull ? a->type : b->type;
  std::vector<ExprPtr> args;
  args.push_back(std::move(a));
  args.push_back(std::move(b));
  return Fn(ScalarFn::kCoalesce, std::move(args), type);
}

/// CASE WHEN cond THEN then ELSE els END.
inline ExprPtr CaseWhen(ExprPtr cond, ExprPtr then, ExprPtr els) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCase;
  e->type = then->type;
  e->has_else = true;
  e->children.push_back(std::move(cond));
  e->children.push_back(std::move(then));
  e->children.push_back(std::move(els));
  return e;
}

inline ExprPtr Between(ExprPtr subject, ExprPtr lo, ExprPtr hi) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBetween;
  e->type = DataType::kBool;
  e->children.push_back(std::move(subject));
  e->children.push_back(std::move(lo));
  e->children.push_back(std::move(hi));
  return e;
}

inline ExprPtr In(ExprPtr needle, std::vector<ExprPtr> candidates) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIn;
  e->type = DataType::kBool;
  e->children.push_back(std::move(needle));
  for (ExprPtr& c : candidates) e->children.push_back(std::move(c));
  return e;
}

inline ExprPtr IsNull(ExprPtr operand, bool negated = false) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIsNull;
  e->type = DataType::kBool;
  e->is_null_negated = negated;
  e->children.push_back(std::move(operand));
  return e;
}

}  // namespace eb
}  // namespace rfv

#endif  // RFVIEW_EXPR_BUILDER_H_
