#include "expr/eval.h"

#include <cmath>
#include <cstdlib>

#include "common/logging.h"

namespace rfv {

namespace {

/// Arithmetic on two non-NULL numeric values; integer ops stay in int64,
/// mixed/double ops promote to double.
Result<Value> EvalArithmetic(BinaryOp op, const Value& l, const Value& r) {
  if (!l.is_numeric() || !r.is_numeric()) {
    return Status::TypeError("arithmetic on non-numeric value");
  }
  const bool integral =
      l.type() == DataType::kInt64 && r.type() == DataType::kInt64;
  if (integral) {
    const int64_t a = l.AsInt();
    const int64_t b = r.AsInt();
    switch (op) {
      case BinaryOp::kAdd: return Value::Int(a + b);
      case BinaryOp::kSub: return Value::Int(a - b);
      case BinaryOp::kMul: return Value::Int(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return Status::ExecutionError("division by zero");
        return Value::Int(a / b);
      default: break;
    }
  } else {
    const double a = l.ToDouble();
    const double b = r.ToDouble();
    switch (op) {
      case BinaryOp::kAdd: return Value::Double(a + b);
      case BinaryOp::kSub: return Value::Double(a - b);
      case BinaryOp::kMul: return Value::Double(a * b);
      case BinaryOp::kDiv:
        if (b == 0.0) return Status::ExecutionError("division by zero");
        return Value::Double(a / b);
      default: break;
    }
  }
  return Status::Internal("EvalArithmetic called with non-arithmetic op");
}

/// SQL comparison: NULL operand → NULL result.
Value EvalComparison(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  const int c = l.Compare(r);
  switch (op) {
    case BinaryOp::kEq: return Value::Bool(c == 0);
    case BinaryOp::kNe: return Value::Bool(c != 0);
    case BinaryOp::kLt: return Value::Bool(c < 0);
    case BinaryOp::kLe: return Value::Bool(c <= 0);
    case BinaryOp::kGt: return Value::Bool(c > 0);
    case BinaryOp::kGe: return Value::Bool(c >= 0);
    default: break;
  }
  RFV_CHECK_MSG(false, "EvalComparison with non-comparison op");
  return Value::Null();
}

Result<Value> EvalFunction(const Expr& expr, const Row& row);

Result<Value> EvalNode(const Expr& expr, const Row& row) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumnRef: {
      RFV_DCHECK(expr.column_index < row.size());
      return row[expr.column_index];
    }
    case ExprKind::kUnary: {
      Value v;
      RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(*expr.children[0], row));
      if (v.is_null()) return Value::Null();
      if (expr.unary_op == UnaryOp::kNot) {
        if (v.type() != DataType::kBool) {
          return Status::TypeError("NOT on non-boolean");
        }
        return Value::Bool(!v.AsBool());
      }
      if (v.type() == DataType::kInt64) return Value::Int(-v.AsInt());
      if (v.type() == DataType::kDouble) return Value::Double(-v.AsDouble());
      return Status::TypeError("unary minus on non-numeric");
    }
    case ExprKind::kBinary: {
      const BinaryOp op = expr.binary_op;
      if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
        // Kleene logic with short-circuiting on the dominant value.
        Value l;
        RFV_ASSIGN_OR_RETURN(l, Evaluator::Eval(*expr.children[0], row));
        const bool dominant = (op == BinaryOp::kOr);  // TRUE for OR, FALSE for AND
        if (!l.is_null() && l.AsBool() == dominant) {
          return Value::Bool(dominant);
        }
        Value r;
        RFV_ASSIGN_OR_RETURN(r, Evaluator::Eval(*expr.children[1], row));
        if (!r.is_null() && r.AsBool() == dominant) {
          return Value::Bool(dominant);
        }
        if (l.is_null() || r.is_null()) return Value::Null();
        return Value::Bool(!dominant);
      }
      Value l;
      RFV_ASSIGN_OR_RETURN(l, Evaluator::Eval(*expr.children[0], row));
      Value r;
      RFV_ASSIGN_OR_RETURN(r, Evaluator::Eval(*expr.children[1], row));
      switch (op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
          if (l.is_null() || r.is_null()) return Value::Null();
          return EvalArithmetic(op, l, r);
        default:
          return EvalComparison(op, l, r);
      }
    }
    case ExprKind::kCase: {
      const size_t pairs =
          (expr.children.size() - (expr.has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        bool hit = false;
        RFV_ASSIGN_OR_RETURN(
            hit, Evaluator::EvalPredicate(*expr.children[2 * i], row));
        if (hit) return Evaluator::Eval(*expr.children[2 * i + 1], row);
      }
      if (expr.has_else) return Evaluator::Eval(*expr.children.back(), row);
      return Value::Null();
    }
    case ExprKind::kFunction:
      return EvalFunction(expr, row);
    case ExprKind::kIn: {
      Value needle;
      RFV_ASSIGN_OR_RETURN(needle, Evaluator::Eval(*expr.children[0], row));
      if (needle.is_null()) return Value::Null();
      bool saw_null = false;
      for (size_t i = 1; i < expr.children.size(); ++i) {
        Value candidate;
        RFV_ASSIGN_OR_RETURN(candidate,
                             Evaluator::Eval(*expr.children[i], row));
        if (candidate.is_null()) {
          saw_null = true;
          continue;
        }
        if (needle.Compare(candidate) == 0) return Value::Bool(true);
      }
      return saw_null ? Value::Null() : Value::Bool(false);
    }
    case ExprKind::kBetween: {
      Value subject;
      RFV_ASSIGN_OR_RETURN(subject, Evaluator::Eval(*expr.children[0], row));
      Value lo;
      RFV_ASSIGN_OR_RETURN(lo, Evaluator::Eval(*expr.children[1], row));
      Value hi;
      RFV_ASSIGN_OR_RETURN(hi, Evaluator::Eval(*expr.children[2], row));
      if (subject.is_null() || lo.is_null() || hi.is_null()) {
        return Value::Null();
      }
      return Value::Bool(subject.Compare(lo) >= 0 && subject.Compare(hi) <= 0);
    }
    case ExprKind::kIsNull: {
      Value v;
      RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(*expr.children[0], row));
      const bool is_null = v.is_null();
      return Value::Bool(expr.is_null_negated ? !is_null : is_null);
    }
  }
  return Status::Internal("unreachable expression kind");
}

Result<Value> EvalFunction(const Expr& expr, const Row& row) {
  switch (expr.function) {
    case ScalarFn::kCoalesce: {
      for (const auto& child : expr.children) {
        Value v;
        RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(*child, row));
        if (!v.is_null()) return v;
      }
      return Value::Null();
    }
    default:
      break;
  }
  // The remaining functions propagate NULL from any argument.
  std::vector<Value> args;
  args.reserve(expr.children.size());
  for (const auto& child : expr.children) {
    Value v;
    RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(*child, row));
    if (v.is_null()) return Value::Null();
    args.push_back(std::move(v));
  }
  switch (expr.function) {
    case ScalarFn::kMod: {
      if (args[0].type() != DataType::kInt64 ||
          args[1].type() != DataType::kInt64) {
        return Status::TypeError("MOD expects integer arguments");
      }
      const int64_t b = args[1].AsInt();
      if (b == 0) return Status::ExecutionError("MOD by zero");
      // Floored (mathematical) modulo: the result takes the divisor's
      // sign, so congruence classes are stable across zero. The paper's
      // MaxOA/MinOA operator patterns (Figures 10/13) match positions by
      // MOD equality, and complete sequences contain header positions
      // <= 0 — with C-style (dividend-sign) MOD those positions would
      // fall out of their congruence class. Documented deviation from
      // DB2's MOD.
      const int64_t a = args[0].AsInt();
      int64_t m = a % b;
      if (m != 0 && ((m < 0) != (b < 0))) m += b;
      return Value::Int(m);
    }
    case ScalarFn::kAbs:
      if (args[0].type() == DataType::kInt64) {
        return Value::Int(std::llabs(args[0].AsInt()));
      }
      return Value::Double(std::fabs(args[0].ToDouble()));
    case ScalarFn::kYear:
      return Value::Int(args[0].AsInt() / 10000);
    case ScalarFn::kMonth:
      return Value::Int((args[0].AsInt() / 100) % 100);
    case ScalarFn::kDay:
      return Value::Int(args[0].AsInt() % 100);
    case ScalarFn::kMin2:
      return args[0].Compare(args[1]) <= 0 ? args[0] : args[1];
    case ScalarFn::kMax2:
      return args[0].Compare(args[1]) >= 0 ? args[0] : args[1];
    case ScalarFn::kCoalesce:
      break;  // handled above
  }
  return Status::Internal("unreachable scalar function");
}

}  // namespace

Result<Value> Evaluator::Eval(const Expr& expr, const Row& row) {
  return EvalNode(expr, row);
}

Result<bool> Evaluator::EvalPredicate(const Expr& expr, const Row& row) {
  Value v;
  RFV_ASSIGN_OR_RETURN(v, Eval(expr, row));
  if (v.is_null()) return false;
  if (v.type() != DataType::kBool) {
    return Status::TypeError("predicate did not evaluate to a boolean");
  }
  return v.AsBool();
}

}  // namespace rfv
