#include "expr/expr.h"

#include <sstream>

namespace rfv {

const char* ScalarFnName(ScalarFn fn) {
  switch (fn) {
    case ScalarFn::kMod: return "MOD";
    case ScalarFn::kCoalesce: return "COALESCE";
    case ScalarFn::kAbs: return "ABS";
    case ScalarFn::kYear: return "YEAR";
    case ScalarFn::kMonth: return "MONTH";
    case ScalarFn::kDay: return "DAY";
    case ScalarFn::kMin2: return "LEAST";
    case ScalarFn::kMax2: return "GREATEST";
  }
  return "?";
}

const char* BinaryOpSymbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto copy = std::make_unique<Expr>();
  copy->kind = kind;
  copy->type = type;
  copy->literal = literal;
  copy->column_index = column_index;
  copy->column_name = column_name;
  copy->unary_op = unary_op;
  copy->binary_op = binary_op;
  copy->function = function;
  copy->is_null_negated = is_null_negated;
  copy->has_else = has_else;
  copy->children.reserve(children.size());
  for (const auto& child : children) {
    copy->children.push_back(child->Clone());
  }
  return copy;
}

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case ExprKind::kLiteral:
      os << literal.ToString();
      break;
    case ExprKind::kColumnRef:
      if (!column_name.empty()) {
        os << column_name;
      } else {
        os << "$" << column_index;
      }
      break;
    case ExprKind::kUnary:
      os << (unary_op == UnaryOp::kNot ? "NOT " : "-")
         << children[0]->ToString();
      break;
    case ExprKind::kBinary:
      os << "(" << children[0]->ToString() << " "
         << BinaryOpSymbol(binary_op) << " " << children[1]->ToString()
         << ")";
      break;
    case ExprKind::kCase: {
      os << "CASE";
      const size_t pairs = (children.size() - (has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        os << " WHEN " << children[2 * i]->ToString() << " THEN "
           << children[2 * i + 1]->ToString();
      }
      if (has_else) os << " ELSE " << children.back()->ToString();
      os << " END";
      break;
    }
    case ExprKind::kFunction: {
      os << ScalarFnName(function) << "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) os << ", ";
        os << children[i]->ToString();
      }
      os << ")";
      break;
    }
    case ExprKind::kIn: {
      os << children[0]->ToString() << " IN (";
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) os << ", ";
        os << children[i]->ToString();
      }
      os << ")";
      break;
    }
    case ExprKind::kBetween:
      os << children[0]->ToString() << " BETWEEN "
         << children[1]->ToString() << " AND " << children[2]->ToString();
      break;
    case ExprKind::kIsNull:
      os << children[0]->ToString() << " IS "
         << (is_null_negated ? "NOT " : "") << "NULL";
      break;
  }
  return os.str();
}

}  // namespace rfv
