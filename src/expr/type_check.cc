#include "expr/type_check.h"

#include <string>

namespace rfv {

namespace {

bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble;
}

/// Two types are comparable if both numeric, identical, or either side is
/// the NULL type (untyped NULL literal).
bool Comparable(DataType a, DataType b) {
  if (a == DataType::kNull || b == DataType::kNull) return true;
  if (IsNumeric(a) && IsNumeric(b)) return true;
  return a == b;
}

/// Unifies branch types (CASE/COALESCE). Returns kNull only when all
/// branches are NULL literals.
Result<DataType> Unify(DataType a, DataType b, const Expr& context) {
  if (a == DataType::kNull) return b;
  if (b == DataType::kNull) return a;
  if (a == b) return a;
  if (IsNumeric(a) && IsNumeric(b)) return DataType::kDouble;
  return Status::TypeError("incompatible branch types in " +
                           context.ToString());
}

Status TypeErrorAt(const Expr& expr, const std::string& what) {
  return Status::TypeError(what + " in " + expr.ToString());
}

}  // namespace

Status CheckTypes(Expr* expr, const Schema& input) {
  for (auto& child : expr->children) {
    RFV_RETURN_IF_ERROR(CheckTypes(child.get(), input));
  }
  switch (expr->kind) {
    case ExprKind::kLiteral:
      expr->type = expr->literal.type();
      return Status::OK();
    case ExprKind::kColumnRef:
      if (expr->column_index >= input.NumColumns()) {
        return Status::Internal("column index out of range: " +
                                expr->ToString());
      }
      expr->type = input.column(expr->column_index).type;
      return Status::OK();
    case ExprKind::kUnary: {
      const DataType t = expr->children[0]->type;
      if (expr->unary_op == UnaryOp::kNot) {
        if (t != DataType::kBool && t != DataType::kNull) {
          return TypeErrorAt(*expr, "NOT requires a boolean");
        }
        expr->type = DataType::kBool;
      } else {
        if (!IsNumeric(t) && t != DataType::kNull) {
          return TypeErrorAt(*expr, "unary minus requires a numeric");
        }
        expr->type = t == DataType::kNull ? DataType::kInt64 : t;
      }
      return Status::OK();
    }
    case ExprKind::kBinary: {
      const DataType l = expr->children[0]->type;
      const DataType r = expr->children[1]->type;
      switch (expr->binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv: {
          if ((!IsNumeric(l) && l != DataType::kNull) ||
              (!IsNumeric(r) && r != DataType::kNull)) {
            return TypeErrorAt(*expr, "arithmetic requires numerics");
          }
          expr->type = (l == DataType::kDouble || r == DataType::kDouble)
                           ? DataType::kDouble
                           : DataType::kInt64;
          return Status::OK();
        }
        case BinaryOp::kAnd:
        case BinaryOp::kOr: {
          if ((l != DataType::kBool && l != DataType::kNull) ||
              (r != DataType::kBool && r != DataType::kNull)) {
            return TypeErrorAt(*expr, "AND/OR require booleans");
          }
          expr->type = DataType::kBool;
          return Status::OK();
        }
        default: {
          if (!Comparable(l, r)) {
            return TypeErrorAt(*expr, "incomparable operand types");
          }
          expr->type = DataType::kBool;
          return Status::OK();
        }
      }
    }
    case ExprKind::kCase: {
      const size_t pairs =
          (expr->children.size() - (expr->has_else ? 1 : 0)) / 2;
      DataType result = DataType::kNull;
      for (size_t i = 0; i < pairs; ++i) {
        const DataType cond = expr->children[2 * i]->type;
        if (cond != DataType::kBool && cond != DataType::kNull) {
          return TypeErrorAt(*expr, "CASE WHEN condition must be boolean");
        }
        RFV_ASSIGN_OR_RETURN(
            result, Unify(result, expr->children[2 * i + 1]->type, *expr));
      }
      if (expr->has_else) {
        RFV_ASSIGN_OR_RETURN(result,
                             Unify(result, expr->children.back()->type, *expr));
      }
      expr->type = result;
      return Status::OK();
    }
    case ExprKind::kFunction: {
      const auto arity_error = [&](size_t want) {
        return Status::TypeError(std::string(ScalarFnName(expr->function)) +
                                 " expects " + std::to_string(want) +
                                 " arguments");
      };
      switch (expr->function) {
        case ScalarFn::kMod:
          if (expr->children.size() != 2) return arity_error(2);
          for (const auto& c : expr->children) {
            if (c->type != DataType::kInt64 && c->type != DataType::kNull) {
              return TypeErrorAt(*expr, "MOD requires integers");
            }
          }
          expr->type = DataType::kInt64;
          return Status::OK();
        case ScalarFn::kCoalesce: {
          if (expr->children.empty()) return arity_error(1);
          DataType result = DataType::kNull;
          for (const auto& c : expr->children) {
            RFV_ASSIGN_OR_RETURN(result, Unify(result, c->type, *expr));
          }
          expr->type = result;
          return Status::OK();
        }
        case ScalarFn::kAbs:
          if (expr->children.size() != 1) return arity_error(1);
          if (!IsNumeric(expr->children[0]->type) &&
              expr->children[0]->type != DataType::kNull) {
            return TypeErrorAt(*expr, "ABS requires a numeric");
          }
          expr->type = expr->children[0]->type == DataType::kDouble
                           ? DataType::kDouble
                           : DataType::kInt64;
          return Status::OK();
        case ScalarFn::kYear:
        case ScalarFn::kMonth:
        case ScalarFn::kDay:
          if (expr->children.size() != 1) return arity_error(1);
          if (expr->children[0]->type != DataType::kInt64 &&
              expr->children[0]->type != DataType::kNull) {
            return TypeErrorAt(*expr, "date part requires a YYYYMMDD integer");
          }
          expr->type = DataType::kInt64;
          return Status::OK();
        case ScalarFn::kMin2:
        case ScalarFn::kMax2: {
          if (expr->children.size() != 2) return arity_error(2);
          DataType result = DataType::kNull;
          for (const auto& c : expr->children) {
            RFV_ASSIGN_OR_RETURN(result, Unify(result, c->type, *expr));
          }
          expr->type = result;
          return Status::OK();
        }
      }
      return Status::Internal("unreachable function in type check");
    }
    case ExprKind::kIn: {
      const DataType needle = expr->children[0]->type;
      for (size_t i = 1; i < expr->children.size(); ++i) {
        if (!Comparable(needle, expr->children[i]->type)) {
          return TypeErrorAt(*expr, "IN list type mismatch");
        }
      }
      expr->type = DataType::kBool;
      return Status::OK();
    }
    case ExprKind::kBetween: {
      const DataType subject = expr->children[0]->type;
      if (!Comparable(subject, expr->children[1]->type) ||
          !Comparable(subject, expr->children[2]->type)) {
        return TypeErrorAt(*expr, "BETWEEN bound type mismatch");
      }
      expr->type = DataType::kBool;
      return Status::OK();
    }
    case ExprKind::kIsNull:
      expr->type = DataType::kBool;
      return Status::OK();
  }
  return Status::Internal("unreachable expression kind in type check");
}

}  // namespace rfv
