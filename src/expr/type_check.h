#ifndef RFVIEW_EXPR_TYPE_CHECK_H_
#define RFVIEW_EXPR_TYPE_CHECK_H_

#include "common/schema.h"
#include "common/status.h"
#include "expr/expr.h"

namespace rfv {

/// Validates a bound expression tree against an input schema and fills in
/// every node's result `type`. Rules:
///  * column refs take their schema type (and must be in range),
///  * arithmetic requires numeric operands; int ⊕ int → int,
///    anything ⊕ double → double,
///  * comparisons/BETWEEN/IN require compatible operand types
///    (numeric×numeric, string×string, bool×bool) and yield bool,
///  * AND/OR/NOT require bool and yield bool,
///  * CASE branches must share a compatible type (numeric branches unify
///    to double when mixed); result is that type,
///  * COALESCE arguments unify like CASE branches,
///  * NULL literals are compatible with every type.
/// Errors: kTypeError with the offending subexpression's rendering.
Status CheckTypes(Expr* expr, const Schema& input);

}  // namespace rfv

#endif  // RFVIEW_EXPR_TYPE_CHECK_H_
