#include "stats/table_stats.h"

#include <set>
#include <sstream>

namespace rfv {

namespace {

bool NumericValue(const Value& v, double* out) {
  if (v.is_null()) return false;
  if (v.type() == DataType::kInt64) {
    *out = static_cast<double>(v.AsInt());
    return true;
  }
  if (v.type() == DataType::kDouble) {
    *out = v.AsDouble();
    return true;
  }
  return false;
}

}  // namespace

void TableStats::EnsureColumns(const Schema& schema) {
  if (columns.size() != schema.NumColumns()) {
    columns.assign(schema.NumColumns(), ColumnStats());
  }
}

void TableStats::InsertRow(const Schema& schema, const Row& row) {
  EnsureColumns(schema);
  ++row_count;
  ++dml_since_analyze;
  for (size_t c = 0; c < columns.size() && c < row.size(); ++c) {
    ColumnStats& stats = columns[c];
    const Value& v = row[c];
    if (v.is_null()) {
      ++stats.null_count;
      continue;
    }
    ++stats.non_null_count;
    // A new value can only widen the range, so the bounds stay tight
    // with respect to insert-only workloads; distinct counts cannot be
    // maintained without a full pass, so they go stale.
    double num = 0;
    if (NumericValue(v, &num)) {
      if (!stats.has_range) {
        stats.has_range = true;
        stats.min_value = num;
        stats.max_value = num;
      } else {
        if (num < stats.min_value) stats.min_value = num;
        if (num > stats.max_value) stats.max_value = num;
      }
    }
    if (stats.distinct_count >= 0) stats.stale = true;
  }
}

void TableStats::RemoveRow(const Schema& schema, const Row& row) {
  EnsureColumns(schema);
  --row_count;
  ++dml_since_analyze;
  for (size_t c = 0; c < columns.size() && c < row.size(); ++c) {
    ColumnStats& stats = columns[c];
    const Value& v = row[c];
    if (v.is_null()) {
      --stats.null_count;
      continue;
    }
    --stats.non_null_count;
    // Removing a boundary value cannot shrink the stored range without a
    // rescan — keep the over-approximation and flag it.
    double num = 0;
    if (NumericValue(v, &num) && stats.has_range &&
        (num <= stats.min_value || num >= stats.max_value)) {
      stats.stale = true;
    }
    if (stats.distinct_count >= 0) stats.stale = true;
  }
}

void TableStats::ReplaceRow(const Schema& schema, const Row& before,
                            const Row& after) {
  // Model as delete + insert, then fold the two DML ticks into one.
  RemoveRow(schema, before);
  InsertRow(schema, after);
  --dml_since_analyze;
}

void TableStats::Clear() {
  row_count = 0;
  dml_since_analyze = 0;
  for (ColumnStats& stats : columns) stats = ColumnStats();
}

void TableStats::Analyze(const Schema& schema, const std::vector<Row>& rows) {
  columns.assign(schema.NumColumns(), ColumnStats());
  row_count = static_cast<int64_t>(rows.size());
  for (size_t c = 0; c < schema.NumColumns(); ++c) {
    ColumnStats& stats = columns[c];
    std::set<Value> distinct;
    for (const Row& row : rows) {
      if (c >= row.size()) continue;
      const Value& v = row[c];
      if (v.is_null()) {
        ++stats.null_count;
        continue;
      }
      ++stats.non_null_count;
      distinct.insert(v);
      double num = 0;
      if (NumericValue(v, &num)) {
        if (!stats.has_range) {
          stats.has_range = true;
          stats.min_value = num;
          stats.max_value = num;
        } else {
          if (num < stats.min_value) stats.min_value = num;
          if (num > stats.max_value) stats.max_value = num;
        }
      }
    }
    stats.distinct_count = static_cast<int64_t>(distinct.size());
    stats.stale = false;
  }
  ++analyze_count;
  dml_since_analyze = 0;
}

bool TableStats::AnyStale() const {
  for (const ColumnStats& stats : columns) {
    if (stats.stale) return true;
  }
  return false;
}

std::string TableStats::ToString(const Schema& schema) const {
  std::ostringstream os;
  os << "rows=" << row_count << " analyzed=" << analyze_count
     << " dml_since_analyze=" << dml_since_analyze << "\n";
  for (size_t c = 0; c < columns.size() && c < schema.NumColumns(); ++c) {
    const ColumnStats& stats = columns[c];
    os << "  " << schema.column(c).name << ": non_null="
       << stats.non_null_count << " nulls=" << stats.null_count;
    if (stats.has_range) {
      os << " min=" << stats.min_value << " max=" << stats.max_value;
    }
    if (stats.distinct_count >= 0) os << " distinct=" << stats.distinct_count;
    if (stats.stale) os << " (stale)";
    os << "\n";
  }
  return os.str();
}

}  // namespace rfv
