#include "stats/cost_model.h"

#include <algorithm>
#include <cstdio>

namespace rfv {

namespace {

/// Continuous approximation of a telescoping-chain length: how many
/// stride-w steps fit into `reach` positions before the chain walks off
/// the header/trailer of the complete sequence. Clamped at 0.
double ChainLen(double reach, double w) {
  if (w <= 0 || reach <= 0) return 0;
  return reach / w;
}

CostEstimate Finish(CostEstimate est) {
  est.total = est.rows_read + est.pred_evals + kTupleWeight * est.tuples +
              est.output_rows;
  return est;
}

/// Prices a pattern's join predicate against the engine's alternatives
/// and stores the cheapest in est->pred_evals / est->join:
///   nested loop  n·m pairs, every branch of the disjunction tested;
///   index hull   n probes, each scanning the predicate's position hull
///                (hull_rows candidates, re-checked branch-wide) —
///                requires the ordered index;
///   band merge   n band resolutions touching only band_rows interval/
///                stride candidates per left row (exec/band_join.cc).
/// hull_rows / band_rows are candidate counts per left row; pass a
/// negative band_rows when the condition has no band shape.
/// Per-candidate cost multiplier of a vector-native join path relative
/// to its row path: candidate runs are gathered column-wise into pooled
/// lanes instead of materialized through per-row Value copies (measured
/// ~2× on the A8 sweep and the BM_HashJoin probe; priced conservatively).
constexpr double kVectorJoinDiscount = 0.5;

void PriceJoin(double n, double m, double branches, double hull_rows,
               double band_rows, const PatternStats& stats,
               CostEstimate* est) {
  est->pred_evals = n * m * branches;
  est->join = JoinStrategy::kNestedLoop;
  est->vector = false;
  if (stats.indexed && hull_rows >= 0) {
    const double hull = n * hull_rows * branches;
    if (hull < est->pred_evals) {
      est->pred_evals = hull;
      est->join = JoinStrategy::kIndexHull;
    }
  }
  if (band_rows >= 0) {
    // The merge band join has a vector-native path (band_join.cc
    // NextVectorImpl); under vectorized execution its candidates cost
    // kVectorJoinDiscount of the row path's.
    double band = n * band_rows * branches;
    if (stats.vector_exec) band *= kVectorJoinDiscount;
    if (band < est->pred_evals) {
      est->pred_evals = band;
      est->join = JoinStrategy::kBandMerge;
      est->vector = stats.vector_exec;
    }
  }
}

}  // namespace

const char* JoinStrategyName(JoinStrategy strategy) {
  switch (strategy) {
    case JoinStrategy::kNone: return "";
    case JoinStrategy::kNestedLoop: return "nl";
    case JoinStrategy::kIndexHull: return "index";
    case JoinStrategy::kBandMerge: return "band";
    case JoinStrategy::kHashEqui: return "hash";
  }
  return "";
}

std::string CostEstimate::Summary() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "total=%.0f read=%.0f pred=%.0f tuples=%.0f out=%.0f", total,
                rows_read, pred_evals, tuples, output_rows);
  std::string out = buf;
  if (join != JoinStrategy::kNone) {
    out += " join=";
    out += JoinStrategyName(join);
    if (vector) out += "+vec";
  }
  return out;
}

CostEstimate EstimateDirectCost(const PatternStats& stats) {
  CostEstimate est;
  const double m = static_cast<double>(stats.content_rows);
  const double n = static_cast<double>(stats.body_rows);
  est.rows_read = m;
  est.pred_evals = m;  // body-range filter over the content scan
  est.tuples = 0;
  est.output_rows = n;
  return Finish(est);
}

CostEstimate EstimateCumulativeDiffCost(const PatternStats& stats) {
  CostEstimate est;
  const double m = static_cast<double>(stats.content_rows);
  const double n = static_cast<double>(stats.body_rows);
  est.rows_read = n + m;
  // Self join probing the two positions k+h and k-l-1 per output row
  // (Fig. 5). Each branch is a point band, so the index hull and the
  // band merge both touch one candidate per probe.
  PriceJoin(n, m, /*branches=*/2, /*hull_rows=*/1, /*band_rows=*/1, stats,
            &est);
  est.tuples = 2 * n;
  est.output_rows = n;
  return Finish(est);
}

CostEstimate EstimateMaxoaCost(const WindowSpec& view_window,
                               const MaxoaParams& params,
                               const PatternStats& stats) {
  CostEstimate est;
  const double m = static_cast<double>(stats.content_rows);
  const double n = static_cast<double>(stats.body_rows);
  const double w = static_cast<double>(view_window.size());
  const double hx = static_cast<double>(view_window.h());
  const double lx = static_cast<double>(view_window.l());
  const double dl = static_cast<double>(params.delta_l);
  const double dh = static_cast<double>(params.delta_h);
  const double k = (n + 1) / 2;  // average output position

  // Fig. 10 fan-out per output position: the base term plus, per active
  // side, two stride-w chains (positive and compensation) bounded by the
  // header on the low side and the trailer on the high side. Both
  // strides are Δl+Δp = Δh+Δq = w_x.
  double terms = 1;
  double branches = 1;
  if (params.delta_l > 0) {
    terms += ChainLen(k + hx - 1, w) + ChainLen(k - dl + hx - 1, w);
    branches += 2;
  }
  if (params.delta_h > 0) {
    terms += ChainLen(n + lx - k, w) + ChainLen(n + lx - k - dh, w);
    branches += 2;
  }

  est.rows_read = n + m;
  // The congruence (MOD) stride branches defeat hash joins, but an
  // ordered index can still scan each probe's position hull (half the
  // content when only one side is active, the whole content otherwise),
  // and the merge band join enumerates exactly the `terms` stride
  // candidates per output row.
  const double hull_span = ((params.delta_l > 0) != (params.delta_h > 0))
                               ? m / 2
                               : m;
  PriceJoin(n, m, branches, hull_span * stats.PosDensity(), terms, stats,
            &est);
  est.tuples = n * terms;
  est.output_rows = n;
  return Finish(est);
}

CostEstimate EstimateMinoaCost(const WindowSpec& view_window,
                               const MinoaParams& params,
                               const PatternStats& stats) {
  CostEstimate est;
  const double m = static_cast<double>(stats.content_rows);
  const double n = static_cast<double>(stats.body_rows);
  const double w = static_cast<double>(params.wx);
  const double hx = static_cast<double>(view_window.h());
  const double dl = static_cast<double>(params.delta_l);
  const double dh = static_cast<double>(params.delta_h);
  const double k = (n + 1) / 2;

  const int64_t span = params.delta_l + params.delta_h;
  const bool coincident = params.wx > 0 && span >= 0 && span % params.wx == 0;

  double terms = 0;
  double branches = 0;
  if (coincident) {
    // Both chains live in one congruence class and telescope to a
    // bounded window of (Δl+Δh)/w_x + 1 view values (Fig. 13's best
    // case — a single BETWEEN branch).
    terms = static_cast<double>(span) / w + 1;
    branches = 1;
  } else {
    // Positive chain tiles down from k+Δh, negative from k-Δl-w; both
    // stop at the header position 1-h_x.
    terms = ChainLen(k + dh + hx - 1, w) + 1 + ChainLen(k - dl + hx - 1, w);
    branches = 2;
  }

  est.rows_read = n + m;
  // Coincident chains collapse to one BETWEEN band whose hull is the
  // Δl+Δh position span; otherwise each probe's hull covers roughly
  // half the content while the band merge touches only the stride
  // candidates.
  const double hull_rows = coincident
                               ? (static_cast<double>(span) + 1)
                               : m / 2;
  PriceJoin(n, m, branches, hull_rows * stats.PosDensity(), terms, stats,
            &est);
  est.tuples = n * terms;
  est.output_rows = n;
  return Finish(est);
}

CostEstimate EstimateMinMaxCoverCost(const PatternStats& stats) {
  CostEstimate est;
  const double m = static_cast<double>(stats.content_rows);
  const double n = static_cast<double>(stats.body_rows);
  est.rows_read = n + 2 * m;
  // Two equi self joins on shifted positions — index- or hash-joinable,
  // so the pair cost is linear, not quadratic. The hash flavor has a
  // vector-native build/probe path (join.cc OpenVectorized /
  // NextVectorImpl); under vectorized execution its per-join cost is
  // discounted like the band merge's.
  double per_join = stats.indexed ? n + m : 2 * (n + m);
  if (stats.indexed) {
    est.join = JoinStrategy::kIndexHull;
  } else {
    est.join = JoinStrategy::kHashEqui;
    if (stats.vector_exec) {
      per_join *= kVectorJoinDiscount;
      est.vector = true;
    }
  }
  est.pred_evals = 2 * per_join;
  est.tuples = 2 * n;
  est.output_rows = n;
  return Finish(est);
}

CostEstimate EstimateCountTrivialCost(const PatternStats& stats) {
  CostEstimate est;
  const double b = static_cast<double>(stats.base_rows);
  est.rows_read = b;
  est.pred_evals = b;
  est.tuples = 0;
  est.output_rows = static_cast<double>(stats.body_rows);
  return Finish(est);
}

CostEstimate EstimateSelfJoinRecomputeCost(const WindowSpec& query_window,
                                           const PatternStats& stats) {
  CostEstimate est;
  const double b = static_cast<double>(stats.base_rows);
  const double w = query_window.is_cumulative()
                       ? (b + 1) / 2  // BETWEEN 1 AND k: half the pairs match
                       : static_cast<double>(query_window.size());
  est.rows_read = 2 * b;
  // Fig. 2: self join on a position-range predicate, one branch. The
  // BETWEEN band's hull per probe is the query window itself, so the
  // index probe and the band merge price identically.
  const double window_rows = std::min(w, b) * stats.PosDensity();
  PriceJoin(b, b, /*branches=*/1, window_rows, window_rows, stats, &est);
  est.tuples = b * std::min(w, b);
  est.output_rows = b;
  return Finish(est);
}

}  // namespace rfv
