#ifndef RFVIEW_STATS_COST_MODEL_H_
#define RFVIEW_STATS_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "sequence/maxoa.h"
#include "sequence/minoa.h"
#include "sequence/window_spec.h"

namespace rfv {

/// Cost model for the paper's derivation patterns (§7: "neither MaxOA
/// nor MinOA dominates — the winner depends on the view/query frame
/// overlap and the data volume"). Each Estimate* function prices the
/// relational operator pattern the rewriter would emit
/// (rewrite/pattern_sql.h) against the *cheapest* execution strategy
/// the engine has for its join predicate: the all-pairs nested loop,
/// the ordered-index probe of the predicate's position hull, or the
/// merge band join that touches only interval/stride candidates
/// (exec/band_join.cc). The chosen alternative is recorded in
/// CostEstimate::join and shown by EXPLAIN. See docs/COST_MODEL.md for
/// the formula derivations and their mapping to the paper's figures.

/// Statistics inputs of one costing decision, harvested from the
/// stats-bearing tables (stats/table_stats.h) by the rewriter.
struct PatternStats {
  /// Body length n of the view sequence (positions 1..n).
  int64_t body_rows = 0;
  /// Rows of the view's content table: n plus header/trailer.
  int64_t content_rows = 0;
  /// Live rows of the base table (no-rewrite baseline input).
  int64_t base_rows = 0;
  /// Whether the content table has an ordered index on pos.
  bool indexed = true;
  /// True when the decision ran on stale column statistics (counts are
  /// always exact; recorded for the rfv_rewrite_cost_* metrics).
  bool stale = false;
  /// Whether the executor will run the plan in vectorized mode
  /// (ExecOptions::use_vectorized_execution), stamped by the rewriter
  /// from the session's options. The band-merge and hash-join
  /// alternatives then price their vector-native paths (column-gathered
  /// emission instead of per-row materialization) and the chosen
  /// estimate is tagged CostEstimate::vector (`join=band+vec`).
  bool vector_exec = false;

  /// Position-column statistics (ColumnStats of the content table's pos
  /// column), pricing the index-probe hull and band-join alternatives:
  /// smallest and largest position. pos_max < pos_min = unknown range.
  double pos_min = 0;
  /// Largest position; see pos_min.
  double pos_max = -1;
  /// Distinct positions as of the last ANALYZE; -1 = never analyzed.
  int64_t pos_distinct = -1;

  /// Rows per unit of position range, distinct/(max-min+1) clamped to
  /// (0, 1]; 1.0 when the range or distinct count is unknown (a complete
  /// sequence is dense, so 1.0 is the right prior).
  double PosDensity() const {
    const double width = pos_max - pos_min + 1;
    if (width <= 0 || pos_distinct <= 0) return 1.0;
    const double d = static_cast<double>(pos_distinct) / width;
    return d > 1.0 ? 1.0 : d;
  }
};

/// Join execution strategy a cost estimate was priced against — the
/// cheapest of the engine's alternatives for the pattern's join
/// predicate (see PriceJoin in cost_model.cc). Surfaced in
/// CostEstimate::Summary as the `join=` token, so EXPLAIN shows which
/// physical alternative the estimate assumed.
enum class JoinStrategy {
  kNone,        ///< pattern has no join (direct scan, count-trivial)
  kNestedLoop,  ///< all-pairs nested loop, every branch tested
  kIndexHull,   ///< ordered-index probe of the predicate's position hull
  kBandMerge,   ///< merge band join touching only band/stride candidates
  kHashEqui,    ///< hash build + probe on equi-key conjuncts
};

/// Short token for the Summary line ("nl", "index", "band", "hash", "").
const char* JoinStrategyName(JoinStrategy strategy);

/// One pattern's estimated execution profile. `total` is the scalar the
/// chooser minimizes: rows_read + pred_evals + kTupleWeight·tuples +
/// output_rows (units: row operations).
struct CostEstimate {
  double rows_read = 0;    ///< stored rows scanned by the pattern
  double pred_evals = 0;   ///< join-pair predicate evaluations (branch-weighted)
  double tuples = 0;       ///< matched tuples entering aggregation
  double output_rows = 0;  ///< rows the pattern returns
  double total = 0;
  /// Cheapest join alternative the pred_evals term assumed.
  JoinStrategy join = JoinStrategy::kNone;
  /// True when the chosen join alternative was priced at its
  /// vector-native execution path (PatternStats::vector_exec and the
  /// strategy has one). Rendered as a "+vec" suffix on the join token,
  /// so EXPLAIN distinguishes row from vector join execution.
  bool vector = false;

  /// "total=… read=… pred=… tuples=… out=… join=…" (EXPLAIN verdict
  /// rendering; the join token is omitted for join-free patterns and
  /// suffixed "+vec" when the vector-native path was priced).
  std::string Summary() const;
};

/// Relative weight of a matched tuple against one predicate evaluation
/// in `total`. A matched pair is materialized, carried through the
/// grouping hash, and aggregated — several row operations — while a
/// failed pair costs one short-circuited branch test. The weight also
/// makes tuple *fan-out* the discriminating term between healthy and
/// degenerate derivations: every pattern's predicate cost is priced at
/// the cheapest join strategy (PriceJoin), but only narrow-stride
/// chains drag ~n/w_x view tuples per output row through the
/// aggregation (see the no-rewrite gate, rewrite/rewriter.h
/// kRewriteCostBias).
inline constexpr double kTupleWeight = 4.0;

/// Direct hit: scan the content table, keep the n body rows.
CostEstimate EstimateDirectCost(const PatternStats& stats);

/// Sliding-from-cumulative (paper Fig. 5): self join probing two
/// positions per output row.
CostEstimate EstimateCumulativeDiffCost(const PatternStats& stats);

/// MaxOA explicit pattern (paper Fig. 10). Fan-out: one base term plus,
/// per *active* side (Δl > 0 / Δh > 0), a positive and a negative
/// compensation chain of stride w_x running to the header/trailer.
CostEstimate EstimateMaxoaCost(const WindowSpec& view_window,
                               const MaxoaParams& params,
                               const PatternStats& stats);

/// MinOA pattern (paper Fig. 13). Fan-out: a positive and a negative
/// telescoping chain of stride w_x — or a single *bounded* chain of
/// (Δl+Δh)/w_x + 1 terms in the coincident congruence-class case.
CostEstimate EstimateMinoaCost(const WindowSpec& view_window,
                               const MinoaParams& params,
                               const PatternStats& stats);

/// MIN/MAX two-window cover (paper §4.2): two equi self joins, which
/// the engine runs as index or hash joins.
CostEstimate EstimateMinMaxCoverCost(const PatternStats& stats);

/// COUNT from positions alone: one base-table scan.
CostEstimate EstimateCountTrivialCost(const PatternStats& stats);

/// The no-rewrite baseline: recomputing the reporting function from the
/// base table with the paper's Fig. 2 self-join pattern (the paper's §7
/// cost context — an engine whose reporting functions are evaluated
/// relationally). A derivation is only chosen when it undercuts this.
CostEstimate EstimateSelfJoinRecomputeCost(const WindowSpec& query_window,
                                           const PatternStats& stats);

}  // namespace rfv

#endif  // RFVIEW_STATS_COST_MODEL_H_
