#ifndef RFVIEW_STATS_TABLE_STATS_H_
#define RFVIEW_STATS_TABLE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/schema.h"

namespace rfv {

/// Statistics of one column, feeding the derivation cost model
/// (stats/cost_model.h) and the plan cardinality estimator
/// (plan/cardinality.h).
///
/// Maintenance discipline (see TableStats): counts are exact at all
/// times; min/max are *widen-only* between ANALYZE runs (an INSERT can
/// grow the range immediately, but a DELETE/UPDATE that removes a
/// boundary value only marks the range stale — the stored bounds remain
/// a valid over-approximation); distinct_count is exact as of the last
/// ANALYZE and goes stale under DML.
struct ColumnStats {
  /// Rows whose value in this column is non-NULL. Exact.
  int64_t non_null_count = 0;
  /// Rows whose value is NULL. Exact (non_null + null == row_count).
  int64_t null_count = 0;

  /// Whether min_value/max_value hold a numeric range. False until the
  /// first non-NULL numeric value is seen (string columns never set it).
  bool has_range = false;
  /// Smallest / largest numeric value observed (ints widened to double).
  double min_value = 0;
  double max_value = 0;

  /// Number of distinct non-NULL values as of the last full ANALYZE;
  /// -1 when never analyzed. Used for partition-key cardinalities and
  /// equality selectivities.
  int64_t distinct_count = -1;

  /// True when min/max/distinct may overestimate the live data (a
  /// DELETE/UPDATE removed rows since the last ANALYZE). Counts stay
  /// exact regardless.
  bool stale = false;

  /// Width of the numeric range, max - min + 1 — for a dense sequence
  /// column this equals the sequence length n. 0 without a range.
  double RangeWidth() const {
    return has_range ? max_value - min_value + 1 : 0;
  }
};

/// Per-table statistics. Row count is maintained exactly and
/// incrementally by the storage layer on every DML; per-column detail
/// follows the widen-only discipline described on ColumnStats and is
/// made exact again by Analyze() (the SQL `ANALYZE [table]` statement,
/// also invoked by view materialization/refresh so view content tables
/// always carry exact statistics).
struct TableStats {
  /// Live rows. Exact at all times (incremental, verified by
  /// tests/stats/table_stats_test.cc under INSERT/UPDATE/DELETE).
  int64_t row_count = 0;

  /// One entry per schema column, parallel to Schema::column(i).
  std::vector<ColumnStats> columns;

  /// Number of full ANALYZE passes performed over this table.
  int64_t analyze_count = 0;
  /// DML statements applied since the last ANALYZE (0 right after one);
  /// a freshness signal for the cost model and for `\stats` style
  /// introspection.
  int64_t dml_since_analyze = 0;

  /// Ensures `columns` matches the schema width (idempotent).
  void EnsureColumns(const Schema& schema);

  /// Incremental hooks, called by storage/table.cc on each mutation.
  /// InsertRow widens ranges and bumps counts; RemoveRow / ReplaceRow
  /// decrement counts and mark touched columns stale when a boundary
  /// value may have disappeared.
  void InsertRow(const Schema& schema, const Row& row);
  void RemoveRow(const Schema& schema, const Row& row);
  void ReplaceRow(const Schema& schema, const Row& before, const Row& after);

  /// Resets everything to the empty-table state (TRUNCATE).
  void Clear();

  /// Full recomputation from the live rows: exact counts, tight min/max,
  /// exact distinct counts; clears staleness. O(rows · columns).
  void Analyze(const Schema& schema, const std::vector<Row>& rows);

  /// True when any column's fine-grained stats are stale.
  bool AnyStale() const;

  /// One-line-per-column debug rendering (shell `\stats`, tests).
  std::string ToString(const Schema& schema) const;
};

}  // namespace rfv

#endif  // RFVIEW_STATS_TABLE_STATS_H_
