#include "testing/generator.h"

#include <vector>

#include "testing/fuzz_rng.h"

namespace rfv {
namespace fuzzing {

namespace {

/// Mixes the campaign seed and iteration index into one RNG state.
/// SplitMix64's output finalizer decorrelates nearby states, so simple
/// affine mixing is enough.
uint64_t MixSeed(uint64_t seed, int index) {
  return seed ^ (static_cast<uint64_t>(index) * 0x9e3779b97f4a7c15ull +
                 0x2545f4914f6cdd1dull);
}

FuzzFrame RandomFrame(FuzzRng* rng) {
  FuzzFrame frame;
  frame.cumulative = rng->ChancePermille(500);
  if (!frame.cumulative) {
    frame.l = rng->UniformInt(0, 5);
    frame.h = rng->UniformInt(0, 5);
    if (frame.l + frame.h == 0) frame.h = 1;  // l + h > 0 (paper §2)
  }
  return frame;
}

Value RandomValue(FuzzRng* rng, DataType type) {
  const int64_t v = rng->UniformInt(-50, 50);
  // Integer-valued payloads keep every summation order exact, so the
  // reference evaluator, the compensated native SUM, and the rewrite
  // arithmetic cannot drift apart by rounding.
  return type == DataType::kInt64 ? Value::Int(v)
                                  : Value::Double(static_cast<double>(v));
}

FuzzDml RandomDml(FuzzRng* rng, int64_t num_groups) {
  static const std::vector<DmlKind> kKinds = {DmlKind::kUpdate,
                                              DmlKind::kInsert,
                                              DmlKind::kDelete};
  FuzzDml op;
  op.kind = rng->Pick(kKinds);
  op.grp = num_groups > 0 ? rng->UniformInt(0, num_groups - 1) : 0;
  op.position = rng->UniformInt(1, 30);
  op.value = rng->UniformInt(-50, 50);
  return op;
}

/// Messy window workload: NULLs, duplicate and gapped positions, skewed
/// and empty partitions, any window function, SQL DML between rounds.
void FillWindowScenario(Scenario* s, FuzzRng* rng) {
  s->has_grp = rng->ChancePermille(650);
  s->dense_positions = false;
  s->val_type = rng->ChancePermille(600) ? DataType::kInt64
                                         : DataType::kDouble;
  const int64_t num_groups = s->has_grp ? rng->UniformInt(1, 4) : 1;

  const int64_t n = rng->ChancePermille(80) ? 0 : rng->UniformInt(1, 50);
  for (int64_t i = 0; i < n; ++i) {
    FuzzRow row;
    // Skew: partition 0 takes an outsized share; high group ids may end
    // up empty, which is exactly the partition shape worth covering.
    row.grp = rng->ChancePermille(300) ? 0 : rng->UniformInt(0, num_groups - 1);
    row.pos = rng->ChancePermille(40) ? Value::Null()
                                      : Value::Int(rng->UniformInt(1, 30));
    row.val = rng->ChancePermille(120) ? Value::Null()
                                       : RandomValue(rng, s->val_type);
    s->rows.push_back(row);
  }

  static const std::vector<FuzzFn> kAllFns = {
      FuzzFn::kSum,   FuzzFn::kAvg,       FuzzFn::kMin,
      FuzzFn::kMax,   FuzzFn::kCount,     FuzzFn::kCountStar,
      FuzzFn::kRank,  FuzzFn::kRowNumber,
  };
  const int64_t num_queries = rng->UniformInt(1, 3);
  for (int64_t q = 0; q < num_queries; ++q) {
    FuzzQuery query;
    query.fn = rng->Pick(kAllFns);
    query.frame = RandomFrame(rng);
    query.partition_by_grp = s->has_grp && rng->ChancePermille(700);
    query.order_by_val = query.is_ranking() && rng->ChancePermille(500);
    query.order_desc = query.is_ranking() && rng->ChancePermille(500);
    s->queries.push_back(query);
  }

  const int64_t num_batches = rng->UniformInt(0, 2);
  for (int64_t b = 0; b < num_batches; ++b) {
    std::vector<FuzzDml> batch;
    const int64_t ops = rng->UniformInt(1, 4);
    for (int64_t o = 0; o < ops; ++o) batch.push_back(RandomDml(rng, num_groups));
    s->dml_batches.push_back(std::move(batch));
  }
}

/// Dense sequences the generated rows must satisfy: positions 1..n per
/// partition (sequence views reject anything else), all values non-NULL.
void FillDenseRows(Scenario* s, FuzzRng* rng, int64_t num_groups,
                   int64_t max_per_partition) {
  for (int64_t g = 0; g < num_groups; ++g) {
    const int64_t n = rng->UniformInt(1, max_per_partition);
    for (int64_t p = 1; p <= n; ++p) {
      FuzzRow row;
      row.grp = g;
      row.pos = Value::Int(p);
      row.val = RandomValue(rng, s->val_type);
      s->rows.push_back(row);
    }
  }
}

/// Rewrite workload: SUM/MIN/MAX views + strict rewriter-shaped
/// aggregate queries (automatic / MaxOA / MinOA runs diffed against the
/// native operator). No DML: SQL DML does not maintain views, so views
/// would correctly go stale and the diff would be meaningless.
void FillRewriteScenario(Scenario* s, FuzzRng* rng) {
  s->has_grp = rng->ChancePermille(450);
  s->dense_positions = true;
  s->val_type = rng->ChancePermille(500) ? DataType::kInt64
                                         : DataType::kDouble;
  FillDenseRows(s, rng, s->has_grp ? rng->UniformInt(1, 3) : 1, 24);

  static const std::vector<FuzzFn> kViewFns = {FuzzFn::kSum, FuzzFn::kMin,
                                               FuzzFn::kMax};
  const int64_t num_views = rng->UniformInt(1, 2);
  for (int64_t v = 0; v < num_views; ++v) {
    FuzzView view;
    view.name = "v" + std::to_string(v);
    view.fn = rng->Pick(kViewFns);
    view.frame = RandomFrame(rng);
    s->views.push_back(view);
  }

  static const std::vector<FuzzFn> kQueryFns = {
      FuzzFn::kSum, FuzzFn::kAvg,   FuzzFn::kMin,
      FuzzFn::kMax, FuzzFn::kCount, FuzzFn::kCountStar,
  };
  const int64_t num_queries = rng->UniformInt(1, 3);
  for (int64_t q = 0; q < num_queries; ++q) {
    FuzzQuery query;
    query.fn = rng->Pick(kQueryFns);
    query.frame = RandomFrame(rng);
    // Usually match the views' partitioning (rewrite hits); sometimes
    // not, to cover the recognizer's non-partitioned shape too.
    query.partition_by_grp = s->has_grp && !rng->ChancePermille(200);
    s->queries.push_back(query);
  }
}

/// Maintenance workload: non-partitioned (pos, val) sequence —
/// PropagateBaseInsert requires the base table to be exactly the order
/// and value columns — with views kept fresh incrementally and checked
/// against a full recompute after every batch.
void FillMaintenanceScenario(Scenario* s, FuzzRng* rng) {
  s->has_grp = false;
  s->dense_positions = true;
  s->val_type = DataType::kDouble;  // PropagateBase* carries doubles
  FillDenseRows(s, rng, 1, 24);

  static const std::vector<FuzzFn> kViewFns = {FuzzFn::kSum, FuzzFn::kMin,
                                               FuzzFn::kMax};
  const int64_t num_views = rng->UniformInt(1, 3);
  for (int64_t v = 0; v < num_views; ++v) {
    FuzzView view;
    view.name = "v" + std::to_string(v);
    view.fn = rng->Pick(kViewFns);
    view.frame = RandomFrame(rng);
    s->views.push_back(view);
  }

  // A few strict-shape queries so maintained content also feeds the
  // rewrite oracles after each batch.
  static const std::vector<FuzzFn> kQueryFns = {
      FuzzFn::kSum, FuzzFn::kAvg, FuzzFn::kMin, FuzzFn::kMax,
      FuzzFn::kCount,
  };
  const int64_t num_queries = rng->UniformInt(0, 2);
  for (int64_t q = 0; q < num_queries; ++q) {
    FuzzQuery query;
    query.fn = rng->Pick(kQueryFns);
    query.frame = RandomFrame(rng);
    s->queries.push_back(query);
  }

  const int64_t num_batches = rng->UniformInt(1, 3);
  for (int64_t b = 0; b < num_batches; ++b) {
    std::vector<FuzzDml> batch;
    const int64_t ops = rng->UniformInt(1, 3);
    for (int64_t o = 0; o < ops; ++o) batch.push_back(RandomDml(rng, 0));
    s->dml_batches.push_back(std::move(batch));
  }
}

}  // namespace

Scenario GenerateScenario(uint64_t seed, int index) {
  FuzzRng rng(MixSeed(seed, index));
  Scenario s;
  s.seed = seed;
  s.index = index;
  const int64_t dice = rng.UniformInt(0, 999);
  if (dice < 400) {
    s.kind = ScenarioKind::kWindow;
    FillWindowScenario(&s, &rng);
  } else if (dice < 700) {
    s.kind = ScenarioKind::kRewrite;
    FillRewriteScenario(&s, &rng);
  } else {
    s.kind = ScenarioKind::kMaintenance;
    FillMaintenanceScenario(&s, &rng);
  }
  return s;
}

}  // namespace fuzzing
}  // namespace rfv
