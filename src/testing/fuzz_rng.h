#ifndef RFVIEW_TESTING_FUZZ_RNG_H_
#define RFVIEW_TESTING_FUZZ_RNG_H_

#include <cstdint>
#include <vector>

namespace rfv {
namespace fuzzing {

/// Deterministic PRNG for the fuzz harness (SplitMix64). The standard
/// library's distributions are implementation-defined, so everything
/// here is integer arithmetic only: the same seed produces the same
/// byte stream on every platform and standard library — the property
/// the generator-determinism oracle depends on.
class FuzzRng {
 public:
  explicit FuzzRng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi. Modulo bias
  /// is irrelevant for fuzzing ranges (all << 2^64).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// True with probability permille/1000.
  bool ChancePermille(int permille) {
    return static_cast<int>(Next() % 1000) < permille;
  }

  /// Uniformly picks one element. Precondition: non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[static_cast<size_t>(Next() % items.size())];
  }

 private:
  uint64_t state_;
};

}  // namespace fuzzing
}  // namespace rfv

#endif  // RFVIEW_TESTING_FUZZ_RNG_H_
