#ifndef RFVIEW_TESTING_ORACLE_H_
#define RFVIEW_TESTING_ORACLE_H_

#include <map>
#include <string>
#include <vector>

#include "testing/scenario.h"

namespace rfv {
namespace fuzzing {

/// The oracle runner: replays one scenario against a fresh Database and
/// cross-checks every execution strategy the engine offers against the
/// trusted reference evaluator and against each other:
///
///   * reference   — native window operator vs. the naive O(n²)
///                   evaluator (reference_window.h);
///   * parallel    — exec.window_workers = 1 vs. the partition-parallel
///                   path (workers forced onto small inputs);
///   * batch       — the engine default (columnar vectorized execution)
///                   vs. the RowBatch pipeline (exec.
///                   use_vectorized_execution off, use_batch_execution
///                   on);
///   * vector      — the engine default vs. the pure row-at-a-time pull
///                   loop (both knobs off) — the vectorized-vs-row
///                   oracle;
///   * rewrite:*   — MaxOA / MinOA / automatic view rewrites (both
///                   pattern variants) vs. the native operator;
///   * band        — forced rewrites replayed with the merge band join
///                   disabled (exec.enable_merge_band_join off) vs. the
///                   band-join execution of the same plan;
///   * maintenance — incrementally maintained view content vs. a full
///                   recompute (ViewManager::RefreshView) after every
///                   DML batch.
///
/// All row comparisons run under canonical row ordering
/// (result_compare.h), so plans without a final sort cannot produce
/// order-only false positives.

struct OracleOptions {
  /// Worker count of the parallel run (serial run is always 1). The
  /// parallel run also lowers exec.window_parallel_min_rows to 1 so the
  /// parallel path really executes on fuzz-sized inputs.
  int parallel_workers = 4;

  /// Test hook: simulated engine bugs, used to validate that the
  /// harness catches and shrinks real mismatches (tests + the
  /// --inject-off-by-one flag of rfview_fuzz).
  enum class Corruption {
    kNone,
    /// Adds 1 to the window column of the last row of every native
    /// serial window-query result — the classic frame off-by-one.
    kOffByOne,
  };
  Corruption corruption = Corruption::kNone;
};

struct OracleFailure {
  std::string oracle;  ///< "reference", "parallel", "rewrite:…", …
  std::string detail;  ///< offending query SQL / view name / DML op
  std::string diff;    ///< first differing rows, row counts, or error
  int round = 0;       ///< 0 = initial data, k = after DML batch k-1
};

struct ScenarioVerdict {
  std::vector<OracleFailure> failures;
  /// Oracle name → number of comparisons performed. Skipped rewrites
  /// (method not applicable) are counted under "rewrite-skipped".
  std::map<std::string, int> checks;

  bool ok() const { return failures.empty(); }
  int TotalChecks() const;

  /// Byte-stable rendering (no timings) — the determinism tests compare
  /// these strings across runs.
  std::string Summary() const;
};

/// Replays the scenario and runs every applicable oracle.
ScenarioVerdict RunScenario(const Scenario& scenario,
                            const OracleOptions& options = {});

}  // namespace fuzzing
}  // namespace rfv

#endif  // RFVIEW_TESTING_ORACLE_H_
