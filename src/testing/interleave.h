#ifndef RFVIEW_TESTING_INTERLEAVE_H_
#define RFVIEW_TESTING_INTERLEAVE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rfv {
namespace fuzzing {

/// Differential oracle for concurrent-session interleavings.
///
/// The generator emits a deterministic schedule of (session, statement)
/// pairs over a shared table where every session writes only rows
/// tagged with its own session id — writes from different sessions
/// commute, so the serial replay of the schedule is a sound reference
/// for the concurrent run:
///
///   * serial reference — one thread executes the schedule in order;
///   * concurrent run   — one thread per session executes that
///     session's statements in schedule order, racing the others
///     through the full admission/write-mutex/snapshot path.
///
/// Checks, in oracle order:
///   1. no statement errors in the concurrent run (the serial replay is
///      valid SQL by construction, so any concurrent-only failure is an
///      isolation bug — the old mutation_epoch abort is the canonical
///      example);
///   2. per-session own-partition SELECTs return exactly the serial
///      replay's rows (only the owning session writes its partition, and
///      statements are ordered within a session);
///   3. global COUNT(*) observations are bounded: at least the rows the
///      observing session itself has live at that point in its program
///      order, at most every row the scenario ever inserts (NOT the
///      final total — another session's insert-then-delete pair may
///      straddle the observation, so a mid-run count can legitimately
///      exceed the final count; a torn snapshot or lost write still
///      lands outside this bracket);
///   4. final table contents equal the serial replay's (commuting
///      writes ⇒ same fixpoint), compared under canonical row order.

struct InterleaveStep {
  int session = 0;  ///< 0-based session index
  std::string sql;
  /// Check kind this step participates in beyond "no error":
  enum class Check { kNone, kOwnRows, kGlobalCount };
  Check check = Check::kNone;
  /// kGlobalCount only: the observing session's own live rows before
  /// this step — the count a concurrent snapshot may never drop below.
  int64_t min_visible_rows = 0;
  /// kGlobalCount only: every row the scenario ever inserts (setup +
  /// all INSERT steps) — the count a snapshot may never exceed.
  int64_t max_visible_rows = 0;
};

struct InterleaveScenario {
  uint64_t seed = 0;
  int index = 0;
  int num_sessions = 2;
  std::vector<std::string> setup;  ///< DDL + seed data, run before racing
  std::vector<InterleaveStep> steps;

  /// "interleave seed<seed>/iter<index>" — stable log/repro identifier.
  std::string Id() const;

  /// Human-replayable transcript: setup, then the schedule in serial
  /// order with `-- s<N>` session annotations. Byte-stable.
  std::string ToSqlScript() const;
};

/// Deterministic scenario for (seed, index): same pair, same schedule,
/// on every platform.
InterleaveScenario GenerateInterleaveScenario(uint64_t seed, int index);

struct InterleaveVerdict {
  std::vector<std::string> failures;
  int checks = 0;  ///< comparisons performed across both runs

  bool ok() const { return failures.empty(); }
  /// Byte-stable rendering (no timings) for logs and determinism tests.
  std::string Summary() const;
};

/// Replays the scenario serially and concurrently against two fresh
/// Databases and runs all four checks.
InterleaveVerdict RunInterleaveScenario(const InterleaveScenario& scenario);

}  // namespace fuzzing
}  // namespace rfv

#endif  // RFVIEW_TESTING_INTERLEAVE_H_
