#include "testing/result_compare.h"

#include <algorithm>

namespace rfv {
namespace fuzzing {

namespace {

bool RowLess(const Row& a, const Row& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

std::string RenderRow(const Row& row) {
  std::string out;
  for (size_t c = 0; c < row.size(); ++c) {
    out += (c != 0 ? ", " : "") + row[c].ToString();
  }
  return out;
}

std::optional<std::string> DiffRowVectors(const std::vector<Row>& a,
                                          const std::vector<Row>& b,
                                          size_t columns_a,
                                          size_t columns_b) {
  if (columns_a != columns_b) {
    return "column counts differ: " + std::to_string(columns_a) + " vs " +
           std::to_string(columns_b);
  }
  std::string diff;
  if (a.size() != b.size()) {
    diff = "row counts differ: " + std::to_string(a.size()) + " vs " +
           std::to_string(b.size());
  }
  const size_t n = std::min(a.size(), b.size());
  int reported = 0;
  for (size_t i = 0; i < n && reported < 5; ++i) {
    bool equal = a[i].size() == b[i].size();
    for (size_t c = 0; equal && c < a[i].size(); ++c) {
      equal = a[i][c].Compare(b[i][c]) == 0;
    }
    if (!equal) {
      if (!diff.empty()) diff += "\n";
      diff += "row " + std::to_string(i) + ": (" + RenderRow(a[i]) +
              ") vs (" + RenderRow(b[i]) + ")";
      ++reported;
    }
  }
  if (diff.empty()) return std::nullopt;
  return diff;
}

}  // namespace

void CanonicalSort(std::vector<Row>* rows) {
  std::sort(rows->begin(), rows->end(), RowLess);
}

bool SameRows(const ResultSet& a, const ResultSet& b) {
  return !DiffRows(a, b).has_value();
}

std::optional<std::string> DiffRows(const ResultSet& a, const ResultSet& b) {
  return DiffRowVectors(a.rows(), b.rows(), a.schema().NumColumns(),
                        b.schema().NumColumns());
}

std::optional<std::string> DiffRowsCanonical(const ResultSet& a,
                                             const ResultSet& b) {
  std::vector<Row> ra = a.rows();
  std::vector<Row> rb = b.rows();
  CanonicalSort(&ra);
  CanonicalSort(&rb);
  return DiffRowVectors(ra, rb, a.schema().NumColumns(),
                        b.schema().NumColumns());
}

std::optional<std::string> DiffRowVectorsCanonical(std::vector<Row> a,
                                                   std::vector<Row> b) {
  CanonicalSort(&a);
  CanonicalSort(&b);
  // Column counts come from the data itself; with an empty side only
  // the row-count difference is meaningful.
  const size_t cols_a = a.empty() ? 0 : a[0].size();
  const size_t cols_b = b.empty() ? cols_a : b[0].size();
  return DiffRowVectors(a, b, a.empty() ? cols_b : cols_a, cols_b);
}

}  // namespace fuzzing
}  // namespace rfv
