#ifndef RFVIEW_TESTING_SHRINKER_H_
#define RFVIEW_TESTING_SHRINKER_H_

#include <string>

#include "testing/oracle.h"
#include "testing/scenario.h"

namespace rfv {
namespace fuzzing {

/// Greedy delta-debugging of a failing scenario: repeatedly removes
/// pieces (DML batches after the first failing round, queries, views,
/// DML ops, row chunks then single rows, the partition column) and
/// simplifies what remains (values to 0, sliding frames narrowed) while
/// a failure of the SAME oracle still reproduces. Dense scenarios are
/// re-densified after row removal so the sequence-view invariant
/// (positions 1..n) survives shrinking.

struct ShrinkResult {
  Scenario scenario;        ///< the minimized scenario
  ScenarioVerdict verdict;  ///< its (still failing) verdict
  int attempts = 0;         ///< oracle replays spent shrinking
  int accepted = 0;         ///< mutations that kept the failure
};

/// Minimizes `failing`. `options` must be the options the failure was
/// found under (corruption hooks included), or nothing will reproduce
/// and the scenario comes back unshrunk. Bounded work: at most a few
/// hundred oracle replays.
ShrinkResult ShrinkScenario(const Scenario& failing,
                            const OracleOptions& options = {});

/// Replayable repro artifact: the scenario's SQL transcript followed by
/// the verdict as `--` comments. Written to disk by rfview_fuzz when a
/// campaign finds a mismatch.
std::string ReproSql(const Scenario& scenario, const ScenarioVerdict& verdict);

}  // namespace fuzzing
}  // namespace rfv

#endif  // RFVIEW_TESTING_SHRINKER_H_
