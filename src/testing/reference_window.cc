#include "testing/reference_window.h"

#include <algorithm>
#include <cstdint>

namespace rfv {
namespace fuzzing {

namespace {

/// Naive frame aggregation: scans `sorted[from..to]` of the partition.
Value AggregateFrame(const std::vector<Row>& rows,
                     const std::vector<size_t>& sorted, size_t from,
                     size_t to, const RefWindowCall& call) {
  if (call.fn == FuzzFn::kCountStar) {
    return Value::Int(static_cast<int64_t>(to - from + 1));
  }
  int64_t non_null = 0;
  int64_t int_sum = 0;
  double double_sum = 0;
  bool saw_double = false;
  Value extreme = Value::Null();
  for (size_t j = from; j <= to; ++j) {
    const Value& v = rows[sorted[j]][static_cast<size_t>(call.arg_col)];
    if (v.is_null()) continue;
    ++non_null;
    switch (call.fn) {
      case FuzzFn::kSum:
      case FuzzFn::kAvg:
        if (v.type() == DataType::kInt64) {
          int_sum += v.AsInt();
        } else {
          double_sum += v.AsDouble();
          saw_double = true;
        }
        break;
      case FuzzFn::kMin:
        if (extreme.is_null() || v.Compare(extreme) < 0) extreme = v;
        break;
      case FuzzFn::kMax:
        if (extreme.is_null() || v.Compare(extreme) > 0) extreme = v;
        break;
      default:
        break;
    }
  }
  switch (call.fn) {
    case FuzzFn::kCount:
      return Value::Int(non_null);
    case FuzzFn::kSum:
      if (non_null == 0) return Value::Null();
      return saw_double
                 ? Value::Double(double_sum + static_cast<double>(int_sum))
                 : Value::Int(int_sum);
    case FuzzFn::kAvg:
      if (non_null == 0) return Value::Null();
      return Value::Double(
          (double_sum + static_cast<double>(int_sum)) /
          static_cast<double>(non_null));
    case FuzzFn::kMin:
    case FuzzFn::kMax:
      return extreme;
    default:
      return Value::Null();
  }
}

}  // namespace

std::vector<Value> ReferenceWindow(const std::vector<Row>& rows,
                                   const RefWindowCall& call) {
  const size_t n = rows.size();
  std::vector<Value> out(n, Value::Null());
  if (n == 0) return out;

  const auto part_key = [&](size_t r) -> const Value& {
    return rows[r][static_cast<size_t>(call.partition_col)];
  };
  const auto order_key = [&](size_t r) -> const Value& {
    return rows[r][static_cast<size_t>(call.order_col)];
  };

  // Stable sort on (partition key ascending, order key per direction) —
  // the tie order every ROWS-frame implementation must agree on.
  std::vector<size_t> sorted(n);
  for (size_t i = 0; i < n; ++i) sorted[i] = i;
  std::stable_sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
    if (call.partition_col >= 0) {
      const int c = part_key(a).Compare(part_key(b));
      if (c != 0) return c < 0;
    }
    const int c = order_key(a).Compare(order_key(b));
    if (c != 0) return call.order_desc ? c > 0 : c < 0;
    return false;
  });

  const auto same_partition = [&](size_t a, size_t b) {
    if (call.partition_col < 0) return true;
    return part_key(a).Compare(part_key(b)) == 0;
  };

  size_t part_start = 0;
  while (part_start < n) {
    size_t part_end = part_start + 1;
    while (part_end < n &&
           same_partition(sorted[part_start], sorted[part_end])) {
      ++part_end;
    }

    for (size_t i = part_start; i < part_end; ++i) {
      const size_t row_index = sorted[i];
      if (call.fn == FuzzFn::kRowNumber) {
        out[row_index] = Value::Int(static_cast<int64_t>(i - part_start) + 1);
        continue;
      }
      if (call.fn == FuzzFn::kRank) {
        // RANK independent of the sort: 1 + rows in the partition whose
        // order key strictly precedes this row's.
        int64_t before = 0;
        for (size_t j = part_start; j < part_end; ++j) {
          const int c = order_key(sorted[j]).Compare(order_key(row_index));
          if (call.order_desc ? c > 0 : c < 0) ++before;
        }
        out[row_index] = Value::Int(before + 1);
        continue;
      }
      // Aggregate: positional ROWS frame within the partition.
      size_t from = part_start;
      size_t to = i;
      if (!call.frame.cumulative) {
        const int64_t lo = static_cast<int64_t>(i) - call.frame.l;
        const int64_t hi = static_cast<int64_t>(i) + call.frame.h;
        from = lo < static_cast<int64_t>(part_start)
                   ? part_start
                   : static_cast<size_t>(lo);
        to = hi >= static_cast<int64_t>(part_end)
                 ? part_end - 1
                 : static_cast<size_t>(hi);
      }
      if (to < from) {
        // Unreachable for l, h >= 0 (the frame always contains the
        // current row); kept for robustness against future frame shapes.
        out[row_index] = call.fn == FuzzFn::kCount ||
                                 call.fn == FuzzFn::kCountStar
                             ? Value::Int(0)
                             : Value::Null();
        continue;
      }
      out[row_index] = AggregateFrame(rows, sorted, from, to, call);
    }
    part_start = part_end;
  }
  return out;
}

}  // namespace fuzzing
}  // namespace rfv
