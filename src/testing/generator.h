#ifndef RFVIEW_TESTING_GENERATOR_H_
#define RFVIEW_TESTING_GENERATOR_H_

#include <cstdint>

#include "testing/scenario.h"

namespace rfv {
namespace fuzzing {

/// Generates the `index`-th scenario of the campaign started with
/// `seed`. Fully deterministic: (seed, index) alone decides every byte
/// of the scenario — no global state, clocks, or platform-dependent
/// library distributions are involved, so two runs of the same campaign
/// produce identical scenarios (and, engine being deterministic too,
/// identical verdicts) on any platform.
///
/// Scenario mix (approximate):
///   * ~40% kWindow      — messy data (NULLs, duplicate and gapped
///     positions, skewed and empty partitions), any window function,
///     SQL DML batches between oracle rounds;
///   * ~30% kRewrite     — dense sequences + SUM/MIN/MAX views, strict
///     rewriter-shaped aggregate queries, no DML (SQL DML does not
///     maintain views — the rewrite would correctly see stale content);
///   * ~30% kMaintenance — non-partitioned (pos, val) sequences with
///     views, DML replayed through the PropagateBase* API.
Scenario GenerateScenario(uint64_t seed, int index);

}  // namespace fuzzing
}  // namespace rfv

#endif  // RFVIEW_TESTING_GENERATOR_H_
