#include "testing/oracle.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/metrics_registry.h"
#include "db/database.h"
#include "testing/reference_window.h"
#include "testing/result_compare.h"
#include "view/maintenance.h"

namespace rfv {
namespace fuzzing {

namespace {

Counter* ChecksCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "rfv_fuzz_checks_total", {},
      "Differential-oracle comparisons performed by the fuzz harness");
  return c;
}

Counter* MismatchesCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "rfv_fuzz_mismatches_total", {},
      "Differential-oracle comparisons that found a mismatch");
  return c;
}

void RecordCheck(ScenarioVerdict* verdict, const std::string& oracle) {
  ++verdict->checks[oracle];
  ChecksCounter()->Increment();
}

void RecordFailure(ScenarioVerdict* verdict, std::string oracle,
                   std::string detail, std::string diff, int round) {
  MismatchesCounter()->Increment();
  verdict->failures.push_back(OracleFailure{
      std::move(oracle), std::move(detail), std::move(diff), round});
}

/// Test hook: the classic frame off-by-one, simulated by perturbing the
/// window column (last column) of the result's last row.
ResultSet CorruptLastValue(const ResultSet& rs) {
  std::vector<Row> rows = rs.rows();
  if (!rows.empty() && !rows.back().empty()) {
    Value& cell = rows.back()[rows.back().size() - 1];
    if (cell.type() == DataType::kInt64) {
      cell = Value::Int(cell.AsInt() + 1);
    } else if (cell.type() == DataType::kDouble) {
      cell = Value::Double(cell.AsDouble() + 1.0);
    } else if (cell.is_null()) {
      cell = Value::Int(1);
    }
  }
  return ResultSet(rs.schema(), std::move(rows));
}

/// Computes the expected result of `query` with the reference evaluator
/// over the base table's current rows (read straight from the catalog;
/// storage order is the scan order the engine sees).
Result<ResultSet> BuildExpected(Database* db, const Scenario& s,
                                const FuzzQuery& query,
                                const Schema& schema) {
  Table* table = nullptr;
  {
    Result<Table*> t = db->catalog()->GetTable(s.table);
    if (!t.ok()) return t.status();
    table = *t;
  }
  const std::vector<Row>& base = table->rows();
  const int grp_col = s.has_grp ? 0 : -1;
  const int pos_col = s.has_grp ? 1 : 0;
  const int val_col = pos_col + 1;

  RefWindowCall call;
  call.fn = query.fn;
  call.frame = query.frame;
  call.partition_col = query.partition_by_grp && s.has_grp ? grp_col : -1;
  call.order_col = query.is_ranking() && query.order_by_val ? val_col
                                                            : pos_col;
  call.order_desc = query.is_ranking() && query.order_desc;
  call.arg_col = query.fn == FuzzFn::kCountStar || query.is_ranking()
                     ? -1
                     : val_col;
  const std::vector<Value> win = ReferenceWindow(base, call);

  const bool strict_shape = s.kind != ScenarioKind::kWindow;
  std::vector<Row> expected;
  expected.reserve(base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    Row row;
    if (s.has_grp && (strict_shape ? query.partition_by_grp : true)) {
      row.Append(base[i][0]);
    }
    row.Append(base[i][static_cast<size_t>(pos_col)]);
    if (!strict_shape) row.Append(base[i][static_cast<size_t>(val_col)]);
    row.Append(win[i]);
    expected.push_back(std::move(row));
  }
  return ResultSet(schema, std::move(expected));
}

class OracleRunner {
 public:
  OracleRunner(const Scenario& s, const OracleOptions& opts)
      : s_(s), opts_(opts) {}

  ScenarioVerdict Run() {
    static Counter* scenarios = MetricsRegistry::Global().GetCounter(
        "rfv_fuzz_scenarios_total", {},
        "Fuzz scenarios replayed through the oracle runner");
    scenarios->Increment();
    // Register the other families up front so a clean campaign still
    // exports them (at zero) instead of omitting the series.
    ChecksCounter();
    MismatchesCounter();

    db_.options().enable_view_rewrite = false;
    if (!Setup()) return std::move(verdict_);
    for (int round = 0;
         round <= static_cast<int>(s_.dml_batches.size()); ++round) {
      if (round > 0) {
        ApplyBatch(s_.dml_batches[static_cast<size_t>(round - 1)], round);
        if (s_.kind == ScenarioKind::kMaintenance) {
          CheckViewContents(round);
        }
      }
      for (const FuzzQuery& query : s_.queries) CheckQuery(query, round);
      if (!verdict_.failures.empty()) break;  // report the first round
    }
    return std::move(verdict_);
  }

 private:
  bool Setup() {
    if (!MustExecute(s_.CreateTableSql(), "setup", 0)) return false;
    const std::string insert = s_.InsertSql();
    if (!insert.empty() && !MustExecute(insert, "setup", 0)) return false;
    for (const FuzzView& view : s_.views) {
      if (!MustExecute(s_.CreateViewSql(view), "setup", 0)) return false;
    }
    return true;
  }

  bool MustExecute(const std::string& sql, const std::string& oracle,
                   int round) {
    Result<ResultSet> r = db_.Execute(sql);
    if (!r.ok()) {
      RecordFailure(&verdict_, oracle, sql, r.status().ToString(), round);
      return false;
    }
    return true;
  }

  void ApplyBatch(const std::vector<FuzzDml>& batch, int round) {
    for (const FuzzDml& op : batch) {
      if (s_.kind == ScenarioKind::kMaintenance) {
        ApplyMaintenanceOp(op, round);
      } else {
        MustExecute(s_.DmlSql(op), "dml", round);
      }
    }
  }

  /// Replays one op through the PropagateBase* API. Positions are
  /// clamped to the table's current extent so shrunk scenarios (with
  /// rows removed) stay replayable without changing the generated ops'
  /// meaning — generated positions are always in range already.
  void ApplyMaintenanceOp(const FuzzDml& op, int round) {
    Result<Table*> t = db_.catalog()->GetTable(s_.table);
    if (!t.ok()) {
      RecordFailure(&verdict_, "maintenance", "lookup " + s_.table,
                    t.status().ToString(), round);
      return;
    }
    const int64_t n = static_cast<int64_t>((*t)->NumRows());
    const auto clamp = [](int64_t v, int64_t lo, int64_t hi) {
      return std::max(lo, std::min(v, hi));
    };
    Status status = Status::OK();
    std::string what;
    switch (op.kind) {
      case DmlKind::kUpdate: {
        if (n == 0) return;
        const int64_t pos = clamp(op.position, 1, n);
        what = "PropagateBaseUpdate(pos=" + std::to_string(pos) +
               ", val=" + std::to_string(op.value) + ")";
        status = PropagateBaseUpdate(db_.view_manager(), s_.table, pos,
                                     static_cast<double>(op.value))
                     .status();
        break;
      }
      case DmlKind::kInsert: {
        const int64_t pos = clamp(op.position, 1, n + 1);
        what = "PropagateBaseInsert(pos=" + std::to_string(pos) +
               ", val=" + std::to_string(op.value) + ")";
        status = PropagateBaseInsert(db_.view_manager(), s_.table, pos,
                                     static_cast<double>(op.value))
                     .status();
        break;
      }
      case DmlKind::kDelete: {
        if (n <= 1) return;  // keep at least one raw position
        const int64_t pos = clamp(op.position, 1, n);
        what = "PropagateBaseDelete(pos=" + std::to_string(pos) + ")";
        status =
            PropagateBaseDelete(db_.view_manager(), s_.table, pos).status();
        break;
      }
    }
    if (!status.ok()) {
      RecordFailure(&verdict_, "maintenance", what, status.ToString(),
                    round);
    }
  }

  /// Incremental maintenance vs. full recompute: snapshot each view's
  /// content, refresh it from base data, and compare. On success the
  /// refreshed content equals the incremental content, so later rounds
  /// keep compounding incremental state.
  void CheckViewContents(int round) {
    for (const FuzzView& view : s_.views) {
      Result<Table*> content = db_.catalog()->GetTable(view.name);
      if (!content.ok()) {
        RecordFailure(&verdict_, "maintenance", view.name,
                      content.status().ToString(), round);
        continue;
      }
      std::vector<Row> incremental = (*content)->rows();
      const Status refreshed = db_.view_manager()->RefreshView(view.name);
      if (!refreshed.ok()) {
        RecordFailure(&verdict_, "maintenance", view.name,
                      refreshed.ToString(), round);
        continue;
      }
      RecordCheck(&verdict_, "maintenance");
      std::optional<std::string> diff = DiffRowVectorsCanonical(
          std::move(incremental), (*content)->rows());
      if (diff.has_value()) {
        RecordFailure(&verdict_, "maintenance",
                      view.name + " (incremental vs. full recompute)",
                      *diff, round);
      }
    }
  }

  void CheckQuery(const FuzzQuery& query, int round) {
    const std::string sql = s_.QuerySql(query);
    db_.options().enable_view_rewrite = false;
    db_.options().force_method = std::nullopt;
    db_.options().exec.window_workers = 1;

    Result<ResultSet> serial_result = db_.Execute(sql);
    if (!serial_result.ok()) {
      RecordFailure(&verdict_, "error", sql,
                    serial_result.status().ToString(), round);
      return;
    }
    ResultSet serial = std::move(*serial_result);
    if (opts_.corruption == OracleOptions::Corruption::kOffByOne) {
      serial = CorruptLastValue(serial);
    }

    // Oracle 1: native vs. the trusted reference evaluator.
    {
      Result<ResultSet> expected =
          BuildExpected(&db_, s_, query, serial.schema());
      if (!expected.ok()) {
        RecordFailure(&verdict_, "reference", sql,
                      expected.status().ToString(), round);
      } else {
        RecordCheck(&verdict_, "reference");
        std::optional<std::string> diff =
            DiffRowsCanonical(serial, *expected);
        if (diff.has_value()) {
          RecordFailure(&verdict_, "reference", sql, *diff, round);
        }
      }
    }

    // Oracle 2: serial vs. partition-parallel window execution.
    {
      db_.options().exec.window_workers = opts_.parallel_workers;
      const int64_t saved_min_rows =
          db_.options().exec.window_parallel_min_rows;
      db_.options().exec.window_parallel_min_rows = 1;
      Result<ResultSet> parallel = db_.Execute(sql);
      db_.options().exec.window_workers = 1;
      db_.options().exec.window_parallel_min_rows = saved_min_rows;
      if (!parallel.ok()) {
        RecordFailure(&verdict_, "parallel", sql,
                      parallel.status().ToString(), round);
      } else {
        RecordCheck(&verdict_, "parallel");
        std::optional<std::string> diff =
            DiffRowsCanonical(serial, *parallel);
        if (diff.has_value()) {
          RecordFailure(&verdict_, "parallel", sql, *diff, round);
        }
      }
    }

    // Oracle 3: execution-mode cross-check. The serial run above used
    // the engine default (columnar vectorized execution), so replay the
    // same query under the two fallback modes and demand identical
    // rows:
    //   * "batch"  — vectorized off, RowBatch pipeline on;
    //   * "vector" — vectorized off, batches off: the pure row-at-a-
    //     time pull loop (the vectorized-vs-row oracle; named for the
    //     path it vouches for).
    {
      struct ExecModeConfig {
        const char* label;
        bool use_vectorized;
        bool use_batch;
      };
      const ExecModeConfig modes[] = {
          {"batch", false, true},
          {"vector", false, false},
      };
      const bool saved_vectorized =
          db_.options().exec.use_vectorized_execution;
      const bool saved_batch = db_.options().exec.use_batch_execution;
      for (const ExecModeConfig& mode : modes) {
        db_.options().exec.use_vectorized_execution = mode.use_vectorized;
        db_.options().exec.use_batch_execution = mode.use_batch;
        Result<ResultSet> replay = db_.Execute(sql);
        db_.options().exec.use_vectorized_execution = saved_vectorized;
        db_.options().exec.use_batch_execution = saved_batch;
        if (!replay.ok()) {
          RecordFailure(&verdict_, mode.label, sql,
                        replay.status().ToString(), round);
        } else {
          RecordCheck(&verdict_, mode.label);
          std::optional<std::string> diff =
              DiffRowsCanonical(serial, *replay);
          if (diff.has_value()) {
            RecordFailure(&verdict_, mode.label, sql, *diff, round);
          }
        }
      }
    }

    // Oracle 4: view rewrites vs. the native result — the cost-based
    // automatic choice, the paper's static preference order, and both
    // forced methods, each under both pattern variants. Running the
    // cost-based and static choosers through the same comparison
    // asserts that the cost model's (possibly different, possibly
    // declined) pick never changes query results.
    if (!s_.views.empty()) {
      struct RewriteConfig {
        const char* label;
        std::optional<DerivationMethod> force;
        bool use_cost_model;
      };
      const RewriteConfig configs[] = {
          {"cost", std::nullopt, true},
          {"static", std::nullopt, false},
          {"forced", DerivationMethod::kMaxoa, true},
          {"forced", DerivationMethod::kMinoa, true},
      };
      for (const RewriteConfig& config : configs) {
        for (const RewriteVariant variant :
             {RewriteVariant::kDisjunctive, RewriteVariant::kUnion}) {
          db_.options().enable_view_rewrite = true;
          db_.options().force_method = config.force;
          db_.options().use_cost_model = config.use_cost_model;
          db_.options().rewrite_variant = variant;
          Result<ResultSet> derived = db_.Execute(sql);

          // Oracle 5: merge band join on vs. off. Rewritten patterns are
          // exactly the band-shaped self joins MergeBandJoinOp claims
          // (BETWEEN hulls, MOD strides, disjunctions of both), so the
          // forced-method configs are replayed with the band join
          // disabled — falling back to index-/nested-loop joins — and
          // must produce identical rows.
          std::optional<Result<ResultSet>> no_band;
          if (config.force.has_value() &&
              variant == RewriteVariant::kDisjunctive) {
            const bool saved_band =
                db_.options().exec.enable_merge_band_join;
            db_.options().exec.enable_merge_band_join = false;
            no_band = db_.Execute(sql);
            db_.options().exec.enable_merge_band_join = saved_band;
          }

          // Oracle 6: forced hash join. Partitioned rewrites join the
          // view to the base table on grp/pos equi-keys
          // (PartitionedDirectSql), so with both the band and the index
          // nested-loop joins disabled the planner must route the same
          // pattern through HashJoinOp's vectorized build/probe — and
          // produce identical rows. Not gated on the forced configs:
          // partitioned pairs only derive under the automatic choosers.
          std::optional<Result<ResultSet>> hash_only;
          if (variant == RewriteVariant::kDisjunctive && s_.has_grp &&
              query.partition_by_grp) {
            const bool saved_band =
                db_.options().exec.enable_merge_band_join;
            const bool saved_inl =
                db_.options().exec.enable_index_nested_loop_join;
            db_.options().exec.enable_merge_band_join = false;
            db_.options().exec.enable_index_nested_loop_join = false;
            hash_only = db_.Execute(sql);
            db_.options().exec.enable_merge_band_join = saved_band;
            db_.options().exec.enable_index_nested_loop_join = saved_inl;
          }

          db_.options().enable_view_rewrite = false;
          db_.options().force_method = std::nullopt;
          db_.options().use_cost_model = true;
          if (!derived.ok()) {
            RecordFailure(&verdict_, "rewrite-error", sql,
                          derived.status().ToString(), round);
            continue;
          }
          if (derived->rewrite_method().empty()) {
            // Includes cost-model no-rewrite verdicts: those fall back
            // to the native path, which Oracle 1 already covers.
            ++verdict_.checks["rewrite-skipped"];
            continue;
          }
          std::string oracle = std::string("rewrite:") + config.label + ":" +
                               derived->rewrite_method();
          if (variant == RewriteVariant::kUnion) oracle += "+union";
          RecordCheck(&verdict_, oracle);
          std::optional<std::string> diff =
              DiffRowsCanonical(serial, *derived);
          if (diff.has_value()) {
            RecordFailure(&verdict_, oracle,
                          sql + "\n  rewritten: " + derived->rewritten_sql(),
                          *diff, round);
          }
          if (no_band.has_value()) {
            if (!no_band->ok()) {
              RecordFailure(&verdict_, "band", sql,
                            no_band->status().ToString(), round);
            } else {
              RecordCheck(&verdict_, "band");
              std::optional<std::string> band_diff =
                  DiffRowsCanonical(*derived, **no_band);
              if (band_diff.has_value()) {
                RecordFailure(&verdict_, "band",
                              sql + "\n  rewritten: " +
                                  derived->rewritten_sql(),
                              *band_diff, round);
              }
            }
          }
          if (hash_only.has_value()) {
            if (!hash_only->ok()) {
              RecordFailure(&verdict_, "hashjoin", sql,
                            hash_only->status().ToString(), round);
            } else {
              RecordCheck(&verdict_, "hashjoin");
              std::optional<std::string> hash_diff =
                  DiffRowsCanonical(*derived, **hash_only);
              if (hash_diff.has_value()) {
                RecordFailure(&verdict_, "hashjoin",
                              sql + "\n  rewritten: " +
                                  derived->rewritten_sql(),
                              *hash_diff, round);
              }
            }
          }
        }
      }
    }
  }

  const Scenario& s_;
  const OracleOptions& opts_;
  Database db_;
  ScenarioVerdict verdict_;
};

}  // namespace

int ScenarioVerdict::TotalChecks() const {
  int total = 0;
  for (const auto& [oracle, count] : checks) {
    if (oracle != "rewrite-skipped") total += count;
  }
  return total;
}

std::string ScenarioVerdict::Summary() const {
  std::string out = "checks:";
  for (const auto& [oracle, count] : checks) {
    out += " " + oracle + "=" + std::to_string(count);
  }
  out += "\nverdict: ";
  out += ok() ? "OK" : "FAIL";
  for (const OracleFailure& f : failures) {
    out += "\n[" + f.oracle + "] round=" + std::to_string(f.round) + " " +
           f.detail + "\n  " + f.diff;
  }
  return out;
}

ScenarioVerdict RunScenario(const Scenario& scenario,
                            const OracleOptions& options) {
  return OracleRunner(scenario, options).Run();
}

}  // namespace fuzzing
}  // namespace rfv
