#ifndef RFVIEW_TESTING_SCENARIO_H_
#define RFVIEW_TESTING_SCENARIO_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace rfv {
namespace fuzzing {

/// The structured description of one generated fuzz scenario: schema,
/// data, views, queries and DML batches. Scenarios are plain data —
/// the oracle runner (oracle.h) replays them against the engine and the
/// shrinker (shrinker.h) mutates copies while a failure reproduces.
/// ToSqlScript() renders a human-replayable .sql transcript.

/// Window functions covered by the harness (the paper's reporting
/// functions plus the ranking functions of the intro's TOP(n) analyses).
enum class FuzzFn {
  kSum,
  kAvg,
  kMin,
  kMax,
  kCount,      ///< COUNT(val): counts non-NULL arguments
  kCountStar,  ///< COUNT(*)
  kRank,
  kRowNumber,
};

/// SQL spelling of the function name ("SUM", "ROW_NUMBER", ...).
const char* FuzzFnSql(FuzzFn fn);

/// ROWS frame of an aggregate window call: cumulative (UNBOUNDED
/// PRECEDING .. CURRENT ROW) or sliding (l PRECEDING .. h FOLLOWING)
/// with l, h >= 0 and l + h > 0 — the paper's two window shapes.
struct FuzzFrame {
  bool cumulative = true;
  int64_t l = 0;
  int64_t h = 0;

  std::string ToSql() const;
};

/// One window query over the scenario table. Aggregates order by the
/// position column; ranking calls may instead order by the value column
/// (tie and NULL-key coverage).
struct FuzzQuery {
  FuzzFn fn = FuzzFn::kSum;
  FuzzFrame frame;
  bool partition_by_grp = false;  ///< PARTITION BY grp (tables with grp)
  bool order_by_val = false;      ///< ranking only: ORDER BY val
  bool order_desc = false;        ///< ranking only: descending order key

  bool is_ranking() const {
    return fn == FuzzFn::kRank || fn == FuzzFn::kRowNumber;
  }
};

/// A materialized sequence view over the scenario table (SUM/MIN/MAX;
/// AVG views are not materializable — paper §2.1 derives AVG from SUM).
struct FuzzView {
  std::string name;
  FuzzFn fn = FuzzFn::kSum;
  FuzzFrame frame;
};

/// One DML operation. In maintenance scenarios these replay through the
/// PropagateBase* API (positional semantics, views kept fresh); in
/// window scenarios they replay as plain SQL DML.
enum class DmlKind { kUpdate, kInsert, kDelete };

struct FuzzDml {
  DmlKind kind = DmlKind::kUpdate;
  int64_t grp = 0;       ///< partition id (SQL mode on tables with grp)
  int64_t position = 1;  ///< order-column position the op targets
  int64_t value = 0;     ///< update/insert value
};

/// What the oracle runner checks for this scenario.
enum class ScenarioKind {
  kWindow,       ///< native vs. reference (+ serial vs. parallel); SQL DML
  kRewrite,      ///< + MaxOA/MinOA/auto rewrites vs. native
  kMaintenance,  ///< + incremental maintenance vs. full recompute
};

const char* ScenarioKindName(ScenarioKind kind);

/// One generated row of the base table.
struct FuzzRow {
  int64_t grp = 0;          ///< ignored unless has_grp
  Value pos = Value::Null();
  Value val = Value::Null();
};

struct Scenario {
  uint64_t seed = 0;  ///< campaign seed
  int index = 0;      ///< iteration index within the campaign
  ScenarioKind kind = ScenarioKind::kWindow;

  std::string table = "t";
  bool has_grp = false;       ///< partition column `grp INTEGER` present
  bool dense_positions = false;  ///< pos is dense 1..n (per partition)
  DataType val_type = DataType::kDouble;

  std::vector<FuzzRow> rows;
  std::vector<FuzzView> views;    ///< kRewrite / kMaintenance only
  std::vector<FuzzQuery> queries;
  /// Queries re-run after each batch; batches empty for kRewrite.
  std::vector<std::vector<FuzzDml>> dml_batches;

  /// "seed<seed>/iter<index>" — stable identifier for logs and repros.
  std::string Id() const;

  std::string CreateTableSql() const;
  /// Multi-row INSERT of `rows` ("" when empty).
  std::string InsertSql() const;
  std::string CreateViewSql(const FuzzView& view) const;
  std::string QuerySql(const FuzzQuery& query) const;
  /// SQL replay of one DML op (maintenance ops render as an annotated
  /// equivalent; see docs/FUZZING.md).
  std::string DmlSql(const FuzzDml& op) const;

  /// Full, ordered, human-replayable transcript of the scenario:
  /// DDL + data + views + queries + DML batches, with `--` comments
  /// naming the oracle checks. Byte-stable for a given scenario.
  std::string ToSqlScript() const;
};

}  // namespace fuzzing
}  // namespace rfv

#endif  // RFVIEW_TESTING_SCENARIO_H_
