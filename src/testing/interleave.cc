#include "testing/interleave.h"

#include <memory>
#include <thread>
#include <utility>

#include "common/metrics_registry.h"
#include "db/database.h"
#include "db/session.h"
#include "testing/fuzz_rng.h"
#include "testing/result_compare.h"

namespace rfv {
namespace fuzzing {

namespace {

struct InterleaveMetrics {
  Counter* scenarios;
  Counter* checks;
  Counter* mismatches;
};

InterleaveMetrics& Metrics() {
  static InterleaveMetrics metrics = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    InterleaveMetrics m;
    m.scenarios =
        registry.GetCounter("rfv_fuzz_interleave_scenarios_total", {},
                            "Concurrent-session interleave scenarios run");
    m.checks = registry.GetCounter("rfv_fuzz_interleave_checks_total", {},
                                   "Interleave oracle comparisons performed");
    m.mismatches =
        registry.GetCounter("rfv_fuzz_interleave_mismatches_total", {},
                            "Interleave oracle mismatches detected");
    return m;
  }();
  return metrics;
}

/// One session's DML state during generation: positions are per-session
/// monotone, so every (session, pos) pair identifies at most one row.
struct SessionGenState {
  int64_t next_pos = 1;
  std::vector<int64_t> live_positions;
  int steps_left = 0;
};

}  // namespace

std::string InterleaveScenario::Id() const {
  return "interleave seed" + std::to_string(seed) + "/iter" +
         std::to_string(index);
}

std::string InterleaveScenario::ToSqlScript() const {
  std::string out = "-- " + Id() + ": " + std::to_string(num_sessions) +
                    " sessions, " + std::to_string(steps.size()) +
                    " scheduled statements\n";
  for (const std::string& sql : setup) out += sql + ";\n";
  for (const InterleaveStep& step : steps) {
    out += "-- s" + std::to_string(step.session) + "\n" + step.sql + ";\n";
  }
  return out;
}

InterleaveScenario GenerateInterleaveScenario(uint64_t seed, int index) {
  // Offset the stream from GenerateScenario's so the two generators
  // stay decorrelated when driven with the same campaign seed.
  FuzzRng rng(seed * 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(index) +
              0x5157ull);

  InterleaveScenario scenario;
  scenario.seed = seed;
  scenario.index = index;
  scenario.num_sessions = static_cast<int>(rng.UniformInt(2, 4));
  scenario.setup.push_back(
      "CREATE TABLE t (session INTEGER, pos INTEGER, val INTEGER)");

  std::vector<SessionGenState> sessions(
      static_cast<size_t>(scenario.num_sessions));
  int64_t total_inserted = 0;  // every row the scenario ever inserts
  // Optional shared seed data: session-tagged rows in one setup insert.
  if (rng.ChancePermille(700)) {
    std::string insert = "INSERT INTO t VALUES ";
    bool first = true;
    for (int s = 0; s < scenario.num_sessions; ++s) {
      const int64_t rows = rng.UniformInt(1, 3);
      for (int64_t r = 0; r < rows; ++r) {
        if (!first) insert += ", ";
        first = false;
        SessionGenState& state = sessions[static_cast<size_t>(s)];
        insert += "(" + std::to_string(s) + ", " +
                  std::to_string(state.next_pos) + ", " +
                  std::to_string(rng.UniformInt(-50, 50)) + ")";
        state.live_positions.push_back(state.next_pos++);
        ++total_inserted;
      }
    }
    scenario.setup.push_back(std::move(insert));
  }

  int remaining = 0;
  for (SessionGenState& state : sessions) {
    state.steps_left = static_cast<int>(rng.UniformInt(4, 10));
    remaining += state.steps_left;
  }

  // The schedule: repeatedly pick a session with steps left — this
  // order IS the serial reference order.
  while (remaining > 0) {
    int s;
    do {
      s = static_cast<int>(rng.UniformInt(0, scenario.num_sessions - 1));
    } while (sessions[static_cast<size_t>(s)].steps_left == 0);
    SessionGenState& state = sessions[static_cast<size_t>(s)];
    --state.steps_left;
    --remaining;

    InterleaveStep step;
    step.session = s;
    const int64_t kind = rng.UniformInt(0, 9);
    if (kind < 4) {  // 40%: multi-row insert of own-tagged rows
      const int64_t rows = rng.UniformInt(1, 3);
      std::string insert = "INSERT INTO t VALUES ";
      for (int64_t r = 0; r < rows; ++r) {
        if (r > 0) insert += ", ";
        insert += "(" + std::to_string(s) + ", " +
                  std::to_string(state.next_pos) + ", " +
                  std::to_string(rng.UniformInt(-50, 50)) + ")";
        state.live_positions.push_back(state.next_pos++);
        ++total_inserted;
      }
      step.sql = std::move(insert);
    } else if (kind < 6 && !state.live_positions.empty()) {  // update own row
      const int64_t pos = rng.Pick(state.live_positions);
      step.sql = "UPDATE t SET val = " +
                 std::to_string(rng.UniformInt(-50, 50)) +
                 " WHERE session = " + std::to_string(s) +
                 " AND pos = " + std::to_string(pos);
    } else if (kind == 6 && state.live_positions.size() > 1) {  // delete own
      const size_t at = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(state.live_positions.size()) - 1));
      step.sql = "DELETE FROM t WHERE session = " + std::to_string(s) +
                 " AND pos = " + std::to_string(state.live_positions[at]);
      state.live_positions.erase(state.live_positions.begin() +
                                 static_cast<long>(at));
    } else if (kind < 9) {  // own-partition select: serial == concurrent
      step.sql = "SELECT pos, val FROM t WHERE session = " + std::to_string(s);
      step.check = InterleaveStep::Check::kOwnRows;
    } else {  // global count: bounded, not exact
      step.sql = "SELECT COUNT(*) FROM t";
      step.check = InterleaveStep::Check::kGlobalCount;
      step.min_visible_rows =
          static_cast<int64_t>(state.live_positions.size());
    }
    scenario.steps.push_back(std::move(step));
  }
  // The upper count bound must be scenario-wide: in the concurrent run
  // another session's insert scheduled *after* a COUNT(*) step can
  // execute before it, and an insert-then-delete pair can straddle the
  // observation — so only "every row ever inserted" is sound.
  for (InterleaveStep& step : scenario.steps) {
    if (step.check == InterleaveStep::Check::kGlobalCount) {
      step.max_visible_rows = total_inserted;
    }
  }
  return scenario;
}

std::string InterleaveVerdict::Summary() const {
  std::string out = "interleave: " + std::to_string(checks) + " checks, " +
                    std::to_string(failures.size()) + " failures";
  for (const std::string& f : failures) out += "\n  " + f;
  return out;
}

namespace {

struct StepResult {
  Status status = Status::OK();
  std::vector<Row> rows;
};

std::vector<StepResult> RunSerial(const InterleaveScenario& scenario,
                                  Database* db) {
  std::vector<std::unique_ptr<Session>> sessions;
  sessions.reserve(static_cast<size_t>(scenario.num_sessions));
  for (int s = 0; s < scenario.num_sessions; ++s) {
    sessions.push_back(std::make_unique<Session>(db));
  }
  std::vector<StepResult> results(scenario.steps.size());
  for (size_t i = 0; i < scenario.steps.size(); ++i) {
    const InterleaveStep& step = scenario.steps[i];
    Result<ResultSet> rs =
        sessions[static_cast<size_t>(step.session)]->Execute(step.sql);
    if (rs.ok()) {
      results[i].rows = rs->rows();
    } else {
      results[i].status = rs.status();
    }
  }
  return results;
}

std::vector<StepResult> RunConcurrent(const InterleaveScenario& scenario,
                                      Database* db) {
  // Pre-split the schedule per session; each thread writes only its own
  // step indices, so the results vector needs no lock.
  std::vector<std::vector<size_t>> per_session(
      static_cast<size_t>(scenario.num_sessions));
  for (size_t i = 0; i < scenario.steps.size(); ++i) {
    per_session[static_cast<size_t>(scenario.steps[i].session)].push_back(i);
  }
  std::vector<StepResult> results(scenario.steps.size());
  std::vector<std::thread> threads;
  threads.reserve(per_session.size());
  for (const std::vector<size_t>& indices : per_session) {
    threads.emplace_back([&scenario, db, &results, &indices] {
      Session session(db);
      for (const size_t i : indices) {
        Result<ResultSet> rs = session.Execute(scenario.steps[i].sql);
        if (rs.ok()) {
          results[i].rows = rs->rows();
        } else {
          results[i].status = rs.status();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return results;
}

std::vector<Row> FinalContents(Database* db) {
  Session session(db);
  Result<ResultSet> rs = session.Execute("SELECT session, pos, val FROM t");
  if (!rs.ok()) return {};
  return rs->rows();
}

}  // namespace

InterleaveVerdict RunInterleaveScenario(const InterleaveScenario& scenario) {
  Metrics().scenarios->Increment();
  InterleaveVerdict verdict;
  const auto check = [&verdict](bool ok, std::string failure) {
    ++verdict.checks;
    Metrics().checks->Increment();
    if (!ok) {
      Metrics().mismatches->Increment();
      verdict.failures.push_back(std::move(failure));
    }
  };

  Database serial_db;
  Database concurrent_db;
  for (Database* db : {&serial_db, &concurrent_db}) {
    Session setup(db);
    for (const std::string& sql : scenario.setup) {
      const Result<ResultSet> rs = setup.Execute(sql);
      if (!rs.ok()) {
        verdict.failures.push_back("setup failed: " + rs.status().ToString());
        return verdict;
      }
    }
  }

  const std::vector<StepResult> serial = RunSerial(scenario, &serial_db);
  const std::vector<StepResult> concurrent =
      RunConcurrent(scenario, &concurrent_db);
  const std::vector<Row> serial_final = FinalContents(&serial_db);

  for (size_t i = 0; i < scenario.steps.size(); ++i) {
    const InterleaveStep& step = scenario.steps[i];
    const std::string where =
        "step " + std::to_string(i) + " (s" + std::to_string(step.session) +
        ": " + step.sql + ")";
    // 1. No errors anywhere: serial failure = generator bug, concurrent
    // failure = isolation bug.
    check(serial[i].status.ok(),
          where + " failed serially: " + serial[i].status.ToString());
    check(concurrent[i].status.ok(),
          where + " failed concurrently: " + concurrent[i].status.ToString());
    if (!serial[i].status.ok() || !concurrent[i].status.ok()) continue;

    switch (step.check) {
      case InterleaveStep::Check::kOwnRows: {
        // 2. A session's own partition is single-writer: results match
        // the serial replay exactly.
        const std::optional<std::string> diff =
            DiffRowVectorsCanonical(serial[i].rows, concurrent[i].rows);
        check(!diff.has_value(),
              where + " own-rows diverged:\n" + diff.value_or(""));
        break;
      }
      case InterleaveStep::Check::kGlobalCount: {
        // 3. Global counts are bounded by [own live rows, rows ever
        // inserted] — see the header for why the final total is NOT a
        // valid upper bound.
        const int64_t count = concurrent[i].rows.empty()
                                  ? -1
                                  : concurrent[i].rows[0][0].AsInt();
        check(count >= step.min_visible_rows &&
                  count <= step.max_visible_rows,
              where + " count " + std::to_string(count) + " outside [" +
                  std::to_string(step.min_visible_rows) + ", " +
                  std::to_string(step.max_visible_rows) + "]");
        break;
      }
      case InterleaveStep::Check::kNone:
        break;
    }
  }

  // 4. Commuting writes: both runs converge to the same contents.
  const std::optional<std::string> diff =
      DiffRowVectorsCanonical(serial_final, FinalContents(&concurrent_db));
  check(!diff.has_value(), "final contents diverged:\n" + diff.value_or(""));
  return verdict;
}

}  // namespace fuzzing
}  // namespace rfv
