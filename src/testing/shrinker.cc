#include "testing/shrinker.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

namespace rfv {
namespace fuzzing {

namespace {

constexpr int kMaxAttempts = 400;

/// Restores the dense-positions invariant (1..n per partition) after
/// rows were removed: remaining rows keep their relative order per
/// partition and are renumbered.
void Redensify(Scenario* s) {
  if (!s->dense_positions) return;
  std::stable_sort(s->rows.begin(), s->rows.end(),
                   [](const FuzzRow& a, const FuzzRow& b) {
                     if (a.grp != b.grp) return a.grp < b.grp;
                     return a.pos.Compare(b.pos) < 0;
                   });
  std::map<int64_t, int64_t> next_pos;
  for (FuzzRow& row : s->rows) {
    row.pos = Value::Int(++next_pos[s->has_grp ? row.grp : 0]);
  }
}

class Shrinker {
 public:
  Shrinker(const Scenario& failing, const OracleOptions& options)
      : options_(options) {
    result_.scenario = failing;
    result_.verdict = RunScenario(failing, options);
  }

  ShrinkResult Run() {
    if (result_.verdict.ok()) return std::move(result_);  // nothing to do
    oracle_ = result_.verdict.failures.front().oracle;

    TruncateAfterFailingRound();
    bool changed = true;
    while (changed && result_.attempts < kMaxAttempts) {
      changed = false;
      changed |= DropQueries();
      changed |= DropViews();
      changed |= DropDmlOps();
      changed |= DropRows();
      changed |= DropGrpColumn();
      changed |= ZeroValues();
      changed |= NarrowFrames();
    }
    return std::move(result_);
  }

 private:
  /// Accepts `candidate` when it still fails the same oracle.
  bool Attempt(Scenario candidate) {
    if (result_.attempts >= kMaxAttempts) return false;
    ++result_.attempts;
    ScenarioVerdict v = RunScenario(candidate, options_);
    const bool reproduces =
        std::any_of(v.failures.begin(), v.failures.end(),
                    [&](const OracleFailure& f) { return f.oracle == oracle_; });
    if (!reproduces) return false;
    result_.scenario = std::move(candidate);
    result_.verdict = std::move(v);
    ++result_.accepted;
    return true;
  }

  /// DML batches after the first failing round cannot matter.
  void TruncateAfterFailingRound() {
    const int round = result_.verdict.failures.front().round;
    if (static_cast<int>(result_.scenario.dml_batches.size()) <= round) {
      return;
    }
    Scenario c = result_.scenario;
    c.dml_batches.resize(static_cast<size_t>(round));
    Attempt(std::move(c));
  }

  bool DropQueries() {
    bool any = false;
    for (size_t i = 0; i < result_.scenario.queries.size();) {
      if (result_.scenario.queries.size() == 1) break;
      Scenario c = result_.scenario;
      c.queries.erase(c.queries.begin() + static_cast<ptrdiff_t>(i));
      if (Attempt(std::move(c))) {
        any = true;
      } else {
        ++i;
      }
    }
    return any;
  }

  bool DropViews() {
    bool any = false;
    for (size_t i = 0; i < result_.scenario.views.size();) {
      Scenario c = result_.scenario;
      c.views.erase(c.views.begin() + static_cast<ptrdiff_t>(i));
      if (Attempt(std::move(c))) {
        any = true;
      } else {
        ++i;
      }
    }
    return any;
  }

  bool DropDmlOps() {
    bool any = false;
    // Index the live scenario afresh on every access: Attempt() replaces
    // result_.scenario, so references across it would dangle.
    for (size_t b = 0; b < result_.scenario.dml_batches.size();) {
      for (size_t i = 0; i < result_.scenario.dml_batches[b].size();) {
        Scenario c = result_.scenario;
        auto& ops = c.dml_batches[b];
        ops.erase(ops.begin() + static_cast<ptrdiff_t>(i));
        if (Attempt(std::move(c))) {
          any = true;
        } else {
          ++i;
        }
      }
      if (result_.scenario.dml_batches[b].empty()) {
        Scenario c = result_.scenario;
        c.dml_batches.erase(c.dml_batches.begin() +
                            static_cast<ptrdiff_t>(b));
        if (!Attempt(std::move(c))) ++b;
      } else {
        ++b;
      }
    }
    return any;
  }

  /// ddmin-style: halves first, then single rows.
  bool DropRows() {
    bool any = false;
    for (size_t chunk = std::max<size_t>(result_.scenario.rows.size() / 2, 1);
         ; chunk /= 2) {
      size_t start = 0;
      while (start < result_.scenario.rows.size()) {
        Scenario c = result_.scenario;
        const size_t end = std::min(start + chunk, c.rows.size());
        c.rows.erase(c.rows.begin() + static_cast<ptrdiff_t>(start),
                     c.rows.begin() + static_cast<ptrdiff_t>(end));
        Redensify(&c);
        if (Attempt(std::move(c))) {
          any = true;  // same start now names the next chunk
        } else {
          start += chunk;
        }
      }
      if (chunk <= 1) break;
    }
    return any;
  }

  /// Drops the partition column when nothing references it anymore.
  bool DropGrpColumn() {
    const Scenario& s = result_.scenario;
    if (!s.has_grp || !s.views.empty()) return false;
    const bool referenced =
        std::any_of(s.queries.begin(), s.queries.end(),
                    [](const FuzzQuery& q) { return q.partition_by_grp; });
    if (referenced) return false;
    Scenario c = s;
    c.has_grp = false;
    Redensify(&c);
    return Attempt(std::move(c));
  }

  bool ZeroValues() {
    bool any = false;
    for (size_t i = 0; i < result_.scenario.rows.size(); ++i) {
      const Value& val = result_.scenario.rows[i].val;
      if (val.is_null() || (val.type() == DataType::kInt64 && val.AsInt() == 0) ||
          (val.type() == DataType::kDouble && val.AsDouble() == 0.0)) {
        continue;
      }
      Scenario c = result_.scenario;
      c.rows[i].val = c.val_type == DataType::kInt64 ? Value::Int(0)
                                                     : Value::Double(0);
      any |= Attempt(std::move(c));
    }
    return any;
  }

  bool NarrowFrames() {
    bool any = false;
    const auto narrow = [&](auto getter) {
      for (size_t i = 0;; ++i) {
        FuzzFrame* frame = getter(&result_.scenario, i);
        if (frame == nullptr) break;
        while (!frame->cumulative && frame->l + frame->h > 1 &&
               result_.attempts < kMaxAttempts) {
          Scenario c = result_.scenario;
          FuzzFrame* f = getter(&c, i);
          if (f->l >= f->h) {
            --f->l;
          } else {
            --f->h;
          }
          if (!Attempt(std::move(c))) break;
          any = true;
          frame = getter(&result_.scenario, i);
        }
      }
    };
    narrow([](Scenario* s, size_t i) -> FuzzFrame* {
      return i < s->queries.size() ? &s->queries[i].frame : nullptr;
    });
    narrow([](Scenario* s, size_t i) -> FuzzFrame* {
      return i < s->views.size() ? &s->views[i].frame : nullptr;
    });
    return any;
  }

  const OracleOptions& options_;
  ShrinkResult result_;
  std::string oracle_;
};

}  // namespace

ShrinkResult ShrinkScenario(const Scenario& failing,
                            const OracleOptions& options) {
  return Shrinker(failing, options).Run();
}

std::string ReproSql(const Scenario& scenario,
                     const ScenarioVerdict& verdict) {
  std::string out = scenario.ToSqlScript();
  out += "--\n-- VERDICT\n";
  const std::string summary = verdict.Summary();
  size_t start = 0;
  while (start <= summary.size()) {
    const size_t end = summary.find('\n', start);
    out += "-- " + summary.substr(start, end == std::string::npos
                                             ? std::string::npos
                                             : end - start) +
           "\n";
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return out;
}

}  // namespace fuzzing
}  // namespace rfv
