#include "testing/scenario.h"

namespace rfv {
namespace fuzzing {

const char* FuzzFnSql(FuzzFn fn) {
  switch (fn) {
    case FuzzFn::kSum: return "SUM";
    case FuzzFn::kAvg: return "AVG";
    case FuzzFn::kMin: return "MIN";
    case FuzzFn::kMax: return "MAX";
    case FuzzFn::kCount: return "COUNT";
    case FuzzFn::kCountStar: return "COUNT";
    case FuzzFn::kRank: return "RANK";
    case FuzzFn::kRowNumber: return "ROW_NUMBER";
  }
  return "?";
}

const char* ScenarioKindName(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kWindow: return "window";
    case ScenarioKind::kRewrite: return "rewrite";
    case ScenarioKind::kMaintenance: return "maintenance";
  }
  return "?";
}

std::string FuzzFrame::ToSql() const {
  if (cumulative) return "ROWS UNBOUNDED PRECEDING";
  return "ROWS BETWEEN " + std::to_string(l) + " PRECEDING AND " +
         std::to_string(h) + " FOLLOWING";
}

std::string Scenario::Id() const {
  return "seed" + std::to_string(seed) + "/iter" + std::to_string(index);
}

std::string Scenario::CreateTableSql() const {
  std::string sql = "CREATE TABLE " + table + " (";
  if (has_grp) sql += "grp INTEGER, ";
  // The primary-key index only exists where positions are unique; messy
  // window scenarios generate duplicate and NULL positions on purpose.
  sql += "pos INTEGER";
  if (dense_positions && !has_grp) sql += " PRIMARY KEY";
  sql += ", val ";
  sql += val_type == DataType::kInt64 ? "INTEGER" : "DOUBLE";
  sql += ")";
  return sql;
}

std::string Scenario::InsertSql() const {
  if (rows.empty()) return "";
  std::string sql = "INSERT INTO " + table + " VALUES ";
  for (size_t i = 0; i < rows.size(); ++i) {
    const FuzzRow& r = rows[i];
    if (i > 0) sql += ", ";
    sql += "(";
    if (has_grp) sql += std::to_string(r.grp) + ", ";
    sql += r.pos.ToString() + ", " + r.val.ToString() + ")";
  }
  return sql;
}

std::string Scenario::CreateViewSql(const FuzzView& view) const {
  std::string sql = "CREATE MATERIALIZED VIEW " + view.name + " AS SELECT ";
  if (has_grp) sql += "grp, ";
  sql += "pos, " + std::string(FuzzFnSql(view.fn)) + "(val) OVER (";
  if (has_grp) sql += "PARTITION BY grp ";
  sql += "ORDER BY pos " + view.frame.ToSql() + ") FROM " + table;
  return sql;
}

std::string Scenario::QuerySql(const FuzzQuery& query) const {
  const bool strict_shape = kind != ScenarioKind::kWindow;
  std::string select = "SELECT ";
  if (has_grp && (strict_shape ? query.partition_by_grp : true)) {
    select += "grp, ";
  }
  select += "pos, ";
  if (!strict_shape) select += "val, ";

  select += FuzzFnSql(query.fn);
  if (query.is_ranking()) {
    select += "()";
  } else if (query.fn == FuzzFn::kCountStar) {
    select += "(*)";
  } else {
    select += "(val)";
  }
  select += " OVER (";
  if (query.partition_by_grp && has_grp) select += "PARTITION BY grp ";
  select += "ORDER BY ";
  select += query.is_ranking() && query.order_by_val ? "val" : "pos";
  if (query.is_ranking() && query.order_desc) select += " DESC";
  if (!query.is_ranking()) select += " " + query.frame.ToSql();
  select += ") FROM " + table;
  if (strict_shape) {
    // The rewriter's recognizable shape requires the trailing ORDER BY
    // (partition columns first).
    select += " ORDER BY ";
    if (has_grp && query.partition_by_grp) select += "grp, ";
    select += "pos";
  }
  return select;
}

std::string Scenario::DmlSql(const FuzzDml& op) const {
  const std::string grp_pred =
      has_grp ? " AND grp = " + std::to_string(op.grp) : "";
  switch (op.kind) {
    case DmlKind::kUpdate:
      return "UPDATE " + table + " SET val = " + std::to_string(op.value) +
             " WHERE pos = " + std::to_string(op.position) + grp_pred;
    case DmlKind::kDelete:
      return "DELETE FROM " + table +
             " WHERE pos = " + std::to_string(op.position) + grp_pred;
    case DmlKind::kInsert: {
      std::string sql = "INSERT INTO " + table + " VALUES (";
      if (has_grp) sql += std::to_string(op.grp) + ", ";
      sql += std::to_string(op.position) + ", " + std::to_string(op.value) +
             ")";
      return sql;
    }
  }
  return "";
}

std::string Scenario::ToSqlScript() const {
  std::string out;
  out += "-- rfview_fuzz scenario " + Id() + " (" +
         ScenarioKindName(kind) + ")\n";
  out += CreateTableSql() + ";\n";
  const std::string insert = InsertSql();
  if (!insert.empty()) out += insert + ";\n";
  for (const FuzzView& view : views) out += CreateViewSql(view) + ";\n";
  for (const FuzzQuery& query : queries) out += QuerySql(query) + ";\n";
  for (size_t b = 0; b < dml_batches.size(); ++b) {
    out += "-- DML batch " + std::to_string(b);
    if (kind == ScenarioKind::kMaintenance) {
      out += " (replayed via the PropagateBase* maintenance API;";
      out += " positional semantics, see docs/FUZZING.md)";
    }
    out += "\n";
    for (const FuzzDml& op : dml_batches[b]) {
      if (kind == ScenarioKind::kMaintenance) {
        // PropagateBaseInsert/Delete shift higher positions; plain SQL
        // cannot express that, so maintenance ops are annotations.
        switch (op.kind) {
          case DmlKind::kUpdate:
            out += "-- PropagateBaseUpdate(pos=" +
                   std::to_string(op.position) +
                   ", val=" + std::to_string(op.value) + ")\n";
            break;
          case DmlKind::kInsert:
            out += "-- PropagateBaseInsert(pos=" +
                   std::to_string(op.position) +
                   ", val=" + std::to_string(op.value) + ")\n";
            break;
          case DmlKind::kDelete:
            out += "-- PropagateBaseDelete(pos=" +
                   std::to_string(op.position) + ")\n";
            break;
        }
      } else {
        out += DmlSql(op) + ";\n";
      }
    }
    out += "-- re-run all queries and oracle checks\n";
  }
  return out;
}

}  // namespace fuzzing
}  // namespace rfv
