#ifndef RFVIEW_TESTING_RESULT_COMPARE_H_
#define RFVIEW_TESTING_RESULT_COMPARE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/row.h"
#include "db/result_set.h"

namespace rfv {
namespace fuzzing {

/// Result comparison shared by the fuzz oracles and the gtest helpers in
/// tests/test_util.h (the single implementation of canonical row
/// ordering + value equality; keep them from diverging).

/// Sorts rows lexicographically by every column under Value::Compare's
/// total order (NULL first, numerics compared across int64/double).
void CanonicalSort(std::vector<Row>* rows);

/// True when both results have identical values row by row (Value
/// equality: NULL == NULL, Int(2) == Double(2.0)).
bool SameRows(const ResultSet& a, const ResultSet& b);

/// Row-by-row diff in the results' own row order. Returns nullopt on
/// equality, else a short human-readable description (row/column counts
/// or the first few differing rows).
std::optional<std::string> DiffRows(const ResultSet& a, const ResultSet& b);

/// DiffRows under canonical row ordering — the oracle comparison: both
/// results are sorted by all columns first, so differences in output
/// order (parallel execution, rewrite plans without a final sort) do
/// not count as mismatches.
std::optional<std::string> DiffRowsCanonical(const ResultSet& a,
                                             const ResultSet& b);

/// DiffRowsCanonical over bare row vectors (view-content snapshots and
/// other comparisons that never pass through a ResultSet). Takes copies
/// because both sides are sorted in place.
std::optional<std::string> DiffRowVectorsCanonical(std::vector<Row> a,
                                                   std::vector<Row> b);

}  // namespace fuzzing
}  // namespace rfv

#endif  // RFVIEW_TESTING_RESULT_COMPARE_H_
