#ifndef RFVIEW_TESTING_REFERENCE_WINDOW_H_
#define RFVIEW_TESTING_REFERENCE_WINDOW_H_

#include <vector>

#include "common/row.h"
#include "common/value.h"
#include "testing/scenario.h"

namespace rfv {
namespace fuzzing {

/// Trusted reference evaluator for reporting-function (window) calls:
/// a deliberately naive O(n²)-per-partition implementation that shares
/// no code with the engine's operator (exec/window.cc). Every output
/// value is recomputed from scratch by scanning the whole partition —
/// no sliding state, no monotonic deques, no compensated summation —
/// so a bug in the engine's incremental machinery cannot also hide
/// here. Semantics follow SQL: aggregates skip NULL arguments, SUM/AVG/
/// MIN/MAX over an argument-free frame are NULL, COUNT of an empty
/// frame is 0, ROWS frames are positional after a stable sort on
/// (partition keys, order key), RANK counts strictly-smaller order
/// keys, NULL order keys sort first.

/// One window call described by column indices into the input rows.
struct RefWindowCall {
  FuzzFn fn = FuzzFn::kSum;
  FuzzFrame frame;         ///< ignored for ranking functions
  int partition_col = -1;  ///< -1 = single partition
  int order_col = 0;
  bool order_desc = false;  ///< ranking only (frames require ascending)
  int arg_col = -1;         ///< -1 for COUNT(*) and ranking functions
};

/// Evaluates the call over `rows`, returning one output value per input
/// row, aligned with the input order.
std::vector<Value> ReferenceWindow(const std::vector<Row>& rows,
                                   const RefWindowCall& call);

}  // namespace fuzzing
}  // namespace rfv

#endif  // RFVIEW_TESTING_REFERENCE_WINDOW_H_
