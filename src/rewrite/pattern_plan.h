#ifndef RFVIEW_REWRITE_PATTERN_PLAN_H_
#define RFVIEW_REWRITE_PATTERN_PLAN_H_

#include <string>

#include "common/status.h"
#include "plan/logical_plan.h"
#include "sequence/window_spec.h"
#include "storage/table.h"

namespace rfv {

/// Programmatic logical-plan builders mirroring the native-engine side
/// of the paper's experiments. Benchmarks and tests use these to bypass
/// SQL parsing when measuring pure operator cost.

/// "Reporting functionality inside the engine": Scan → Window → Project
/// producing (pos, val) ordered by the window's ORDER BY column — the
/// fast path of paper Table 1.
Result<LogicalPlanPtr> BuildNativeWindowPlan(Table* table,
                                             const std::string& pos_column,
                                             const std::string& val_column,
                                             const WindowSpec& window,
                                             AggFn fn);

/// Direct view read: Scan → Filter(1 <= pos <= n) → Project(pos, val).
Result<LogicalPlanPtr> BuildViewReadPlan(Table* view_table, int64_t n);

}  // namespace rfv

#endif  // RFVIEW_REWRITE_PATTERN_PLAN_H_
